// Command tracegen emits a synthetic post-L3 memory trace for one core of
// a named workload in the repository's text trace format:
//
//	<gap> <hex line address> <r|w> <d|->
//
// Example:
//
//	tracegen -workload mcf -events 100000 > mcf.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"accord/internal/memtypes"
	"accord/internal/sim"
	"accord/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "libquantum", "workload name (see -list)")
		coreID   = flag.Int("core", 0, "core whose stream to emit (matters for mixes)")
		cores    = flag.Int("cores", 16, "system core count")
		events   = flag.Int("events", 100000, "number of events to emit")
		scale    = flag.Int64("scale", 256, "capacity scale divisor (footprints follow)")
		seed     = flag.Int64("seed", 1, "generator seed")
		list     = flag.Bool("list", false, "list workloads and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(workloads.Names(), "\n"))
		return
	}
	wl, err := workloads.Get(*workload, *cores)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *coreID < 0 || *coreID >= *cores {
		fmt.Fprintf(os.Stderr, "core %d out of range [0,%d)\n", *coreID, *cores)
		os.Exit(2)
	}
	cfg := sim.Default()
	cfg.Scale = *scale
	cacheLines := uint64(cfg.L4CapacityFull / memtypes.LineSize / *scale)
	st := workloads.NewStream(wl.Specs[*coreID], cacheLines, *cores, *seed*1000+int64(*coreID))

	fmt.Printf("# accord trace: workload=%s core=%d events=%d scale=1/%d seed=%d\n",
		*workload, *coreID, *events, *scale, *seed)
	if err := workloads.WriteTrace(os.Stdout, st, *events); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
