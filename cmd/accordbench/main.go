// Command accordbench regenerates the paper's tables and figures.
//
//	accordbench                      # run every experiment at full quality
//	accordbench -experiment fig10    # one experiment
//	accordbench -quick               # reduced scale for a fast look
//	accordbench -parallel 8          # bound the simulation worker pool
//	accordbench -list                # list experiment IDs
//
// Output is plain-text tables whose rows/series correspond to the paper's
// artifacts; EXPERIMENTS.md records a reference run. Simulations fan out
// across a worker pool sized by GOMAXPROCS (override with -parallel);
// tables are byte-identical at every parallelism setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"accord/internal/exp"
	"accord/internal/metrics"
	"accord/internal/sim"
)

// manifestConfig records the effective benchmark parameters for the run
// manifest (Progress is an io.Writer and does not serialize).
func manifestConfig(p exp.Params, experiment string) map[string]interface{} {
	return map[string]interface{}{
		"experiment":     experiment,
		"scale":          p.Scale,
		"cores":          p.Cores,
		"warmup_instr":   p.WarmupInstr,
		"measure_instr":  p.MeasureInstr,
		"epoch_instr":    p.EpochInstr,
		"parallelism":    p.Parallelism,
		"trace_cache":    p.TraceCache,
		"sample_period":  p.Sampling.Period,
		"sample_ci":      p.Sampling.TargetCI,
		"sample_workers": p.SampleWorkers,
		"spine_ckpt_dir": p.SpineCheckpointDir,
		"spine_stride":   p.SpineStride,
	}
}

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment ID to run (default: all); see -list")
		quick      = flag.Bool("quick", false, "reduced scale and duration")
		scale      = flag.Int64("scale", 0, "override capacity scale divisor")
		cores      = flag.Int("cores", 0, "override core count")
		seed       = flag.Int64("seed", 1, "simulation seed")
		parallel   = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = sequential)")
		markdown   = flag.Bool("md", false, "render tables as GitHub-flavored markdown")
		verbose    = flag.Bool("v", false, "log each simulation as it completes")
		metricsOut = flag.String("metrics-out", "", "write structured metrics for every simulation to this file (.csv for CSV + manifest sidecar, otherwise JSON)")
		epoch      = flag.Int64("epoch", -1, "metrics sampling epoch in retired instructions summed over cores (-1 = auto when -metrics-out is set, 0 = final snapshots only)")
		sample     = flag.Int64("sample", 0, "interval-sampling period in instructions per core (0 = exact detailed runs); sampled tables are estimates whose CIs go to -metrics-out")
		ci         = flag.Float64("ci", 0.05, "with -sample: stop each run early once its IPC estimate's relative CI half-width reaches this (0 = run every planned interval)")
		sampleWkrs = flag.Int("sample-workers", 0, "with -sample: worker goroutines per simulation running detailed windows off the functional spine (0 = GOMAXPROCS, 1 = sequential; results are identical at any setting)")
		spineDir   = flag.String("spine-ckpt-dir", "", "with -sample: spine checkpoint lattice directory shared by every design point — boundary snapshots are saved on cold runs and restored instead of re-simulated on repeat runs (results are byte-identical either way)")
		spineStr   = flag.Int("spine-stride", 0, "with -spine-ckpt-dir: save every Nth interval boundary (0 = automatic from snapshot size)")
		ckptDir    = flag.String("checkpoint-dir", "", "warm-state checkpoint store: skip warmup for design points with a stored checkpoint, populate it for the rest")
		traceCache = flag.Bool("trace-cache", true, "share one recording of each workload stream across every design point instead of re-generating it per run")
		traceMB    = flag.Int64("trace-cache-mb", 0, "trace cache byte budget in MiB (0 = default)")
		list       = flag.Bool("list", false, "list experiments and exit")
		engine     = flag.String("engine", "specialized", "detailed timing engine: 'specialized' (backend-monomorphized dispatch) or 'generic' (interface-dispatch fallback); results are byte-identical, this only trades speed for a cross-check")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	switch *engine {
	case "specialized":
	case "generic":
		sim.UseGenericEngine(true)
	default:
		fmt.Fprintf(os.Stderr, "unknown -engine %q (want specialized or generic)\n", *engine)
		os.Exit(2)
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-6s %-11s %s\n", e.ID, e.PaperRef, e.Title)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	p := exp.DefaultParams()
	if *quick {
		p = exp.QuickParams()
	}
	if *scale > 0 {
		p.Scale = *scale
	}
	if *cores > 0 {
		p.Cores = *cores
	}
	p.Seed = *seed
	p.Parallelism = *parallel
	p.CheckpointDir = *ckptDir
	p.TraceCache = *traceCache
	p.TraceCacheBytes = *traceMB << 20
	if *verbose {
		p.Progress = os.Stderr
	}
	switch {
	case *epoch >= 0:
		p.EpochInstr = *epoch
	case *metricsOut != "":
		// Auto: ~8 epochs across the nominal measured window.
		p.EpochInstr = p.MeasureInstr * int64(p.Cores) / 8
	}
	if *sample > 0 {
		// Interval sampling replaces the epoch series with a per-interval
		// one and takes over the measured-phase layout (Session.apply
		// forces the compatible budget settings).
		sc := sim.DefaultSampling(*sample)
		sc.TargetCI = *ci
		if need := int64(sc.MinIntervals) * sc.Period; need > p.MeasureInstr {
			fmt.Fprintf(os.Stderr,
				"-sample %d needs %d measured instructions per core for %d intervals; this run measures %d (use -sample <= %d)\n",
				*sample, need, sc.MinIntervals, p.MeasureInstr, p.MeasureInstr/int64(sc.MinIntervals))
			os.Exit(2)
		}
		p.Sampling = sc
		p.SampleWorkers = *sampleWkrs
		p.SpineCheckpointDir = *spineDir
		p.SpineStride = *spineStr
	}

	var todo []exp.Experiment
	if *experiment == "" {
		todo = exp.All()
	} else {
		for _, id := range strings.Split(*experiment, ",") {
			e, ok := exp.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	workers := p.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	session := exp.NewSession(p)
	var man *metrics.Manifest
	if *metricsOut != "" {
		man = metrics.NewManifest("accordbench", manifestConfig(p, *experiment), p.Seed)
	}
	total := time.Now()
	// Worker count and timings go to stderr so stdout stays byte-identical
	// across -parallel settings (diffable against a sequential run).
	fmt.Fprintf(os.Stderr, "accordbench: %d simulation workers\n", workers)
	fmt.Printf("# ACCORD reproduction — scale 1/%d, %d cores, seed %d\n\n",
		p.Scale, p.Cores, p.Seed)
	for _, e := range todo {
		start := time.Now()
		fmt.Printf("## %s (%s): %s\n\n", e.ID, e.PaperRef, e.Title)
		for _, tb := range session.RunExperiment(e) {
			if *markdown {
				fmt.Println(tb.RenderMarkdown())
			} else {
				fmt.Println(tb.Render())
			}
		}
		fmt.Fprintf(os.Stderr, "accordbench: %s in %.1fs\n", e.ID, time.Since(start).Seconds())
	}
	elapsed := time.Since(total).Seconds()
	events, instr := session.TotalEvents()
	fmt.Fprintf(os.Stderr, "accordbench: total %.1fs with %d workers — %.2fM memory events/s, %.1fM retired instructions/s\n",
		elapsed, workers, float64(events)/elapsed/1e6, float64(instr)/elapsed/1e6)
	if *traceCache {
		traces, bytes, hits, misses, evicted := session.TraceCacheStats()
		fmt.Fprintf(os.Stderr, "accordbench: trace cache — %d recordings (%.1f MiB), %d replayed / %d recorded streams, %d evicted\n",
			traces, float64(bytes)/(1<<20), hits, misses, evicted)
	}
	if p.Sampling.Enabled() {
		w := session.SampleWorkTotals()
		fmt.Fprintf(os.Stderr, "accordbench: sampled work — workers=%d dispatched=%d committed=%d discarded=%d spine=%s detail=%s\n",
			w.Workers, w.Dispatched, w.Committed, w.Discarded, w.SpineTime.Round(time.Millisecond), w.DetailTime.Round(time.Millisecond))
		if *spineDir != "" {
			fmt.Fprintf(os.Stderr, "accordbench: spine lattice %s — hits=%d misses=%d save=%s\n",
				*spineDir, w.LatticeHits, w.LatticeMisses, w.SpineSaveTime.Round(time.Millisecond))
		}
		if man != nil {
			man.SampleWork = w.ManifestEntry()
		}
	}

	if *metricsOut != "" {
		ex := session.ExportMetrics(man.Finish())
		if err := ex.WriteFile(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "metrics-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "accordbench: wrote metrics for %d runs to %s\n", len(ex.Runs), *metricsOut)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}
