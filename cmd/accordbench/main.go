// Command accordbench regenerates the paper's tables and figures.
//
//	accordbench                      # run every experiment at full quality
//	accordbench -experiment fig10    # one experiment
//	accordbench -quick               # reduced scale for a fast look
//	accordbench -list                # list experiment IDs
//
// Output is plain-text tables whose rows/series correspond to the paper's
// artifacts; EXPERIMENTS.md records a reference run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"accord/internal/exp"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment ID to run (default: all); see -list")
		quick      = flag.Bool("quick", false, "reduced scale and duration")
		scale      = flag.Int64("scale", 0, "override capacity scale divisor")
		cores      = flag.Int("cores", 0, "override core count")
		seed       = flag.Int64("seed", 1, "simulation seed")
		markdown   = flag.Bool("md", false, "render tables as GitHub-flavored markdown")
		verbose    = flag.Bool("v", false, "log each simulation as it completes")
		list       = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-6s %-11s %s\n", e.ID, e.PaperRef, e.Title)
		}
		return
	}

	p := exp.DefaultParams()
	if *quick {
		p = exp.QuickParams()
	}
	if *scale > 0 {
		p.Scale = *scale
	}
	if *cores > 0 {
		p.Cores = *cores
	}
	p.Seed = *seed
	if *verbose {
		p.Progress = os.Stderr
	}

	var todo []exp.Experiment
	if *experiment == "" {
		todo = exp.All()
	} else {
		for _, id := range strings.Split(*experiment, ",") {
			e, ok := exp.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	session := exp.NewSession(p)
	fmt.Printf("# ACCORD reproduction — scale 1/%d, %d cores, seed %d\n\n",
		p.Scale, p.Cores, p.Seed)
	for _, e := range todo {
		start := time.Now()
		fmt.Printf("## %s (%s): %s\n\n", e.ID, e.PaperRef, e.Title)
		for _, tb := range e.Run(session) {
			if *markdown {
				fmt.Println(tb.RenderMarkdown())
			} else {
				fmt.Println(tb.Render())
			}
		}
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
