// Command accordsim runs a single simulation of the ACCORD system and
// prints its statistics: hit rate, way-prediction accuracy, bandwidth
// breakdown, per-core IPC, and energy.
//
// Examples:
//
//	accordsim -workload soplex -org accord -ways 2
//	accordsim -workload mix1 -org parallel -ways 8 -scale 512
//	accordsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"accord/internal/ckpt"
	"accord/internal/energy"
	"accord/internal/metrics"
	"accord/internal/sim"
	"accord/internal/stats"
	"accord/internal/workloads"
)

func main() {
	var (
		workload   = flag.String("workload", "libquantum", "workload name (see -list)")
		org        = flag.String("org", "accord", "organization: direct|parallel|serial|idealized|perfect|unbiased|pws|gws|accord|mru|partialtag|ca|lru|banshee|gemini|tdram")
		ways       = flag.Int("ways", 2, "associativity for N-way organizations")
		pip        = flag.Float64("pip", 0.85, "preferred-way install probability (pws)")
		scale      = flag.Int64("scale", 256, "capacity scale divisor (1 = full 4 GB)")
		cores      = flag.Int("cores", 16, "core count")
		warmup     = flag.Int64("warmup", 4_000_000, "warmup instructions per core")
		measure    = flag.Int64("measure", 4_000_000, "measured instructions per core")
		seed       = flag.Int64("seed", 1, "simulation seed")
		baseline   = flag.Bool("baseline", false, "also run the direct-mapped baseline and report speedup")
		trace      = flag.String("trace", "", "replay a trace file (see cmd/tracegen) instead of a named workload")
		jsonOut    = flag.Bool("json", false, "emit the result as JSON instead of a table")
		metricsOut = flag.String("metrics-out", "", "write structured metrics to this file (.csv for CSV + manifest sidecar, otherwise JSON)")
		epoch      = flag.Int64("epoch", -1, "metrics sampling epoch in retired instructions summed over cores (-1 = auto when -metrics-out is set, 0 = final snapshot only)")
		sample     = flag.Int64("sample", 0, "interval-sampling period in instructions per core (0 = exact detailed run); each period is mostly functional fast-forward with a short detailed measured window, and results carry Student-t confidence intervals")
		ci         = flag.Float64("ci", 0.05, "with -sample: stop early once the IPC estimate's relative CI half-width reaches this (0 = run every planned interval)")
		sampleWkrs = flag.Int("sample-workers", 0, "with -sample: worker goroutines running detailed windows off the functional spine (0 = GOMAXPROCS, 1 = sequential; results are identical at any setting)")
		spineDir   = flag.String("spine-ckpt-dir", "", "with -sample: spine checkpoint lattice directory — boundary snapshots are saved there on cold runs and restored instead of re-simulated on later runs with the same configuration and interval geometry (results are byte-identical either way)")
		spineStr   = flag.Int("spine-stride", 0, "with -spine-ckpt-dir: save every Nth interval boundary (0 = automatic from snapshot size, targeting ~128 KiB per period)")
		ckptDir    = flag.String("checkpoint-dir", "", "warm-state checkpoint store: restore the warmup/measure boundary when a matching checkpoint exists, populate it otherwise (ignored with -trace)")
		traceCache = flag.Bool("trace-cache", true, "record each workload stream once and replay it, sharing the recording with the -baseline run (ignored with -trace)")
		ckptSchema = flag.Bool("ckpt-schema", false, "print the checkpoint schema ID (for cache keys) and exit")
		engine     = flag.String("engine", "specialized", "detailed timing engine: 'specialized' (backend-monomorphized dispatch) or 'generic' (interface-dispatch fallback); results are byte-identical, this only trades speed for a cross-check")
		list       = flag.Bool("list", false, "list workloads and exit")
	)
	flag.Parse()

	switch *engine {
	case "specialized":
	case "generic":
		sim.UseGenericEngine(true)
	default:
		fmt.Fprintf(os.Stderr, "unknown -engine %q (want specialized or generic)\n", *engine)
		os.Exit(2)
	}

	if *ckptSchema {
		fmt.Println(sim.SnapshotSchemaID())
		return
	}

	if *list {
		fmt.Println("rate-mode workloads:")
		fmt.Println("  " + strings.Join(workloads.Names(), " "))
		fmt.Println("mixes: mix1 .. mix10")
		return
	}

	cfg, err := sim.Named(*org, *ways, *pip)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *trace != "" {
		// Traces carry their own pacing; use the configured windows as-is.
		cfg.DisableAdaptiveBudgets = true
	}
	cfg.Scale = *scale
	cfg.Cores = *cores
	cfg.WarmupInstr = *warmup
	cfg.MeasureInstr = *measure
	cfg.Seed = *seed
	if *sample > 0 {
		// Interval sampling owns the measured-phase layout and records a
		// per-interval metric series, so adaptive budgets and epoch
		// sampling are both ceded to it.
		sc := sim.DefaultSampling(*sample)
		sc.TargetCI = *ci
		cfg.Sampling = sc
		cfg.SampleWorkers = *sampleWkrs
		cfg.SpineCheckpointDir = *spineDir
		cfg.SpineStride = *spineStr
		cfg.DisableAdaptiveBudgets = true
	} else {
		cfg.EpochInstr = epochInstr(*epoch, *metricsOut != "", cfg)
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var wl workloads.Workload
	var err2 error
	if *trace != "" {
		wl, err2 = loadTrace(*trace, cfg.Cores)
	} else {
		wl, err2 = workloads.Get(*workload, cfg.Cores)
	}
	if err2 != nil {
		fmt.Fprintln(os.Stderr, err2)
		os.Exit(2)
	}

	// Trace streams are shared, stateful FixedStreams; a failed restore
	// could leave them half-mutated, so checkpointing is gated off.
	store := openStore(*ckptDir, *trace != "")

	// The trace cache records the workload stream on first use and
	// replays it for the -baseline run (same workload, same anchor, same
	// seeds — replay is byte-identical to regeneration).
	var traces *workloads.TraceCache
	if *traceCache && *trace == "" {
		traces = workloads.NewTraceCache(0)
		wl.Source = traces.Source(wl.Specs, cfg.AnchorLines(), cfg.Seed)
	}

	man := metrics.NewManifest("accordsim", flagConfig(), cfg.Seed)
	res, info := sim.RunWithStoreInfo(cfg, wl, store, wl.Name)
	if info.Restored {
		fmt.Fprintf(os.Stderr, "accordsim: restored warm state from %s\n", *ckptDir)
	}
	if res.Sampled != nil {
		w := info.Work
		man.SampleWork = w.ManifestEntry()
		fmt.Fprintf(os.Stderr, "accordsim: sampled workers=%d dispatched=%d committed=%d discarded=%d spine=%s detail=%s\n",
			w.Workers, w.Dispatched, w.Committed, w.Discarded, w.SpineTime.Round(time.Millisecond), w.DetailTime.Round(time.Millisecond))
		if *spineDir != "" {
			fmt.Fprintf(os.Stderr, "accordsim: spine lattice %s: hits=%d misses=%d save=%s\n",
				*spineDir, w.LatticeHits, w.LatticeMisses, w.SpineSaveTime.Round(time.Millisecond))
		}
	}
	if *metricsOut != "" {
		ex := &metrics.Export{
			Manifest: man.Finish(),
			Runs: []metrics.Run{{
				Config:       res.Config,
				Workload:     res.Workload,
				Instructions: res.Instructions,
				Cycles:       res.Cycles,
				MeanIPC:      res.MeanIPC(),
				HitRate:      res.HitRate(),
				Sampled:      exportSampled(res.Sampled),
				Metrics:      res.Metrics,
			}},
		}
		if err := ex.WriteFile(*metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	printResult(cfg, res)

	if *baseline {
		base := sim.DirectMapped()
		base.Scale, base.Cores = cfg.Scale, cfg.Cores
		base.WarmupInstr, base.MeasureInstr, base.Seed = cfg.WarmupInstr, cfg.MeasureInstr, cfg.Seed
		base.DisableAdaptiveBudgets = cfg.DisableAdaptiveBudgets
		base.Sampling = cfg.Sampling
		base.SampleWorkers = cfg.SampleWorkers
		base.SpineCheckpointDir = cfg.SpineCheckpointDir
		base.SpineStride = cfg.SpineStride
		if *trace != "" {
			// Trace streams are stateful; the baseline needs a fresh replay.
			wl, err2 = loadTrace(*trace, cfg.Cores)
			if err2 != nil {
				fmt.Fprintln(os.Stderr, err2)
				os.Exit(1)
			}
		}
		// With the trace cache on, wl.Source is already set: sim.New asks
		// it for fresh cursors, which replay the recordings the main run
		// just produced (the baseline shares scale, seed, and anchor).
		bres, _ := sim.RunWithStore(base, wl, store, wl.Name)
		fmt.Printf("\nbaseline (direct-mapped) mean IPC: %.4f\n", bres.MeanIPC())
		fmt.Printf("weighted speedup:                  %.4f\n", sim.WeightedSpeedup(res, bres))
	}
}

// openStore opens the checkpoint store, or returns nil when disabled.
// Store problems are warnings, never failures: checkpointing only
// accelerates runs, it cannot be a correctness dependency.
func openStore(dir string, traceMode bool) *ckpt.Store {
	if dir == "" || traceMode {
		return nil
	}
	store, err := ckpt.Open(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "accordsim: checkpoint store disabled: %v\n", err)
		return nil
	}
	return store
}

// epochInstr resolves the -epoch flag: an explicit non-negative value
// wins (0 disables sampling); auto mode samples ~8 epochs across the
// nominal measured window whenever metrics are being exported.
func epochInstr(flagVal int64, exporting bool, cfg sim.Config) int64 {
	if flagVal >= 0 {
		return flagVal
	}
	if !exporting {
		return 0
	}
	e := cfg.MeasureInstr * int64(cfg.Cores) / 8
	if e <= 0 {
		e = 1
	}
	return e
}

// flagConfig snapshots the effective flag values for the run manifest.
func flagConfig() map[string]string {
	out := make(map[string]string)
	flag.VisitAll(func(f *flag.Flag) {
		out[f.Name] = f.Value.String()
	})
	return out
}

// loadTrace reads a tracegen-format file and replays it on every core.
func loadTrace(path string, cores int) (workloads.Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return workloads.Workload{}, err
	}
	defer f.Close()
	st, err := workloads.ReadTrace(f)
	if err != nil {
		return workloads.Workload{}, err
	}
	return workloads.TraceWorkload(path, st.Events, cores)
}

// printResult renders the run summary from the metrics registry snapshot
// — the same values -metrics-out exports — so the table and the
// machine-readable artifact cannot diverge. Undefined gauges fall back
// to the legacy 0 rendering (the stats package's Pct/Ratio convention),
// keeping output byte-identical to earlier releases.
func printResult(cfg sim.Config, res sim.Result) {
	fmt.Printf("config:   %s  (scale 1/%d, %.1f MB model cache)\n",
		res.Config, cfg.Scale, float64(cfg.L4Capacity())/(1<<20))
	fmt.Printf("workload: %s\n\n", res.Workload)

	snap := res.Metrics.Final
	t := stats.NewTable("", "metric", "value")
	t.AddRowf("L4 reads", snap.Counter("l4.reads"))
	t.AddRowf("L4 hit rate", fmt.Sprintf("%.2f%%", gaugeOr(snap, "l4.hit_rate_pct", 0)))
	t.AddRowf("way-pred accuracy", fmt.Sprintf("%.2f%%", gaugeOr(snap, "l4.prediction_accuracy_pct", 0)))
	t.AddRowf("probes per read", fmt.Sprintf("%.3f", gaugeOr(snap, "l4.probes_per_read", 0)))
	t.AddRowf("avg hit latency (cyc)", fmt.Sprintf("%.1f", histMean(snap, "l4.hit_latency")))
	t.AddRowf("avg miss latency (cyc)", fmt.Sprintf("%.1f", histMean(snap, "l4.miss_latency")))
	t.AddRowf("L4 writebacks", snap.Counter("l4.writebacks"))
	t.AddRowf("NVM reads / writes", fmt.Sprintf("%d / %d",
		snap.Counter("l4.nvm_reads"), snap.Counter("l4.nvm_writes")))
	t.AddRowf("mean IPC", fmt.Sprintf("%.4f", gaugeOr(snap, "cpu.mean_ipc", res.MeanIPC())))
	fmt.Print(t.Render())

	if ss := res.Sampled; ss != nil {
		state := "budget exhausted"
		if ss.Converged {
			state = "converged early"
		}
		fmt.Printf("\nsampled: %d/%d intervals (%s), %g%% confidence\n",
			ss.Intervals, ss.Planned, state, 100*ss.Confidence)
		printCI("  IPC", ss.IPC)
		printCI("  hit rate", ss.HitRate)
		printCI("  MPKI", ss.MPKI)
	}

	b := energy.Compute(cfg.HBM, res.HBM, cfg.PCM, res.PCM, res.Cycles, cfg.CPUGHz)
	fmt.Printf("\nenergy: %.4f J total (%.2f W avg, EDP %.5f J·s)\n", b.Total(), b.Power(), b.EDP())
}

// printCI renders one sampled estimate, following the undefined-not-zero
// convention: no observations prints n/a, a single observation prints the
// mean without a half-width.
func printCI(label string, m sim.MetricCI) {
	switch {
	case !m.Valid():
		fmt.Printf("%-10s n/a (no intervals observed it)\n", label)
	case !m.OK:
		fmt.Printf("%-10s %.4f (single interval, no CI)\n", label, m.Mean)
	default:
		fmt.Printf("%-10s %.4f ± %.4f\n", label, m.Mean, m.Half)
	}
}

// exportSampled converts the sampling summary to its export form; nil for
// exact runs.
func exportSampled(ss *sim.SampleSummary) *metrics.Sampled {
	if ss == nil {
		return nil
	}
	conv := func(m sim.MetricCI) *metrics.SampledCI {
		if !m.Valid() {
			return nil
		}
		out := &metrics.SampledCI{Mean: m.Mean, Intervals: m.N}
		if m.OK {
			half := m.Half
			out.Half = &half
		}
		return out
	}
	return &metrics.Sampled{
		Intervals:  ss.Intervals,
		Planned:    ss.Planned,
		Converged:  ss.Converged,
		Confidence: ss.Confidence,
		IPC:        conv(ss.IPC),
		HitRate:    conv(ss.HitRate),
		MPKI:       conv(ss.MPKI),
	}
}

// gaugeOr reads a gauge, substituting fallback when it is undefined.
func gaugeOr(s metrics.Snapshot, name string, fallback float64) float64 {
	if v, ok := s.Gauge(name); ok {
		return v
	}
	return fallback
}

// histMean returns a histogram's mean, 0 when it holds no samples
// (matching dramcache.LatencySum.Mean).
func histMean(s metrics.Snapshot, name string) float64 {
	v, ok := s.Get(name)
	if !ok || v.Count == 0 {
		return 0
	}
	return v.Sum / float64(v.Count)
}
