// Command accordsim runs a single simulation of the ACCORD system and
// prints its statistics: hit rate, way-prediction accuracy, bandwidth
// breakdown, per-core IPC, and energy.
//
// Examples:
//
//	accordsim -workload soplex -org accord -ways 2
//	accordsim -workload mix1 -org parallel -ways 8 -scale 512
//	accordsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"accord/internal/energy"
	"accord/internal/sim"
	"accord/internal/stats"
	"accord/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "libquantum", "workload name (see -list)")
		org      = flag.String("org", "accord", "organization: direct|parallel|serial|idealized|perfect|unbiased|pws|gws|accord|mru|partialtag|ca|lru")
		ways     = flag.Int("ways", 2, "associativity for N-way organizations")
		pip      = flag.Float64("pip", 0.85, "preferred-way install probability (pws)")
		scale    = flag.Int64("scale", 256, "capacity scale divisor (1 = full 4 GB)")
		cores    = flag.Int("cores", 16, "core count")
		warmup   = flag.Int64("warmup", 4_000_000, "warmup instructions per core")
		measure  = flag.Int64("measure", 4_000_000, "measured instructions per core")
		seed     = flag.Int64("seed", 1, "simulation seed")
		baseline = flag.Bool("baseline", false, "also run the direct-mapped baseline and report speedup")
		trace    = flag.String("trace", "", "replay a trace file (see cmd/tracegen) instead of a named workload")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON instead of a table")
		list     = flag.Bool("list", false, "list workloads and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("rate-mode workloads:")
		fmt.Println("  " + strings.Join(workloads.Names(), " "))
		fmt.Println("mixes: mix1 .. mix10")
		return
	}

	cfg, err := sim.Named(*org, *ways, *pip)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *trace != "" {
		// Traces carry their own pacing; use the configured windows as-is.
		cfg.DisableAdaptiveBudgets = true
	}
	cfg.Scale = *scale
	cfg.Cores = *cores
	cfg.WarmupInstr = *warmup
	cfg.MeasureInstr = *measure
	cfg.Seed = *seed

	var wl workloads.Workload
	var err2 error
	if *trace != "" {
		wl, err2 = loadTrace(*trace, cfg.Cores)
	} else {
		wl, err2 = workloads.Get(*workload, cfg.Cores)
	}
	if err2 != nil {
		fmt.Fprintln(os.Stderr, err2)
		os.Exit(2)
	}

	res := sim.New(cfg, wl).Run(wl.Name)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	printResult(cfg, res)

	if *baseline {
		base := sim.DirectMapped()
		base.Scale, base.Cores = cfg.Scale, cfg.Cores
		base.WarmupInstr, base.MeasureInstr, base.Seed = cfg.WarmupInstr, cfg.MeasureInstr, cfg.Seed
		base.DisableAdaptiveBudgets = cfg.DisableAdaptiveBudgets
		if *trace != "" {
			// Trace streams are stateful; the baseline needs a fresh replay.
			wl, err2 = loadTrace(*trace, cfg.Cores)
			if err2 != nil {
				fmt.Fprintln(os.Stderr, err2)
				os.Exit(1)
			}
		}
		bres := sim.New(base, wl).Run(wl.Name)
		fmt.Printf("\nbaseline (direct-mapped) mean IPC: %.4f\n", bres.MeanIPC())
		fmt.Printf("weighted speedup:                  %.4f\n", sim.WeightedSpeedup(res, bres))
	}
}

// loadTrace reads a tracegen-format file and replays it on every core.
func loadTrace(path string, cores int) (workloads.Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return workloads.Workload{}, err
	}
	defer f.Close()
	st, err := workloads.ReadTrace(f)
	if err != nil {
		return workloads.Workload{}, err
	}
	return workloads.TraceWorkload(path, st.Events, cores)
}

func printResult(cfg sim.Config, res sim.Result) {
	fmt.Printf("config:   %s  (scale 1/%d, %.1f MB model cache)\n",
		res.Config, cfg.Scale, float64(cfg.L4Capacity())/(1<<20))
	fmt.Printf("workload: %s\n\n", res.Workload)

	t := stats.NewTable("", "metric", "value")
	t.AddRowf("L4 reads", res.L4.Reads)
	t.AddRowf("L4 hit rate", fmt.Sprintf("%.2f%%", 100*res.HitRate()))
	t.AddRowf("way-pred accuracy", fmt.Sprintf("%.2f%%", 100*res.Accuracy()))
	t.AddRowf("probes per read", fmt.Sprintf("%.3f", res.L4.ProbesPerRead()))
	t.AddRowf("avg hit latency (cyc)", fmt.Sprintf("%.1f", res.L4.HitLatency.Mean()))
	t.AddRowf("avg miss latency (cyc)", fmt.Sprintf("%.1f", res.L4.MissLatency.Mean()))
	t.AddRowf("L4 writebacks", res.L4.Writebacks)
	t.AddRowf("NVM reads / writes", fmt.Sprintf("%d / %d", res.L4.NVMReads, res.L4.NVMWrites))
	t.AddRowf("mean IPC", fmt.Sprintf("%.4f", res.MeanIPC()))
	fmt.Print(t.Render())

	b := energy.Compute(cfg.HBM, res.HBM, cfg.PCM, res.PCM, res.Cycles, cfg.CPUGHz)
	fmt.Printf("\nenergy: %.4f J total (%.2f W avg, EDP %.5f J·s)\n", b.Total(), b.Power(), b.EDP())
}
