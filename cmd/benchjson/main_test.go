package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name string, f File) string {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseMedians(t *testing.T) {
	in := strings.NewReader(`
goos: linux
BenchmarkFoo-8   	      10	 100.0 ns/op	      16 B/op	       2 allocs/op
BenchmarkFoo-8   	      10	 300.0 ns/op	      16 B/op	       2 allocs/op
BenchmarkFoo-8   	      10	 200.0 ns/op	      16 B/op	       2 allocs/op
BenchmarkBar     	       5	  50.0 ns/op
PASS
`)
	got, err := parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(got))
	}
	if got[0].Name != "BenchmarkFoo" || got[0].Runs != 3 || got[0].NsPerOp != 200 {
		t.Errorf("BenchmarkFoo reduced to %+v, want median 200 over 3 runs", got[0])
	}
	if got[0].AllocsPerOp != 2 || got[0].BytesPerOp != 16 {
		t.Errorf("BenchmarkFoo allocs/bytes = %v/%v, want 2/16", got[0].AllocsPerOp, got[0].BytesPerOp)
	}
	if got[1].Name != "BenchmarkBar" || got[1].NsPerOp != 50 {
		t.Errorf("BenchmarkBar reduced to %+v", got[1])
	}
}

// TestCompareReporting pins the compare-mode contract the CI trajectory
// job relies on: per-benchmark regression highlighting, missing-baseline
// reporting with a ::warning:: annotation, and the geomean exit-code
// gate.
func TestCompareReporting(t *testing.T) {
	dir := t.TempDir()
	oldP := writeFile(t, dir, "old.json", File{Benchmarks: []Benchmark{
		{Name: "BenchmarkFlat", NsPerOp: 1000},
		{Name: "BenchmarkSlow", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 1000},
	}})
	newP := writeFile(t, dir, "new.json", File{Benchmarks: []Benchmark{
		{Name: "BenchmarkFlat", NsPerOp: 1000},
		{Name: "BenchmarkSlow", NsPerOp: 1500},
		{Name: "BenchmarkNew", NsPerOp: 42},
	}})

	var out bytes.Buffer
	code, err := compare(&out, oldP, newP, 1.15, 10.0, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0 (geomean under failure threshold)", code)
	}
	text := out.String()
	for _, want := range []string{
		"BenchmarkSlow",
		"<< regressed",
		"worst regression: BenchmarkSlow at 1.500x",
		"BenchmarkGone",
		"missing",
		"::warning::1 baseline benchmark(s) missing from new capture: BenchmarkGone",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("compare output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(strings.Split(text, "BenchmarkSlow")[0]+"x", "BenchmarkFlat  << regressed") {
		t.Errorf("flat benchmark wrongly highlighted:\n%s", text)
	}

	// Geomean over {1.0, 1.5} is ~1.22; a 1.2 failure threshold must trip
	// the nonzero exit.
	out.Reset()
	code, err = compare(&out, oldP, newP, 1.05, 1.2, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1 above failure threshold", code)
	}
	if !strings.Contains(out.String(), "::error::") {
		t.Errorf("failure path did not annotate:\n%s", out.String())
	}
}

// TestCompareStrictMissing pins the -strict contract: a missing baseline
// benchmark escalates from ::warning:: to ::error:: and flips the exit
// code, while a strict compare with full coverage stays green.
func TestCompareStrictMissing(t *testing.T) {
	dir := t.TempDir()
	oldP := writeFile(t, dir, "old.json", File{Benchmarks: []Benchmark{
		{Name: "BenchmarkFlat", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 1000},
	}})
	newP := writeFile(t, dir, "new.json", File{Benchmarks: []Benchmark{
		{Name: "BenchmarkFlat", NsPerOp: 1000},
	}})

	var out bytes.Buffer
	code, err := compare(&out, oldP, newP, 1.15, 10.0, true)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1 for missing baseline under -strict", code)
	}
	if !strings.Contains(out.String(), "::error::1 baseline benchmark(s) missing") {
		t.Errorf("strict missing baseline not escalated to ::error:::\n%s", out.String())
	}

	fullP := writeFile(t, dir, "full.json", File{Benchmarks: []Benchmark{
		{Name: "BenchmarkFlat", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 1010},
	}})
	out.Reset()
	code, err = compare(&out, oldP, fullP, 1.15, 10.0, true)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0 for strict compare with full coverage:\n%s", code, out.String())
	}
}
