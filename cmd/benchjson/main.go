// Command benchjson turns `go test -bench` output into a committed,
// machine-readable benchmark trajectory, and compares two such files.
//
//	go test -run '^$' -bench 'Fig|Tab' -benchtime 1x -count 3 . | benchjson -o BENCH_PR3.json
//	benchjson -compare BENCH_PR3.json bench_new.json
//
// Capture mode parses benchmark lines (multiple -count runs of the same
// benchmark are reduced to their median), records ns/op, B/op and
// allocs/op per benchmark plus the geometric-mean ns/op, and stamps a
// manifest with the git revision and Go version so a committed file
// documents where its numbers came from.
//
// Compare mode matches benchmarks by name between an old (baseline) and
// new file, prints a per-benchmark delta table — rows individually past
// the warning threshold are highlighted, and baseline benchmarks absent
// from the new capture are listed as missing (with a ::warning::, since
// a vanished benchmark silently shrinks the gate) — and gates on the
// geometric mean of the new/old time ratios: above -warn it emits a
// GitHub Actions ::warning:: annotation, above -fail it exits nonzero.
// The two thresholds exist because wall-time benchmarks on shared CI
// runners are noisy — flag early, fail only on unambiguous regressions.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one benchmark's reduced result.
type Benchmark struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// File is the committed benchmark-trajectory document.
type File struct {
	Manifest   Manifest    `json:"manifest"`
	Benchmarks []Benchmark `json:"benchmarks"`
	GeomeanNs  float64     `json:"geomean_ns_per_op"`
}

// Manifest records the provenance of a capture.
type Manifest struct {
	Generated string `json:"generated"`
	Git       string `json:"git"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// parse reduces raw `go test -bench` output to per-benchmark medians.
func parse(r io.Reader) ([]Benchmark, error) {
	type acc struct{ ns, bytes, allocs []float64 }
	byName := map[string]*acc{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		a := byName[m[1]]
		if a == nil {
			a = &acc{}
			byName[m[1]] = a
			order = append(order, m[1])
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		a.ns = append(a.ns, ns)
		if m[3] != "" {
			b, _ := strconv.ParseFloat(m[3], 64)
			a.bytes = append(a.bytes, b)
		}
		if m[4] != "" {
			al, _ := strconv.ParseFloat(m[4], 64)
			a.allocs = append(a.allocs, al)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	var out []Benchmark
	for _, name := range order {
		a := byName[name]
		b := Benchmark{Name: name, Runs: len(a.ns), NsPerOp: median(a.ns)}
		if len(a.bytes) > 0 {
			b.BytesPerOp = median(a.bytes)
		}
		if len(a.allocs) > 0 {
			b.AllocsPerOp = median(a.allocs)
		}
		out = append(out, b)
	}
	return out, nil
}

func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func capture(in io.Reader, outPath string) error {
	benches, err := parse(in)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return errors.New("no benchmark lines found in input")
	}
	var times []float64
	for _, b := range benches {
		times = append(times, b.NsPerOp)
	}
	f := File{
		Manifest: Manifest{
			Generated: time.Now().UTC().Format(time.RFC3339),
			Git:       gitDescribe(),
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
		},
		Benchmarks: benches,
		GeomeanNs:  geomean(times),
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks (geomean %.1f ns/op) to %s\n",
		len(benches), f.GeomeanNs, outPath)
	return nil
}

func load(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	return f, json.Unmarshal(data, &f)
}

func compare(w io.Writer, oldPath, newPath string, warn, fail float64, strict bool) (int, error) {
	oldF, err := load(oldPath)
	if err != nil {
		return 2, err
	}
	newF, err := load(newPath)
	if err != nil {
		return 2, err
	}
	oldBy := map[string]Benchmark{}
	for _, b := range oldF.Benchmarks {
		oldBy[b.Name] = b
	}
	var ratios []float64
	var worst Benchmark
	worstRatio := 0.0
	seen := map[string]bool{}
	fmt.Fprintf(w, "%-34s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, nb := range newF.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok || ob.NsPerOp == 0 {
			fmt.Fprintf(w, "%-34s %14s %14.0f %8s\n", nb.Name, "-", nb.NsPerOp, "new")
			continue
		}
		seen[nb.Name] = true
		r := nb.NsPerOp / ob.NsPerOp
		ratios = append(ratios, r)
		// Per-benchmark highlight: the geomean gate below can hide one
		// bad benchmark among many flat ones, so anything individually
		// past the warning threshold is flagged on its own row.
		mark := ""
		if r > warn {
			mark = "  << regressed"
			if r > worstRatio {
				worstRatio, worst = r, nb
			}
		}
		fmt.Fprintf(w, "%-34s %14.0f %14.0f %7.3fx%s\n", nb.Name, ob.NsPerOp, nb.NsPerOp, r, mark)
	}
	// Baseline benchmarks with no counterpart in the new capture would
	// otherwise silently shrink the gate — a deleted (or renamed, or
	// accidentally filtered-out) benchmark is invisible to a ratio over
	// common names only.
	var missing []string
	for _, ob := range oldF.Benchmarks {
		if !seen[ob.Name] {
			fmt.Fprintf(w, "%-34s %14.0f %14s %8s\n", ob.Name, ob.NsPerOp, "-", "missing")
			missing = append(missing, ob.Name)
		}
	}
	if len(ratios) == 0 {
		return 2, fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
	}
	g := geomean(ratios)
	fmt.Fprintf(w, "\ngeomean ratio (new/old, %d benchmarks): %.3fx  [baseline %s -> %s]\n",
		len(ratios), g, oldF.Manifest.Git, newF.Manifest.Git)
	if worstRatio > 0 {
		fmt.Fprintf(w, "worst regression: %s at %.3fx\n", worst.Name, worstRatio)
	}
	if len(missing) > 0 {
		level := "warning"
		if strict {
			level = "error"
		}
		fmt.Fprintf(w, "::%s::%d baseline benchmark(s) missing from new capture: %s\n",
			level, len(missing), strings.Join(missing, ", "))
	}
	switch {
	case g > fail:
		fmt.Fprintf(w, "::error::benchmark geomean regressed %.1f%% (> %.0f%% failure threshold)\n",
			(g-1)*100, (fail-1)*100)
		return 1, nil
	case g > warn:
		fmt.Fprintf(w, "::warning::benchmark geomean regressed %.1f%% (> %.0f%% warning threshold)\n",
			(g-1)*100, (warn-1)*100)
	}
	if strict && len(missing) > 0 {
		return 1, nil
	}
	return 0, nil
}

func main() {
	var (
		out    = flag.String("o", "-", "capture mode: output path for the JSON document ('-' = stdout)")
		in     = flag.String("in", "-", "capture mode: `go test -bench` output to parse ('-' = stdin)")
		cmp    = flag.Bool("compare", false, "compare mode: args are <old.json> <new.json>")
		warnAt = flag.Float64("warn", 1.15, "compare mode: warn when geomean ratio exceeds this")
		failAt = flag.Float64("fail", 1.30, "compare mode: exit nonzero when geomean ratio exceeds this")
		strict = flag.Bool("strict", false, "compare mode: exit nonzero when baseline benchmarks are missing from the new capture (instead of only warning)")
	)
	flag.Parse()

	if *cmp {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json new.json")
			os.Exit(2)
		}
		code, err := compare(os.Stdout, flag.Arg(0), flag.Arg(1), *warnAt, *failAt, *strict)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		}
		os.Exit(code)
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		r = f
	}
	if err := capture(r, *out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
}
