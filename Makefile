# Repository verification targets. `make verify` is what CI (and the
# ROADMAP's tier-1 gate) should run; the individual targets are useful
# while iterating.

GO ?= go

# Benchmark-trajectory settings: the paper-artifact suite, run -count
# times and reduced to medians by cmd/benchjson. BENCH_JSON is the
# committed trajectory file CI compares fresh runs against.
BENCH_PATTERN ?= BenchmarkFig|BenchmarkTab|BenchmarkLRU|BenchmarkAbl
BENCH_COUNT   ?= 3
BENCH_JSON    ?= BENCH_PR3.json

.PHONY: all build test race vet bench-smoke bench-json bench-compare profile verify

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment scheduler and the metrics registry are the main
# concurrency surfaces; exercise them under the race detector (short
# mode keeps the full-experiment determinism test out of the hot loop —
# `go test -race ./internal/exp` without -short runs it too).
race:
	$(GO) test -race -short ./internal/exp ./internal/sim ./internal/metrics

vet:
	$(GO) vet ./...

# A fast benchmark pass that catches gross performance or allocation
# regressions on the hot paths the scheduler multiplies.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkSimulatorThroughput|BenchmarkSessionParallel|BenchmarkDRAMCacheRead' -benchtime 2x .

# Capture the benchmark trajectory: run the paper-artifact suite and
# reduce it to a committed JSON document (medians, geomean, manifest).
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1x -count $(BENCH_COUNT) -timeout 3600s . \
		| $(GO) run ./cmd/benchjson -o $(BENCH_JSON)

# Compare a fresh capture against the committed baseline; warns at a
# 15% geomean regression and fails at 30% (wall-clock benchmarks on
# shared runners are noisy — see cmd/benchjson).
bench-compare:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1x -count $(BENCH_COUNT) -timeout 3600s . \
		| $(GO) run ./cmd/benchjson -o /tmp/bench_current.json
	$(GO) run ./cmd/benchjson -compare $(BENCH_JSON) /tmp/bench_current.json

# Profile the simulation kernel end to end: accordbench already carries
# -cpuprofile/-memprofile flags; this wraps them with a representative
# workload and opens the top functions. Use `go tool pprof -http` on
# /tmp/accord.cpu.prof to explore interactively.
profile:
	$(GO) run ./cmd/accordbench -quick -experiment fig1 -cpuprofile /tmp/accord.cpu.prof -memprofile /tmp/accord.mem.prof > /dev/null
	$(GO) tool pprof -top -nodecount=15 /tmp/accord.cpu.prof

verify: build vet test race
