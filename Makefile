# Repository verification targets. `make verify` is what CI (and the
# ROADMAP's tier-1 gate) should run; the individual targets are useful
# while iterating.

GO ?= go

# Benchmark-trajectory settings: the paper-artifact suite, run -count
# times and reduced to medians by cmd/benchjson. BENCH_JSON is the
# committed trajectory file CI compares fresh runs against.
BENCH_PATTERN ?= BenchmarkFig|BenchmarkTab|BenchmarkLRU|BenchmarkAbl|BenchmarkCkpt|BenchmarkTraceSession|BenchmarkFunctionalStep|BenchmarkSampledRun|BenchmarkSampledParallel|BenchmarkSpineResume|BenchmarkLatticeProbe
BENCH_COUNT   ?= 3
BENCH_JSON    ?= BENCH_PR10.json
# Packages holding trajectory benchmarks: the paper-artifact suite at the
# repo root, the sampling and spine-lattice benchmarks next to their
# drivers, and the lattice codec benchmark in the checkpoint package.
BENCH_PKGS    ?= . ./internal/sim ./internal/ckpt

# Lint: staticcheck at a pinned version, resolved through the module
# proxy by `go run` (not a repo dependency). Requires network access on
# first use; CI caches the module download.
STATICCHECK_VERSION ?= 2025.1.1

# Warm-state checkpoint store settings: `make checkpoints` populates
# CKPT_DIR with checkpoints for the golden-suite configurations, so test
# runs with ACCORD_CHECKPOINT_DIR pointing there skip their warmup.
CKPT_DIR ?= .ckpt

.PHONY: all build test race vet lint bench-smoke bench-json bench-compare checkpoints profile verify

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment scheduler, the metrics registry, and the trace cache's
# lazy-extension protocol are the main concurrency surfaces; exercise
# them under the race detector (short mode keeps the full-experiment
# determinism test out of the hot loop — `go test -race ./internal/exp`
# without -short runs it too).
race:
	$(GO) test -race -short ./internal/exp ./internal/sim ./internal/metrics ./internal/workloads

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Pinned so lint results are reproducible;
# bump STATICCHECK_VERSION deliberately, not via @latest.
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# A fast benchmark pass that catches gross performance or allocation
# regressions on the hot paths the scheduler multiplies.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkSimulatorThroughput|BenchmarkSessionParallel|BenchmarkDRAMCacheRead' -benchtime 2x .

# Capture the benchmark trajectory: run the paper-artifact suite and
# reduce it to a committed JSON document (medians, geomean, manifest).
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1x -count $(BENCH_COUNT) -timeout 3600s $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson -o $(BENCH_JSON)

# Compare a fresh capture against the committed baseline; warns at a
# 15% geomean regression and fails at 30% (wall-clock benchmarks on
# shared runners are noisy — see cmd/benchjson).
bench-compare:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1x -count $(BENCH_COUNT) -timeout 3600s $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson -o /tmp/bench_current.json
	$(GO) run ./cmd/benchjson -compare $(BENCH_JSON) /tmp/bench_current.json

# Populate CKPT_DIR with warm-state checkpoints for the golden-suite
# configurations (the three architectures at the pinned golden scale).
# The store is content-addressed by a digest over every warmup-affecting
# parameter, so stale entries are never wrongly reused — invalidation is
# automatic and re-running this target after a behavior change simply
# writes new keys.
checkpoints:
	@for org in direct accord ca banshee gemini tdram; do \
		$(GO) run ./cmd/accordsim -workload libquantum -org $$org -ways 2 \
			-scale 8192 -cores 4 -warmup 50000 -measure 50000 -seed 1 \
			-checkpoint-dir $(CKPT_DIR) >/dev/null || exit 1; \
	done
	@echo "checkpoint store populated in $(CKPT_DIR)"

# Profile the simulation kernel end to end: accordbench already carries
# -cpuprofile/-memprofile flags; this wraps them with a representative
# workload and opens the top functions. Use `go tool pprof -http` on
# /tmp/accord.cpu.prof to explore interactively.
profile:
	$(GO) run ./cmd/accordbench -quick -experiment fig1 -cpuprofile /tmp/accord.cpu.prof -memprofile /tmp/accord.mem.prof > /dev/null
	$(GO) tool pprof -top -nodecount=15 /tmp/accord.cpu.prof

verify: build vet test race
