# Repository verification targets. `make verify` is what CI (and the
# ROADMAP's tier-1 gate) should run; the individual targets are useful
# while iterating.

GO ?= go

.PHONY: all build test race vet bench-smoke verify

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment scheduler and the metrics registry are the main
# concurrency surfaces; exercise them under the race detector (short
# mode keeps the full-experiment determinism test out of the hot loop —
# `go test -race ./internal/exp` without -short runs it too).
race:
	$(GO) test -race -short ./internal/exp ./internal/sim ./internal/metrics

vet:
	$(GO) vet ./...

# A fast benchmark pass that catches gross performance or allocation
# regressions on the hot paths the scheduler multiplies.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkSimulatorThroughput|BenchmarkSessionParallel|BenchmarkDRAMCacheRead' -benchtime 2x .

verify: build vet test race
