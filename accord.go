// Package accord is a from-scratch reproduction of ACCORD — "Enabling
// Associativity for Gigascale DRAM Caches by Coordinating Way-Install and
// Way-Prediction" (ISCA 2018) — together with the full memory-system
// simulator its evaluation runs on: a 16-core system with an alloy-style
// stacked-DRAM cache in front of PCM-like non-volatile main memory.
//
// The package is a facade over the implementation packages:
//
//   - Way policies (the paper's contribution): probabilistic (PWS), ganged
//     (GWS), and skewed (SWS) way-steering, plus the conventional
//     random/MRU/partial-tag predictors and the column-associative cache
//     it is compared against.
//   - System configurations for every design point in the paper's figures
//     (DirectMapped, Parallel, Serial, Idealized, PerfectWP, PWS, GWS,
//     ACCORD, MRU, PartialTag, CACache, LRU2Way, Banshee, Gemini, TDRAM).
//   - Workloads: synthetic SPEC/GAP/HPC-calibrated streams (see
//     internal/workloads) resolved by name, including mixes.
//   - Experiments: one runnable artifact per table/figure of the paper.
//
// Quick start:
//
//	cfg := accord.ACCORD(2)             // the paper's 2-way design
//	res := accord.Run(cfg, "soplex")    // simulate one workload
//	base := accord.Run(accord.DirectMapped(), "soplex")
//	fmt.Println(accord.WeightedSpeedup(res, base))
package accord

import (
	"accord/internal/core"
	"accord/internal/dram"
	"accord/internal/dramcache"
	"accord/internal/energy"
	"accord/internal/exp"
	"accord/internal/sim"
	"accord/internal/stats"
	"accord/internal/workloads"
)

// Core simulation types.
type (
	// Config describes one system configuration (see the catalog below).
	Config = sim.Config
	// Result captures one simulation run: per-core IPCs, cache stats, and
	// device traffic.
	Result = sim.Result
	// PolicyFactory builds a way policy for a cache geometry.
	PolicyFactory = sim.PolicyFactory
	// SamplingConfig enables SMARTS-style interval sampling on a Config.
	SamplingConfig = sim.SamplingConfig
	// SampleSummary reports a sampled run's estimates with confidence
	// intervals (Result.Sampled).
	SampleSummary = sim.SampleSummary
	// MetricCI is one sampled estimate: mean ± Student-t half-width.
	MetricCI = sim.MetricCI
	// IntervalObs is one committed interval of a sampled run
	// (SampleSummary.Series).
	IntervalObs = sim.IntervalObs
	// System is a constructed simulation (NewSystem) for callers that
	// need more than Run: snapshots, sampled-run diagnostics.
	System = sim.System
	// SampleWork reports how a sampled run's work was executed —
	// worker count, speculation accounting, spine/worker time split
	// (System.SampleWork; diagnostic only, never part of Result).
	SampleWork = sim.SampleWork
	// TraceCache records each workload stream once and replays it
	// byte-identically across runs that share it.
	TraceCache = workloads.TraceCache

	// Policy couples way-install and way-prediction (the ACCORD framework).
	Policy = core.Policy
	// Geometry is a cache shape (sets x ways).
	Geometry = core.Geometry
	// ACCORDConfig selects which way-steering mechanisms a policy applies.
	ACCORDConfig = core.ACCORDConfig

	// DeviceConfig parameterizes a DRAM-like device (HBM cache or PCM).
	DeviceConfig = dram.Config
	// Lookup selects how the DRAM cache locates a line among its ways.
	Lookup = dramcache.Lookup

	// EnergyBreakdown is the off-chip energy of one run.
	EnergyBreakdown = energy.Breakdown

	// Workload assigns one generator spec per core.
	Workload = workloads.Workload
	// WorkloadSpec parameterizes one core's synthetic stream.
	WorkloadSpec = workloads.Spec

	// Experiment is one reproducible paper table/figure.
	Experiment = exp.Experiment
	// ExperimentParams controls experiment scale and duration.
	ExperimentParams = exp.Params
	// Table is rendered experiment output.
	Table = stats.Table
)

// Lookup strategies (Section II-C).
const (
	LookupPredicted = dramcache.LookupPredicted
	LookupParallel  = dramcache.LookupParallel
	LookupSerial    = dramcache.LookupSerial
	LookupPerfect   = dramcache.LookupPerfect
	LookupIdealized = dramcache.LookupIdealized
)

// Configuration catalog — the design points of the paper's evaluation.
var (
	// DefaultConfig is the Table III baseline system.
	DefaultConfig = sim.Default
	// DirectMapped is the KNL-style baseline DRAM cache.
	DirectMapped = sim.DirectMapped
	// Parallel streams all N ways on every access (Figure 3a).
	Parallel = sim.Parallel
	// Serial probes ways one at a time (Figure 3b).
	Serial = sim.Serial
	// Idealized is the Figure 1(c) oracle (N-way hit rate at 1-way cost).
	Idealized = sim.Idealized
	// PerfectWP is perfect way prediction (Figure 10).
	PerfectWP = sim.PerfectWP
	// PWS is probabilistic way-steering at a given PIP (Section IV-B).
	PWS = sim.PWS
	// GWS is ganged way-steering alone (Section IV-C).
	GWS = sim.GWS
	// ACCORD is the full design: PWS+GWS at 2 ways, +SWS(N,2) above.
	ACCORD = sim.ACCORD
	// MRU is the per-set MRU predictor baseline (Table II).
	MRU = sim.MRU
	// PartialTag is the partial-tag predictor baseline (Table II).
	PartialTag = sim.PartialTag
	// CACache is the column-associative (hash-rehash) baseline (Section VII).
	CACache = sim.CACache
	// LRU2Way reproduces footnote 2's LRU replacement bandwidth tax.
	LRU2Way = sim.LRU2Way
	// Banshee is the page-granularity frequency-tracked organization
	// (Banshee, MICRO 2017) behind the L4 backend registry.
	Banshee = sim.Banshee
	// Gemini is the hybrid set/way-mapped organization (zero-SRAM way
	// prediction by construction).
	Gemini = sim.Gemini
	// TDRAM is the tag-enhanced DRAM organization (single-access hits,
	// early miss detection).
	TDRAM = sim.TDRAM
	// BackendNames lists the registered L4 organization backends.
	BackendNames = dramcache.BackendNames
	// NamedConfig resolves an organization by CLI-style name.
	NamedConfig = sim.Named
	// DefaultSampling is a reasonable interval-sampling layout for a
	// given period (5% detailed, 2.5% detailed-unmeasured re-warm).
	DefaultSampling = sim.DefaultSampling

	// HBM and PCMConfig are the Table III device parameter sets.
	HBM       = dram.HBM
	PCMConfig = dram.PCM

	// NewACCORDPolicy builds a standalone ACCORD policy instance.
	NewACCORDPolicy = core.NewACCORD
	// DefaultACCORDConfig is the paper's configuration for a geometry.
	DefaultACCORDConfig = core.DefaultACCORD
	// NewRandPolicy, NewMRUPolicy, and NewPartialTagPolicy build the
	// conventional way predictors the paper compares against (Table II).
	NewRandPolicy       = core.NewRand
	NewMRUPolicy        = core.NewMRU
	NewPartialTagPolicy = core.NewPartialTag

	// WeightedSpeedup is the paper's performance metric.
	WeightedSpeedup = sim.WeightedSpeedup

	// ComputeEnergy derives the Figure 15 energy breakdown of a run.
	ComputeEnergy = energy.Compute

	// WorkloadNames lists the rate-mode workloads; CoreSuite and AllSuite
	// are the paper's 21- and 46-workload suites.
	WorkloadNames = workloads.Names
	CoreSuite     = workloads.CoreSuite
	AllSuite      = workloads.AllSuite
	GetWorkload   = workloads.Get
	// NewTraceCache builds a shared stream recording (byteBudget 0 =
	// default); NewSystem constructs a System from a Config and Workload.
	NewTraceCache = workloads.NewTraceCache
	NewSystem     = sim.New

	// Experiments lists every paper artifact; FindExperiment resolves one
	// by ID (e.g. "fig10"); NewExperimentSession memoizes runs across
	// experiments.
	Experiments          = exp.All
	FindExperiment       = exp.Find
	NewExperimentSession = exp.NewSession
	DefaultParams        = exp.DefaultParams
	QuickParams          = exp.QuickParams
)

// Run simulates cfg on the named workload and returns the result. Unknown
// workload names return an error through RunE; Run panics on them, which
// suits example and test code.
func Run(cfg Config, workload string) Result {
	res, err := RunE(cfg, workload)
	if err != nil {
		panic(err)
	}
	return res
}

// RunE simulates cfg on the named workload.
func RunE(cfg Config, workload string) (Result, error) {
	wl, err := workloads.Get(workload, cfg.Cores)
	if err != nil {
		return Result{}, err
	}
	return sim.New(cfg, wl).Run(workload), nil
}
