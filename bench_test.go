package accord

import (
	"fmt"
	"runtime"
	"testing"

	"accord/internal/core"
	"accord/internal/dram"
	"accord/internal/dramcache"
	"accord/internal/exp"
	"accord/internal/memtypes"
	"accord/internal/sim"
	"accord/internal/workloads"
)

// benchParams is the reduced scale used by the per-artifact benchmarks: a
// 512 KB model cache keeps one full experiment in the hundreds of
// milliseconds to seconds range. cmd/accordbench runs the same experiments
// at full quality.
func benchParams() exp.Params {
	// TraceCache mirrors the production default (exp.DefaultParams): each
	// iteration's session records every workload stream once and replays
	// it for the remaining design points.
	return exp.Params{Scale: 8192, Cores: 4, WarmupInstr: 100_000, MeasureInstr: 100_000, Seed: 1, TraceCache: true}
}

// benchExperiment runs one paper artifact end to end per iteration.
func benchExperiment(b *testing.B, id string) {
	e, ok := exp.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(benchParams())
		tables := e.Run(s)
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

// One benchmark per table and figure of the paper's evaluation.

func BenchmarkFig1(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkTab1(b *testing.B)  { benchExperiment(b, "tab1") }
func BenchmarkTab2(b *testing.B)  { benchExperiment(b, "tab2") }
func BenchmarkFig6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkTab5(b *testing.B)  { benchExperiment(b, "tab5") }
func BenchmarkFig7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkTab6(b *testing.B)  { benchExperiment(b, "tab6") }
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkTab7(b *testing.B)  { benchExperiment(b, "tab7") }
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkTab8(b *testing.B)  { benchExperiment(b, "tab8") }
func BenchmarkTab9(b *testing.B)  { benchExperiment(b, "tab9") }
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkTab10(b *testing.B) { benchExperiment(b, "tab10") }
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkLRU(b *testing.B)   { benchExperiment(b, "lru") }

// Ablation benchmarks for the design choices DESIGN.md calls out.

func BenchmarkAblGWSTables(b *testing.B) { benchExperiment(b, "ablgws") }
func BenchmarkAblSWSK(b *testing.B)      { benchExperiment(b, "ablsws") }
func BenchmarkAblHierarchy(b *testing.B) { benchExperiment(b, "ablhier") }

// Substrate microbenchmarks.

func BenchmarkDRAMAccess(b *testing.B) {
	d := dram.New(dram.HBM(), 3.0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		loc := dram.Loc{Channel: i & 7, Bank: (i >> 3) & 15, Row: uint64(i >> 7)}
		d.Access(int64(i), loc, memtypes.Read, memtypes.TagUnitSize)
	}
}

func BenchmarkACCORDPredict(b *testing.B) {
	p := core.NewACCORD(core.DefaultACCORD(core.Geometry{Sets: 1 << 16, Ways: 2}, 1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		set := uint64(i) & 0xFFFF
		tag := uint64(i) >> 16
		p.PredictWay(set, tag, memtypes.RegionID(i>>6))
	}
}

func BenchmarkACCORDInstall(b *testing.B) {
	p := core.NewACCORD(core.DefaultACCORD(core.Geometry{Sets: 1 << 16, Ways: 8}, 1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		set := uint64(i) & 0xFFFF
		tag := uint64(i) >> 16
		w := p.InstallWay(set, tag, memtypes.RegionID(i>>6))
		p.ObserveInstall(set, tag, memtypes.RegionID(i>>6), w)
	}
}

func BenchmarkDRAMCacheRead(b *testing.B) {
	hbm := dram.New(dram.HBM(), 3.0)
	pcm := dram.New(dram.PCM(), 3.0)
	pol := core.NewACCORD(core.DefaultACCORD(core.Geometry{Sets: 1 << 14, Ways: 2}, 1))
	c := dramcache.New(dramcache.Config{
		CapacityBytes: (1 << 14) * 2 * memtypes.LineSize,
		Ways:          2,
		Lookup:        dramcache.LookupPredicted,
	}, pol, hbm, pcm)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.AccessRead(int64(i), memtypes.LineAddr(i%(1<<15)))
	}
}

func BenchmarkWorkloadStream(b *testing.B) {
	wl := workloads.MustGet("soplex", 16)
	st := workloads.NewStream(wl.Specs[0], 1<<18, 16, 1)
	var ev workloads.Event
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Next(&ev)
	}
}

// BenchmarkSessionParallel measures one full experiment through the
// session scheduler at parallelism 1 versus GOMAXPROCS. On a multi-core
// host the second sub-benchmark should approach a core-count speedup;
// the rendered tables are byte-identical either way.
func BenchmarkSessionParallel(b *testing.B) {
	e, ok := exp.Find("tab6")
	if !ok {
		b.Fatal("unknown experiment tab6")
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := benchParams()
				p.Parallelism = workers
				s := exp.NewSession(p)
				if tables := s.RunExperiment(e); len(tables) == 0 {
					b.Fatal("tab6 produced no tables")
				}
			}
		})
	}
}

// BenchmarkTraceSession measures a multi-configuration sweep — four
// architectures over three shared workloads — through one session with
// the trace cache off (cold: every run regenerates its streams) and on
// (shared: the first run per workload records, eleven replays follow).
// The shared variant is the trace cache's headline wall-clock win.
func BenchmarkTraceSession(b *testing.B) {
	configs := []sim.Config{sim.DirectMapped(), sim.ACCORD(2), sim.MRU(2), sim.CACache()}
	names := []string{"libquantum", "soplex", "mcf"}
	for _, variant := range []struct {
		name  string
		trace bool
	}{{"cold", false}, {"shared", true}} {
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := benchParams()
				p.TraceCache = variant.trace
				s := exp.NewSession(p)
				for _, cfg := range configs {
					for _, wl := range names {
						if res := s.Run(cfg, wl); res.Instructions == 0 {
							b.Fatalf("%s/%s retired no instructions", cfg.Name, wl)
						}
					}
				}
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures end-to-end simulated instructions
// per wall second on the default ACCORD configuration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := sim.ACCORD(2)
	cfg.Scale = 4096
	cfg.Cores = 4
	cfg.WarmupInstr = 100_000
	cfg.MeasureInstr = 200_000
	wl := workloads.MustGet("libquantum", cfg.Cores)
	b.ReportAllocs()
	var instr int64
	for i := 0; i < b.N; i++ {
		res := sim.New(cfg, wl).Run("libquantum")
		instr += res.Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "instr/s")
}
