package accord

import (
	"testing"
)

// quick returns a configuration scaled for fast facade tests.
func quick(cfg Config) Config {
	cfg.Scale = 8192
	cfg.Cores = 4
	cfg.WarmupInstr = 100_000
	cfg.MeasureInstr = 100_000
	return cfg
}

func TestFacadeRun(t *testing.T) {
	res := Run(quick(ACCORD(2)), "libquantum")
	if res.L4.Reads == 0 || res.HitRate() <= 0 || res.MeanIPC() <= 0 {
		t.Errorf("facade run produced degenerate result: %+v", res.L4)
	}
}

func TestFacadeRunEUnknownWorkload(t *testing.T) {
	if _, err := RunE(quick(DirectMapped()), "not-a-workload"); err == nil {
		t.Error("RunE accepted an unknown workload")
	}
}

func TestFacadeRunPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Run did not panic on unknown workload")
		}
	}()
	Run(quick(DirectMapped()), "not-a-workload")
}

func TestFacadeSpeedup(t *testing.T) {
	base := Run(quick(DirectMapped()), "soplex")
	acc := Run(quick(ACCORD(2)), "soplex")
	ws := WeightedSpeedup(acc, base)
	if ws <= 0 {
		t.Errorf("speedup = %v", ws)
	}
}

func TestFacadeCatalogComplete(t *testing.T) {
	cfgs := []Config{
		DefaultConfig(), DirectMapped(), Parallel(2), Serial(2), Idealized(4),
		PerfectWP(2), PWS(0.85), GWS(), ACCORD(2), ACCORD(8), MRU(2),
		PartialTag(2), CACache(), LRU2Way(),
	}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	if _, err := NamedConfig("accord", 2, 0.85); err != nil {
		t.Errorf("NamedConfig: %v", err)
	}
	if _, err := NamedConfig("bogus", 2, 0.85); err == nil {
		t.Error("NamedConfig accepted bogus organization")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if len(CoreSuite()) != 21 || len(AllSuite()) != 46 {
		t.Errorf("suites = %d / %d, want 21 / 46", len(CoreSuite()), len(AllSuite()))
	}
	if len(WorkloadNames()) != 36 {
		t.Errorf("rate workloads = %d, want 36", len(WorkloadNames()))
	}
	if _, err := GetWorkload("mix3", 16); err != nil {
		t.Errorf("mix3: %v", err)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) != 21 {
		t.Errorf("experiments = %d, want 21", len(Experiments()))
	}
	if _, ok := FindExperiment("fig10"); !ok {
		t.Error("fig10 missing")
	}
}

func TestFacadeDevices(t *testing.T) {
	if HBM().PeakBandwidthGBs() != 128 || PCMConfig().PeakBandwidthGBs() != 32 {
		t.Error("device bandwidths do not match Table III")
	}
}

func TestFacadePolicyConstruction(t *testing.T) {
	p := NewACCORDPolicy(DefaultACCORDConfig(Geometry{Sets: 1024, Ways: 2}, 1))
	if p.StorageBytes() != 320 {
		t.Errorf("ACCORD storage = %d, want 320", p.StorageBytes())
	}
}

func TestFacadeEnergy(t *testing.T) {
	cfg := quick(DirectMapped())
	res := Run(cfg, "milc")
	b := ComputeEnergy(cfg.HBM, res.HBM, cfg.PCM, res.PCM, res.Cycles, cfg.CPUGHz)
	if b.Total() <= 0 || b.Power() <= 0 {
		t.Errorf("energy breakdown degenerate: %+v", b)
	}
}
