module accord

go 1.22
