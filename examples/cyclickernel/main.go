// Cyclickernel reproduces Figure 6's analysis through the public
// experiment API: two cache lines that conflict in the same 2-way set are
// accessed alternately, (a,b)^N, and the steady-state hit rate is swept
// over the preferred-way install probability (PIP).
//
// The figure's story: a direct-mapped cache (PIP=100%) thrashes forever;
// an unbiased 2-way cache (PIP=50%) separates the lines immediately; and
// the paper's PIP=80-90% keeps almost all of the hit rate while making
// the install way — and therefore the way prediction — highly predictable.
//
//	go run ./examples/cyclickernel
package main

import (
	"fmt"
	"os"

	"accord"
)

func main() {
	e, ok := accord.FindExperiment("fig6")
	if !ok {
		fmt.Fprintln(os.Stderr, "fig6 experiment not registered")
		os.Exit(1)
	}
	session := accord.NewExperimentSession(accord.QuickParams())
	for _, table := range e.Run(session) {
		fmt.Println(table.Render())
	}
	fmt.Println("Reading the table: at PIP=50% both conflicting lines are in")
	fmt.Println("separate ways after a couple of iterations; PIP=90% takes")
	fmt.Println("longer to learn but converges too. PIP=100% (direct-mapped)")
	fmt.Println("never recovers — the classic conflict-thrash pathology that")
	fmt.Println("motivates associativity for DRAM caches.")
}
