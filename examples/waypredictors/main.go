// Waypredictors contrasts the way predictors of the paper's Table X on a
// spatially-local and a pointer-chasing workload: conventional predictors
// (MRU, partial-tag) buy accuracy with megabytes of SRAM, the
// column-associative cache buys it with swap bandwidth, and ACCORD gets
// it for 320 bytes by coordinating installs with predictions.
//
//	go run ./examples/waypredictors
package main

import (
	"fmt"

	"accord"
)

func main() {
	// SRAM cost of each predictor for the paper's actual 4 GB cache.
	full := accord.Geometry{Sets: (4 << 30) / (64 * 2), Ways: 2}
	fmt.Println("metadata storage for a 4 GB, 2-way DRAM cache:")
	fmt.Printf("  %-22s %10d bytes\n", "random (no metadata)", accord.NewRandPolicy(full, 1).StorageBytes())
	fmt.Printf("  %-22s %10d bytes\n", "MRU (per-set)", accord.NewMRUPolicy(full, 1).StorageBytes())
	fmt.Printf("  %-22s %10d bytes\n", "partial-tag (4b/line)", accord.NewPartialTagPolicy(full, 4, 1).StorageBytes())
	fmt.Printf("  %-22s %10d bytes\n", "ACCORD (PWS+GWS)", accord.NewACCORDPolicy(accord.DefaultACCORDConfig(full, 1)).StorageBytes())

	// Accuracy on two contrasting workloads, measured in simulation.
	configs := []accord.Config{
		accord.MRU(2),
		accord.PartialTag(2),
		accord.CACache(),
		accord.ACCORD(2),
	}
	for _, workload := range []string{"libquantum", "mcf"} {
		fmt.Printf("\n2-way way-prediction accuracy on %s:\n", workload)
		for _, cfg := range configs {
			// Shrink the run so the example finishes in seconds.
			cfg.Scale = 2048
			cfg.Cores = 8
			cfg.WarmupInstr = 500_000
			cfg.MeasureInstr = 500_000
			res := accord.Run(cfg, workload)
			fmt.Printf("  %-16s %5.1f%%  (hit rate %5.1f%%)\n",
				cfg.Name, 100*res.Accuracy(), 100*res.HitRate())
		}
	}
	fmt.Println("\nlibquantum streams through pages, so ganged way-steering")
	fmt.Println("predicts almost perfectly; mcf's sparse pointer chasing falls")
	fmt.Println("back to the probabilistic 85% — the Figure 7 behaviour.")
}
