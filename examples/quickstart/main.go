// Quickstart: simulate the paper's headline comparison on one workload —
// a direct-mapped gigascale DRAM cache versus ACCORD — and print the
// metrics the paper reports: hit rate, way-prediction accuracy, probe
// bandwidth, and weighted speedup.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"accord"
)

func main() {
	const workload = "soplex" // the paper's most associativity-sensitive SPEC workload

	// The Table III system, scaled 1/256 for a laptop-sized run.
	baseline := accord.DirectMapped()
	design := accord.ACCORD(2) // PWS(85%) + GWS, 2-way

	fmt.Printf("workload: %s  (cache %d MB model of 4 GB, %d cores)\n\n",
		workload, baseline.L4Capacity()>>20, baseline.Cores)

	base := accord.Run(baseline, workload)
	acc := accord.Run(design, workload)

	report := func(name string, r accord.Result) {
		fmt.Printf("%-14s hit-rate %5.1f%%   wp-accuracy %5.1f%%   probes/read %.2f   mean IPC %.3f\n",
			name, 100*r.HitRate(), 100*r.Accuracy(), r.L4.ProbesPerRead(), r.MeanIPC())
	}
	report("direct-mapped", base)
	report("ACCORD 2-way", acc)

	fmt.Printf("\nweighted speedup of ACCORD over direct-mapped: %.3f\n",
		accord.WeightedSpeedup(acc, base))
	fmt.Println("\nACCORD's way predictor costs 320 bytes of SRAM (Table IX);")
	fmt.Println("an MRU predictor for the same 4 GB cache would need 4 MB.")
}
