// Gigascale demonstrates that the simulator handles the paper's actual
// configuration — a full 4 GB DRAM cache over 128 GB of PCM — not just the
// scaled-down models the experiments use for speed. It allocates the full
// 64-million-line tag array, runs a short burst of traffic, and reports
// cold-start behaviour.
//
// Expect roughly a gigabyte of resident memory and a few seconds of run
// time; the windows are fixed (adaptive sizing is disabled) because
// warming 4 GB takes billions of instructions.
//
//	go run ./examples/gigascale
package main

import (
	"fmt"
	"runtime"
	"time"

	"accord"
)

func main() {
	cfg := accord.ACCORD(2)
	cfg.Scale = 1 // the real thing: 4 GB cache, 128 GB PCM
	cfg.WarmupInstr = 1_000_000
	cfg.MeasureInstr = 2_000_000
	cfg.DisableAdaptiveBudgets = true

	fmt.Printf("configuration: %s\n", cfg.Name)
	fmt.Printf("  DRAM cache: %d GB (%d million lines), %d-way\n",
		cfg.L4Capacity()>>30, cfg.L4Lines()>>20, cfg.Ways)
	fmt.Printf("  main memory: %d GB PCM\n", cfg.NVMCapacityFull>>30)
	fmt.Printf("  cores: %d, measuring %d instructions each (cold cache)\n\n",
		cfg.Cores, cfg.MeasureInstr)

	start := time.Now()
	res := accord.Run(cfg, "mcf")
	elapsed := time.Since(start)

	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)

	fmt.Printf("simulated %d instructions in %.1fs (%.1f M instr/s)\n",
		res.Instructions, elapsed.Seconds(),
		float64(res.Instructions)/elapsed.Seconds()/1e6)
	fmt.Printf("L4 accesses: %d, hit rate %.1f%% (cold: compulsory misses dominate)\n",
		res.L4.Reads, 100*res.HitRate())
	fmt.Printf("way-prediction accuracy: %.1f%%\n", 100*res.Accuracy())
	fmt.Printf("simulator resident memory: %d MB (64M-line tag store)\n",
		mem.HeapInuse>>20)
	fmt.Println("\nThe evaluation harness (cmd/accordbench) uses 1/256-scale")
	fmt.Println("capacities with footprints scaled by the same factor, which")
	fmt.Println("preserves hit-rate and bandwidth behaviour; see DESIGN.md.")
}
