// Gigascale demonstrates that the simulator handles the paper's actual
// configuration — a full 4 GB DRAM cache over 128 GB of PCM, not the
// scaled-down models the experiments use for speed — and that interval
// sampling makes such a design point affordable: a 2-billion-instruction
// stream over the 64-million-line tag array, warmed functionally and
// measured in SMARTS-style detailed windows.
//
// It runs the same sampled simulation four times: sequentially
// (SampleWorkers=1), with a worker pool that executes the detailed
// windows concurrently off the functional spine, then twice more
// against a spine checkpoint lattice — a populating run that saves
// every boundary snapshot in the background (its wall-clock against
// the plain parallel run is the population overhead) and a resumed run
// that restores those snapshots instead of fast-forwarding (its
// wall-clock against the populating run is the memoization payoff).
// All four produce byte-identical results by construction; the example
// checks that too.
//
// Expect roughly a gigabyte of resident memory (per live fork). The
// windows are fixed (adaptive sizing is disabled) so the instruction
// budget is exactly what is configured. Pass -quick for a scaled-down
// smoke run, -workers to size the pool, -spine-dir to keep the lattice
// across invocations (so a second invocation starts fully warm).
//
//	go run ./examples/gigascale
//	go run ./examples/gigascale -workers 8
//	go run ./examples/gigascale -quick
//	go run ./examples/gigascale -spine-dir /tmp/accord-spine
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"accord"
)

func main() {
	workers := flag.Int("workers", 8, "detailed-window worker goroutines for the parallel run")
	quick := flag.Bool("quick", false, "scaled-down smoke run (seconds instead of minutes)")
	spineDir := flag.String("spine-dir", "", "spine checkpoint lattice directory (empty = a temp directory deleted on exit)")
	flag.Parse()

	cfg := accord.ACCORD(2)
	cfg.Scale = 1 // the real thing: 4 GB cache, 128 GB PCM
	cfg.Cores = 8
	cfg.WarmupInstr = 50_000_000   // per core: 400M warmup instructions
	cfg.MeasureInstr = 200_000_000 // per core: 1.6B measured-phase instructions
	cfg.DisableAdaptiveBudgets = true

	// SMARTS-style interval sampling: fast-forward the bulk of every
	// 20M-instruction period functionally (tags, dirty bits, policy and
	// page-table state advance; timing is skipped), re-warm timing state
	// for 500k instructions, then measure a 1M-instruction detailed
	// window. ~7% of the stream runs detailed; estimates carry
	// Student-t 95% confidence intervals.
	cfg.Sampling = accord.SamplingConfig{
		Period:       20_000_000,
		DetailLen:    1_000_000,
		WarmLen:      500_000,
		MinIntervals: 8,
		TargetCI:     0.05,
	}
	if *quick {
		cfg.Scale = 4096
		cfg.WarmupInstr = 100_000
		cfg.MeasureInstr = 1_200_000
		cfg.Sampling = accord.SamplingConfig{
			Period:       200_000,
			DetailLen:    40_000,
			WarmLen:      20_000,
			MinIntervals: 2,
			TargetCI:     0.05,
		}
	}

	// Share one recording of the workload stream so both runs replay the
	// identical event sequence (the first run records it as it goes) and
	// the parallel run's forks can replay their intervals from it.
	wl, err := accord.GetWorkload("mcf", cfg.Cores)
	if err != nil {
		panic(err)
	}
	traces := accord.NewTraceCache(0)
	wl.Source = traces.Source(wl.Specs, cfg.AnchorLines(), cfg.Seed)

	totalInstr := (cfg.WarmupInstr + cfg.MeasureInstr) * int64(cfg.Cores)
	fmt.Printf("configuration: %s\n", cfg.Name)
	fmt.Printf("  DRAM cache: %d GB (%d million lines), %d-way\n",
		cfg.L4Capacity()>>30, cfg.L4Lines()>>20, cfg.Ways)
	fmt.Printf("  main memory: %d GB PCM\n", cfg.NVMCapacityFull>>30)
	fmt.Printf("  cores: %d, %d total instructions (%.1fM warmup + %.1fM measured per core)\n",
		cfg.Cores, totalInstr, float64(cfg.WarmupInstr)/1e6, float64(cfg.MeasureInstr)/1e6)
	fmt.Printf("  sampling: %.1fM period, %.2fM detailed + %.2fM re-warm per interval\n\n",
		float64(cfg.Sampling.Period)/1e6, float64(cfg.Sampling.DetailLen)/1e6,
		float64(cfg.Sampling.WarmLen)/1e6)

	run := func(workers int, spine string) (accord.Result, accord.SampleWork, time.Duration) {
		c := cfg
		c.SampleWorkers = workers
		c.SpineCheckpointDir = spine
		s := accord.NewSystem(c, wl)
		start := time.Now()
		res := s.Run("mcf")
		return res, s.SampleWork(), time.Since(start)
	}

	fmt.Printf("sequential run (1 worker)...\n")
	seqRes, _, seqT := run(1, "")
	fmt.Printf("  %.1fs wall (%.1f M instr/s)\n",
		seqT.Seconds(), float64(seqRes.InstructionsTotal)/seqT.Seconds()/1e6)

	fmt.Printf("parallel run (%d workers)...\n", *workers)
	parRes, parWork, parT := run(*workers, "")
	fmt.Printf("  %.1fs wall (%.1f M instr/s) — %.2fx over sequential\n",
		parT.Seconds(), float64(parRes.InstructionsTotal)/parT.Seconds()/1e6,
		seqT.Seconds()/parT.Seconds())

	// The functional spine is the serial fraction; the detailed windows
	// are the parallel work. With W workers the windows overlap each
	// other and the spine, so wall-clock approaches
	// max(spine, detail/W) — the utilization split shows how close.
	fmt.Printf("  spine (serial):   %.1fs (%.0f%% of wall)\n",
		parWork.SpineTime.Seconds(), 100*parWork.SpineTime.Seconds()/parT.Seconds())
	fmt.Printf("  detailed windows: %.1fs across %d workers (%.0f%% busy)\n",
		parWork.DetailTime.Seconds(), parWork.Workers,
		100*parWork.DetailTime.Seconds()/(parT.Seconds()*float64(parWork.Workers)))
	fmt.Printf("  intervals: %d dispatched, %d committed, %d speculative discarded\n",
		parWork.Dispatched, parWork.Committed, parWork.Discarded)
	if !reflect.DeepEqual(seqRes, parRes) {
		fmt.Println("  ERROR: parallel result diverged from sequential")
	} else {
		fmt.Println("  results identical to sequential: yes")
	}

	// Third leg: memoize the functional spine through the checkpoint
	// lattice. The populating run pays the snapshot saves (on a
	// background writer, so the overhead should be a few percent); the
	// resumed run replaces every fast-forward with a restore, so its
	// wall-clock approaches max(restore, detail/W) — the spine drops out.
	dir := *spineDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "accord-spine")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	fmt.Printf("lattice-populating run (%d workers, spine checkpoints to %s)...\n", *workers, dir)
	popRes, popWork, popT := run(*workers, dir)
	fmt.Printf("  %.1fs wall — %.1f%% over the plain parallel run (%d boundaries saved in %.1fs of background writes)\n",
		popT.Seconds(), 100*(popT.Seconds()-parT.Seconds())/parT.Seconds(),
		popWork.LatticeMisses, popWork.SpineSaveTime.Seconds())

	fmt.Printf("lattice-resumed run (%d workers)...\n", *workers)
	resRes, resWork, resT := run(*workers, dir)
	fmt.Printf("  %.1fs wall — %.2fx over the populating run, %.2fx over sequential\n",
		resT.Seconds(), popT.Seconds()/resT.Seconds(), seqT.Seconds()/resT.Seconds())
	fmt.Printf("  lattice: %d hits, %d misses; spine %.1fs (was %.1fs cold)\n",
		resWork.LatticeHits, resWork.LatticeMisses,
		resWork.SpineTime.Seconds(), popWork.SpineTime.Seconds())
	if !reflect.DeepEqual(parRes, popRes) || !reflect.DeepEqual(parRes, resRes) {
		fmt.Println("  ERROR: lattice run results diverged from the plain runs")
	} else {
		fmt.Println("  results identical to plain runs: yes")
	}

	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)

	s := parRes.Sampled
	fmt.Printf("\ncovered %d instructions per run\n", parRes.InstructionsTotal)
	fmt.Printf("measured %d detailed intervals of %d planned", s.Intervals, s.Planned)
	if s.Converged {
		fmt.Printf(" (stopped early at the %.0f%% CI target)", 100*cfg.Sampling.TargetCI)
	}
	fmt.Println()
	fmt.Printf("  IPC       %.4f ± %.4f (95%% CI)\n", s.IPC.Mean, s.IPC.Half)
	fmt.Printf("  hit rate  %.4f ± %.4f\n", s.HitRate.Mean, s.HitRate.Half)
	fmt.Printf("  MPKI      %.3f ± %.3f\n", s.MPKI.Mean, s.MPKI.Half)
	fmt.Printf("way-prediction accuracy: %.1f%%\n", 100*parRes.Accuracy())
	fmt.Printf("simulator resident memory: %d MB\n", mem.HeapInuse>>20)
	fmt.Println("\nThe evaluation harness (cmd/accordbench) uses 1/256-scale")
	fmt.Println("capacities with footprints scaled by the same factor, which")
	fmt.Println("preserves hit-rate and bandwidth behaviour; pass -sample")
	fmt.Println("(and -sample-workers) to run its design points with this")
	fmt.Println("interval-sampling machinery.")
}
