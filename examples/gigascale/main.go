// Gigascale demonstrates that the simulator handles the paper's actual
// configuration — a full 4 GB DRAM cache over 128 GB of PCM, not the
// scaled-down models the experiments use for speed — and that interval
// sampling makes such a design point affordable: a 2-billion-instruction
// stream over the 64-million-line tag array, warmed functionally and
// measured in SMARTS-style detailed windows, finishes in minutes on one
// thread where a fully detailed run of the same stream would take the
// better part of an hour.
//
// Expect roughly a gigabyte of resident memory. The windows are fixed
// (adaptive sizing is disabled) so the instruction budget is exactly
// what is configured.
//
//	go run ./examples/gigascale
package main

import (
	"fmt"
	"runtime"
	"time"

	"accord"
)

func main() {
	cfg := accord.ACCORD(2)
	cfg.Scale = 1 // the real thing: 4 GB cache, 128 GB PCM
	cfg.Cores = 8
	cfg.WarmupInstr = 50_000_000   // per core: 400M warmup instructions
	cfg.MeasureInstr = 200_000_000 // per core: 1.6B measured-phase instructions
	cfg.DisableAdaptiveBudgets = true

	// SMARTS-style interval sampling: fast-forward the bulk of every
	// 20M-instruction period functionally (tags, dirty bits, policy and
	// page-table state advance; timing is skipped), re-warm timing state
	// for 500k instructions, then measure a 1M-instruction detailed
	// window. ~7% of the stream runs detailed; estimates carry
	// Student-t 95% confidence intervals.
	cfg.Sampling = accord.SamplingConfig{
		Period:       20_000_000,
		DetailLen:    1_000_000,
		WarmLen:      500_000,
		MinIntervals: 8,
		TargetCI:     0.05,
	}

	totalInstr := (cfg.WarmupInstr + cfg.MeasureInstr) * int64(cfg.Cores)
	fmt.Printf("configuration: %s\n", cfg.Name)
	fmt.Printf("  DRAM cache: %d GB (%d million lines), %d-way\n",
		cfg.L4Capacity()>>30, cfg.L4Lines()>>20, cfg.Ways)
	fmt.Printf("  main memory: %d GB PCM\n", cfg.NVMCapacityFull>>30)
	fmt.Printf("  cores: %d, %d total instructions (%dM warmup + %dM measured per core)\n",
		cfg.Cores, totalInstr, cfg.WarmupInstr/1e6, cfg.MeasureInstr/1e6)
	fmt.Printf("  sampling: %dM period, %.1fM detailed + %.1fM re-warm per interval\n\n",
		cfg.Sampling.Period/1e6, float64(cfg.Sampling.DetailLen)/1e6, float64(cfg.Sampling.WarmLen)/1e6)

	start := time.Now()
	res := accord.Run(cfg, "mcf")
	elapsed := time.Since(start)

	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)

	s := res.Sampled
	fmt.Printf("covered %d instructions in %.1fs (%.1f M instr/s wall)\n",
		res.InstructionsTotal, elapsed.Seconds(),
		float64(res.InstructionsTotal)/elapsed.Seconds()/1e6)
	fmt.Printf("measured %d detailed intervals of %d planned", s.Intervals, s.Planned)
	if s.Converged {
		fmt.Printf(" (stopped early at the %.0f%% CI target)", 100*cfg.Sampling.TargetCI)
	}
	fmt.Println()
	fmt.Printf("  IPC       %.4f ± %.4f (95%% CI)\n", s.IPC.Mean, s.IPC.Half)
	fmt.Printf("  hit rate  %.4f ± %.4f\n", s.HitRate.Mean, s.HitRate.Half)
	fmt.Printf("  MPKI      %.3f ± %.3f\n", s.MPKI.Mean, s.MPKI.Half)
	fmt.Printf("way-prediction accuracy: %.1f%%\n", 100*res.Accuracy())
	fmt.Printf("simulator resident memory: %d MB (64M-line tag store)\n",
		mem.HeapInuse>>20)
	fmt.Println("\nThe evaluation harness (cmd/accordbench) uses 1/256-scale")
	fmt.Println("capacities with footprints scaled by the same factor, which")
	fmt.Println("preserves hit-rate and bandwidth behaviour; pass -sample to")
	fmt.Println("run its design points with this interval-sampling machinery.")
}
