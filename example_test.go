package accord_test

import (
	"fmt"

	"accord"
)

// Example demonstrates the headline comparison: the paper's coordinated
// way-steering design against the direct-mapped baseline.
func Example() {
	cfg := accord.ACCORD(2) // PWS(85%) + GWS on a 2-way cache
	cfg.Scale = 8192        // shrink for example purposes
	cfg.Cores = 4
	cfg.WarmupInstr = 100_000
	cfg.MeasureInstr = 100_000

	base := accord.DirectMapped()
	base.Scale, base.Cores = cfg.Scale, cfg.Cores
	base.WarmupInstr, base.MeasureInstr = cfg.WarmupInstr, cfg.MeasureInstr

	acc := accord.Run(cfg, "soplex")
	dm := accord.Run(base, "soplex")
	if acc.HitRate() > dm.HitRate() && acc.Accuracy() > 0.9 {
		fmt.Println("ACCORD: higher hit rate at >90% way-prediction accuracy")
	}
	// Output: ACCORD: higher hit rate at >90% way-prediction accuracy
}

// ExampleNewACCORDPolicy shows standalone use of the way policy: the
// coordination between install steering and prediction that gives the
// paper its accuracy at 320 bytes of state.
func ExampleNewACCORDPolicy() {
	geom := accord.Geometry{Sets: 1 << 20, Ways: 2}
	p := accord.NewACCORDPolicy(accord.DefaultACCORDConfig(geom, 1))

	// An even tag prefers way 0; the prediction agrees by construction.
	const set, tag, region = 42, 0x1234, 7
	way := p.InstallWay(set, tag, region)
	p.ObserveInstall(set, tag, region, way)
	fmt.Printf("storage: %d bytes, predicted way: %d\n",
		p.StorageBytes(), p.PredictWay(set, tag, region))
	// Output: storage: 320 bytes, predicted way: 0
}

// ExampleFindExperiment reproduces one paper artifact programmatically.
func ExampleFindExperiment() {
	e, ok := accord.FindExperiment("tab9")
	if !ok {
		return
	}
	session := accord.NewExperimentSession(accord.QuickParams())
	tables := e.Run(session)
	fmt.Println(len(tables), "table(s) for", e.PaperRef)
	// Output: 1 table(s) for Table IX
}
