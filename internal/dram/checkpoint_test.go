package dram

import (
	"testing"

	"accord/internal/ckpt"
	"accord/internal/memtypes"
	"accord/internal/xrand"
)

func testDevice() *Device {
	return New(HBM(), 3.2)
}

// drive issues a deterministic access pattern and returns the completion
// cycles, which fold in row-buffer state, bank timing, bus contention,
// and the write backlog.
func drive(dev *Device, n int, seed int64) []int64 {
	rng := xrand.New(seed)
	cfg := dev.Config()
	out := make([]int64, 0, n)
	at := int64(0)
	for i := 0; i < n; i++ {
		at += int64(rng.Intn(40))
		loc := Loc{
			Channel: rng.Intn(cfg.Channels),
			Bank:    rng.Intn(cfg.BanksPerChannel),
			Row:     uint64(rng.Intn(32)),
		}
		kind := memtypes.Read
		if i%4 == 0 {
			kind = memtypes.Write
		}
		res := dev.Access(at, loc, kind, 64)
		out = append(out, res.DataAt)
	}
	return out
}

// TestDeviceRoundTrip restores a busy device into a fresh one and
// requires identical continued timing and stats.
func TestDeviceRoundTrip(t *testing.T) {
	dev := testDevice()
	drive(dev, 20_000, 5)
	e := ckpt.NewEncoder(0)
	dev.Snapshot(e)
	blob := e.Finish()

	fresh := testDevice()
	d, err := ckpt.NewDecoderChecked(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(d); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after restore", d.Remaining())
	}
	if fresh.Stats() != dev.Stats() {
		t.Errorf("stats diverged: %+v != %+v", fresh.Stats(), dev.Stats())
	}
	want := drive(dev, 5000, 13)
	got := drive(fresh, 5000, 13)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("access %d completion diverged: %d != %d", i, want[i], got[i])
		}
	}
	if fresh.Stats() != dev.Stats() {
		t.Errorf("post-restore stats diverged: %+v != %+v", fresh.Stats(), dev.Stats())
	}
}

// TestDeviceRestoreRejectsBadInput covers version bumps, channel-count
// mismatches, and truncations.
func TestDeviceRestoreRejectsBadInput(t *testing.T) {
	dev := testDevice()
	drive(dev, 2000, 1)
	e := ckpt.NewEncoder(0)
	dev.Snapshot(e)
	blob := e.Finish()
	payload := blob[:len(blob)-4]

	bad := append([]byte{payload[0] + 1}, payload[1:]...)
	if err := testDevice().Restore(ckpt.NewDecoder(bad)); err == nil {
		t.Error("version-bumped snapshot accepted")
	}
	// A PCM snapshot (different channel count) must not restore into an
	// HBM device.
	pcm := New(PCM(), 3.2)
	e2 := ckpt.NewEncoder(0)
	pcm.Snapshot(e2)
	b2 := e2.Finish()
	if err := testDevice().Restore(ckpt.NewDecoder(b2[:len(b2)-4])); err == nil {
		t.Error("channel-count mismatch accepted")
	}
	for n := 0; n < len(payload); n += 1 + n/16 {
		if err := testDevice().Restore(ckpt.NewDecoder(payload[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}
