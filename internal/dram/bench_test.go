package dram

import (
	"testing"

	"accord/internal/memtypes"
)

// BenchmarkDRAMAccess measures the resource-reservation timing model's
// per-access cost: mapped reads spread over banks and rows, in roughly
// non-decreasing time order, the way the simulator drives it. It must
// report 0 allocs/op — Access is the innermost call of every simulated
// probe (the busy-interval backing array is warmed before timing).
func BenchmarkDRAMAccess(b *testing.B) {
	d := New(HBM(), 3.0)
	m := d.Config().NewMapper(28) // 2 KB row / 72 B tag+data units
	units := make([]uint64, 1024)
	for i := range units {
		units[i] = uint64(i * 37)
	}
	at := int64(0)
	for i := 0; i < 256; i++ { // warm busy-interval buffers
		loc := m.Map(units[i&(len(units)-1)])
		at = d.Access(at, loc, memtypes.Read, memtypes.TagUnitSize).DataAt - 20
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loc := m.Map(units[i&(len(units)-1)])
		// Trail completion slightly so reservations both extend the bus
		// schedule and occasionally backfill gaps.
		at = d.Access(at, loc, memtypes.Read, memtypes.TagUnitSize).DataAt - 20
	}
}
