package dram

import (
	"testing"

	"accord/internal/memtypes"
)

// BenchmarkDRAMAccess measures the resource-reservation timing model's
// per-access cost: mapped reads spread over banks and rows, in roughly
// non-decreasing time order, the way the simulator drives it. It must
// report 0 allocs/op — Access is the innermost call of every simulated
// probe (the busy-interval backing array is warmed before timing).
// BenchmarkReserveAppend measures the calendar ring's O(1) fast path:
// reservations at or past the end of the schedule, which is what the
// simulator's (approximately) non-decreasing issue order produces almost
// always. The alternating offset exercises both fast-path arms —
// extending the last interval in place and appending a new one (with the
// bounded ring dropping its oldest entry).
func BenchmarkReserveAppend(b *testing.B) {
	var ch channel
	at := int64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&1 == 0 {
			at = ch.reserve(at, 10) + 10 // contiguous: extend-last arm
		} else {
			at = ch.reserve(at+5, 10) + 10 // gapped: append arm
		}
	}
}

// BenchmarkReserveBackfill measures the slow path: reservations landing
// before the end of the schedule, walking the ring backward to find
// their gap and merge-inserting. Alternating far-future appends keep a
// populated schedule with gaps for every second reservation to land in.
func BenchmarkReserveBackfill(b *testing.B) {
	var ch channel
	front := int64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&1 == 0 {
			front = ch.reserve(front+40, 10) + 10
		} else {
			ch.reserve(front-35, 5) // lands in the gap behind the frontier
		}
	}
}

func BenchmarkDRAMAccess(b *testing.B) {
	d := New(HBM(), 3.0)
	m := d.Config().NewMapper(28) // 2 KB row / 72 B tag+data units
	units := make([]uint64, 1024)
	for i := range units {
		units[i] = uint64(i * 37)
	}
	at := int64(0)
	for i := 0; i < 256; i++ { // warm busy-interval buffers
		loc := m.Map(units[i&(len(units)-1)])
		at = d.Access(at, loc, memtypes.Read, memtypes.TagUnitSize).DataAt - 20
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loc := m.Map(units[i&(len(units)-1)])
		// Trail completion slightly so reservations both extend the bus
		// schedule and occasionally backfill gaps.
		at = d.Access(at, loc, memtypes.Read, memtypes.TagUnitSize).DataAt - 20
	}
}
