package dram

import (
	"testing"

	"accord/internal/memtypes"
)

// These tests pin down the two controller behaviours added during
// calibration: busy-interval backfill on the data bus, and the
// read-priority write queue.

// busyIntervals materializes a channel's calendar ring in logical
// (oldest-first) order for assertions.
func (ch *channel) busyIntervals() []busyIvl {
	out := make([]busyIvl, ch.busyCount)
	for i := range out {
		out[i] = *ch.ivl(i)
	}
	return out
}

func TestBackfillAllowsEarlierRequests(t *testing.T) {
	d := New(HBM(), cyclesPerNS)
	// Reserve the bus far in the future via a read issued at t=10000.
	late := d.Access(10000, Loc{Channel: 0, Bank: 0, Row: 0}, memtypes.Read, 64)
	if late.DataAt <= 10000 {
		t.Fatal("future read did not complete in the future")
	}
	// A read issued at t=0 on the same channel must NOT wait for the
	// future reservation: the bus is idle until then.
	early := d.Access(0, Loc{Channel: 0, Bank: 1, Row: 0}, memtypes.Read, 64)
	if early.DataAt >= 10000 {
		t.Errorf("early read queued behind a future reservation: done at %d", early.DataAt)
	}
	if early.DataAt != d.UnloadedReadLatency(64) {
		t.Errorf("early read latency = %d, want unloaded %d", early.DataAt, d.UnloadedReadLatency(64))
	}
}

func TestBackfillStillSerializesOverlap(t *testing.T) {
	d := New(HBM(), cyclesPerNS)
	// Two same-time reads on one channel still serialize on the bus.
	r1 := d.Access(0, Loc{Channel: 0, Bank: 0, Row: 0}, memtypes.Read, 64)
	r2 := d.Access(0, Loc{Channel: 0, Bank: 1, Row: 0}, memtypes.Read, 64)
	if r2.DataAt == r1.DataAt {
		t.Error("overlapping transfers not serialized")
	}
}

func TestWriteQueueAbsorbsWrites(t *testing.T) {
	d := New(HBM(), cyclesPerNS)
	loc := Loc{Channel: 0, Bank: 0, Row: 0}
	d.Access(0, loc, memtypes.Read, 64) // open the row
	// A handful of writes below queue capacity must not delay a read.
	for i := 0; i < 8; i++ {
		d.Access(1000, Loc{Channel: 0, Bank: 2, Row: 5}, memtypes.Write, 64)
	}
	r := d.Access(1000, loc, memtypes.Read, 64)
	want := int64(1000) + d.RowHitReadLatency(64)
	if r.DataAt > want+d.transferCycles(64) {
		t.Errorf("read delayed by buffered writes: done %d, want <= %d", r.DataAt, want+d.transferCycles(64))
	}
}

func TestWriteQueueOverflowStallsReads(t *testing.T) {
	d := New(HBM(), cyclesPerNS)
	loc := Loc{Channel: 0, Bank: 0, Row: 0}
	d.Access(0, loc, memtypes.Read, 64)
	// Flood the write queue far past its 32-entry capacity.
	for i := 0; i < 500; i++ {
		d.Access(1000, Loc{Channel: 0, Bank: 2, Row: 5}, memtypes.Write, 64)
	}
	r := d.Access(1000, loc, memtypes.Read, 64)
	unstalled := int64(1000) + d.RowHitReadLatency(64)
	if r.DataAt <= unstalled {
		t.Errorf("read ignored write-queue overflow: done %d", r.DataAt)
	}
}

func TestWriteQueueDrainsInIdleGaps(t *testing.T) {
	d := New(HBM(), cyclesPerNS)
	// Enqueue a burst of writes at t=0.
	for i := 0; i < 40; i++ {
		d.Access(0, Loc{Channel: 0, Bank: 2, Row: 5}, memtypes.Write, 64)
	}
	// A read far in the future sees a drained queue.
	r := d.Access(1_000_000, Loc{Channel: 0, Bank: 0, Row: 0}, memtypes.Read, 64)
	if got := r.DataAt - 1_000_000; got != d.UnloadedReadLatency(64) {
		t.Errorf("read after long idle = %d cycles, want unloaded %d", got, d.UnloadedReadLatency(64))
	}
}

func TestWriteCompletionIncludesBacklog(t *testing.T) {
	d := New(PCM(), cyclesPerNS)
	loc := Loc{Channel: 0, Bank: 0, Row: 0}
	w1 := d.Access(0, loc, memtypes.Write, 64)
	w2 := d.Access(0, loc, memtypes.Write, 64)
	if w2.DataAt <= w1.DataAt {
		t.Error("queued write did not complete after its predecessor")
	}
}

func TestWriteDrainOccupancy(t *testing.T) {
	// PCM writes drain at tWR/WriteDrainWays, slower than the raw
	// transfer; HBM writes are transfer-bound.
	pcm := New(PCM(), cyclesPerNS)
	if occ := pcm.writeOcc(64); occ != pcm.tWR/int64(pcm.cfg.WriteDrainWays) {
		t.Errorf("PCM write occupancy = %d, want %d", occ, pcm.tWR/int64(pcm.cfg.WriteDrainWays))
	}
	hbm := New(HBM(), cyclesPerNS)
	if occ := hbm.writeOcc(64); occ != hbm.transferCycles(64) {
		t.Errorf("HBM write occupancy = %d, want transfer %d", occ, hbm.transferCycles(64))
	}
}

func TestBusyIntervalBounded(t *testing.T) {
	d := New(HBM(), cyclesPerNS)
	// Scatter reads at wildly increasing times; the interval list must
	// stay bounded (no unbounded growth).
	for i := 0; i < 10000; i++ {
		d.Access(int64(i)*1000, Loc{Channel: 0, Bank: i % 16, Row: uint64(i)}, memtypes.Read, 64)
	}
	if n := int(d.channels[0].busyCount); n > maxBusyIntervals {
		t.Errorf("busy list grew to %d, cap %d", n, maxBusyIntervals)
	}
}

func TestReserveMergesAdjacent(t *testing.T) {
	ch := &channel{}
	a := ch.reserve(0, 10)
	b := ch.reserve(0, 10) // lands right after: [0,10)+[10,20) merge
	if a != 0 || b != 10 {
		t.Fatalf("reservations at %d,%d, want 0,10", a, b)
	}
	if iv := ch.busyIntervals(); len(iv) != 1 || iv[0].start != 0 || iv[0].end != 20 {
		t.Errorf("intervals not merged: %+v", iv)
	}
	// A later disjoint reservation creates a second interval.
	c := ch.reserve(100, 5)
	if iv := ch.busyIntervals(); c != 100 || len(iv) != 2 {
		t.Errorf("disjoint reservation wrong: start %d, intervals %+v", c, iv)
	}
	// Backfill into the gap between them.
	g := ch.reserve(20, 30)
	if g != 20 {
		t.Errorf("gap reservation at %d, want 20", g)
	}
	// Request that does not fit before interval at 100 pushes past it.
	h := ch.reserve(95, 20)
	if h != 105 {
		t.Errorf("oversized reservation at %d, want 105 (after busy interval)", h)
	}
}

func TestReserveFillsExactGap(t *testing.T) {
	ch := &channel{}
	ch.reserve(0, 10)
	ch.reserve(20, 10)
	// A 10-cycle request fits exactly into [10,20).
	if got := ch.reserve(5, 10); got != 10 {
		t.Errorf("exact-gap reservation at %d, want 10", got)
	}
	if iv := ch.busyIntervals(); len(iv) != 1 || iv[0] != (busyIvl{0, 30}) {
		t.Errorf("intervals not fully merged: %+v", iv)
	}
}
