// Package dram models DRAM-like memory devices (stacked HBM and PCM-style
// non-volatile memory) with a resource-reservation timing model: channels
// with shared data buses, banks with open-row state, and the
// tCAS/tRCD/tRP/tRAS/tWR timing constraints of the paper's Table III.
//
// Instead of ticking every cycle, each access computes its completion time
// as the max of the ready times of the resources it needs (bank, row, data
// bus) and then advances those resources. Queueing delay under bandwidth
// pressure and row-buffer locality emerge naturally, at a cost of
// O(1) work per access.
package dram

import (
	"fmt"
	"math"
	"math/bits"

	"accord/internal/memtypes"
	"accord/internal/metrics"
)

// Config describes one memory device.
type Config struct {
	Name            string
	Channels        int
	BanksPerChannel int
	RowBytes        int // row-buffer size per bank

	// Core timing parameters, nanoseconds.
	TCAS float64 // column access (CAS) latency
	TRCD float64 // row activate to column command
	TRP  float64 // precharge
	TRAS float64 // minimum row-open time before precharge
	TWR  float64 // write recovery (dominant for PCM writes)

	// Data bus: one beat moves BeatBytes in BeatNS nanoseconds.
	BeatBytes int
	BeatNS    float64

	// ECCSidecarBytes models KNL-style stacked DRAM whose ECC bits travel
	// on a separate sidecar bus alongside each data beat (the paper's
	// footnote 1: a 16-byte data bus plus a 2-byte ECC bus, with tags kept
	// in unused ECC bits). Each beat then carries BeatBytes of data plus
	// this many sidecar bytes at no extra data-bus occupancy, so a 72-byte
	// tag+data unit costs only 64 bytes of bus time.
	ECCSidecarBytes int

	// WriteDrainWays is the number of banks the write queue can drain
	// into concurrently. A buffered write occupies the channel for
	// max(transfer time, tWR/WriteDrainWays), so devices with slow cell
	// writes (PCM) sustain proportionally less write bandwidth. Zero
	// means transfer-time only.
	WriteDrainWays int

	// WriteQueueDepth is the per-channel write-queue capacity in entries
	// (64-byte units). Reads stall on write traffic only once this queue
	// overflows. Zero selects the default of 32.
	WriteQueueDepth int

	// Per-operation energy, nanojoules; consumed by internal/energy.
	EActivateNJ  float64 // one row activation
	EReadUnitNJ  float64 // one column read (per transferred unit)
	EWriteUnitNJ float64 // one column write (per transferred unit)
	BackgroundW  float64 // static+refresh power for the whole device
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return fmt.Errorf("dram %s: Channels = %d, must be positive", c.Name, c.Channels)
	case c.BanksPerChannel <= 0:
		return fmt.Errorf("dram %s: BanksPerChannel = %d, must be positive", c.Name, c.BanksPerChannel)
	case c.RowBytes <= 0:
		return fmt.Errorf("dram %s: RowBytes = %d, must be positive", c.Name, c.RowBytes)
	case c.BeatBytes <= 0 || c.BeatNS <= 0:
		return fmt.Errorf("dram %s: data bus (%d B / %.2f ns) must be positive", c.Name, c.BeatBytes, c.BeatNS)
	case c.TCAS < 0 || c.TRCD < 0 || c.TRP < 0 || c.TRAS < 0 || c.TWR < 0:
		return fmt.Errorf("dram %s: negative timing parameter", c.Name)
	}
	return nil
}

// PeakBandwidthGBs returns the aggregate peak data-bus bandwidth in GB/s.
func (c Config) PeakBandwidthGBs() float64 {
	return float64(c.Channels) * float64(c.BeatBytes) / c.BeatNS
}

// HBM returns the stacked-DRAM cache device of Table III: 8 channels of
// 128-bit bus at 500 MHz DDR (1 GT/s), 128 GB/s aggregate.
func HBM() Config {
	return Config{
		Name:            "hbm",
		Channels:        8,
		BanksPerChannel: 32, // HBM2-class bank-group parallelism
		RowBytes:        2048,
		TCAS:            13, TRCD: 13, TRP: 13, TRAS: 30, TWR: 15,
		BeatBytes: 16, BeatNS: 1.0, // 16 GB/s per channel
		ECCSidecarBytes: 2, // tags travel in the ECC space (footnote 1)
		EActivateNJ:     0.9, EReadUnitNJ: 1.2, EWriteUnitNJ: 1.4,
		BackgroundW: 2.0,
	}
}

// PCM returns the non-volatile main memory of Table III: 2 channels of
// 64-bit bus at 1 GHz DDR (2 GT/s), 32 GB/s aggregate. Read latency is
// roughly 3x and write recovery roughly 10x the DRAM-cache equivalents,
// inside the paper's 2-4x read / 4x write envelope for end-to-end latency.
func PCM() Config {
	return Config{
		Name:            "pcm",
		Channels:        2,
		BanksPerChannel: 64, // PCM-class memories expose wide partition-level parallelism
		RowBytes:        64, // effectively closed-row: PCM has no open-page benefit
		TCAS:            13, TRCD: 100, TRP: 13, TRAS: 120, TWR: 150,
		BeatBytes: 8, BeatNS: 0.5, // 16 GB/s per channel
		WriteDrainWays: 12, // sustained write bandwidth ~1/3 of read
		EActivateNJ:    2.5, EReadUnitNJ: 3.0, EWriteUnitNJ: 12.0,
		BackgroundW: 0.5,
	}
}

// Loc addresses one row of one bank.
type Loc struct {
	Channel int
	Bank    int
	Row     uint64
}

// MapUnit maps a linear unit index (a cache set, or a memory line frame)
// to a device location. Units that share a row are adjacent
// (unit/unitsPerRow selects the row), and consecutive rows stripe across
// channels and then banks so that independent accesses spread out.
func (c Config) MapUnit(unit uint64, unitsPerRow int) Loc {
	m := c.NewMapper(unitsPerRow)
	return m.Map(unit)
}

// Mapper is the precomputed form of MapUnit for one (device, unitsPerRow)
// pairing. Callers on the per-access hot path build a Mapper once and call
// Map per access: the Mapper is a few words (no Config copy per call), and
// every division strength-reduces to a shift (powers of two) or a
// reciprocal multiplication (e.g. the 28 tag+data units per 2 KB row).
type Mapper struct {
	rowDiv  divisor
	chanDiv divisor
	bankDiv divisor
}

// divisor divides/reduces by a fixed uint64, with a shift/mask fast path
// for powers of two and a multiply-by-reciprocal fast path for other
// divisors below 2^32.
type divisor struct {
	n     uint64
	magic uint64 // ceil(2^64/n) when usable, else 0
	shift uint
	pow2  bool
}

func newDivisor(n uint64) divisor {
	d := divisor{n: n}
	if n&(n-1) == 0 {
		d.pow2 = true
		for m := n; m > 1; m >>= 1 {
			d.shift++
		}
	} else if n < 1<<32 {
		// With m = floor(2^64/n)+1 = (2^64+e)/n for some 1 <= e <= n,
		// hi(m*x) = floor(x/n + x*e/(n*2^64)), which equals floor(x/n)
		// whenever x*e < 2^64 — guaranteed for x, n < 2^32.
		d.magic = ^uint64(0)/n + 1
	}
	return d
}

func (d divisor) divMod(x uint64) (quo, rem uint64) {
	if d.pow2 {
		return x >> d.shift, x & (d.n - 1)
	}
	if d.magic != 0 && x < 1<<32 {
		quo, _ = bits.Mul64(d.magic, x)
		return quo, x - quo*d.n
	}
	return x / d.n, x % d.n
}

// NewMapper precomputes the striping arithmetic of MapUnit.
func (c Config) NewMapper(unitsPerRow int) Mapper {
	if unitsPerRow < 1 {
		unitsPerRow = 1
	}
	return Mapper{
		rowDiv:  newDivisor(uint64(unitsPerRow)),
		chanDiv: newDivisor(uint64(c.Channels)),
		bankDiv: newDivisor(uint64(c.BanksPerChannel)),
	}
}

// Map maps a linear unit index to its device location (see MapUnit).
// Pointer receiver on purpose: the Mapper is several cache-line-sized
// words of precomputed divisors, and Map is called per probe.
func (m *Mapper) Map(unit uint64) Loc {
	rowID, _ := m.rowDiv.divMod(unit)
	rest, ch := m.chanDiv.divMod(rowID)
	row, bank := m.bankDiv.divMod(rest)
	return Loc{Channel: int(ch), Bank: int(bank), Row: row}
}

// Result reports the timing of one access.
type Result struct {
	// DataAt is the cycle at which the transfer completes: read data has
	// fully arrived, or write data has been accepted by the device.
	DataAt int64
	// RowHit records whether the access hit the open row buffer.
	RowHit bool
}

// Stats are the cumulative operation counts of a device, the inputs to the
// energy model and the bandwidth accounting.
type Stats struct {
	Activates    uint64
	Reads        uint64 // column read operations
	Writes       uint64 // column write operations
	BytesRead    uint64
	BytesWritten uint64
	RowHits      uint64
	RowMisses    uint64
	// BusBusy accumulates cycles during which some channel data bus was
	// transferring (summed over channels; divide by Channels for average
	// utilization).
	BusBusy int64
	// ReadLatency accumulates (completion - issue) over reads, for mean
	// device-level read latency reporting.
	ReadLatency int64
	// BankWait accumulates cycles reads spent waiting for a busy bank;
	// BusWait accumulates cycles spent waiting for the data bus.
	BankWait int64
	BusWait  int64
}

type bank struct {
	rowOpen bool
	openRow uint64
	readyAt int64 // earliest cycle for the next column command
	actAt   int64 // cycle of the last activation (for tRAS)
}

// maxBusyIntervals bounds the per-channel busy-interval history used for
// data-bus backfill. Requests arriving earlier than the oldest tracked
// interval are rare; dropping history is conservative only for them.
const maxBusyIntervals = 24

type busyIvl struct{ start, end int64 }

// busyRingCap sizes each channel's calendar ring: a power of two with
// headroom above maxBusyIntervals+1 (the deepest transient during a
// merge-insert), so appending and dropping history are index arithmetic
// on a fixed inline array — no compaction copies, no slice growth, ever.
const (
	busyRingCap  = 32
	busyRingMask = busyRingCap - 1
)

type channel struct {
	// The data bus's scheduled transfer windows — sorted, non-overlapping
	// — live in a calendar ring: `ring` holds busyCount intervals starting
	// at logical index 0 == physical busyHead&mask. Keeping intervals
	// instead of a single next-free scalar lets a transfer scheduled in
	// the near future (a dependent second probe, a fill) coexist with
	// earlier idle time: requests backfill gaps instead of queueing behind
	// reservations that have not happened yet. Appending a new interval
	// and dropping the oldest are both O(1) ring-index updates; only the
	// rare mid-ring merge-insert of a backfill shifts entries. busyLast
	// caches the end of the newest interval (0 when empty) so the
	// append fast path and drainWrites never touch the ring at all.
	busyHead     uint32
	busyCount    uint32
	busyLast     int64
	writeBacklog int64 // queued write-drain cycles
	ring         [busyRingCap]busyIvl
	banks        []bank
}

// ivl returns the interval at logical index i (0 = oldest retained).
func (ch *channel) ivl(i int) *busyIvl {
	return &ch.ring[(ch.busyHead+uint32(i))&busyRingMask]
}

// lastEnd returns the end of the latest scheduled transfer.
func (ch *channel) lastEnd() int64 { return ch.busyLast }

// reserve finds the earliest start >= from where the bus is free for dur
// cycles, books it, and returns it.
//
// The fast path — the request starts at or after every scheduled
// transfer, which is the common case when the bus is busy and time moves
// forward — extends the newest interval or appends a new one in O(1)
// against the cached busyLast, keeping reserve small enough to inline
// into Access and drainWrites. Everything else (backfill into an earlier
// gap) goes to reserveSlow.
func (ch *channel) reserve(from, dur int64) int64 {
	if from >= ch.busyLast {
		n := ch.busyCount
		if n != 0 && from == ch.busyLast {
			ch.ring[(ch.busyHead+n-1)&busyRingMask].end = from + dur
		} else {
			ch.ring[(ch.busyHead+n)&busyRingMask] = busyIvl{start: from, end: from + dur}
			if n >= maxBusyIntervals {
				// Drop the oldest interval: a head increment, no copy.
				ch.busyHead++
			} else {
				ch.busyCount = n + 1
			}
		}
		ch.busyLast = from + dur
		return from
	}
	return ch.reserveSlow(from, dur)
}

// reserveSlow backfills a reservation that starts before the newest
// scheduled transfer, merging it into the retained interval history.
func (ch *channel) reserveSlow(from, dur int64) int64 {
	// Intervals whose end is <= from can never constrain this request;
	// the forward walk below would skip them one by one. Seek the first
	// relevant interval from the END instead: requests land near the
	// present, so this backward seek is a step or two while a forward
	// skip would traverse the whole retained history.
	n := int(ch.busyCount)
	p := n
	for p > 0 && ch.ivl(p-1).end > from {
		p--
	}
	t := from
	idx := p
	for i := p; i < n; i++ {
		iv := *ch.ivl(i)
		if iv.end <= t {
			idx = i + 1
			continue
		}
		if iv.start >= t+dur {
			idx = i
			break
		}
		t = iv.end
		idx = i + 1
	}
	// Insert [t, t+dur) at idx, merging with touching neighbours. The
	// shifts move at most maxBusyIntervals entries and only run on this
	// already-rare path.
	nb := busyIvl{start: t, end: t + dur}
	if idx > 0 && ch.ivl(idx-1).end == nb.start {
		ch.ivl(idx-1).end = nb.end
		if idx < n && ch.ivl(idx).start == nb.end {
			ch.ivl(idx-1).end = ch.ivl(idx).end
			for j := idx; j < n-1; j++ {
				*ch.ivl(j) = *ch.ivl(j + 1)
			}
			ch.busyCount--
		}
	} else if idx < n && ch.ivl(idx).start == nb.end {
		ch.ivl(idx).start = nb.start
	} else {
		for j := n; j > idx; j-- {
			*ch.ivl(j) = *ch.ivl(j - 1)
		}
		*ch.ivl(idx) = nb
		ch.busyCount++
		if ch.busyCount > maxBusyIntervals {
			// Drop the oldest interval (which may be the one just
			// inserted, when the whole retained history is later than it
			// — the reservation at t stands either way, exactly as the
			// previous sliding-window implementation behaved).
			ch.busyHead++
			ch.busyCount--
		}
	}
	ch.busyLast = ch.ivl(int(ch.busyCount) - 1).end
	return t
}

// Device is a single memory device instance. It is not safe for concurrent
// use; the simulator is single-goroutine by design.
type Device struct {
	cfg Config

	// Timing parameters converted to CPU cycles.
	tCAS, tRCD, tRP, tRAS, tWR int64
	cyclesPerNS                float64

	// xferByBeats[b] is the bus occupancy of a b-beat transfer,
	// precomputed so the per-access path never touches float math; the
	// drain floor of writeOcc is likewise fixed at construction, and
	// xferPer hoists the per-beat payload width off the access path.
	xferByBeats [maxXferBeats + 1]int64
	// xferByBytes caches transferCycles for the common small payloads
	// (lines and tag+data units), keyed by byte count so the hot path
	// avoids the division by the per-beat width. A heap slice, not an
	// inline array: Devices are created per simulated session, and an
	// inline table would bloat every copy of the struct.
	xferByBytes []int64
	drainFloor  int64
	xferPer     int

	channels      []channel
	writeQueueCap int64 // backlog cycles at which reads start stalling
	stats         Stats
}

// maxXferBeats bounds the precomputed transfer table; the payloads this
// simulator moves (64-byte lines, 72-byte tag+data units) never exceed it.
const maxXferBeats = 32

// New builds a device from cfg, with time measured in CPU cycles
// (cyclesPerNS = CPU GHz). It panics on an invalid configuration, which is
// always a programming error in this codebase.
func New(cfg Config, cyclesPerNS float64) *Device {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cyclesPerNS <= 0 {
		panic(fmt.Sprintf("dram %s: cyclesPerNS = %v, must be positive", cfg.Name, cyclesPerNS))
	}
	d := &Device{
		cfg:         cfg,
		cyclesPerNS: cyclesPerNS,
		tCAS:        toCycles(cfg.TCAS, cyclesPerNS),
		tRCD:        toCycles(cfg.TRCD, cyclesPerNS),
		tRP:         toCycles(cfg.TRP, cyclesPerNS),
		tRAS:        toCycles(cfg.TRAS, cyclesPerNS),
		tWR:         toCycles(cfg.TWR, cyclesPerNS),
		channels:    make([]channel, cfg.Channels),
	}
	d.xferPer = cfg.BeatBytes + cfg.ECCSidecarBytes
	for b := 0; b <= maxXferBeats; b++ {
		d.xferByBeats[b] = toCycles(float64(b)*cfg.BeatNS, cyclesPerNS)
	}
	d.xferByBytes = make([]int64, 2*memtypes.LineSize+1)
	for n := range d.xferByBytes {
		d.xferByBytes[n] = d.transferCyclesSlow(n)
	}
	if cfg.WriteDrainWays > 0 {
		d.drainFloor = d.tWR / int64(cfg.WriteDrainWays)
	}
	depth := cfg.WriteQueueDepth
	if depth <= 0 {
		depth = 32
	}
	d.writeQueueCap = int64(depth) * d.writeOcc(memtypes.LineSize)
	for i := range d.channels {
		d.channels[i].banks = make([]bank, cfg.BanksPerChannel)
	}
	return d
}

func toCycles(ns, cyclesPerNS float64) int64 {
	return int64(math.Ceil(ns * cyclesPerNS))
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns the cumulative statistics.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats zeroes the statistics without disturbing bank/bus state; used
// after warmup.
func (d *Device) ResetStats() { d.stats = Stats{} }

// SetStats replaces the cumulative statistics wholesale. Interval
// sampling uses it to impose the committed per-interval aggregates on
// the final device after the measured windows ran elsewhere (in-place
// or on fork systems).
func (d *Device) SetStats(s Stats) { d.stats = s }

// Add accumulates o into s field by field; Stats is a plain sum type,
// so interval deltas compose by addition.
func (s *Stats) Add(o Stats) {
	s.Activates += o.Activates
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.BytesRead += o.BytesRead
	s.BytesWritten += o.BytesWritten
	s.RowHits += o.RowHits
	s.RowMisses += o.RowMisses
	s.BusBusy += o.BusBusy
	s.ReadLatency += o.ReadLatency
	s.BankWait += o.BankWait
	s.BusWait += o.BusWait
}

// ResetTiming returns every bank and channel to its power-on timing
// state — rows closed, banks immediately ready, data buses idle, write
// backlogs drained — without touching the statistics. A device after
// ResetTiming is behaviorally indistinguishable from a freshly
// constructed one (stale ring entries past busyCount are never read).
// Interval sampling calls it at each detailed-window boundary so
// in-place and fork-restored measured windows start from the same
// canonical device state.
func (d *Device) ResetTiming() {
	for i := range d.channels {
		ch := &d.channels[i]
		ch.busyHead = 0
		ch.busyCount = 0
		ch.busyLast = 0
		ch.writeBacklog = 0
		for j := range ch.banks {
			ch.banks[j] = bank{}
		}
	}
}

// RegisterMetrics publishes the device's statistics into r under prefix
// (e.g. "hbm", "pcm") as views over the live counters; the access path
// itself stays allocation- and indirection-free.
func (d *Device) RegisterMetrics(r *metrics.Registry, prefix string) {
	s := &d.stats
	c := func(name, help string, fn func() uint64) { r.CounterFunc(prefix+"."+name, help, fn) }
	c("activates", "row activations", func() uint64 { return s.Activates })
	c("reads", "column read operations", func() uint64 { return s.Reads })
	c("writes", "column write operations", func() uint64 { return s.Writes })
	c("bytes_read", "payload bytes read", func() uint64 { return s.BytesRead })
	c("bytes_written", "payload bytes written", func() uint64 { return s.BytesWritten })
	c("row_hits", "reads that hit the open row buffer", func() uint64 { return s.RowHits })
	c("row_misses", "reads that required an activation", func() uint64 { return s.RowMisses })
	c("bus_busy_cycles", "data-bus busy cycles, summed over channels", func() uint64 { return uint64(s.BusBusy) })
	c("bank_wait_cycles", "cycles reads waited for a busy bank", func() uint64 { return uint64(s.BankWait) })
	c("bus_wait_cycles", "cycles reads waited for the data bus", func() uint64 { return uint64(s.BusWait) })

	r.GaugeFunc(prefix+".row_hit_rate_pct", "row-buffer hit rate of reads, percent (absent before any read)",
		func() float64 {
			total := s.RowHits + s.RowMisses
			if total == 0 {
				return math.NaN()
			}
			return 100 * float64(s.RowHits) / float64(total)
		})
	r.GaugeFunc(prefix+".mean_read_latency_cycles", "mean device-level read latency (absent before any read)",
		func() float64 {
			if s.Reads == 0 {
				return math.NaN()
			}
			return float64(s.ReadLatency) / float64(s.Reads)
		})
}

// transferCycles returns the bus occupancy for a payload of n bytes. With
// an ECC sidecar, each beat moves BeatBytes+ECCSidecarBytes, so
// tags-with-data units ride free alongside their data.
func (d *Device) transferCycles(bytes int) int64 {
	if uint(bytes) < uint(len(d.xferByBytes)) {
		return d.xferByBytes[bytes]
	}
	return d.transferCyclesSlow(bytes)
}

// transferCyclesSlow computes the occupancy from first principles; it
// fills xferByBytes at construction and serves oversized payloads.
func (d *Device) transferCyclesSlow(bytes int) int64 {
	beats := (bytes + d.xferPer - 1) / d.xferPer
	if beats <= maxXferBeats {
		return d.xferByBeats[beats]
	}
	return toCycles(float64(beats)*d.cfg.BeatNS, d.cyclesPerNS)
}

// writeOcc returns the channel-drain occupancy of one buffered write: the
// bus transfer, or the cell-write time divided across the banks the write
// queue drains into, whichever is slower.
func (d *Device) writeOcc(bytes int) int64 {
	occ := d.transferCycles(bytes)
	if d.drainFloor > occ {
		occ = d.drainFloor
	}
	return occ
}

// Access performs one read or write of the given payload at loc, earliest
// at cycle `at`, and returns its completion time. The caller is responsible
// for issuing accesses in (approximately) non-decreasing time order.
//
// Writes model a buffered write queue with read priority, as in real
// memory controllers: a write lands in the channel's write queue (cost:
// energy plus queue occupancy) and drains during bus idle gaps; reads see
// write traffic only when the queue overflows, at which point the
// overflow drains ahead of them. Writes do not perturb bank or row state
// visible to reads. The write-recovery cost (tWR, dominant for PCM) is
// part of each write's drain occupancy via WriteDrainWays.
func (d *Device) Access(at int64, loc Loc, kind memtypes.Kind, bytes int) Result {
	// Mapper-produced locations are already in range, so the reducing mod
	// (kept for arbitrary callers) almost never pays for a division.
	chIdx, bkIdx := loc.Channel, loc.Bank
	if chIdx >= d.cfg.Channels {
		chIdx %= d.cfg.Channels
	}
	if bkIdx >= d.cfg.BanksPerChannel {
		bkIdx %= d.cfg.BanksPerChannel
	}
	ch := &d.channels[chIdx]
	bk := &ch.banks[bkIdx]

	if kind == memtypes.Write {
		occ := d.writeOcc(bytes)
		d.drainWrites(ch, at)
		ch.writeBacklog += occ
		d.stats.Writes++
		d.stats.BytesWritten += uint64(bytes)
		// Nominal completion for the writer: queued behind the current
		// backlog, then cell-write recovery.
		return Result{DataAt: max(at, ch.lastEnd()) + ch.writeBacklog + d.tWR, RowHit: true}
	}

	start := max(at, bk.readyAt)
	d.stats.BankWait += start - at
	rowHit := bk.rowOpen && bk.openRow == loc.Row
	var rowReadyAt int64
	if rowHit {
		rowReadyAt = start
		d.stats.RowHits++
	} else {
		// If a different row is open, precharge it first (no earlier than
		// tRAS after its activation); a closed bank activates immediately.
		actAt := start
		if bk.rowOpen {
			preAt := max(start, bk.actAt+d.tRAS)
			actAt = preAt + d.tRP
		}
		rowReadyAt = actAt + d.tRCD
		bk.rowOpen = true
		bk.openRow = loc.Row
		bk.actAt = actAt
		d.stats.Activates++
		d.stats.RowMisses++
	}

	casDoneAt := rowReadyAt + d.tCAS
	xfer := d.transferCycles(bytes)

	// The bus idle gap until this read's data phase drains buffered
	// writes; reads stall on writes only past the queue capacity.
	d.drainWrites(ch, casDoneAt)
	need := xfer
	if over := ch.writeBacklog - d.writeQueueCap; over > 0 {
		// Queue overflow: the excess must drain ahead of this read.
		need += over
		ch.writeBacklog -= over
		d.stats.BusBusy += over
	}

	slot := ch.reserve(casDoneAt, need)
	busStart := slot + (need - xfer) // data phase after any forced drain
	d.stats.BusWait += busStart - casDoneAt
	dataAt := busStart + xfer
	d.stats.BusBusy += xfer

	// Subsequent column commands to the open row can pipeline; the data
	// bus is the serializing resource, so a row hit leaves the bank ready
	// time alone (never pushing it into the future past other requesters).
	if !rowHit {
		bk.readyAt = rowReadyAt
	}
	d.stats.Reads++
	d.stats.BytesRead += uint64(bytes)
	d.stats.ReadLatency += dataAt - at
	return Result{DataAt: dataAt, RowHit: rowHit}
}

// drainWrites retires backlogged writes into the bus idle time before
// `until`, consuming real bus occupancy for what it drains.
func (d *Device) drainWrites(ch *channel, until int64) {
	if ch.writeBacklog == 0 {
		return
	}
	idle := until - ch.lastEnd()
	if idle <= 0 {
		return
	}
	drained := min(ch.writeBacklog, idle)
	ch.reserve(ch.lastEnd(), drained)
	ch.writeBacklog -= drained
	d.stats.BusBusy += drained
}

// UnloadedReadLatency returns the latency in cycles of an isolated read of
// the given payload on a closed (precharged) bank — the "row miss, idle
// system" case, useful for tests and for reporting.
func (d *Device) UnloadedReadLatency(bytes int) int64 {
	return d.tRCD + d.tCAS + d.transferCycles(bytes)
}

// RowHitReadLatency returns the latency of an isolated read that hits the
// open row.
func (d *Device) RowHitReadLatency(bytes int) int64 {
	return d.tCAS + d.transferCycles(bytes)
}
