package dram

import (
	"testing"
	"testing/quick"

	"accord/internal/memtypes"
)

const cyclesPerNS = 3.0 // 3 GHz CPU, as in Table III

func TestConfigValidate(t *testing.T) {
	good := HBM()
	if err := good.Validate(); err != nil {
		t.Fatalf("HBM config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.BanksPerChannel = -1 },
		func(c *Config) { c.RowBytes = 0 },
		func(c *Config) { c.BeatBytes = 0 },
		func(c *Config) { c.BeatNS = 0 },
		func(c *Config) { c.TRCD = -1 },
	}
	for i, mutate := range cases {
		c := HBM()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config passed validation", i)
		}
	}
}

func TestPeakBandwidth(t *testing.T) {
	// Table III: 128 GB/s aggregate for the DRAM cache, 32 GB/s for PCM.
	if bw := HBM().PeakBandwidthGBs(); bw != 128 {
		t.Errorf("HBM bandwidth = %v GB/s, want 128", bw)
	}
	if bw := PCM().PeakBandwidthGBs(); bw != 32 {
		t.Errorf("PCM bandwidth = %v GB/s, want 32", bw)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with bad config did not panic")
		}
	}()
	c := HBM()
	c.Channels = 0
	New(c, cyclesPerNS)
}

func TestNewPanicsOnBadClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with bad clock did not panic")
		}
	}()
	New(HBM(), 0)
}

func TestMapUnitStriping(t *testing.T) {
	c := HBM()
	unitsPerRow := c.RowBytes / memtypes.TagUnitSize
	// Units within a row share a location.
	l0 := c.MapUnit(0, unitsPerRow)
	l1 := c.MapUnit(uint64(unitsPerRow-1), unitsPerRow)
	if l0 != l1 {
		t.Errorf("units in same row map differently: %v vs %v", l0, l1)
	}
	// Consecutive rows change channel.
	l2 := c.MapUnit(uint64(unitsPerRow), unitsPerRow)
	if l2.Channel == l0.Channel {
		t.Errorf("consecutive rows share channel %d", l2.Channel)
	}
	// All channels get used.
	seen := map[int]bool{}
	for u := uint64(0); u < uint64(unitsPerRow*c.Channels*2); u += uint64(unitsPerRow) {
		seen[c.MapUnit(u, unitsPerRow).Channel] = true
	}
	if len(seen) != c.Channels {
		t.Errorf("only %d of %d channels used", len(seen), c.Channels)
	}
}

func TestMapUnitZeroUnitsPerRow(t *testing.T) {
	c := HBM()
	// Degenerate unitsPerRow is clamped rather than dividing by zero.
	_ = c.MapUnit(5, 0)
}

func TestRowMissThenHitLatency(t *testing.T) {
	d := New(HBM(), cyclesPerNS)
	loc := Loc{Channel: 0, Bank: 0, Row: 7}
	r1 := d.Access(0, loc, memtypes.Read, memtypes.TagUnitSize)
	if r1.RowHit {
		t.Error("first access to a bank reported a row hit")
	}
	// tRP+tRCD+tCAS+transfer = (13+13+13)*3 + 5ns*3 = 117+15.
	want := d.UnloadedReadLatency(memtypes.TagUnitSize)
	if r1.DataAt != want {
		t.Errorf("row-miss latency = %d, want %d", r1.DataAt, want)
	}
	r2 := d.Access(r1.DataAt, loc, memtypes.Read, memtypes.TagUnitSize)
	if !r2.RowHit {
		t.Error("second access to the same row missed the row buffer")
	}
	if got := r2.DataAt - r1.DataAt; got != d.RowHitReadLatency(memtypes.TagUnitSize) {
		t.Errorf("row-hit latency = %d, want %d", got, d.RowHitReadLatency(memtypes.TagUnitSize))
	}
}

func TestRowConflictCostsMore(t *testing.T) {
	d := New(HBM(), cyclesPerNS)
	a := Loc{Channel: 0, Bank: 0, Row: 1}
	b := Loc{Channel: 0, Bank: 0, Row: 2}
	r1 := d.Access(0, a, memtypes.Read, 64)
	r2 := d.Access(r1.DataAt, b, memtypes.Read, 64)
	if r2.RowHit {
		t.Error("different row reported a row hit")
	}
	if r2.DataAt-r1.DataAt <= d.RowHitReadLatency(64) {
		t.Errorf("row conflict (%d cycles) not slower than row hit (%d)",
			r2.DataAt-r1.DataAt, d.RowHitReadLatency(64))
	}
}

func TestBusSerializesSameChannel(t *testing.T) {
	d := New(HBM(), cyclesPerNS)
	// Two different banks on the same channel, issued at the same time:
	// the data bus must serialize the transfers.
	r1 := d.Access(0, Loc{Channel: 0, Bank: 0, Row: 0}, memtypes.Read, 64)
	r2 := d.Access(0, Loc{Channel: 0, Bank: 1, Row: 0}, memtypes.Read, 64)
	if r2.DataAt < r1.DataAt+d.transferCycles(64) {
		t.Errorf("transfers overlapped on one channel: %d then %d", r1.DataAt, r2.DataAt)
	}
}

func TestChannelsAreParallel(t *testing.T) {
	d := New(HBM(), cyclesPerNS)
	r1 := d.Access(0, Loc{Channel: 0, Bank: 0, Row: 0}, memtypes.Read, 64)
	r2 := d.Access(0, Loc{Channel: 1, Bank: 0, Row: 0}, memtypes.Read, 64)
	if r1.DataAt != r2.DataAt {
		t.Errorf("identical accesses on separate channels finished at %d and %d", r1.DataAt, r2.DataAt)
	}
}

func TestWriteRecoveryChargedToWrite(t *testing.T) {
	d := New(PCM(), cyclesPerNS)
	loc := Loc{Channel: 0, Bank: 0, Row: 0}
	w := d.Access(0, loc, memtypes.Write, 64)
	// The write's own completion includes write recovery (tWR = 150 ns).
	if minDone := int64(150 * cyclesPerNS); w.DataAt < minDone {
		t.Errorf("write completed at %d, want >= %d (tWR)", w.DataAt, minDone)
	}
}

func TestWritesDoNotBlockReads(t *testing.T) {
	// Buffered-write model: a pending write costs the read only bus
	// bandwidth, never bank blocking or a row-buffer closure.
	d := New(PCM(), cyclesPerNS)
	loc := Loc{Channel: 0, Bank: 0, Row: 0}
	d.Access(0, loc, memtypes.Read, 64) // open the row
	d.Access(1000, Loc{Channel: 0, Bank: 0, Row: 9}, memtypes.Write, 64)
	r := d.Access(1000, loc, memtypes.Read, 64)
	if !r.RowHit {
		t.Error("write closed the open row")
	}
	maxDone := int64(1000) + d.RowHitReadLatency(64) + d.transferCycles(64)
	if r.DataAt > maxDone {
		t.Errorf("read after buffered write done at %d, want <= %d", r.DataAt, maxDone)
	}
}

func TestPCMReadSlowerThanHBM(t *testing.T) {
	hbm := New(HBM(), cyclesPerNS)
	pcm := New(PCM(), cyclesPerNS)
	h := hbm.UnloadedReadLatency(64)
	p := pcm.UnloadedReadLatency(64)
	if ratio := float64(p) / float64(h); ratio < 2 || ratio > 4 {
		t.Errorf("PCM/HBM unloaded read ratio = %.2f, want within the paper's 2-4x", ratio)
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := New(HBM(), cyclesPerNS)
	loc := Loc{Channel: 0, Bank: 0, Row: 0}
	d.Access(0, loc, memtypes.Read, 72)
	d.Access(0, loc, memtypes.Read, 72)
	d.Access(0, loc, memtypes.Write, 72)
	s := d.Stats()
	if s.Reads != 2 || s.Writes != 1 {
		t.Errorf("reads/writes = %d/%d, want 2/1", s.Reads, s.Writes)
	}
	if s.BytesRead != 144 || s.BytesWritten != 72 {
		t.Errorf("bytes = %d/%d, want 144/72", s.BytesRead, s.BytesWritten)
	}
	// Only reads touch row-buffer state under the buffered-write model.
	if s.Activates != 1 || s.RowMisses != 1 || s.RowHits != 1 {
		t.Errorf("activates/misses/hits = %d/%d/%d, want 1/1/1", s.Activates, s.RowMisses, s.RowHits)
	}
	if s.BusBusy <= 0 {
		t.Error("BusBusy not accumulated")
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero stats")
	}
}

func TestTimeMonotonicity(t *testing.T) {
	// Completion time never precedes issue time, and issuing later never
	// yields an earlier completion on a fresh device.
	f := func(at uint32, chRaw, bankRaw uint8, row uint16, write bool) bool {
		d := New(HBM(), cyclesPerNS)
		kind := memtypes.Read
		if write {
			kind = memtypes.Write
		}
		loc := Loc{Channel: int(chRaw), Bank: int(bankRaw), Row: uint64(row)}
		r := d.Access(int64(at), loc, kind, 64)
		return r.DataAt > int64(at)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandwidthUnderLoad(t *testing.T) {
	// Saturating one channel with row hits should approach the per-channel
	// peak bandwidth: 64 B per 4 beats per 1 ns each = 16 GB/s.
	d := New(HBM(), cyclesPerNS)
	loc := Loc{Channel: 0, Bank: 0, Row: 0}
	n := 10000
	var last int64
	for i := 0; i < n; i++ {
		last = d.Access(0, loc, memtypes.Read, 64).DataAt
	}
	seconds := float64(last) / (cyclesPerNS * 1e9)
	gbs := float64(n*64) / seconds / 1e9
	if gbs < 14 || gbs > 16.5 {
		t.Errorf("sustained single-channel bandwidth = %.1f GB/s, want about 16", gbs)
	}
}
