package dram

import "accord/internal/ckpt"

// deviceVersion tags the Device encoding; bump on any layout change.
const deviceVersion = 1

// Snapshot serializes the device's timing state: statistics, per-channel
// write backlog and busy-interval window, and per-bank row-buffer state.
// The derived timing parameters and transfer LUTs are config-determined
// and rebuilt by New, so they are not stored.
func (d *Device) Snapshot(e *ckpt.Encoder) {
	e.U8(deviceVersion)
	e.U64(d.stats.Activates)
	e.U64(d.stats.Reads)
	e.U64(d.stats.Writes)
	e.U64(d.stats.BytesRead)
	e.U64(d.stats.BytesWritten)
	e.U64(d.stats.RowHits)
	e.U64(d.stats.RowMisses)
	e.I64(d.stats.BusBusy)
	e.I64(d.stats.ReadLatency)
	e.I64(d.stats.BankWait)
	e.I64(d.stats.BusWait)
	e.U32(uint32(len(d.channels)))
	for ci := range d.channels {
		ch := &d.channels[ci]
		e.I64(ch.writeBacklog)
		// Busy intervals are written in logical (oldest-first) order, so
		// the encoding is identical regardless of where the ring head
		// sits — the same bytes the pre-ring sliding-window layout wrote.
		e.U32(ch.busyCount)
		for i := 0; i < int(ch.busyCount); i++ {
			iv := ch.ivl(i)
			e.I64(iv.start)
			e.I64(iv.end)
		}
		e.U32(uint32(len(ch.banks)))
		for bi := range ch.banks {
			b := &ch.banks[bi]
			e.Bool(b.rowOpen)
			e.U64(b.openRow)
			e.I64(b.readyAt)
			e.I64(b.actAt)
		}
	}
}

// Restore replaces the device's state with a snapshot. Busy intervals are
// rebuilt into the ring starting at head zero; reservation outcomes
// depend only on the logical interval sequence, not on where the ring
// head sat when the snapshot was taken, so this is behaviorally
// identical.
func (d *Device) Restore(dec *ckpt.Decoder) error {
	if v := dec.U8(); dec.Err() == nil && v != deviceVersion {
		dec.Failf("dram: snapshot version %d, want %d", v, deviceVersion)
	}
	if err := dec.Err(); err != nil {
		return err
	}
	d.stats.Activates = dec.U64()
	d.stats.Reads = dec.U64()
	d.stats.Writes = dec.U64()
	d.stats.BytesRead = dec.U64()
	d.stats.BytesWritten = dec.U64()
	d.stats.RowHits = dec.U64()
	d.stats.RowMisses = dec.U64()
	d.stats.BusBusy = dec.I64()
	d.stats.ReadLatency = dec.I64()
	d.stats.BankWait = dec.I64()
	d.stats.BusWait = dec.I64()
	if n := dec.U32(); dec.Err() == nil && int(n) != len(d.channels) {
		dec.Failf("dram: snapshot has %d channels, device has %d", n, len(d.channels))
	}
	if err := dec.Err(); err != nil {
		return err
	}
	for ci := range d.channels {
		ch := &d.channels[ci]
		ch.writeBacklog = dec.I64()
		// The live ring holds at most maxBusyIntervals entries between
		// accesses (reserve trims before returning).
		n := dec.Len(maxBusyIntervals)
		if err := dec.Err(); err != nil {
			return err
		}
		ch.busyHead = 0
		ch.busyCount = uint32(n)
		ch.busyLast = 0
		prevEnd := int64(-1 << 62)
		for i := 0; i < n; i++ {
			iv := busyIvl{start: dec.I64(), end: dec.I64()}
			if dec.Err() == nil && (iv.end < iv.start || iv.start < prevEnd) {
				dec.Failf("dram: busy interval %d [%d,%d) out of order", i, iv.start, iv.end)
			}
			if err := dec.Err(); err != nil {
				return err
			}
			ch.ring[i] = iv
			prevEnd = iv.end
		}
		if n > 0 {
			ch.busyLast = ch.ring[n-1].end
		}
		if bn := dec.U32(); dec.Err() == nil && int(bn) != len(ch.banks) {
			dec.Failf("dram: snapshot has %d banks, channel has %d", bn, len(ch.banks))
		}
		if err := dec.Err(); err != nil {
			return err
		}
		for bi := range ch.banks {
			b := &ch.banks[bi]
			b.rowOpen = dec.Bool()
			b.openRow = dec.U64()
			b.readyAt = dec.I64()
			b.actAt = dec.I64()
		}
	}
	return dec.Err()
}
