package dram

import "accord/internal/ckpt"

// deviceVersion tags the Device encoding; bump on any layout change.
const deviceVersion = 1

// Snapshot serializes the device's timing state: statistics, per-channel
// write backlog and busy-interval window, and per-bank row-buffer state.
// The derived timing parameters and transfer LUTs are config-determined
// and rebuilt by New, so they are not stored.
func (d *Device) Snapshot(e *ckpt.Encoder) {
	e.U8(deviceVersion)
	e.U64(d.stats.Activates)
	e.U64(d.stats.Reads)
	e.U64(d.stats.Writes)
	e.U64(d.stats.BytesRead)
	e.U64(d.stats.BytesWritten)
	e.U64(d.stats.RowHits)
	e.U64(d.stats.RowMisses)
	e.I64(d.stats.BusBusy)
	e.I64(d.stats.ReadLatency)
	e.I64(d.stats.BankWait)
	e.I64(d.stats.BusWait)
	e.U32(uint32(len(d.channels)))
	for ci := range d.channels {
		ch := &d.channels[ci]
		e.I64(ch.writeBacklog)
		e.U32(uint32(len(ch.busy)))
		for _, iv := range ch.busy {
			e.I64(iv.start)
			e.I64(iv.end)
		}
		e.U32(uint32(len(ch.banks)))
		for bi := range ch.banks {
			b := &ch.banks[bi]
			e.Bool(b.rowOpen)
			e.U64(b.openRow)
			e.I64(b.readyAt)
			e.I64(b.actAt)
		}
	}
}

// Restore replaces the device's state with a snapshot. Busy intervals are
// rebuilt into a fresh full-capacity backing buffer; reservation outcomes
// depend only on the interval contents, not on where the sliding window
// sat within the old buffer, so this is behaviorally identical.
func (d *Device) Restore(dec *ckpt.Decoder) error {
	if v := dec.U8(); dec.Err() == nil && v != deviceVersion {
		dec.Failf("dram: snapshot version %d, want %d", v, deviceVersion)
	}
	if err := dec.Err(); err != nil {
		return err
	}
	d.stats.Activates = dec.U64()
	d.stats.Reads = dec.U64()
	d.stats.Writes = dec.U64()
	d.stats.BytesRead = dec.U64()
	d.stats.BytesWritten = dec.U64()
	d.stats.RowHits = dec.U64()
	d.stats.RowMisses = dec.U64()
	d.stats.BusBusy = dec.I64()
	d.stats.ReadLatency = dec.I64()
	d.stats.BankWait = dec.I64()
	d.stats.BusWait = dec.I64()
	if n := dec.U32(); dec.Err() == nil && int(n) != len(d.channels) {
		dec.Failf("dram: snapshot has %d channels, device has %d", n, len(d.channels))
	}
	if err := dec.Err(); err != nil {
		return err
	}
	for ci := range d.channels {
		ch := &d.channels[ci]
		ch.writeBacklog = dec.I64()
		// The live window holds at most maxBusyIntervals entries between
		// accesses (appendBusy trims before returning).
		n := dec.Len(maxBusyIntervals)
		if err := dec.Err(); err != nil {
			return err
		}
		ch.busyBuf = make([]busyIvl, busyBufCap)
		ch.busy = ch.busyBuf[:n]
		prevEnd := int64(-1 << 62)
		for i := 0; i < n; i++ {
			iv := busyIvl{start: dec.I64(), end: dec.I64()}
			if dec.Err() == nil && (iv.end < iv.start || iv.start < prevEnd) {
				dec.Failf("dram: busy interval %d [%d,%d) out of order", i, iv.start, iv.end)
			}
			if err := dec.Err(); err != nil {
				return err
			}
			ch.busy[i] = iv
			prevEnd = iv.end
		}
		if bn := dec.U32(); dec.Err() == nil && int(bn) != len(ch.banks) {
			dec.Failf("dram: snapshot has %d banks, channel has %d", bn, len(ch.banks))
		}
		if err := dec.Err(); err != nil {
			return err
		}
		for bi := range ch.banks {
			b := &ch.banks[bi]
			b.rowOpen = dec.Bool()
			b.openRow = dec.U64()
			b.readyAt = dec.I64()
			b.actAt = dec.I64()
		}
	}
	return dec.Err()
}
