package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// RunMetrics is the observability bundle one simulation produces: the
// final registry snapshot over the measured window, plus the per-epoch
// time series when epoch sampling was enabled.
type RunMetrics struct {
	Final  Snapshot    `json:"final"`
	Series *SeriesData `json:"series,omitempty"`
}

// SampledCI is one interval-sampled estimate in an export: the mean of
// the per-interval observations and its Student-t confidence-interval
// half-width (the run's Sampled.Confidence gives the level). Half is
// omitted when fewer than two intervals observed the metric — undefined,
// not zero.
type SampledCI struct {
	Mean      float64  `json:"mean"`
	Half      *float64 `json:"ci_half,omitempty"`
	Intervals int      `json:"intervals"`
}

// Sampled summarizes a SMARTS-style interval-sampled run: how many
// measured intervals ran versus planned, whether the run converged early
// at its target CI, and the headline estimates with their ±CI
// half-widths. Present only on sampled runs.
type Sampled struct {
	Intervals  int     `json:"intervals"`
	Planned    int     `json:"planned"`
	Converged  bool    `json:"converged"`
	Confidence float64 `json:"confidence"`

	IPC     *SampledCI `json:"ipc,omitempty"`
	HitRate *SampledCI `json:"hit_rate,omitempty"`
	MPKI    *SampledCI `json:"mpki,omitempty"`
}

// Run is one simulation's entry in an export: identity, headline
// numbers, and the full metrics bundle.
type Run struct {
	Config   string `json:"config"`
	Workload string `json:"workload"`

	Instructions int64   `json:"instructions"`
	Cycles       int64   `json:"cycles"`
	MeanIPC      float64 `json:"mean_ipc"`
	HitRate      float64 `json:"hit_rate"`

	// Sampled carries the interval-sampling summary for sampled runs; the
	// headline numbers above are then the sampled means, and the series in
	// Metrics holds one sample per measured interval instead of per epoch.
	Sampled *Sampled `json:"sampled,omitempty"`

	Metrics *RunMetrics `json:"metrics,omitempty"`
}

// Export is the top-level machine-readable artifact `-metrics-out`
// writes: a run manifest plus every simulation's metrics, in a
// deterministic order. METRICS.md documents the schema.
type Export struct {
	Manifest *Manifest `json:"manifest,omitempty"`
	Runs     []Run     `json:"runs"`
}

// WriteJSON writes the export as indented JSON.
func (e *Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// csvHeader is the flat CSV schema: one row per metric per sample. The
// `phase` column is "final" for the end-of-run snapshot, "epoch" for
// time-series samples, and "interval" for interval-sampled runs' per-
// interval series (with `epoch` giving the sample index). Gauge
// values go to `value` — left empty when the gauge is undefined, which
// keeps a missing ratio distinguishable from a real 0. Counters fill
// `count`; histograms fill `count`, `sum`, and semicolon-joined
// `buckets`.
var csvHeader = []string{
	"config", "workload", "phase", "epoch", "instructions", "cycles",
	"metric", "kind", "value", "count", "sum", "buckets",
}

// WriteCSV writes the export in the flat CSV schema. The manifest does
// not fit a per-metric table; callers wanting it alongside CSV write it
// separately (see Manifest.WriteJSON).
func (e *Export) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range e.Runs {
		if r.Metrics == nil {
			continue
		}
		if err := writeSampleRows(cw, r, "final", -1, r.Instructions, r.Cycles, r.Metrics.Final.Values); err != nil {
			return err
		}
		if r.Metrics.Series != nil {
			phase := r.Metrics.Series.Phase
			if phase == "" {
				phase = "epoch"
			}
			for _, smp := range r.Metrics.Series.Samples {
				if err := writeSampleRows(cw, r, phase, smp.Epoch, smp.Instructions, smp.Cycles, smp.Values); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func writeSampleRows(cw *csv.Writer, r Run, phase string, epoch int, instr, cycles int64, values []Value) error {
	epochCell := ""
	if epoch >= 0 {
		epochCell = strconv.Itoa(epoch)
	}
	for _, v := range values {
		value := ""
		if v.Value != nil {
			value = strconv.FormatFloat(*v.Value, 'g', -1, 64)
		}
		count, sum, buckets := "", "", ""
		if v.Kind != KindGauge.String() {
			count = strconv.FormatUint(v.Count, 10)
		}
		if v.Kind == KindHistogram.String() {
			sum = strconv.FormatFloat(v.Sum, 'g', -1, 64)
			parts := make([]string, len(v.Buckets))
			for i, b := range v.Buckets {
				parts[i] = strconv.FormatUint(b, 10)
			}
			buckets = strings.Join(parts, ";")
		}
		row := []string{
			r.Config, r.Workload, phase, epochCell,
			strconv.FormatInt(instr, 10), strconv.FormatInt(cycles, 10),
			v.Name, v.Kind, value, count, sum, buckets,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes the export to path, choosing the encoding from the
// extension: ".csv" gets the flat CSV schema plus a JSON manifest
// sidecar at path+".manifest.json" (when a manifest is present);
// anything else gets the full JSON document. This is the behavior
// behind the CLIs' -metrics-out flag.
func (e *Export) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		if err := e.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if e.Manifest == nil {
			return nil
		}
		side, err := os.Create(path + ".manifest.json")
		if err != nil {
			return err
		}
		if err := e.Manifest.WriteJSON(side); err != nil {
			side.Close()
			return err
		}
		return side.Close()
	}
	if err := e.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Manifest identifies one tool invocation so exported runs are diffable:
// what ran, with which configuration and seed, from which source state,
// for how long.
type Manifest struct {
	Tool        string      `json:"tool"`
	Config      interface{} `json:"config,omitempty"`
	Seed        int64       `json:"seed"`
	GitDescribe string      `json:"git_describe"`
	GoVersion   string      `json:"go_version"`
	StartedAt   string      `json:"started_at"`
	WallSeconds float64     `json:"wall_seconds"`

	// SampleWork carries the sampled-run execution split (worker counts,
	// speculation, spine/detail/lattice accounting) when the invocation
	// ran interval sampling; see sim.SampleWork.ManifestEntry. It is
	// diagnostic — wall-clock shaped, never result-affecting — which is
	// why it lives in the manifest and not in the metric values.
	SampleWork interface{} `json:"sample_work,omitempty"`

	start time.Time
}

// NewManifest starts a manifest for the given tool invocation; call
// Finish when the run completes to record wall time.
func NewManifest(tool string, config interface{}, seed int64) *Manifest {
	now := time.Now()
	return &Manifest{
		Tool:        tool,
		Config:      config,
		Seed:        seed,
		GitDescribe: GitDescribe(),
		GoVersion:   runtime.Version(),
		StartedAt:   now.UTC().Format(time.RFC3339),
		start:       now,
	}
}

// Finish records the elapsed wall time and returns the manifest.
func (m *Manifest) Finish() *Manifest {
	m.WallSeconds = time.Since(m.start).Seconds()
	return m
}

// WriteJSON writes the manifest alone as indented JSON (the sidecar for
// CSV exports, whose tabular form cannot carry it).
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// GitDescribe returns `git describe --always --dirty` for the working
// tree, or "unknown" when git (or a repository) is unavailable.
func GitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// PowerOfTwoBounds returns histogram upper bounds {2^1, ..., 2^n} — the
// bucket shape the DRAM-cache latency histograms use (bucket i covers
// latencies in [2^i, 2^(i+1))).
func PowerOfTwoBounds(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(uint64(1) << uint(i+1))
	}
	return out
}

// FormatValue renders a Value for human-readable diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindGauge.String():
		if v.Value == nil {
			return fmt.Sprintf("%s <undefined>", v.Name)
		}
		return fmt.Sprintf("%s %g", v.Name, *v.Value)
	case KindHistogram.String():
		return fmt.Sprintf("%s count=%d sum=%g", v.Name, v.Count, v.Sum)
	default:
		return fmt.Sprintf("%s %d", v.Name, v.Count)
	}
}
