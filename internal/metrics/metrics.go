// Package metrics is the simulator's observability substrate: a typed
// registry of named counters, gauges, and fixed-bucket histograms that
// every component (cores, SRAM hierarchy, DRAM cache, memory devices, way
// policies) registers into, plus per-epoch time-series sampling driven by
// the simulator clock and machine-readable JSON/CSV export.
//
// Two metric families coexist:
//
//   - Owned metrics (NewCounter, NewGauge, NewHistogram) carry their own
//     atomic state and are safe for concurrent use — the experiment
//     scheduler snapshots sessions while workers update them.
//   - View metrics (CounterFunc, GaugeFunc, HistogramFunc) read an
//     existing component's statistics through a closure, so a component
//     keeps its cheap plain-struct counters on the simulation hot path
//     and the registry becomes the single export surface over them.
//
// Undefined values are first-class: a gauge whose closure returns NaN (a
// ratio with a zero denominator, say) exports as an *absent* value in
// JSON and an empty cell in CSV, distinguishable from a real 0 — see
// stats.PctOK and friends for the producing side.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is one metric's exported state at a sampling instant. Exactly the
// fields meaningful for the metric's kind are populated:
//
//   - counter:   Count
//   - gauge:     Value, nil when the gauge is undefined (NaN/Inf)
//   - histogram: Count (== sum of Buckets), Sum, Buckets
type Value struct {
	Name string `json:"name"`
	Kind string `json:"kind"`

	Value   *float64 `json:"value,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// Defined reports whether a gauge value is present (counters and
// histograms are always defined).
func (v Value) Defined() bool { return v.Kind != KindGauge.String() || v.Value != nil }

// HistogramValue is the state a HistogramFunc view must produce.
type HistogramValue struct {
	Count   uint64
	Sum     float64
	Buckets []uint64 // len(bounds)+1; the last bucket is overflow
}

// Info describes one registered metric; Registry.Schema returns these.
type Info struct {
	Name   string    `json:"name"`
	Kind   string    `json:"kind"`
	Help   string    `json:"help,omitempty"`
	Bounds []float64 `json:"bounds,omitempty"` // histogram upper bounds
}

// metric is the internal read interface every registered metric satisfies.
type metric interface {
	info() Info
	read() Value
}

// Registry is an ordered, named set of metrics. Registration order is the
// export order, so snapshots are deterministic. Registration and Snapshot
// are safe for concurrent use; owned metrics are additionally safe to
// update concurrently with Snapshot.
type Registry struct {
	mu     sync.Mutex
	byName map[string]struct{}
	order  []metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]struct{})}
}

// register panics on duplicate or empty names: metric identity is the
// export contract, so a collision is always a programming error.
func (r *Registry) register(name string, m metric) {
	if name == "" {
		panic("metrics: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	r.byName[name] = struct{}{}
	r.order = append(r.order, m)
}

// NewCounter registers and returns an owned monotonic counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// NewGauge registers and returns an owned gauge (initially 0).
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(name, g)
	return g
}

// NewHistogram registers and returns an owned fixed-bucket histogram.
// bounds are the inclusive upper bounds of the buckets, ascending; one
// extra overflow bucket is added past the last bound.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bound", name))
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
	}
	h := &Histogram{
		name:    name,
		help:    help,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	r.register(name, h)
	return h
}

// CounterFunc registers a counter view over fn. The closure is invoked
// during Snapshot only; it must be cheap and must not block.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, counterFunc{name: name, help: help, fn: fn})
}

// GaugeFunc registers a gauge view over fn. A NaN or infinite return
// exports as an undefined (absent) value.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, gaugeFunc{name: name, help: help, fn: fn})
}

// HistogramFunc registers a histogram view over fn; the returned Buckets
// must have len(bounds)+1 entries (the last being overflow).
func (r *Registry) HistogramFunc(name, help string, bounds []float64, fn func() HistogramValue) {
	r.register(name, histogramFunc{name: name, help: help, bounds: append([]float64(nil), bounds...), fn: fn})
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}

// Schema describes every registered metric in registration order.
func (r *Registry) Schema() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, len(r.order))
	for i, m := range r.order {
		out[i] = m.info()
	}
	return out
}

// Snapshot reads every metric in registration order. The result is a
// self-contained copy: later metric updates never mutate it.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Values: make([]Value, len(r.order))}
	for i, m := range r.order {
		s.Values[i] = m.read()
	}
	return s
}

// Snapshot is one point-in-time reading of a whole registry.
type Snapshot struct {
	Values []Value `json:"values"`
}

// Get returns the named value.
func (s Snapshot) Get(name string) (Value, bool) {
	for _, v := range s.Values {
		if v.Name == name {
			return v, true
		}
	}
	return Value{}, false
}

// Counter returns the named counter's value (0 when absent).
func (s Snapshot) Counter(name string) uint64 {
	v, _ := s.Get(name)
	return v.Count
}

// Gauge returns the named gauge's value and whether it is defined.
func (s Snapshot) Gauge(name string) (float64, bool) {
	v, ok := s.Get(name)
	if !ok || v.Value == nil {
		return 0, false
	}
	return *v.Value, true
}

// ---- owned metrics ----

// Counter is a monotonically increasing owned counter.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) info() Info { return Info{Name: c.name, Kind: KindCounter.String(), Help: c.help} }
func (c *Counter) read() Value {
	return Value{Name: c.name, Kind: KindCounter.String(), Count: c.v.Load()}
}

// Gauge is an owned instantaneous value. Setting NaN (or ±Inf) marks the
// gauge undefined; it then exports as an absent value.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) info() Info { return Info{Name: g.name, Kind: KindGauge.String(), Help: g.help} }
func (g *Gauge) read() Value {
	return gaugeValue(g.name, g.Value())
}

// gaugeValue builds a gauge Value, mapping NaN/Inf to "undefined".
func gaugeValue(name string, v float64) Value {
	out := Value{Name: name, Kind: KindGauge.String()}
	if !math.IsNaN(v) && !math.IsInf(v, 0) {
		out.Value = &v
	}
	return out
}

// Histogram is an owned fixed-bucket histogram. Its exported Count is
// always the sum of its bucket counts (the registry's structural
// invariant), so concurrent snapshots are internally consistent.
type Histogram struct {
	name, help string
	bounds     []float64
	buckets    []atomic.Uint64
	sumBits    atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of samples (sum of bucket counts).
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) info() Info {
	return Info{Name: h.name, Kind: KindHistogram.String(), Help: h.help, Bounds: append([]float64(nil), h.bounds...)}
}

func (h *Histogram) read() Value {
	buckets := make([]uint64, len(h.buckets))
	var n uint64
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
		n += buckets[i]
	}
	return Value{Name: h.name, Kind: KindHistogram.String(), Count: n, Sum: h.Sum(), Buckets: buckets}
}

// ---- view metrics ----

type counterFunc struct {
	name, help string
	fn         func() uint64
}

func (c counterFunc) info() Info { return Info{Name: c.name, Kind: KindCounter.String(), Help: c.help} }
func (c counterFunc) read() Value {
	return Value{Name: c.name, Kind: KindCounter.String(), Count: c.fn()}
}

type gaugeFunc struct {
	name, help string
	fn         func() float64
}

func (g gaugeFunc) info() Info  { return Info{Name: g.name, Kind: KindGauge.String(), Help: g.help} }
func (g gaugeFunc) read() Value { return gaugeValue(g.name, g.fn()) }

type histogramFunc struct {
	name, help string
	bounds     []float64
	fn         func() HistogramValue
}

func (h histogramFunc) info() Info {
	return Info{Name: h.name, Kind: KindHistogram.String(), Help: h.help, Bounds: append([]float64(nil), h.bounds...)}
}

func (h histogramFunc) read() Value {
	hv := h.fn()
	return Value{Name: h.name, Kind: KindHistogram.String(), Count: hv.Count, Sum: hv.Sum, Buckets: hv.Buckets}
}
