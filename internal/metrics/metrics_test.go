package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("ops", "operations")
	g := r.NewGauge("depth", "queue depth")
	h := r.NewHistogram("lat", "latency", []float64{1, 2, 4})

	c.Add(3)
	c.Inc()
	g.Set(2.5)
	for _, v := range []float64{0.5, 1, 1.5, 4, 100} {
		h.Observe(v)
	}

	s := r.Snapshot()
	if got := s.Counter("ops"); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if v, ok := s.Gauge("depth"); !ok || v != 2.5 {
		t.Errorf("gauge = %v,%v, want 2.5,true", v, ok)
	}
	hv, ok := s.Get("lat")
	if !ok || hv.Count != 5 {
		t.Fatalf("histogram count = %d, want 5", hv.Count)
	}
	if hv.Sum != 107 {
		t.Errorf("histogram sum = %g, want 107", hv.Sum)
	}
	// Bucket semantics: first bound >= v. 0.5,1 -> le=1; 1.5 -> le=2;
	// 4 -> le=4; 100 -> overflow.
	want := []uint64{2, 1, 1, 1}
	for i, b := range hv.Buckets {
		if b != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, b, want[i])
		}
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "")
	c.Inc()
	s := r.Snapshot()
	c.Add(100)
	if s.Counter("c") != 1 {
		t.Error("snapshot mutated by later counter updates")
	}
}

func TestRegistryOrderAndSchema(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("b", "second")
	r.NewGauge("a", "first")
	r.HistogramFunc("c", "third", []float64{1}, func() HistogramValue {
		return HistogramValue{Buckets: []uint64{0, 0}}
	})
	var names []string
	for _, in := range r.Schema() {
		names = append(names, in.Name)
	}
	// Registration order, not lexical order.
	if got := strings.Join(names, ","); got != "b,a,c" {
		t.Errorf("schema order = %s, want b,a,c", got)
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.NewGauge("x", "")
}

func TestFuncViews(t *testing.T) {
	var backing uint64 = 7
	ratio := math.NaN()
	r := NewRegistry()
	r.CounterFunc("v", "view", func() uint64 { return backing })
	r.GaugeFunc("ratio", "maybe undefined", func() float64 { return ratio })

	s := r.Snapshot()
	if s.Counter("v") != 7 {
		t.Errorf("counter view = %d, want 7", s.Counter("v"))
	}
	if _, ok := s.Gauge("ratio"); ok {
		t.Error("NaN gauge reported as defined")
	}
	backing, ratio = 9, 0
	s = r.Snapshot()
	if s.Counter("v") != 9 {
		t.Errorf("counter view after update = %d, want 9", s.Counter("v"))
	}
	if v, ok := s.Gauge("ratio"); !ok || v != 0 {
		t.Errorf("zero gauge = %v,%v, want 0,true — 0 must stay distinguishable from undefined", v, ok)
	}
}

// TestUndefinedGaugeJSON locks the NaN-or-ok export contract: an
// undefined gauge omits its value in JSON while a genuine zero keeps it.
func TestUndefinedGaugeJSON(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("undef", "", func() float64 { return math.NaN() })
	r.GaugeFunc("zero", "", func() float64 { return 0 })
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Values []map[string]interface{} `json:"values"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatal(err)
	}
	for _, v := range parsed.Values {
		_, has := v["value"]
		switch v["name"] {
		case "undef":
			if has {
				t.Errorf("undefined gauge exported a value: %v", v["value"])
			}
		case "zero":
			if !has || v["value"].(float64) != 0 {
				t.Errorf("zero gauge lost its value: %v", v)
			}
		}
	}
}

func TestSeriesTick(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("n", "")
	s := NewSeries(r, 100)

	if s.Tick(50, 10) {
		t.Error("sampled before the first epoch boundary")
	}
	c.Inc()
	if !s.Tick(100, 20) {
		t.Error("did not sample at the epoch boundary")
	}
	// A jump across several epochs records one sample and advances past.
	c.Inc()
	if !s.Tick(350, 70) {
		t.Error("did not sample after a multi-epoch jump")
	}
	if s.Tick(399, 80) {
		t.Error("sampled again before the next boundary (400)")
	}
	d := s.Data()
	if d.EveryInstr != 100 || len(d.Samples) != 2 {
		t.Fatalf("series = every %d, %d samples; want 100, 2", d.EveryInstr, len(d.Samples))
	}
	if d.Samples[0].Epoch != 0 || d.Samples[1].Epoch != 1 {
		t.Error("epochs not consecutive from 0")
	}
	if d.Samples[0].Instructions != 100 || d.Samples[1].Instructions != 350 {
		t.Errorf("sample clocks = %d,%d, want 100,350",
			d.Samples[0].Instructions, d.Samples[1].Instructions)
	}
	if got := (Snapshot{Values: d.Samples[1].Values}).Counter("n"); got != 2 {
		t.Errorf("sample 1 counter = %d, want 2", got)
	}

	// A nil series is a valid no-op sampler.
	var nilSeries *Series
	if nilSeries.Tick(1000, 1) || nilSeries.Len() != 0 {
		t.Error("nil series not a no-op")
	}
}

func TestExportCSV(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("c", "").Add(5)
	r.GaugeFunc("undef", "", func() float64 { return math.NaN() })
	h := r.NewHistogram("h", "", []float64{2, 4})
	h.Observe(1)
	h.Observe(3)

	ex := &Export{Runs: []Run{{
		Config: "cfg", Workload: "wl", Instructions: 10, Cycles: 20,
		Metrics: &RunMetrics{Final: r.Snapshot()},
	}}}
	var buf bytes.Buffer
	if err := ex.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 metrics
		t.Fatalf("got %d CSV lines, want 4:\n%s", len(lines), buf.String())
	}
	if lines[0] != strings.Join(csvHeader, ",") {
		t.Errorf("header = %s", lines[0])
	}
	if !strings.Contains(lines[1], "c,counter,,5,,") {
		t.Errorf("counter row = %s", lines[1])
	}
	// Undefined gauge exports an empty value cell, not 0.
	if !strings.Contains(lines[2], "undef,gauge,,,,") {
		t.Errorf("undefined gauge row = %s", lines[2])
	}
	if !strings.Contains(lines[3], "h,histogram,,2,4,1;1;0") {
		t.Errorf("histogram row = %s", lines[3])
	}
}

func TestExportJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("c", "").Add(1)
	man := NewManifest("test", map[string]int{"scale": 256}, 7)
	man.Finish()
	ex := &Export{Manifest: man, Runs: []Run{{Config: "a", Workload: "b",
		Metrics: &RunMetrics{Final: r.Snapshot()}}}}

	var buf bytes.Buffer
	if err := ex.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Export
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Manifest == nil || back.Manifest.Tool != "test" || back.Manifest.Seed != 7 {
		t.Errorf("manifest did not round-trip: %+v", back.Manifest)
	}
	if back.Manifest.GitDescribe == "" || back.Manifest.GoVersion == "" {
		t.Error("manifest missing provenance fields")
	}
	if len(back.Runs) != 1 || back.Runs[0].Metrics.Final.Counter("c") != 1 {
		t.Error("runs did not round-trip")
	}
}

func TestPowerOfTwoBounds(t *testing.T) {
	b := PowerOfTwoBounds(3)
	want := []float64{2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", b, want)
		}
	}
}
