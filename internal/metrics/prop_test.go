package metrics

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentAddSnapshot is the registry's concurrency property test,
// meant to run under -race: writers hammer owned metrics while a reader
// snapshots continuously. Counters and histogram sample counts must be
// monotone across successive snapshots, and the final totals exact.
func TestConcurrentAddSnapshot(t *testing.T) {
	const (
		workers   = 8
		perWorker = 20_000
	)
	r := NewRegistry()
	c := r.NewCounter("ops", "")
	g := r.NewGauge("level", "")
	h := r.NewHistogram("lat", "", []float64{1, 2, 4, 8, 16})

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		var prevOps, prevLat uint64
		for {
			s := r.Snapshot()
			ops := s.Counter("ops")
			lat, _ := s.Get("lat")
			if ops < prevOps {
				t.Errorf("counter went backwards: %d -> %d", prevOps, ops)
				return
			}
			if lat.Count < prevLat {
				t.Errorf("histogram count went backwards: %d -> %d", prevLat, lat.Count)
				return
			}
			// Structural invariant under concurrency: the exported count
			// is the sum of the exported buckets, by construction.
			var sum uint64
			for _, b := range lat.Buckets {
				sum += b
			}
			if sum != lat.Count {
				t.Errorf("histogram count %d != bucket sum %d", lat.Count, sum)
				return
			}
			prevOps, prevLat = ops, lat.Count
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(rng.Float64() * 20)
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	s := r.Snapshot()
	if got := s.Counter("ops"); got != workers*perWorker {
		t.Errorf("final counter = %d, want %d", got, workers*perWorker)
	}
	lat, _ := s.Get("lat")
	if lat.Count != workers*perWorker {
		t.Errorf("final histogram count = %d, want %d", lat.Count, workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Errorf("Histogram.Count = %d, want %d", h.Count(), workers*perWorker)
	}
}

// TestHistogramBucketInvariant drives a histogram with seeded random
// observations and checks, quiescently, that every sample landed in
// exactly one bucket and the sum matches.
func TestHistogramBucketInvariant(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{0.5, 1, 5, 25, 125}
	h := r.NewHistogram("x", "", bounds)
	rng := rand.New(rand.NewSource(42))

	const n = 50_000
	var wantSum float64
	for i := 0; i < n; i++ {
		v := rng.ExpFloat64() * 10
		wantSum += v
		h.Observe(v)
	}
	v, _ := r.Snapshot().Get("x")
	if v.Count != n {
		t.Errorf("count = %d, want %d", v.Count, n)
	}
	var bucketSum uint64
	for _, b := range v.Buckets {
		bucketSum += b
	}
	if bucketSum != n {
		t.Errorf("bucket sum = %d, want %d (every sample in exactly one bucket)", bucketSum, n)
	}
	if len(v.Buckets) != len(bounds)+1 {
		t.Errorf("bucket count = %d, want %d", len(v.Buckets), len(bounds)+1)
	}
	if diff := v.Sum - wantSum; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("sum = %g, want %g", v.Sum, wantSum)
	}

	// Boundary placement: a value equal to a bound lands in that bound's
	// bucket (bounds are inclusive upper bounds).
	r2 := NewRegistry()
	h2 := r2.NewHistogram("b", "", []float64{1, 2})
	h2.Observe(1)
	h2.Observe(2)
	h2.Observe(2.0001)
	v2, _ := r2.Snapshot().Get("b")
	want := []uint64{1, 1, 1}
	for i := range want {
		if v2.Buckets[i] != want[i] {
			t.Errorf("boundary buckets = %v, want %v", v2.Buckets, want)
			break
		}
	}
}
