package metrics

// Epoch time-series sampling: the simulator calls Tick with its running
// instruction and cycle counts, and the series snapshots the whole
// registry each time another epoch's worth of instructions has retired.
// Sampling is passive — it observes component statistics but never feeds
// back into simulated timing — so enabling a series cannot change any
// simulated result.

// Sample is one epoch snapshot.
type Sample struct {
	// Epoch is the 0-based index of the sample within its series.
	Epoch int `json:"epoch"`
	// Instructions and Cycles are the simulator clocks at the sampling
	// instant (measured-window instruction total and elapsed core cycles).
	Instructions int64 `json:"instructions"`
	Cycles       int64 `json:"cycles"`

	Values []Value `json:"values"`
}

// Series accumulates epoch samples of one registry. A nil *Series is a
// valid no-op sampler, so callers can thread an optional series without
// branching.
type Series struct {
	reg     *Registry
	every   int64
	next    int64
	samples []Sample
}

// NewSeries builds a sampler over reg that records a snapshot each time
// Tick observes the instruction clock crossing another everyInstr
// instructions. everyInstr must be positive.
func NewSeries(reg *Registry, everyInstr int64) *Series {
	if everyInstr <= 0 {
		panic("metrics: series epoch must be positive")
	}
	return &Series{reg: reg, every: everyInstr, next: everyInstr}
}

// Tick offers the current clocks to the sampler and reports whether a
// sample was recorded. When the instruction clock jumps several epochs
// between ticks, one sample is recorded and the threshold advances past
// instr — epochs are sampling opportunities, not a backfill obligation.
func (s *Series) Tick(instr, cycles int64) bool {
	if s == nil || instr < s.next {
		return false
	}
	s.samples = append(s.samples, Sample{
		Epoch:        len(s.samples),
		Instructions: instr,
		Cycles:       cycles,
		Values:       s.reg.Snapshot().Values,
	})
	for s.next <= instr {
		s.next += s.every
	}
	return true
}

// Len returns the number of recorded samples.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.samples)
}

// SeriesData is the exportable form of a series.
type SeriesData struct {
	EveryInstr int64    `json:"every_instr"`
	Samples    []Sample `json:"samples"`
	// Phase labels the samples in the CSV export's phase column; empty
	// means "epoch" (the registry-ticked time series). Interval-sampled
	// runs set "interval": one synthesized sample per committed sampling
	// interval.
	Phase string `json:"phase,omitempty"`
}

// Data returns the exportable form (nil receiver yields a zero value).
func (s *Series) Data() SeriesData {
	if s == nil {
		return SeriesData{}
	}
	return SeriesData{EveryInstr: s.every, Samples: s.samples}
}
