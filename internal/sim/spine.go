package sim

import (
	"fmt"
	"time"

	"accord/internal/ckpt"
)

// Spine checkpoint lattice (DESIGN.md §14): RunSampled memoizes the
// functional fast-forward by persisting the spine's boundary snapshots
// into a ckpt.Lattice and probing it on later runs. A hit replaces the
// functional advance to that boundary with a restore; a fully-populated
// lattice reduces the spine to lattice lookups, so a warm re-run is
// bounded by the detailed windows on the worker pool instead of the
// sequential spine (§12.3's Amdahl term).
//
// The lattice is keyed by SpineFingerprint — warm-fingerprint fields
// plus the interval geometry — so it is shared by every run that walks
// the same functional trajectory and unreachable by any run that does
// not: measurement-only knobs (MeasureInstr, TargetCI, SampleWorkers,
// the engine toggle) are deliberately excluded, while a geometry change
// moves every key (a stale lattice misses; it can never restore wrong
// state). Saves run on a background writer goroutine overlapped with
// worker execution, so populating the lattice costs a cold run almost
// no wall-clock.

// spineLatticeVersion versions the spine keying protocol itself (what
// the fingerprint covers, how offsets are computed). Bump it alongside
// incompatible driver changes; SnapshotSchema already covers payload
// encoding changes through WarmFingerprint.
const spineLatticeVersion = 1

// spineSaveGranule is the disk granule automatic stride sizing targets:
// with SpineStride 0, the stride is chosen so roughly one granule of
// snapshot bytes is saved per period, keeping lattice cost ~100 KB-
// granular whether boundaries serialize to 10 KB or 10 MB.
const spineSaveGranule = 128 << 10

// SpineFingerprint extends WarmFingerprint with everything else that
// determines the functional state at interval boundary k: the interval
// geometry (Period/WarmLen/DetailLen fix both the boundary positions
// and the multi-core advance-target sequence), the functional
// interleaving quantum, and the spine protocol version. Measurement
// knobs stay excluded so one lattice serves any MeasureInstr, TargetCI,
// SampleWorkers, or engine setting.
func (s *System) SpineFingerprint(wlName string) string {
	sc := s.cfg.Sampling
	return fmt.Sprintf("%s|spine=v%d|period=%d|warmlen=%d|detaillen=%d|quantum=%d",
		s.WarmFingerprint(wlName), spineLatticeVersion,
		sc.Period, sc.WarmLen, sc.DetailLen, funcRoundQuantum)
}

// SpineKey returns the content-addressed store key of interval boundary
// k's snapshot — SHA-256 over the spine fingerprint, the interval
// number, and the boundary's nominal instruction offset.
func (s *System) SpineKey(wlName string, interval int) string {
	return ckpt.LatticeEntryKey(s.SpineFingerprint(wlName), interval, s.spineOffset(interval))
}

// spineOffset is boundary k's nominal per-core instruction offset:
// warmup, then the first functional leg, then k full periods. Actual
// core positions may overshoot each target by a fraction of an event's
// instruction gap; the offset is keying material (a pure function of
// the geometry), and the exact positions live inside the snapshot.
func (s *System) spineOffset(interval int) int64 {
	sc := s.cfg.Sampling
	warm := s.adaptiveBudget(warmFactor, s.cfg.WarmupInstr)
	return warm + (sc.Period - sc.WarmLen - sc.DetailLen) + int64(interval)*sc.Period
}

// validFunctionalSnapshot reports whether blob carries a well-framed
// functional snapshot for fingerprint fp: CRC frame, magic, schema, and
// the embedded fingerprint. This is the probe-side gate that makes the
// lattice restore paths safe to run against live systems: every
// adversarial failure mode (truncation, corruption, stale schema, wrong
// config) is rejected here and degrades to a cold miss. A blob that
// passes was produced by FunctionalSnapshot on an identically
// fingerprinted system — the fingerprint covers everything that shapes
// the payload — so a subsequent restore failure is a forged-CRC
// scenario and treated as a programming-error panic, exactly like the
// post-forkability-trial snapshot panics.
func validFunctionalSnapshot(blob []byte, fp string) bool {
	d, err := ckpt.NewDecoderChecked(blob)
	if err != nil {
		return false
	}
	if string(d.Raw(len(snapshotMagic))) != snapshotMagic {
		return false
	}
	if d.U32() != SnapshotSchema {
		return false
	}
	if d.String() != fp {
		return false
	}
	return d.Err() == nil
}

// spineSaveReq is one boundary snapshot queued for the background writer.
type spineSaveReq struct {
	interval int
	offset   int64
	blob     []byte
}

// spineLattice is RunSampled's handle on the lattice: probe/save logic,
// stride resolution, hit/miss accounting, and the background writer.
// Probes and saves happen on the spine (one goroutine); only the writer
// runs concurrently, and it exclusively owns the store I/O.
type spineLattice struct {
	lat    *ckpt.Lattice
	warmFP string
	// base and period reproduce spineOffset without touching the live
	// system: base is boundary 0's nominal offset (warmup plus the first
	// functional leg).
	base   int64
	period int64
	// stride saves every stride-th boundary. Config.SpineStride > 0 is
	// explicit; 0 resolves automatically from the first snapshot's size
	// (ceil(len/spineSaveGranule)) so huge full-scale blobs thin out and
	// small test blobs save densely.
	stride int

	hits   int
	misses int

	saves  chan spineSaveReq
	done   chan struct{}
	saveNS int64 // written by the writer; read after close()
}

// openSpineLattice opens the configured lattice for a sampled run, or
// returns nil (lattice disabled) when no directory is configured or the
// store cannot be opened — an unusable store degrades to a plain cold
// run, never an error.
func (s *System) openSpineLattice(wlName string) *spineLattice {
	if s.cfg.SpineCheckpointDir == "" {
		return nil
	}
	store, err := ckpt.Open(s.cfg.SpineCheckpointDir)
	if err != nil {
		return nil
	}
	sl := &spineLattice{
		lat:    ckpt.NewLattice(store, s.SpineFingerprint(wlName)),
		warmFP: s.WarmFingerprint(wlName),
		base:   s.spineOffset(0),
		period: s.cfg.Sampling.Period,
		stride: s.cfg.SpineStride,
		saves:  make(chan spineSaveReq, 4),
		done:   make(chan struct{}),
	}
	go sl.writer()
	return sl
}

// probe looks boundary k up, returning its validated snapshot on a hit.
// Every store- or codec-level failure is a miss. A nil receiver (lattice
// disabled) always misses without counting, so the drivers call it
// unconditionally.
func (sl *spineLattice) probe(interval int) ([]byte, bool) {
	if sl == nil {
		return nil, false
	}
	payload, ok := sl.lat.Probe(interval, sl.offsetOf(interval))
	if ok && validFunctionalSnapshot(payload, sl.warmFP) {
		sl.resolveStride(len(payload))
		sl.hits++
		return payload, true
	}
	sl.misses++
	return nil, false
}

// wantSave reports whether boundary k should be persisted (false on a
// nil receiver). Before the stride is resolved (auto mode, nothing
// probed or saved yet — only possible at k = 0) every boundary
// qualifies, since 0 mod anything is 0.
func (sl *spineLattice) wantSave(interval int) bool {
	if sl == nil {
		return false
	}
	if sl.stride <= 0 {
		return true
	}
	return interval%sl.stride == 0
}

// resolveStride fixes the automatic stride from the first observed
// snapshot size.
func (sl *spineLattice) resolveStride(blobLen int) {
	if sl.stride > 0 {
		return
	}
	sl.stride = (blobLen + spineSaveGranule - 1) / spineSaveGranule
	if sl.stride < 1 {
		sl.stride = 1
	}
}

// saveAsync queues boundary k's snapshot for the background writer when
// the stride selects it. The blob is immutable once serialized (workers
// and the committer only read it), so the writer can share it. A full
// queue blocks the spine briefly rather than dropping entries — the
// queue depth bounds memory, and saves are far cheaper than the
// periods that produce them.
func (sl *spineLattice) saveAsync(interval int, blob []byte) {
	if sl == nil {
		return
	}
	sl.resolveStride(len(blob))
	if interval%sl.stride != 0 {
		return
	}
	sl.saves <- spineSaveReq{interval: interval, offset: sl.offsetOf(interval), blob: blob}
}

// offsetOf mirrors System.spineOffset using the captured geometry (the
// writer must not touch the live system).
func (sl *spineLattice) offsetOf(interval int) int64 {
	return sl.base + int64(interval)*sl.period
}

// writer drains the save queue, persisting each boundary best-effort: a
// full disk or read-only store loses memoization, never the run.
// Entries go down individually (SaveEntry); the index digest chain is
// written once after the queue closes, so a run saving N boundaries
// pays N+1 store writes instead of 2N.
func (sl *spineLattice) writer() {
	defer close(sl.done)
	saved := false
	for req := range sl.saves {
		t0 := time.Now()
		if sl.lat.SaveEntry(req.interval, req.offset, req.blob) == nil {
			saved = true
		}
		sl.saveNS += int64(time.Since(t0))
	}
	if saved {
		t0 := time.Now()
		_ = sl.lat.FlushIndex()
		sl.saveNS += int64(time.Since(t0))
	}
}

// close flushes and joins the background writer. The channel close
// happens-before the writer's done signal, so reading saveNS afterwards
// is race-free.
func (sl *spineLattice) close() {
	close(sl.saves)
	<-sl.done
}
