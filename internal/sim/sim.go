// Package sim wires the full system of Table III — 16 cores, virtual
// memory, a gigascale DRAM cache in stacked DRAM, and PCM-like main
// memory — and runs workloads through it, producing the hit-rate,
// way-prediction, bandwidth, and weighted-speedup numbers the paper's
// tables and figures report.
package sim

import (
	"errors"
	"fmt"
	"math"

	"accord/internal/cache"
	"accord/internal/core"
	"accord/internal/cpu"
	"accord/internal/dram"
	"accord/internal/dramcache"
	"accord/internal/memtypes"
	"accord/internal/metrics"
	"accord/internal/vm"
	"accord/internal/workloads"
)

// PolicyFactory builds a way policy for a given cache geometry.
type PolicyFactory func(geom core.Geometry, seed int64) core.Policy

// Config describes one system configuration to simulate.
type Config struct {
	Name string

	Cores      int
	IssueWidth int
	MSHRs      int
	CPUGHz     float64
	SRAMLat    int64

	// Scale divides the full-size capacities (L4, NVM, workload
	// footprints follow automatically since they are cache-relative).
	// Scale 1 simulates the paper's actual 4 GB configuration.
	Scale int64

	// L4CapacityFull is the unscaled DRAM cache capacity (default 4 GB).
	L4CapacityFull int64
	Ways           int
	Lookup         dramcache.Lookup
	LRUReplacement bool
	// UseCA replaces the set-associative organization with the
	// column-associative baseline (Ways/Lookup/Policy are then ignored).
	// It predates Backend and is equivalent to Backend = "ca".
	UseCA bool
	// Backend selects the L4 organization by registry name ("nway", "ca",
	// "banshee", "gemini", "tdram", or any externally registered backend).
	// Empty means the legacy selection: "ca" when UseCA is set, "nway"
	// otherwise. Ways/Lookup/LRUReplacement/Policy apply only to backends
	// that use them.
	Backend string

	// FullHierarchy models the on-chip SRAM levels explicitly: workload
	// events traverse per-core L1/L2 and a shared L3 (with DCP+way bits)
	// before reaching the DRAM cache, and L3 dirty evictions become the
	// L4 writebacks. The default (false) drives the L4 with post-L3 miss
	// streams directly, which is what the Table IV MPKI calibration
	// describes; full-hierarchy mode exercises the complete substrate.
	FullHierarchy bool
	// Policy builds the way-steering/prediction policy; defaults to the
	// unbiased random policy when nil.
	Policy PolicyFactory

	// NVMCapacityFull is the unscaled main memory capacity (default 128 GB).
	NVMCapacityFull int64

	// WorkloadAnchorLines, when nonzero, anchors workload footprints to a
	// fixed line count instead of the configured cache size — used by the
	// cache-size sensitivity study (Table VIII), where the workload must
	// stay constant while the cache grows.
	WorkloadAnchorLines uint64

	HBM dram.Config
	PCM dram.Config

	// WarmupInstr and MeasureInstr are per-core instruction budgets. By
	// default they are lower bounds: windows grow adaptively so low-MPKI
	// workloads still generate enough cache traffic (see adaptiveBudget).
	WarmupInstr  int64
	MeasureInstr int64

	// DisableAdaptiveBudgets uses WarmupInstr/MeasureInstr exactly as
	// given. Intended for full-scale (Scale=1) demonstrations where the
	// adaptive window would be prohibitively long.
	DisableAdaptiveBudgets bool

	// EpochInstr, when positive, samples every registered metric each
	// time the measured window retires another EpochInstr instructions
	// (summed across cores), building the per-epoch time series exported
	// through Result.Metrics. Zero records only the final snapshot.
	// Sampling is passive — it observes component statistics but never
	// feeds back into simulated timing — so it cannot change any result
	// the tables report.
	EpochInstr int64

	// Sampling, when enabled (Period > 0), switches Run to SMARTS-style
	// interval sampling: functional fast-forward through most of the
	// measured phase with short detailed windows, reporting means with
	// Student-t confidence intervals (see sampling.go and DESIGN.md §9).
	// Requires DisableAdaptiveBudgets and excludes EpochInstr.
	Sampling SamplingConfig

	// SampleWorkers bounds how many detailed sampling windows run
	// concurrently in a sampled run (see DESIGN.md §12): a single spine
	// goroutine fast-forwards functionally and forks each interval's
	// detailed re-warm + measured window onto a worker pool. Zero selects
	// GOMAXPROCS; 1 forces the sequential driver. Results are identical
	// at every setting by construction — observations, SampleSummary, and
	// exported metrics are byte-for-byte the same — so this field only
	// changes wall-clock time and is excluded from memo keys and warm
	// fingerprints. Ignored for exact (non-sampled) runs.
	SampleWorkers int

	// SpineCheckpointDir, when non-empty, memoizes the sampled run's
	// functional spine through an on-disk checkpoint lattice (DESIGN.md
	// §14): boundary snapshots are persisted in the background on a cold
	// run and restored instead of re-simulated on later runs with the
	// same warm fingerprint and interval geometry. Like SampleWorkers it
	// is pure execution strategy — results are byte-identical with the
	// lattice on, off, cold, or warm — so it is excluded from memo keys
	// and warm fingerprints. Ignored for exact (non-sampled) runs.
	SpineCheckpointDir string
	// SpineStride saves every SpineStride-th interval boundary into the
	// lattice. Zero (the default) sizes the stride automatically from the
	// first snapshot's size so roughly one ~128 KiB granule is written
	// per period whatever the blob size; 1 saves every boundary.
	SpineStride int

	Seed int64
}

// Default returns the Table III baseline: a 16-core 3 GHz system with a
// 4 GB direct-mapped DRAM cache (scaled by 1/256 for simulation speed)
// and 128 GB of PCM.
func Default() Config {
	return Config{
		Name:            "direct-mapped",
		Cores:           16,
		IssueWidth:      2,
		MSHRs:           12,
		CPUGHz:          3.0,
		SRAMLat:         51,
		Scale:           256,
		L4CapacityFull:  4 << 30,
		Ways:            1,
		Lookup:          dramcache.LookupPredicted,
		NVMCapacityFull: 128 << 30,
		HBM:             dram.HBM(),
		PCM:             dram.PCM(),
		WarmupInstr:     4_000_000,
		MeasureInstr:    4_000_000,
		Seed:            1,
	}
}

// BackendName resolves the effective L4 backend: the explicit Backend
// field, or the legacy UseCA switch, defaulting to "nway".
func (c Config) BackendName() string {
	if c.Backend != "" {
		return c.Backend
	}
	if c.UseCA {
		return "ca"
	}
	return "nway"
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.Cores < 1:
		return fmt.Errorf("sim: cores %d must be >= 1", c.Cores)
	case c.Scale < 1:
		return fmt.Errorf("sim: scale %d must be >= 1", c.Scale)
	case c.L4CapacityFull <= 0 || c.NVMCapacityFull <= 0:
		return errors.New("sim: capacities must be positive")
	case c.CPUGHz <= 0:
		return fmt.Errorf("sim: CPU clock %v must be positive", c.CPUGHz)
	case c.Backend != "" && !dramcache.HasBackend(c.Backend):
		return fmt.Errorf("sim: unknown L4 backend %q (have %v)", c.Backend, dramcache.BackendNames())
	case c.Backend != "" && c.Backend != "ca" && c.UseCA:
		return fmt.Errorf("sim: Backend %q conflicts with UseCA", c.Backend)
	case c.Ways < 1 && (c.BackendName() == "nway" || c.BackendName() == "tdram"):
		return fmt.Errorf("sim: ways %d must be >= 1", c.Ways)
	case c.WarmupInstr < 0 || c.MeasureInstr <= 0:
		return errors.New("sim: instruction budgets invalid")
	case c.SampleWorkers < 0:
		return fmt.Errorf("sim: SampleWorkers %d must be >= 0 (0 = GOMAXPROCS)", c.SampleWorkers)
	case c.SpineStride < 0:
		return fmt.Errorf("sim: SpineStride %d must be >= 0 (0 = auto)", c.SpineStride)
	}
	return c.Sampling.validate(c)
}

// L4Capacity returns the scaled DRAM-cache capacity in bytes.
func (c Config) L4Capacity() int64 { return c.L4CapacityFull / c.Scale }

// L4Lines returns the scaled DRAM-cache capacity in lines.
func (c Config) L4Lines() uint64 { return uint64(c.L4Capacity() / memtypes.LineSize) }

// AnchorLines returns the line count workload footprints are sized
// against: the explicit anchor when configured (cache-size sweeps), the
// scaled cache size otherwise. Stream construction — both sim.New's and
// any external Workload.Source such as the trace cache — must use this
// value for identically configured runs to see identical streams.
func (c Config) AnchorLines() uint64 {
	if c.WorkloadAnchorLines != 0 {
		return c.WorkloadAnchorLines
	}
	return c.L4Lines()
}

// Result captures one simulation run.
type Result struct {
	Config   string
	Workload string

	IPC []float64 // per-core, over the measurement window

	L4  dramcache.Stats
	HBM dram.Stats
	PCM dram.Stats
	// L3 is populated only in full-hierarchy mode.
	L3 cache.Stats

	// Cycles is the longest per-core measurement window, i.e. the
	// wall-clock length of the measured phase.
	Cycles int64
	// Instructions is the total measured instruction count.
	Instructions int64
	// Events is the total number of memory events simulated across all
	// cores, warmup included — the numerator for simulator-throughput
	// (events/second) reporting.
	Events int64
	// InstructionsTotal is the total instructions retired across all
	// cores including warmup (Instructions covers only the measured
	// window), for instructions-per-wall-second reporting.
	InstructionsTotal int64

	// Metrics is the run's observability bundle: the final snapshot of
	// every metric the system's components registered, plus the
	// per-epoch time series when Config.EpochInstr was set (or the
	// per-interval series of a sampled run).
	Metrics *metrics.RunMetrics

	// Sampled is non-nil for interval-sampled runs: interval counts,
	// convergence, and the per-metric means with confidence intervals.
	Sampled *SampleSummary
}

// HitRate returns the demand-read hit rate of the run. For sampled runs
// this is the measured-window estimate (the raw L4 stats also include
// the unmeasured timing re-warm segments).
func (r Result) HitRate() float64 {
	if r.Sampled != nil && r.Sampled.HitRate.Valid() {
		return r.Sampled.HitRate.Mean
	}
	return r.L4.HitRate()
}

// Accuracy returns the way-prediction accuracy of the run.
func (r Result) Accuracy() float64 { return r.L4.PredictionAccuracy() }

// MeanIPC returns the arithmetic mean of per-core IPCs.
func (r Result) MeanIPC() float64 {
	if len(r.IPC) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range r.IPC {
		sum += x
	}
	return sum / float64(len(r.IPC))
}

// WeightedSpeedup returns the paper's performance metric: the mean of
// per-core IPC ratios between a target run and its baseline (both must
// have run the same workload and seeds).
func WeightedSpeedup(target, baseline Result) float64 {
	if len(target.IPC) != len(baseline.IPC) || len(target.IPC) == 0 {
		return 0
	}
	sum := 0.0
	n := 0
	for i := range target.IPC {
		if baseline.IPC[i] > 0 {
			sum += target.IPC[i] / baseline.IPC[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// System is one assembled simulation instance. A System is not safe for
// concurrent use, but distinct Systems share no mutable state (workload
// presets are read-only), so independent simulations may run on separate
// goroutines — internal/exp's session scheduler relies on this.
type System struct {
	cfg   Config
	specs []workloads.Spec
	// wl retains the workload the system was assembled from so parallel
	// interval sampling can build fork systems (same config, same
	// workload) for its worker pool. Specs and Source are shared
	// read-only; per-core stream state is never shared between systems.
	wl    workloads.Workload
	cores []*cpu.Core
	l4    dramcache.Interface
	hbm   *dram.Device
	pcm   *dram.Device
	l3    *cache.Cache       // non-nil in full-hierarchy mode
	vmsys *vm.System         // retained for checkpointing
	hiers []*cache.Hierarchy // per-core L1/L2, full-hierarchy mode only

	// reg is the system's metrics registry: every component registers
	// its statistics into it at assembly time, and the final snapshot
	// (plus the optional epoch series) is exported through Result.
	reg *metrics.Registry
	// series is non-nil only during a measured window with EpochInstr
	// set; advanceUntil ticks it.
	series *metrics.Series
	// resIPC holds the per-core measured IPCs once the measurement
	// window closes, so the cpu.mean_ipc gauge's final snapshot matches
	// Result.MeanIPC exactly (mid-run samples use the live window IPC).
	resIPC []float64
	// sample holds the interval-sampling summary once a sampled run
	// completes; the sampling.* gauges read it (NaN/absent before).
	sample *SampleSummary
	// work records the sampled run's speculative-work and wall-clock
	// accounting. It is deliberately kept out of Result and the exported
	// metrics: dispatch/discard counts and timings depend on scheduling,
	// and sampled outputs must stay byte-identical at every worker count.
	work SampleWork

	// advanceUntil bookkeeping, reused across the warmup and measure
	// phases to keep the run loop allocation-free.
	finish []finishPoint
	done   []bool
	caps   []int64

	// Incremental window counters for epoch sampling: winInstr caches
	// each core's measured-window instruction count, winInstrSum their
	// total, and maxWinCycles the longest window so far (core time only
	// moves forward, so the max never needs recomputing). Maintained only
	// while series is non-nil; sampleTick reads them instead of rescanning
	// every core per step.
	winInstr     []int64
	winInstrSum  int64
	maxWinCycles int64
}

// memAdapter bridges the core's MemorySystem to the DRAM cache in the
// default (post-L3 stream) mode.
type memAdapter struct{ l4 dramcache.Interface }

func (m memAdapter) Read(at int64, line memtypes.LineAddr) int64 {
	return m.l4.AccessRead(at, line).Done
}

func (m memAdapter) Write(at int64, line memtypes.LineAddr) {
	m.l4.Writeback(at, line)
}

// hierAdapter routes one core's accesses through its SRAM hierarchy: L3
// misses reach the DRAM cache, fills record DCP+way state in the L3, and
// dirty L3 evictions become probe-free L4 writebacks.
type hierAdapter struct {
	h  *cache.Hierarchy
	l4 dramcache.Interface
}

func (m hierAdapter) Read(at int64, line memtypes.LineAddr) int64 {
	out := m.h.Access(line, false)
	m.sink(at+out.Latency, out.Writebacks)
	if out.Level < 4 {
		return at + out.Latency
	}
	rr := m.l4.AccessRead(at+out.Latency, line)
	wbs := m.h.FillFromBelow(line, false, cache.DCP{Present: true, Way: rr.Way})
	m.sink(rr.Done, wbs)
	return rr.Done
}

func (m hierAdapter) Write(at int64, line memtypes.LineAddr) {
	out := m.h.Access(line, true)
	m.sink(at+out.Latency, out.Writebacks)
	if out.Level < 4 {
		return
	}
	// Write miss: allocate through the DRAM cache, then dirty the line.
	rr := m.l4.AccessRead(at+out.Latency, line)
	wbs := m.h.FillFromBelow(line, true, cache.DCP{Present: true, Way: rr.Way})
	m.sink(rr.Done, wbs)
}

// sink forwards dirty L3 victims to the DRAM cache.
func (m hierAdapter) sink(at int64, wbs []cache.Writeback) {
	for _, wb := range wbs {
		m.l4.Writeback(at, wb.Line)
	}
}

// New assembles a system for one workload. It panics on invalid
// configurations (programming errors); unknown workloads surface earlier
// from the workloads package.
func New(cfg Config, wl workloads.Workload) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(wl.Specs) != cfg.Cores {
		panic(fmt.Sprintf("sim: workload %s has %d specs for %d cores", wl.Name, len(wl.Specs), cfg.Cores))
	}

	hbm := dram.New(cfg.HBM, cfg.CPUGHz)
	pcm := dram.New(cfg.PCM, cfg.CPUGHz)

	frames := uint64(cfg.NVMCapacityFull / cfg.Scale / memtypes.PageSize)

	// The L4 organization comes from the backend registry; Validate has
	// already vetted the name, so remaining failures are geometry errors —
	// programming errors at this layer, like the Validate panic above.
	spec, ok := dramcache.GetBackend(cfg.BackendName())
	if !ok {
		panic(fmt.Sprintf("sim: unknown L4 backend %q", cfg.BackendName()))
	}
	bcfg := dramcache.BackendConfig{
		CapacityBytes:  cfg.L4Capacity(),
		Ways:           cfg.Ways,
		Lookup:         cfg.Lookup,
		LRUReplacement: cfg.LRUReplacement,
		Seed:           cfg.Seed,
	}
	if spec.UsesPolicy {
		factory := cfg.Policy
		if factory == nil {
			factory = func(g core.Geometry, seed int64) core.Policy { return core.NewRand(g, seed) }
		}
		bcfg.Policy = factory(bcfg.Geometry(), cfg.Seed)
	}
	l4, err := spec.New(bcfg, dramcache.Deps{Dev: hbm, NVM: pcm, Frames: frames})
	if err != nil {
		panic(fmt.Sprintf("sim: building L4 backend %q: %v", cfg.BackendName(), err))
	}

	vmsys := vm.NewSystem(frames, vm.AllocRandom, cfg.Seed)

	s := &System{cfg: cfg, specs: wl.Specs, wl: wl, l4: l4, hbm: hbm, pcm: pcm, vmsys: vmsys}
	params := cpu.Params{IssueWidth: cfg.IssueWidth, MSHRs: cfg.MSHRs, SRAMLat: cfg.SRAMLat}
	var hiers []*cache.Hierarchy
	if cfg.FullHierarchy {
		hiers, s.l3 = cache.NewSharedHierarchies(cache.DefaultHierarchy(cfg.Scale), cfg.Cores)
		s.hiers = hiers
		// The SRAM path is now modeled structurally; only the L1 lookup
		// remains as a fixed cost on the issue path.
		params.SRAMLat = 0
	}
	anchor := cfg.AnchorLines()
	if wl.Streams != nil && len(wl.Streams) != cfg.Cores {
		panic(fmt.Sprintf("sim: workload %s has %d streams for %d cores", wl.Name, len(wl.Streams), cfg.Cores))
	}
	for i := 0; i < cfg.Cores; i++ {
		var stream workloads.Stream
		switch {
		case wl.Source != nil:
			stream = wl.Source(i)
		case wl.Streams != nil:
			stream = wl.Streams[i]
		default:
			stream = workloads.NewStream(wl.Specs[i], anchor, cfg.Cores, workloads.StreamSeed(cfg.Seed, i))
		}
		space := vmsys.NewSpace()
		mem := newMemAdapter(l4)
		if cfg.FullHierarchy {
			mem = hierAdapter{h: hiers[i], l4: l4}
		}
		s.cores = append(s.cores, cpu.New(i, params, stream, space.TranslateLine, mem))
	}
	s.reg = metrics.NewRegistry()
	s.registerMetrics()
	return s
}

// L4 exposes the cache for inspection.
func (s *System) L4() dramcache.Interface { return s.l4 }

// warmFactor and measureFactor size the adaptive instruction windows in
// units of "L4 accesses per cache line": warmup must touch the cache
// enough times to reach steady state, and the measurement window must be
// long enough for stable statistics, regardless of the workload's MPKI.
const (
	warmFactor    = 3.0
	measureFactor = 1.5
)

// adaptiveBudget converts an access budget (accesses ≈ factor * cache
// lines) into per-core instructions for this workload's average MPKI.
func (s *System) adaptiveBudget(factor float64, configured int64) int64 {
	if s.cfg.DisableAdaptiveBudgets {
		return configured
	}
	mpki := 0.0
	for _, spec := range s.specs {
		mpki += spec.MPKI
	}
	mpki /= float64(len(s.specs))
	instr := int64(factor * float64(s.cfg.L4Lines()) * 1000 / (mpki * float64(s.cfg.Cores)))
	if instr < configured {
		return configured
	}
	return instr
}

// Run executes warmup then the measurement window and returns the
// result. With Config.Sampling enabled it dispatches to the
// interval-sampling driver instead.
func (s *System) Run(wlName string) Result {
	if s.cfg.Sampling.Enabled() {
		return s.RunSampled(wlName)
	}
	s.RunWarmup()
	return s.RunMeasure(wlName)
}

// RunWarmup advances every core through the warmup phase and marks the
// warmup/measure boundary (stats reset, window marks). The system state
// at return is exactly what a warm-state checkpoint captures: calling
// RunMeasure afterwards — on this instance or on a fresh one restored
// from the snapshot — produces identical results.
func (s *System) RunWarmup() {
	// Warmup: advance every core far enough to warm the cache (low-MPKI
	// workloads need more instructions to generate the same traffic).
	warm := s.adaptiveBudget(warmFactor, s.cfg.WarmupInstr)
	targets := make([]int64, len(s.cores))
	for i := range targets {
		targets[i] = warm
	}
	s.advanceUntil(targets)
	s.l4.ResetStats()
	s.hbm.ResetStats()
	s.pcm.ResetStats()
	if s.l3 != nil {
		s.l3.ResetStats()
	}
	for _, c := range s.cores {
		c.MarkWindow()
	}
}

// RunMeasure executes the measurement window on a warmed system (warmed
// by RunWarmup or restored from a checkpoint) and returns the result.
func (s *System) RunMeasure(wlName string) Result {
	if s.cfg.EpochInstr > 0 {
		s.series = metrics.NewSeries(s.reg, s.cfg.EpochInstr)
		s.initWindowTrack()
	}

	// Measure: each core runs a full measurement budget past its own
	// warmup crossing (in a mix, fast cores may have run far ahead while
	// slow cores warmed up).
	measure := s.adaptiveBudget(measureFactor, s.cfg.MeasureInstr)
	targets := make([]int64, len(s.cores))
	for i, c := range s.cores {
		targets[i] = c.Instructions() + measure
	}
	finish := s.advanceUntil(targets)

	res := Result{
		Config:   s.cfg.Name,
		Workload: wlName,
		L4:       *s.l4.Stats(),
		HBM:      s.hbm.Stats(),
		PCM:      s.pcm.Stats(),
	}
	if s.l3 != nil {
		res.L3 = s.l3.Stats()
	}
	for i := range s.cores {
		cycles := finish[i].cycles
		instr := finish[i].instr
		if cycles > 0 {
			res.IPC = append(res.IPC, float64(instr)/float64(cycles))
		} else {
			res.IPC = append(res.IPC, 0)
		}
		if cycles > res.Cycles {
			res.Cycles = cycles
		}
		res.Instructions += instr
	}
	for _, c := range s.cores {
		reads, writes, _, _ := c.Counters()
		res.Events += int64(reads + writes)
		res.InstructionsTotal += c.Instructions()
	}
	// Final snapshot: taken after the measured IPCs are recorded so the
	// summary gauges agree with the Result fields to the last bit.
	s.resIPC = res.IPC
	rm := &metrics.RunMetrics{Final: s.reg.Snapshot()}
	if s.series != nil {
		data := s.series.Data()
		rm.Series = &data
	}
	res.Metrics = rm
	return res
}

type finishPoint struct {
	cycles int64 // window cycles at crossing
	instr  int64 // window instructions at crossing
}

// ensureRunBuffers lazily allocates the advance-loop scratch shared by
// advanceUntil and advanceFunctional, keeping repeated windows (epochs,
// sampling intervals) allocation-free.
func (s *System) ensureRunBuffers() {
	if s.finish == nil {
		n := len(s.cores)
		s.finish = make([]finishPoint, n)
		s.done = make([]bool, n)
		s.caps = make([]int64, n)
	}
}

// advanceUntil steps cores in global time order until every core i has
// retired at least targets[i] total instructions, recording each core's
// measurement window at its crossing point. Cores that finish early keep
// running (up to a bounded overshoot) so shared-resource contention stays
// realistic while slower cores are still being measured.
func (s *System) advanceUntil(targets []int64) []finishPoint {
	s.ensureRunBuffers()
	finish, done, caps := s.finish, s.done, s.caps
	for i := range finish {
		finish[i], done[i], caps[i] = finishPoint{}, false, 0
	}
	remaining := 0
	doneCount := 0
	for i, c := range s.cores {
		// A finished core may keep generating load for up to 4 extra
		// budgets before it freezes (bounding simulation cost when core
		// speeds differ by orders of magnitude, as in mixes).
		caps[i] = targets[i] + 4*(targets[i]-c.Instructions())
		if c.Instructions() >= targets[i] {
			done[i] = true
			doneCount++
			finish[i] = finishPoint{cycles: c.WindowCycles(), instr: c.WindowInstructions()}
		} else {
			remaining++
		}
	}
	for remaining > 0 {
		// Advance the core with the smallest local time; with 16 cores a
		// linear scan beats a heap. Track the runner-up too: stepping the
		// leader leaves every other clock unchanged, so the leader stays
		// the unique minimum — and keeps stepping without a rescan — until
		// its clock reaches the runner-up's (ties resolve to the lower
		// index, exactly as the scan would).
		min, sec := -1, -1
		var minTime, secTime int64 = math.MaxInt64, math.MaxInt64
		for i, c := range s.cores {
			if done[i] {
				continue
			}
			if t := c.Time(); t < minTime {
				sec, secTime = min, minTime
				min, minTime = i, t
			} else if t < secTime {
				sec, secTime = i, t
			}
		}
		// Let already-finished cores keep pace so they keep generating
		// memory pressure while slower cores are measured. Until the first
		// core finishes — the bulk of every run — this scan is a no-op, so
		// skip it entirely.
		if doneCount > 0 {
			for i, c := range s.cores {
				if done[i] {
					stepped := false
					for c.Time() < minTime && c.Instructions() < caps[i] {
						c.Step()
						stepped = true
					}
					if stepped && s.series != nil {
						s.noteCore(i)
					}
				}
			}
		}
		c := s.cores[min]
		if s.series == nil && doneCount == 0 {
			// Fast path: no epoch series to tick and no finished-core
			// pacing to interleave, so the inner loop below degenerates
			// to "step the leader until it crosses its target or its
			// clock passes the runner-up's". StepRun executes exactly
			// that — same events, same clocks, same stop condition
			// (ties yield to the lower index, hence stopOnTie when the
			// leader's index is higher) — but consumes whole stream
			// windows per call instead of singleton events.
			if c.StepRun(targets[min], secTime, min > sec) {
				done[min] = true
				doneCount++
				finish[min] = finishPoint{cycles: c.WindowCycles(), instr: c.WindowInstructions()}
				remaining--
			}
			continue
		}
		for {
			c.Step()
			if s.series != nil {
				s.noteCore(min)
			}
			if c.Instructions() >= targets[min] {
				done[min] = true
				doneCount++
				finish[min] = finishPoint{cycles: c.WindowCycles(), instr: c.WindowInstructions()}
				remaining--
				break
			}
			if s.series != nil {
				s.sampleTick()
			}
			// Batching is only safe while the finished-core pacing loop
			// above is a guaranteed no-op.
			if doneCount > 0 {
				break
			}
			if t := c.Time(); t > secTime || (t == secTime && min > sec) {
				break
			}
		}
		if s.series != nil && done[min] {
			s.sampleTick()
		}
	}
	return finish
}

// initWindowTrack seeds the incremental window counters with a full scan
// (exact regardless of where the window marks sit).
func (s *System) initWindowTrack() {
	if s.winInstr == nil {
		s.winInstr = make([]int64, len(s.cores))
	}
	s.winInstrSum, s.maxWinCycles = 0, 0
	for i, c := range s.cores {
		s.winInstr[i] = c.WindowInstructions()
		s.winInstrSum += s.winInstr[i]
		if wc := c.WindowCycles(); wc > s.maxWinCycles {
			s.maxWinCycles = wc
		}
	}
}

// noteCore folds core i's stepped window counters into the incremental
// sums. Called after every Step site while a series is live, so
// sampleTick sees exactly what a full rescan would.
func (s *System) noteCore(i int) {
	c := s.cores[i]
	wi := c.WindowInstructions()
	s.winInstrSum += wi - s.winInstr[i]
	s.winInstr[i] = wi
	if wc := c.WindowCycles(); wc > s.maxWinCycles {
		s.maxWinCycles = wc
	}
}

// sampleTick offers the current window clocks to the epoch series. The
// instruction clock is the total measured-window retirement across cores;
// the cycle clock is the longest per-core window so far. Both are
// maintained incrementally by noteCore — the previous implementation
// rescanned every core on every step, an O(cores) tax on -epoch runs.
func (s *System) sampleTick() {
	s.series.Tick(s.winInstrSum, s.maxWinCycles)
}
