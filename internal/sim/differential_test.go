package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"testing"

	"accord/internal/dramcache"
	"accord/internal/workloads"
)

// backendFilterSkip honors ACCORD_BACKEND the same way the dramcache
// conformance suite does: set, it narrows the differential matrix to one
// backend so the per-backend CI jobs split the -race cost.
func backendFilterSkip(t *testing.T, backend string) bool {
	t.Helper()
	only := os.Getenv("ACCORD_BACKEND")
	if only == "" {
		return false
	}
	if !dramcache.HasBackend(only) {
		t.Fatalf("ACCORD_BACKEND=%q is not a registered backend (have %v)",
			only, dramcache.BackendNames())
	}
	return backend != only
}

// engineCases is the differential matrix: every registered L4
// organization (so every specialized adapter in dispatch.go plus the
// generic fallback they must match), single- and multi-core, exact and
// sampled execution. Small scale keeps the 20-cell matrix fast.
func engineCases() []struct {
	name string
	cfg  Config
} {
	shrink := func(name string, cfg Config) struct {
		name string
		cfg  Config
	} {
		cfg.Scale = 8192
		cfg.DisableAdaptiveBudgets = true
		cfg.WarmupInstr = 50_000
		cfg.MeasureInstr = 300_000
		cfg.Seed = 1
		return struct {
			name string
			cfg  Config
		}{name, cfg}
	}
	return []struct {
		name string
		cfg  Config
	}{
		shrink("nway", ACCORD(2)),
		shrink("ca", CACache()),
		shrink("banshee", Banshee()),
		shrink("gemini", Gemini()),
		shrink("tdram", TDRAM(2)),
	}
}

// runEngine runs one simulation on the requested engine and returns the
// Result, the exported metrics JSON, and a state snapshot (warm-state
// snapshot for exact runs, functional snapshot for sampled runs, taken
// after the run so it covers the final simulated state).
func runEngine(t *testing.T, cfg Config, generic, sampled bool) (Result, []byte, []byte) {
	t.Helper()
	UseGenericEngine(generic)
	defer UseGenericEngine(false)
	const wlName = "libquantum"
	wl := workloads.MustGet(wlName, cfg.Cores)
	if sampled {
		// Trace-backed stream so sampling forks replay the spine's events,
		// exactly as the experiment driver runs sampled configs.
		wl = traceWorkload(wlName, cfg)
	}
	s := New(cfg, wl)
	res := s.Run(wlName)
	js, err := json.MarshalIndent(res.Metrics, "", " ")
	if err != nil {
		t.Fatalf("marshal metrics: %v", err)
	}
	var snap []byte
	if sampled {
		snap, err = s.FunctionalSnapshot(wlName)
	} else {
		snap, err = s.Snapshot(wlName)
	}
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return res, js, snap
}

// TestEngineDifferential is the contract gate for the monomorphized
// dispatch: for every backend, single- and multi-core, exact and
// sampled, the specialized engine must reproduce the generic
// interface-dispatch engine exactly — same Result (summary, stats,
// registry snapshot, interval series), same exported metrics JSON, and
// byte-identical state snapshot. Engine choice is pure execution
// strategy; any divergence here is a specialization bug, never a
// tolerable drift. The per-backend CI conformance matrix runs this
// under -race with ACCORD_BACKEND narrowing (see backendFilter).
func TestEngineDifferential(t *testing.T) {
	for _, bc := range engineCases() {
		if backendFilterSkip(t, bc.name) {
			continue
		}
		for _, cores := range []int{1, 2} {
			for _, sampled := range []bool{false, true} {
				cfg := bc.cfg
				cfg.Cores = cores
				if sampled {
					cfg.Sampling = SamplingConfig{
						Period:       50_000,
						DetailLen:    12_000,
						WarmLen:      5_000,
						MinIntervals: 2,
					}
					cfg.SampleWorkers = 2
				}
				mode := "exact"
				if sampled {
					mode = "sampled"
				}
				t.Run(fmt.Sprintf("%s/cores=%d/%s", bc.name, cores, mode), func(t *testing.T) {
					specRes, specJSON, specSnap := runEngine(t, cfg, false, sampled)
					genRes, genJSON, genSnap := runEngine(t, cfg, true, sampled)
					if !reflect.DeepEqual(specRes, genRes) {
						t.Errorf("Result diverged between engines:\nspecialized: %+v\ngeneric:     %+v", specRes, genRes)
					}
					if !bytes.Equal(specJSON, genJSON) {
						t.Errorf("metrics JSON diverged between engines:\nspecialized: %s\ngeneric:     %s", specJSON, genJSON)
					}
					if !bytes.Equal(specSnap, genSnap) {
						t.Errorf("state snapshot diverged between engines (%d vs %d bytes)", len(specSnap), len(genSnap))
					}
				})
			}
		}
	}
}

// TestDispatchSpecializes pins that newMemAdapter actually specializes
// every registered backend — if a new organization lands without an
// adapter it silently falls back to interface dispatch, which is
// correct but defeats the engine; this test turns that into a loud
// failure listing the unspecialized type.
func TestDispatchSpecializes(t *testing.T) {
	for _, bc := range engineCases() {
		cfg := bc.cfg
		cfg.Cores = 1
		s := New(cfg, workloads.MustGet("libquantum", cfg.Cores))
		m := newMemAdapter(s.l4)
		if _, isGeneric := m.(memAdapter); isGeneric {
			t.Errorf("%s: newMemAdapter fell back to the generic engine for %T", bc.name, s.l4)
		}
		UseGenericEngine(true)
		m = newMemAdapter(s.l4)
		UseGenericEngine(false)
		if _, isGeneric := m.(memAdapter); !isGeneric {
			t.Errorf("%s: UseGenericEngine(true) did not force the generic engine (got %T)", bc.name, m)
		}
	}
}
