package sim

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"accord/internal/ckpt"
	"accord/internal/workloads"
)

// ckptCases covers the config families the checkpoint layer must
// round-trip bit-identically: direct-mapped, ACCORD set-associative,
// column-associative, the full SRAM hierarchy, and the pluggable
// organizations (Banshee, Gemini, TDRAM).
func ckptCases() []Config {
	shrink := func(cfg Config) Config {
		cfg.Scale = 8192
		cfg.Cores = 4
		cfg.WarmupInstr = 40_000
		cfg.MeasureInstr = 40_000
		cfg.EpochInstr = 10_000
		cfg.Seed = 1
		return cfg
	}
	full := ACCORD(2)
	full.Name = "accord-hier"
	full.FullHierarchy = true
	return []Config{
		shrink(DirectMapped()),
		shrink(ACCORD(2)),
		shrink(CACache()),
		shrink(full),
		shrink(Banshee()),
		shrink(Gemini()),
		shrink(TDRAM(2)),
	}
}

// resultFingerprint renders a Result (including the metrics bundle) to
// canonical JSON so "byte-identical" is checked literally.
func resultFingerprint(t *testing.T, r Result) string {
	t.Helper()
	b, err := json.Marshal(struct {
		Result
		Final  any
		Series any
	}{Result: r, Final: r.Metrics.Final, Series: r.Metrics.Series})
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(b)
}

// TestSnapshotResumeBitIdentical is the differential test: an
// uninterrupted run, a snapshot-then-resume on the same instance, and a
// restore into a fresh instance must all produce byte-identical results.
func TestSnapshotResumeBitIdentical(t *testing.T) {
	const wlName = "libquantum"
	for _, cfg := range ckptCases() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			wl := workloads.MustGet(wlName, cfg.Cores)

			cold := New(cfg, wl).Run(wlName)

			warm := New(cfg, wl)
			warm.RunWarmup()
			blob, err := warm.Snapshot(wlName)
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			resumed := warm.RunMeasure(wlName)

			restoredSys := New(cfg, wl)
			if err := restoredSys.Restore(blob, wlName); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			restored := restoredSys.RunMeasure(wlName)

			coldFP := resultFingerprint(t, cold)
			if got := resultFingerprint(t, resumed); got != coldFP {
				t.Errorf("snapshot-then-resume diverged from cold run:\n cold %s\n warm %s", coldFP, got)
			}
			if got := resultFingerprint(t, restored); got != coldFP {
				t.Errorf("restore-into-fresh diverged from cold run:\n cold %s\n rest %s", coldFP, got)
			}
		})
	}
}

// TestRunWithStoreBitIdentical exercises the full store path: the first
// run populates the store cold, the second restores, and both results —
// and a no-store baseline — are byte-identical.
func TestRunWithStoreBitIdentical(t *testing.T) {
	const wlName = "milc"
	for _, cfg := range ckptCases() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			wl := workloads.MustGet(wlName, cfg.Cores)
			store, err := ckpt.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			base := New(cfg, wl).Run(wlName)
			first, restored := RunWithStore(cfg, wl, store, wlName)
			if restored {
				t.Fatal("first run claims to have restored from an empty store")
			}
			second, restored := RunWithStore(cfg, wl, store, wlName)
			if !restored {
				t.Fatal("second run did not restore from the populated store")
			}
			baseFP := resultFingerprint(t, base)
			if got := resultFingerprint(t, first); got != baseFP {
				t.Errorf("store-populating run diverged from no-store run")
			}
			if got := resultFingerprint(t, second); got != baseFP {
				t.Errorf("restored run diverged from no-store run:\n cold %s\n warm %s", baseFP, got)
			}
		})
	}
}

// TestWarmKeyExclusions verifies the digest ignores exactly the fields
// that cannot affect warm state, and changes with ones that can.
func TestWarmKeyExclusions(t *testing.T) {
	base := ckptCases()[1] // ACCORD 2-way
	wl := workloads.MustGet("libquantum", base.Cores)
	key := func(cfg Config) string {
		return New(cfg, wl).WarmKey("libquantum")
	}
	k0 := key(base)

	renamed := base
	renamed.Name = "renamed"
	if key(renamed) != k0 {
		t.Error("Name changed the warm key; it is a label and must not")
	}
	measure := base
	measure.MeasureInstr *= 2
	if key(measure) != k0 {
		t.Error("MeasureInstr changed the warm key; it is consumed after the boundary")
	}
	epoch := base
	epoch.EpochInstr = 0
	if key(epoch) != k0 {
		t.Error("EpochInstr changed the warm key; sampling starts at the boundary")
	}

	for name, mutate := range map[string]func(*Config){
		"Seed":        func(c *Config) { c.Seed = 7 },
		"WarmupInstr": func(c *Config) { c.WarmupInstr *= 2 },
		"Scale":       func(c *Config) { c.Scale *= 2 },
		"MSHRs":       func(c *Config) { c.MSHRs++ },
	} {
		cfg := base
		mutate(&cfg)
		if key(cfg) == k0 {
			t.Errorf("%s did not change the warm key; it affects warm state", name)
		}
	}

	if key(ckptCases()[0]) == k0 || key(ckptCases()[2]) == k0 {
		t.Error("different organizations share a warm key")
	}
}

// TestWarmKeyDistinguishesTableSizes pins the reason StorageBytes is in
// the fingerprint: RIT/RLT size sweeps share a policy name.
func TestWarmKeyDistinguishesTableSizes(t *testing.T) {
	shrink := func(cfg Config) Config {
		cfg.Scale = 8192
		cfg.Cores = 4
		return cfg
	}
	a := shrink(ACCORDWithTables(32))
	b := shrink(ACCORDWithTables(64))
	a.Name, b.Name = "same", "same"
	wl := workloads.MustGet("libquantum", a.Cores)
	if New(a, wl).WarmKey("libquantum") == New(b, wl).WarmKey("libquantum") {
		t.Error("different GWS table sizes share a warm key")
	}
}

// TestRestoreRejectsAdversarialInput feeds truncations and random
// corruptions of a real snapshot to Restore: every one must fail with an
// error (or be a byte-identical fluke, impossible past the checksum) and
// none may panic.
func TestRestoreRejectsAdversarialInput(t *testing.T) {
	cfg := ckptCases()[1]
	wl := workloads.MustGet("libquantum", cfg.Cores)
	s := New(cfg, wl)
	s.RunWarmup()
	blob, err := s.Snapshot("libquantum")
	if err != nil {
		t.Fatal(err)
	}

	// Truncations at every length (stride keeps the test fast; edges and
	// a dense prefix are covered exactly).
	for n := 0; n < len(blob); n += 1 + n/64 {
		tr := blob[:n]
		fresh := New(cfg, wl)
		if err := fresh.Restore(tr, "libquantum"); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", n, len(blob))
		}
	}

	// Random single-byte corruptions: the CRC catches all of them.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 64; trial++ {
		c := append([]byte(nil), blob...)
		c[rng.Intn(len(c))] ^= byte(1 + rng.Intn(255))
		fresh := New(cfg, wl)
		if err := fresh.Restore(c, "libquantum"); err == nil {
			t.Fatalf("trial %d: corrupted snapshot accepted", trial)
		}
	}

	// A valid snapshot for a different config/workload must be rejected
	// by the fingerprint even though the checksum passes.
	other := New(cfg, workloads.MustGet("milc", cfg.Cores))
	if err := other.Restore(blob, "milc"); err == nil {
		t.Fatal("snapshot for libquantum accepted by a milc system")
	}

	// Sanity: the pristine blob still restores.
	fresh := New(cfg, wl)
	if err := fresh.Restore(blob, "libquantum"); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
}

// TestRestoreRejectsTrailingBytes guards the strict end-of-blob check.
func TestRestoreRejectsTrailingBytes(t *testing.T) {
	cfg := ckptCases()[0]
	wl := workloads.MustGet("libquantum", cfg.Cores)
	s := New(cfg, wl)
	s.RunWarmup()
	blob, err := s.Snapshot("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	// Re-wrap the payload with junk appended before the checksum.
	payload := blob[:len(blob)-4]
	e := ckpt.NewEncoder(len(blob) + 8)
	e.Raw(payload)
	e.U64(0xDEAD)
	fresh := New(cfg, wl)
	if err := fresh.Restore(e.Finish(), "libquantum"); err == nil {
		t.Fatal("snapshot with trailing bytes accepted")
	}
}

// TestRunWithStoreCorruptFallsBackCold corrupts the stored blob between
// runs; the second run must detect it, fall back cold, and still produce
// the identical result.
func TestRunWithStoreCorruptFallsBackCold(t *testing.T) {
	cfg := ckptCases()[1]
	wl := workloads.MustGet("libquantum", cfg.Cores)
	dir := t.TempDir()
	store, err := ckpt.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := RunWithStore(cfg, wl, store, "libquantum")

	key := New(cfg, wl).WarmKey("libquantum")
	blob, ok, err := store.Load(key)
	if err != nil || !ok {
		t.Fatalf("stored blob missing: ok=%v err=%v", ok, err)
	}
	blob[len(blob)/2] ^= 0xFF
	if err := store.Save(key, blob); err != nil {
		t.Fatal(err)
	}

	got, restored := RunWithStore(cfg, wl, store, "libquantum")
	if restored {
		t.Error("corrupt checkpoint was reported as restored")
	}
	if !reflect.DeepEqual(base, got) {
		t.Error("cold fallback after corruption diverged from the original run")
	}

	// The fallback re-saved a good checkpoint; the next run restores.
	again, restored := RunWithStore(cfg, wl, store, "libquantum")
	if !restored {
		t.Error("store was not repopulated after the corrupt fallback")
	}
	if !reflect.DeepEqual(base, again) {
		t.Error("restored run after repopulation diverged")
	}
}
