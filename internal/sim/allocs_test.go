package sim

import (
	"fmt"
	"testing"

	"accord/internal/workloads"
)

// TestDetailedWindowZeroAlloc enforces the steady-state allocation
// contract of the detailed measured-window path on both engines: once a
// system is warm, advancing it through detailed events — the batched
// StepRun loop over the windowed stream, the MSHR admit scan, the DRAM
// calendar-ring reservations — must allocate nothing per event. The
// generic interface-dispatch engine is held to the same bar so the
// specialized engine can never hide an allocation behind the fallback
// (or vice versa).
func TestDetailedWindowZeroAlloc(t *testing.T) {
	for _, generic := range []bool{false, true} {
		engine := "specialized"
		if generic {
			engine = "generic"
		}
		for _, bc := range engineCases() {
			cfg := bc.cfg
			cfg.Cores = 1
			t.Run(fmt.Sprintf("%s/%s", engine, bc.name), func(t *testing.T) {
				UseGenericEngine(generic)
				defer UseGenericEngine(false)
				wl := workloads.MustGet("libquantum", cfg.Cores)
				s := New(cfg, wl)
				s.RunWarmupFunctional()
				// One detailed advance off the measurement to fault in lazy
				// state (stream window buffers, row activations).
				target := s.Cores()[0].Instructions()
				target += 20_000
				s.advanceUntil([]int64{target})
				if avg := testing.AllocsPerRun(20, func() {
					target += 10_000
					s.advanceUntil([]int64{target})
				}); avg != 0 {
					t.Errorf("detailed window allocates %.4f per 10k-instr advance, want 0", avg)
				}
			})
		}
	}
}
