package sim

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"accord/internal/ckpt"
	"accord/internal/workloads"
)

// functionalCases are the config families the functional mode must track
// bit-for-bit: direct-mapped, ACCORD set-associative, column-associative,
// and the full SRAM hierarchy. Single-core: detailed mode interleaves
// cores by simulated time, which functional mode (no time) cannot
// reproduce, so byte equality is defined at Cores=1 (see DESIGN.md §9);
// multi-core agreement is covered statistically below.
func functionalCases(seed int64, warm int64) []Config {
	shrink := func(cfg Config) Config {
		cfg.Scale = 8192
		cfg.Cores = 1
		cfg.WarmupInstr = warm
		cfg.MeasureInstr = 40_000
		cfg.Seed = seed
		return cfg
	}
	full := ACCORD(2)
	full.Name = "accord-hier"
	full.FullHierarchy = true
	lru := LRU2Way()
	return []Config{
		shrink(DirectMapped()),
		shrink(ACCORD(2)),
		shrink(CACache()),
		shrink(full),
		shrink(lru),
		shrink(Banshee()),
		shrink(Gemini()),
		shrink(TDRAM(2)),
	}
}

// TestFunctionalWarmStateMatchesDetailed is the randomized differential
// test behind sampling's correctness claim: for every organization, a
// functional warmup and a detailed warmup of the same events leave
// byte-identical functional state (FunctionalSnapshot) at the boundary.
// Any drift here would silently fork sampled runs from the checkpoint
// path.
func TestFunctionalWarmStateMatchesDetailed(t *testing.T) {
	wls := []string{"libquantum", "milc"}
	seeds := []int64{1, 7, 12345}
	warms := []int64{11_000, 60_000}
	for _, cfg := range functionalCases(1, 0) {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			for _, wlName := range wls {
				for _, seed := range seeds {
					for _, warm := range warms {
						c := cfg
						c.Seed = seed
						c.WarmupInstr = warm
						wl := workloads.MustGet(wlName, c.Cores)

						det := New(c, wl)
						det.RunWarmup()
						want, err := det.FunctionalSnapshot(wlName)
						if err != nil {
							t.Fatalf("detailed FunctionalSnapshot: %v", err)
						}

						fun := New(c, wl)
						fun.RunWarmupFunctional()
						got, err := fun.FunctionalSnapshot(wlName)
						if err != nil {
							t.Fatalf("functional FunctionalSnapshot: %v", err)
						}

						if !bytes.Equal(want, got) {
							t.Errorf("wl=%s seed=%d warm=%d: functional warm state diverged from detailed (%d vs %d bytes)",
								wlName, seed, warm, len(want), len(got))
						}
					}
				}
			}
		})
	}
}

// sampledBase returns a config pair (exact, sampled) sharing everything
// that affects the simulated system.
func sampledBase(cfg Config) (exact, sampled Config) {
	cfg.Scale = 8192
	cfg.Cores = 4
	cfg.DisableAdaptiveBudgets = true
	cfg.WarmupInstr = 100_000
	cfg.MeasureInstr = 800_000
	cfg.Seed = 1
	exact = cfg
	sampled = cfg
	sampled.Sampling = SamplingConfig{
		Period:       100_000,
		DetailLen:    25_000,
		WarmLen:      10_000,
		MinIntervals: 2,
	}
	return exact, sampled
}

// TestSampledWithinCIOfExact is the equivalence gate: on small golden
// configs, the sampled IPC and hit-rate means must lie within their own
// reported confidence intervals of the exact (fully detailed) run. The
// runs are deterministic, so this is a fixed property of the
// implementation, not a statistical coin flip.
//
// Single-core cases are the principled check: at Cores=1 the sampled
// run's state trajectory is instruction-identical to the exact run's
// (the differential test above proves it byte-for-byte), so its measured
// windows are true systematic samples of the exact run and the CI must
// bracket the exact mean. Multi-core runs take a slightly different
// trajectory — functional round-robin vs detailed time-ordering changes
// the order of first-touch page faults, hence the random frame map — so
// multicore agreement is covered by the separate accord case below at
// the same thresholds, which the implementation meets deterministically.
func TestSampledWithinCIOfExact(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run equivalence test")
	}
	const wlName = "libquantum"
	type tc struct {
		base  Config
		cores int
	}
	cases := []tc{
		{DirectMapped(), 1},
		{ACCORD(2), 1},
		{CACache(), 1},
		{ACCORD(2), 4}, // multicore agreement check
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%s-%dc", c.base.Name, c.cores), func(t *testing.T) {
			t.Parallel()
			exactCfg, sampledCfg := sampledBase(c.base)
			exactCfg.Cores = c.cores
			sampledCfg.Cores = c.cores
			wl := workloads.MustGet(wlName, exactCfg.Cores)

			exact := New(exactCfg, wl).Run(wlName)
			sampled := New(sampledCfg, wl).Run(wlName)

			ss := sampled.Sampled
			if ss == nil {
				t.Fatal("sampled run returned no SampleSummary")
			}
			if ss.Intervals != ss.Planned || ss.Intervals < 2 {
				t.Fatalf("expected all %d planned intervals to run, got %d", ss.Planned, ss.Intervals)
			}
			if !ss.IPC.OK || !ss.HitRate.OK {
				t.Fatalf("sampled CIs not OK: ipc=%+v hit=%+v", ss.IPC, ss.HitRate)
			}
			if d := math.Abs(ss.IPC.Mean - exact.MeanIPC()); d > ss.IPC.Half {
				t.Errorf("sampled IPC %.4f±%.4f excludes exact %.4f (off by %.4f)",
					ss.IPC.Mean, ss.IPC.Half, exact.MeanIPC(), d)
			}
			if d := math.Abs(ss.HitRate.Mean - exact.L4.HitRate()); d > ss.HitRate.Half {
				t.Errorf("sampled hit rate %.4f±%.4f excludes exact %.4f (off by %.4f)",
					ss.HitRate.Mean, ss.HitRate.Half, exact.L4.HitRate(), d)
			}
			// The sampled run must be far cheaper in detailed events: its
			// measured+warm detailed instructions are a fraction of the
			// stream it covers.
			if sampled.Instructions >= exact.Instructions {
				t.Errorf("sampled run measured %d instructions, exact %d — sampling saved nothing",
					sampled.Instructions, exact.Instructions)
			}
			// The per-interval series rode along.
			if sampled.Metrics == nil || sampled.Metrics.Series == nil ||
				len(sampled.Metrics.Series.Samples) != ss.Intervals {
				t.Errorf("per-interval series missing or wrong length")
			}
		})
	}
}

// TestSampledEarlyStop checks the Student-t early-stopping path: with a
// loose target CI the run should converge before exhausting the budget
// and report Converged.
func TestSampledEarlyStop(t *testing.T) {
	_, cfg := sampledBase(DirectMapped())
	cfg.MeasureInstr = 3_200_000 // 32 planned intervals
	cfg.Sampling.MinIntervals = 3
	cfg.Sampling.TargetCI = 0.5 // ±50%: trivially reached
	wl := workloads.MustGet("libquantum", cfg.Cores)
	res := New(cfg, wl).Run("libquantum")
	ss := res.Sampled
	if ss == nil {
		t.Fatal("no SampleSummary")
	}
	if !ss.Converged {
		t.Errorf("run did not converge at a ±50%% target (ran %d/%d intervals)", ss.Intervals, ss.Planned)
	}
	if ss.Intervals >= ss.Planned {
		t.Errorf("converged run still used the whole budget: %d/%d", ss.Intervals, ss.Planned)
	}
	if ss.Intervals < cfg.Sampling.MinIntervals {
		t.Errorf("stopped after %d intervals, below MinIntervals %d", ss.Intervals, cfg.Sampling.MinIntervals)
	}
}

// TestWarmKeyIgnoresSampling pins the checkpoint-key exclusion: sampling
// reconfigures only the measured phase, so a sampled and an exact config
// that otherwise match must share a warm key.
func TestWarmKeyIgnoresSampling(t *testing.T) {
	exactCfg, sampledCfg := sampledBase(ACCORD(2))
	wl := workloads.MustGet("libquantum", exactCfg.Cores)
	k0 := New(exactCfg, wl).WarmKey("libquantum")
	k1 := New(sampledCfg, wl).WarmKey("libquantum")
	if k0 != k1 {
		t.Error("Sampling changed the warm key; it must be excluded like MeasureInstr")
	}
}

// TestRunWithStoreBypassesSampling: sampled runs neither read nor write
// the checkpoint store, and still match a plain Run.
func TestRunWithStoreBypassesSampling(t *testing.T) {
	_, cfg := sampledBase(DirectMapped())
	wl := workloads.MustGet("libquantum", cfg.Cores)
	store, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, restored := RunWithStore(cfg, wl, store, "libquantum")
	if restored {
		t.Error("sampled run claims to have restored a checkpoint")
	}
	if key := New(cfg, wl).WarmKey("libquantum"); func() bool {
		_, ok, _ := store.Load(key)
		return ok
	}() {
		t.Error("sampled run populated the checkpoint store")
	}
	base := New(cfg, wl).Run("libquantum")
	if res.MeanIPC() != base.MeanIPC() || res.HitRate() != base.HitRate() {
		t.Error("RunWithStore sampled result diverged from plain Run")
	}
}

// TestSamplingValidation is the table-driven guard for misconfigured
// sampling (satellite: clear errors instead of silent misbehavior).
func TestSamplingValidation(t *testing.T) {
	valid := func() Config {
		_, cfg := sampledBase(DirectMapped())
		return cfg
	}
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string // substring; empty = must validate
	}{
		{"valid", func(c *Config) {}, ""},
		{"valid-early-stop", func(c *Config) {
			c.Sampling.TargetCI = 0.05
			c.Sampling.MinIntervals = 2
		}, ""},
		{"fields-without-period", func(c *Config) {
			c.Sampling.Period = 0
		}, "Period is zero"},
		{"zero-detail", func(c *Config) { c.Sampling.DetailLen = 0 }, "DetailLen"},
		{"negative-warm", func(c *Config) { c.Sampling.WarmLen = -1 }, "WarmLen"},
		{"layout-overflow", func(c *Config) {
			c.Sampling.DetailLen = 60_000
			c.Sampling.WarmLen = 50_000
		}, "exceed Period"},
		{"min-over-max", func(c *Config) {
			c.Sampling.MinIntervals = 5
			c.Sampling.MaxIntervals = 3
		}, "MaxIntervals"},
		{"target-ci-range", func(c *Config) { c.Sampling.TargetCI = 1.5 }, "TargetCI"},
		{"target-ci-needs-min", func(c *Config) {
			c.Sampling.TargetCI = 0.05
			c.Sampling.MinIntervals = 1
		}, "MinIntervals >= 2"},
		{"confidence-range", func(c *Config) { c.Sampling.Confidence = 1.0 }, "Confidence"},
		{"adaptive-budgets", func(c *Config) {
			c.DisableAdaptiveBudgets = false
		}, "DisableAdaptiveBudgets"},
		{"epoch-conflict", func(c *Config) { c.EpochInstr = 10_000 }, "EpochInstr"},
		{"period-over-measure", func(c *Config) {
			c.Sampling.Period = c.MeasureInstr + 1
			c.Sampling.DetailLen = 1000
		}, "no complete sampling period"},
		{"min-intervals-over-budget", func(c *Config) {
			c.Sampling.MinIntervals = 100
		}, "MinIntervals 100"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Validate() = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestFunctionalStepZeroAlloc enforces the 0 allocs/event contract on a
// warmed system: steady-state functional stepping must never touch the
// heap (the VM may still allocate page-table leaves on a genuinely new
// page, so the system is warmed until its footprint is fully mapped).
func TestFunctionalStepZeroAlloc(t *testing.T) {
	for _, cfg := range functionalCases(1, 2_000_000) {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			cfg.DisableAdaptiveBudgets = true
			wl := workloads.MustGet("libquantum", cfg.Cores)
			s := New(cfg, wl)
			s.RunWarmupFunctional()
			c := s.Cores()[0]
			if avg := testing.AllocsPerRun(50_000, c.StepFunctional); avg != 0 {
				t.Errorf("StepFunctional allocates %.4f per event, want 0", avg)
			}
		})
	}
}

// TestFunctionalSpeedRatio enforces the fast-forward speedup contract in
// the configuration sampling actually runs: functional mode consuming
// trace-cache events versus detailed mode generating its stream, both
// advancing the same warmed single-core system by the same instruction
// budget (per-instruction throughput is the fair unit — detailed mode
// burns extra Step calls on MSHR-full stalls that retire nothing).
//
// Measured ratios on an idle machine are ~3-5x depending on the
// organization and scale (see BENCH_PR6.json and DESIGN.md §9.5 for why
// the classic 20-60x sampling speedups of cycle-accurate simulators do
// not appear against a detailed model that already costs only a few
// ns/instruction); the floor enforced here is set with margin for noisy
// CI runners and guards against regressions that would gut sampling's
// reason to exist.
func TestFunctionalSpeedRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-based test")
	}
	const minSpeedup = 1.5
	cfg := functionalCases(1, 500_000)[1] // accord-2way
	cfg.DisableAdaptiveBudgets = true
	gen := workloads.MustGet("libquantum", cfg.Cores)
	tc := workloads.NewTraceCache(1 << 30)
	rep := gen
	rep.Source = tc.Source(gen.Specs, cfg.AnchorLines(), cfg.Seed)

	run := func(wl workloads.Workload, functional bool, n int64) float64 {
		s := New(cfg, wl)
		s.RunWarmupFunctional()
		targets := []int64{s.Cores()[0].Instructions() + n}
		t0 := time.Now()
		if functional {
			s.advanceFunctional(targets)
		} else {
			s.advanceUntil(targets)
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(n)
	}
	const n = 4_000_000
	_ = run(rep, true, n) // record the stream once, off the clock
	best := 0.0
	for try := 0; try < 3 && best < minSpeedup; try++ {
		detailed := run(gen, false, n)
		functional := run(rep, true, n)
		ratio := detailed / functional
		t.Logf("detailed %.2f ns/instr, functional %.2f ns/instr, ratio %.1fx", detailed, functional, ratio)
		if ratio > best {
			best = ratio
		}
	}
	if best < minSpeedup {
		t.Errorf("functional fast-forward only %.1fx faster than detailed, want >= %.1fx", best, minSpeedup)
	}
}
