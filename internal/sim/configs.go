package sim

import (
	"fmt"

	"accord/internal/core"
	"accord/internal/dramcache"
)

// The canned configurations below are the design points the paper's
// figures compare. Each starts from Default() (the direct-mapped
// baseline) and changes only the L4 organization and policy.

// RandFactory builds the unbiased random policy.
func RandFactory() PolicyFactory {
	return func(g core.Geometry, seed int64) core.Policy { return core.NewRand(g, seed) }
}

// MRUFactory builds the per-set MRU predictor (Table II / Figure 14).
func MRUFactory() PolicyFactory {
	return func(g core.Geometry, seed int64) core.Policy { return core.NewMRU(g, seed) }
}

// PartialTagFactory builds the partial-tag predictor with the paper's
// 4-bit tags (Table II / Figure 14).
func PartialTagFactory() PolicyFactory {
	return func(g core.Geometry, seed int64) core.Policy { return core.NewPartialTag(g, 4, seed) }
}

// PWSFactory builds probabilistic way-steering with the given PIP.
func PWSFactory(pip float64) PolicyFactory {
	return func(g core.Geometry, seed int64) core.Policy {
		return core.NewACCORD(core.ACCORDConfig{Geom: g, UsePWS: true, PIP: pip, Seed: seed})
	}
}

// GWSFactory builds ganged way-steering alone (unbiased fallback).
func GWSFactory() PolicyFactory {
	return func(g core.Geometry, seed int64) core.Policy {
		return core.NewACCORD(core.ACCORDConfig{
			Geom: g, UseGWS: true, RITEntries: 64, RLTEntries: 64, Seed: seed,
		})
	}
}

// ACCORDFactory builds the full PWS+GWS policy (plus SWS above 2 ways).
func ACCORDFactory() PolicyFactory {
	return func(g core.Geometry, seed int64) core.Policy {
		return core.NewACCORD(core.DefaultACCORD(g, seed))
	}
}

// DirectMapped returns the baseline configuration.
func DirectMapped() Config { return Default() }

// Unbiased returns an N-way cache with random install and the given
// lookup strategy.
func Unbiased(ways int, lookup dramcache.Lookup) Config {
	c := Default()
	c.Name = fmt.Sprintf("%dway-%s", ways, lookup)
	c.Ways = ways
	c.Lookup = lookup
	c.Policy = RandFactory()
	return c
}

// Parallel returns the parallel-lookup N-way design (Figure 1b).
func Parallel(ways int) Config { return Unbiased(ways, dramcache.LookupParallel) }

// Serial returns the serial-lookup N-way design (Figure 3b).
func Serial(ways int) Config { return Unbiased(ways, dramcache.LookupSerial) }

// Idealized returns the Figure 1(c) oracle: N-way hit-rate at 1-way cost.
func Idealized(ways int) Config {
	c := Unbiased(ways, dramcache.LookupIdealized)
	c.Name = fmt.Sprintf("%dway-idealized", ways)
	return c
}

// PerfectWP returns the perfect-way-prediction design (Figure 10).
func PerfectWP(ways int) Config {
	c := Unbiased(ways, dramcache.LookupPerfect)
	c.Name = fmt.Sprintf("%dway-perfect", ways)
	return c
}

// PWS returns the 2-way probabilistic way-steering design at a given PIP.
func PWS(pip float64) Config {
	c := Default()
	c.Name = fmt.Sprintf("2way-pws%.0f", pip*100)
	c.Ways = 2
	c.Lookup = dramcache.LookupPredicted
	c.Policy = PWSFactory(pip)
	return c
}

// GWS returns the 2-way ganged way-steering design.
func GWS() Config {
	c := Default()
	c.Name = "2way-gws"
	c.Ways = 2
	c.Lookup = dramcache.LookupPredicted
	c.Policy = GWSFactory()
	return c
}

// ACCORD returns the full ACCORD design at the given associativity:
// PWS+GWS for 2 ways, PWS+GWS+SWS(N,2) above.
func ACCORD(ways int) Config {
	c := Default()
	if ways <= 2 {
		c.Name = "accord-2way"
	} else {
		c.Name = fmt.Sprintf("accord-sws(%d,2)", ways)
	}
	c.Ways = ways
	c.Lookup = dramcache.LookupPredicted
	c.Policy = ACCORDFactory()
	return c
}

// MRU returns the MRU-predicted N-way design (Figure 14).
func MRU(ways int) Config {
	c := Default()
	c.Name = fmt.Sprintf("%dway-mru", ways)
	c.Ways = ways
	c.Lookup = dramcache.LookupPredicted
	c.Policy = MRUFactory()
	return c
}

// PartialTag returns the partial-tag-predicted N-way design (Figure 14).
func PartialTag(ways int) Config {
	c := Default()
	c.Name = fmt.Sprintf("%dway-partialtag", ways)
	c.Ways = ways
	c.Lookup = dramcache.LookupPredicted
	c.Policy = PartialTagFactory()
	return c
}

// CACache returns the column-associative baseline (Figure 14).
func CACache() Config {
	c := Default()
	c.Name = "ca-cache"
	c.UseCA = true
	return c
}

// LRU2Way returns the 2-way cache with true-LRU replacement, reproducing
// footnote 2's replacement-state bandwidth tax.
func LRU2Way() Config {
	c := Unbiased(2, dramcache.LookupPredicted)
	c.Name = "2way-lru"
	c.LRUReplacement = true
	return c
}

// Banshee returns the page-granularity frequency-tracked organization
// (Banshee, MICRO 2017; see dramcache.Banshee).
func Banshee() Config {
	c := Default()
	c.Name = "banshee"
	c.Backend = "banshee"
	return c
}

// Gemini returns the hybrid set/way-mapped organization (see
// dramcache.Gemini). The associativity is fixed at 4 ways.
func Gemini() Config {
	c := Default()
	c.Name = "gemini"
	c.Backend = "gemini"
	c.Ways = 4
	return c
}

// TDRAM returns the tag-enhanced DRAM organization (single-access hits,
// early miss detection; see dramcache.TDRAM) at the given associativity.
func TDRAM(ways int) Config {
	c := Default()
	c.Name = "tdram"
	if ways != 2 {
		c.Name = fmt.Sprintf("tdram-%dway", ways)
	}
	c.Backend = "tdram"
	c.Ways = ways
	return c
}

// Named resolves an organization by name for CLI use. pip applies only to
// "pws"; ways is ignored by organizations with a fixed associativity.
func Named(org string, ways int, pip float64) (Config, error) {
	switch org {
	case "direct", "direct-mapped", "dm":
		return DirectMapped(), nil
	case "parallel":
		return Parallel(ways), nil
	case "serial":
		return Serial(ways), nil
	case "idealized":
		return Idealized(ways), nil
	case "perfect":
		return PerfectWP(ways), nil
	case "unbiased":
		return Unbiased(ways, dramcache.LookupPredicted), nil
	case "pws":
		return PWS(pip), nil
	case "gws":
		return GWS(), nil
	case "accord":
		return ACCORD(ways), nil
	case "mru":
		return MRU(ways), nil
	case "partialtag", "partial-tag":
		return PartialTag(ways), nil
	case "ca", "ca-cache":
		return CACache(), nil
	case "lru":
		return LRU2Way(), nil
	case "banshee":
		return Banshee(), nil
	case "gemini":
		return Gemini(), nil
	case "tdram":
		if ways < 1 {
			ways = 2
		}
		return TDRAM(ways), nil
	default:
		return Config{}, fmt.Errorf("sim: unknown organization %q", org)
	}
}

// ACCORDSWSK returns ACCORD with the multi-alternate SWS extension the
// paper sketches in Section V-A: each line may reside in its preferred
// way or one of `alternates` hashed alternate ways, so miss confirmation
// costs alternates+1 probes.
func ACCORDSWSK(ways, alternates int) Config {
	c := Default()
	c.Name = fmt.Sprintf("accord-sws(%d,%d)", ways, alternates+1)
	c.Ways = ways
	c.Lookup = dramcache.LookupPredicted
	c.Policy = func(g core.Geometry, seed int64) core.Policy {
		cfg := core.DefaultACCORD(g, seed)
		cfg.UseSWS = true
		cfg.SWSAlternates = alternates
		return core.NewACCORD(cfg)
	}
	return c
}

// ACCORDWithTables returns the 2-way ACCORD design with explicit GWS
// region-table sizes, for the table-size ablation (the paper argues 64
// entries capture most of GWS's benefit).
func ACCORDWithTables(entries int) Config {
	c := Default()
	c.Name = fmt.Sprintf("accord-2way-rit%d", entries)
	c.Ways = 2
	c.Lookup = dramcache.LookupPredicted
	c.Policy = func(g core.Geometry, seed int64) core.Policy {
		cfg := core.DefaultACCORD(g, seed)
		cfg.RITEntries = entries
		cfg.RLTEntries = entries
		return core.NewACCORD(cfg)
	}
	return c
}
