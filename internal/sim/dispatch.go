package sim

import (
	"accord/internal/cpu"
	"accord/internal/dramcache"
	"accord/internal/memtypes"
)

// Monomorphized backend dispatch. memAdapter routes every core access
// through a dramcache.Interface call, which costs an itab lookup per
// event and — more importantly — walls the backend's hot path off from
// the inliner. The adapters below are the same three-line bridges with
// the backend's concrete type spelled out, so AccessRead/Writeback and
// the functional variants compile as direct calls. newMemAdapter picks
// the specialization by the concrete type the registry's constructor
// returned; unknown types (external backends registered by tests or
// future growth) fall back to the generic memAdapter, which remains the
// contract anchor the differential suite checks every specialization
// against.
//
// Hand-written rather than generic on purpose: Go stencils generics by
// GC shape, and every backend is a single pointer, so a type-parameter
// version would compile to one shared instantiation calling through a
// dictionary — dynamic dispatch again, just spelled differently.

// forceGenericAdapter, when true, makes newMemAdapter return the generic
// interface-dispatch memAdapter regardless of backend type. It exists
// for the specialized-vs-generic differential suite and for the CLIs'
// -engine flag (UseGenericEngine); the zero value is the production
// fast path. Like forceFreshForkSystems it is deliberately not part of
// Config: engine choice must never change results, so it has no place
// in memo keys or warm fingerprints.
var forceGenericAdapter = false

// UseGenericEngine routes all subsequently built Systems (including
// sampling forks) through the generic interface-dispatch engine instead
// of the backend-specialized one. Results are byte-identical either way
// — the differential suite enforces that — so this exists only to make
// the fallback engine reachable from the CLIs for cross-checking and
// timing. Not safe to toggle concurrently with New.
func UseGenericEngine(on bool) { forceGenericAdapter = on }

// newMemAdapter returns the post-L3-stream memory adapter for l4,
// specialized to the backend's concrete type when known.
func newMemAdapter(l4 dramcache.Interface) cpu.MemorySystem {
	if forceGenericAdapter {
		return memAdapter{l4: l4}
	}
	switch b := l4.(type) {
	case *dramcache.Cache:
		return nwayAdapter{l4: b}
	case *dramcache.CACache:
		return caAdapter{l4: b}
	case *dramcache.Banshee:
		return bansheeAdapter{l4: b}
	case *dramcache.Gemini:
		return geminiAdapter{l4: b}
	case *dramcache.TDRAM:
		return tdramAdapter{l4: b}
	default:
		return memAdapter{l4: l4}
	}
}

type nwayAdapter struct{ l4 *dramcache.Cache }

func (m nwayAdapter) Read(at int64, line memtypes.LineAddr) int64 {
	return m.l4.AccessRead(at, line).Done
}
func (m nwayAdapter) Write(at int64, line memtypes.LineAddr) { m.l4.Writeback(at, line) }
func (m nwayAdapter) ReadFunctional(line memtypes.LineAddr)  { m.l4.AccessReadFunctional(line) }
func (m nwayAdapter) WriteFunctional(line memtypes.LineAddr) { m.l4.WritebackFunctional(line) }
func (m nwayAdapter) BatchFunctional(lines []memtypes.LineAddr, flags []uint8) {
	m.l4.FunctionalBatch(lines, flags)
}

type caAdapter struct{ l4 *dramcache.CACache }

func (m caAdapter) Read(at int64, line memtypes.LineAddr) int64 {
	return m.l4.AccessRead(at, line).Done
}
func (m caAdapter) Write(at int64, line memtypes.LineAddr) { m.l4.Writeback(at, line) }
func (m caAdapter) ReadFunctional(line memtypes.LineAddr)  { m.l4.AccessReadFunctional(line) }
func (m caAdapter) WriteFunctional(line memtypes.LineAddr) { m.l4.WritebackFunctional(line) }
func (m caAdapter) BatchFunctional(lines []memtypes.LineAddr, flags []uint8) {
	m.l4.FunctionalBatch(lines, flags)
}

type bansheeAdapter struct{ l4 *dramcache.Banshee }

func (m bansheeAdapter) Read(at int64, line memtypes.LineAddr) int64 {
	return m.l4.AccessRead(at, line).Done
}
func (m bansheeAdapter) Write(at int64, line memtypes.LineAddr) { m.l4.Writeback(at, line) }
func (m bansheeAdapter) ReadFunctional(line memtypes.LineAddr)  { m.l4.AccessReadFunctional(line) }
func (m bansheeAdapter) WriteFunctional(line memtypes.LineAddr) { m.l4.WritebackFunctional(line) }
func (m bansheeAdapter) BatchFunctional(lines []memtypes.LineAddr, flags []uint8) {
	m.l4.FunctionalBatch(lines, flags)
}

type geminiAdapter struct{ l4 *dramcache.Gemini }

func (m geminiAdapter) Read(at int64, line memtypes.LineAddr) int64 {
	return m.l4.AccessRead(at, line).Done
}
func (m geminiAdapter) Write(at int64, line memtypes.LineAddr) { m.l4.Writeback(at, line) }
func (m geminiAdapter) ReadFunctional(line memtypes.LineAddr)  { m.l4.AccessReadFunctional(line) }
func (m geminiAdapter) WriteFunctional(line memtypes.LineAddr) { m.l4.WritebackFunctional(line) }
func (m geminiAdapter) BatchFunctional(lines []memtypes.LineAddr, flags []uint8) {
	m.l4.FunctionalBatch(lines, flags)
}

type tdramAdapter struct{ l4 *dramcache.TDRAM }

func (m tdramAdapter) Read(at int64, line memtypes.LineAddr) int64 {
	return m.l4.AccessRead(at, line).Done
}
func (m tdramAdapter) Write(at int64, line memtypes.LineAddr) { m.l4.Writeback(at, line) }
func (m tdramAdapter) ReadFunctional(line memtypes.LineAddr)  { m.l4.AccessReadFunctional(line) }
func (m tdramAdapter) WriteFunctional(line memtypes.LineAddr) { m.l4.WritebackFunctional(line) }
func (m tdramAdapter) BatchFunctional(lines []memtypes.LineAddr, flags []uint8) {
	m.l4.FunctionalBatch(lines, flags)
}
