package sim

import (
	"testing"

	"accord/internal/metrics"
	"accord/internal/workloads"
)

// tinyMetricsConfig is a fast configuration for metrics-layer tests.
func tinyMetricsConfig() Config {
	cfg := ACCORD(2)
	cfg.Scale = 8192
	cfg.Cores = 4
	cfg.WarmupInstr = 50_000
	cfg.MeasureInstr = 50_000
	return cfg
}

// TestResultMetricsMatchStats is the single-source-of-truth contract:
// the exported snapshot must agree exactly with the Result fields the
// plain-text tables are rendered from, because both read the same
// component counters.
func TestResultMetricsMatchStats(t *testing.T) {
	cfg := tinyMetricsConfig()
	res := New(cfg, workloads.MustGet("libquantum", cfg.Cores)).Run("libquantum")
	if res.Metrics == nil {
		t.Fatal("Result.Metrics not populated")
	}
	snap := res.Metrics.Final

	if got := snap.Counter("l4.reads"); got != res.L4.Reads {
		t.Errorf("l4.reads = %d, want %d", got, res.L4.Reads)
	}
	if got := snap.Counter("l4.read_hits"); got != res.L4.ReadHits {
		t.Errorf("l4.read_hits = %d, want %d", got, res.L4.ReadHits)
	}
	if got := snap.Counter("hbm.reads"); got != res.HBM.Reads {
		t.Errorf("hbm.reads = %d, want %d", got, res.HBM.Reads)
	}
	if got := snap.Counter("pcm.reads"); got != res.PCM.Reads {
		t.Errorf("pcm.reads = %d, want %d", got, res.PCM.Reads)
	}
	if hr, ok := snap.Gauge("l4.hit_rate_pct"); !ok || hr != 100*res.HitRate() {
		t.Errorf("l4.hit_rate_pct = %v,%v, want %v", hr, ok, 100*res.HitRate())
	}
	if acc, ok := snap.Gauge("l4.prediction_accuracy_pct"); !ok || acc != 100*res.Accuracy() {
		t.Errorf("l4.prediction_accuracy_pct = %v,%v, want %v", acc, ok, 100*res.Accuracy())
	}
	if ipc, ok := snap.Gauge("cpu.mean_ipc"); !ok || ipc != res.MeanIPC() {
		t.Errorf("cpu.mean_ipc = %v,%v, want %v", ipc, ok, res.MeanIPC())
	}
	hl, ok := snap.Get("l4.hit_latency")
	if !ok || hl.Count != res.L4.HitLatency.Count {
		t.Errorf("l4.hit_latency count = %d, want %d", hl.Count, res.L4.HitLatency.Count)
	}
	if hl.Sum != float64(res.L4.HitLatency.Sum) {
		t.Errorf("l4.hit_latency sum = %g, want %d", hl.Sum, res.L4.HitLatency.Sum)
	}
	// ACCORD's policy metrics are present for this config.
	if _, ok := snap.Get("policy.rlt_hits"); !ok {
		t.Error("policy metrics not registered for the ACCORD config")
	}
	// No epoch sampling requested: no series.
	if res.Metrics.Series != nil {
		t.Error("series present without EpochInstr")
	}
}

// TestEpochSeries checks the time-series sampler: samples appear at the
// configured cadence, are monotone in both clocks and in every counter,
// and never perturb the simulation itself.
func TestEpochSeries(t *testing.T) {
	base := tinyMetricsConfig()
	plain := New(base, workloads.MustGet("libquantum", base.Cores)).Run("libquantum")

	cfg := tinyMetricsConfig()
	cfg.EpochInstr = 40_000
	res := New(cfg, workloads.MustGet("libquantum", cfg.Cores)).Run("libquantum")

	if res.Metrics.Series == nil {
		t.Fatal("EpochInstr set but no series exported")
	}
	sd := res.Metrics.Series
	if sd.EveryInstr != cfg.EpochInstr {
		t.Errorf("series epoch = %d, want %d", sd.EveryInstr, cfg.EpochInstr)
	}
	if len(sd.Samples) < 2 {
		t.Fatalf("only %d samples; want >= 2", len(sd.Samples))
	}
	var prevInstr, prevCycles int64
	var prevReads uint64
	for i, smp := range sd.Samples {
		if smp.Epoch != i {
			t.Errorf("sample %d has epoch %d", i, smp.Epoch)
		}
		if smp.Instructions <= prevInstr || smp.Cycles < prevCycles {
			t.Errorf("sample %d clocks not monotone: instr %d->%d cycles %d->%d",
				i, prevInstr, smp.Instructions, prevCycles, smp.Cycles)
		}
		reads := (metrics.Snapshot{Values: smp.Values}).Counter("l4.reads")
		if reads < prevReads {
			t.Errorf("sample %d: l4.reads decreased %d -> %d", i, prevReads, reads)
		}
		prevInstr, prevCycles, prevReads = smp.Instructions, smp.Cycles, reads
	}
	// The final snapshot caps the series.
	if final := res.Metrics.Final.Counter("l4.reads"); final < prevReads {
		t.Errorf("final l4.reads %d below last sample %d", final, prevReads)
	}

	// Passivity: sampling must not change any simulated outcome.
	if res.MeanIPC() != plain.MeanIPC() || res.L4.Reads != plain.L4.Reads ||
		res.Cycles != plain.Cycles || res.HitRate() != plain.HitRate() {
		t.Error("epoch sampling perturbed the simulation")
	}
}
