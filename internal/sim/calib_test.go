package sim

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"accord/internal/workloads"
)

// TestCalibration prints per-workload hit rates across associativities.
// Run manually: go test ./internal/sim/ -run TestCalibration -v -calib
func TestCalibration(t *testing.T) {
	if os.Getenv("ACCORD_CALIB") == "" {
		t.Skip("calibration diagnostic; set ACCORD_CALIB=1 to run")
	}
	names := workloads.CoreSuite()
	type row struct {
		name                 string
		dm, w2, w4, w8, acc2 float64
		accur, ipc           float64
	}
	rows := make([]row, len(names))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			run := func(cfg Config) Result {
				cfg.WarmupInstr = 2_000_000
				cfg.MeasureInstr = 2_000_000
				wl := workloads.MustGet(name, cfg.Cores)
				return New(cfg, wl).Run(name)
			}
			dm := run(DirectMapped())
			w2 := run(Idealized(2))
			w4 := run(Idealized(4))
			w8 := run(Idealized(8))
			a2 := run(ACCORD(2))
			rows[i] = row{name, dm.HitRate(), w2.HitRate(), w4.HitRate(), w8.HitRate(), a2.HitRate(), a2.Accuracy(), dm.MeanIPC()}
		}(i, name)
	}
	wg.Wait()
	var sdm, s2, s4, s8 float64
	for _, r := range rows {
		fmt.Printf("%-12s dm=%.3f 2w=%.3f 4w=%.3f 8w=%.3f acc2hit=%.3f wpacc=%.3f ipc=%.3f\n",
			r.name, r.dm, r.w2, r.w4, r.w8, r.acc2, r.accur, r.ipc)
		sdm += r.dm
		s2 += r.w2
		s4 += r.w4
		s8 += r.w8
	}
	n := float64(len(rows))
	fmt.Printf("AVG          dm=%.3f 2w=%.3f 4w=%.3f 8w=%.3f   (paper: .742 .775 ~.79 .797)\n", sdm/n, s2/n, s4/n, s8/n)
}
