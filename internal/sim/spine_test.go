package sim

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"accord/internal/workloads"
)

// latticeCfg points cfg at a spine checkpoint lattice directory. Stride 1
// pins dense saves so fully-warm re-runs are deterministic (the automatic
// stride would also resolve to 1 at test blob sizes, but the tests should
// not depend on that).
func latticeCfg(cfg Config, dir string) Config {
	cfg.SpineCheckpointDir = dir
	cfg.SpineStride = 1
	return cfg
}

// TestSpineLatticeResumedMatchesCold is the tentpole equivalence gate for
// the checkpoint lattice: for every L4 organization, single- and
// multi-core, with and without early stopping, a run that populates the
// lattice and a run that resumes from it must both reproduce the plain
// cold run exactly — same Result, same exported metrics JSON, and
// byte-identical final functional state — across worker counts (a lattice
// written at one worker count is read at another). Run under -race the
// suite also proves the background writer shares no state it shouldn't.
func TestSpineLatticeResumedMatchesCold(t *testing.T) {
	const wlName = "libquantum"
	for _, cores := range []int{1, 2} {
		for _, earlyStop := range []bool{false, true} {
			for _, cfg := range parallelCases(cores, earlyStop) {
				cfg := cfg
				name := fmt.Sprintf("%s-%dc-stop=%t", cfg.Name, cores, earlyStop)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					wl := traceWorkload(wlName, cfg)
					dir := t.TempDir()

					coldRes, coldJS, coldState, coldWork := runSampledWorkers(t, cfg, wl, wlName, 2)
					if coldWork.LatticeHits != 0 || coldWork.LatticeMisses != 0 {
						t.Fatalf("no-lattice run counted lattice traffic: %+v", coldWork)
					}

					popRes, popJS, popState, popWork := runSampledWorkers(t, latticeCfg(cfg, dir), wl, wlName, 2)
					if !reflect.DeepEqual(coldRes, popRes) {
						t.Errorf("populating run Result diverged from cold\ncold sampled: %+v\npop sampled: %+v",
							coldRes.Sampled, popRes.Sampled)
					}
					if !bytes.Equal(coldJS, popJS) {
						t.Errorf("populating run metrics JSON diverged from cold")
					}
					if !bytes.Equal(coldState, popState) {
						t.Errorf("populating run final state diverged from cold (%d vs %d bytes)",
							len(coldState), len(popState))
					}
					if popWork.LatticeHits != 0 {
						t.Errorf("populating run hit an empty lattice: %+v", popWork)
					}
					if popWork.LatticeMisses == 0 {
						t.Errorf("populating run probed nothing: %+v", popWork)
					}

					for _, workers := range []int{1, 2, 3} {
						res, js, state, work := runSampledWorkers(t, latticeCfg(cfg, dir), wl, wlName, workers)
						if !reflect.DeepEqual(coldRes, res) {
							t.Errorf("workers=%d: resumed Result diverged from cold\ncold sampled: %+v\nwarm sampled: %+v",
								workers, coldRes.Sampled, res.Sampled)
						}
						if !bytes.Equal(coldJS, js) {
							t.Errorf("workers=%d: resumed metrics JSON diverged from cold", workers)
						}
						if !bytes.Equal(coldState, state) {
							t.Errorf("workers=%d: resumed final state diverged from cold (%d vs %d bytes)",
								workers, len(coldState), len(state))
						}
						if work.LatticeHits == 0 {
							t.Errorf("workers=%d: resumed run never hit the lattice: %+v", workers, work)
						}
						// Without early stopping the boundary set is fixed, so a
						// populated lattice must serve every probe. (Early-stopped
						// resumed spines can race past the boundaries the slower
						// populating spine reached before its stop — those probes
						// miss and fall back cold, which the equality checks above
						// prove is harmless.)
						if !earlyStop && work.LatticeMisses != 0 {
							t.Errorf("workers=%d: fully-populated lattice missed %d of %d probes",
								workers, work.LatticeMisses, work.LatticeHits+work.LatticeMisses)
						}
					}
				})
			}
		}
	}
}

// TestSpineLatticeMeasureKnobsExcluded pins the key-exclusion contract:
// MeasureInstr (and the other measurement-only knobs) are not part of the
// spine fingerprint, so a lattice populated by a long run serves a
// shorter run over the same trajectory — the shorter run's boundaries are
// a prefix of the longer run's.
func TestSpineLatticeMeasureKnobsExcluded(t *testing.T) {
	const wlName = "libquantum"
	long := parallelCases(2, false)[1] // accord-2way, 6 planned intervals
	short := long
	short.MeasureInstr = 150_000 // 3 planned intervals, same geometry
	wl := traceWorkload(wlName, long)
	dir := t.TempDir()

	runSampledWorkers(t, latticeCfg(long, dir), wl, wlName, 2)
	coldRes, coldJS, coldState, _ := runSampledWorkers(t, short, wl, wlName, 2)
	res, js, state, work := runSampledWorkers(t, latticeCfg(short, dir), wl, wlName, 2)
	if work.LatticeHits != 3 || work.LatticeMisses != 0 {
		t.Errorf("short resumed run hit %d / missed %d, want 3 prefix hits and 0 misses",
			work.LatticeHits, work.LatticeMisses)
	}
	if !reflect.DeepEqual(coldRes, res) || !bytes.Equal(coldJS, js) || !bytes.Equal(coldState, state) {
		t.Errorf("short run resumed from the long run's lattice diverged from its own cold run")
	}
}

// TestSpineLatticeEngineExcluded proves the engine toggle is excluded
// from the spine key: a lattice populated under the specialized engine is
// fully warm under the generic engine, and the resumed generic run
// matches a cold generic run exactly. Mutates the global engine toggle,
// so no t.Parallel.
func TestSpineLatticeEngineExcluded(t *testing.T) {
	const wlName = "libquantum"
	cfg := parallelCases(2, false)[5] // tdram-2way
	wl := traceWorkload(wlName, cfg)
	dir := t.TempDir()

	runSampledWorkers(t, latticeCfg(cfg, dir), wl, wlName, 2)

	UseGenericEngine(true)
	defer UseGenericEngine(false)
	coldRes, coldJS, coldState, _ := runSampledWorkers(t, cfg, wl, wlName, 2)
	res, js, state, work := runSampledWorkers(t, latticeCfg(cfg, dir), wl, wlName, 2)
	if work.LatticeHits == 0 || work.LatticeMisses != 0 {
		t.Errorf("generic-engine resume of a specialized-engine lattice hit %d / missed %d, want all hits",
			work.LatticeHits, work.LatticeMisses)
	}
	if !reflect.DeepEqual(coldRes, res) || !bytes.Equal(coldJS, js) || !bytes.Equal(coldState, state) {
		t.Errorf("generic-engine resumed run diverged from generic-engine cold run")
	}
}

// TestSpineLatticeStaleGeometry pins the stale-lattice contract: changing
// the interval geometry moves every key, so a lattice populated under the
// old geometry can only miss — the new-geometry run is correct and
// entirely cold, never restored into the wrong trajectory.
func TestSpineLatticeStaleGeometry(t *testing.T) {
	const wlName = "libquantum"
	oldCfg := parallelCases(2, false)[1]
	newCfg := oldCfg
	newCfg.Sampling.Period = 60_000 // 5 planned intervals at new boundaries
	wl := traceWorkload(wlName, oldCfg)
	dir := t.TempDir()

	runSampledWorkers(t, latticeCfg(oldCfg, dir), wl, wlName, 2)
	coldRes, coldJS, coldState, _ := runSampledWorkers(t, newCfg, wl, wlName, 2)
	res, js, state, work := runSampledWorkers(t, latticeCfg(newCfg, dir), wl, wlName, 2)
	if work.LatticeHits != 0 {
		t.Errorf("stale lattice produced %d hits under a changed geometry, want 0", work.LatticeHits)
	}
	if work.LatticeMisses == 0 {
		t.Errorf("stale-lattice run probed nothing")
	}
	if !reflect.DeepEqual(coldRes, res) || !bytes.Equal(coldJS, js) || !bytes.Equal(coldState, state) {
		t.Errorf("run against a stale lattice diverged from its cold run")
	}
}

// TestSpineLatticeCorruptionFallsBackCold damages every file of a
// populated lattice store two ways — byte flips and truncation — and
// requires the resumed run to fall back to a fully cold run with zero
// hits and an unchanged result. Together with the codec-level sweeps in
// internal/ckpt, this is the end-to-end adversarial gate: no store damage
// may panic or change simulation output.
func TestSpineLatticeCorruptionFallsBackCold(t *testing.T) {
	const wlName = "libquantum"
	cfg := parallelCases(2, false)[3] // banshee
	wl := traceWorkload(wlName, cfg)
	coldRes, coldJS, coldState, _ := runSampledWorkers(t, cfg, wl, wlName, 2)

	corrupt := func(t *testing.T, damage func([]byte) []byte) {
		dir := t.TempDir()
		runSampledWorkers(t, latticeCfg(cfg, dir), wl, wlName, 2)
		n := 0
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			blob, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			if err := os.WriteFile(path, damage(blob), 0o644); err != nil {
				return err
			}
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("corrupting store: %v", err)
		}
		if n == 0 {
			t.Fatalf("populated lattice store holds no files")
		}
		res, js, state, work := runSampledWorkers(t, latticeCfg(cfg, dir), wl, wlName, 2)
		if work.LatticeHits != 0 {
			t.Errorf("corrupted lattice produced %d hits, want 0", work.LatticeHits)
		}
		if !reflect.DeepEqual(coldRes, res) || !bytes.Equal(coldJS, js) || !bytes.Equal(coldState, state) {
			t.Errorf("run against a corrupted lattice diverged from the cold run")
		}
	}

	t.Run("bitflip", func(t *testing.T) {
		corrupt(t, func(b []byte) []byte {
			if len(b) > 0 {
				b[len(b)/2] ^= 0x40
			}
			return b
		})
	})
	t.Run("truncated", func(t *testing.T) {
		corrupt(t, func(b []byte) []byte { return b[:len(b)/2] })
	})
}

// TestSpineLatticeStride pins the stride contract: SpineStride N saves
// every Nth boundary, so a resumed run hits exactly those and recomputes
// the rest — still byte-identical to cold. Covers both the in-place
// single-core driver (snapshots exist only because the stride selects
// them) and the forking multi-core driver.
func TestSpineLatticeStride(t *testing.T) {
	const wlName = "libquantum"
	for _, cores := range []int{1, 2} {
		cores := cores
		t.Run(fmt.Sprintf("%dc", cores), func(t *testing.T) {
			t.Parallel()
			cfg := parallelCases(cores, false)[1] // accord-2way, 6 planned intervals
			wl := traceWorkload(wlName, cfg)
			coldRes, coldJS, coldState, _ := runSampledWorkers(t, cfg, wl, wlName, 1)

			dir := t.TempDir()
			strided := latticeCfg(cfg, dir)
			strided.SpineStride = 2
			runSampledWorkers(t, strided, wl, wlName, 1)
			res, js, state, work := runSampledWorkers(t, strided, wl, wlName, 1)
			if work.LatticeHits != 3 || work.LatticeMisses != 3 {
				t.Errorf("stride-2 resume hit %d / missed %d over 6 boundaries, want 3/3",
					work.LatticeHits, work.LatticeMisses)
			}
			if !reflect.DeepEqual(coldRes, res) || !bytes.Equal(coldJS, js) || !bytes.Equal(coldState, state) {
				t.Errorf("stride-2 resumed run diverged from cold")
			}
		})
	}
}

// TestSpineLatticeNonForkableDegrades pins the degradation path: a
// system that cannot snapshot its workload (pre-built Streams override)
// silently runs without the lattice — one worker, no lattice traffic, no
// store files — instead of failing or saving unusable state.
func TestSpineLatticeNonForkableDegrades(t *testing.T) {
	cfg := parallelCases(1, false)[0]
	gen := workloads.MustGet("libquantum", cfg.Cores)
	streams := make([]workloads.Stream, len(gen.Specs))
	for i, spec := range gen.Specs {
		streams[i] = workloads.NewStream(spec, cfg.AnchorLines(), cfg.Cores, cfg.Seed)
	}
	fixed := gen
	fixed.Streams = streams

	dir := t.TempDir()
	res, _, _, work := runSampledWorkers(t, latticeCfg(cfg, dir), fixed, "libquantum", 4)
	if work.Workers != 1 {
		t.Errorf("non-forkable lattice run resolved %d workers, want 1", work.Workers)
	}
	if work.LatticeHits != 0 || work.LatticeMisses != 0 {
		t.Errorf("non-forkable run touched the lattice: %+v", work)
	}
	if res.Sampled == nil || res.Sampled.Intervals == 0 {
		t.Errorf("degraded run produced no intervals")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("non-forkable run created %d store entries, want an untouched directory", len(entries))
	}
}

// TestSpineKeyGeometry pins what SpineKey covers: measurement knobs move
// nothing, geometry and warmup move everything.
func TestSpineKeyGeometry(t *testing.T) {
	base := parallelCases(2, false)[1]
	wl := traceWorkload("libquantum", base)
	key := func(cfg Config) string {
		return New(cfg, wl).SpineKey("libquantum", 3)
	}
	ref := key(base)

	same := base
	same.MeasureInstr *= 2
	same.Sampling.TargetCI = 0.25
	same.SampleWorkers = 7
	same.SpineCheckpointDir = "/elsewhere"
	same.SpineStride = 4
	if key(same) != ref {
		t.Errorf("measurement-only knobs moved the spine key")
	}

	for name, mut := range map[string]func(*Config){
		"period":  func(c *Config) { c.Sampling.Period += 10_000 },
		"warmlen": func(c *Config) { c.Sampling.WarmLen += 1_000 },
		"detail":  func(c *Config) { c.Sampling.DetailLen += 1_000 },
		"warmup":  func(c *Config) { c.WarmupInstr += 10_000 },
		"seed":    func(c *Config) { c.Seed++ },
	} {
		cfg := base
		mut(&cfg)
		if key(cfg) == ref {
			t.Errorf("%s change did not move the spine key", name)
		}
	}
}

// BenchmarkSpineResume measures what the lattice buys on a sampled run
// with the gigascale example's interval geometry (7.5% of each period
// detailed, the regime SMARTS sampling targets), scaled down to bench
// size. Four legs:
//
//   - cold: no lattice, the baseline.
//   - populate: cold run saving boundaries at the automatic stride (the
//     default configuration's population overhead; on a single-CPU host
//     the background writer shares the core, so this is an upper bound).
//   - populate-dense: cold run saving every boundary (stride 1), what a
//     run that expects repeats pays.
//   - resumed: fully-warm re-run off the dense lattice, where the spine
//     degenerates to probe+restore.
//
// All legs produce byte-identical results
// (TestSpineLatticeResumedMatchesCold), so cold/resumed is pure
// execution speedup. The stream is recorded once off the clock.
func BenchmarkSpineResume(b *testing.B) {
	cfg := ACCORD(2)
	cfg.Scale = 8192
	cfg.Cores = 4
	cfg.DisableAdaptiveBudgets = true
	cfg.WarmupInstr = 100_000
	cfg.MeasureInstr = 6_400_000
	cfg.Seed = 1
	cfg.Sampling = SamplingConfig{
		Period:       800_000,
		DetailLen:    40_000,
		WarmLen:      20_000,
		MinIntervals: 2,
	}
	cfg.SampleWorkers = 1
	gen := workloads.MustGet("libquantum", cfg.Cores)
	tc := workloads.NewTraceCache(1 << 30)
	wl := gen
	wl.Source = tc.Source(gen.Specs, cfg.AnchorLines(), cfg.Seed)

	// Record the stream and populate the warm lattice once, off the clock.
	warmDir := b.TempDir()
	New(latticeCfg(cfg, warmDir), wl).Run("libquantum")

	run := func(b *testing.B, cfg Config) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if res := New(cfg, wl).Run("libquantum"); res.Instructions == 0 {
				b.Fatal("run retired no instructions")
			}
		}
	}
	populate := func(b *testing.B, stride int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir, err := os.MkdirTemp("", "spine-bench")
			if err != nil {
				b.Fatal(err)
			}
			c := latticeCfg(cfg, dir)
			c.SpineStride = stride
			b.StartTimer()
			if res := New(c, wl).Run("libquantum"); res.Instructions == 0 {
				b.Fatal("run retired no instructions")
			}
			b.StopTimer()
			os.RemoveAll(dir)
			b.StartTimer()
		}
	}
	b.Run("cold", func(b *testing.B) { run(b, cfg) })
	b.Run("populate", func(b *testing.B) { populate(b, 0) })
	b.Run("populate-dense", func(b *testing.B) { populate(b, 1) })
	b.Run("resumed", func(b *testing.B) { run(b, latticeCfg(cfg, warmDir)) })
}
