package sim

import (
	"math"

	"accord/internal/metrics"
	"accord/internal/stats"
)

// Registry exposes the system's metrics registry for inspection; its
// final snapshot also travels with every Result.
func (s *System) Registry() *metrics.Registry { return s.reg }

// registerMetrics wires every assembled component into the system
// registry. All registrations are views over the components' live
// counters — the hot path never touches the registry — so the plain-text
// tables (rendered from the same counters) and the JSON/CSV export
// cannot diverge.
func (s *System) registerMetrics() {
	r := s.reg

	// DRAM cache (L4), including latency histograms, derived rates, and —
	// for backends with an attached policy that reports anything (GWS
	// table behavior) — the policy's own metrics. Registration is part of
	// the backend contract, so no type switching happens here.
	s.l4.RegisterMetrics(r, "l4")

	// Memory devices on both sides of the cache.
	s.hbm.RegisterMetrics(r, "hbm")
	s.pcm.RegisterMetrics(r, "pcm")

	// Shared L3, only materialized in full-hierarchy mode.
	if s.l3 != nil {
		s.l3.RegisterMetrics(r, "l3")
	}

	// Core aggregates. The counters are cumulative over the whole run;
	// the window gauges cover the measured window (and are what epoch
	// samples track over time).
	r.CounterFunc("cpu.reads", "demand reads issued by all cores", func() uint64 {
		var n uint64
		for _, c := range s.cores {
			reads, _, _, _ := c.Counters()
			n += reads
		}
		return n
	})
	r.CounterFunc("cpu.writes", "writebacks issued by all cores", func() uint64 {
		var n uint64
		for _, c := range s.cores {
			_, writes, _, _ := c.Counters()
			n += writes
		}
		return n
	})
	r.CounterFunc("cpu.dep_stalls", "cycles lost to dependent-load serialization", func() uint64 {
		var n uint64
		for _, c := range s.cores {
			_, _, dep, _ := c.Counters()
			n += dep
		}
		return n
	})
	r.CounterFunc("cpu.mshr_stalls", "issue stalls on a full MSHR file", func() uint64 {
		var n uint64
		for _, c := range s.cores {
			_, _, _, mshr := c.Counters()
			n += mshr
		}
		return n
	})
	r.GaugeFunc("cpu.window_instructions", "instructions retired in the measured window, all cores", func() float64 {
		var n int64
		for _, c := range s.cores {
			n += c.WindowInstructions()
		}
		return float64(n)
	})
	r.GaugeFunc("cpu.window_cycles", "longest per-core measured window, cycles", func() float64 {
		var n int64
		for _, c := range s.cores {
			if wc := c.WindowCycles(); wc > n {
				n = wc
			}
		}
		return float64(n)
	})
	r.GaugeFunc("cpu.mean_ipc", "arithmetic mean of per-core IPC (absent before any cycle elapses)", func() float64 {
		return s.meanIPC()
	})

	// Interval-sampling estimates (absent until a sampled run finishes).
	if s.cfg.Sampling.Enabled() {
		s.registerSamplingMetrics()
	}

	// System-level bandwidth-bloat ratio (the paper's Figure 13 metric):
	// DRAM-cache device bytes moved per byte of demand data. Defined via
	// the NaN-or-ok form so an untouched system exports "absent", not 0.
	r.GaugeFunc("system.l4_bytes_per_demand_byte", "DRAM-cache device traffic per demand byte (absent before any read)", func() float64 {
		hs := s.hbm.Stats()
		demand := float64(s.l4.Stats().Reads) * 64
		return stats.NaNIfUndefined(stats.RatioOK(float64(hs.BytesRead+hs.BytesWritten), demand))
	})
}

// meanIPC is the cpu.mean_ipc gauge: once the measurement window has
// closed it returns exactly Result.MeanIPC; mid-run (epoch samples) it
// returns the mean of the cores' live window IPCs.
func (s *System) meanIPC() float64 {
	if s.resIPC != nil {
		return Result{IPC: s.resIPC}.MeanIPC()
	}
	sum, n := 0.0, 0
	for _, c := range s.cores {
		if cyc := c.WindowCycles(); cyc > 0 {
			sum += float64(c.WindowInstructions()) / float64(cyc)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
