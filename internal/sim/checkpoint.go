package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"accord/internal/ckpt"
	"accord/internal/cpu"
	"accord/internal/workloads"
)

// snapshotMagic opens every warm-state snapshot blob.
const snapshotMagic = "ACRDSNAP"

// SnapshotSchema is the warm-state snapshot format version. Bump it
// whenever ANY component encoding changes — it participates in both the
// store key and the blob header, so stale checkpoints are invalidated
// twice over (the key no longer matches, and a blob reached through a
// collision is rejected on decode).
//
// Schema 2: workload generator snapshots gained the event count
// (generatorVersion 2), making them interchangeable with trace-cache
// replay cursors.
//
// Schema 3: the warm fingerprint gained the L4 backend name (the
// pluggable-organization registry), so keys from schema 2 stores can
// never alias the new format.
const SnapshotSchema = 3

// SnapshotSchemaID returns a stable identifier for the snapshot schema,
// used by CI to key the checkpoint-store cache.
func SnapshotSchemaID() string {
	return fmt.Sprintf("accord-ckpt-v%d", SnapshotSchema)
}

// WarmFingerprint describes everything that determines the system state
// at the warmup/measure boundary: the schema, the workload, the
// L4 organization (Name plus StorageBytes, which captures table-size
// sweeps that share a name), and every warmup-affecting Config field.
//
// Deliberately excluded:
//   - Name: a label; two configs that differ only in Name warm
//     identically and share a checkpoint.
//   - MeasureInstr: consumed strictly after the boundary.
//   - EpochInstr: sampling is passive and starts at the boundary.
//   - Sampling: interval sampling only changes how the measured phase is
//     executed; the warm state it needs is the same one.
func (s *System) WarmFingerprint(wlName string) string {
	c := s.cfg
	return fmt.Sprintf("%s|wl=%s|l4=%s/%d|backend=%s|cores=%d|iw=%d|mshrs=%d|ghz=%g|sram=%d|"+
		"scale=%d|l4cap=%d|ways=%d|lookup=%d|lru=%t|ca=%t|hier=%t|"+
		"nvmcap=%d|anchor=%d|hbm=%+v|pcm=%+v|warm=%d|noadapt=%t|seed=%d",
		SnapshotSchemaID(), wlName, s.l4.Name(), s.l4.StorageBytes(), c.BackendName(),
		c.Cores, c.IssueWidth, c.MSHRs, c.CPUGHz, c.SRAMLat,
		c.Scale, c.L4CapacityFull, c.Ways, c.Lookup, c.LRUReplacement, c.UseCA,
		c.FullHierarchy, c.NVMCapacityFull, c.WorkloadAnchorLines,
		c.HBM, c.PCM, c.WarmupInstr, c.DisableAdaptiveBudgets, c.Seed)
}

// WarmKey digests the fingerprint into the content-addressed store key.
func (s *System) WarmKey(wlName string) string {
	sum := sha256.Sum256([]byte(s.WarmFingerprint(wlName)))
	return hex.EncodeToString(sum[:])
}

// Snapshot serializes the complete warm state of the system: every
// component a measured run reads or mutates. It must be called exactly
// at the warmup/measure boundary (after RunWarmup, before RunMeasure);
// the embedded fingerprint documents the configuration the state belongs
// to and is re-verified on Restore.
func (s *System) Snapshot(wlName string) ([]byte, error) {
	e := ckpt.NewEncoder(1 << 20)
	e.Raw([]byte(snapshotMagic))
	e.U32(SnapshotSchema)
	e.String(s.WarmFingerprint(wlName))
	s.vmsys.Snapshot(e)
	// Snapshot is part of the backend contract, but it may still fail —
	// an nway cache whose policy lacks checkpoint support cannot be
	// serialized — and the caller falls back to a cold run.
	if err := s.l4.Snapshot(e); err != nil {
		return nil, err
	}
	s.hbm.Snapshot(e)
	s.pcm.Snapshot(e)
	e.U32(uint32(len(s.cores)))
	for _, c := range s.cores {
		if err := c.Snapshot(e); err != nil {
			return nil, err
		}
	}
	e.Bool(s.cfg.FullHierarchy)
	if s.cfg.FullHierarchy {
		s.l3.Snapshot(e)
		for _, h := range s.hiers {
			h.Snapshot(e)
		}
	}
	return e.Finish(), nil
}

// FunctionalSnapshot serializes exactly the state functional
// fast-forwarding defines: the VM system (page tables, frame allocator,
// RNG), the L4 organization (tags, dirty bits, LRU stamps, policy tables
// + RNG + diagnostic counters; its stats section is zero at the warmup
// boundary in both modes), the functional core subset (retired
// instructions, issue carry, event-mix counters, stream cursor), and —
// in full-hierarchy mode — the SRAM caches. Timing state (core clocks,
// MSHR completion times, DRAM row buffers and busy intervals) is
// excluded: a functional and a detailed run of the same events disagree
// on it by construction. The differential tests compare these bytes
// across the two modes at the warmup boundary.
func (s *System) FunctionalSnapshot(wlName string) ([]byte, error) {
	e := ckpt.NewEncoder(1 << 20)
	e.Raw([]byte(snapshotMagic))
	e.U32(SnapshotSchema)
	e.String(s.WarmFingerprint(wlName))
	s.vmsys.Snapshot(e)
	if err := s.l4.Snapshot(e); err != nil {
		return nil, err
	}
	e.U32(uint32(len(s.cores)))
	for _, c := range s.cores {
		if err := c.FunctionalSnapshot(e); err != nil {
			return nil, err
		}
	}
	e.Bool(s.cfg.FullHierarchy)
	if s.cfg.FullHierarchy {
		s.l3.Snapshot(e)
		for _, h := range s.hiers {
			h.Snapshot(e)
		}
	}
	return e.Finish(), nil
}

// Restore loads a warm-state snapshot into a freshly constructed system
// (same Config, same workload). On error the system is left in an
// unspecified state and must be discarded; the caller falls back to a
// cold run. Adversarial input cannot panic: every length is bounded and
// every section validates its shape against the constructed system.
func (s *System) Restore(blob []byte, wlName string) error {
	d, err := ckpt.NewDecoderChecked(blob)
	if err != nil {
		return err
	}
	if magic := d.Raw(len(snapshotMagic)); d.Err() == nil && string(magic) != snapshotMagic {
		d.Failf("sim: bad snapshot magic %q", magic)
	}
	if schema := d.U32(); d.Err() == nil && schema != SnapshotSchema {
		d.Failf("sim: snapshot schema %d, want %d", schema, SnapshotSchema)
	}
	if fp := d.String(); d.Err() == nil && fp != s.WarmFingerprint(wlName) {
		d.Failf("sim: snapshot fingerprint mismatch:\n  have %s\n  want %s", fp, s.WarmFingerprint(wlName))
	}
	if err := d.Err(); err != nil {
		return err
	}
	if err := s.vmsys.Restore(d); err != nil {
		return err
	}
	if err := s.l4.Restore(d); err != nil {
		return err
	}
	if err := s.hbm.Restore(d); err != nil {
		return err
	}
	if err := s.pcm.Restore(d); err != nil {
		return err
	}
	if n := d.U32(); d.Err() == nil && int(n) != len(s.cores) {
		d.Failf("sim: snapshot has %d cores, system has %d", n, len(s.cores))
	}
	if err := d.Err(); err != nil {
		return err
	}
	for _, c := range s.cores {
		if err := c.Restore(d); err != nil {
			return err
		}
	}
	if hier := d.Bool(); d.Err() == nil && hier != s.cfg.FullHierarchy {
		d.Failf("sim: snapshot hierarchy=%t, config hierarchy=%t", hier, s.cfg.FullHierarchy)
	}
	if err := d.Err(); err != nil {
		return err
	}
	if s.cfg.FullHierarchy {
		if err := s.l3.Restore(d); err != nil {
			return err
		}
		for _, h := range s.hiers {
			if err := h.Restore(d); err != nil {
				return err
			}
		}
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("sim: %d trailing bytes after snapshot", d.Remaining())
	}
	return nil
}

// RestoreFunctional loads a FunctionalSnapshot blob into a system of the
// same Config and workload, then resets the interval-start timing state
// — the snapshot deliberately omits timing, and every consumer (interval
// forks, the sequential fork protocol, final-state canonicalization)
// wants the canonical fresh-timing condition, so the reset is part of
// the restore contract. On error the system state is unspecified and
// must be discarded.
func (s *System) RestoreFunctional(blob []byte, wlName string) error {
	d, err := ckpt.NewDecoderChecked(blob)
	if err != nil {
		return err
	}
	if magic := d.Raw(len(snapshotMagic)); d.Err() == nil && string(magic) != snapshotMagic {
		d.Failf("sim: bad snapshot magic %q", magic)
	}
	if schema := d.U32(); d.Err() == nil && schema != SnapshotSchema {
		d.Failf("sim: snapshot schema %d, want %d", schema, SnapshotSchema)
	}
	if fp := d.String(); d.Err() == nil && fp != s.WarmFingerprint(wlName) {
		d.Failf("sim: snapshot fingerprint mismatch:\n  have %s\n  want %s", fp, s.WarmFingerprint(wlName))
	}
	if err := d.Err(); err != nil {
		return err
	}
	if err := s.vmsys.Restore(d); err != nil {
		return err
	}
	if err := s.l4.Restore(d); err != nil {
		return err
	}
	if n := d.U32(); d.Err() == nil && int(n) != len(s.cores) {
		d.Failf("sim: snapshot has %d cores, system has %d", n, len(s.cores))
	}
	if err := d.Err(); err != nil {
		return err
	}
	for _, c := range s.cores {
		if err := c.RestoreFunctional(d); err != nil {
			return err
		}
	}
	if hier := d.Bool(); d.Err() == nil && hier != s.cfg.FullHierarchy {
		d.Failf("sim: snapshot hierarchy=%t, config hierarchy=%t", hier, s.cfg.FullHierarchy)
	}
	if err := d.Err(); err != nil {
		return err
	}
	if s.cfg.FullHierarchy {
		if err := s.l3.Restore(d); err != nil {
			return err
		}
		for _, h := range s.hiers {
			if err := h.Restore(d); err != nil {
				return err
			}
		}
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("sim: %d trailing bytes after functional snapshot", d.Remaining())
	}
	s.resetIntervalState()
	return nil
}

// RunInfo reports how RunWithStoreInfo executed a run: whether a
// warm-state checkpoint skipped warmup, and — for sampled runs — the
// execution split including spine-lattice hit/miss accounting.
type RunInfo struct {
	// Restored is true when a warm-state checkpoint was restored and
	// warmup skipped (exact runs only; sampled runs memoize through the
	// spine lattice instead, reported in Work).
	Restored bool
	// Work is the sampled-run execution split (zero value for exact runs).
	Work SampleWork
}

// RunWithStore runs cfg on wl, consulting store (which may be nil) for a
// warm-state checkpoint: a hit restores the boundary state and skips
// warmup entirely; a miss warms up cold and saves the state for the next
// run. Any checkpoint problem — corrupt blob, stale schema, policy
// without snapshot support — silently degrades to a cold run on a fresh
// system. The restored flag reports whether warmup was skipped.
func RunWithStore(cfg Config, wl workloads.Workload, store *ckpt.Store, wlName string) (res Result, restored bool) {
	res, info := RunWithStoreInfo(cfg, wl, store, wlName)
	return res, info.Restored
}

// RunWithStoreInfo is RunWithStore with execution diagnostics.
func RunWithStoreInfo(cfg Config, wl workloads.Workload, store *ckpt.Store, wlName string) (res Result, info RunInfo) {
	s := New(cfg, wl)
	if cfg.Sampling.Enabled() {
		// Sampled runs warm functionally and never sit at the single
		// detailed warmup/measure boundary a checkpoint captures, so they
		// neither consume nor populate the warm-state store — their
		// memoization path is the spine checkpoint lattice
		// (Config.SpineCheckpointDir), which subsumes warmup skipping.
		// WarmFingerprint deliberately excludes Sampling, so a detailed
		// run of the same config still shares its warm-state key.
		res = s.Run(wlName)
		info.Work = s.SampleWork()
		return res, info
	}
	if store == nil {
		return s.Run(wlName), info
	}
	key := s.WarmKey(wlName)
	if blob, ok, err := store.Load(key); err == nil && ok {
		if err := s.Restore(blob, wlName); err == nil {
			info.Restored = true
			return s.RunMeasure(wlName), info
		}
		// A failed restore leaves component state unspecified; rebuild
		// and fall through to the cold path.
		s = New(cfg, wl)
	}
	s.RunWarmup()
	if blob, err := s.Snapshot(wlName); err == nil {
		// Best-effort: a full disk or read-only store must not fail the run.
		_ = store.Save(key, blob)
	}
	return s.RunMeasure(wlName), info
}

// Cores exposes the assembled cores for tests.
func (s *System) Cores() []*cpu.Core { return s.cores }
