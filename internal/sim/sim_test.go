package sim

import (
	"testing"

	"accord/internal/cache"
	"accord/internal/dramcache"
	"accord/internal/workloads"
)

// quickConfig shrinks the run so unit tests stay fast.
func quickConfig(base Config) Config {
	base.Scale = 4096 // 1 MB model cache
	base.WarmupInstr = 150_000
	base.MeasureInstr = 150_000
	base.Cores = 4
	return base
}

func runQuick(t *testing.T, cfg Config, wl string) Result {
	t.Helper()
	w, err := workloads.Get(wl, cfg.Cores)
	if err != nil {
		t.Fatal(err)
	}
	return New(cfg, w).Run(wl)
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.Scale = 0 },
		func(c *Config) { c.L4CapacityFull = 0 },
		func(c *Config) { c.CPUGHz = 0 },
		func(c *Config) { c.Ways = 0 },
		func(c *Config) { c.MeasureInstr = 0 },
		func(c *Config) { c.WarmupInstr = -1 },
	}
	for i, m := range mutations {
		c := Default()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d passed validation", i)
		}
	}
}

func TestScaledCapacity(t *testing.T) {
	c := Default()
	if c.L4Capacity() != (4<<30)/256 {
		t.Errorf("scaled capacity = %d", c.L4Capacity())
	}
	if c.L4Lines() != uint64(c.L4Capacity()/64) {
		t.Errorf("lines = %d", c.L4Lines())
	}
}

func TestRunProducesSaneResult(t *testing.T) {
	cfg := quickConfig(DirectMapped())
	res := runQuick(t, cfg, "libquantum")
	if len(res.IPC) != cfg.Cores {
		t.Fatalf("IPC entries = %d, want %d", len(res.IPC), cfg.Cores)
	}
	for i, ipc := range res.IPC {
		if ipc <= 0 || ipc > float64(cfg.IssueWidth) {
			t.Errorf("core %d IPC = %v out of (0,%d]", i, ipc, cfg.IssueWidth)
		}
	}
	if res.L4.Reads == 0 {
		t.Error("no L4 reads recorded")
	}
	hr := res.HitRate()
	if hr <= 0 || hr >= 1 {
		t.Errorf("hit rate = %v not in (0,1)", hr)
	}
	// Warmup crossing can overshoot by up to one event's gap per core, so
	// the measured window may fall slightly short of the nominal budget.
	if min := int64(float64(cfg.Cores) * float64(cfg.MeasureInstr) * 0.9); res.Instructions < min {
		t.Errorf("measured %d instructions, want >= %d", res.Instructions, min)
	}
	if res.Cycles <= 0 {
		t.Error("no cycles measured")
	}
	if res.PCM.Reads == 0 {
		t.Error("no NVM traffic; misses must reach main memory")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := quickConfig(ACCORD(2))
	a := runQuick(t, cfg, "gcc")
	b := runQuick(t, cfg, "gcc")
	for i := range a.IPC {
		if a.IPC[i] != b.IPC[i] {
			t.Fatalf("IPC diverged on core %d: %v vs %v", i, a.IPC[i], b.IPC[i])
		}
	}
	if a.L4 != b.L4 {
		t.Error("L4 stats diverged between identical runs")
	}
}

func TestAssociativityImprovesHitRate(t *testing.T) {
	// The foundational Figure 1(a) trend on a conflict-sensitive workload.
	dm := runQuick(t, quickConfig(DirectMapped()), "soplex")
	ideal8 := runQuick(t, quickConfig(Idealized(8)), "soplex")
	if ideal8.HitRate() <= dm.HitRate() {
		t.Errorf("8-way hit rate %.3f not above direct-mapped %.3f",
			ideal8.HitRate(), dm.HitRate())
	}
}

func TestWeightedSpeedup(t *testing.T) {
	a := Result{IPC: []float64{1, 2}}
	b := Result{IPC: []float64{1, 1}}
	if ws := WeightedSpeedup(a, b); ws != 1.5 {
		t.Errorf("weighted speedup = %v, want 1.5", ws)
	}
	if ws := WeightedSpeedup(a, Result{IPC: []float64{1}}); ws != 0 {
		t.Errorf("mismatched cores speedup = %v, want 0", ws)
	}
	if ws := WeightedSpeedup(Result{}, Result{}); ws != 0 {
		t.Errorf("empty speedup = %v, want 0", ws)
	}
	if ws := WeightedSpeedup(a, Result{IPC: []float64{0, 0}}); ws != 0 {
		t.Errorf("zero-baseline speedup = %v, want 0", ws)
	}
}

func TestMeanIPC(t *testing.T) {
	r := Result{IPC: []float64{1, 3}}
	if r.MeanIPC() != 2 {
		t.Errorf("mean = %v", r.MeanIPC())
	}
	if (Result{}).MeanIPC() != 0 {
		t.Error("empty mean not 0")
	}
}

func TestNewPanicsOnBadInputs(t *testing.T) {
	cfg := quickConfig(Default())
	wl := workloads.MustGet("milc", cfg.Cores)

	t.Run("invalid config", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		bad := cfg
		bad.Cores = 0
		New(bad, wl)
	})
	t.Run("core mismatch", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		New(cfg, workloads.MustGet("milc", cfg.Cores+1))
	})
}

func TestConfigCatalog(t *testing.T) {
	cases := []struct {
		cfg  Config
		ways int
	}{
		{DirectMapped(), 1},
		{Parallel(8), 8},
		{Serial(2), 2},
		{Idealized(4), 4},
		{PerfectWP(2), 2},
		{PWS(0.85), 2},
		{GWS(), 2},
		{ACCORD(2), 2},
		{ACCORD(8), 8},
		{MRU(2), 2},
		{PartialTag(2), 2},
		{LRU2Way(), 2},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); err != nil {
			t.Errorf("%s: %v", c.cfg.Name, err)
		}
		if c.cfg.Ways != c.ways {
			t.Errorf("%s: ways = %d, want %d", c.cfg.Name, c.cfg.Ways, c.ways)
		}
		if c.cfg.Name == "" {
			t.Error("config without name")
		}
	}
	ca := CACache()
	if err := ca.Validate(); err != nil || !ca.UseCA {
		t.Errorf("CA config: %v", err)
	}
	if !LRU2Way().LRUReplacement {
		t.Error("LRU2Way without LRU replacement")
	}
}

func TestCACacheRuns(t *testing.T) {
	res := runQuick(t, quickConfig(CACache()), "libquantum")
	if res.L4.Reads == 0 || res.HitRate() <= 0 {
		t.Errorf("CA run produced no sensible stats: %+v", res.L4)
	}
}

func TestACCORDPredictsWell(t *testing.T) {
	// On a high-spatial-locality workload ACCORD's accuracy must be high.
	res := runQuick(t, quickConfig(ACCORD(2)), "libquantum")
	if acc := res.Accuracy(); acc < 0.85 {
		t.Errorf("ACCORD accuracy on libquantum = %.3f, want > 0.85", acc)
	}
}

func TestParallelLookupCostsBandwidth(t *testing.T) {
	par := runQuick(t, quickConfig(Parallel(2)), "soplex")
	if ppr := par.L4.ProbesPerRead(); ppr < 1.99 {
		t.Errorf("parallel 2-way probes/read = %.2f, want ~2", ppr)
	}
	dm := runQuick(t, quickConfig(DirectMapped()), "soplex")
	if ppr := dm.L4.ProbesPerRead(); ppr > 1.01 {
		t.Errorf("direct-mapped probes/read = %.2f, want ~1", ppr)
	}
}

func TestLookupStringInNames(t *testing.T) {
	if Parallel(4).Name != "4way-"+dramcache.LookupParallel.String() {
		t.Errorf("name = %q", Parallel(4).Name)
	}
}

func TestFullHierarchyMode(t *testing.T) {
	cfg := quickConfig(ACCORD(2))
	cfg.FullHierarchy = true
	res := runQuick(t, cfg, "libquantum")
	if res.L3.Hits == 0 || res.L3.Misses == 0 {
		t.Errorf("full-hierarchy run recorded no L3 activity: %+v", res.L3)
	}
	if res.L4.Reads == 0 {
		t.Error("no L4 traffic in full-hierarchy mode")
	}
	// The SRAM levels filter traffic: L4 reads must be fewer than the
	// total L3 lookups.
	if res.L4.Reads >= res.L3.Hits+res.L3.Misses {
		t.Errorf("L4 reads %d not filtered below L3 lookups %d",
			res.L4.Reads, res.L3.Hits+res.L3.Misses)
	}
	// Dirty L3 victims flow to the DRAM cache as writebacks.
	if res.L4.Writebacks == 0 {
		t.Error("no L4 writebacks from L3 evictions")
	}
	// DCP+way state makes resident writebacks probe-free hits.
	if res.L4.WritebackHits == 0 {
		t.Error("no writeback hits; DCP path seems broken")
	}
}

func TestFullHierarchyDeterminism(t *testing.T) {
	cfg := quickConfig(DirectMapped())
	cfg.FullHierarchy = true
	a := runQuick(t, cfg, "gcc")
	b := runQuick(t, cfg, "gcc")
	if a.L4 != b.L4 || a.L3 != b.L3 {
		t.Error("full-hierarchy runs diverged")
	}
}

func TestL4DrivenModeHasNoL3Stats(t *testing.T) {
	res := runQuick(t, quickConfig(DirectMapped()), "milc")
	if res.L3 != (cache.Stats{}) {
		t.Errorf("L4-driven mode populated L3 stats: %+v", res.L3)
	}
}

func TestACCORDSWSKConfig(t *testing.T) {
	cfg := ACCORDSWSK(8, 3)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "accord-sws(8,4)" {
		t.Errorf("name = %q", cfg.Name)
	}
	res := runQuick(t, quickConfig(cfg), "soplex")
	// Miss confirmation is capped at alternates+1 probes.
	if ppr := res.L4.ProbesPerRead(); ppr > 4.0001 {
		t.Errorf("SWS(8,4) probes/read = %.3f, want <= 4", ppr)
	}
}

func TestACCORDWithTablesConfig(t *testing.T) {
	small := quickConfig(ACCORDWithTables(4))
	big := quickConfig(ACCORDWithTables(256))
	if small.Name == big.Name {
		t.Error("table-size configs share a name")
	}
	a := runQuick(t, small, "libquantum")
	b := runQuick(t, big, "libquantum")
	// More RLT entries can only help accuracy on a spatially local stream.
	if b.Accuracy()+0.02 < a.Accuracy() {
		t.Errorf("256-entry tables (%.3f) worse than 4-entry (%.3f)", b.Accuracy(), a.Accuracy())
	}
}

func TestWorkloadAnchorLines(t *testing.T) {
	// With an anchor, growing the cache must not grow the footprint: the
	// bigger cache then genuinely captures more of the working set.
	small := quickConfig(DirectMapped())
	small.WorkloadAnchorLines = small.L4Lines()
	big := small
	big.L4CapacityFull *= 4
	rs := runQuick(t, small, "soplex")
	rb := runQuick(t, big, "soplex")
	if rb.HitRate() <= rs.HitRate() {
		t.Errorf("4x cache with anchored footprint: hit %.3f not above %.3f",
			rb.HitRate(), rs.HitRate())
	}
	// Without the anchor, footprints scale with the cache and hit rates
	// stay roughly flat.
	bigNoAnchor := quickConfig(DirectMapped())
	bigNoAnchor.L4CapacityFull *= 4
	rn := runQuick(t, bigNoAnchor, "soplex")
	if diff := rn.HitRate() - rs.HitRate(); diff > 0.15 {
		t.Errorf("unanchored scaling changed hit rate by %.3f; expected rough invariance", diff)
	}
}

func TestDisableAdaptiveBudgets(t *testing.T) {
	cfg := quickConfig(DirectMapped())
	cfg.DisableAdaptiveBudgets = true
	// xalancbmk has ~2 MPKI; adaptive mode would inflate the window far
	// beyond the configured instructions.
	res := runQuick(t, cfg, "xalancbmk")
	maxInstr := int64(float64(cfg.Cores) * float64(cfg.WarmupInstr+cfg.MeasureInstr) * 1.6)
	if res.Instructions > maxInstr {
		t.Errorf("measured %d instructions despite fixed budgets (cap %d)", res.Instructions, maxInstr)
	}
}

func TestTraceReplayThroughSim(t *testing.T) {
	// A trace captured from a generator must be runnable end to end.
	cfg := quickConfig(ACCORD(2))
	cfg.DisableAdaptiveBudgets = true
	src := workloads.MustGet("gcc", cfg.Cores)
	st := workloads.NewStream(src.Specs[0], cfg.L4Lines(), cfg.Cores, 1)
	events := make([]workloads.Event, 20000)
	for i := range events {
		st.Next(&events[i])
	}
	wl, err := workloads.TraceWorkload("gcc-trace", events, cfg.Cores)
	if err != nil {
		t.Fatal(err)
	}
	res := New(cfg, wl).Run(wl.Name)
	if res.L4.Reads == 0 || res.MeanIPC() <= 0 {
		t.Errorf("trace replay degenerate: reads=%d ipc=%v", res.L4.Reads, res.MeanIPC())
	}
}

func TestStreamCountMismatchPanics(t *testing.T) {
	cfg := quickConfig(DirectMapped())
	wl, err := workloads.TraceWorkload("t", []workloads.Event{{Gap: 1, Line: 1}}, cfg.Cores+1)
	if err != nil {
		t.Fatal(err)
	}
	wl.Specs = wl.Specs[:cfg.Cores] // specs match, streams do not
	defer func() {
		if recover() == nil {
			t.Error("no panic for stream/core mismatch")
		}
	}()
	New(cfg, wl)
}

func TestSeedRobustness(t *testing.T) {
	// Different seeds change the rng streams and VM layout but must not
	// change the qualitative behaviour of a workload.
	cfg := quickConfig(DirectMapped())
	a := runQuick(t, cfg, "libquantum")
	cfg.Seed = 99
	b := runQuick(t, cfg, "libquantum")
	if diff := a.HitRate() - b.HitRate(); diff > 0.08 || diff < -0.08 {
		t.Errorf("hit rate seed-sensitive: %.3f vs %.3f", a.HitRate(), b.HitRate())
	}
}

func TestIdealizedNeverLosesToDirectMapped(t *testing.T) {
	// The Figure 1(c) oracle adds hit rate at zero cost; it must not lose
	// measurably on any sampled workload.
	for _, wl := range []string{"soplex", "sphinx3", "mcf"} {
		dm := runQuick(t, quickConfig(DirectMapped()), wl)
		id := runQuick(t, quickConfig(Idealized(2)), wl)
		if ws := WeightedSpeedup(id, dm); ws < 0.97 {
			t.Errorf("%s: idealized 2-way speedup %.3f < 0.97", wl, ws)
		}
	}
}

func TestGWSAccuracyTracksSpatialLocality(t *testing.T) {
	// Figure 7's central contrast: ganged steering predicts nearly
	// perfectly on page-streaming workloads and falls back on sparse ones.
	spatial := runQuick(t, quickConfig(ACCORD(2)), "libquantum")
	sparse := runQuick(t, quickConfig(ACCORD(2)), "mcf")
	if spatial.Accuracy() <= sparse.Accuracy() {
		t.Errorf("accuracy ordering wrong: libquantum %.3f <= mcf %.3f",
			spatial.Accuracy(), sparse.Accuracy())
	}
	if spatial.Accuracy() < 0.9 {
		t.Errorf("libquantum ACCORD accuracy = %.3f, want > 0.9", spatial.Accuracy())
	}
}

func TestLRUBandwidthTax(t *testing.T) {
	// Footnote 2: LRU replacement pays a DRAM write per hit.
	res := runQuick(t, quickConfig(LRU2Way()), "sphinx3")
	if res.L4.ReplStateOps != res.L4.ReadHits {
		t.Errorf("replacement-state writes %d != hits %d", res.L4.ReplStateOps, res.L4.ReadHits)
	}
}
