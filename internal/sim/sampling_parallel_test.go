package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"accord/internal/workloads"
)

// parallelCases spans every L4 organization across the equivalence
// matrix the parallel sampler must honor: single- and multi-core,
// early-stop on and off. Small scale keeps the full matrix fast.
func parallelCases(cores int, earlyStop bool) []Config {
	shrink := func(cfg Config) Config {
		cfg.Scale = 8192
		cfg.Cores = cores
		cfg.DisableAdaptiveBudgets = true
		cfg.WarmupInstr = 50_000
		cfg.MeasureInstr = 300_000
		cfg.Seed = 1
		cfg.Sampling = SamplingConfig{
			Period:       50_000,
			DetailLen:    12_000,
			WarmLen:      5_000,
			MinIntervals: 2,
		}
		if earlyStop {
			// ±50% converges after two or three intervals, leaving planned
			// intervals undispatched and speculative results to discard.
			cfg.Sampling.TargetCI = 0.5
		}
		return cfg
	}
	return []Config{
		shrink(DirectMapped()),
		shrink(ACCORD(2)),
		shrink(CACache()),
		shrink(Banshee()),
		shrink(Gemini()),
		shrink(TDRAM(2)),
	}
}

// traceWorkload wraps wlName in a fresh trace cache so forks replay the
// exact event stream the spine consumes (the configuration exp runs).
func traceWorkload(wlName string, cfg Config) workloads.Workload {
	gen := workloads.MustGet(wlName, cfg.Cores)
	tc := workloads.NewTraceCache(1 << 30)
	wl := gen
	wl.Source = tc.Source(gen.Specs, cfg.AnchorLines(), cfg.Seed)
	return wl
}

// runSampledWorkers runs one sampled simulation at the given worker
// count and returns the Result, its JSON encoding, and the final
// functional state of the system.
func runSampledWorkers(t *testing.T, cfg Config, wl workloads.Workload, wlName string, workers int) (Result, []byte, []byte, SampleWork) {
	t.Helper()
	c := cfg
	c.SampleWorkers = workers
	s := New(c, wl)
	res := s.Run(wlName)
	js, err := json.MarshalIndent(res.Metrics, "", " ")
	if err != nil {
		t.Fatalf("marshal metrics: %v", err)
	}
	state, err := s.FunctionalSnapshot(wlName)
	if err != nil {
		t.Fatalf("final FunctionalSnapshot: %v", err)
	}
	return res, js, state, s.SampleWork()
}

// TestSampledParallelMatchesSequential is the tentpole equivalence gate:
// for every L4 organization, single- and multi-core, with and without
// early stopping, a parallel sampled run must reproduce the sequential
// run exactly — same Result (summary, per-interval series, stats,
// registry snapshot), same exported metrics JSON, and byte-identical
// final functional state — at every worker count. Run it under -race to
// also prove the fork protocol shares no state it shouldn't.
func TestSampledParallelMatchesSequential(t *testing.T) {
	const wlName = "libquantum"
	for _, cores := range []int{1, 2} {
		for _, earlyStop := range []bool{false, true} {
			for _, cfg := range parallelCases(cores, earlyStop) {
				cfg := cfg
				name := fmt.Sprintf("%s-%dc-stop=%t", cfg.Name, cores, earlyStop)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					wl := traceWorkload(wlName, cfg)
					seqRes, seqJS, seqState, seqWork := runSampledWorkers(t, cfg, wl, wlName, 1)
					if seqWork.Workers != 1 {
						t.Fatalf("sequential run resolved %d workers, want 1", seqWork.Workers)
					}
					for _, workers := range []int{2, 3} {
						parRes, parJS, parState, parWork := runSampledWorkers(t, cfg, wl, wlName, workers)
						if !reflect.DeepEqual(seqRes, parRes) {
							t.Errorf("workers=%d: Result diverged from sequential\nseq sampled: %+v\npar sampled: %+v",
								workers, seqRes.Sampled, parRes.Sampled)
						}
						if !bytes.Equal(seqJS, parJS) {
							t.Errorf("workers=%d: exported metrics JSON diverged from sequential", workers)
						}
						if !bytes.Equal(seqState, parState) {
							t.Errorf("workers=%d: final functional state diverged from sequential (%d vs %d bytes)",
								workers, len(seqState), len(parState))
						}
						if parWork.Committed != seqRes.Sampled.Intervals {
							t.Errorf("workers=%d: committed %d intervals, summary says %d",
								workers, parWork.Committed, seqRes.Sampled.Intervals)
						}
						if parWork.Discarded != parWork.Dispatched-parWork.Committed {
							t.Errorf("workers=%d: speculation accounting broken: %+v", workers, parWork)
						}
					}
				})
			}
		}
	}
}

// TestSampledParallelGeneratorWorkload covers the non-trace path: forks
// rebuild generator streams from the workload spec and restore their
// cursors from the functional snapshot. One config suffices — the
// stream-restore machinery is shared across organizations.
func TestSampledParallelGeneratorWorkload(t *testing.T) {
	cfg := parallelCases(2, false)[1] // accord-2way
	wl := workloads.MustGet("milc", cfg.Cores)
	seqRes, seqJS, seqState, _ := runSampledWorkers(t, cfg, wl, "milc", 1)
	parRes, parJS, parState, _ := runSampledWorkers(t, cfg, wl, "milc", 3)
	if !reflect.DeepEqual(seqRes, parRes) {
		t.Errorf("generator workload: parallel Result diverged from sequential")
	}
	if !bytes.Equal(seqJS, parJS) {
		t.Errorf("generator workload: exported metrics JSON diverged")
	}
	if !bytes.Equal(seqState, parState) {
		t.Errorf("generator workload: final functional state diverged")
	}
}

// TestSampledPooledForkReset proves a pooled fork System is fully reset
// between intervals: a run whose workers rebuild a fresh fork for every
// job must match a run that reuses one fork across all of them. Any
// state RestoreFunctional + the interval reset miss would surface as a
// divergence here. Mutates the global test hook, so no t.Parallel.
func TestSampledPooledForkReset(t *testing.T) {
	const wlName = "libquantum"
	for _, cfg := range []Config{parallelCases(2, false)[1], parallelCases(2, true)[5]} {
		wl := traceWorkload(wlName, cfg)
		pooledRes, pooledJS, pooledState, _ := runSampledWorkers(t, cfg, wl, wlName, 3)

		forceFreshForkSystems = true
		freshRes, freshJS, freshState, _ := runSampledWorkers(t, cfg, wl, wlName, 3)
		forceFreshForkSystems = false

		if !reflect.DeepEqual(pooledRes, freshRes) {
			t.Errorf("%s: pooled-fork Result diverged from fresh-fork", cfg.Name)
		}
		if !bytes.Equal(pooledJS, freshJS) {
			t.Errorf("%s: pooled-fork metrics JSON diverged from fresh-fork", cfg.Name)
		}
		if !bytes.Equal(pooledState, freshState) {
			t.Errorf("%s: pooled-fork final state diverged from fresh-fork", cfg.Name)
		}
	}
}

// TestSampledParallelNoGoroutineLeak checks that early-stopped parallel
// runs wind down completely: spine, workers, and closer all exit even
// when most planned intervals are cancelled.
func TestSampledParallelNoGoroutineLeak(t *testing.T) {
	cfg := parallelCases(1, true)[0]
	cfg.MeasureInstr = 1_500_000 // 30 planned intervals, ~2 committed
	wl := traceWorkload("libquantum", cfg)

	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		runSampledWorkers(t, cfg, wl, "libquantum", 4)
	}
	var after int
	for try := 0; try < 50; try++ {
		after = runtime.NumGoroutine()
		if after <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines grew from %d to %d after early-stopped parallel runs", before, after)
}

// TestSampleWorkersResolution pins the worker-count policy: 0 means
// GOMAXPROCS, the count is capped by planned intervals, and non-forkable
// systems (pre-built stream overrides) degrade to one worker.
func TestSampleWorkersResolution(t *testing.T) {
	cfg := parallelCases(1, false)[0] // 6 planned intervals
	wl := traceWorkload("libquantum", cfg)

	_, _, _, work := runSampledWorkers(t, cfg, wl, "libquantum", 0)
	want := runtime.GOMAXPROCS(0)
	if want > 6 {
		want = 6
	}
	if work.Workers != want {
		t.Errorf("SampleWorkers=0 resolved to %d workers, want %d (GOMAXPROCS capped at planned)", work.Workers, want)
	}

	_, _, _, work = runSampledWorkers(t, cfg, wl, "libquantum", 64)
	if work.Workers != 6 {
		t.Errorf("SampleWorkers=64 resolved to %d workers, want planned cap 6", work.Workers)
	}

	// A Streams override hands the system shared pre-built stream objects;
	// forks would consume them destructively, so the run must degrade to
	// one worker (and still complete correctly).
	gen := workloads.MustGet("libquantum", cfg.Cores)
	streams := make([]workloads.Stream, len(gen.Specs))
	for i, spec := range gen.Specs {
		streams[i] = workloads.NewStream(spec, cfg.AnchorLines(), cfg.Cores, cfg.Seed)
	}
	fixed := gen
	fixed.Streams = streams
	res, _, _, work := runSampledWorkers(t, cfg, fixed, "libquantum", 4)
	if work.Workers != 1 {
		t.Errorf("Streams-override workload resolved to %d workers, want 1", work.Workers)
	}
	if res.Sampled == nil || res.Sampled.Intervals == 0 {
		t.Errorf("degraded run produced no intervals")
	}
}
