package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Parallel interval sampling (DESIGN.md §12). One spine goroutine owns
// the live system and advances it functionally, period by period. At
// each interval boundary it resets the canonical interval-start state,
// serializes a functional snapshot, and hands {index, blob} to a worker
// pool; each worker restores the blob into its own fork System and runs
// the detailed warm+measured legs there. Results are committed strictly
// in interval order on the caller's goroutine, so the observation
// sequence — and therefore the early-stop decision — is identical to
// the sequential sampler's at any worker count.
//
// Speculation accounting: the spine runs ahead of the committed prefix
// by up to the jobs-channel buffer plus the in-flight workers (~2x the
// worker count). Intervals dispatched past the early-stop point are
// cancelled (workers observe the stop channel and skip them) or their
// results discarded by the committer; SampleWork reports the split. The
// discarded work never touches the live system — forks are separate
// Systems — and finishSampled's restore of the last committed boundary
// erases the spine's own speculative functional advance.

// forceFreshForkSystems makes every worker rebuild its fork System per
// job instead of reusing one across intervals. Test hook: the pooled-
// fork differential test proves RestoreFunctional + resetIntervalState
// fully reset a reused fork by comparing against this mode.
var forceFreshForkSystems = false

// SampleWork reports how a sampled run's execution was split. It is
// diagnostic only — wall-clock and speculation counts depend on worker
// count and scheduling — and is deliberately kept out of Result and the
// exported metrics, which are identical at any worker count.
type SampleWork struct {
	// Workers is the resolved worker count actually used (after the
	// GOMAXPROCS default, the planned-interval cap, and the forkability
	// gate).
	Workers int
	// Dispatched counts intervals whose detailed legs were started;
	// Committed counts those folded into the result (always the ordered
	// prefix); Discarded = Dispatched - Committed is the speculative
	// overshoot past the early-stop point.
	Dispatched int
	Committed  int
	Discarded  int
	// SpineTime is time spent on the spine: functional warmup and
	// advances, boundary snapshot/restore, and lattice probes. DetailTime
	// is the total detailed simulation time across all workers (it can
	// exceed WallTime when workers overlap); WallTime covers all of
	// RunSampled.
	SpineTime  time.Duration
	DetailTime time.Duration
	WallTime   time.Duration
	// SpineSaveTime is wall-clock the background writer spent persisting
	// boundary snapshots into the spine checkpoint lattice; it overlaps
	// worker execution, so it is cost only when the disk is the
	// bottleneck. LatticeHits and LatticeMisses count boundary probes
	// (zero when no lattice is configured): a fully warm run reports
	// Hits == Dispatched, a cold run Misses == Dispatched.
	SpineSaveTime time.Duration
	LatticeHits   int
	LatticeMisses int
}

// ManifestEntry renders the split as a flat map for run manifests.
// Durations are nanoseconds, matching time.Duration's integer form.
func (w SampleWork) ManifestEntry() map[string]int64 {
	return map[string]int64{
		"workers":        int64(w.Workers),
		"dispatched":     int64(w.Dispatched),
		"committed":      int64(w.Committed),
		"discarded":      int64(w.Discarded),
		"spine_ns":       int64(w.SpineTime),
		"detail_ns":      int64(w.DetailTime),
		"wall_ns":        int64(w.WallTime),
		"spine_save_ns":  int64(w.SpineSaveTime),
		"lattice_hits":   int64(w.LatticeHits),
		"lattice_misses": int64(w.LatticeMisses),
	}
}

// SampleWork returns the execution split of the last sampled run (zero
// value before any).
func (s *System) SampleWork() SampleWork { return s.work }

// sampleJob hands one interval boundary to the worker pool.
type sampleJob struct {
	index int
	blob  []byte
}

// runSampledParallel drives intervals on a worker pool fed by a
// functional spine. The caller's goroutine is the committer.
//
// With a lattice, the spine probes each boundary before computing it. A
// hit dispatches the stored blob without touching the live system, which
// goes "stale" — it still holds an earlier boundary's state. The next
// miss repairs that by restoring the most recent blob (probed or
// computed) before advancing, so the functional trajectory between
// boundaries is identical to a cold spine's. Warmup runs lazily on the
// first miss; a fully warm run never warms up, never advances, and the
// spine degenerates to lattice lookups.
func (s *System) runSampledParallel(st *sampleState, workers int, lat *spineLattice) {
	sc := st.sc
	funcLen := sc.Period - sc.WarmLen - sc.DetailLen
	n := len(s.cores)

	// jobs is buffered so the spine can run ahead while all workers are
	// busy; its capacity bounds speculation depth. results is drained
	// unconditionally by the committer, so workers never block on it
	// indefinitely.
	jobs := make(chan sampleJob, workers)
	results := make(chan *intervalResult, workers)
	stop := make(chan struct{})
	var stopOnce sync.Once
	stopAll := func() { stopOnce.Do(func() { close(stop) }) }

	// Spine-local counters, published to s.work only after spineDone.
	var dispatched int
	var spineNS int64
	var detailNS int64 // atomic: added by every worker
	spineDone := make(chan struct{})

	go func() { // spine
		defer close(jobs)
		defer close(spineDone)
		next := make([]int64, n)
		warmed := false
		// stale marks the live system as behind lastBlob's boundary: a
		// lattice hit dispatches without advancing. lastBlob always holds
		// the latest boundary's snapshot, wherever it came from.
		stale := false
		var lastBlob []byte
		for k := 0; k < st.planned; k++ {
			select {
			case <-stop:
				return
			default:
			}
			t0 := time.Now()
			var blob []byte
			if p, ok := lat.probe(k); ok {
				blob = p
				lastBlob = p
				warmed, stale = true, true
			} else {
				if !warmed {
					s.RunWarmupFunctional()
					for i, c := range s.cores {
						next[i] = c.Instructions() + funcLen
					}
					warmed = true
				}
				if stale {
					// Catch the live system up to boundary k-1 before walking
					// to k, reproducing the cold spine's trajectory exactly.
					if err := s.RestoreFunctional(lastBlob, st.wlName); err != nil {
						panic(fmt.Sprintf("sim: spine catch-up restore failed: %v", err))
					}
					for i, c := range s.cores {
						next[i] = c.Instructions() + sc.Period
					}
					stale = false
				}
				if k > 0 || funcLen > 0 {
					s.advanceFunctional(next)
				}
				s.resetIntervalState()
				b, err := s.FunctionalSnapshot(st.wlName)
				if err != nil {
					panic(fmt.Sprintf("sim: interval snapshot failed after passing the forkability trial: %v", err))
				}
				blob = b
				lastBlob = b
				lat.saveAsync(k, b)
				// The next boundary is an absolute target captured at this one:
				// B + Period, independent of any detailed leg's overshoot.
				for i, c := range s.cores {
					next[i] = c.Instructions() + sc.Period
				}
			}
			spineNS += int64(time.Since(t0))
			select {
			case jobs <- sampleJob{index: k, blob: blob}:
				dispatched++
			case <-stop:
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var fork *System
			for job := range jobs {
				select {
				case <-stop:
					continue // cancelled: drain the queue without simulating
				default:
				}
				if fork == nil || forceFreshForkSystems {
					fork = New(s.cfg, s.wl)
				}
				if err := fork.RestoreFunctional(job.blob, st.wlName); err != nil {
					panic(fmt.Sprintf("sim: fork restore failed: %v", err))
				}
				t0 := time.Now()
				r := fork.measureInterval(sc)
				atomic.AddInt64(&detailNS, int64(time.Since(t0)))
				r.index = job.index
				r.blob = job.blob
				results <- r
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Committer: fold results into st strictly in interval order. Out-of-
	// order arrivals park in pending until their predecessors land.
	pending := make(map[int]*intervalResult, workers)
	nextCommit := 0
	stopped := false
	for r := range results {
		if stopped {
			continue // past the stop point: discard
		}
		pending[r.index] = r
		for {
			q, ok := pending[nextCommit]
			if !ok {
				break
			}
			delete(pending, nextCommit)
			nextCommit++
			if st.commit(q) {
				stopped = true
				stopAll()
				break
			}
		}
	}
	stopAll()
	<-spineDone

	s.work.Dispatched = dispatched
	s.work.SpineTime = time.Duration(spineNS)
	s.work.DetailTime = time.Duration(atomic.LoadInt64(&detailNS))
}
