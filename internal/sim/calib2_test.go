package sim

import (
	"fmt"
	"math"
	"os"
	"testing"

	"accord/internal/stats"
	"accord/internal/workloads"
)

// TestSpeedupProbe prints weighted speedups for key configurations on a
// sample of workloads; a manual calibration aid.
func TestSpeedupProbe(t *testing.T) {
	if os.Getenv("ACCORD_CALIB") == "" {
		t.Skip("calibration diagnostic; set ACCORD_CALIB=1 to run")
	}
	names := []string{"soplex", "libquantum", "sphinx3", "mcf", "omnetpp", "milc", "nekbone"}
	cfgs := []Config{
		Parallel(2), Serial(2), PWS(0.85), GWS(), ACCORD(2),
		PerfectWP(2), Idealized(2), Idealized(8), Parallel(8), ACCORD(8),
	}
	run := func(cfg Config, name string) Result {
		wl := workloads.MustGet(name, cfg.Cores)
		return New(cfg, wl).Run(name)
	}
	header := []string{"wl"}
	for _, c := range cfgs {
		header = append(header, c.Name)
	}
	tb := stats.NewTable("speedup vs DM", header...)
	logsum := make([]float64, len(cfgs))
	for _, name := range names {
		base := run(DirectMapped(), name)
		row := []string{name}
		for ci, cfg := range cfgs {
			ws := WeightedSpeedup(run(cfg, name), base)
			logsum[ci] += math.Log(ws)
			row = append(row, fmt.Sprintf("%.3f", ws))
		}
		tb.AddRow(row...)
	}
	grow := []string{"GEOMEAN"}
	for _, l := range logsum {
		grow = append(grow, fmt.Sprintf("%.3f", math.Exp(l/float64(len(names)))))
	}
	tb.AddRow(grow...)
	fmt.Println(tb.Render())
}
