package sim

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"accord/internal/cache"
	"accord/internal/dram"
	"accord/internal/dramcache"
	"accord/internal/memtypes"
	"accord/internal/metrics"
	"accord/internal/stats"
)

// SMARTS-style interval sampling (see DESIGN.md §9). A sampled run splits
// the measured phase into fixed-length periods; most of each period is
// fast-forwarded in functional mode (state only, no timing), a short
// detailed segment re-warms the timing state the functional mode skipped
// (row buffers, MSHRs, busy intervals), and a short detailed segment is
// actually measured. Per-interval IPC/hit-rate/MPKI observations feed a
// Student-t confidence interval that can stop the run early once the
// estimate is tight enough.

// SamplingConfig configures interval sampling. Sampling is enabled when
// Period is positive; Config.Validate rejects inconsistent layouts.
type SamplingConfig struct {
	// Period is the per-core instruction length of one sampling interval.
	// Each period is laid out as [functional fast-forward | WarmLen
	// detailed unmeasured | DetailLen detailed measured]. The number of
	// intervals is MeasureInstr / Period (capped by MaxIntervals).
	Period int64
	// DetailLen is the measured detailed window per period (must be
	// positive; DetailLen + WarmLen must not exceed Period).
	DetailLen int64
	// WarmLen is the detailed-but-unmeasured segment run before each
	// measured window to re-warm timing state the functional mode does
	// not touch. Zero is allowed but biases early measurements.
	WarmLen int64
	// MinIntervals is the minimum number of measured intervals before
	// early stopping may trigger (≥ 2 when TargetCI is set; the t
	// interval needs a variance estimate).
	MinIntervals int
	// MaxIntervals, when positive, caps the interval count below what
	// MeasureInstr / Period allows.
	MaxIntervals int
	// TargetCI is the relative confidence-interval half-width (half/mean)
	// at which the run stops early, e.g. 0.05 for ±5%. Zero disables
	// early stopping: every planned interval runs.
	TargetCI float64
	// Confidence is the CI confidence level; zero means 0.95.
	Confidence float64
}

// Enabled reports whether interval sampling is configured.
func (sc SamplingConfig) Enabled() bool { return sc.Period > 0 }

// ConfidenceLevel returns the effective confidence level (default 0.95).
func (sc SamplingConfig) ConfidenceLevel() float64 {
	if sc.Confidence == 0 {
		return 0.95
	}
	return sc.Confidence
}

// DefaultSampling returns a reasonable layout for a given period: 5% of
// each period measured in detail, half that re-warming timing state, and
// early stopping at a ±5% / 95% interval after 8 intervals.
func DefaultSampling(period int64) SamplingConfig {
	detail := period / 20
	if detail < 1 {
		detail = 1
	}
	return SamplingConfig{
		Period:       period,
		DetailLen:    detail,
		WarmLen:      period / 40,
		MinIntervals: 8,
		TargetCI:     0.05,
	}
}

// validate checks the sampling layout against the rest of the Config;
// Config.Validate calls it.
func (sc SamplingConfig) validate(c Config) error {
	if !sc.Enabled() {
		if sc.DetailLen != 0 || sc.WarmLen != 0 || sc.MinIntervals != 0 ||
			sc.MaxIntervals != 0 || sc.TargetCI != 0 || sc.Confidence != 0 {
			return errors.New("sim: sampling fields set but Sampling.Period is zero; set Period to enable interval sampling")
		}
		return nil
	}
	switch {
	case sc.DetailLen <= 0:
		return fmt.Errorf("sim: sampling DetailLen %d must be positive", sc.DetailLen)
	case sc.WarmLen < 0:
		return fmt.Errorf("sim: sampling WarmLen %d must be >= 0", sc.WarmLen)
	case sc.DetailLen+sc.WarmLen > sc.Period:
		return fmt.Errorf("sim: sampling DetailLen %d + WarmLen %d exceed Period %d",
			sc.DetailLen, sc.WarmLen, sc.Period)
	case sc.MinIntervals < 0 || sc.MaxIntervals < 0:
		return errors.New("sim: sampling interval counts must be >= 0")
	case sc.MaxIntervals > 0 && sc.MinIntervals > sc.MaxIntervals:
		return fmt.Errorf("sim: sampling MinIntervals %d exceeds MaxIntervals %d",
			sc.MinIntervals, sc.MaxIntervals)
	case sc.TargetCI < 0 || sc.TargetCI >= 1 || math.IsNaN(sc.TargetCI):
		return fmt.Errorf("sim: sampling TargetCI %v must be in [0, 1)", sc.TargetCI)
	case sc.TargetCI > 0 && sc.MinIntervals < 2:
		return fmt.Errorf("sim: sampling TargetCI %v needs MinIntervals >= 2 (a confidence interval needs a variance estimate)", sc.TargetCI)
	case sc.Confidence != 0 && (sc.Confidence <= 0 || sc.Confidence >= 1 || math.IsNaN(sc.Confidence)):
		return fmt.Errorf("sim: sampling Confidence %v must be in (0, 1)", sc.Confidence)
	}
	if !c.DisableAdaptiveBudgets {
		return errors.New("sim: sampling requires DisableAdaptiveBudgets: adaptive windows would silently override the Period-by-intervals layout derived from MeasureInstr")
	}
	if c.EpochInstr > 0 {
		return errors.New("sim: sampling and EpochInstr both record a metric series over the same registry; sampled runs get a per-interval series automatically")
	}
	if c.MeasureInstr < sc.Period {
		return fmt.Errorf("sim: MeasureInstr %d holds no complete sampling period %d", c.MeasureInstr, sc.Period)
	}
	if max := c.MeasureInstr / sc.Period; int64(sc.MinIntervals) > max {
		return fmt.Errorf("sim: sampling MinIntervals %d needs %d instructions, MeasureInstr is %d",
			sc.MinIntervals, int64(sc.MinIntervals)*sc.Period, c.MeasureInstr)
	}
	return nil
}

// MetricCI is one sampled estimate: the mean of the per-interval
// observations and its Student-t confidence-interval half-width. OK is
// false (and Half meaningless) with fewer than two observations,
// following the stats package's undefined-not-zero convention.
type MetricCI struct {
	Mean float64
	Half float64
	N    int
	OK   bool
}

// Valid reports whether Mean is a usable estimate (at least one
// observation; OK additionally requires a CI).
func (m MetricCI) Valid() bool { return m.N > 0 && !math.IsNaN(m.Mean) }

// SampleSummary reports how a sampled run went.
type SampleSummary struct {
	// Intervals is the number of measured intervals that actually ran;
	// Planned is how many the budget allowed.
	Intervals int
	Planned   int
	// Converged is true when the run stopped early because the IPC
	// interval tightened below TargetCI.
	Converged bool
	// Confidence is the level the intervals are quoted at.
	Confidence float64

	IPC     MetricCI // mean of per-core window IPCs, per interval
	HitRate MetricCI // L4 demand-read hit rate over the measured windows
	MPKI    MetricCI // L4 misses per kilo-instruction over the measured windows

	// Series holds the per-interval observations in commit order — the
	// population the CIs above summarize, exported as the sampled run's
	// metric series (one sample per interval).
	Series []IntervalObs
}

// IntervalObs is one committed sampling interval's observation. The OK
// flags follow the undefined-not-zero convention: an interval whose
// measured window saw no L4 reads contributes no hit-rate observation,
// and the value field is left zero rather than NaN so the struct is
// JSON-safe.
type IntervalObs struct {
	// Index is the 0-based interval index.
	Index int
	// Instructions and Cycles are the cumulative measured-window clocks
	// through this interval (instructions summed over cores, cycles as
	// the sum of per-interval longest windows).
	Instructions int64
	Cycles       int64

	IPC       float64 // mean per-core window IPC
	IPCOK     bool
	HitRate   float64 // L4 demand-read hit rate over the measured window
	HitRateOK bool
	MPKI      float64 // L4 misses per kilo-instruction over the measured window
	MPKIOK    bool
}

// metricValues renders the observation as registry-style gauge values
// (nil pointer = undefined), the form the export schema shares with
// epoch series samples.
func (o IntervalObs) metricValues() []metrics.Value {
	gauge := func(name string, v float64, ok bool) metrics.Value {
		out := metrics.Value{Name: name, Kind: metrics.KindGauge.String()}
		if ok {
			val := v
			out.Value = &val
		}
		return out
	}
	return []metrics.Value{
		gauge("sampling.interval_ipc", o.IPC, o.IPCOK),
		gauge("sampling.interval_hit_rate", o.HitRate, o.HitRateOK),
		gauge("sampling.interval_mpki", o.MPKI, o.MPKIOK),
	}
}

// sampledSeriesData synthesizes the exportable per-interval series from
// committed observations. It is built after every goroutine of a
// sampled run has joined — unlike the epoch series, it never snapshots
// the live registry mid-run, which would race with the spine.
func sampledSeriesData(series []IntervalObs) *metrics.SeriesData {
	samples := make([]metrics.Sample, len(series))
	for i, o := range series {
		samples[i] = metrics.Sample{
			Epoch:        o.Index,
			Instructions: o.Instructions,
			Cycles:       o.Cycles,
			Values:       o.metricValues(),
		}
	}
	return &metrics.SeriesData{EveryInstr: 1, Phase: "interval", Samples: samples}
}

// functional views of the two memory adapters: identical state
// transitions, no timestamps. These make every core's MemorySystem also
// a cpu.FunctionalMemory, opting the whole system into StepFunctional.

// ReadFunctional implements cpu.FunctionalMemory.
func (m memAdapter) ReadFunctional(line memtypes.LineAddr) {
	m.l4.AccessReadFunctional(line)
}

// WriteFunctional implements cpu.FunctionalMemory.
func (m memAdapter) WriteFunctional(line memtypes.LineAddr) {
	m.l4.WritebackFunctional(line)
}

// BatchFunctional implements cpu.BatchFunctionalMemory: one interface
// call hands a whole trace-cache window to the backend, whose concrete
// batch loop applies the same per-event transitions without a dynamic
// dispatch per event. The flag convention matches by construction:
// dramcache.FunctionalWrite == workloads.FlagWrite, and backends ignore
// the remaining bits (FlagDep is a core-side stall hint).
func (m memAdapter) BatchFunctional(lines []memtypes.LineAddr, flags []uint8) {
	m.l4.FunctionalBatch(lines, flags)
}

// ReadFunctional implements cpu.FunctionalMemory: the SRAM hierarchy's
// state transitions are already timing-free (Access/FillFromBelow mutate
// identically whatever the clock says), so the functional path reuses
// them and only swaps the L4 calls for their functional counterparts.
func (m hierAdapter) ReadFunctional(line memtypes.LineAddr) {
	out := m.h.Access(line, false)
	m.sinkFunctional(out.Writebacks)
	if out.Level < 4 {
		return
	}
	way, _ := m.l4.AccessReadFunctional(line)
	m.sinkFunctional(m.h.FillFromBelow(line, false, cache.DCP{Present: true, Way: way}))
}

// WriteFunctional implements cpu.FunctionalMemory.
func (m hierAdapter) WriteFunctional(line memtypes.LineAddr) {
	out := m.h.Access(line, true)
	m.sinkFunctional(out.Writebacks)
	if out.Level < 4 {
		return
	}
	way, _ := m.l4.AccessReadFunctional(line)
	m.sinkFunctional(m.h.FillFromBelow(line, true, cache.DCP{Present: true, Way: way}))
}

func (m hierAdapter) sinkFunctional(wbs []cache.Writeback) {
	for _, wb := range wbs {
		m.l4.WritebackFunctional(wb.Line)
	}
}

// SupportsFunctional reports whether every core can fast-forward
// functionally (true for both adapter kinds; false only for externally
// injected memory systems).
func (s *System) SupportsFunctional() bool {
	for _, c := range s.cores {
		if !c.SupportsFunctional() {
			return false
		}
	}
	return len(s.cores) > 0
}

// funcRoundQuantum is the per-core instruction granule of the batched
// multi-core functional round-robin. It must be a fixed constant: the
// trace cache serves smaller windows while a stream is first being
// recorded than on replay, so interleaving by window length would make
// the same run's state trajectory depend on what happens to be cached.
// Interleaving by a fixed instruction quantum is independent of window
// geometry, so recording and replaying runs stay byte-identical.
const funcRoundQuantum = 1 << 13

// advanceFunctional fast-forwards every core i to targets[i] total
// retired instructions. When every core supports the batch path
// (trace-cache-backed stream + batch-capable memory adapter), whole
// windows are consumed per call via StepFunctionalBatch; otherwise the
// legacy per-event StepFunctional loop runs. Multi-core systems
// interleave cores round-robin — funcRoundQuantum instructions per turn
// when batched, one event per turn otherwise (functional mode has no
// clock to order by, so any fixed deterministic interleaving is valid;
// each mode is internally deterministic). No overshoot pacing: without
// timing there is no shared-resource contention for finished cores to
// sustain.
func (s *System) advanceFunctional(targets []int64) {
	if len(s.cores) == 1 {
		c := s.cores[0]
		t := targets[0]
		if c.SupportsBatchFunctional() {
			for c.Instructions() < t {
				c.StepFunctionalBatch(t)
			}
			return
		}
		for c.Instructions() < t {
			c.StepFunctional()
		}
		return
	}
	batched := true
	for _, c := range s.cores {
		if !c.SupportsBatchFunctional() {
			batched = false
			break
		}
	}
	s.ensureRunBuffers()
	done := s.done
	remaining := 0
	for i, c := range s.cores {
		done[i] = c.Instructions() >= targets[i]
		if !done[i] {
			remaining++
		}
	}
	if batched {
		for remaining > 0 {
			for i, c := range s.cores {
				if done[i] {
					continue
				}
				stepT := c.Instructions() + funcRoundQuantum
				if stepT > targets[i] {
					stepT = targets[i]
				}
				for c.Instructions() < stepT {
					c.StepFunctionalBatch(stepT)
				}
				if c.Instructions() >= targets[i] {
					done[i] = true
					remaining--
				}
			}
		}
		return
	}
	for remaining > 0 {
		for i, c := range s.cores {
			if done[i] {
				continue
			}
			c.StepFunctional()
			if c.Instructions() >= targets[i] {
				done[i] = true
				remaining--
			}
		}
	}
}

// RunWarmupFunctional is RunWarmup with the warmup phase executed in
// functional mode: the cache/policy/VM state at return is byte-identical
// to a detailed warmup of the same events (single-core; multi-core runs
// differ only in cross-core interleaving — see DESIGN.md §9), at a small
// fraction of the cost. It panics when a core's memory system lacks a
// functional view (a programming error: both built-in adapters have one).
func (s *System) RunWarmupFunctional() {
	if !s.SupportsFunctional() {
		panic("sim: functional warmup on a system without FunctionalMemory support")
	}
	warm := s.adaptiveBudget(warmFactor, s.cfg.WarmupInstr)
	targets := make([]int64, len(s.cores))
	for i := range targets {
		targets[i] = warm
	}
	s.advanceFunctional(targets)
	s.l4.ResetStats()
	s.hbm.ResetStats()
	s.pcm.ResetStats()
	if s.l3 != nil {
		s.l3.ResetStats()
	}
	for _, c := range s.cores {
		c.MarkWindow()
	}
}

// resetIntervalState puts the system's timing and statistics state into
// the canonical interval-start condition: zeroed component stats, fresh
// device timing (row buffers, busy intervals, write backlogs), and cores
// at cycle zero with empty MSHRs and cold translation memos. Both the
// sequential and the parallel samplers apply it at every interval
// boundary, so a measured window's starting state is a pure function of
// the functional state at its boundary — the property that makes
// worker-count-independent results possible (DESIGN.md §12).
func (s *System) resetIntervalState() {
	s.l4.ResetStats()
	s.hbm.ResetStats()
	s.hbm.ResetTiming()
	s.pcm.ResetStats()
	s.pcm.ResetTiming()
	if s.l3 != nil {
		s.l3.ResetStats()
	}
	for _, c := range s.cores {
		c.ResetSampleTiming()
	}
}

// intervalResult is everything one measured interval contributes to the
// sampled run, captured on whichever System executed the detailed legs
// (the main system sequentially, a fork in parallel mode) so commit can
// fold it in without touching live component state.
type intervalResult struct {
	index int
	// blob is the functional snapshot of the boundary state the detailed
	// legs started from. finishSampled restores the last committed one to
	// canonicalize the final system state; nil in in-place sequential
	// mode, where the live system already carries that state.
	blob []byte

	// Per-core detail-leg end state, copied out of the run buffers.
	endInstr  []int64
	endReads  []uint64
	endWrites []uint64
	endDep    []uint64
	endMshr   []uint64
	winInstr  []int64 // measured-window instructions (finish points)
	winCyc    []int64 // measured-window cycles

	// Component stat deltas over warm+detail (state was reset at the
	// boundary, so the totals ARE the deltas).
	l4    dramcache.Stats
	hbm   dram.Stats
	pcm   dram.Stats
	l3    cache.Stats
	hasL3 bool

	// Measured-window L4 demand-read deltas (baseline after the warm
	// leg, so re-warm traffic is excluded from hit rate and MPKI).
	winReads uint64
	winHits  uint64
}

// measureInterval runs the detailed warm + measured legs of one interval
// from the current (boundary) state and captures the result. Leg targets
// are absolute offsets from the boundary position — warm ends at B+Warm,
// detail at B+Warm+Detail — never chained off the previous leg's actual
// end, so overshoot cannot accumulate and the detail leg's final stop
// event is the same one a single functional advance to B+Warm+Detail
// would stop at (the crossing of a monotone threshold over the same
// event sequence).
func (s *System) measureInterval(sc SamplingConfig) *intervalResult {
	n := len(s.cores)
	r := &intervalResult{
		endInstr:  make([]int64, n),
		endReads:  make([]uint64, n),
		endWrites: make([]uint64, n),
		endDep:    make([]uint64, n),
		endMshr:   make([]uint64, n),
		winInstr:  make([]int64, n),
		winCyc:    make([]int64, n),
	}
	targets := make([]int64, n)
	base := make([]int64, n)
	for i, c := range s.cores {
		base[i] = c.Instructions()
	}
	// Detailed but unmeasured: re-warm row buffers, MSHRs, and the other
	// timing state the boundary reset cleared.
	if sc.WarmLen > 0 {
		for i := range targets {
			targets[i] = base[i] + sc.WarmLen
		}
		s.advanceUntil(targets)
	}
	// Detailed and measured.
	for _, c := range s.cores {
		c.MarkWindow()
	}
	st := s.l4.Stats()
	reads0, hits0 := st.Reads, st.ReadHits
	for i := range targets {
		targets[i] = base[i] + sc.WarmLen + sc.DetailLen
	}
	finish := s.advanceUntil(targets)
	for i, c := range s.cores {
		r.winInstr[i] = finish[i].instr
		r.winCyc[i] = finish[i].cycles
		r.endInstr[i] = c.Instructions()
		r.endReads[i], r.endWrites[i], r.endDep[i], r.endMshr[i] = c.Counters()
	}
	r.winReads, r.winHits = st.Reads-reads0, st.ReadHits-hits0
	r.l4 = *st
	r.hbm = s.hbm.Stats()
	r.pcm = s.pcm.Stats()
	if s.l3 != nil {
		r.hasL3 = true
		r.l3 = s.l3.Stats()
	}
	return r
}

// sampleState accumulates committed interval results. All mutation goes
// through commit, which is only ever called from one goroutine (the
// caller's), strictly in interval order — so the observation sequence,
// the early-stop decision, and every aggregate below are identical at
// any worker count.
type sampleState struct {
	sc      SamplingConfig
	conf    float64
	planned int
	wlName  string

	intervals  int
	converged  bool
	mInstr     int64
	mCycles    int64
	ipcObs     []float64
	hitObs     []float64
	mpkiObs    []float64
	coreIPCSum []float64
	coreIPCN   []int
	series     []IntervalObs

	// Component stats summed over committed intervals; finishSampled
	// imposes them on the final system so the exported registry snapshot
	// reflects exactly the committed measurements.
	aggL4  dramcache.Stats
	aggHBM dram.Stats
	aggPCM dram.Stats
	aggL3  cache.Stats

	mshrSum     []uint64
	winInstrSum []int64
	winCycSum   []int64

	// last is the most recently committed interval; its blob anchors the
	// final-state canonicalization.
	last *intervalResult
}

func newSampleState(sc SamplingConfig, planned, nCores int, wlName string) *sampleState {
	return &sampleState{
		sc:          sc,
		conf:        sc.ConfidenceLevel(),
		planned:     planned,
		wlName:      wlName,
		ipcObs:      make([]float64, 0, planned),
		hitObs:      make([]float64, 0, planned),
		mpkiObs:     make([]float64, 0, planned),
		coreIPCSum:  make([]float64, nCores),
		coreIPCN:    make([]int, nCores),
		series:      make([]IntervalObs, 0, planned),
		mshrSum:     make([]uint64, nCores),
		winInstrSum: make([]int64, nCores),
		winCycSum:   make([]int64, nCores),
	}
}

// commit folds interval r — which MUST be the next interval in order —
// into the accumulated state and reports whether sampling should stop
// (converged below TargetCI, or the planned budget is exhausted). The
// early-stop test runs over the ordered committed prefix only, so the
// stopping interval count is a pure function of the observation
// sequence, not of how much speculative work was in flight.
func (st *sampleState) commit(r *intervalResult) (stop bool) {
	var instr, maxCyc int64
	ipcSum, ipcN := 0.0, 0
	for i := range r.winInstr {
		ins, cyc := r.winInstr[i], r.winCyc[i]
		instr += ins
		if cyc > maxCyc {
			maxCyc = cyc
		}
		if cyc > 0 {
			ipc := float64(ins) / float64(cyc)
			ipcSum += ipc
			ipcN++
			st.coreIPCSum[i] += ipc
			st.coreIPCN[i]++
		}
		st.mshrSum[i] += r.endMshr[i]
		st.winInstrSum[i] += ins
		st.winCycSum[i] += cyc
	}
	st.mInstr += instr
	st.mCycles += maxCyc
	st.intervals++

	obs := IntervalObs{Index: r.index, Instructions: st.mInstr, Cycles: st.mCycles}
	if ipcN > 0 {
		obs.IPC, obs.IPCOK = ipcSum/float64(ipcN), true
		st.ipcObs = append(st.ipcObs, obs.IPC)
	}
	// Hit rate and MPKI come from L4 stat deltas across the measured
	// window only. An interval with no L4 reads contributes no hit-rate
	// observation — undefined, not zero.
	dr, dh := r.winReads, r.winHits
	if dr > 0 {
		obs.HitRate, obs.HitRateOK = float64(dh)/float64(dr), true
		st.hitObs = append(st.hitObs, obs.HitRate)
	}
	if instr > 0 {
		obs.MPKI, obs.MPKIOK = float64(dr-dh)*1000/float64(instr), true
		st.mpkiObs = append(st.mpkiObs, obs.MPKI)
	}
	st.series = append(st.series, obs)

	st.aggL4.Add(r.l4)
	st.aggHBM.Add(r.hbm)
	st.aggPCM.Add(r.pcm)
	if r.hasL3 {
		st.aggL3.Add(r.l3)
	}
	if st.last != nil {
		st.last.blob = nil // superseded boundary; release the bytes
	}
	st.last = r

	if st.sc.TargetCI > 0 && st.intervals >= st.sc.MinIntervals {
		if mean, half, ok := stats.MeanCI(st.ipcObs, st.conf); ok && mean > 0 && half/mean <= st.sc.TargetCI {
			st.converged = true
			return true
		}
	}
	return st.intervals >= st.planned
}

// sampleForkable reports whether this system's intervals can run on
// forked copies: the workload must be reconstructible per fork (a
// Streams override hands the system pre-built stream objects that a fork
// would share destructively; generator and trace-cache workloads rebuild
// cleanly), and the functional state must snapshot (an nway policy
// without checkpoint support cannot). Non-forkable systems degrade to
// the in-place sequential sampler.
func (s *System) sampleForkable(wlName string) bool {
	if s.wl.Streams != nil && s.wl.Source == nil {
		return false
	}
	if _, err := s.FunctionalSnapshot(wlName); err != nil {
		return false
	}
	return true
}

// RunSampled executes a sampled run: functional warmup, then alternating
// functional/detailed windows per SamplingConfig, collecting
// per-interval observations until the budget is exhausted or the IPC
// confidence interval tightens below TargetCI. Run dispatches here when
// sampling is enabled.
//
// Config.SampleWorkers picks the executor: ≤1 runs intervals on the
// caller's goroutine; >1 forks each interval's detailed legs off the
// functional spine onto a worker pool (sampling_parallel.go). The two
// produce identical Results — same observation sequence, same summary,
// same final registry snapshot — by construction; see DESIGN.md §12.
//
// Config.SpineCheckpointDir additionally memoizes the spine through the
// checkpoint lattice (spine.go, DESIGN.md §14): boundary snapshots are
// saved in the background and probed on later runs, so a warm re-run
// replaces the functional fast-forward with restores. Warmup itself is
// driven lazily by the drivers — a lattice hit at boundary 0 skips it
// entirely, since warmup's effects are inside the restored snapshot.
func (s *System) RunSampled(wlName string) Result {
	sc := s.cfg.Sampling
	if !sc.Enabled() {
		panic("sim: RunSampled without Sampling.Period")
	}
	start := time.Now()

	planned64 := s.cfg.MeasureInstr / sc.Period
	if planned64 < 1 {
		planned64 = 1
	}
	if sc.MaxIntervals > 0 && planned64 > int64(sc.MaxIntervals) {
		planned64 = int64(sc.MaxIntervals)
	}
	planned := int(planned64)

	st := newSampleState(sc, planned, len(s.cores), wlName)

	workers := s.cfg.SampleWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > planned {
		workers = planned
	}
	forkable := false
	if workers > 1 || len(s.cores) > 1 || s.cfg.SpineCheckpointDir != "" {
		forkable = s.sampleForkable(wlName)
	}
	if !forkable {
		workers = 1
	}
	// The lattice requires snapshotability: boundary state must serialize
	// to be saved and restore cleanly to be consumed. A non-forkable
	// system silently runs without it, like it degrades to one worker.
	var lat *spineLattice
	if forkable {
		lat = s.openSpineLattice(wlName)
	}
	s.work = SampleWork{Workers: workers}
	if workers <= 1 {
		s.runSampledSequential(st, forkable, lat)
	} else {
		s.runSampledParallel(st, workers, lat)
	}
	if lat != nil {
		lat.close()
		s.work.SpineSaveTime = time.Duration(lat.saveNS)
		s.work.LatticeHits = lat.hits
		s.work.LatticeMisses = lat.misses
	}
	s.work.Committed = st.intervals
	s.work.Discarded = s.work.Dispatched - st.intervals

	res := s.finishSampled(st, wlName)
	s.work.WallTime = time.Since(start)
	return res
}

// runSampledSequential drives intervals on the caller's goroutine. Two
// modes share the loop:
//
//   - In-place (single core, or a system that cannot fork): the detailed
//     legs run on the live system and the following functional advance
//     continues from wherever they ended. For a single core this is
//     byte-equivalent to the fork protocol — the §9 contract makes
//     functional and detailed execution of the same events produce
//     identical functional state, and absolute leg targets make them
//     consume the same events — so it is used as the cheaper path.
//   - Fork protocol (multi-core forkable systems): snapshot the boundary,
//     measure, restore, and re-advance functionally — the exact
//     trajectory the parallel spine takes, which is what makes
//     SampleWorkers=1 and SampleWorkers=N byte-identical even though
//     multi-core functional and detailed interleavings differ.
//
// With a lattice, each boundary is probed before it is computed: a hit
// restores the stored snapshot straight into the live system, replacing
// the functional warmup/advance that would have produced it (the blob
// carries the identical bytes — that is the lattice's key contract).
// Warmup runs lazily on the first miss, so a hit at boundary 0 skips it.
//
// Fork mode re-establishes each boundary lazily (the stale protocol the
// parallel spine also uses): after an interval's detailed legs move the
// live system, nothing is restored until the next boundary actually
// needs it — a miss restores the previous boundary's blob and advances,
// while a hit restores its own blob directly. Consecutive hits thus
// cost one restore each instead of a restore-back plus a restore-
// forward, without changing the state each interval measures from.
func (s *System) runSampledSequential(st *sampleState, forkable bool, lat *spineLattice) {
	sc := st.sc
	funcLen := sc.Period - sc.WarmLen - sc.DetailLen
	n := len(s.cores)
	inPlace := n == 1 || !forkable

	next := make([]int64, n)
	warmed := false
	stale := false // fork mode: live system has moved past lastBlob's boundary
	var lastBlob []byte
	for k := 0; ; k++ {
		t0 := time.Now()
		var blob []byte
		if p, ok := lat.probe(k); ok {
			// RestoreFunctional ends with resetIntervalState, so the live
			// system lands in exactly the canonical boundary state the miss
			// path constructs.
			if err := s.RestoreFunctional(p, st.wlName); err != nil {
				panic(fmt.Sprintf("sim: lattice restore failed after probe validation: %v", err))
			}
			warmed, stale = true, false
			if !inPlace {
				blob, lastBlob = p, p
			}
		} else {
			if !warmed {
				s.RunWarmupFunctional()
				for i, c := range s.cores {
					next[i] = c.Instructions() + funcLen
				}
				warmed = true
			}
			if stale {
				if err := s.RestoreFunctional(lastBlob, st.wlName); err != nil {
					panic(fmt.Sprintf("sim: boundary restore failed: %v", err))
				}
				for i, c := range s.cores {
					next[i] = c.Instructions() + sc.Period
				}
				stale = false
			}
			if k > 0 || funcLen > 0 {
				s.advanceFunctional(next)
			}
			s.resetIntervalState()
			if !inPlace || lat.wantSave(k) {
				b, err := s.FunctionalSnapshot(st.wlName)
				if err != nil {
					panic(fmt.Sprintf("sim: interval snapshot failed after passing the forkability trial: %v", err))
				}
				lat.saveAsync(k, b)
				if !inPlace {
					blob, lastBlob = b, b
				}
			}
		}
		// The next boundary is an absolute target captured NOW, before the
		// detailed legs move the cores: B + Period.
		for i, c := range s.cores {
			next[i] = c.Instructions() + sc.Period
		}
		s.work.SpineTime += time.Since(t0)

		t1 := time.Now()
		r := s.measureInterval(sc)
		s.work.DetailTime += time.Since(t1)
		r.index = k
		r.blob = blob
		s.work.Dispatched++
		if st.commit(r) {
			return
		}
		stale = !inPlace
	}
}

// finishSampled canonicalizes the final system state, imposes the
// committed aggregates, and builds the Result. The canonical final state
// is "the last committed interval's boundary, plus its warm+detail
// events executed functionally": restoring the boundary blob erases
// everything any speculative or discarded work did to the live system
// (including policy diagnostic counters inside the L4 state), and the
// functional re-advance lands exactly where the in-place sequential
// path's detailed legs would (§9). Component stats are then overwritten
// with the sums over committed intervals, so the registry snapshot the
// Result exports is identical at every worker count.
func (s *System) finishSampled(st *sampleState, wlName string) Result {
	sc := st.sc
	if last := st.last; last != nil {
		if last.blob != nil {
			t0 := time.Now()
			if err := s.RestoreFunctional(last.blob, st.wlName); err != nil {
				panic(fmt.Sprintf("sim: final boundary restore failed: %v", err))
			}
			if adv := sc.WarmLen + sc.DetailLen; adv > 0 {
				targets := make([]int64, len(s.cores))
				for i, c := range s.cores {
					targets[i] = c.Instructions() + adv
				}
				s.advanceFunctional(targets)
			}
			s.work.SpineTime += time.Since(t0)
			last.blob = nil
		}
		*s.l4.Stats() = st.aggL4
		s.hbm.SetStats(st.aggHBM)
		s.pcm.SetStats(st.aggPCM)
		if s.l3 != nil {
			s.l3.SetStats(st.aggL3)
		}
		for i, c := range s.cores {
			c.SetSampledFinal(last.endInstr[i], last.endReads[i], last.endWrites[i],
				last.endDep[i], st.mshrSum[i], st.winInstrSum[i], st.winCycSum[i])
		}
	}

	sum := &SampleSummary{
		Intervals:  st.intervals,
		Planned:    st.planned,
		Converged:  st.converged,
		Confidence: st.conf,
		IPC:        metricCI(st.ipcObs, st.conf),
		HitRate:    metricCI(st.hitObs, st.conf),
		MPKI:       metricCI(st.mpkiObs, st.conf),
		Series:     st.series,
	}
	s.sample = sum

	res := Result{
		Config:   s.cfg.Name,
		Workload: wlName,
		L4:       *s.l4.Stats(),
		HBM:      s.hbm.Stats(),
		PCM:      s.pcm.Stats(),
		Sampled:  sum,
	}
	if s.l3 != nil {
		res.L3 = s.l3.Stats()
	}
	for i := range s.cores {
		if st.coreIPCN[i] > 0 {
			res.IPC = append(res.IPC, st.coreIPCSum[i]/float64(st.coreIPCN[i]))
		} else {
			res.IPC = append(res.IPC, 0)
		}
	}
	res.Cycles = st.mCycles
	res.Instructions = st.mInstr
	for _, c := range s.cores {
		reads, writes, _, _ := c.Counters()
		res.Events += int64(reads + writes)
		res.InstructionsTotal += c.Instructions()
	}
	s.resIPC = res.IPC
	rm := &metrics.RunMetrics{Final: s.reg.Snapshot()}
	rm.Series = sampledSeriesData(st.series)
	res.Metrics = rm
	return res
}

// metricCI folds per-interval observations into a MetricCI.
func metricCI(obs []float64, confidence float64) MetricCI {
	mean, half, ok := stats.MeanCI(obs, confidence)
	return MetricCI{Mean: mean, Half: half, N: len(obs), OK: ok}
}

// registerSamplingMetrics publishes the sampled estimates; the gauges
// read NaN (exported as absent) until the run completes.
func (s *System) registerSamplingMetrics() {
	r := s.reg
	g := func(name, help string, fn func(*SampleSummary) float64) {
		r.GaugeFunc(name, help, func() float64 {
			if s.sample == nil {
				return math.NaN()
			}
			return fn(s.sample)
		})
	}
	g("sampling.intervals", "measured sampling intervals run", func(ss *SampleSummary) float64 {
		return float64(ss.Intervals)
	})
	g("sampling.planned_intervals", "sampling intervals the budget allowed", func(ss *SampleSummary) float64 {
		return float64(ss.Planned)
	})
	g("sampling.converged", "1 when the run stopped early at TargetCI, else 0", func(ss *SampleSummary) float64 {
		if ss.Converged {
			return 1
		}
		return 0
	})
	ci := func(prefix, what string, sel func(*SampleSummary) MetricCI) {
		g("sampling."+prefix+"_mean", "sampled mean of "+what+" over measured intervals", func(ss *SampleSummary) float64 {
			m := sel(ss)
			if !m.Valid() {
				return math.NaN()
			}
			return m.Mean
		})
		g("sampling."+prefix+"_ci_half", "Student-t CI half-width of "+what+" (absent below two intervals)", func(ss *SampleSummary) float64 {
			m := sel(ss)
			if !m.OK {
				return math.NaN()
			}
			return m.Half
		})
	}
	ci("ipc", "mean per-core IPC", func(ss *SampleSummary) MetricCI { return ss.IPC })
	ci("hit_rate", "L4 demand-read hit rate", func(ss *SampleSummary) MetricCI { return ss.HitRate })
	ci("mpki", "L4 misses per kilo-instruction", func(ss *SampleSummary) MetricCI { return ss.MPKI })
}
