package sim

import (
	"errors"
	"fmt"
	"math"

	"accord/internal/cache"
	"accord/internal/memtypes"
	"accord/internal/metrics"
	"accord/internal/stats"
)

// SMARTS-style interval sampling (see DESIGN.md §9). A sampled run splits
// the measured phase into fixed-length periods; most of each period is
// fast-forwarded in functional mode (state only, no timing), a short
// detailed segment re-warms the timing state the functional mode skipped
// (row buffers, MSHRs, busy intervals), and a short detailed segment is
// actually measured. Per-interval IPC/hit-rate/MPKI observations feed a
// Student-t confidence interval that can stop the run early once the
// estimate is tight enough.

// SamplingConfig configures interval sampling. Sampling is enabled when
// Period is positive; Config.Validate rejects inconsistent layouts.
type SamplingConfig struct {
	// Period is the per-core instruction length of one sampling interval.
	// Each period is laid out as [functional fast-forward | WarmLen
	// detailed unmeasured | DetailLen detailed measured]. The number of
	// intervals is MeasureInstr / Period (capped by MaxIntervals).
	Period int64
	// DetailLen is the measured detailed window per period (must be
	// positive; DetailLen + WarmLen must not exceed Period).
	DetailLen int64
	// WarmLen is the detailed-but-unmeasured segment run before each
	// measured window to re-warm timing state the functional mode does
	// not touch. Zero is allowed but biases early measurements.
	WarmLen int64
	// MinIntervals is the minimum number of measured intervals before
	// early stopping may trigger (≥ 2 when TargetCI is set; the t
	// interval needs a variance estimate).
	MinIntervals int
	// MaxIntervals, when positive, caps the interval count below what
	// MeasureInstr / Period allows.
	MaxIntervals int
	// TargetCI is the relative confidence-interval half-width (half/mean)
	// at which the run stops early, e.g. 0.05 for ±5%. Zero disables
	// early stopping: every planned interval runs.
	TargetCI float64
	// Confidence is the CI confidence level; zero means 0.95.
	Confidence float64
}

// Enabled reports whether interval sampling is configured.
func (sc SamplingConfig) Enabled() bool { return sc.Period > 0 }

// ConfidenceLevel returns the effective confidence level (default 0.95).
func (sc SamplingConfig) ConfidenceLevel() float64 {
	if sc.Confidence == 0 {
		return 0.95
	}
	return sc.Confidence
}

// DefaultSampling returns a reasonable layout for a given period: 5% of
// each period measured in detail, half that re-warming timing state, and
// early stopping at a ±5% / 95% interval after 8 intervals.
func DefaultSampling(period int64) SamplingConfig {
	detail := period / 20
	if detail < 1 {
		detail = 1
	}
	return SamplingConfig{
		Period:       period,
		DetailLen:    detail,
		WarmLen:      period / 40,
		MinIntervals: 8,
		TargetCI:     0.05,
	}
}

// validate checks the sampling layout against the rest of the Config;
// Config.Validate calls it.
func (sc SamplingConfig) validate(c Config) error {
	if !sc.Enabled() {
		if sc.DetailLen != 0 || sc.WarmLen != 0 || sc.MinIntervals != 0 ||
			sc.MaxIntervals != 0 || sc.TargetCI != 0 || sc.Confidence != 0 {
			return errors.New("sim: sampling fields set but Sampling.Period is zero; set Period to enable interval sampling")
		}
		return nil
	}
	switch {
	case sc.DetailLen <= 0:
		return fmt.Errorf("sim: sampling DetailLen %d must be positive", sc.DetailLen)
	case sc.WarmLen < 0:
		return fmt.Errorf("sim: sampling WarmLen %d must be >= 0", sc.WarmLen)
	case sc.DetailLen+sc.WarmLen > sc.Period:
		return fmt.Errorf("sim: sampling DetailLen %d + WarmLen %d exceed Period %d",
			sc.DetailLen, sc.WarmLen, sc.Period)
	case sc.MinIntervals < 0 || sc.MaxIntervals < 0:
		return errors.New("sim: sampling interval counts must be >= 0")
	case sc.MaxIntervals > 0 && sc.MinIntervals > sc.MaxIntervals:
		return fmt.Errorf("sim: sampling MinIntervals %d exceeds MaxIntervals %d",
			sc.MinIntervals, sc.MaxIntervals)
	case sc.TargetCI < 0 || sc.TargetCI >= 1 || math.IsNaN(sc.TargetCI):
		return fmt.Errorf("sim: sampling TargetCI %v must be in [0, 1)", sc.TargetCI)
	case sc.TargetCI > 0 && sc.MinIntervals < 2:
		return fmt.Errorf("sim: sampling TargetCI %v needs MinIntervals >= 2 (a confidence interval needs a variance estimate)", sc.TargetCI)
	case sc.Confidence != 0 && (sc.Confidence <= 0 || sc.Confidence >= 1 || math.IsNaN(sc.Confidence)):
		return fmt.Errorf("sim: sampling Confidence %v must be in (0, 1)", sc.Confidence)
	}
	if !c.DisableAdaptiveBudgets {
		return errors.New("sim: sampling requires DisableAdaptiveBudgets: adaptive windows would silently override the Period-by-intervals layout derived from MeasureInstr")
	}
	if c.EpochInstr > 0 {
		return errors.New("sim: sampling and EpochInstr both record a metric series over the same registry; sampled runs get a per-interval series automatically")
	}
	if c.MeasureInstr < sc.Period {
		return fmt.Errorf("sim: MeasureInstr %d holds no complete sampling period %d", c.MeasureInstr, sc.Period)
	}
	if max := c.MeasureInstr / sc.Period; int64(sc.MinIntervals) > max {
		return fmt.Errorf("sim: sampling MinIntervals %d needs %d instructions, MeasureInstr is %d",
			sc.MinIntervals, int64(sc.MinIntervals)*sc.Period, c.MeasureInstr)
	}
	return nil
}

// MetricCI is one sampled estimate: the mean of the per-interval
// observations and its Student-t confidence-interval half-width. OK is
// false (and Half meaningless) with fewer than two observations,
// following the stats package's undefined-not-zero convention.
type MetricCI struct {
	Mean float64
	Half float64
	N    int
	OK   bool
}

// Valid reports whether Mean is a usable estimate (at least one
// observation; OK additionally requires a CI).
func (m MetricCI) Valid() bool { return m.N > 0 && !math.IsNaN(m.Mean) }

// SampleSummary reports how a sampled run went.
type SampleSummary struct {
	// Intervals is the number of measured intervals that actually ran;
	// Planned is how many the budget allowed.
	Intervals int
	Planned   int
	// Converged is true when the run stopped early because the IPC
	// interval tightened below TargetCI.
	Converged bool
	// Confidence is the level the intervals are quoted at.
	Confidence float64

	IPC     MetricCI // mean of per-core window IPCs, per interval
	HitRate MetricCI // L4 demand-read hit rate over the measured windows
	MPKI    MetricCI // L4 misses per kilo-instruction over the measured windows
}

// functional views of the two memory adapters: identical state
// transitions, no timestamps. These make every core's MemorySystem also
// a cpu.FunctionalMemory, opting the whole system into StepFunctional.

// ReadFunctional implements cpu.FunctionalMemory.
func (m memAdapter) ReadFunctional(line memtypes.LineAddr) {
	m.l4.AccessReadFunctional(line)
}

// WriteFunctional implements cpu.FunctionalMemory.
func (m memAdapter) WriteFunctional(line memtypes.LineAddr) {
	m.l4.WritebackFunctional(line)
}

// ReadFunctional implements cpu.FunctionalMemory: the SRAM hierarchy's
// state transitions are already timing-free (Access/FillFromBelow mutate
// identically whatever the clock says), so the functional path reuses
// them and only swaps the L4 calls for their functional counterparts.
func (m hierAdapter) ReadFunctional(line memtypes.LineAddr) {
	out := m.h.Access(line, false)
	m.sinkFunctional(out.Writebacks)
	if out.Level < 4 {
		return
	}
	way, _ := m.l4.AccessReadFunctional(line)
	m.sinkFunctional(m.h.FillFromBelow(line, false, cache.DCP{Present: true, Way: way}))
}

// WriteFunctional implements cpu.FunctionalMemory.
func (m hierAdapter) WriteFunctional(line memtypes.LineAddr) {
	out := m.h.Access(line, true)
	m.sinkFunctional(out.Writebacks)
	if out.Level < 4 {
		return
	}
	way, _ := m.l4.AccessReadFunctional(line)
	m.sinkFunctional(m.h.FillFromBelow(line, true, cache.DCP{Present: true, Way: way}))
}

func (m hierAdapter) sinkFunctional(wbs []cache.Writeback) {
	for _, wb := range wbs {
		m.l4.WritebackFunctional(wb.Line)
	}
}

// SupportsFunctional reports whether every core can fast-forward
// functionally (true for both adapter kinds; false only for externally
// injected memory systems).
func (s *System) SupportsFunctional() bool {
	for _, c := range s.cores {
		if !c.SupportsFunctional() {
			return false
		}
	}
	return len(s.cores) > 0
}

// advanceFunctional fast-forwards every core i to targets[i] total
// retired instructions using StepFunctional, interleaving cores
// round-robin one event at a time (functional mode has no clock to order
// by). No overshoot pacing: without timing there is no shared-resource
// contention for finished cores to sustain.
func (s *System) advanceFunctional(targets []int64) {
	if len(s.cores) == 1 {
		c := s.cores[0]
		for t := targets[0]; c.Instructions() < t; {
			c.StepFunctional()
		}
		return
	}
	s.ensureRunBuffers()
	done := s.done
	remaining := 0
	for i, c := range s.cores {
		done[i] = c.Instructions() >= targets[i]
		if !done[i] {
			remaining++
		}
	}
	for remaining > 0 {
		for i, c := range s.cores {
			if done[i] {
				continue
			}
			c.StepFunctional()
			if c.Instructions() >= targets[i] {
				done[i] = true
				remaining--
			}
		}
	}
}

// RunWarmupFunctional is RunWarmup with the warmup phase executed in
// functional mode: the cache/policy/VM state at return is byte-identical
// to a detailed warmup of the same events (single-core; multi-core runs
// differ only in cross-core interleaving — see DESIGN.md §9), at a small
// fraction of the cost. It panics when a core's memory system lacks a
// functional view (a programming error: both built-in adapters have one).
func (s *System) RunWarmupFunctional() {
	if !s.SupportsFunctional() {
		panic("sim: functional warmup on a system without FunctionalMemory support")
	}
	warm := s.adaptiveBudget(warmFactor, s.cfg.WarmupInstr)
	targets := make([]int64, len(s.cores))
	for i := range targets {
		targets[i] = warm
	}
	s.advanceFunctional(targets)
	s.l4.ResetStats()
	s.hbm.ResetStats()
	s.pcm.ResetStats()
	if s.l3 != nil {
		s.l3.ResetStats()
	}
	for _, c := range s.cores {
		c.MarkWindow()
	}
}

// RunSampled executes a sampled run: functional warmup, then alternating
// functional/detailed windows per SamplingConfig, collecting
// per-interval observations until the budget is exhausted or the IPC
// confidence interval tightens below TargetCI. Run dispatches here when
// sampling is enabled.
func (s *System) RunSampled(wlName string) Result {
	sc := s.cfg.Sampling
	if !sc.Enabled() {
		panic("sim: RunSampled without Sampling.Period")
	}
	conf := sc.ConfidenceLevel()

	s.RunWarmupFunctional()

	planned := s.cfg.MeasureInstr / sc.Period
	if planned < 1 {
		planned = 1
	}
	if sc.MaxIntervals > 0 && planned > int64(sc.MaxIntervals) {
		planned = int64(sc.MaxIntervals)
	}
	funcLen := sc.Period - sc.WarmLen - sc.DetailLen

	n := len(s.cores)
	targets := make([]int64, n)
	ipcObs := make([]float64, 0, planned)
	hitObs := make([]float64, 0, planned)
	mpkiObs := make([]float64, 0, planned)
	coreIPCSum := make([]float64, n)
	coreIPCN := make([]int, n)

	// One sample per interval: the cumulative measured clocks only grow,
	// so an every=1 series records exactly one sample per Tick.
	series := metrics.NewSeries(s.reg, 1)

	var mInstr, mCycles int64
	intervals := 0
	converged := false
	for k := int64(0); k < planned; k++ {
		// 1. Functional fast-forward through the bulk of the period.
		if funcLen > 0 {
			for i, c := range s.cores {
				targets[i] = c.Instructions() + funcLen
			}
			s.advanceFunctional(targets)
		}
		// 2. Detailed but unmeasured: re-warm row buffers, MSHRs, and the
		// other timing state functional mode skipped.
		if sc.WarmLen > 0 {
			for i, c := range s.cores {
				targets[i] = c.Instructions() + sc.WarmLen
			}
			s.advanceUntil(targets)
		}
		// 3. Detailed and measured.
		for _, c := range s.cores {
			c.MarkWindow()
		}
		st := s.l4.Stats()
		reads0, hits0 := st.Reads, st.ReadHits
		for i, c := range s.cores {
			targets[i] = c.Instructions() + sc.DetailLen
		}
		finish := s.advanceUntil(targets)

		var instr, maxCyc int64
		ipcSum, ipcN := 0.0, 0
		for i := range s.cores {
			cyc, ins := finish[i].cycles, finish[i].instr
			instr += ins
			if cyc > maxCyc {
				maxCyc = cyc
			}
			if cyc > 0 {
				ipc := float64(ins) / float64(cyc)
				ipcSum += ipc
				ipcN++
				coreIPCSum[i] += ipc
				coreIPCN[i]++
			}
		}
		mInstr += instr
		mCycles += maxCyc
		intervals++
		if ipcN > 0 {
			ipcObs = append(ipcObs, ipcSum/float64(ipcN))
		}
		// Hit rate and MPKI come from L4 stat deltas across the measured
		// window only (the warm segment's traffic is excluded by taking
		// the baseline after step 2). An interval with no L4 reads
		// contributes no hit-rate observation — undefined, not zero.
		dr, dh := st.Reads-reads0, st.ReadHits-hits0
		if dr > 0 {
			hitObs = append(hitObs, float64(dh)/float64(dr))
		}
		if instr > 0 {
			mpkiObs = append(mpkiObs, float64(dr-dh)*1000/float64(instr))
		}
		series.Tick(mInstr, mCycles)

		if sc.TargetCI > 0 && intervals >= sc.MinIntervals {
			if mean, half, ok := stats.MeanCI(ipcObs, conf); ok && mean > 0 && half/mean <= sc.TargetCI {
				converged = true
				break
			}
		}
	}

	sum := &SampleSummary{
		Intervals:  intervals,
		Planned:    int(planned),
		Converged:  converged,
		Confidence: conf,
		IPC:        metricCI(ipcObs, conf),
		HitRate:    metricCI(hitObs, conf),
		MPKI:       metricCI(mpkiObs, conf),
	}
	s.sample = sum

	res := Result{
		Config:   s.cfg.Name,
		Workload: wlName,
		L4:       *s.l4.Stats(),
		HBM:      s.hbm.Stats(),
		PCM:      s.pcm.Stats(),
		Sampled:  sum,
	}
	if s.l3 != nil {
		res.L3 = s.l3.Stats()
	}
	for i := range s.cores {
		if coreIPCN[i] > 0 {
			res.IPC = append(res.IPC, coreIPCSum[i]/float64(coreIPCN[i]))
		} else {
			res.IPC = append(res.IPC, 0)
		}
	}
	res.Cycles = mCycles
	res.Instructions = mInstr
	for _, c := range s.cores {
		reads, writes, _, _ := c.Counters()
		res.Events += int64(reads + writes)
		res.InstructionsTotal += c.Instructions()
	}
	s.resIPC = res.IPC
	rm := &metrics.RunMetrics{Final: s.reg.Snapshot()}
	data := series.Data()
	rm.Series = &data
	res.Metrics = rm
	return res
}

// metricCI folds per-interval observations into a MetricCI.
func metricCI(obs []float64, confidence float64) MetricCI {
	mean, half, ok := stats.MeanCI(obs, confidence)
	return MetricCI{Mean: mean, Half: half, N: len(obs), OK: ok}
}

// registerSamplingMetrics publishes the sampled estimates; the gauges
// read NaN (exported as absent) until the run completes.
func (s *System) registerSamplingMetrics() {
	r := s.reg
	g := func(name, help string, fn func(*SampleSummary) float64) {
		r.GaugeFunc(name, help, func() float64 {
			if s.sample == nil {
				return math.NaN()
			}
			return fn(s.sample)
		})
	}
	g("sampling.intervals", "measured sampling intervals run", func(ss *SampleSummary) float64 {
		return float64(ss.Intervals)
	})
	g("sampling.planned_intervals", "sampling intervals the budget allowed", func(ss *SampleSummary) float64 {
		return float64(ss.Planned)
	})
	g("sampling.converged", "1 when the run stopped early at TargetCI, else 0", func(ss *SampleSummary) float64 {
		if ss.Converged {
			return 1
		}
		return 0
	})
	ci := func(prefix, what string, sel func(*SampleSummary) MetricCI) {
		g("sampling."+prefix+"_mean", "sampled mean of "+what+" over measured intervals", func(ss *SampleSummary) float64 {
			m := sel(ss)
			if !m.Valid() {
				return math.NaN()
			}
			return m.Mean
		})
		g("sampling."+prefix+"_ci_half", "Student-t CI half-width of "+what+" (absent below two intervals)", func(ss *SampleSummary) float64 {
			m := sel(ss)
			if !m.OK {
				return math.NaN()
			}
			return m.Half
		})
	}
	ci("ipc", "mean per-core IPC", func(ss *SampleSummary) MetricCI { return ss.IPC })
	ci("hit_rate", "L4 demand-read hit rate", func(ss *SampleSummary) MetricCI { return ss.HitRate })
	ci("mpki", "L4 misses per kilo-instruction", func(ss *SampleSummary) MetricCI { return ss.MPKI })
}
