package sim

import (
	"fmt"
	"testing"

	"accord/internal/workloads"
)

// BenchmarkFunctionalStep measures the per-instruction cost of the
// functional fast-forward path in the configuration sampling runs it:
// consuming trace-cache events with StepFunctional, against the detailed
// path generating its own stream over the same instruction budget. Each
// iteration warms a fresh system off the clock and times one 2M-instr
// advance, so ns/op ÷ 2e6 is ns/instruction; allocs/op on the functional
// variant is the zero-alloc contract (also enforced per event by
// TestFunctionalStepZeroAlloc). The functional/detailed ratio is the
// sampling speedup recorded in BENCH_PR6.json and discussed in
// DESIGN.md §9.5.
func BenchmarkFunctionalStep(b *testing.B) {
	cfg := ACCORD(2)
	cfg.Scale = 8192
	cfg.Cores = 1
	cfg.WarmupInstr = 500_000
	cfg.MeasureInstr = 40_000
	cfg.Seed = 1
	cfg.DisableAdaptiveBudgets = true

	gen := workloads.MustGet("libquantum", cfg.Cores)
	tc := workloads.NewTraceCache(1 << 30)
	rep := gen
	rep.Source = tc.Source(gen.Specs, cfg.AnchorLines(), cfg.Seed)

	const chunk = 2_000_000
	// Record the stream once, off the clock, so timed replays never
	// extend the recording.
	{
		s := New(cfg, rep)
		s.RunWarmupFunctional()
		s.advanceFunctional([]int64{s.Cores()[0].Instructions() + chunk})
	}

	run := func(b *testing.B, wl workloads.Workload, functional bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := New(cfg, wl)
			s.RunWarmupFunctional()
			targets := []int64{s.Cores()[0].Instructions() + chunk}
			b.StartTimer()
			if functional {
				s.advanceFunctional(targets)
			} else {
				s.advanceUntil(targets)
			}
		}
	}

	b.Run("functional", func(b *testing.B) { run(b, rep, true) })
	b.Run("detailed", func(b *testing.B) { run(b, gen, false) })
}

// BenchmarkSampledRun measures one full design point end to end: a
// SMARTS-style sampled run (functional fast-forward between detailed
// windows) against the exact fully-detailed run it estimates. Same
// config pair as TestSampledWithinCIOfExact, so the wall-clock gap here
// is exactly what buys the equivalence that test proves.
func BenchmarkSampledRun(b *testing.B) {
	exact, sampled := sampledBase(ACCORD(2))
	run := func(b *testing.B, cfg Config) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			wl := workloads.MustGet("libquantum", cfg.Cores)
			if res := New(cfg, wl).Run("libquantum"); res.Instructions == 0 {
				b.Fatal("run retired no instructions")
			}
		}
	}
	b.Run("sampled", func(b *testing.B) { run(b, sampled) })
	b.Run("exact", func(b *testing.B) { run(b, exact) })
}

// BenchmarkSampledParallel measures the parallel interval-sampling
// driver against the sequential one on the same sampled run: detailed
// windows fork off the functional spine onto a worker pool and commit
// in interval order, so wall-clock should approach
// max(spine, detail/workers) on real cores. Results are byte-identical
// at every worker count (TestSampledParallelMatchesSequential), so the
// ratio between sub-benchmarks is pure execution speedup — on a
// single-hardware-thread host the workers>1 variants honestly report
// ~1x plus coordination overhead. The stream is recorded once off the
// clock; every timed run replays it.
func BenchmarkSampledParallel(b *testing.B) {
	_, cfg := sampledBase(ACCORD(2))
	gen := workloads.MustGet("libquantum", cfg.Cores)
	tc := workloads.NewTraceCache(1 << 30)
	wl := gen
	wl.Source = tc.Source(gen.Specs, cfg.AnchorLines(), cfg.Seed)

	// Record the stream once, off the clock.
	New(cfg, wl).Run("libquantum")

	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := cfg
			c.SampleWorkers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if res := New(c, wl).Run("libquantum"); res.Instructions == 0 {
					b.Fatal("run retired no instructions")
				}
			}
		})
	}
}
