package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"accord/internal/sim"
)

// ckptSession builds a session over the golden parameters with the given
// checkpoint directory ("" disables the store).
func ckptSession(dir string, progress *bytes.Buffer) *Session {
	p := goldenParams()
	p.CheckpointDir = dir
	if progress != nil {
		p.Progress = progress
	}
	return NewSession(p)
}

// TestSessionCheckpointIdentity runs every golden case cold, then again
// through a store-backed session twice (populate, restore), and requires
// byte-identical exports each time. This is the golden-suite
// "unchanged with and without a populated store" acceptance criterion in
// miniature, plus proof that the store actually gets used.
func TestSessionCheckpointIdentity(t *testing.T) {
	dir := t.TempDir()
	for _, cfg := range goldenCases() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			cold := goldenExport(t, cfg, false)

			exportWith := func(progress *bytes.Buffer) []byte {
				s := ckptSession(dir, progress)
				s.Run(cfg, goldenWorkload)
				var buf bytes.Buffer
				if err := s.ExportMetrics(nil).WriteJSON(&buf); err != nil {
					t.Fatalf("WriteJSON: %v", err)
				}
				return buf.Bytes()
			}

			var firstLog, secondLog bytes.Buffer
			first := exportWith(&firstLog)
			second := exportWith(&secondLog)

			if !bytes.Equal(cold, first) {
				t.Error("store-populating run diverged from the no-store export")
			}
			if !bytes.Equal(cold, second) {
				t.Error("checkpoint-restored run diverged from the no-store export")
			}
			if !strings.Contains(firstLog.String(), " ran ") {
				t.Errorf("first run should report a cold simulation, got %q", firstLog.String())
			}
			if !strings.Contains(secondLog.String(), " warm ") {
				t.Errorf("second run should report a restored simulation, got %q", secondLog.String())
			}
		})
	}
}

// TestCheckpointTraceCacheInterop proves warm checkpoints are
// interchangeable between generator-backed and replay-backed sessions: a
// store populated with the trace cache off restores into a session with
// it on (cursor adopts a generator snapshot), a store populated with it
// on restores into a generator-backed session (cursor snapshots encode
// generator bytes), and every export matches the cold reference.
func TestCheckpointTraceCacheInterop(t *testing.T) {
	cfg := goldenCases()[1]
	cold := goldenExport(t, cfg, false)

	exportWith := func(dir string, traceCache bool, progress *bytes.Buffer) []byte {
		p := goldenParams()
		p.CheckpointDir = dir
		p.TraceCache = traceCache
		if progress != nil {
			p.Progress = progress
		}
		s := NewSession(p)
		s.Run(cfg, goldenWorkload)
		var buf bytes.Buffer
		if err := s.ExportMetrics(nil).WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}

	for _, tc := range []struct {
		name             string
		populate, replay bool
	}{
		{"generate-then-replay", false, true},
		{"replay-then-generate", true, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if got := exportWith(dir, tc.populate, nil); !bytes.Equal(cold, got) {
				t.Error("populating run diverged from the cold reference")
			}
			var log bytes.Buffer
			if got := exportWith(dir, tc.replay, &log); !bytes.Equal(cold, got) {
				t.Error("restored run diverged from the cold reference")
			}
			if !strings.Contains(log.String(), " warm ") {
				t.Errorf("second run should restore the checkpoint, got %q", log.String())
			}
		})
	}
}

// TestSessionCorruptStoreFallsBack truncates every stored checkpoint and
// verifies the session silently degrades to cold runs with identical
// output.
func TestSessionCorruptStoreFallsBack(t *testing.T) {
	dir := t.TempDir()
	cfg := goldenCases()[1]
	cold := goldenExport(t, cfg, false)

	s := ckptSession(dir, nil)
	s.Run(cfg, goldenWorkload)

	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no checkpoints written: files=%v err=%v", files, err)
	}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(f, b[:len(b)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var log bytes.Buffer
	s2 := ckptSession(dir, &log)
	s2.Run(cfg, goldenWorkload)
	var buf bytes.Buffer
	if err := s2.ExportMetrics(nil).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, buf.Bytes()) {
		t.Error("cold fallback after store corruption diverged from the no-store export")
	}
	if !strings.Contains(log.String(), " ran ") {
		t.Errorf("corrupt store should force a cold run, got %q", log.String())
	}
}

// TestSessionBadCheckpointDir points the store at an unusable path; the
// session must warn and run cold rather than fail.
func TestSessionBadCheckpointDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	p := goldenParams()
	p.CheckpointDir = filepath.Join(file, "nested") // mkdir under a file fails
	s := NewSession(p)
	if s.store != nil {
		t.Fatal("store opened under a file path")
	}
	res := s.Run(goldenCases()[0], goldenWorkload)
	if res.Instructions == 0 {
		t.Error("cold run without a store produced no result")
	}
}

// TestSessionCheckpointParallelism runs a multi-config sweep at
// parallelism 4 against a shared store twice and compares against the
// sequential no-store results, guarding the concurrent save/load path.
func TestSessionCheckpointParallelism(t *testing.T) {
	dir := t.TempDir()
	cases := goldenCases()

	run := func(p Params) map[string]sim.Result {
		s := NewSession(p)
		out := make(map[string]sim.Result, len(cases))
		for _, cfg := range cases {
			out[cfg.Name] = s.Run(cfg, goldenWorkload)
		}
		return out
	}

	base := run(goldenParams())
	for pass := 0; pass < 2; pass++ {
		p := goldenParams()
		p.CheckpointDir = dir
		p.Parallelism = 4
		got := run(p)
		for name, want := range base {
			if got[name].Config != want.Config || got[name].Instructions != want.Instructions ||
				got[name].Cycles != want.Cycles || got[name].L4 != want.L4 {
				t.Errorf("pass %d: %s diverged under parallel store access", pass, name)
			}
		}
	}
}
