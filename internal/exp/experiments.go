package exp

import (
	"fmt"

	"accord/internal/core"
	"accord/internal/dramcache"
	"accord/internal/energy"
	"accord/internal/sim"
	"accord/internal/stats"
	"accord/internal/workloads"
)

// suite returns the paper's 21-workload main suite.
func suite() []string { return workloads.CoreSuite() }

// speedupFigure builds a per-workload speedup table (one column per
// configuration) with a closing geometric-mean row — the shape of the
// paper's speedup figures.
func speedupFigure(s *Session, title string, cfgs []sim.Config, names []string) *stats.Table {
	header := []string{"workload"}
	for _, c := range cfgs {
		header = append(header, c.Name)
	}
	last := cfgs[len(cfgs)-1]
	header = append(header, last.Name+" bar")
	t := stats.NewTable(title, header...)
	geoms := make([]float64, len(cfgs))
	for ci, cfg := range cfgs {
		_, geoms[ci] = s.SuiteSpeedups(cfg, names)
	}
	// Scale bars to the largest speedup of the charted configuration.
	barScale := 0.0
	for _, wl := range names {
		if ws := s.Speedup(last, wl); ws > barScale {
			barScale = ws
		}
	}
	for _, wl := range names {
		row := []string{wl}
		for _, cfg := range cfgs {
			row = append(row, spd(s.Speedup(cfg, wl)))
		}
		row = append(row, stats.Bar(s.Speedup(last, wl), barScale, 24))
		t.AddRow(row...)
	}
	grow := []string{"GMEAN"}
	for _, g := range geoms {
		grow = append(grow, spd(g))
	}
	grow = append(grow, stats.Bar(geoms[len(geoms)-1], barScale, 24))
	t.AddRow(grow...)
	return t
}

// ameanHitRate averages the demand hit rate of cfg across a suite
// (the paper reports Amean hit rates).
func (s *Session) ameanHitRate(cfg sim.Config, names []string) float64 {
	vals := make([]float64, 0, len(names))
	for _, wl := range names {
		vals = append(vals, s.Run(cfg, wl).HitRate())
	}
	return stats.Amean(vals)
}

// ameanAccuracy averages way-prediction accuracy across a suite.
func (s *Session) ameanAccuracy(cfg sim.Config, names []string) float64 {
	vals := make([]float64, 0, len(names))
	for _, wl := range names {
		vals = append(vals, s.Run(cfg, wl).Accuracy())
	}
	return stats.Amean(vals)
}

func init() {
	register(Experiment{
		ID: "fig1", PaperRef: "Figure 1",
		Title: "Impact of associativity: hit-rate, parallel-lookup speedup, idealized speedup",
		Run: func(s *Session) []*stats.Table {
			t := stats.NewTable("Figure 1: 1..8 ways (21-workload suite)",
				"ways", "hit-rate", "speedup(parallel)", "speedup(idealized)")
			base := s.ameanHitRate(sim.DirectMapped(), suite())
			t.AddRow("1", pct(base), "1.000", "1.000")
			for _, ways := range []int{2, 4, 8} {
				hit := s.ameanHitRate(sim.Idealized(ways), suite())
				_, par := s.SuiteSpeedups(sim.Parallel(ways), suite())
				_, ideal := s.SuiteSpeedups(sim.Idealized(ways), suite())
				t.AddRow(fmt.Sprint(ways), pct(hit), spd(par), spd(ideal))
			}
			return []*stats.Table{t}
		},
	})

	register(Experiment{
		ID: "tab2", PaperRef: "Table II",
		Title: "Accuracy and storage of conventional way predictors",
		Run: func(s *Session) []*stats.Table {
			t := stats.NewTable("Table II: way-predictor accuracy (21-workload suite) and 4GB-cache storage",
				"predictor", "storage@4GB", "2-way", "4-way", "8-way")
			type pred struct {
				name    string
				cfg     func(int) sim.Config
				storage func(int) int64
			}
			fullGeom := func(ways int) core.Geometry {
				return core.Geometry{Sets: uint64(4<<30) / uint64(64*ways), Ways: ways}
			}
			preds := []pred{
				{"rand", func(w int) sim.Config { return sim.Unbiased(w, dramcache.LookupPredicted) },
					func(w int) int64 { return 0 }},
				{"mru", sim.MRU,
					func(w int) int64 { return core.NewMRU(fullGeom(w), 1).StorageBytes() }},
				{"partial-tag", sim.PartialTag,
					func(w int) int64 { return core.NewPartialTag(fullGeom(w), 4, 1).StorageBytes() }},
			}
			for _, p := range preds {
				row := []string{p.name, fmtBytes(p.storage(2))}
				for _, ways := range []int{2, 4, 8} {
					row = append(row, pct(s.ameanAccuracy(p.cfg(ways), suite())))
				}
				t.AddRow(row...)
			}
			return []*stats.Table{t}
		},
	})

	register(Experiment{
		ID: "tab5", PaperRef: "Table V",
		Title: "PWS hit-rate, accuracy, and speedup versus PIP",
		Run: func(s *Session) []*stats.Table {
			t := stats.NewTable("Table V: PWS sensitivity to the preferred-way install probability",
				"organization", "hit-rate", "wp-accuracy", "speedup")
			for _, pip := range []float64{0.50, 0.60, 0.70, 0.80, 0.85, 0.90} {
				cfg := sim.PWS(pip)
				_, g := s.SuiteSpeedups(cfg, suite())
				t.AddRow(fmt.Sprintf("2-way PWS (PIP=%.0f%%)", pip*100),
					pct(s.ameanHitRate(cfg, suite())),
					pct(s.ameanAccuracy(cfg, suite())), spd(g))
			}
			dm := sim.DirectMapped()
			t.AddRow("direct-mapped (PIP=100%)",
				pct(s.ameanHitRate(dm, suite())), pct(s.ameanAccuracy(dm, suite())), "1.000")
			return []*stats.Table{t}
		},
	})

	register(Experiment{
		ID: "fig7", PaperRef: "Figure 7",
		Title: "Way-prediction accuracy of PWS, GWS, and PWS+GWS per workload",
		Run: func(s *Session) []*stats.Table {
			cfgs := []sim.Config{sim.Unbiased(2, dramcache.LookupPredicted), sim.PWS(0.85), sim.GWS(), sim.ACCORD(2)}
			labels := []string{"rand", "pws", "gws", "pws+gws"}
			t := stats.NewTable("Figure 7: 2-way way-prediction accuracy",
				append([]string{"workload"}, labels...)...)
			sums := make([]float64, len(cfgs))
			for _, wl := range suite() {
				row := []string{wl}
				for ci, cfg := range cfgs {
					a := s.Run(cfg, wl).Accuracy()
					sums[ci] += a
					row = append(row, pct(a))
				}
				t.AddRow(row...)
			}
			arow := []string{"AMEAN"}
			for _, x := range sums {
				arow = append(arow, pct(x/float64(len(suite()))))
			}
			t.AddRow(arow...)
			return []*stats.Table{t}
		},
	})

	register(Experiment{
		ID: "tab6", PaperRef: "Table VI",
		Title: "Hit-rate of way-steering designs",
		Run: func(s *Session) []*stats.Table {
			t := stats.NewTable("Table VI: 2-way hit-rate under way-steering (Amean)",
				"organization", "hit-rate")
			rows := []struct {
				name string
				cfg  sim.Config
			}{
				{"direct-mapped", sim.DirectMapped()},
				{"2-way rand", sim.Unbiased(2, dramcache.LookupPredicted)},
				{"2-way PWS", sim.PWS(0.85)},
				{"2-way GWS", sim.GWS()},
				{"2-way PWS+GWS", sim.ACCORD(2)},
			}
			for _, r := range rows {
				t.AddRow(r.name, pct(s.ameanHitRate(r.cfg, suite())))
			}
			return []*stats.Table{t}
		},
	})

	register(Experiment{
		ID: "fig10", PaperRef: "Figure 10",
		Title: "Speedup of 2-way DRAM cache designs",
		Run: func(s *Session) []*stats.Table {
			// The paper's six 2-way designs, extended with the three
			// registry organizations (Banshee, Gemini, TDRAM) so the
			// figure places ACCORD against the alternative L4 backends on
			// the same baseline.
			cfgs := []sim.Config{
				sim.Parallel(2), sim.Serial(2), sim.PWS(0.85), sim.GWS(),
				sim.ACCORD(2), sim.PerfectWP(2),
				sim.Banshee(), sim.Gemini(), sim.TDRAM(2),
			}
			return []*stats.Table{speedupFigure(s, "Figure 10: 2-way speedup over direct-mapped", cfgs, suite())}
		},
	})

	register(Experiment{
		ID: "tab7", PaperRef: "Table VII",
		Title: "Hit-rate of ACCORD designs including SWS",
		Run: func(s *Session) []*stats.Table {
			t := stats.NewTable("Table VII: hit-rate of ACCORD designs (Amean)",
				"organization", "hit-rate")
			rows := []struct {
				name string
				cfg  sim.Config
			}{
				{"direct-mapped", sim.DirectMapped()},
				{"ACCORD 2-way", sim.ACCORD(2)},
				{"ACCORD SWS(4,2)", sim.ACCORD(4)},
				{"ACCORD SWS(8,2)", sim.ACCORD(8)},
				{"8-way", sim.Idealized(8)},
			}
			for _, r := range rows {
				t.AddRow(r.name, pct(s.ameanHitRate(r.cfg, suite())))
			}
			return []*stats.Table{t}
		},
	})

	register(Experiment{
		ID: "fig13", PaperRef: "Figure 13",
		Title: "Speedup from extending ACCORD with skewed way-steering",
		Run: func(s *Session) []*stats.Table {
			cfgs := []sim.Config{sim.ACCORD(2), sim.ACCORD(4), sim.ACCORD(8)}
			return []*stats.Table{speedupFigure(s, "Figure 13: ACCORD with SWS", cfgs, suite())}
		},
	})

	register(Experiment{
		ID: "fig12", PaperRef: "Figure 12",
		Title: "ACCORD speedup across all 46 workloads",
		Run: func(s *Session) []*stats.Table {
			cfgs := []sim.Config{sim.ACCORD(2), sim.ACCORD(8)}
			all := workloads.AllSuite()
			t := speedupFigure(s, "Figure 12: all 46 workloads", cfgs, all)
			// The paper additionally calls out the mix subset.
			mixes := all[len(all)-10:]
			m := speedupFigure(s, "Figure 12 (mix subset)", cfgs, mixes)
			return []*stats.Table{t, m}
		},
	})

	register(Experiment{
		ID: "tab8", PaperRef: "Table VIII",
		Title: "Sensitivity of ACCORD speedup to cache size",
		Run: func(s *Session) []*stats.Table {
			// The paper's Table VIII uses its best design (SWS(8,2)); in
			// this model the 8-way organization's row-locality cost makes
			// that instance break-even, so the sensitivity study uses the
			// 2-way ACCORD, whose conflict-reduction benefit the table is
			// actually about.
			t := stats.NewTable("Table VIII: ACCORD 2-way speedup vs DRAM cache size",
				"cache size", "speedup")
			anchor := uint64((4 << 30) / s.p.Scale / 64)
			for _, gb := range []int64{1, 2, 4, 8} {
				target := sim.ACCORD(2)
				target.L4CapacityFull = gb << 30
				target.WorkloadAnchorLines = anchor
				target.Name = fmt.Sprintf("%s@%dGB", target.Name, gb)
				base := sim.DirectMapped()
				base.L4CapacityFull = gb << 30
				base.WorkloadAnchorLines = anchor
				base.Name = fmt.Sprintf("%s@%dGB", base.Name, gb)
				logsum, n := 0.0, 0
				for _, wl := range suite() {
					ws := sim.WeightedSpeedup(s.Run(target, wl), s.Run(base, wl))
					if ws > 0 {
						logsum += ln(ws)
						n++
					}
				}
				t.AddRow(fmt.Sprintf("%d GB", gb), spd(exp1(logsum/float64(n))))
			}
			return []*stats.Table{t}
		},
	})

	register(Experiment{
		ID: "tab9", PaperRef: "Table IX",
		Title: "Storage requirements of ACCORD",
		Run: func(s *Session) []*stats.Table {
			t := stats.NewTable("Table IX: ACCORD storage requirements", "component", "storage")
			full := core.Geometry{Sets: uint64(4<<30) / (64 * 2), Ways: 2}
			pws := core.NewACCORD(core.ACCORDConfig{Geom: full, UsePWS: true, PIP: 0.85, Seed: 1})
			gws := core.NewACCORD(core.ACCORDConfig{Geom: full, UseGWS: true, RITEntries: 64, RLTEntries: 64, Seed: 1})
			sws := core.NewACCORD(core.ACCORDConfig{Geom: core.Geometry{Sets: uint64(4<<30) / (64 * 8), Ways: 8}, UseSWS: true, Seed: 1})
			acc := core.NewACCORD(core.DefaultACCORD(full, 1))
			t.AddRow("probabilistic way-steering", fmtBytes(pws.StorageBytes()))
			t.AddRow("ganged way-steering", fmtBytes(gws.StorageBytes()))
			t.AddRow("skewed way-steering", fmtBytes(sws.StorageBytes()))
			t.AddRow("ACCORD total", fmtBytes(acc.StorageBytes()))
			return []*stats.Table{t}
		},
	})

	register(Experiment{
		ID: "fig14", PaperRef: "Figure 14",
		Title: "ACCORD versus conventional way predictors (2-way speedup)",
		Run: func(s *Session) []*stats.Table {
			// The paper's way predictors, extended with the registry
			// organizations (Banshee, Gemini, TDRAM), which sidestep way
			// prediction entirely — the contrast the figure is about.
			cfgs := []sim.Config{
				sim.CACache(), sim.MRU(2), sim.PartialTag(2), sim.ACCORD(2),
				sim.Banshee(), sim.Gemini(), sim.TDRAM(2),
			}
			return []*stats.Table{speedupFigure(s, "Figure 14: way predictors on a 2-way cache", cfgs, suite())}
		},
	})

	register(Experiment{
		ID: "tab10", PaperRef: "Table X",
		Title: "Comparison of way predictors: storage and accuracy",
		Run: func(s *Session) []*stats.Table {
			t := stats.NewTable("Table X: way-predictor comparison",
				"metric", "ca-cache", "mru", "partial-tag", "accord")
			full := func(w int) core.Geometry {
				return core.Geometry{Sets: uint64(4<<30) / uint64(64*w), Ways: w}
			}
			t.AddRow("storage (2-way)", "0 B",
				fmtBytes(core.NewMRU(full(2), 1).StorageBytes()),
				fmtBytes(core.NewPartialTag(full(2), 4, 1).StorageBytes()),
				"320 B")
			acc := func(cfg sim.Config) string { return pct(s.ameanAccuracy(cfg, suite())) }
			t.AddRow("accuracy (2-way)", acc(sim.CACache()), acc(sim.MRU(2)), acc(sim.PartialTag(2)), acc(sim.ACCORD(2)))
			t.AddRow("accuracy (4-way)", "n/a", acc(sim.MRU(4)), acc(sim.PartialTag(4)), acc(sim.ACCORD(4)))
			t.AddRow("accuracy (8-way)", "n/a", acc(sim.MRU(8)), acc(sim.PartialTag(8)), acc(sim.ACCORD(8)))
			return []*stats.Table{t}
		},
	})

	register(Experiment{
		ID: "fig15", PaperRef: "Figure 15",
		Title: "Off-chip memory system energy",
		Run: func(s *Session) []*stats.Table {
			t := stats.NewTable("Figure 15: memory-system energy normalized to direct-mapped (Gmean)",
				"design", "speedup", "power", "energy", "EDP")
			for _, cfg := range []sim.Config{sim.ACCORD(2), sim.ACCORD(8)} {
				var lsS, lsP, lsE, lsD float64
				n := 0
				for _, wl := range suite() {
					base := s.Baseline(wl)
					tgt := s.Run(cfg, wl)
					scfg := s.apply(cfg)
					be := energy.Compute(scfg.HBM, base.HBM, scfg.PCM, base.PCM, base.Cycles, scfg.CPUGHz)
					te := energy.Compute(scfg.HBM, tgt.HBM, scfg.PCM, tgt.PCM, tgt.Cycles, scfg.CPUGHz)
					rel := energy.Compare(te, be)
					ws := sim.WeightedSpeedup(tgt, base)
					if rel.Power <= 0 || rel.Energy <= 0 || rel.EDP <= 0 || ws <= 0 {
						continue
					}
					lsS += ln(ws)
					lsP += ln(rel.Power)
					lsE += ln(rel.Energy)
					lsD += ln(rel.EDP)
					n++
				}
				f := float64(n)
				t.AddRow(cfg.Name, spd(exp1(lsS/f)), spd(exp1(lsP/f)), spd(exp1(lsE/f)), spd(exp1(lsD/f)))
			}
			return []*stats.Table{t}
		},
	})

	register(Experiment{
		ID: "lru", PaperRef: "Footnote 2",
		Title: "LRU versus random replacement in a 2-way DRAM cache",
		Run: func(s *Session) []*stats.Table {
			t := stats.NewTable("Footnote 2: replacement policy bandwidth tax (speedup vs direct-mapped)",
				"organization", "speedup", "hit-rate")
			for _, cfg := range []sim.Config{sim.Unbiased(2, dramcache.LookupPredicted), sim.LRU2Way()} {
				_, g := s.SuiteSpeedups(cfg, suite())
				t.AddRow(cfg.Name, spd(g), pct(s.ameanHitRate(cfg, suite())))
			}
			return []*stats.Table{t}
		},
	})
}

// fmtBytes renders a byte count with a human unit.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.0f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.0f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
