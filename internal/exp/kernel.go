package exp

import (
	"fmt"

	"accord/internal/core"
	"accord/internal/dram"
	"accord/internal/dramcache"
	"accord/internal/memtypes"
	"accord/internal/stats"
)

// kernelCache builds a small 2-way cache with a PWS policy for the cyclic
// reference kernel of Section IV-B-1. This deliberately constructs the
// concrete nway organization rather than going through the backend
// registry: the kernel is a microbenchmark of PWS way-steering mechanics,
// not an organization comparison, so it is pinned to the paper's cache.
func kernelCache(sets uint64, pip float64, seed int64) *dramcache.Cache {
	hbm := dram.New(dram.HBM(), 3.0)
	pcm := dram.New(dram.PCM(), 3.0)
	pol := core.NewACCORD(core.ACCORDConfig{
		Geom:   core.Geometry{Sets: sets, Ways: 2},
		UsePWS: true, PIP: pip, Seed: seed,
	})
	return dramcache.New(dramcache.Config{
		CapacityBytes: int64(sets) * 2 * memtypes.LineSize,
		Ways:          2,
		Lookup:        dramcache.LookupPredicted,
	}, pol, hbm, pcm)
}

// cyclicHitRate runs the (a,b)^N kernel: two lines that map to the same
// set and share the same preferred way, accessed alternately N times, on a
// fresh cache. It returns the hit rate over the 2N accesses, averaged over
// trials (each trial a different set and seed).
func cyclicHitRate(pip float64, n, trials int) float64 {
	const sets = 256
	var hits, total uint64
	for trial := 0; trial < trials; trial++ {
		c := kernelCache(sets, pip, int64(trial+1))
		set := uint64(trial) % sets
		// Both tags even: both lines prefer way 0 and conflict under PWS.
		a := memtypes.LineAddr(uint64(2)*sets + set)
		b := memtypes.LineAddr(uint64(4)*sets + set)
		for i := 0; i < n; i++ {
			c.AccessRead(0, a)
			c.AccessRead(0, b)
		}
		s := c.Stats()
		hits += s.ReadHits
		total += s.Reads
	}
	return float64(hits) / float64(total)
}

func init() {
	register(Experiment{
		ID: "fig6", PaperRef: "Figure 6",
		Title: "Cyclic reference kernel (a,b)^N: hit-rate versus PIP",
		Run: func(s *Session) []*stats.Table {
			pips := []float64{0.50, 0.70, 0.80, 0.90}
			header := []string{"N"}
			for _, p := range pips {
				header = append(header, fmt.Sprintf("PIP=%.0f%%", p*100))
			}
			header = append(header, "direct-mapped")
			t := stats.NewTable("Figure 6: cyclic-reference kernel hit-rate (2-way PWS)", header...)
			trials := 200
			if s.p.Scale > 512 { // quick mode
				trials = 50
			}
			for _, n := range []int{2, 4, 8, 16, 32, 64, 128} {
				row := []string{fmt.Sprint(n)}
				for _, p := range pips {
					row = append(row, pct(cyclicHitRate(p, n, trials)))
				}
				row = append(row, pct(cyclicHitRate(1.0, n, trials))) // PIP=100% = direct-mapped
				t.AddRow(row...)
			}
			return []*stats.Table{t}
		},
	})

	register(Experiment{
		ID: "tab1", PaperRef: "Table I",
		Title: "Probe counts per lookup design (measured against the analytic table)",
		Run: func(s *Session) []*stats.Table {
			t := stats.NewTable("Table I: 72B transfers per access on a 4-way cache (measured)",
				"organization", "hit transfers (avg)", "miss transfers")
			const ways = 4
			const sets = 64
			build := func(lookup dramcache.Lookup) *dramcache.Cache {
				hbm := dram.New(dram.HBM(), 3.0)
				pcm := dram.New(dram.PCM(), 3.0)
				// PIP=1.0 steers every install to its preferred way, so
				// line placement is known exactly.
				pol := core.NewACCORD(core.ACCORDConfig{
					Geom:   core.Geometry{Sets: sets, Ways: ways},
					UsePWS: true, PIP: 1.0, Seed: 1,
				})
				return dramcache.New(dramcache.Config{
					CapacityBytes: sets * ways * memtypes.LineSize,
					Ways:          ways,
					Lookup:        lookup,
				}, pol, hbm, pcm)
			}
			measure := func(lookup dramcache.Lookup) (hitAvg float64, missN float64) {
				c := build(lookup)
				// Install one line per way (tags 0..3 prefer ways 0..3).
				lines := make([]memtypes.LineAddr, ways)
				for w := 0; w < ways; w++ {
					lines[w] = memtypes.LineAddr(uint64(w)*sets + 1)
					c.AccessRead(0, lines[w])
				}
				before := *c.Stats()
				for _, l := range lines {
					c.AccessRead(0, l) // all hits
				}
				afterHits := *c.Stats()
				hitAvg = float64(afterHits.ProbeReads-before.ProbeReads) / float64(ways)
				c.AccessRead(0, memtypes.LineAddr(uint64(99)*sets+2)) // a miss
				after := *c.Stats()
				missN = float64(after.ProbeReads - afterHits.ProbeReads)
				return hitAvg, missN
			}
			rows := []struct {
				name   string
				lookup dramcache.Lookup
			}{
				{"parallel lookup (4-way)", dramcache.LookupParallel},
				{"serial lookup (4-way)", dramcache.LookupSerial},
				{"way-predicted (4-way)", dramcache.LookupPredicted},
				{"idealized (4-way)", dramcache.LookupIdealized},
			}
			// Direct-mapped reference first.
			{
				hbm := dram.New(dram.HBM(), 3.0)
				pcm := dram.New(dram.PCM(), 3.0)
				dm := dramcache.New(dramcache.Config{
					CapacityBytes: sets * memtypes.LineSize, Ways: 1,
					Lookup: dramcache.LookupPredicted,
				}, core.NewRand(core.Geometry{Sets: sets, Ways: 1}, 1), hbm, pcm)
				dm.AccessRead(0, 1)
				before := *dm.Stats()
				dm.AccessRead(0, 1)
				mid := *dm.Stats()
				dm.AccessRead(0, 1+sets)
				after := *dm.Stats()
				t.AddRow("direct-mapped",
					fmt.Sprintf("%.2f", float64(mid.ProbeReads-before.ProbeReads)),
					fmt.Sprintf("%.0f", float64(after.ProbeReads-mid.ProbeReads)))
			}
			for _, r := range rows {
				h, m := measure(r.lookup)
				t.AddRow(r.name, fmt.Sprintf("%.2f", h), fmt.Sprintf("%.0f", m))
			}
			return []*stats.Table{t}
		},
	})
}
