// Package exp defines one reproducible experiment per table and figure of
// the paper's evaluation. Each experiment produces plain-text tables whose
// rows/series mirror what the paper reports; cmd/accordbench and the
// repository benchmarks drive them.
package exp

import (
	"fmt"
	"io"
	"math"
	"sort"

	"accord/internal/sim"
	"accord/internal/stats"
	"accord/internal/workloads"
)

// Params controls experiment scale and duration.
type Params struct {
	Scale        int64
	Cores        int
	WarmupInstr  int64
	MeasureInstr int64
	Seed         int64

	// Progress, when non-nil, receives one line per completed simulation.
	Progress io.Writer
}

// DefaultParams returns the full-quality setting used to produce
// EXPERIMENTS.md: 1/256-scale capacities with adaptive instruction budgets.
func DefaultParams() Params {
	return Params{Scale: 256, Cores: 16, WarmupInstr: 4_000_000, MeasureInstr: 4_000_000, Seed: 1}
}

// QuickParams returns a reduced setting for benchmarks and smoke tests:
// 1/1024-scale capacities and short windows.
func QuickParams() Params {
	return Params{Scale: 1024, Cores: 8, WarmupInstr: 400_000, MeasureInstr: 400_000, Seed: 1}
}

// Session memoizes simulation results so experiments sharing design points
// (every figure reuses the direct-mapped baseline) pay for each run once.
type Session struct {
	p     Params
	cache map[string]sim.Result
}

// NewSession creates a session for the given parameters.
func NewSession(p Params) *Session {
	if p.Cores <= 0 {
		p.Cores = 16
	}
	if p.Scale <= 0 {
		p.Scale = 256
	}
	return &Session{p: p, cache: make(map[string]sim.Result)}
}

// Params returns the session parameters.
func (s *Session) Params() Params { return s.p }

// apply rewrites a catalog config with the session's scale and budgets.
func (s *Session) apply(cfg sim.Config) sim.Config {
	cfg.Scale = s.p.Scale
	cfg.Cores = s.p.Cores
	cfg.WarmupInstr = s.p.WarmupInstr
	cfg.MeasureInstr = s.p.MeasureInstr
	cfg.Seed = s.p.Seed
	return cfg
}

// Run simulates cfg on the named workload, memoized.
func (s *Session) Run(cfg sim.Config, workload string) sim.Result {
	cfg = s.apply(cfg)
	key := fmt.Sprintf("%s|%s|%d|%d|%d|%d", cfg.Name, workload, cfg.Scale, cfg.Cores, cfg.MeasureInstr, cfg.Seed)
	if r, ok := s.cache[key]; ok {
		return r
	}
	wl := workloads.MustGet(workload, cfg.Cores)
	r := sim.New(cfg, wl).Run(workload)
	s.cache[key] = r
	if s.p.Progress != nil {
		fmt.Fprintf(s.p.Progress, "  ran %-22s %-12s hit=%.3f ipc=%.4f\n", cfg.Name, workload, r.HitRate(), r.MeanIPC())
	}
	return r
}

// Baseline returns the direct-mapped baseline result for a workload.
func (s *Session) Baseline(workload string) sim.Result {
	return s.Run(sim.DirectMapped(), workload)
}

// Speedup returns the weighted speedup of cfg over the baseline.
func (s *Session) Speedup(cfg sim.Config, workload string) float64 {
	return sim.WeightedSpeedup(s.Run(cfg, workload), s.Baseline(workload))
}

// SuiteSpeedups evaluates cfg across a suite, returning per-workload
// speedups plus the geometric mean (the paper's summary statistic).
func (s *Session) SuiteSpeedups(cfg sim.Config, suite []string) (per []float64, geomean float64) {
	per = make([]float64, len(suite))
	logsum := 0.0
	n := 0
	for i, wl := range suite {
		per[i] = s.Speedup(cfg, wl)
		if per[i] > 0 {
			logsum += math.Log(per[i])
			n++
		}
	}
	if n > 0 {
		geomean = math.Exp(logsum / float64(n))
	}
	return per, geomean
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID       string // e.g. "fig10", "tab5"
	PaperRef string // e.g. "Figure 10"
	Title    string
	Run      func(*Session) []*stats.Table
}

// registry is populated by init functions in experiments.go and kernel.go.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment, ordered as they appear in the paper.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return order(out[i].ID) < order(out[j].ID) })
	return out
}

// order gives experiments a paper-reading order.
func order(id string) int {
	idx := map[string]int{
		"fig1": 1, "tab1": 2, "tab2": 3, "fig6": 4, "tab5": 5, "fig7": 6,
		"tab6": 7, "fig10": 8, "tab7": 9, "fig13": 10, "fig12": 11,
		"tab8": 12, "tab9": 13, "fig14": 14, "tab10": 15, "fig15": 16, "lru": 17,
		"ablgws": 18, "ablsws": 19, "ablhier": 20,
	}
	if n, ok := idx[id]; ok {
		return n
	}
	return 99
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists all experiment identifiers in paper order.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// ln and exp1 are short aliases used by the experiment definitions.
func ln(x float64) float64   { return math.Log(x) }
func exp1(x float64) float64 { return math.Exp(x) }

// pct formats a fraction as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// spd formats a speedup.
func spd(x float64) string { return fmt.Sprintf("%.3f", x) }
