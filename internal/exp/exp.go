// Package exp defines one reproducible experiment per table and figure of
// the paper's evaluation. Each experiment produces plain-text tables whose
// rows/series mirror what the paper reports; cmd/accordbench and the
// repository benchmarks drive them.
package exp

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"accord/internal/ckpt"
	"accord/internal/dram"
	"accord/internal/dramcache"
	"accord/internal/sim"
	"accord/internal/stats"
	"accord/internal/workloads"
)

// Params controls experiment scale and duration.
type Params struct {
	Scale        int64
	Cores        int
	WarmupInstr  int64
	MeasureInstr int64
	Seed         int64

	// Parallelism bounds how many simulations the session runs
	// concurrently when experiments are executed through RunExperiment
	// or Prefetch. Zero selects GOMAXPROCS; 1 forces sequential runs.
	// Table output is byte-identical at every setting: each simulation
	// is deterministic given (config, workload, seed), and tables are
	// always assembled on the calling goroutine from memoized results.
	Parallelism int

	// Progress, when non-nil, receives one line per completed simulation.
	// Writes are serialized by the session, so any io.Writer is safe.
	Progress io.Writer

	// EpochInstr, when positive, enables per-epoch metrics sampling in
	// every simulation the session runs (see sim.Config.EpochInstr); the
	// series travel with the results into ExportMetrics. Sampling is
	// passive, so tables are unaffected at any setting.
	EpochInstr int64

	// CheckpointDir, when non-empty, points at a warm-state checkpoint
	// store (see internal/ckpt): before warming up a design point the
	// session looks for a checkpoint of its warmup/measure boundary and
	// restores it instead of re-simulating warmup; misses warm up cold
	// and populate the store. Restored runs are byte-identical to cold
	// runs, so tables are unaffected; only wall-clock time changes.
	CheckpointDir string

	// TraceCache enables the shared memoizing workload trace cache (see
	// workloads.TraceCache): the first design point to consume a per-core
	// event stream records it, and every other design point on the same
	// workload replays the recording instead of re-generating it. One
	// cache serves the whole session, shared across the Parallelism
	// worker pool. Replayed events are byte-identical to generated ones,
	// so tables are unaffected at either setting; only wall-clock time
	// changes.
	TraceCache bool

	// TraceCacheBytes caps the trace cache's recorded bytes; past it,
	// least-recently-used recordings are dropped. Zero selects
	// workloads.DefaultTraceCacheBytes.
	TraceCacheBytes int64

	// Sampling, when enabled (Period > 0), runs every simulation in the
	// session as a SMARTS-style interval-sampled run (see sim.Config.
	// Sampling): warmup and most of the measured phase execute in
	// functional fast-forward mode, short detailed windows produce
	// per-interval observations, and results report means with Student-t
	// confidence intervals. Sampling changes reported numbers (they are
	// estimates of the exact run's values, with quoted CIs), so sampled
	// sessions memoize separately from exact ones. It forces
	// DisableAdaptiveBudgets and supersedes EpochInstr (sampled runs get
	// a per-interval series instead of an epoch series).
	Sampling sim.SamplingConfig

	// SampleWorkers sets sim.Config.SampleWorkers for sampled runs: how
	// many goroutines execute detailed interval windows in parallel
	// (0 = GOMAXPROCS, 1 = sequential). It is pure execution strategy —
	// results are identical at any setting by construction — so it is
	// deliberately excluded from the memo key: a session warmed at one
	// worker count serves another without recomputation.
	SampleWorkers int

	// SpineCheckpointDir, when non-empty, memoizes every sampled run's
	// functional spine through the on-disk checkpoint lattice (see
	// sim.Config.SpineCheckpointDir): one lattice directory is shared by
	// every design point in the sweep (entries are content-addressed by
	// fingerprint), so repeat points — across sessions, or sweeps varying
	// only measurement knobs — skip the fast-forward entirely. Like
	// SampleWorkers it cannot affect results and is excluded from the
	// memo key. Ignored when Sampling is disabled.
	SpineCheckpointDir string

	// SpineStride sets sim.Config.SpineStride for sampled runs: how many
	// interval boundaries apart lattice saves land (0 = automatic from
	// snapshot size).
	SpineStride int
}

// parallelism returns the effective worker count.
func (p Params) parallelism() int {
	if p.Parallelism > 0 {
		return p.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultParams returns the full-quality setting used to produce
// EXPERIMENTS.md: 1/256-scale capacities with adaptive instruction budgets.
func DefaultParams() Params {
	return Params{Scale: 256, Cores: 16, WarmupInstr: 4_000_000, MeasureInstr: 4_000_000, Seed: 1, TraceCache: true}
}

// QuickParams returns a reduced setting for benchmarks and smoke tests:
// 1/1024-scale capacities and short windows.
func QuickParams() Params {
	return Params{Scale: 1024, Cores: 8, WarmupInstr: 400_000, MeasureInstr: 400_000, Seed: 1, TraceCache: true}
}

// key identifies one design point: the workload plus every
// result-affecting field of the applied sim.Config. sim.Config.Policy is
// a function and cannot be compared; the configuration catalog keys
// policy identity through Name, which is part of the key.
type key struct {
	Config   string
	Workload string

	Cores      int
	IssueWidth int
	MSHRs      int
	CPUGHz     float64
	SRAMLat    int64

	Scale          int64
	L4CapacityFull int64
	Ways           int
	Lookup         dramcache.Lookup
	LRUReplacement bool
	UseCA          bool
	Backend        string
	FullHierarchy  bool

	NVMCapacityFull     int64
	WorkloadAnchorLines uint64

	HBM dram.Config
	PCM dram.Config

	WarmupInstr            int64
	MeasureInstr           int64
	DisableAdaptiveBudgets bool
	EpochInstr             int64
	Sampling               sim.SamplingConfig

	Seed int64
}

// makeKey builds the memo key for an already-applied configuration.
func makeKey(cfg sim.Config, workload string) key {
	return key{
		Config:                 cfg.Name,
		Workload:               workload,
		Cores:                  cfg.Cores,
		IssueWidth:             cfg.IssueWidth,
		MSHRs:                  cfg.MSHRs,
		CPUGHz:                 cfg.CPUGHz,
		SRAMLat:                cfg.SRAMLat,
		Scale:                  cfg.Scale,
		L4CapacityFull:         cfg.L4CapacityFull,
		Ways:                   cfg.Ways,
		Lookup:                 cfg.Lookup,
		LRUReplacement:         cfg.LRUReplacement,
		UseCA:                  cfg.UseCA,
		Backend:                cfg.BackendName(),
		FullHierarchy:          cfg.FullHierarchy,
		NVMCapacityFull:        cfg.NVMCapacityFull,
		WorkloadAnchorLines:    cfg.WorkloadAnchorLines,
		HBM:                    cfg.HBM,
		PCM:                    cfg.PCM,
		WarmupInstr:            cfg.WarmupInstr,
		MeasureInstr:           cfg.MeasureInstr,
		DisableAdaptiveBudgets: cfg.DisableAdaptiveBudgets,
		EpochInstr:             cfg.EpochInstr,
		Sampling:               cfg.Sampling,
		Seed:                   cfg.Seed,
	}
}

// entry is one memoized (or in-flight) simulation. The goroutine that
// inserts the entry runs the simulation and closes done; every other
// caller of the same design point blocks on done instead of duplicating
// the run.
type entry struct {
	done chan struct{}
	res  sim.Result
}

// Session memoizes simulation results so experiments sharing design points
// (every figure reuses the direct-mapped baseline) pay for each run once.
// It is safe for concurrent use: simultaneous Run calls on the same design
// point coalesce onto a single simulation.
type Session struct {
	p Params

	mu   sync.Mutex
	memo map[key]*entry

	progressMu sync.Mutex

	// store is the warm-state checkpoint store, nil when disabled.
	// Concurrent workers may hit it freely: loads are read-only and
	// saves are atomic last-writer-wins of identical content.
	store *ckpt.Store

	// traces is the shared workload trace cache, nil when disabled. It is
	// safe for concurrent use; every worker records into and replays from
	// the same recordings.
	traces *workloads.TraceCache

	// planning, when non-nil, turns Run into a recorder: design points
	// are collected and zero results returned without simulating.
	planning *planRecorder

	// workMu guards work, the sampled-run execution split accumulated
	// across every simulation the session ran (not memo hits).
	workMu sync.Mutex
	work   sim.SampleWork
}

// NewSession creates a session for the given parameters.
func NewSession(p Params) *Session {
	if p.Cores <= 0 {
		p.Cores = 16
	}
	if p.Scale <= 0 {
		p.Scale = 256
	}
	s := &Session{p: p, memo: make(map[key]*entry)}
	if p.CheckpointDir != "" {
		store, err := ckpt.Open(p.CheckpointDir)
		if err != nil {
			// Checkpointing is an accelerator, never a correctness
			// dependency: warn and run cold.
			fmt.Fprintf(os.Stderr, "exp: checkpoint store disabled: %v\n", err)
		} else {
			s.store = store
		}
	}
	if p.TraceCache {
		s.traces = workloads.NewTraceCache(p.TraceCacheBytes)
	}
	return s
}

// TraceCacheStats reports the session trace cache's counters; all zeros
// when the cache is disabled.
func (s *Session) TraceCacheStats() (traces int, bytes int64, hits, misses, evicted uint64) {
	if s.traces == nil {
		return 0, 0, 0, 0, 0
	}
	return s.traces.Stats()
}

// Params returns the session parameters.
func (s *Session) Params() Params { return s.p }

// apply rewrites a catalog config with the session's scale and budgets.
func (s *Session) apply(cfg sim.Config) sim.Config {
	cfg.Scale = s.p.Scale
	cfg.Cores = s.p.Cores
	cfg.WarmupInstr = s.p.WarmupInstr
	cfg.MeasureInstr = s.p.MeasureInstr
	cfg.Seed = s.p.Seed
	cfg.EpochInstr = s.p.EpochInstr
	if s.p.Sampling.Enabled() {
		// Interval sampling owns the measured-phase layout and the metric
		// series; adaptive budgets and epoch sampling would fight it (see
		// SamplingConfig.validate for why these are rejected).
		cfg.Sampling = s.p.Sampling
		cfg.SampleWorkers = s.p.SampleWorkers
		cfg.SpineCheckpointDir = s.p.SpineCheckpointDir
		cfg.SpineStride = s.p.SpineStride
		cfg.DisableAdaptiveBudgets = true
		cfg.EpochInstr = 0
	}
	return cfg
}

// Run simulates cfg on the named workload, memoized. Concurrent callers
// of the same design point share one simulation.
func (s *Session) Run(cfg sim.Config, workload string) sim.Result {
	return s.run(0, cfg, workload)
}

// run is Run with a worker ID for progress reporting (0 = the caller's
// own goroutine, 1..N = pool workers).
func (s *Session) run(worker int, cfg sim.Config, workload string) sim.Result {
	cfg = s.apply(cfg)
	k := makeKey(cfg, workload)
	if s.planning != nil {
		s.planning.record(k, cfg, workload)
		return sim.Result{Config: cfg.Name, Workload: workload}
	}
	s.mu.Lock()
	if e, ok := s.memo[k]; ok {
		s.mu.Unlock()
		<-e.done
		return e.res
	}
	e := &entry{done: make(chan struct{})}
	s.memo[k] = e
	s.mu.Unlock()
	defer close(e.done)
	start := time.Now()
	wl := workloads.MustGet(workload, cfg.Cores)
	if s.traces != nil && wl.Streams == nil && wl.Source == nil {
		wl.Source = s.traces.Source(wl.Specs, cfg.AnchorLines(), cfg.Seed)
	}
	var info sim.RunInfo
	// The pprof labels make -cpuprofile output attributable per design
	// point: `go tool pprof -tags` breaks time down by config and
	// workload, and label filters (-tagfocus) isolate one of either.
	pprof.Do(context.Background(), pprof.Labels("config", cfg.Name, "workload", workload), func(context.Context) {
		e.res, info = sim.RunWithStoreInfo(cfg, wl, s.store, workload)
	})
	s.addWork(info.Work)
	s.progress(worker, cfg.Name, workload, e.res, info.Restored, time.Since(start))
	return e.res
}

// addWork folds one sampled run's execution split into the session totals.
func (s *Session) addWork(w sim.SampleWork) {
	if w.Workers == 0 {
		return // exact run: no sampled-work split to report
	}
	s.workMu.Lock()
	defer s.workMu.Unlock()
	if w.Workers > s.work.Workers {
		s.work.Workers = w.Workers
	}
	s.work.Dispatched += w.Dispatched
	s.work.Committed += w.Committed
	s.work.Discarded += w.Discarded
	s.work.SpineTime += w.SpineTime
	s.work.DetailTime += w.DetailTime
	s.work.WallTime += w.WallTime
	s.work.SpineSaveTime += w.SpineSaveTime
	s.work.LatticeHits += w.LatticeHits
	s.work.LatticeMisses += w.LatticeMisses
}

// SampleWorkTotals reports the sampled-run execution split summed over
// every simulation the session actually ran (Workers is the maximum
// resolved worker count; zero value when no sampled run completed).
func (s *Session) SampleWorkTotals() sim.SampleWork {
	s.workMu.Lock()
	defer s.workMu.Unlock()
	return s.work
}

// progress emits one serialized line per completed simulation. The verb
// slot distinguishes cold runs ("ran ") from checkpoint-restored ones
// ("warm"); without a store the output is byte-identical to older
// sessions.
func (s *Session) progress(worker int, cfg, workload string, r sim.Result, restored bool, took time.Duration) {
	if s.p.Progress == nil {
		return
	}
	verb := "ran "
	if restored {
		verb = "warm"
	}
	s.progressMu.Lock()
	defer s.progressMu.Unlock()
	fmt.Fprintf(s.p.Progress, "  [w%02d] %s %-22s %-12s hit=%.3f ipc=%.4f (%.2fs)\n",
		worker, verb, cfg, workload, r.HitRate(), r.MeanIPC(), took.Seconds())
}

// TotalEvents returns the total memory events and retired instructions
// simulated across every completed design point in the session — the
// numerators for the events/second throughput summary. In-flight runs
// are skipped rather than waited for.
func (s *Session) TotalEvents() (events, instructions int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.memo {
		select {
		case <-e.done:
			events += e.res.Events
			instructions += e.res.InstructionsTotal
		default:
		}
	}
	return events, instructions
}

// memoSize returns the number of memoized design points (for tests).
func (s *Session) memoSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.memo)
}

// Baseline returns the direct-mapped baseline result for a workload.
func (s *Session) Baseline(workload string) sim.Result {
	return s.Run(sim.DirectMapped(), workload)
}

// Speedup returns the weighted speedup of cfg over the baseline.
func (s *Session) Speedup(cfg sim.Config, workload string) float64 {
	return sim.WeightedSpeedup(s.Run(cfg, workload), s.Baseline(workload))
}

// SuiteSpeedups evaluates cfg across a suite, returning per-workload
// speedups plus the geometric mean (the paper's summary statistic).
func (s *Session) SuiteSpeedups(cfg sim.Config, suite []string) (per []float64, geomean float64) {
	per = make([]float64, len(suite))
	logsum := 0.0
	n := 0
	for i, wl := range suite {
		per[i] = s.Speedup(cfg, wl)
		if per[i] > 0 {
			logsum += math.Log(per[i])
			n++
		}
	}
	if n > 0 {
		geomean = math.Exp(logsum / float64(n))
	}
	return per, geomean
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID       string // e.g. "fig10", "tab5"
	PaperRef string // e.g. "Figure 10"
	Title    string
	Run      func(*Session) []*stats.Table
}

// registry is populated by init functions in experiments.go and kernel.go.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment, ordered as they appear in the paper.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return order(out[i].ID) < order(out[j].ID) })
	return out
}

// order gives experiments a paper-reading order.
func order(id string) int {
	idx := map[string]int{
		"fig1": 1, "tab1": 2, "tab2": 3, "fig6": 4, "tab5": 5, "fig7": 6,
		"tab6": 7, "fig10": 8, "tab7": 9, "fig13": 10, "fig12": 11,
		"tab8": 12, "tab9": 13, "fig14": 14, "tab10": 15, "fig15": 16, "lru": 17,
		"ablgws": 18, "ablsws": 19, "ablhier": 20, "backends": 21,
	}
	if n, ok := idx[id]; ok {
		return n
	}
	return 99
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists all experiment identifiers in paper order.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// ln and exp1 are short aliases used by the experiment definitions.
func ln(x float64) float64   { return math.Log(x) }
func exp1(x float64) float64 { return math.Exp(x) }

// pct formats a fraction as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// spd formats a speedup.
func spd(x float64) string { return fmt.Sprintf("%.3f", x) }
