package exp

import (
	"fmt"

	"accord/internal/sim"
	"accord/internal/stats"
)

// The backends experiment compares the pluggable L4 organizations the
// registry offers against the paper's designs: Banshee's page-granularity
// frequency tracking, Gemini's hybrid set/way mapping, and TDRAM's
// tag-embedded single-access rows, alongside 2-way ACCORD, all over the
// direct-mapped baseline. It is not a paper figure — the paper evaluates
// only its own organization — but the same harness, workloads, and
// metrics make the cross-paper comparison meaningful.

func init() {
	register(Experiment{
		ID: "backends", PaperRef: "registry (not a paper figure)",
		Title: "Pluggable L4 organizations: Banshee, Gemini, TDRAM vs ACCORD",
		Run: func(s *Session) []*stats.Table {
			cfgs := []sim.Config{
				sim.Banshee(), sim.Gemini(), sim.TDRAM(2), sim.ACCORD(2),
			}
			fig := speedupFigure(s, "Backend comparison: speedup over direct-mapped",
				cfgs, ablationSample)

			sum := stats.NewTable("Backend comparison: traffic and prediction profile",
				"backend", "hit-rate", "wp-accuracy", "probes/read", "L4 B/demand B")
			for _, cfg := range cfgs {
				var probes, bloat float64
				for _, wl := range ablationSample {
					r := s.Run(cfg, wl)
					probes += r.L4.ProbesPerRead()
					demand := float64(r.L4.Reads) * 64
					if demand > 0 {
						bloat += float64(r.HBM.BytesRead+r.HBM.BytesWritten) / demand
					}
				}
				n := float64(len(ablationSample))
				sum.AddRow(cfg.Name,
					pct(s.ameanHitRate(cfg, ablationSample)),
					pct(s.ameanAccuracy(cfg, ablationSample)),
					fmt.Sprintf("%.2f", probes/n),
					fmt.Sprintf("%.2f", bloat/n))
			}
			return []*stats.Table{fig, sum}
		},
	})
}
