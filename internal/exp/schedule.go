package exp

import (
	"sync"
	"sync/atomic"

	"accord/internal/sim"
	"accord/internal/stats"
)

// The scheduler turns an experiment into a two-phase job: a planning pass
// enumerates the design points the experiment will simulate, then a
// bounded worker pool fans them out across cores. The experiment's table
// builder finally runs on the calling goroutine against the warm memo, so
// parallel and sequential executions render byte-identical tables — the
// pool changes only who performs each deterministic simulation, never
// which results the tables are assembled from.

// Point is one (configuration, workload) design point of an experiment.
type Point struct {
	Config   sim.Config
	Workload string
}

// planRecorder collects the distinct design points a planning pass
// requests, in first-use order.
type planRecorder struct {
	mu    sync.Mutex
	seen  map[key]struct{}
	order []Point
}

func (p *planRecorder) record(k key, cfg sim.Config, workload string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.seen[k]; ok {
		return
	}
	p.seen[k] = struct{}{}
	p.order = append(p.order, Point{Config: cfg, Workload: workload})
}

// Plan dry-runs e's table builder against a recording session and returns
// the distinct design points it would simulate, in first-use order. The
// recording session hands back zero-valued results without simulating;
// the experiment catalog picks its design points independently of result
// values, so the plan matches the real execution. If a builder cannot
// tolerate zero results and panics, the points gathered up to that moment
// are returned — the remainder simply runs lazily (and still memoized)
// during the real pass.
func (s *Session) Plan(e Experiment) []Point {
	rec := &planRecorder{seen: make(map[key]struct{})}
	ps := &Session{p: s.p, planning: rec}
	ps.p.Progress = nil
	func() {
		defer func() { _ = recover() }()
		e.Run(ps)
	}()
	return rec.order
}

// Prefetch simulates the given design points on a bounded worker pool,
// populating the session memo. Points already cached or in flight are
// deduplicated by the memo itself, so overlapping prefetches (every
// experiment shares the direct-mapped baseline) never duplicate work.
// It returns once every point is resolved.
func (s *Session) Prefetch(points []Point) {
	workers := s.p.parallelism()
	if workers > len(points) {
		workers = len(points)
	}
	if workers < 1 {
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(points) {
					return
				}
				s.run(id, points[i].Config, points[i].Workload)
			}
		}(w)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// RunExperiment executes one experiment: when the session allows more
// than one worker, its design points are planned and fanned out first;
// the tables are then assembled sequentially from the memo. Output is
// byte-identical to calling e.Run(s) directly.
func (s *Session) RunExperiment(e Experiment) []*stats.Table {
	if s.p.parallelism() > 1 {
		s.Prefetch(s.Plan(e))
	}
	return e.Run(s)
}
