package exp

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"accord/internal/sim"
)

// update regenerates the golden metrics snapshots:
//
//	go test ./internal/exp -run TestGoldenMetrics -update
var update = flag.Bool("update", false, "rewrite testdata/golden snapshots")

// goldenParams is deliberately tiny and fully pinned: every field that
// affects results is explicit, so the snapshots are stable across
// machines and parallelism settings.
func goldenParams() Params {
	return Params{
		Scale:        8192,
		Cores:        4,
		WarmupInstr:  50_000,
		MeasureInstr: 50_000,
		Seed:         1,
		EpochInstr:   20_000,
		Parallelism:  1,
		// ACCORD_CHECKPOINT_DIR opts the golden suite into a warm-state
		// checkpoint store (CI points it at a cached directory). The
		// snapshots must pass identically with and without it — that is
		// the bit-identity contract — so plugging it in here doubles as
		// the end-to-end proof on every CI run.
		CheckpointDir: os.Getenv("ACCORD_CHECKPOINT_DIR"),
	}
}

// goldenCases covers the three architectures the paper contrasts — the
// direct-mapped baseline, ACCORD with 2-way PWS/GWS, and the CA-cache —
// plus the pluggable organizations behind the backend registry.
func goldenCases() []sim.Config {
	return []sim.Config{
		sim.DirectMapped(), sim.ACCORD(2), sim.CACache(),
		sim.Banshee(), sim.Gemini(), sim.TDRAM(2),
	}
}

const goldenWorkload = "libquantum"

// goldenExport runs one config and serializes its export without a
// manifest (manifests carry wall-clock and git state, which must not be
// part of a regression snapshot).
func goldenExport(t *testing.T, cfg sim.Config, traceCache bool) []byte {
	t.Helper()
	p := goldenParams()
	p.TraceCache = traceCache
	s := NewSession(p)
	s.Run(cfg, goldenWorkload)
	var buf bytes.Buffer
	if err := s.ExportMetrics(nil).WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenMetrics locks the exported metrics of three small
// deterministic runs against committed snapshots. Any change to
// simulation behavior, metric naming, or export encoding shows up as a
// field-level diff here; intentional changes are blessed with -update.
// Every snapshot is checked twice, with the trace cache off (events come
// straight from the generators) and on (events replay from recordings):
// both variants must match the same golden bytes, which is the cache's
// bit-identity acceptance test.
func TestGoldenMetrics(t *testing.T) {
	for _, cfg := range goldenCases() {
		for _, traceCache := range []bool{false, true} {
			cfg, traceCache := cfg, traceCache
			name := cfg.Name + "/generate"
			if traceCache {
				name = cfg.Name + "/replay"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				path := filepath.Join("testdata", "golden", cfg.Name+".json")
				got := goldenExport(t, cfg, traceCache)

				if *update {
					if traceCache {
						// The generate variant owns the snapshot files.
						t.Skip("update writes from the generate variant")
					}
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					t.Logf("wrote %s (%d bytes)", path, len(got))
					return
				}

				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden snapshot (run with -update to create): %v", err)
				}
				diffs := diffJSON(t, want, got)
				for _, d := range diffs {
					t.Error(d)
				}
				if len(diffs) > 0 {
					t.Fatalf("%d field(s) diverged from %s; rerun with -update if intentional", len(diffs), path)
				}
			})
		}
	}
}

// diffJSON parses both documents and reports every leaf-level
// difference with its JSON path, which makes regressions readable
// ("runs[0].metrics.final.values[3].count: 812 != 815") instead of a
// kilobyte text diff.
func diffJSON(t *testing.T, want, got []byte) []string {
	t.Helper()
	var w, g interface{}
	if err := json.Unmarshal(want, &w); err != nil {
		t.Fatalf("golden file is not valid JSON: %v", err)
	}
	if err := json.Unmarshal(got, &g); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var diffs []string
	walkDiff("$", w, g, &diffs)
	return diffs
}

// walkDiff appends one message per differing leaf under path.
func walkDiff(path string, want, got interface{}, diffs *[]string) {
	// Cap the report; past a handful of diffs the rest is noise.
	if len(*diffs) > 20 {
		return
	}
	switch w := want.(type) {
	case map[string]interface{}:
		g, ok := got.(map[string]interface{})
		if !ok {
			*diffs = append(*diffs, fmt.Sprintf("%s: want object, got %T", path, got))
			return
		}
		keys := make([]string, 0, len(w))
		for k := range w {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			gv, ok := g[k]
			if !ok {
				*diffs = append(*diffs, fmt.Sprintf("%s.%s: missing in export", path, k))
				continue
			}
			walkDiff(path+"."+k, w[k], gv, diffs)
		}
		for k := range g {
			if _, ok := w[k]; !ok {
				*diffs = append(*diffs, fmt.Sprintf("%s.%s: unexpected new field", path, k))
			}
		}
	case []interface{}:
		g, ok := got.([]interface{})
		if !ok {
			*diffs = append(*diffs, fmt.Sprintf("%s: want array, got %T", path, got))
			return
		}
		if len(w) != len(g) {
			*diffs = append(*diffs, fmt.Sprintf("%s: length %d != %d", path, len(w), len(g)))
			return
		}
		for i := range w {
			walkDiff(fmt.Sprintf("%s[%d]", path, i), w[i], g[i], diffs)
		}
	default:
		if !leafEqual(want, got) {
			*diffs = append(*diffs, fmt.Sprintf("%s: %v != %v", path, want, got))
		}
	}
}

// leafEqual compares scalars as decoded by encoding/json (float64,
// string, bool, nil).
func leafEqual(a, b interface{}) bool {
	return a == b
}
