package exp

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"accord/internal/dramcache"
	"accord/internal/sim"
)

// runRendered executes e and returns the concatenated rendering of its
// tables, via RunExperiment so the scheduler path is exercised.
func runRendered(e Experiment, s *Session) string {
	var b strings.Builder
	for _, tb := range s.RunExperiment(e) {
		b.WriteString(tb.Render())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestParallelDeterminism is the scheduler's core contract: a session at
// Parallelism 1 and one at Parallelism 8 must render byte-identical
// tables, because the pool only changes who runs each deterministic
// simulation, never what the tables are assembled from.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel determinism test runs full experiments; skipped with -short")
	}
	for _, id := range []string{"tab6", "fig10"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		pSeq := tinyParams()
		pSeq.Parallelism = 1
		pPar := tinyParams()
		pPar.Parallelism = 8
		seq := runRendered(e, NewSession(pSeq))
		par := runRendered(e, NewSession(pPar))
		if seq != par {
			t.Errorf("%s: parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", id, seq, par)
		}
		if len(seq) == 0 {
			t.Errorf("%s rendered empty output", id)
		}
	}
}

// TestConcurrentSessionRun hammers one session from many goroutines over
// overlapping design points (all sharing the direct-mapped baseline).
// Under -race this exercises the memo locking; the progress line count
// proves the singleflight deduplication ran each design point once.
func TestConcurrentSessionRun(t *testing.T) {
	var progress bytes.Buffer
	p := tinyParams()
	p.Progress = &progress
	s := NewSession(p)

	cfgs := []sim.Config{
		sim.DirectMapped(),
		sim.Unbiased(2, dramcache.LookupPredicted),
		sim.PWS(0.85),
	}
	const goroutines = 12
	results := make([]float64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Every goroutine touches every point, including the shared
			// baseline via Speedup.
			total := 0.0
			for _, cfg := range cfgs {
				total += s.Speedup(cfg, "nekbone")
			}
			results[g] = total
		}(g)
	}
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Errorf("goroutine %d saw different results: %v vs %v", g, results[g], results[0])
		}
	}
	if got := s.memoSize(); got != len(cfgs) {
		t.Errorf("memo holds %d entries, want %d (baseline shared)", got, len(cfgs))
	}
	if ran := strings.Count(progress.String(), " ran "); ran != len(cfgs) {
		t.Errorf("%d simulations ran, want %d (singleflight should coalesce):\n%s",
			ran, len(cfgs), progress.String())
	}
}

// TestMemoKeyDistinguishesConfigs guards against the old Sprintf key,
// which dropped Ways/Lookup/FullHierarchy and collided any two configs
// sharing a Name.
func TestMemoKeyDistinguishesConfigs(t *testing.T) {
	s := NewSession(tinyParams())

	base := sim.DirectMapped()
	twoWay := sim.Unbiased(2, dramcache.LookupPredicted)
	twoWay.Name = base.Name // force the historical collision
	r1 := s.Run(base, "nekbone")
	r2 := s.Run(twoWay, "nekbone")
	if s.memoSize() != 2 {
		t.Fatalf("memo holds %d entries, want 2: same-Name configs with different Ways must not collide", s.memoSize())
	}
	if r1.L4.Reads == r2.L4.Reads && r1.MeanIPC() == r2.MeanIPC() {
		t.Error("1-way and 2-way runs returned identical results; key collision suspected")
	}

	hier := base
	hier.FullHierarchy = true
	s.Run(hier, "nekbone")
	if s.memoSize() != 3 {
		t.Errorf("memo holds %d entries, want 3: FullHierarchy must be part of the key", s.memoSize())
	}

	serial := sim.Unbiased(2, dramcache.LookupSerial)
	serial.Name = twoWay.Name
	s.Run(serial, "nekbone")
	if s.memoSize() != 4 {
		t.Errorf("memo holds %d entries, want 4: Lookup must be part of the key", s.memoSize())
	}
}

// TestSampleWorkersPureStrategy pins the contract that lets SampleWorkers
// stay out of the memo key: a sampled session running detailed windows on
// 3 worker goroutines returns results deep-equal to a sequential one, so
// memo entries produced at one worker count are valid at any other.
func TestSampleWorkersPureStrategy(t *testing.T) {
	sampled := func(workers int) Params {
		p := tinyParams()
		p.TraceCache = true
		p.Sampling = sim.SamplingConfig{Period: 20_000, DetailLen: 4_000, WarmLen: 2_000, MinIntervals: 2}
		p.SampleWorkers = workers
		return p
	}
	seq := NewSession(sampled(1)).Run(sim.Unbiased(2, dramcache.LookupPredicted), "nekbone")
	par := NewSession(sampled(3)).Run(sim.Unbiased(2, dramcache.LookupPredicted), "nekbone")
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("sampled results differ across SampleWorkers settings:\nworkers=1: %+v\nworkers=3: %+v", seq, par)
	}
	if seq.Sampled == nil || seq.Sampled.Intervals < 2 {
		t.Fatalf("sampled run produced no interval estimates: %+v", seq.Sampled)
	}
}

// TestPlanEnumeratesPoints checks the planning pre-pass against two known
// experiments: tab6 simulates 5 configurations across the 21-workload
// suite, and tab9 (a pure storage table) simulates nothing.
func TestPlanEnumeratesPoints(t *testing.T) {
	s := NewSession(tinyParams())
	e, _ := Find("tab6")
	points := s.Plan(e)
	if want := 5 * len(suite()); len(points) != want {
		t.Errorf("tab6 plan has %d points, want %d", len(points), want)
	}
	seen := make(map[string]bool)
	for _, pt := range points {
		seen[pt.Config.Name] = true
	}
	if !seen["direct-mapped"] || !seen["accord-2way"] {
		t.Errorf("tab6 plan missing expected configs: %v", seen)
	}
	// Planning must not leak zero results into the real memo.
	if s.memoSize() != 0 {
		t.Errorf("planning polluted the session memo with %d entries", s.memoSize())
	}

	e9, _ := Find("tab9")
	if pts := s.Plan(e9); len(pts) != 0 {
		t.Errorf("tab9 plan has %d points, want 0 (analytic table)", len(pts))
	}
}

// TestPrefetchWarmsMemo checks that Prefetch populates the memo so the
// assembly pass performs no further simulations.
func TestPrefetchWarmsMemo(t *testing.T) {
	var progress bytes.Buffer
	p := tinyParams()
	p.Parallelism = 4
	p.Progress = &progress
	s := NewSession(p)

	points := []Point{
		{Config: sim.DirectMapped(), Workload: "nekbone"},
		{Config: sim.PWS(0.85), Workload: "nekbone"},
		{Config: sim.DirectMapped(), Workload: "nekbone"}, // duplicate on purpose
	}
	s.Prefetch(points)
	if got := s.memoSize(); got != 2 {
		t.Fatalf("memo holds %d entries after prefetch, want 2", got)
	}
	ranBefore := strings.Count(progress.String(), " ran ")
	if ranBefore != 2 {
		t.Errorf("prefetch ran %d simulations, want 2", ranBefore)
	}
	s.Speedup(sim.PWS(0.85), "nekbone") // should be served from the memo
	if ran := strings.Count(progress.String(), " ran "); ran != ranBefore {
		t.Error("memoized point re-simulated after prefetch")
	}
}
