package exp

import (
	"sort"

	"accord/internal/metrics"
	"accord/internal/sim"
)

// ExportMetrics packages every simulation the session has completed into
// a machine-readable export: one metrics.Run per memoized design point,
// carrying the final snapshot (and epoch series when Params.EpochInstr
// was set) alongside the headline table statistics. The manifest, when
// non-nil, is embedded so a single file identifies the code, config, and
// seed that produced the numbers.
//
// Runs are ordered deterministically — by config name, then workload,
// then the remaining key fields — regardless of the parallelism or
// experiment order that produced them, so exports diff cleanly across
// invocations. In-flight simulations are waited for; planning sessions
// export nothing.
func (s *Session) ExportMetrics(man *metrics.Manifest) *metrics.Export {
	out := &metrics.Export{Manifest: man}
	if s.planning != nil {
		return out
	}

	type pending struct {
		k key
		e *entry
	}
	s.mu.Lock()
	runs := make([]pending, 0, len(s.memo))
	for k, e := range s.memo {
		runs = append(runs, pending{k, e})
	}
	s.mu.Unlock()

	sort.Slice(runs, func(i, j int) bool {
		a, b := runs[i].k, runs[j].k
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		return lessKeyTail(a, b)
	})

	for _, p := range runs {
		<-p.e.done
		out.Runs = append(out.Runs, toRun(p.e.res))
	}
	return out
}

// lessKeyTail orders design points that share a (config, workload) pair —
// only possible when a sweep varies scale, budgets, or seed under one
// catalog name.
func lessKeyTail(a, b key) bool {
	switch {
	case a.Scale != b.Scale:
		return a.Scale < b.Scale
	case a.Cores != b.Cores:
		return a.Cores < b.Cores
	case a.WarmupInstr != b.WarmupInstr:
		return a.WarmupInstr < b.WarmupInstr
	case a.MeasureInstr != b.MeasureInstr:
		return a.MeasureInstr < b.MeasureInstr
	case a.EpochInstr != b.EpochInstr:
		return a.EpochInstr < b.EpochInstr
	default:
		return a.Seed < b.Seed
	}
}

// toRun flattens a simulation result into the export record.
func toRun(res sim.Result) metrics.Run {
	return metrics.Run{
		Config:       res.Config,
		Workload:     res.Workload,
		Instructions: res.Instructions,
		Cycles:       res.Cycles,
		MeanIPC:      res.MeanIPC(),
		HitRate:      res.HitRate(),
		Sampled:      toSampled(res.Sampled),
		Metrics:      res.Metrics,
	}
}

// toSampled converts a sampling summary to its export form; nil in, nil
// out (exact runs carry no sampled block).
func toSampled(ss *sim.SampleSummary) *metrics.Sampled {
	if ss == nil {
		return nil
	}
	return &metrics.Sampled{
		Intervals:  ss.Intervals,
		Planned:    ss.Planned,
		Converged:  ss.Converged,
		Confidence: ss.Confidence,
		IPC:        toSampledCI(ss.IPC),
		HitRate:    toSampledCI(ss.HitRate),
		MPKI:       toSampledCI(ss.MPKI),
	}
}

// toSampledCI converts one estimate, preserving the undefined-not-zero
// convention: no observations → absent block; one observation → mean
// without a half-width.
func toSampledCI(m sim.MetricCI) *metrics.SampledCI {
	if !m.Valid() {
		return nil
	}
	out := &metrics.SampledCI{Mean: m.Mean, Intervals: m.N}
	if m.OK {
		half := m.Half
		out.Half = &half
	}
	return out
}
