package exp

import (
	"strings"
	"testing"

	"accord/internal/sim"
)

// tinyParams keeps experiment smoke tests fast: a 512 KB model cache and
// short windows.
func tinyParams() Params {
	return Params{Scale: 8192, Cores: 4, WarmupInstr: 100_000, MeasureInstr: 100_000, Seed: 1}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "tab1", "tab2", "fig6", "tab5", "fig7", "tab6", "fig10",
		"tab7", "fig13", "fig12", "tab8", "tab9", "fig14", "tab10", "fig15", "lru",
		"ablgws", "ablsws", "ablhier", "backends",
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(ids), len(want), ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("experiment %d = %s, want %s", i, ids[i], id)
		}
	}
	for _, id := range want {
		if _, ok := Find(id); !ok {
			t.Errorf("Find(%q) failed", id)
		}
	}
	if _, ok := Find("nonexistent"); ok {
		t.Error("Find succeeded for unknown id")
	}
}

func TestExperimentMetadata(t *testing.T) {
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.PaperRef == "" || e.Run == nil {
			t.Errorf("experiment %+v missing metadata", e.ID)
		}
	}
}

func TestSessionMemoization(t *testing.T) {
	s := NewSession(tinyParams())
	r1 := s.Run(sim.DirectMapped(), "nekbone")
	before := s.memoSize()
	r2 := s.Run(sim.DirectMapped(), "nekbone")
	if s.memoSize() != before {
		t.Error("second identical run was not memoized")
	}
	if r1.MeanIPC() != r2.MeanIPC() {
		t.Error("memoized result differs")
	}
}

func TestSessionDefaults(t *testing.T) {
	s := NewSession(Params{})
	if s.Params().Cores != 16 || s.Params().Scale != 256 {
		t.Errorf("defaults not applied: %+v", s.Params())
	}
}

func TestSpeedupSelfIsOne(t *testing.T) {
	s := NewSession(tinyParams())
	if ws := s.Speedup(sim.DirectMapped(), "nekbone"); ws != 1 {
		t.Errorf("baseline speedup over itself = %v, want exactly 1", ws)
	}
}

func TestCyclicKernelAsymptotes(t *testing.T) {
	// Figure 6's anchors: a direct-mapped cache (PIP=100%) thrashes to a
	// 0% steady-state hit rate, while the unbiased 2-way policy (PIP=50%)
	// learns to use both ways and approaches 100% for large N.
	dm := cyclicHitRate(1.0, 64, 50)
	if dm > 0.01 {
		t.Errorf("direct-mapped cyclic hit rate = %.3f, want ~0", dm)
	}
	unbiased := cyclicHitRate(0.50, 64, 50)
	if unbiased < 0.85 {
		t.Errorf("PIP=50%% cyclic hit rate at N=64 = %.3f, want > 0.85", unbiased)
	}
	// Higher PIP learns more slowly: at small N, PIP=90% trails PIP=50%.
	lo := cyclicHitRate(0.90, 4, 200)
	hi := cyclicHitRate(0.50, 4, 200)
	if lo >= hi {
		t.Errorf("PIP=90%% (%.3f) should trail PIP=50%% (%.3f) at N=4", lo, hi)
	}
	// But with enough reuse even PIP=90% exceeds 80% (the paper's point).
	if late := cyclicHitRate(0.90, 128, 50); late < 0.8 {
		t.Errorf("PIP=90%% at N=128 = %.3f, want > 0.8", late)
	}
}

func TestTab1MatchesAnalyticTable(t *testing.T) {
	e, _ := Find("tab1")
	tables := e.Run(NewSession(tinyParams()))
	if len(tables) != 1 {
		t.Fatalf("tab1 produced %d tables", len(tables))
	}
	out := strings.Join(strings.Fields(tables[0].Render()), " ")
	// The analytic Table I, row by row (hit transfers, miss transfers).
	for _, want := range []string{
		"direct-mapped 1.00 1",           // 1 transfer hit and miss
		"parallel lookup (4-way) 4.00 4", // N transfers always
		"serial lookup (4-way) 2.50 4",   // (N+1)/2 average hit, N miss
		"way-predicted (4-way) 1.00 4",   // 1 on predicted hit, N on miss
		"idealized (4-way) 1.00 1",       // oracle
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, tables[0].Render())
		}
	}
}

func TestTab9Storage(t *testing.T) {
	e, _ := Find("tab9")
	out := e.Run(NewSession(tinyParams()))[0].Render()
	if !strings.Contains(out, "320 B") {
		t.Errorf("Table IX missing the 320-byte total:\n%s", out)
	}
	if !strings.Contains(out, "probabilistic way-steering  0 B") {
		t.Errorf("PWS storage should be zero:\n%s", out)
	}
}

func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test is slow; skipped with -short")
	}
	s := NewSession(tinyParams())
	for _, e := range All() {
		tables := e.Run(s)
		if len(tables) == 0 {
			t.Errorf("%s produced no tables", e.ID)
			continue
		}
		for _, tb := range tables {
			if tb.NumRows() == 0 {
				t.Errorf("%s produced an empty table", e.ID)
			}
			if out := tb.Render(); len(out) == 0 {
				t.Errorf("%s rendered empty output", e.ID)
			}
		}
		t.Logf("experiment %s ok (%d tables)", e.ID, len(tables))
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{
		0:       "0 B",
		320:     "320 B",
		4 << 10: "4 KB",
		4 << 20: "4 MB",
	}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestSpeedupFigureShape(t *testing.T) {
	s := NewSession(tinyParams())
	cfgs := []sim.Config{sim.PWS(0.85), sim.ACCORD(2)}
	names := []string{"nekbone", "sphinx3"}
	tb := speedupFigure(s, "shape test", cfgs, names)
	// One row per workload plus the geomean row.
	if tb.NumRows() != len(names)+1 {
		t.Errorf("rows = %d, want %d", tb.NumRows(), len(names)+1)
	}
	out := tb.Render()
	for _, want := range []string{"nekbone", "sphinx3", "GMEAN", "2way-pws85", "accord-2way", "bar"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure missing %q:\n%s", want, out)
		}
	}
}

func TestAmeanHelpers(t *testing.T) {
	s := NewSession(tinyParams())
	names := []string{"nekbone"}
	hr := s.ameanHitRate(sim.DirectMapped(), names)
	if hr <= 0 || hr > 1 {
		t.Errorf("amean hit rate = %v", hr)
	}
	acc := s.ameanAccuracy(sim.ACCORD(2), names)
	if acc <= 0 || acc > 1 {
		t.Errorf("amean accuracy = %v", acc)
	}
}

func TestSuiteSpeedupsGeomean(t *testing.T) {
	s := NewSession(tinyParams())
	per, g := s.SuiteSpeedups(sim.DirectMapped(), []string{"nekbone", "sphinx3"})
	if len(per) != 2 {
		t.Fatalf("per-workload entries = %d", len(per))
	}
	for _, ws := range per {
		if ws != 1 {
			t.Errorf("baseline self-speedup = %v, want 1", ws)
		}
	}
	if g != 1 {
		t.Errorf("geomean = %v, want 1", g)
	}
}
