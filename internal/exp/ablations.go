package exp

import (
	"fmt"

	"accord/internal/sim"
	"accord/internal/stats"
)

// The ablations probe the design choices DESIGN.md calls out, beyond what
// the paper tabulates: GWS region-table sizing (the paper asserts 64
// entries suffice), the multi-alternate SWS(N,k) extension Section V-A
// sketches, and the post-L3-stream modeling substitution (validated
// against explicit L1/L2/L3 simulation).

// ablationSample is a representative slice of the suite (spatial,
// pointer-chasing, streaming, cache-friendly, and sensitive workloads)
// used where sweeping the full 21 workloads would dominate harness time.
var ablationSample = []string{
	"libquantum", "soplex", "mcf", "milc", "sphinx3", "omnetpp", "nekbone",
}

func init() {
	register(Experiment{
		ID: "ablgws", PaperRef: "Section IV-C-2",
		Title: "Ablation: GWS region-table size (the paper's 64-entry claim)",
		Run: func(s *Session) []*stats.Table {
			t := stats.NewTable("GWS table-size ablation (2-way ACCORD, 21-workload suite)",
				"RIT/RLT entries", "wp-accuracy", "hit-rate", "speedup", "storage")
			for _, entries := range []int{4, 16, 64, 256} {
				cfg := sim.ACCORDWithTables(entries)
				_, g := s.SuiteSpeedups(cfg, suite())
				t.AddRow(fmt.Sprint(entries),
					pct(s.ameanAccuracy(cfg, suite())),
					pct(s.ameanHitRate(cfg, suite())),
					spd(g),
					fmtBytes(int64(entries)*2*20/8))
			}
			return []*stats.Table{t}
		},
	})

	register(Experiment{
		ID: "ablsws", PaperRef: "Section V-A",
		Title: "Ablation: multi-alternate SWS(8,k) — flexibility vs confirmation cost",
		Run: func(s *Session) []*stats.Table {
			t := stats.NewTable("SWS alternate-count ablation (8-way ACCORD, 21-workload suite)",
				"design", "hit-rate", "probes/read", "speedup")
			for _, alts := range []int{1, 2, 3} {
				cfg := sim.ACCORDSWSK(8, alts)
				_, g := s.SuiteSpeedups(cfg, suite())
				var ppr float64
				for _, wl := range suite() {
					r := s.Run(cfg, wl)
					ppr += r.L4.ProbesPerRead()
				}
				t.AddRow(fmt.Sprintf("SWS(8,%d)", alts+1),
					pct(s.ameanHitRate(cfg, suite())),
					fmt.Sprintf("%.2f", ppr/float64(len(suite()))),
					spd(g))
			}
			return []*stats.Table{t}
		},
	})

	register(Experiment{
		ID: "ablhier", PaperRef: "DESIGN.md substitution 2",
		Title: "Ablation: post-L3 stream modeling vs explicit L1/L2/L3 simulation",
		Run: func(s *Session) []*stats.Table {
			t := stats.NewTable("Hierarchy-mode ablation (ACCORD 2-way vs direct-mapped)",
				"workload", "speedup (post-L3 streams)", "speedup (full hierarchy)",
				"wp-accuracy (streams)", "wp-accuracy (full)")
			mk := func(cfg sim.Config) (stream, full sim.Config) {
				full = cfg
				full.FullHierarchy = true
				full.Name = cfg.Name + "+hier"
				return cfg, full
			}
			dmS, dmF := mk(sim.DirectMapped())
			accS, accF := mk(sim.ACCORD(2))
			for _, wl := range ablationSample {
				wsS := sim.WeightedSpeedup(s.Run(accS, wl), s.Run(dmS, wl))
				wsF := sim.WeightedSpeedup(s.Run(accF, wl), s.Run(dmF, wl))
				t.AddRow(wl, spd(wsS), spd(wsF),
					pct(s.Run(accS, wl).Accuracy()), pct(s.Run(accF, wl).Accuracy()))
			}
			return []*stats.Table{t}
		},
	})
}
