package cpu

import (
	"math/rand"
	"testing"

	"accord/internal/memtypes"
	"accord/internal/workloads"
)

// fakeMem is a fixed-latency memory with request counting.
type fakeMem struct {
	lat    int64
	reads  int
	writes int
	lastAt int64
}

func (m *fakeMem) Read(at int64, line memtypes.LineAddr) int64 {
	m.reads++
	m.lastAt = at
	return at + m.lat
}

func (m *fakeMem) Write(at int64, line memtypes.LineAddr) {
	m.writes++
	m.lastAt = at
}

func ident(l memtypes.LineAddr) memtypes.LineAddr { return l }

func events(evs ...workloads.Event) workloads.Stream {
	return &workloads.FixedStream{Events: evs}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []Params{
		{IssueWidth: 0, MSHRs: 1},
		{IssueWidth: 1, MSHRs: 0},
		{IssueWidth: 1, MSHRs: 1, SRAMLat: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(0, Params{}, events(workloads.Event{}), ident, &fakeMem{})
}

func TestGapRetiresAtIssueWidth(t *testing.T) {
	mem := &fakeMem{lat: 0}
	c := New(0, Params{IssueWidth: 2, MSHRs: 4, SRAMLat: 0},
		events(workloads.Event{Gap: 100, Line: 1}), ident, mem)
	c.Step()
	// 100 instructions at width 2 = 50 cycles; the access itself is free.
	if c.Time() != 50 {
		t.Errorf("time = %d, want 50", c.Time())
	}
	if c.Instructions() != 101 {
		t.Errorf("instructions = %d, want 101", c.Instructions())
	}
}

func TestIssueWidthRemainderCarries(t *testing.T) {
	mem := &fakeMem{lat: 0}
	c := New(0, Params{IssueWidth: 2, MSHRs: 4, SRAMLat: 0},
		events(workloads.Event{Gap: 1, Line: 1}), ident, mem)
	// 4 events of gap 1 = 4 instructions = 2 cycles at width 2.
	for i := 0; i < 4; i++ {
		c.Step()
	}
	if c.Time() != 2 {
		t.Errorf("time = %d, want 2 (remainder must carry)", c.Time())
	}
}

func TestDependentLoadSerializes(t *testing.T) {
	mem := &fakeMem{lat: 100}
	c := New(0, Params{IssueWidth: 2, MSHRs: 4, SRAMLat: 10},
		events(workloads.Event{Gap: 0, Line: 1, Dep: true}), ident, mem)
	c.Step()
	// Dependent: core time = issue(0) + sram(10) + lat(100).
	if c.Time() != 110 {
		t.Errorf("time = %d, want 110", c.Time())
	}
	_, _, dep, _ := c.Counters()
	if dep != 1 {
		t.Errorf("dep stalls = %d, want 1", dep)
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	mem := &fakeMem{lat: 1000}
	c := New(0, Params{IssueWidth: 2, MSHRs: 8, SRAMLat: 0},
		events(workloads.Event{Gap: 0, Line: 1}), ident, mem)
	for i := 0; i < 8; i++ {
		c.Step()
	}
	// All 8 fit in MSHRs; the core never waited.
	if c.Time() != 0 {
		t.Errorf("time = %d, want 0 (full overlap)", c.Time())
	}
	_, _, _, stalls := c.Counters()
	if stalls != 0 {
		t.Errorf("mshr stalls = %d, want 0", stalls)
	}
}

func TestMSHRLimitStalls(t *testing.T) {
	mem := &fakeMem{lat: 1000}
	c := New(0, Params{IssueWidth: 2, MSHRs: 2, SRAMLat: 0},
		events(workloads.Event{Gap: 0, Line: 1}), ident, mem)
	c.Step()
	c.Step()
	c.Step() // third must wait for the first to complete at t=1000
	if c.Time() != 1000 {
		t.Errorf("time = %d, want 1000", c.Time())
	}
	_, _, _, stalls := c.Counters()
	if stalls != 1 {
		t.Errorf("mshr stalls = %d, want 1", stalls)
	}
}

func TestWritesDoNotStall(t *testing.T) {
	mem := &fakeMem{lat: 99999}
	c := New(0, Params{IssueWidth: 1, MSHRs: 1, SRAMLat: 5},
		events(workloads.Event{Gap: 10, Line: 1, Write: true}), ident, mem)
	c.Step()
	if c.Time() != 10 {
		t.Errorf("time = %d, want 10 (write must not stall)", c.Time())
	}
	if mem.writes != 1 || mem.reads != 0 {
		t.Errorf("mem saw %d writes %d reads", mem.writes, mem.reads)
	}
}

func TestSRAMLatencyAppliedToIssue(t *testing.T) {
	mem := &fakeMem{lat: 0}
	c := New(0, Params{IssueWidth: 2, MSHRs: 4, SRAMLat: 51},
		events(workloads.Event{Gap: 0, Line: 1}), ident, mem)
	c.Step()
	if mem.lastAt != 51 {
		t.Errorf("memory saw request at %d, want 51", mem.lastAt)
	}
}

func TestTranslationApplied(t *testing.T) {
	mem := &fakeMem{lat: 0}
	var seen memtypes.LineAddr
	spy := func(l memtypes.LineAddr) memtypes.LineAddr {
		seen = l
		return l + 1000
	}
	recorder := &recordMem{}
	c := New(0, Params{IssueWidth: 2, MSHRs: 4, SRAMLat: 0},
		events(workloads.Event{Gap: 0, Line: 7}), spy, recorder)
	c.Step()
	_ = mem
	if seen != 7 {
		t.Errorf("translate saw %d, want 7", seen)
	}
	if recorder.line != 1007 {
		t.Errorf("memory saw line %d, want 1007", recorder.line)
	}
}

type recordMem struct{ line memtypes.LineAddr }

func (m *recordMem) Read(at int64, line memtypes.LineAddr) int64 {
	m.line = line
	return at
}
func (m *recordMem) Write(at int64, line memtypes.LineAddr) { m.line = line }

func TestIPCWindow(t *testing.T) {
	mem := &fakeMem{lat: 0}
	c := New(0, Params{IssueWidth: 1, MSHRs: 4, SRAMLat: 0},
		events(workloads.Event{Gap: 9, Line: 1}), ident, mem)
	c.Step() // 10 instructions in 9 cycles
	c.MarkWindow()
	if c.IPC() != 0 {
		t.Errorf("IPC immediately after mark = %v, want 0", c.IPC())
	}
	c.Step()
	if c.WindowInstructions() != 10 || c.WindowCycles() != 9 {
		t.Errorf("window = %d instr / %d cycles", c.WindowInstructions(), c.WindowCycles())
	}
	if got := c.IPC(); got < 1.1 || got > 1.12 {
		t.Errorf("IPC = %v, want ~10/9", got)
	}
}

func TestIPCBoundedByIssueWidth(t *testing.T) {
	mem := &fakeMem{lat: 0}
	c := New(0, Params{IssueWidth: 2, MSHRs: 8, SRAMLat: 0},
		events(workloads.Event{Gap: 500, Line: 1}), ident, mem)
	c.MarkWindow()
	for i := 0; i < 100; i++ {
		c.Step()
	}
	if ipc := c.IPC(); ipc > 2.01 {
		t.Errorf("IPC = %v exceeds issue width 2", ipc)
	}
}

func TestTimeMonotoneUnderRandomStreams(t *testing.T) {
	// Core time and instruction counts never regress, whatever the event
	// mix looks like.
	r := rand.New(rand.NewSource(17))
	evs := make([]workloads.Event, 500)
	for i := range evs {
		evs[i] = workloads.Event{
			Gap:   int32(r.Intn(100)),
			Line:  memtypes.LineAddr(r.Intn(1 << 20)),
			Write: r.Intn(4) == 0,
			Dep:   r.Intn(3) == 0,
		}
	}
	mem := &fakeMem{lat: 250}
	c := New(0, DefaultParams(), &workloads.FixedStream{Events: evs}, ident, mem)
	prevT, prevI := c.Time(), c.Instructions()
	for i := 0; i < 5000; i++ {
		c.Step()
		if c.Time() < prevT || c.Instructions() <= prevI {
			t.Fatalf("step %d: time %d<%d or instr %d<=%d", i, c.Time(), prevT, c.Instructions(), prevI)
		}
		prevT, prevI = c.Time(), c.Instructions()
	}
	reads, writes, _, _ := c.Counters()
	if reads == 0 || writes == 0 {
		t.Error("mixed stream produced no reads or no writes")
	}
}

func TestHigherLatencyLowersIPC(t *testing.T) {
	run := func(lat int64) float64 {
		evs := []workloads.Event{{Gap: 20, Line: 1, Dep: true}}
		c := New(0, DefaultParams(), &workloads.FixedStream{Events: evs}, ident, &fakeMem{lat: lat})
		c.MarkWindow()
		for i := 0; i < 1000; i++ {
			c.Step()
		}
		return c.IPC()
	}
	fast, slow := run(100), run(1000)
	if slow >= fast {
		t.Errorf("IPC did not fall with memory latency: %.4f vs %.4f", slow, fast)
	}
}

func TestMoreMSHRsNeverHurt(t *testing.T) {
	run := func(mshrs int) float64 {
		evs := []workloads.Event{{Gap: 4, Line: 1}}
		p := Params{IssueWidth: 2, MSHRs: mshrs, SRAMLat: 10}
		c := New(0, p, &workloads.FixedStream{Events: evs}, ident, &fakeMem{lat: 500})
		c.MarkWindow()
		for i := 0; i < 2000; i++ {
			c.Step()
		}
		return c.IPC()
	}
	if run(16) < run(2) {
		t.Errorf("16 MSHRs slower than 2: %.4f vs %.4f", run(16), run(2))
	}
}

func TestStepDoesNotAllocate(t *testing.T) {
	// The event buffer is reused across Steps; a regression to a local
	// escaping through the Stream interface would cost one heap
	// allocation per simulated event.
	wl := workloads.MustGet("libquantum", 4)
	st := workloads.NewStream(wl.Specs[0], 1<<12, 4, 1)
	c := New(0, DefaultParams(), st, ident, &fakeMem{lat: 10})
	if allocs := testing.AllocsPerRun(2000, c.Step); allocs > 0 {
		t.Errorf("Step allocates %.1f objects per event, want 0", allocs)
	}
}
