package cpu

import (
	"testing"

	"accord/internal/ckpt"
	"accord/internal/memtypes"
	"accord/internal/workloads"
)

// fixedLatMem is a deterministic MemorySystem stand-in.
type fixedLatMem struct{ writes int }

func (m *fixedLatMem) Read(at int64, _ memtypes.LineAddr) int64 { return at + 100 }
func (m *fixedLatMem) Write(int64, memtypes.LineAddr)           { m.writes++ }

// noCkptStream is a Stream without Snapshot/Restore support.
type noCkptStream struct{}

func (noCkptStream) Next(ev *workloads.Event) { *ev = workloads.Event{Gap: 1, Line: 1} }

func testStream(seed int64) workloads.Stream {
	spec := workloads.Spec{
		Name: "cpu-ckpt", MPKI: 25, WriteFrac: 0.2, DepFrac: 0.5,
		Components: []workloads.Component{{Weight: 1, SizeRatio: 1, StrideLines: 0}},
	}
	return workloads.NewStream(spec, 1<<14, 1, seed)
}

func testCore(seed int64) *Core {
	ident := func(l memtypes.LineAddr) memtypes.LineAddr { return l }
	return New(0, DefaultParams(), testStream(seed), ident, &fixedLatMem{})
}

// TestCoreRoundTrip restores a mid-flight core (with its stream) into a
// fresh one and requires the continued trajectories to match cycle for
// cycle.
func TestCoreRoundTrip(t *testing.T) {
	c := testCore(8)
	for c.Instructions() < 50_000 {
		c.Step()
	}
	e := ckpt.NewEncoder(0)
	if err := c.Snapshot(e); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	blob := e.Finish()

	fresh := testCore(999)
	d, err := ckpt.NewDecoderChecked(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(d); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after restore", d.Remaining())
	}
	for i := 0; i < 50_000; i++ {
		c.Step()
		fresh.Step()
		if c.Time() != fresh.Time() || c.Instructions() != fresh.Instructions() {
			t.Fatalf("step %d diverged: t=%d/%d instr=%d/%d",
				i, c.Time(), fresh.Time(), c.Instructions(), fresh.Instructions())
		}
	}
	r1, w1, d1, m1 := c.Counters()
	r2, w2, d2, m2 := fresh.Counters()
	if r1 != r2 || w1 != w2 || d1 != d2 || m1 != m2 {
		t.Error("cumulative counters diverged after restore")
	}
	if c.WindowInstructions() != fresh.WindowInstructions() ||
		c.WindowCycles() != fresh.WindowCycles() {
		t.Error("window marks diverged after restore")
	}
}

// TestCoreSnapshotRequiresCheckpointableStream pins the error path for
// streams that cannot be checkpointed.
func TestCoreSnapshotRequiresCheckpointableStream(t *testing.T) {
	ident := func(l memtypes.LineAddr) memtypes.LineAddr { return l }
	c := New(0, DefaultParams(), noCkptStream{}, ident, &fixedLatMem{})
	if err := c.Snapshot(ckpt.NewEncoder(0)); err == nil {
		t.Error("Snapshot succeeded with a non-checkpointable stream")
	}
}

// TestCoreRestoreRejectsBadInput covers version bumps, MSHR-count
// mismatches, and truncations.
func TestCoreRestoreRejectsBadInput(t *testing.T) {
	c := testCore(8)
	for c.Instructions() < 5000 {
		c.Step()
	}
	e := ckpt.NewEncoder(0)
	if err := c.Snapshot(e); err != nil {
		t.Fatal(err)
	}
	blob := e.Finish()
	payload := blob[:len(blob)-4]

	bad := append([]byte{payload[0] + 1}, payload[1:]...)
	if err := testCore(8).Restore(ckpt.NewDecoder(bad)); err == nil {
		t.Error("version-bumped snapshot accepted")
	}
	// A core with a different MSHR count must reject the snapshot.
	p := DefaultParams()
	p.MSHRs = 4
	ident := func(l memtypes.LineAddr) memtypes.LineAddr { return l }
	other := New(0, p, testStream(8), ident, &fixedLatMem{})
	if err := other.Restore(ckpt.NewDecoder(payload)); err == nil {
		t.Error("MSHR-count mismatch accepted")
	}
	for n := 0; n < len(payload); n += 1 + n/8 {
		if err := testCore(8).Restore(ckpt.NewDecoder(payload[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}
