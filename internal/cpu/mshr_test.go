package cpu

import (
	"math/rand"
	"testing"
)

// TestAdmitMaskMatchesScan drives the production scan admit and the
// free-mask alternate discipline (admitMask/mshrSetMask) over randomized
// miss streams and requires them to agree event by event — same slot,
// same clock (including stall advances), same stall count. This is the
// contract that lets admit stay the simple scan while the mask remains
// available as the anchor it was measured against (see the comments on
// both and DESIGN.md §13).
func TestAdmitMaskMatchesScan(t *testing.T) {
	for _, mshrs := range []int{1, 2, 12, 64} {
		rng := rand.New(rand.NewSource(int64(0xACC0 + mshrs)))
		p := Params{IssueWidth: 1, MSHRs: mshrs, SRAMLat: 1}
		scan := New(0, p, nil, nil, nil)
		mask := New(1, p, nil, nil, nil)
		for op := 0; op < 20000; op++ {
			// Advance both clocks identically; bursts of zero-delta ops
			// exercise the all-busy stall path, larger jumps the mass-free
			// resweep path.
			dt := int64(0)
			switch rng.Intn(4) {
			case 1:
				dt = rng.Int63n(8)
			case 2:
				dt = rng.Int63n(400)
			}
			scan.time += dt
			mask.time += dt

			s1 := scan.admit()
			s2 := mask.admitMask()
			if s1 != s2 {
				t.Fatalf("mshrs=%d op %d: slot diverged: scan %d, mask %d", mshrs, op, s1, s2)
			}
			if scan.time != mask.time {
				t.Fatalf("mshrs=%d op %d: stall clock diverged: scan %d, mask %d", mshrs, op, scan.time, mask.time)
			}

			// Miss completion; occasionally at or before the current time
			// (the dependent-load pattern, where the clock already jumped
			// to the data), usually in the future.
			done := scan.time + rng.Int63n(300)
			if rng.Intn(8) == 0 {
				done = scan.time - rng.Int63n(50)
			}
			scan.mshr[s1] = done
			mask.mshrSetMask(s2, done)

			// Dependent load: the clock jumps to the miss completion.
			if done > scan.time && rng.Intn(3) == 0 {
				scan.time = done
				mask.time = done
			}

			// Occasional bulk reset, as ResetSampleTiming and Restore
			// perform: both disciplines must re-converge from a cleared
			// array, the mask via invalidateMSHRCache.
			if rng.Intn(4000) == 0 {
				for i := range scan.mshr {
					scan.mshr[i] = 0
					mask.mshr[i] = 0
				}
				mask.invalidateMSHRCache()
			}
		}
		if scan.mshrStalls != mask.mshrStalls {
			t.Fatalf("mshrs=%d: stall count diverged: scan %d, mask %d", mshrs, scan.mshrStalls, mask.mshrStalls)
		}
	}
}
