package cpu

import (
	"accord/internal/memtypes"
	"accord/internal/workloads"
)

// StepRun advances the core through consecutive detailed events until its
// retired instruction count reaches target (returns true) or its clock
// passes the stop condition — time > stopTime, or time == stopTime with
// stopOnTie set (returns false). It is behavior-identical to the caller
// loop
//
//	for {
//		c.Step()
//		if c.Instructions() >= target { return true }
//		if t := c.Time(); t > stopTime || (t == stopTime && stopOnTie) { return false }
//	}
//
// executing the same events against the same memory system in the same
// order with the same clocks; only the per-event overhead moves. When the
// stream exposes a batch window (the shared trace cache), events are
// decoded straight from the window's parallel slices with the core's hot
// state in locals, eliminating the per-event Next dispatch, event-buffer
// writes, and field traffic; otherwise it falls back to per-event Step.
// The leader loop in sim.advanceUntil calls this on the leading core
// whenever no epoch-series or finished-core pacing work can interleave
// (see that loop for why those cases must stay per-event).
func (c *Core) StepRun(target, stopTime int64, stopOnTie bool) bool {
	if c.wstream == nil {
		for {
			c.Step()
			if c.instr >= target {
				return true
			}
			if c.time > stopTime || (c.time == stopTime && stopOnTie) {
				return false
			}
		}
	}
	for {
		gaps, lines, flags := c.wstream.Window()
		if len(gaps) == 0 {
			// Defensive: an exhausted bounded window stream cannot make
			// progress; fall back so the caller's loop terminates or
			// panics the same way the per-event path would.
			c.Step()
			if c.instr >= target {
				return true
			}
			if c.time > stopTime || (c.time == stopTime && stopOnTie) {
				return false
			}
			continue
		}
		// Reslice the parallel windows to the gaps length so the compiler
		// can prove every per-event index below is in bounds.
		lines = lines[:len(gaps)]
		flags = flags[:len(gaps)]

		// Hot scalars live in locals for the whole window; c.time is
		// synced around admit/mshrSet, which read (and on a stall, write)
		// the field directly.
		time, instr, carry := c.time, c.instr, c.instCarry
		reads, writes, depStalls := c.reads, c.writes, c.depStalls
		sramLat := c.sramLat
		used := 0
		crossed, stopped := false, false
		for i := range gaps {
			g := int64(gaps[i])
			carry += g
			if c.issueMask >= 0 {
				time += carry >> c.issueShift
				carry &= c.issueMask
			} else {
				time += carry / c.issueWidth
				carry %= c.issueWidth
			}

			vl := lines[i]
			var line memtypes.LineAddr
			if vp := vl.Page(); vp == c.memoVPage {
				line = c.memoPBase + memtypes.LineAddr(vl.PageOffset())
			} else {
				line = c.translateLine(vl)
			}

			if f := flags[i]; f&workloads.FlagWrite != 0 {
				writes++
				c.mem.Write(time+sramLat, line)
			} else {
				reads++
				c.time = time
				slot := c.admit()
				time = c.time
				done := c.mem.Read(time+sramLat, line)
				if f&workloads.FlagDep != 0 {
					depStalls++
					time = done
				}
				c.mshr[slot] = done
			}
			instr += g + 1
			used = i + 1
			if instr >= target {
				crossed = true
				break
			}
			if time > stopTime || (time == stopTime && stopOnTie) {
				stopped = true
				break
			}
		}
		c.time, c.instr, c.instCarry = time, instr, carry
		c.reads, c.writes, c.depStalls = reads, writes, depStalls
		c.wstream.Consume(used)
		if crossed {
			return true
		}
		if stopped {
			return false
		}
	}
}
