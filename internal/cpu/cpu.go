// Package cpu models the processor cores of Table III: 2-wide out-of-order
// cores reduced to the features that matter for a memory-system study.
// A core executes the instruction gaps between memory events at its issue
// width, overlaps independent misses up to an MSHR limit, and serializes
// on dependent loads — so the memory system's latency *and* bandwidth both
// feed back into the core's instruction throughput, which is what the
// paper's speedup numbers measure.
package cpu

import (
	"fmt"
	"math/bits"

	"accord/internal/memtypes"
	"accord/internal/workloads"
)

// MemorySystem is what a core needs from everything below the SRAM
// hierarchy: reads return their completion cycle; writes (dirty
// writebacks) are fire-and-forget through the write buffer.
type MemorySystem interface {
	Read(at int64, line memtypes.LineAddr) (done int64)
	Write(at int64, line memtypes.LineAddr)
}

// FunctionalMemory is the state-only view of the memory system used by
// functional fast-forwarding (StepFunctional): accesses mutate tags,
// dirty bits, replacement and steering state exactly as the timed path
// would, but carry no timestamps and return no latency. A MemorySystem
// that also implements FunctionalMemory opts the core into functional
// mode.
type FunctionalMemory interface {
	ReadFunctional(line memtypes.LineAddr)
	WriteFunctional(line memtypes.LineAddr)
}

// Params configures a core.
type Params struct {
	IssueWidth int   // instructions per cycle for non-memory work
	MSHRs      int   // maximum outstanding independent misses
	SRAMLat    int64 // L1+L2+L3 lookup cycles on the miss path
}

// DefaultParams returns the Table III core: 2-wide with 8 MSHRs.
func DefaultParams() Params {
	return Params{IssueWidth: 2, MSHRs: 12, SRAMLat: 51}
}

// Validate reports a descriptive error for unusable parameters.
func (p Params) Validate() error {
	if p.IssueWidth < 1 {
		return fmt.Errorf("cpu: issue width %d must be >= 1", p.IssueWidth)
	}
	if p.MSHRs < 1 {
		return fmt.Errorf("cpu: MSHRs %d must be >= 1", p.MSHRs)
	}
	if p.MSHRs > 64 {
		return fmt.Errorf("cpu: MSHRs %d must be <= 64 (free-mask admit packs one slot per bit)", p.MSHRs)
	}
	if p.SRAMLat < 0 {
		return fmt.Errorf("cpu: SRAM latency %d must be >= 0", p.SRAMLat)
	}
	return nil
}

// Translate maps a virtual line address to a physical one.
type Translate func(memtypes.LineAddr) memtypes.LineAddr

// Core is one processor core consuming its workload stream. It is not
// safe for concurrent use.
type Core struct {
	// Hot per-Step state leads the struct so the common path touches the
	// first cache line or two: the clocks, the widened issue parameters
	// (converted from Params once at construction instead of per event),
	// and the reused event buffer.
	time       int64
	instr      int64
	instCarry  int64
	issueWidth int64           // int64(params.IssueWidth), hoisted off the Step path
	issueMask  int64           // issueWidth-1 when the width is a power of two, else -1
	issueShift uint8           // log2(issueWidth) when issueMask >= 0
	sramLat    int64           // params.SRAMLat
	ev         workloads.Event // reused across Steps; &ev escapes through the Stream interface, so a local would heap-allocate every event
	mshr       []int64         // completion cycles of in-flight misses

	// Free-mask cache over mshr for the admitMask discipline (unused by
	// the production admit scan — see admit for why): bit i set means
	// mshr[i] <= time held at the last sweep (time is monotonic, so it
	// still holds). mshrMinBusy/mshrMinIdx track the earliest completion
	// among the swept-busy slots and the first slot index attaining it —
	// exactly the slot admit's strict-< stall search picks. The cache is
	// stale the moment time reaches mshrMinBusy (some busy slot may have
	// completed), so admitMask resweeps then; the zero value (empty mask,
	// minBusy 0) forces a sweep on first use, which is also how
	// construction, restore, and sample-timing resets invalidate it.
	mshrFree    uint64
	mshrMinBusy int64
	mshrMinIdx  int

	// Same-page translation memo. Page mappings are immutable once
	// allocated (vm never unmaps), so caching the last page's physical
	// base is behavior-identical and short-circuits the page-table walk
	// for the common same-page run of a strided stream. memoVPage starts
	// at the impossible ^0 sentinel; the memo is derived state and is
	// deliberately absent from snapshots (a restored core re-fills it on
	// first use).
	memoVPage memtypes.PageNum
	memoPBase memtypes.LineAddr // physical line 0 of memoVPage's frame

	// Direct-mapped second-level translation memo behind the same-page
	// memo: random-arena traffic changes pages nearly every event, so the
	// single-entry memo thrashes and every such event paid a full
	// page-table walk. Tags are vp+1 so the zero value means empty and
	// invalidation is a plain clear. Like the same-page memo this is pure
	// derived state — mappings are immutable once allocated — but a memo
	// entry implies "this page is already mapped", which restoring an
	// earlier snapshot can falsify (the walk's first-touch allocation
	// draws from the VM RNG), so both memos go cold together in
	// ResetSampleTiming.
	tlbTag   [tlbSize]uint64
	tlbPBase [tlbSize]memtypes.LineAddr

	stream    workloads.Stream
	translate Translate
	mem       MemorySystem
	fmem      FunctionalMemory // mem's functional view; nil when unsupported

	// Batch fast-forward plumbing (see batch.go). wstream/bmem are the
	// stream's and memory system's optional batch views, cached here at
	// construction like fmem; blines is the translated-line scratch batch
	// calls reuse across windows. All nil/empty when either side does not
	// support batching, in which case StepFunctionalBatch degrades to
	// per-event StepFunctional.
	wstream WindowStream
	bmem    BatchFunctionalMemory
	blines  []memtypes.LineAddr

	reads, writes, depStalls, mshrStalls uint64

	// Cold configuration and window marks.
	id        int
	params    Params
	markTime  int64
	markInstr int64
}

// New builds a core. It panics on invalid parameters.
func New(id int, params Params, stream workloads.Stream, translate Translate, mem MemorySystem) *Core {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	w := int64(params.IssueWidth)
	mask, shift := int64(-1), uint8(0)
	if w&(w-1) == 0 {
		mask = w - 1
		for 1<<shift < w {
			shift++
		}
	}
	fmem, _ := mem.(FunctionalMemory)
	wstream, _ := stream.(WindowStream)
	bmem, _ := mem.(BatchFunctionalMemory)
	return &Core{
		wstream:    wstream,
		bmem:       bmem,
		id:         id,
		params:     params,
		memoVPage:  ^memtypes.PageNum(0),
		issueWidth: w,
		issueMask:  mask,
		issueShift: shift,
		sramLat:    params.SRAMLat,
		stream:     stream,
		translate:  translate,
		mem:        mem,
		fmem:       fmem,
		mshr:       make([]int64, params.MSHRs),
	}
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// Time returns the core's current cycle.
func (c *Core) Time() int64 { return c.time }

// Instructions returns the total instructions retired.
func (c *Core) Instructions() int64 { return c.instr }

// tlbBits sizes the direct-mapped translation memo: 4096 entries cover
// the scaled workloads' full page footprints and a useful slice of the
// unscaled ones, at 64 KB of host memory per core.
const (
	tlbBits = 12
	tlbSize = 1 << tlbBits
)

// translateLine resolves a virtual line through the same-page memo, then
// the direct-mapped memo, falling back to the full translation walk.
func (c *Core) translateLine(vl memtypes.LineAddr) memtypes.LineAddr {
	vp := vl.Page()
	if vp == c.memoVPage {
		return c.memoPBase + memtypes.LineAddr(vl.PageOffset())
	}
	i := (uint64(vp) * 0x9e3779b97f4a7c15) >> (64 - tlbBits)
	if c.tlbTag[i] == uint64(vp)+1 {
		base := c.tlbPBase[i]
		c.memoVPage, c.memoPBase = vp, base
		return base + memtypes.LineAddr(vl.PageOffset())
	}
	pl := c.translate(vl)
	base := pl - memtypes.LineAddr(vl.PageOffset())
	c.memoVPage, c.memoPBase = vp, base
	c.tlbTag[i] = uint64(vp) + 1
	c.tlbPBase[i] = base
	return pl
}

// Step consumes and executes one workload event.
func (c *Core) Step() {
	ev := &c.ev
	c.stream.Next(ev)

	// Non-memory instructions retire at the issue width; the remainder
	// carries so long-run throughput is exact. instCarry is never
	// negative, so for power-of-two widths the division is a shift.
	c.instCarry += int64(ev.Gap)
	if c.issueMask >= 0 {
		c.time += c.instCarry >> c.issueShift
		c.instCarry &= c.issueMask
	} else {
		c.time += c.instCarry / c.issueWidth
		c.instCarry %= c.issueWidth
	}

	line := c.translateLine(ev.Line)
	switch {
	case ev.Write:
		// Dirty writeback: drains through the write buffer without
		// stalling the core.
		c.writes++
		c.mem.Write(c.time+c.sramLat, line)
	default:
		c.reads++
		slot := c.admit()
		done := c.mem.Read(c.time+c.sramLat, line)
		if ev.Dep {
			// The core cannot run ahead of a dependent load.
			c.depStalls++
			c.time = done
		}
		c.mshr[slot] = done
	}
	c.instr += int64(ev.Gap) + 1
}

// SupportsFunctional reports whether the memory system behind this core
// implements FunctionalMemory, i.e. whether StepFunctional may be used.
func (c *Core) SupportsFunctional() bool { return c.fmem != nil }

// StepFunctional consumes one workload event mutating only functional
// state: the stream cursor, the instruction-carry remainder, the retired
// instruction count, the event-mix counters, and — through the
// FunctionalMemory — every cache tag/dirty/replacement/steering table the
// event would touch in detailed mode. The clock, MSHR occupancy, and all
// latency accounting are skipped, which is what makes it an order of
// magnitude cheaper per event. The functional state it leaves behind is
// byte-identical to what the same events produce under Step.
func (c *Core) StepFunctional() {
	ev := &c.ev
	c.stream.Next(ev)

	// Reduce the issue-width carry exactly as Step does, minus the clock
	// advance: (carry + gap) mod width is unchanged by dropping the
	// quotient, so instCarry stays byte-identical to detailed mode.
	c.instCarry += int64(ev.Gap)
	if c.issueMask >= 0 {
		c.instCarry &= c.issueMask
	} else {
		c.instCarry %= c.issueWidth
	}

	line := c.translateLine(ev.Line)
	if ev.Write {
		c.writes++
		c.fmem.WriteFunctional(line)
	} else {
		c.reads++
		if ev.Dep {
			c.depStalls++
		}
		c.fmem.ReadFunctional(line)
	}
	c.instr += int64(ev.Gap) + 1
}

// admit finds a free MSHR, stalling the core until the oldest outstanding
// miss completes when all are busy: first-free linear scan with a fused
// stall-min search. A free-mask/min-cache variant (admitMask below) was
// implemented and benchmarked slower end to end — with 12 MSHRs the
// first free slot is usually at a low index, so this scan early-exits in
// a compare or two while the mask pays a per-insert update and a full
// resweep every time the clock passes the earliest outstanding
// completion (DESIGN.md §13 has the numbers).
func (c *Core) admit() int {
	best := 0
	for i, t := range c.mshr {
		if t <= c.time {
			return i
		}
		if t < c.mshr[best] {
			best = i
		}
	}
	// All busy: wait for the earliest completion.
	c.mshrStalls++
	c.time = c.mshr[best]
	return best
}

// admitMask is the free-list alternative to admit: an exact free-set
// bitmask popped with a trailing-zeros plus a cached earliest-busy
// completion for the stall case. It picks byte-identical slots to admit
// — the equivalence test drives both disciplines over randomized miss
// streams to pin that — but requires every completion store to go
// through mshrSetMask to stay coherent, so a core must use one
// discipline exclusively. Kept as the contract anchor for the measured
// rejection described on admit.
func (c *Core) admitMask() int {
	if c.mshrMinBusy <= c.time {
		// Some busy slot may have completed (or the cache was
		// invalidated); recompute the exact free set at the current time.
		// Any slot freed since the last sweep has completion >= the swept
		// minimum, so this condition fires whenever the mask could be
		// missing a newly free slot.
		c.sweepMSHR()
	}
	if c.mshrFree != 0 {
		slot := bits.TrailingZeros64(c.mshrFree)
		c.mshrFree &^= 1 << uint(slot)
		return slot
	}
	// All busy: wait for the earliest completion. mshrMinBusy/mshrMinIdx
	// go stale once the caller overwrites the slot, but time has just
	// reached mshrMinBusy, so the next admit resweeps regardless.
	c.mshrStalls++
	c.time = c.mshrMinBusy
	return c.mshrMinIdx
}

// sweepMSHR rebuilds the free mask and earliest-busy-completion cache
// from the mshr array at the current time. Strict < keeps the first
// index among equal completions, matching the old scan's tie-break.
func (c *Core) sweepMSHR() {
	free := uint64(0)
	minV := int64(1<<63 - 1)
	minI := 0
	for i, t := range c.mshr {
		if t <= c.time {
			free |= 1 << uint(i)
		} else if t < minV {
			minV = t
			minI = i
		}
	}
	c.mshrFree = free
	c.mshrMinBusy = minV
	c.mshrMinIdx = minI
}

// mshrSetMask records the completion cycle of the miss admitted into
// slot under the admitMask discipline, keeping the free-mask cache
// coherent: a miss completing at or before the current time is
// immediately free again (a dependent load advanced the clock to its own
// completion), otherwise it joins the busy set and may become the new
// earliest completion.
func (c *Core) mshrSetMask(slot int, done int64) {
	c.mshr[slot] = done
	if done <= c.time {
		c.mshrFree |= 1 << uint(slot)
	} else if done < c.mshrMinBusy || (done == c.mshrMinBusy && slot < c.mshrMinIdx) {
		c.mshrMinBusy = done
		c.mshrMinIdx = slot
	}
}

// invalidateMSHRCache forces the next admitMask to resweep the mshr
// array (the zero minBusy is <= any non-negative core time). Called
// wherever the mshr array is bulk-mutated outside mshrSetMask — reset,
// restore — so the mask discipline is safe to enter from any such point.
func (c *Core) invalidateMSHRCache() {
	c.mshrFree = 0
	c.mshrMinBusy = 0
	c.mshrMinIdx = 0
}

// MarkWindow starts a measurement window at the current point; IPC is
// reported relative to the latest mark (used to exclude warmup).
func (c *Core) MarkWindow() {
	c.markTime = c.time
	c.markInstr = c.instr
}

// WindowInstructions returns instructions retired since the last mark.
func (c *Core) WindowInstructions() int64 { return c.instr - c.markInstr }

// WindowCycles returns cycles elapsed since the last mark.
func (c *Core) WindowCycles() int64 { return c.time - c.markTime }

// IPC returns instructions per cycle since the last mark.
func (c *Core) IPC() float64 {
	cyc := c.WindowCycles()
	if cyc <= 0 {
		return 0
	}
	return float64(c.WindowInstructions()) / float64(cyc)
}

// Counters reports the core's event counts (reads, writes, dependent-load
// stalls, MSHR-full stalls).
func (c *Core) Counters() (reads, writes, depStalls, mshrStalls uint64) {
	return c.reads, c.writes, c.depStalls, c.mshrStalls
}
