package cpu

import (
	"fmt"

	"accord/internal/ckpt"
	"accord/internal/workloads"
)

// coreVersion tags the Core encoding; bump on any layout change.
const coreVersion = 1

// Snapshot serializes the core's clocks, MSHR completion times,
// cumulative counters, window marks, and the workload stream's cursor
// state. The cumulative counters are included because Result.Events and
// Result.InstructionsTotal report warmup work too: a restored run must
// account for the instructions the checkpoint already retired. It
// returns an error when the stream does not implement
// workloads.Checkpointer; such cores cannot be checkpointed.
func (c *Core) Snapshot(e *ckpt.Encoder) error {
	cp, ok := c.stream.(workloads.Checkpointer)
	if !ok {
		return fmt.Errorf("cpu: core %d stream %T does not support checkpointing", c.id, c.stream)
	}
	e.U8(coreVersion)
	e.I64(c.time)
	e.I64(c.instr)
	e.I64(c.instCarry)
	e.U32(uint32(len(c.mshr)))
	for _, m := range c.mshr {
		e.I64(m)
	}
	e.U64(c.reads)
	e.U64(c.writes)
	e.U64(c.depStalls)
	e.U64(c.mshrStalls)
	e.I64(c.markTime)
	e.I64(c.markInstr)
	cp.Snapshot(e)
	return nil
}

// FunctionalSnapshot serializes only the core state functional
// fast-forwarding defines: retired instructions, the issue-width carry,
// the event-mix counters, and the stream cursor. The clock, MSHR
// completion times, MSHR-stall counter, and window marks are timing
// state — a functional and a detailed run of the same events disagree on
// them by construction — so they are deliberately excluded. Used by the
// functional-vs-detailed differential tests (sim.FunctionalSnapshot).
func (c *Core) FunctionalSnapshot(e *ckpt.Encoder) error {
	cp, ok := c.stream.(workloads.Checkpointer)
	if !ok {
		return fmt.Errorf("cpu: core %d stream %T does not support checkpointing", c.id, c.stream)
	}
	e.U8(coreVersion)
	e.I64(c.instr)
	e.I64(c.instCarry)
	e.U64(c.reads)
	e.U64(c.writes)
	e.U64(c.depStalls)
	cp.Snapshot(e)
	return nil
}

// RestoreFunctional replaces the core's functional state with a
// FunctionalSnapshot blob and resets everything the blob deliberately
// excludes — clock, MSHRs, MSHR-stall count, window marks — to the
// canonical fresh-core values via ResetSampleTiming. This is the fork
// half of parallel interval sampling: a worker restoring a spine fork
// gets exactly the state a brand-new core would have after functionally
// retiring the same events. On error the core must be discarded.
func (c *Core) RestoreFunctional(d *ckpt.Decoder) error {
	cp, ok := c.stream.(workloads.Checkpointer)
	if !ok {
		return fmt.Errorf("cpu: core %d stream %T does not support checkpointing", c.id, c.stream)
	}
	if v := d.U8(); d.Err() == nil && v != coreVersion {
		d.Failf("cpu: snapshot version %d, want %d", v, coreVersion)
	}
	c.instr = d.I64()
	c.instCarry = d.I64()
	c.reads = d.U64()
	c.writes = d.U64()
	c.depStalls = d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if err := cp.Restore(d); err != nil {
		return err
	}
	c.ResetSampleTiming()
	return nil
}

// Restore replaces the core's state with a snapshot. On error the core
// is left in an unspecified state and must be discarded.
func (c *Core) Restore(d *ckpt.Decoder) error {
	cp, ok := c.stream.(workloads.Checkpointer)
	if !ok {
		return fmt.Errorf("cpu: core %d stream %T does not support checkpointing", c.id, c.stream)
	}
	if v := d.U8(); d.Err() == nil && v != coreVersion {
		d.Failf("cpu: snapshot version %d, want %d", v, coreVersion)
	}
	c.time = d.I64()
	c.instr = d.I64()
	c.instCarry = d.I64()
	if n := d.U32(); d.Err() == nil && int(n) != len(c.mshr) {
		d.Failf("cpu: snapshot has %d MSHRs, core has %d", n, len(c.mshr))
	}
	if err := d.Err(); err != nil {
		return err
	}
	for i := range c.mshr {
		c.mshr[i] = d.I64()
	}
	c.invalidateMSHRCache()
	c.reads = d.U64()
	c.writes = d.U64()
	c.depStalls = d.U64()
	c.mshrStalls = d.U64()
	c.markTime = d.I64()
	c.markInstr = d.I64()
	if err := d.Err(); err != nil {
		return err
	}
	return cp.Restore(d)
}
