package cpu

import (
	"accord/internal/memtypes"
	"accord/internal/workloads"
)

// WindowStream is the optional batch view of a workload stream: it
// exposes the stream's internal buffer as parallel slices so a consumer
// can scan a whole run of events without the per-event Next call, then
// commit how many it actually used. workloads.Cursor (the shared trace
// cache) implements it; streams that don't simply run per-event.
type WindowStream interface {
	// Window returns the remaining events of the current buffered chunk
	// as parallel slices (never empty for an unbounded stream). The
	// slices alias stream-owned memory and are invalidated by Consume.
	Window() (gaps []int32, lines []memtypes.LineAddr, flags []uint8)
	// Consume advances the cursor past the first n events of the last
	// returned window.
	Consume(n int)
}

// BatchFunctionalMemory is the optional batch view of a core's memory
// system: one call applies a run of functional accesses, where
// flags[i]&workloads.FlagWrite selects a functional write (other flag
// bits are ignored). Implementations dispatch once per batch instead of
// once per event, which is where the spine-batching speedup lives.
type BatchFunctionalMemory interface {
	BatchFunctional(lines []memtypes.LineAddr, flags []uint8)
}

// Compile-time pins of the flag-bit positions StepFunctionalBatch's
// branch-free event counting relies on (division by zero here means the
// workloads flag encoding moved).
const (
	_ = 1 / (workloads.FlagWrite & 1)      // FlagWrite must be bit 0
	_ = 1 / ((workloads.FlagDep >> 1) & 1) // FlagDep must be bit 1
)

// SupportsBatchFunctional reports whether both the core's stream and
// memory system expose batch views, i.e. whether StepFunctionalBatch
// runs chunk-granular rather than falling back to StepFunctional.
func (c *Core) SupportsBatchFunctional() bool {
	return c.wstream != nil && c.bmem != nil
}

// StepFunctionalBatch advances functional execution toward the absolute
// instruction target, consuming at most one stream window per call (so a
// multi-core driver can round-robin at window granularity). It is
// behavior-identical to calling StepFunctional until Instructions() >=
// target: the same events mutate the same functional state, the
// issue-width carry is reduced with the same modulus (the quotient of a
// sum equals the chained per-event quotients only in the dropped clock
// term; the remainder (a+Σg) mod w is exactly the chained remainder),
// and the event-mix counters count the same events. What the batch form
// buys is hoisting the per-event interface dispatches, bounds checks,
// and target comparisons into one scan over the window plus one
// BatchFunctional call. Callers must check SupportsFunctional; without
// batch views it degrades to a single StepFunctional.
func (c *Core) StepFunctionalBatch(target int64) {
	if c.wstream == nil || c.bmem == nil {
		c.StepFunctional()
		return
	}
	gaps, lines, flags := c.wstream.Window()
	if len(gaps) == 0 {
		// Defensive: an exhausted bounded window stream cannot make
		// progress; fall back so the caller's loop terminates or panics
		// the same way the per-event path would.
		c.StepFunctional()
		return
	}
	if cap(c.blines) < len(gaps) {
		c.blines = make([]memtypes.LineAddr, len(gaps))
	}
	blines := c.blines[:len(gaps)]
	// Reslice the parallel windows to the gaps length so the compiler can
	// prove every per-event index in the scan below is in bounds.
	lines = lines[:len(gaps)]
	flags = flags[:len(gaps)]

	// Pass 1: scan the window, stopping exactly at the first event whose
	// retirement reaches the target — byte-identical stopping point to
	// the per-event loop `for instr < target { StepFunctional() }`. The
	// event-mix counters are computed branch-free (flag bits are random
	// enough to mispredict), and the same-page memo check is inlined with
	// the memo in locals so a memo hit costs no call.
	instr := c.instr
	gapSum := int64(0)
	reads, writes, depStalls := uint64(0), uint64(0), uint64(0)
	memoV, memoB := c.memoVPage, c.memoPBase
	used := 0
	for i := range gaps {
		g := int64(gaps[i])
		gapSum += g
		instr += g + 1
		w := uint64(flags[i] & workloads.FlagWrite)  // 0 or 1 (bit 0)
		d := uint64(flags[i]&workloads.FlagDep) >> 1 // 0 or 1 (bit 1)
		writes += w
		reads += 1 - w
		depStalls += d &^ w // dep stalls count on reads only
		vl := lines[i]
		if vp := vl.Page(); vp == memoV {
			blines[i] = memoB + memtypes.LineAddr(vl.PageOffset())
		} else {
			blines[i] = c.translateLine(vl)
			memoV, memoB = c.memoVPage, c.memoPBase
		}
		used = i + 1
		if instr >= target {
			break
		}
	}

	// Reduce the carry once for the whole run: ((a+g1) mod w + g2) mod w
	// == (a+g1+g2) mod w, inductively for any run length.
	c.instCarry += gapSum
	if c.issueMask >= 0 {
		c.instCarry &= c.issueMask
	} else {
		c.instCarry %= c.issueWidth
	}
	c.reads += reads
	c.writes += writes
	c.depStalls += depStalls
	c.bmem.BatchFunctional(blines[:used], flags[:used])
	c.wstream.Consume(used)
	c.instr = instr
}

// ResetSampleTiming discards the core's timing state, leaving it as a
// freshly constructed core that has already retired the current
// functional state: clock at zero, MSHRs idle, MSHR-stall count zero,
// window marks at the current position, translation memo cold. Interval
// sampling calls this at every detailed-window boundary so each
// measured window starts from the same canonical timing state whether
// it runs in place on the spine's System or on a restored fork —
// that shared canonical start is what makes sequential and parallel
// sampled runs byte-identical (DESIGN.md §12).
func (c *Core) ResetSampleTiming() {
	c.time = 0
	for i := range c.mshr {
		c.mshr[i] = 0
	}
	c.invalidateMSHRCache()
	c.mshrStalls = 0
	c.markTime = 0
	c.markInstr = c.instr
	c.memoVPage = ^memtypes.PageNum(0)
	clear(c.tlbTag[:])
}

// SetSampledFinal imposes the committed aggregates of a sampled run on
// the core so post-run accessors (Instructions, Counters, IPC, window
// gauges) and the metrics registry report the deterministic committed
// totals rather than whatever timing state the last interval left
// behind. winInstr/winCycles are the summed measured-window
// instructions and cycles, exposed as the current window.
func (c *Core) SetSampledFinal(instr int64, reads, writes, depStalls, mshrStalls uint64, winInstr, winCycles int64) {
	c.instr = instr
	c.reads = reads
	c.writes = writes
	c.depStalls = depStalls
	c.mshrStalls = mshrStalls
	c.markInstr = instr - winInstr
	c.time = winCycles
	c.markTime = 0
}
