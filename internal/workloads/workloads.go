// Package workloads synthesizes the memory access streams the paper
// evaluates on. Real SPEC-2006/GAP/HPC traces cannot be shipped, so each
// named workload is a generator preset reproducing the characteristics
// Table IV reports — L3 MPKI, memory footprint relative to the 4 GB cache,
// and sensitivity to associativity — plus the two properties the ACCORD
// mechanisms exploit: page-level spatial locality (for ganged
// way-steering) and set-conflict intensity (for way associativity).
//
// Each stream models the post-L3 miss stream of one core: events carry
// the instruction gap since the previous L3 miss (derived from MPKI), a
// virtual line address, a write flag (dirty-writeback fraction), and a
// dependence flag (whether the load serializes the core).
package workloads

import (
	"accord/internal/xrand"
	"fmt"

	"accord/internal/memtypes"
)

// Event is one post-L3 memory event of a core.
type Event struct {
	// Gap is the number of non-memory-system instructions executed since
	// the previous event.
	Gap int32
	// Line is the virtual line address accessed.
	Line memtypes.LineAddr
	// Write marks the event as producing a dirty writeback toward the
	// DRAM cache rather than a demand read.
	Write bool
	// Dep marks a load the core cannot proceed past until data returns
	// (a pointer-chase-like critical dependence).
	Dep bool
}

// Stream is an unbounded event source; the simulator decides when to stop.
type Stream interface {
	Next(ev *Event)
}

// Component is one constituent access pattern of a workload.
type Component struct {
	// Weight is the fraction of accesses this component receives.
	Weight float64
	// SizeRatio is the component's total footprint (across all cores in
	// rate mode) as a fraction of the DRAM cache capacity.
	SizeRatio float64
	// StrideLines selects the reference order over the footprint:
	//   1   — sequential cyclic scan (maximal spatial locality),
	//   k>1 — cyclic permutation walk with the given stride (cyclic reuse
	//         with little spatial locality),
	//   0   — uniform random re-reference (no cyclic structure).
	StrideLines uint64
}

// Spec parameterizes one core's generator.
type Spec struct {
	Name string
	// MPKI is the L3 miss rate this stream models; the mean instruction
	// gap between events is 1000/MPKI.
	MPKI float64
	// WriteFrac is the fraction of events that are dirty writebacks.
	WriteFrac float64
	// DepFrac is the fraction of reads that serialize the core.
	DepFrac float64
	// Components must have weights summing to ~1.
	Components []Component
}

// Validate reports a descriptive error for an unusable spec.
func (s Spec) Validate() error {
	if s.MPKI <= 0 {
		return fmt.Errorf("workload %s: MPKI %v must be positive", s.Name, s.MPKI)
	}
	if s.WriteFrac < 0 || s.WriteFrac > 1 || s.DepFrac < 0 || s.DepFrac > 1 {
		return fmt.Errorf("workload %s: fractions out of range", s.Name)
	}
	if len(s.Components) == 0 {
		return fmt.Errorf("workload %s: no components", s.Name)
	}
	total := 0.0
	for i, c := range s.Components {
		if c.Weight < 0 || c.SizeRatio <= 0 {
			return fmt.Errorf("workload %s: component %d has weight %v ratio %v", s.Name, i, c.Weight, c.SizeRatio)
		}
		total += c.Weight
	}
	if total < 0.99 || total > 1.01 {
		return fmt.Errorf("workload %s: component weights sum to %v", s.Name, total)
	}
	return nil
}

// componentState is the runtime cursor of one component.
type componentState struct {
	base   memtypes.LineAddr // VA base of this component's arena
	lines  uint64
	stride uint64 // 0 = random
	pos    uint64
}

// generator implements Stream for a Spec.
type generator struct {
	spec     Spec
	rng      *xrand.Rand
	meanGap  float64
	cum      []float64 // cumulative component weights
	cumTotal float64   // cum[len(cum)-1], hoisted off the per-event path
	comps    []componentState
	// count is the number of events generated so far. It participates in
	// the checkpoint encoding so a trace-cache replay cursor — whose only
	// mutable state is its position — snapshots byte-identically to the
	// generator it replays (see tracecache.go).
	count int64
}

// gcd returns the greatest common divisor of a and b.
func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// StreamSeed derives the per-core stream seed from a simulation seed.
// Every stream constructor (sim.New, the trace cache, tests) must use the
// same derivation or identically configured runs would diverge.
func StreamSeed(seed int64, core int) int64 { return seed*1000 + int64(core) }

// NewStream builds the event stream for spec on one of `cores` cores of a
// system whose DRAM cache holds cacheLines lines. Component footprints are
// split evenly across cores (rate mode semantics); seed individualizes the
// core's reference order.
// Single-core streams additionally implement the batch window contract
// (Window/Consume, see windowedGenerator) so detailed and functional batch
// loops can consume generated events in runs. Multi-core systems advance
// their cores in near-lockstep — each core drains one event per turn —
// so buffering ahead would cost the copy without ever serving a run;
// those streams stay unwrapped.
func NewStream(spec Spec, cacheLines uint64, cores int, seed int64) Stream {
	g := newGenerator(spec, cacheLines, cores, seed)
	if cores == 1 {
		return newWindowedGenerator(g)
	}
	return g
}

// newGenerator is NewStream with a concrete return type; the trace cache
// needs the generator's snapshot machinery.
func newGenerator(spec Spec, cacheLines uint64, cores int, seed int64) *generator {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if cores < 1 {
		cores = 1
	}
	g := &generator{
		spec:    spec,
		rng:     xrand.New(seed),
		meanGap: 1000 / spec.MPKI,
	}
	total := 0.0
	for i, c := range spec.Components {
		total += c.Weight
		g.cum = append(g.cum, total)
		lines := uint64(c.SizeRatio * float64(cacheLines) / float64(cores))
		if lines < memtypes.LinesPerRegion {
			lines = memtypes.LinesPerRegion
		}
		stride := c.StrideLines
		if stride > 0 {
			// Force the stride coprime with the footprint so a cyclic
			// walk visits every line exactly once per cycle.
			for gcd(stride, lines) != 1 {
				stride++
			}
			// Reduce into [0, lines) so Next can advance the cursor with
			// a conditional subtract instead of a divide; (pos+stride)
			// mod lines is unchanged by reducing stride mod lines.
			stride %= lines
		}
		g.comps = append(g.comps, componentState{
			// Each component roams a disjoint virtual arena.
			base:   memtypes.LineAddr(uint64(i+1) << 36),
			lines:  lines,
			stride: stride,
			pos:    uint64(g.rng.Int63()) % lines,
		})
	}
	g.cumTotal = g.cum[len(g.cum)-1]
	return g
}

// Next implements Stream.
func (g *generator) Next(ev *Event) {
	// Exponential instruction gaps reproduce the bursty arrival process of
	// real miss streams while matching the configured MPKI in expectation.
	gap := g.rng.ExpFloat64() * g.meanGap
	if gap > 1e6 {
		gap = 1e6
	}
	ev.Gap = int32(gap)

	// Pick a component by weight.
	x := g.rng.Float64() * g.cumTotal
	cum := g.cum
	ci := 0
	for ci < len(cum)-1 && x > cum[ci] {
		ci++
	}
	c := &g.comps[ci]

	var off uint64
	if c.stride == 0 {
		off = uint64(g.rng.Int63()) % c.lines
	} else {
		// stride and pos are both < lines, so one conditional subtract
		// replaces the modulo.
		p := c.pos + c.stride
		if p >= c.lines {
			p -= c.lines
		}
		c.pos = p
		off = p
	}
	ev.Line = c.base + memtypes.LineAddr(off)
	ev.Write = g.rng.Float64() < g.spec.WriteFrac
	ev.Dep = !ev.Write && g.rng.Float64() < g.spec.DepFrac
	g.count++
}

// FixedStream replays a fixed slice of events cyclically; used by tests
// and by the cyclic-reference kernel experiments.
type FixedStream struct {
	Events []Event
	pos    int
}

// Next implements Stream.
func (f *FixedStream) Next(ev *Event) {
	*ev = f.Events[f.pos%len(f.Events)]
	f.pos++
}
