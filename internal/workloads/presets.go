package workloads

import (
	"fmt"
	"sort"
)

// Workload is a named assignment of one Spec per core. In rate mode all
// cores run the same spec (with per-core seeds and address spaces); in mix
// mode each core runs a different spec.
type Workload struct {
	Name  string
	Suite string // "spec", "gap", "hpc", "mix", or "trace"
	Specs []Spec // one per core
	// Streams, when non-nil, overrides generator construction with
	// pre-built streams (trace replay); len must equal len(Specs).
	Streams []Stream
	// Source, when non-nil, overrides generator construction with a
	// per-core stream factory (it takes precedence over Streams). It must
	// return a fresh stream positioned at event zero on every call: system
	// assembly invokes it once per core, and a failed warm-state restore
	// rebuilds the system — and its streams — from scratch. The trace
	// cache plugs in here (see TraceCache.Source).
	Source func(core int) Stream
}

// preset describes a rate-mode workload before expansion to cores.
type preset struct {
	suite string
	spec  Spec
}

// The preset table. Component triples are (weight, footprint ratio
// relative to the DRAM cache, stride): stride 1 is a sequential scan
// (high page-level spatial locality), larger strides are cyclic
// permutation walks (reuse without spatial locality), stride 0 is uniform
// random. Ratios near and below 1 create the set-conflict pressure that
// makes a workload associativity-sensitive; large ratios create
// capacity/compulsory misses that no associativity can fix. Values are
// chosen to reproduce Table IV: each workload's L3 MPKI, footprint class,
// and 8-way speedup potential.
var presets = map[string]preset{
	// ---- SPEC 2006, the eleven of Table IV ----
	"soplex": {"spec", Spec{MPKI: 26.7, WriteFrac: 0.25, DepFrac: 0.35, Components: []Component{
		{Weight: 0.47, SizeRatio: 0.06, StrideLines: 1},
		{Weight: 0.50, SizeRatio: 0.55, StrideLines: 1},
		{Weight: 0.03, SizeRatio: 2.5, StrideLines: 1},
	}}},
	"leslie3d": {"spec", Spec{MPKI: 17.5, WriteFrac: 0.28, DepFrac: 0.30, Components: []Component{
		{Weight: 0.52, SizeRatio: 0.05, StrideLines: 1},
		{Weight: 0.45, SizeRatio: 0.45, StrideLines: 1},
		{Weight: 0.03, SizeRatio: 2.0, StrideLines: 1},
	}}},
	"libquantum": {"spec", Spec{MPKI: 25.4, WriteFrac: 0.30, DepFrac: 0.15, Components: []Component{
		{Weight: 0.42, SizeRatio: 0.04, StrideLines: 1},
		{Weight: 0.55, SizeRatio: 0.30, StrideLines: 1},
		{Weight: 0.03, SizeRatio: 2.0, StrideLines: 1},
	}}},
	"gcc": {"spec", Spec{MPKI: 16.9, WriteFrac: 0.30, DepFrac: 0.40, Components: []Component{
		{Weight: 0.57, SizeRatio: 0.04, StrideLines: 1},
		{Weight: 0.40, SizeRatio: 0.45, StrideLines: 1},
		{Weight: 0.03, SizeRatio: 1.5, StrideLines: 1},
	}}},
	"zeusmp": {"spec", Spec{MPKI: 4.9, WriteFrac: 0.30, DepFrac: 0.30, Components: []Component{
		{Weight: 0.62, SizeRatio: 0.05, StrideLines: 1},
		{Weight: 0.35, SizeRatio: 0.35, StrideLines: 1},
		{Weight: 0.03, SizeRatio: 1.5, StrideLines: 1},
	}}},
	"wrf": {"spec", Spec{MPKI: 6.9, WriteFrac: 0.30, DepFrac: 0.30, Components: []Component{
		{Weight: 0.57, SizeRatio: 0.05, StrideLines: 1},
		{Weight: 0.40, SizeRatio: 0.50, StrideLines: 1},
		{Weight: 0.03, SizeRatio: 2.0, StrideLines: 1},
	}}},
	"omnetpp": {"spec", Spec{MPKI: 20.6, WriteFrac: 0.30, DepFrac: 0.55, Components: []Component{
		{Weight: 0.52, SizeRatio: 0.04, StrideLines: 1},
		{Weight: 0.45, SizeRatio: 0.40, StrideLines: 17},
		{Weight: 0.03, SizeRatio: 1.2, StrideLines: 9},
	}}},
	"xalancbmk": {"spec", Spec{MPKI: 2.1, WriteFrac: 0.28, DepFrac: 0.50, Components: []Component{
		{Weight: 0.57, SizeRatio: 0.05, StrideLines: 1},
		{Weight: 0.40, SizeRatio: 0.40, StrideLines: 9},
		{Weight: 0.03, SizeRatio: 1.2, StrideLines: 0},
	}}},
	"mcf": {"spec", Spec{MPKI: 56.8, WriteFrac: 0.20, DepFrac: 0.75, Components: []Component{
		{Weight: 0.32, SizeRatio: 0.05, StrideLines: 0},
		{Weight: 0.35, SizeRatio: 0.75, StrideLines: 13},
		{Weight: 0.33, SizeRatio: 2.2, StrideLines: 0},
	}}},
	"sphinx3": {"spec", Spec{MPKI: 12.2, WriteFrac: 0.15, DepFrac: 0.35, Components: []Component{
		{Weight: 0.97, SizeRatio: 0.06, StrideLines: 1},
		{Weight: 0.03, SizeRatio: 0.12, StrideLines: 1},
	}}},
	"milc": {"spec", Spec{MPKI: 25.7, WriteFrac: 0.25, DepFrac: 0.20, Components: []Component{
		{Weight: 0.59, SizeRatio: 0.04, StrideLines: 1},
		{Weight: 0.33, SizeRatio: 3.0, StrideLines: 1},
		{Weight: 0.08, SizeRatio: 1.2, StrideLines: 0},
	}}},

	// ---- SPEC 2006, the remaining eighteen (memory-light or
	// associativity-insensitive; Section VI-A's "all 46") ----
	"bwaves":    {"spec", specStreamy(18, 4.0)},
	"lbm":       {"spec", specStreamy(30, 5.0)},
	"gemsfdtd":  {"spec", specStreamy(15, 3.5)},
	"cactusadm": {"spec", specMild(6.0, 0.35)},
	"astar":     {"spec", specPointer(6.0, 1.2)},
	"bzip2":     {"spec", specMild(4.0, 0.30)},
	"hmmer":     {"spec", specHot(2.8)},
	"dealii":    {"spec", specMild(2.5, 0.25)},
	"h264ref":   {"spec", specHot(2.2)},
	"calculix":  {"spec", specHot(1.8)},
	"gromacs":   {"spec", specHot(1.5)},
	"perlbench": {"spec", specHot(1.5)},
	"namd":      {"spec", specHot(1.2)},
	"gobmk":     {"spec", specHot(1.2)},
	"sjeng":     {"spec", specHot(1.0)},
	"tonto":     {"spec", specHot(1.0)},
	"gamess":    {"spec", specHot(0.4)},
	"povray":    {"spec", specHot(0.3)},

	// ---- GAP graph analytics (twitter and web sk-2005 inputs) ----
	"pr_twitter": {"gap", specGraph(30, 2.5, 0.70, 7)},
	"cc_twitter": {"gap", specGraph(26, 2.2, 0.65, 5)},
	"bc_twitter": {"gap", specGraph(22, 2.0, 0.60, 11)},
	"pr_web":     {"gap", specGraphWeb(18, 1.8, 0.55)},
	"cc_web":     {"gap", specGraphWeb(15, 1.8, 0.50)},
	"bc_web":     {"gap", specGraphWeb(13, 1.6, 0.45)},

	// ---- HPC ----
	"nekbone": {"hpc", Spec{MPKI: 3.0, WriteFrac: 0.25, DepFrac: 0.20, Components: []Component{
		{Weight: 0.92, SizeRatio: 0.04, StrideLines: 1},
		{Weight: 0.08, SizeRatio: 0.10, StrideLines: 1},
	}}},
}

// specStreamy: bandwidth-bound sequential scans over a footprint far above
// cache capacity; high spatial locality, insensitive to associativity.
func specStreamy(mpki, ratio float64) Spec {
	return Spec{MPKI: mpki, WriteFrac: 0.25, DepFrac: 0.15, Components: []Component{
		{Weight: 0.45, SizeRatio: 0.04, StrideLines: 1},
		{Weight: 0.52, SizeRatio: ratio, StrideLines: 1},
		{Weight: 0.03, SizeRatio: 1.2, StrideLines: 0},
	}}
}

// specMild: moderate reuse with light conflict pressure.
func specMild(mpki, wsRatio float64) Spec {
	return Spec{MPKI: mpki, WriteFrac: 0.30, DepFrac: 0.35, Components: []Component{
		{Weight: 0.57, SizeRatio: 0.05, StrideLines: 1},
		{Weight: 0.40, SizeRatio: wsRatio, StrideLines: 1},
		{Weight: 0.03, SizeRatio: 1.5, StrideLines: 1},
	}}
}

// specHot: cache-friendly workloads whose misses are mostly compulsory.
func specHot(mpki float64) Spec {
	return Spec{MPKI: mpki, WriteFrac: 0.30, DepFrac: 0.40, Components: []Component{
		{Weight: 0.92, SizeRatio: 0.06, StrideLines: 1},
		{Weight: 0.08, SizeRatio: 1.2, StrideLines: 1},
	}}
}

// specPointer: dependent-load-heavy with modest conflict sensitivity.
func specPointer(mpki, ratio float64) Spec {
	return Spec{MPKI: mpki, WriteFrac: 0.20, DepFrac: 0.70, Components: []Component{
		{Weight: 0.42, SizeRatio: 0.05, StrideLines: 0},
		{Weight: 0.38, SizeRatio: 0.70, StrideLines: 13},
		{Weight: 0.20, SizeRatio: ratio, StrideLines: 0},
	}}
}

// specGraph: twitter-scale graph analytics — huge footprint, sparse
// accesses, little page locality (hard for GWS, per Figure 7).
func specGraph(mpki, bigRatio, wsRatio float64, stride uint64) Spec {
	return Spec{MPKI: mpki, WriteFrac: 0.10, DepFrac: 0.65, Components: []Component{
		{Weight: 0.35, SizeRatio: 0.04, StrideLines: 0},
		{Weight: 0.30, SizeRatio: wsRatio, StrideLines: stride},
		{Weight: 0.35, SizeRatio: bigRatio, StrideLines: 0},
	}}
}

// specGraphWeb: web graphs have more community structure, hence somewhat
// better locality than the twitter graphs.
func specGraphWeb(mpki, bigRatio, wsRatio float64) Spec {
	return Spec{MPKI: mpki, WriteFrac: 0.10, DepFrac: 0.60, Components: []Component{
		{Weight: 0.40, SizeRatio: 0.04, StrideLines: 1},
		{Weight: 0.35, SizeRatio: wsRatio, StrideLines: 3},
		{Weight: 0.25, SizeRatio: bigRatio, StrideLines: 0},
	}}
}

// coreSuite is the 17 rate-mode workloads of the paper's main studies
// (Table IV order: low to high sensitivity in the figures).
var coreSuite = []string{
	"milc", "sphinx3", "nekbone", "cc_web", "pr_web", "mcf", "xalancbmk",
	"bc_twitter", "pr_twitter", "cc_twitter", "omnetpp", "wrf", "zeusmp",
	"gcc", "libquantum", "leslie3d", "soplex",
}

// mixPool is the set of workloads with at least 2 MPKI from which mixes
// are drawn (Section III-B).
var mixPool = []string{
	"soplex", "leslie3d", "libquantum", "gcc", "zeusmp", "wrf", "omnetpp",
	"xalancbmk", "mcf", "sphinx3", "milc", "bwaves", "lbm", "gemsfdtd",
	"cactusadm", "astar", "bzip2", "hmmer",
}

// Names returns the rate-mode preset names, sorted.
func Names() []string {
	out := make([]string, 0, len(presets))
	for n := range presets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CoreSuite returns the names of the paper's 21-workload main suite:
// the 17 rate-mode workloads of Table IV plus mixes mix1..mix4.
func CoreSuite() []string {
	out := append([]string{}, coreSuite...)
	for i := 1; i <= 4; i++ {
		out = append(out, fmt.Sprintf("mix%d", i))
	}
	return out
}

// AllSuite returns all 46 workloads of Section VI-A: 29 SPEC, 6 GAP,
// 1 HPC, and 10 mixes.
func AllSuite() []string {
	var out []string
	for _, n := range Names() {
		out = append(out, n)
	}
	for i := 1; i <= 10; i++ {
		out = append(out, fmt.Sprintf("mix%d", i))
	}
	return out
}

// Get resolves a workload by name ("soplex", "mix3", ...) for a system
// with the given core count.
func Get(name string, cores int) (Workload, error) {
	if p, ok := presets[name]; ok {
		w := Workload{Name: name, Suite: p.suite}
		spec := p.spec
		spec.Name = name
		for i := 0; i < cores; i++ {
			w.Specs = append(w.Specs, spec)
		}
		return w, nil
	}
	var k int
	if _, err := fmt.Sscanf(name, "mix%d", &k); err == nil && k >= 1 && k <= 10 {
		return Mix(k, cores), nil
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// Mix builds the k-th mixed workload: cores different specs drawn
// deterministically from the >= 2 MPKI pool.
func Mix(k, cores int) Workload {
	w := Workload{Name: fmt.Sprintf("mix%d", k), Suite: "mix"}
	for i := 0; i < cores; i++ {
		name := mixPool[(k*7+i*3)%len(mixPool)]
		spec := presets[name].spec
		spec.Name = name
		w.Specs = append(w.Specs, spec)
	}
	return w
}

// MustGet is Get that panics on unknown names; for tests and examples.
func MustGet(name string, cores int) Workload {
	w, err := Get(name, cores)
	if err != nil {
		panic(err)
	}
	return w
}
