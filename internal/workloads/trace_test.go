package workloads

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	spec := presets["gcc"].spec
	spec.Name = "gcc"
	src := NewStream(spec, testCacheLines, 16, 9)
	var buf bytes.Buffer
	const n = 500
	if err := WriteTrace(&buf, src, n); err != nil {
		t.Fatal(err)
	}
	replay, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay.Events) != n {
		t.Fatalf("trace has %d events, want %d", len(replay.Events), n)
	}
	// Replaying must match a fresh generator with the same seed.
	src2 := NewStream(spec, testCacheLines, 16, 9)
	var want, got Event
	for i := 0; i < n; i++ {
		src2.Next(&want)
		replay.Next(&got)
		if want != got {
			t.Fatalf("event %d: got %+v, want %+v", i, got, want)
		}
	}
}

func TestReadTraceSkipsComments(t *testing.T) {
	in := "# header\n\n10 ff r d\n5 a0 w -\n"
	st, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(st.Events))
	}
	if st.Events[0].Line != 0xff || !st.Events[0].Dep || st.Events[0].Write {
		t.Errorf("event 0 = %+v", st.Events[0])
	}
	if !st.Events[1].Write || st.Events[1].Dep {
		t.Errorf("event 1 = %+v", st.Events[1])
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []string{
		"",            // empty
		"garbage\n",   // unparseable
		"-5 ff r d\n", // negative gap
		"1 ff x d\n",  // bad kind
		"1 ff r q\n",  // bad dep
	}
	for _, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("trace %q accepted", in)
		}
	}
}

func TestTraceWorkload(t *testing.T) {
	events := []Event{{Gap: 10, Line: 1}, {Gap: 20, Line: 2, Write: true}}
	w, err := TraceWorkload("t", events, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Specs) != 4 || len(w.Streams) != 4 {
		t.Fatalf("specs/streams = %d/%d, want 4/4", len(w.Specs), len(w.Streams))
	}
	// Derived MPKI: 2 events per (10+20+2) instructions = ~62.5.
	if m := w.Specs[0].MPKI; m < 60 || m < 0 || m > 65 {
		t.Errorf("derived MPKI = %v, want ~62.5", m)
	}
	// Streams replay independently.
	var a, b Event
	w.Streams[0].Next(&a)
	w.Streams[0].Next(&a) // core 0 advances twice
	w.Streams[1].Next(&b) // core 1 starts fresh
	if b.Line != 1 {
		t.Errorf("core 1 first event line = %d, want 1", b.Line)
	}
	if _, err := TraceWorkload("empty", nil, 2); err == nil {
		t.Error("empty trace accepted")
	}
}
