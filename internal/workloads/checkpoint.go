package workloads

import "accord/internal/ckpt"

// Checkpointer is the optional snapshot interface a Stream may implement.
// It is separate from Stream so custom test streams keep compiling; the
// simulator type-asserts and refuses to checkpoint a stream that lacks
// it.
type Checkpointer interface {
	Snapshot(e *ckpt.Encoder)
	Restore(d *ckpt.Decoder) error
}

// Per-component version bytes; bump on any encoding change.
const (
	// generatorVersion 2 added the event count, which lets a trace-cache
	// replay cursor encode itself byte-identically to the generator it
	// replays (the count is the cursor position).
	generatorVersion = 2
	fixedVersion     = 1
)

// Snapshot implements Checkpointer. Only the mutable per-event state is
// stored: the event count, the RNG, and each component's stride position.
// The spec-derived fields (weights, arena bases, footprints) are rebuilt
// by NewStream from the same spec, and the RNG state already reflects the
// construction-time draws. A trace-cache Cursor over the same stream at
// the same position emits exactly these bytes, so warm-state checkpoints
// are interchangeable between generator-backed and replay-backed runs.
func (g *generator) Snapshot(e *ckpt.Encoder) {
	e.U8(generatorVersion)
	e.I64(g.count)
	g.rng.Snapshot(e)
	e.U32(uint32(len(g.comps)))
	for i := range g.comps {
		e.U64(g.comps[i].pos)
	}
}

// Restore implements Checkpointer.
func (g *generator) Restore(d *ckpt.Decoder) error {
	if v := d.U8(); d.Err() == nil && v != generatorVersion {
		d.Failf("workloads: generator snapshot version %d, want %d", v, generatorVersion)
	}
	count := d.I64()
	if d.Err() == nil && count < 0 {
		d.Failf("workloads: generator event count %d is negative", count)
	}
	if err := d.Err(); err != nil {
		return err
	}
	if err := g.rng.Restore(d); err != nil {
		return err
	}
	if n := d.U32(); d.Err() == nil && int(n) != len(g.comps) {
		d.Failf("workloads: snapshot has %d components, generator has %d", n, len(g.comps))
	}
	if err := d.Err(); err != nil {
		return err
	}
	for i := range g.comps {
		pos := d.U64()
		if d.Err() == nil && g.comps[i].lines > 0 && pos >= g.comps[i].lines {
			d.Failf("workloads: component %d position %d exceeds %d lines", i, pos, g.comps[i].lines)
		}
		if err := d.Err(); err != nil {
			return err
		}
		g.comps[i].pos = pos
	}
	g.count = count
	return nil
}

// Snapshot implements Checkpointer: the cursor is the only mutable state.
func (f *FixedStream) Snapshot(e *ckpt.Encoder) {
	e.U8(fixedVersion)
	e.I64(int64(f.pos))
}

// Restore implements Checkpointer.
func (f *FixedStream) Restore(d *ckpt.Decoder) error {
	if v := d.U8(); d.Err() == nil && v != fixedVersion {
		d.Failf("workloads: fixed stream snapshot version %d, want %d", v, fixedVersion)
	}
	// The cursor grows without bound (Next applies the modulo), so only
	// negativity is invalid.
	pos := d.I64()
	if d.Err() == nil && pos < 0 {
		d.Failf("workloads: fixed stream position %d is negative", pos)
	}
	if err := d.Err(); err != nil {
		return err
	}
	f.pos = int(pos)
	return nil
}
