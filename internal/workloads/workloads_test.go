package workloads

import (
	"math"
	"testing"

	"accord/internal/memtypes"
)

const testCacheLines = 1 << 18 // 16 MB model cache

func TestAllPresetsValid(t *testing.T) {
	for _, name := range Names() {
		w := MustGet(name, 16)
		if len(w.Specs) != 16 {
			t.Errorf("%s: %d specs, want 16", name, len(w.Specs))
		}
		for _, s := range w.Specs {
			if err := s.Validate(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
			if s.Name == "" {
				t.Errorf("%s: spec missing name", name)
			}
		}
	}
}

func TestSuiteSizes(t *testing.T) {
	if got := len(CoreSuite()); got != 21 {
		t.Errorf("core suite = %d workloads, want 21 (Section III-B)", got)
	}
	if got := len(AllSuite()); got != 46 {
		t.Errorf("all suite = %d workloads, want 46 (Section VI-A)", got)
	}
	if got := len(Names()); got != 36 {
		t.Errorf("rate presets = %d, want 36 (29 SPEC + 6 GAP + 1 HPC)", got)
	}
	// Every suite member resolves.
	for _, n := range AllSuite() {
		if _, err := Get(n, 4); err != nil {
			t.Errorf("suite member %q unresolvable: %v", n, err)
		}
	}
}

func TestSuiteComposition(t *testing.T) {
	counts := map[string]int{}
	for _, n := range Names() {
		counts[presets[n].suite]++
	}
	if counts["spec"] != 29 || counts["gap"] != 6 || counts["hpc"] != 1 {
		t.Errorf("composition = %v, want 29 spec / 6 gap / 1 hpc", counts)
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nosuchthing", 4); err == nil {
		t.Error("unknown workload resolved")
	}
	if _, err := Get("mix11", 4); err == nil {
		t.Error("mix11 resolved; only 10 mixes exist")
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet did not panic")
		}
	}()
	MustGet("bogus", 4)
}

func TestMixesAreMixed(t *testing.T) {
	m := Mix(1, 16)
	distinct := map[string]bool{}
	for _, s := range m.Specs {
		distinct[s.Name] = true
	}
	if len(distinct) < 4 {
		t.Errorf("mix1 has only %d distinct specs", len(distinct))
	}
	// Different mixes differ.
	m2 := Mix(2, 16)
	same := true
	for i := range m.Specs {
		if m.Specs[i].Name != m2.Specs[i].Name {
			same = false
			break
		}
	}
	if same {
		t.Error("mix1 and mix2 identical")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Name: "nompki", MPKI: 0, Components: []Component{{Weight: 1, SizeRatio: 1, StrideLines: 1}}},
		{Name: "badfrac", MPKI: 1, WriteFrac: 2, Components: []Component{{Weight: 1, SizeRatio: 1}}},
		{Name: "nocomp", MPKI: 1},
		{Name: "badweight", MPKI: 1, Components: []Component{{Weight: 0.5, SizeRatio: 1}}},
		{Name: "badratio", MPKI: 1, Components: []Component{{Weight: 1, SizeRatio: 0}}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%s passed validation", s.Name)
		}
	}
}

func TestStreamGapMatchesMPKI(t *testing.T) {
	spec := presets["soplex"].spec
	spec.Name = "soplex"
	st := NewStream(spec, testCacheLines, 16, 1)
	var ev Event
	var total float64
	const n = 200000
	for i := 0; i < n; i++ {
		st.Next(&ev)
		total += float64(ev.Gap)
	}
	gotMPKI := 1000 / (total / n)
	if math.Abs(gotMPKI-spec.MPKI)/spec.MPKI > 0.05 {
		t.Errorf("measured MPKI %.1f, want ~%.1f", gotMPKI, spec.MPKI)
	}
}

func TestStreamWriteFraction(t *testing.T) {
	spec := presets["milc"].spec
	spec.Name = "milc"
	st := NewStream(spec, testCacheLines, 16, 2)
	var ev Event
	writes := 0
	const n = 100000
	for i := 0; i < n; i++ {
		st.Next(&ev)
		if ev.Write {
			writes++
		}
		if ev.Write && ev.Dep {
			t.Fatal("write marked dependent")
		}
	}
	if frac := float64(writes) / n; math.Abs(frac-spec.WriteFrac) > 0.01 {
		t.Errorf("write fraction %.3f, want ~%.2f", frac, spec.WriteFrac)
	}
}

func TestStreamDeterminism(t *testing.T) {
	spec := presets["gcc"].spec
	spec.Name = "gcc"
	collect := func(seed int64) []Event {
		st := NewStream(spec, testCacheLines, 16, seed)
		out := make([]Event, 1000)
		for i := range out {
			st.Next(&out[i])
		}
		return out
	}
	a, b := collect(7), collect(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at event %d", i)
		}
	}
	c := collect(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestComponentsUseDisjointArenas(t *testing.T) {
	spec := presets["soplex"].spec
	spec.Name = "soplex"
	st := NewStream(spec, testCacheLines, 16, 3)
	var ev Event
	arenas := map[uint64]bool{}
	for i := 0; i < 50000; i++ {
		st.Next(&ev)
		arenas[uint64(ev.Line)>>36] = true
	}
	if len(arenas) != len(spec.Components) {
		t.Errorf("saw %d arenas, want %d", len(arenas), len(spec.Components))
	}
}

func TestSequentialComponentHasSpatialLocality(t *testing.T) {
	// A pure stride-1 spec must access each region many times in a row.
	spec := Spec{Name: "seq", MPKI: 10, Components: []Component{
		{Weight: 1, SizeRatio: 0.5, StrideLines: 1},
	}}
	st := NewStream(spec, testCacheLines, 16, 4)
	var ev Event
	var prev memtypes.RegionID
	sameRegion, total := 0, 20000
	for i := 0; i < total; i++ {
		st.Next(&ev)
		r := ev.Line.Region()
		if i > 0 && r == prev {
			sameRegion++
		}
		prev = r
	}
	if frac := float64(sameRegion) / float64(total); frac < 0.9 {
		t.Errorf("region continuity %.2f, want > 0.9 for stride-1", frac)
	}
}

func TestStridedComponentLacksSpatialLocality(t *testing.T) {
	spec := Spec{Name: "strided", MPKI: 10, Components: []Component{
		{Weight: 1, SizeRatio: 0.5, StrideLines: 513},
	}}
	st := NewStream(spec, testCacheLines, 16, 4)
	var ev Event
	var prev memtypes.RegionID
	sameRegion, total := 0, 20000
	for i := 0; i < total; i++ {
		st.Next(&ev)
		r := ev.Line.Region()
		if i > 0 && r == prev {
			sameRegion++
		}
		prev = r
	}
	if frac := float64(sameRegion) / float64(total); frac > 0.2 {
		t.Errorf("region continuity %.2f, want < 0.2 for large stride", frac)
	}
}

func TestCyclicWalkCoversFootprint(t *testing.T) {
	// A strided cyclic walk must visit every line exactly once per cycle.
	spec := Spec{Name: "cyc", MPKI: 10, Components: []Component{
		{Weight: 1, SizeRatio: float64(4*memtypes.LinesPerRegion) / testCacheLines * 16, StrideLines: 7},
	}}
	st := NewStream(spec, testCacheLines, 16, 5)
	var ev Event
	seen := map[memtypes.LineAddr]int{}
	footprint := 4 * memtypes.LinesPerRegion
	for i := 0; i < footprint; i++ {
		st.Next(&ev)
		seen[ev.Line]++
	}
	if len(seen) != footprint {
		t.Errorf("one cycle visited %d distinct lines, want %d", len(seen), footprint)
	}
	for l, n := range seen {
		if n != 1 {
			t.Errorf("line %#x visited %d times in one cycle", uint64(l), n)
		}
	}
}

func TestFixedStreamWraps(t *testing.T) {
	f := &FixedStream{Events: []Event{{Line: 1}, {Line: 2}}}
	var ev Event
	want := []memtypes.LineAddr{1, 2, 1, 2, 1}
	for i, w := range want {
		f.Next(&ev)
		if ev.Line != w {
			t.Errorf("event %d line = %d, want %d", i, ev.Line, w)
		}
	}
}

func TestNewStreamPanicsOnInvalidSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for invalid spec")
		}
	}()
	NewStream(Spec{Name: "bad"}, testCacheLines, 16, 1)
}

func TestGCD(t *testing.T) {
	cases := [][3]uint64{{12, 8, 4}, {7, 13, 1}, {0, 5, 5}, {5, 0, 5}, {9, 9, 9}}
	for _, c := range cases {
		if got := gcd(c[0], c[1]); got != c[2] {
			t.Errorf("gcd(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}
