package workloads

import "testing"

// benchWindow is the stream prefix the replay benchmark cycles over: long
// enough to stream through several chunks, bounded so memory use does not
// scale with b.N.
const benchWindow = 1 << 20

// BenchmarkStreamGenerate measures the cost of fresh event generation —
// the per-event price every simulation paid before the trace cache.
func BenchmarkStreamGenerate(b *testing.B) {
	spec := MustGet("libquantum", 4).Specs[0]
	s := NewStream(spec, 1<<16, 4, 1)
	var ev Event
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next(&ev)
	}
}

// BenchmarkStreamReplay measures the trace-cache replay fast path over a
// pre-recorded window, cycling with a fresh cursor per window so the
// recording never grows during the timed region.
func BenchmarkStreamReplay(b *testing.B) {
	spec := MustGet("libquantum", 4).Specs[0]
	tc := NewTraceCache(0)
	warm := tc.Stream(spec, 1<<16, 4, 1)
	var ev Event
	for i := 0; i < benchWindow; i++ {
		warm.Next(&ev)
	}
	cur := tc.Stream(spec, 1<<16, 4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cur.Pos() == benchWindow {
			cur = tc.Stream(spec, 1<<16, 4, 1)
		}
		cur.Next(&ev)
	}
}
