// Table IV validation: every preset must actually exhibit the
// characteristics its table entry declares. The synthetic generators
// are the repo's substitute for SPEC/GAP traces, so this is the test
// that keeps them honest: event-level properties (miss rate, write mix,
// footprint) are measured straight from the streams, and a few
// representative presets are additionally pushed through tiny
// direct-mapped simulations to pin their hit-rate class.
//
// This lives in an external test package so it can drive internal/sim
// (which itself imports workloads) without an import cycle.
package workloads_test

import (
	"math"
	"testing"

	"accord/internal/memtypes"
	"accord/internal/sim"
	"accord/internal/workloads"
)

// table4Events is the per-preset sample size for the stream-level
// checks. Large enough that exponential-gap noise is far below the
// asserted tolerances (std of the mean gap is meanGap/sqrt(N)).
const table4Events = 400_000

// anchor system for footprint accounting: a 16Ki-line cache shared by
// 16 cores, matching how rate mode splits component footprints.
const (
	table4CacheLines = 1 << 14
	table4Cores      = 16
)

// measureStream drains n events from one core's stream of the preset.
func measureStream(t *testing.T, name string, n int) (spec workloads.Spec, meanGap, writeFrac, depFrac float64, distinct uint64) {
	t.Helper()
	w := workloads.MustGet(name, table4Cores)
	spec = w.Specs[0]
	st := workloads.NewStream(spec, table4CacheLines, table4Cores, 12345)
	seen := make(map[memtypes.LineAddr]struct{}, 1<<16)
	var gapSum float64
	var writes, deps, reads int
	var ev workloads.Event
	for i := 0; i < n; i++ {
		st.Next(&ev)
		gapSum += float64(ev.Gap)
		if ev.Write {
			writes++
		} else {
			reads++
			if ev.Dep {
				deps++
			}
		}
		seen[ev.Line] = struct{}{}
	}
	return spec, gapSum / float64(n), float64(writes) / float64(n),
		float64(deps) / float64(reads), uint64(len(seen))
}

// expectedLines mirrors NewStream's documented footprint contract: each
// component's share of the cache, split across cores, floored at one
// region.
func expectedLines(spec workloads.Spec) uint64 {
	var total uint64
	for _, c := range spec.Components {
		lines := uint64(c.SizeRatio * float64(table4CacheLines) / float64(table4Cores))
		if lines < memtypes.LinesPerRegion {
			lines = memtypes.LinesPerRegion
		}
		total += lines
	}
	return total
}

// TestTableIVStreamCharacteristics checks, for every rate-mode preset,
// that the generated stream delivers its declared MPKI (via the mean
// instruction gap), write mix, dependence mix, and footprint.
func TestTableIVStreamCharacteristics(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, meanGap, writeFrac, depFrac, distinct := measureStream(t, name, table4Events)

			// Gaps are exponential with mean 1000/MPKI, truncated to an
			// int32 instruction count; truncation shaves ~0.5 off the
			// mean, which only matters for the lowest-MPKI presets.
			wantGap := 1000/spec.MPKI - 0.5
			if rel := math.Abs(meanGap-wantGap) / wantGap; rel > 0.10 {
				t.Errorf("mean gap %.1f; declared MPKI %.1f implies %.1f (%.1f%% off)",
					meanGap, spec.MPKI, wantGap, 100*rel)
			}

			if math.Abs(writeFrac-spec.WriteFrac) > 0.05 {
				t.Errorf("write fraction %.3f, declared %.3f", writeFrac, spec.WriteFrac)
			}
			if math.Abs(depFrac-spec.DepFrac) > 0.05 {
				t.Errorf("dep fraction of reads %.3f, declared %.3f", depFrac, spec.DepFrac)
			}

			// Footprint: the stream must roam essentially all of its
			// declared arena and never outside it. 400k events saturate
			// even the random components at this scale, so 85% coverage
			// is a loose floor.
			want := expectedLines(spec)
			if distinct > want {
				t.Errorf("touched %d distinct lines, above the declared footprint %d", distinct, want)
			}
			if float64(distinct) < 0.85*float64(want) {
				t.Errorf("touched %d distinct lines, under 85%% of the declared footprint %d", distinct, want)
			}
		})
	}
}

// TestTableIVHitRateClasses runs representative presets through a tiny
// direct-mapped simulation and checks each lands in its Table IV
// hit-rate class: the cache-resident workloads near the top, the
// footprint monsters near the bottom. Bands are deliberately wide
// (±8pp around seeded reference runs) so they track workload character,
// not simulator noise.
func TestTableIVHitRateClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed check; skipped in -short")
	}
	cases := []struct {
		workload string
		lo, hi   float64
	}{
		{"sphinx3", 0.90, 1.00},    // working set well inside the cache
		{"libquantum", 0.70, 0.90}, // mostly resident, some streaming
		{"soplex", 0.58, 0.78},     // mixed resident/over-capacity
		{"pr_twitter", 0.38, 0.58}, // sparse graph, huge footprint
		{"mcf", 0.35, 0.55},        // random pointer-chasing, over capacity
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.workload, func(t *testing.T) {
			t.Parallel()
			cfg := sim.DirectMapped()
			cfg.Scale = 8192
			cfg.Cores = 4
			cfg.WarmupInstr = 50_000
			cfg.MeasureInstr = 50_000
			cfg.Seed = 1
			res := sim.New(cfg, workloads.MustGet(tc.workload, cfg.Cores)).Run(tc.workload)
			if hr := res.HitRate(); hr < tc.lo || hr > tc.hi {
				t.Errorf("direct-mapped hit rate %.4f outside Table IV class [%.2f, %.2f]",
					hr, tc.lo, tc.hi)
			}
		})
	}
}
