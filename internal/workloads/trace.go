package workloads

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"accord/internal/memtypes"
)

// Trace format: one event per line,
//
//	<gap> <hex line address> <r|w> <d|->
//
// where gap is the instruction distance to the previous event, r/w marks
// demand reads versus dirty writebacks, and d marks dependent loads.
// cmd/tracegen emits this format; ReadTrace replays it.

// WriteTrace serializes n events from s to w.
func WriteTrace(w io.Writer, s Stream, n int) error {
	bw := bufio.NewWriter(w)
	var ev Event
	for i := 0; i < n; i++ {
		s.Next(&ev)
		kind := "r"
		if ev.Write {
			kind = "w"
		}
		dep := "-"
		if ev.Dep {
			dep = "d"
		}
		if _, err := fmt.Fprintf(bw, "%d %x %s %s\n", ev.Gap, uint64(ev.Line), kind, dep); err != nil {
			return fmt.Errorf("workloads: writing trace: %w", err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace into a replayable (cycling) stream.
func ReadTrace(r io.Reader) (*FixedStream, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	var events []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := sc.Text()
		if text == "" || text[0] == '#' {
			continue
		}
		var gap int32
		var addr uint64
		var kind, dep string
		if _, err := fmt.Sscanf(text, "%d %x %s %s", &gap, &addr, &kind, &dep); err != nil {
			return nil, fmt.Errorf("workloads: trace line %d: %w", lineNo, err)
		}
		if gap < 0 {
			return nil, fmt.Errorf("workloads: trace line %d: negative gap", lineNo)
		}
		if kind != "r" && kind != "w" {
			return nil, fmt.Errorf("workloads: trace line %d: kind %q", lineNo, kind)
		}
		if dep != "d" && dep != "-" {
			return nil, fmt.Errorf("workloads: trace line %d: dep %q", lineNo, dep)
		}
		events = append(events, Event{
			Gap:   gap,
			Line:  memtypes.LineAddr(addr),
			Write: kind == "w",
			Dep:   dep == "d",
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workloads: reading trace: %w", err)
	}
	if len(events) == 0 {
		return nil, errors.New("workloads: empty trace")
	}
	return &FixedStream{Events: events}, nil
}

// TraceWorkload builds a Workload replaying the given events on every
// core. Cores share the event sequence but hold independent replay
// positions (and separate address spaces, so rate-mode semantics apply).
// The spec's MPKI is derived from the trace's mean gap so the simulator's
// adaptive windows size themselves correctly.
func TraceWorkload(name string, events []Event, cores int) (Workload, error) {
	if len(events) == 0 {
		return Workload{}, fmt.Errorf("workloads: empty trace for %q", name)
	}
	var gaps float64
	for _, ev := range events {
		gaps += float64(ev.Gap)
	}
	mpki := 1000 * float64(len(events)) / (gaps + float64(len(events)))
	spec := Spec{
		Name: name,
		MPKI: mpki,
		// Components are unused by replay but must validate.
		Components: []Component{{Weight: 1, SizeRatio: 1, StrideLines: 1}},
	}
	w := Workload{Name: name, Suite: "trace"}
	for i := 0; i < cores; i++ {
		w.Specs = append(w.Specs, spec)
		w.Streams = append(w.Streams, &FixedStream{Events: events})
	}
	return w, nil
}
