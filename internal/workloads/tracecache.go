package workloads

import (
	"fmt"
	"sync"

	"accord/internal/ckpt"
	"accord/internal/memtypes"
)

// The trace cache memoizes generated event streams. A stream's event
// content is a pure function of (spec, cacheLines, cores, seed) — it is
// independent of simulated timing — so when a sweep runs the same
// workload through many configurations, the stride-walk + RNG +
// dependence-sampling cost of generation only needs to be paid once. The
// first consumer of a stream records it into flat struct-of-arrays
// chunks; every later consumer (and every later position of the same
// consumer) replays the recording through a Cursor whose Next is a
// pointer-bump load.
//
// Recording is lazy: runs stop on instruction targets, not event counts,
// so nobody knows a stream's length up front. A cursor that runs off the
// recorded end extends the shared buffer under the trace mutex by
// resuming the underlying generator, which lives exactly at the recorded
// frontier. Concurrent cursors therefore share one recording instead of
// racing to duplicate it: the first to need more events generates them,
// the rest replay.
//
// Concurrency model: all chunk-list and frontier state is guarded by
// trace.mu, which cursors take only on the refill slow path (once per
// cached run of events). The chunk arrays themselves are written once,
// before the frontier that publishes them advances, and the publishing
// and the reader's slice both happen under the same mutex — so the
// lock-free fast path only ever reads events whose writes it already
// synchronized with.

const (
	// chunkEvents is the fixed chunk capacity. It must be a power of two:
	// chunk lookup is a divide by constant, and the generator-state
	// snapshot stored at each chunk boundary keys off pos/chunkEvents.
	chunkEvents = 1 << 14

	// extendBatch bounds how far past a cursor's need one extension
	// generates: large enough to amortize the lock, small enough that a
	// short run does not over-record the stream.
	extendBatch = 1 << 10

	// DefaultTraceCacheBytes is the byte budget used when none is given:
	// roomy enough for a full-suite sweep at experiment scales, small
	// enough that a giant session cannot grow without bound.
	DefaultTraceCacheBytes = 1 << 30
)

// traceChunk is one fixed-capacity segment of a recorded stream, stored
// struct-of-arrays so replay streams through memory linearly.
type traceChunk struct {
	gaps  []int32
	lines []memtypes.LineAddr
	flags []uint8 // bit 0 = Write, bit 1 = Dep
	// state is the generator's snapshot taken exactly at this chunk's
	// first event, before any of its events were generated. Cursor
	// snapshots at arbitrary positions restore this state into a scratch
	// generator and roll it forward at most chunkEvents steps.
	state []byte
}

// chunkBytes approximates a chunk's memory footprint for the budget.
func chunkBytes(c *traceChunk) int64 {
	return int64(len(c.gaps))*4 + int64(len(c.lines))*8 + int64(len(c.flags)) + int64(len(c.state))
}

// trace is one shared recording: the chunks recorded so far plus the
// generator parked at the recording frontier.
type trace struct {
	// Construction parameters, needed to rebuild scratch generators for
	// cursor snapshots. Immutable after creation.
	spec       Spec
	cacheLines uint64
	cores      int
	seed       int64

	cache *TraceCache // for byte accounting; nil in standalone tests
	key   string

	mu     sync.Mutex
	chunks []*traceChunk
	total  int64      // events recorded; chunks[total/chunkEvents] holds the frontier
	gen    *generator // positioned exactly at event total
}

// newTrace parks a fresh generator at event zero; nothing is recorded
// until a cursor asks.
func newTrace(spec Spec, cacheLines uint64, cores int, seed int64) *trace {
	return &trace{
		spec:       spec,
		cacheLines: cacheLines,
		cores:      cores,
		seed:       seed,
		gen:        newGenerator(spec, cacheLines, cores, seed),
	}
}

// extendLocked records events until total > pos, in batches. Must be
// called with t.mu held.
func (t *trace) extendLocked(pos int64) {
	var ev Event
	for t.total <= pos {
		k := int(t.total / chunkEvents)
		if k == len(t.chunks) {
			c := &traceChunk{
				gaps:  make([]int32, chunkEvents),
				lines: make([]memtypes.LineAddr, chunkEvents),
				flags: make([]uint8, chunkEvents),
			}
			e := ckpt.NewEncoder(8 << 10)
			t.gen.Snapshot(e)
			c.state = e.Finish()
			t.chunks = append(t.chunks, c)
			if t.cache != nil {
				t.cache.noteGrow(t.key, chunkBytes(c))
			}
		}
		c := t.chunks[k]
		off := int(t.total - int64(k)*chunkEvents)
		n := min(chunkEvents-off, extendBatch)
		for i := 0; i < n; i++ {
			t.gen.Next(&ev)
			c.gaps[off+i] = ev.Gap
			c.lines[off+i] = ev.Line
			var f uint8
			if ev.Write {
				f |= 1
			}
			if ev.Dep {
				f |= 2
			}
			c.flags[off+i] = f
		}
		t.total += int64(n)
	}
}

// snapshotAt encodes the generator state after pos events — the exact
// bytes a live generator that produced pos events would emit. The frontier
// generator serves the common case (snapshot at the recorded end); other
// positions restore the nearest chunk-boundary state into a scratch
// generator and roll it forward, at most chunkEvents steps.
func (t *trace) snapshotAt(e *ckpt.Encoder, pos int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if pos > t.total {
		t.extendLocked(pos - 1) // leaves total >= pos
	}
	if pos == t.total {
		t.gen.Snapshot(e)
		return
	}
	k := int(pos / chunkEvents)
	tmp := newGenerator(t.spec, t.cacheLines, t.cores, t.seed)
	if err := tmp.Restore(ckpt.NewDecoder(t.chunks[k].state)); err != nil {
		// The boundary states are written by this process from a healthy
		// generator; failing to decode one is a programming error.
		panic(fmt.Sprintf("workloads: corrupt chunk-boundary state: %v", err))
	}
	var ev Event
	for i := int64(k) * chunkEvents; i < pos; i++ {
		tmp.Next(&ev)
	}
	tmp.Snapshot(e)
}

// Cursor is a read-only replay position over a shared trace. The fast
// path serves events from a cached window of the current chunk; crossing
// a window boundary refills under the trace mutex, extending the
// recording when the cursor is the first to reach a position. A Cursor is
// not safe for concurrent use, but any number of cursors may replay the
// same trace from different goroutines.
type Cursor struct {
	// Cached replay window; idx indexes all three slices in lockstep.
	idx   int
	gaps  []int32
	lines []memtypes.LineAddr
	flags []uint8

	pos int64 // global event position
	t   *trace
}

// Next implements Stream. The common case is a bounds check and three
// array loads; it performs no allocation and takes no lock.
func (c *Cursor) Next(ev *Event) {
	i := c.idx
	if i >= len(c.gaps) {
		c.refill()
		i = 0
	}
	ev.Gap = c.gaps[i]
	ev.Line = c.lines[i]
	f := c.flags[i]
	ev.Write = f&1 != 0
	ev.Dep = f&2 != 0
	c.idx = i + 1
	c.pos++
}

// refill re-points the cached window at the chunk containing pos,
// recording more of the stream first when pos is at or past the frontier.
//
//go:noinline
func (c *Cursor) refill() {
	t := c.t
	t.mu.Lock()
	if t.total <= c.pos {
		t.extendLocked(c.pos)
	}
	k := int(c.pos / chunkEvents)
	ch := t.chunks[k]
	off := int(c.pos - int64(k)*chunkEvents)
	fill := int(min(t.total-int64(k)*chunkEvents, chunkEvents))
	c.gaps = ch.gaps[off:fill]
	c.lines = ch.lines[off:fill]
	c.flags = ch.flags[off:fill]
	c.idx = 0
	t.mu.Unlock()
}

// Pos returns the number of events the cursor has replayed.
func (c *Cursor) Pos() int64 { return c.pos }

// Flag bits of the struct-of-arrays event encoding, exposed for batch
// consumers of Window (the per-event Next unpacks them into Event bools).
const (
	FlagWrite uint8 = 1 << 0
	FlagDep   uint8 = 1 << 1
)

// Window exposes the cursor's cached replay window without consuming it,
// refilling (and extending the shared recording) when the window is
// empty. The three subslices index in lockstep starting at the cursor's
// current position and are never empty; Consume advances past events the
// caller has processed. The slices alias the shared chunk storage —
// callers must treat them as read-only — and stay valid until the next
// Next, Consume, or Restore call. Together with Consume this is the
// batch-granular replay path: a consumer can process a whole window with
// no per-event interface dispatch and commit it in one step.
func (c *Cursor) Window() (gaps []int32, lines []memtypes.LineAddr, flags []uint8) {
	if c.idx >= len(c.gaps) {
		c.refill()
	}
	i := c.idx
	return c.gaps[i:], c.lines[i:], c.flags[i:]
}

// Consume advances the cursor past the first n events of the last Window.
// n must not exceed that window's length; the cursor does not check.
func (c *Cursor) Consume(n int) {
	c.idx += n
	c.pos += int64(n)
}

// Snapshot implements Checkpointer. The encoding is byte-identical to the
// underlying generator's snapshot at the same position, so warm-state
// checkpoints written by replay-backed runs restore into generator-backed
// runs and vice versa.
func (c *Cursor) Snapshot(e *ckpt.Encoder) {
	c.t.snapshotAt(e, c.pos)
}

// Restore implements Checkpointer. It accepts a generator-format snapshot
// and adopts its event count as the replay position; the RNG and
// component state it carries are redundant with the recording (the trace
// regenerates them on demand for later snapshots) and only validated.
func (c *Cursor) Restore(d *ckpt.Decoder) error {
	tmp := newGenerator(c.t.spec, c.t.cacheLines, c.t.cores, c.t.seed)
	if err := tmp.Restore(d); err != nil {
		return err
	}
	c.pos = tmp.count
	c.idx = 0
	c.gaps, c.lines, c.flags = nil, nil, nil
	return nil
}

// cacheEntry pairs a trace with its accounting state.
type cacheEntry struct {
	tr      *trace
	bytes   int64
	lastUse uint64
}

// TraceCache shares recorded streams across every simulation that asks
// for the same (spec, cacheLines, cores, seed) stream. It is safe for
// concurrent use; a typical deployment is one cache per exp.Session,
// shared by the whole worker pool.
//
// The cache holds at most budget bytes of recordings. When an extension
// pushes it over, least-recently-used traces are dropped; cursors already
// replaying a dropped trace keep working (the trace keeps its own
// generator and can still extend), the cache just stops accounting for it
// and a future request for the same stream re-records. Eviction therefore
// bounds steady-state footprint, not the instantaneous peak while old
// cursors drain.
type TraceCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	clock   uint64
	hits    uint64
	misses  uint64
	evicted uint64
	entries map[string]*cacheEntry
}

// NewTraceCache builds a cache with the given byte budget;
// non-positive budgets select DefaultTraceCacheBytes.
func NewTraceCache(budgetBytes int64) *TraceCache {
	if budgetBytes <= 0 {
		budgetBytes = DefaultTraceCacheBytes
	}
	return &TraceCache{budget: budgetBytes, entries: make(map[string]*cacheEntry)}
}

// traceKey identifies a stream by everything its events depend on.
func traceKey(spec Spec, cacheLines uint64, cores int, seed int64) string {
	return fmt.Sprintf("%s|%g|%g|%g|%v|%d|%d|%d",
		spec.Name, spec.MPKI, spec.WriteFrac, spec.DepFrac, spec.Components,
		cacheLines, cores, seed)
}

// Stream returns a fresh replay cursor (at event zero) over the shared
// recording for the given stream identity, creating the recording on
// first use. The returned cursor produces the exact event sequence
// NewStream(spec, cacheLines, cores, seed) would.
func (tc *TraceCache) Stream(spec Spec, cacheLines uint64, cores int, seed int64) *Cursor {
	key := traceKey(spec, cacheLines, cores, seed)
	tc.mu.Lock()
	ent, ok := tc.entries[key]
	if !ok {
		ent = &cacheEntry{tr: newTrace(spec, cacheLines, cores, seed)}
		ent.tr.cache = tc
		ent.tr.key = key
		tc.entries[key] = ent
		tc.misses++
	} else {
		tc.hits++
	}
	tc.clock++
	ent.lastUse = tc.clock
	tr := ent.tr
	tc.mu.Unlock()
	return &Cursor{t: tr}
}

// Source adapts the cache to Workload.Source for one workload: per-core
// cursors over specs, with the same per-core seed derivation sim.New
// applies to generator-backed streams.
func (tc *TraceCache) Source(specs []Spec, cacheLines uint64, seed int64) func(core int) Stream {
	cores := len(specs)
	own := make([]Spec, cores)
	copy(own, specs)
	return func(core int) Stream {
		return tc.Stream(own[core], cacheLines, cores, StreamSeed(seed, core))
	}
}

// noteGrow charges a chunk's bytes to its trace and evicts cold traces if
// the budget is exceeded. Called from extendLocked with the trace mutex
// held; the lock order is always trace.mu -> tc.mu, never the reverse.
func (tc *TraceCache) noteGrow(key string, delta int64) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	ent, ok := tc.entries[key]
	if !ok {
		// Already evicted while still growing; it pays its own way now.
		return
	}
	ent.bytes += delta
	tc.used += delta
	tc.clock++
	ent.lastUse = tc.clock
	for tc.used > tc.budget && len(tc.entries) > 1 {
		var victim string
		var oldest uint64 = ^uint64(0)
		for k, e := range tc.entries {
			if k != key && e.lastUse < oldest {
				victim, oldest = k, e.lastUse
			}
		}
		if victim == "" {
			return
		}
		tc.used -= tc.entries[victim].bytes
		delete(tc.entries, victim)
		tc.evicted++
	}
}

// Stats reports the cache's lifetime counters: resident traces and bytes,
// stream requests served from an existing recording (hits) versus ones
// that created a recording (misses), and evicted recordings.
func (tc *TraceCache) Stats() (traces int, bytes int64, hits, misses, evicted uint64) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return len(tc.entries), tc.used, tc.hits, tc.misses, tc.evicted
}
