package workloads

import (
	"testing"

	"accord/internal/ckpt"
	"accord/internal/memtypes"
)

func testSpec() Spec {
	return Spec{
		Name:      "ckpt-test",
		MPKI:      20,
		WriteFrac: 0.3,
		DepFrac:   0.4,
		Components: []Component{
			{Weight: 0.6, SizeRatio: 0.5, StrideLines: 1},
			{Weight: 0.4, SizeRatio: 2.0, StrideLines: 0},
		},
	}
}

func drawEvents(s Stream, n int) []Event {
	out := make([]Event, n)
	for i := range out {
		s.Next(&out[i])
	}
	return out
}

// TestGeneratorRoundTrip checks that a restored generator continues the
// exact event stream of the original, with a fresh instance built from a
// different seed.
func TestGeneratorRoundTrip(t *testing.T) {
	g := NewStream(testSpec(), 1<<16, 4, 3)
	drawEvents(g, 5000)

	e := ckpt.NewEncoder(0)
	g.(Checkpointer).Snapshot(e)
	blob := e.Finish()
	want := drawEvents(g, 500)

	fresh := NewStream(testSpec(), 1<<16, 4, 77)
	d, err := ckpt.NewDecoderChecked(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.(Checkpointer).Restore(d); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	got := drawEvents(fresh, 500)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("event %d diverged: %+v != %+v", i, want[i], got[i])
		}
	}
}

// TestGeneratorRestoreRejectsBadInput covers version bumps, truncations,
// and a component-count mismatch.
func TestGeneratorRestoreRejectsBadInput(t *testing.T) {
	g := NewStream(testSpec(), 1<<16, 4, 3)
	e := ckpt.NewEncoder(0)
	g.(Checkpointer).Snapshot(e)
	blob := e.Finish()
	payload := blob[:len(blob)-4]

	fresh := func() Checkpointer {
		return NewStream(testSpec(), 1<<16, 4, 3).(Checkpointer)
	}
	bad := append([]byte{payload[0] + 1}, payload[1:]...)
	if err := fresh().Restore(ckpt.NewDecoder(bad)); err == nil {
		t.Error("version-bumped snapshot accepted")
	}
	for n := 0; n < len(payload); n += 1 + n/8 {
		if err := fresh().Restore(ckpt.NewDecoder(payload[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}

	// A snapshot from a spec with a different component count must not
	// restore into this generator.
	one := testSpec()
	one.Components = one.Components[:1]
	one.Components[0].Weight = 1.0
	e2 := ckpt.NewEncoder(0)
	NewStream(one, 1<<16, 4, 3).(Checkpointer).Snapshot(e2)
	b2 := e2.Finish()
	if err := fresh().Restore(ckpt.NewDecoder(b2[:len(b2)-4])); err == nil {
		t.Error("component-count mismatch accepted")
	}
}

// TestFixedStreamRoundTrip checks cursor save/restore, including a cursor
// past one full cycle (pos grows without bound; Next reduces modulo).
func TestFixedStreamRoundTrip(t *testing.T) {
	events := []Event{
		{Gap: 1, Line: memtypes.LineAddr(10)},
		{Gap: 2, Line: memtypes.LineAddr(20), Write: true},
		{Gap: 3, Line: memtypes.LineAddr(30), Dep: true},
	}
	f := &FixedStream{Events: events}
	drawEvents(f, 7) // wraps past the slice twice

	e := ckpt.NewEncoder(0)
	f.Snapshot(e)
	blob := e.Finish()
	want := drawEvents(f, 5)

	fresh := &FixedStream{Events: events}
	d, err := ckpt.NewDecoderChecked(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(d); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	got := drawEvents(fresh, 5)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("event %d diverged after cursor restore", i)
		}
	}
}

// TestFixedStreamRejectsNegativePos guards the only invalid cursor state.
func TestFixedStreamRejectsNegativePos(t *testing.T) {
	e := ckpt.NewEncoder(0)
	e.U8(fixedVersion)
	e.I64(-1)
	blob := e.Finish()
	f := &FixedStream{Events: []Event{{}}}
	if err := f.Restore(ckpt.NewDecoder(blob[:len(blob)-4])); err == nil {
		t.Error("negative cursor accepted")
	}
}
