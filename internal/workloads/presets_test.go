package workloads

import (
	"testing"

	"accord/internal/memtypes"
)

// rltHitFraction measures the fraction of events whose 4 KB region is
// among the most recent 64 distinct regions accessed — a direct proxy for
// the Recent Lookup Table hit rate that ganged way-steering depends on.
func rltHitFraction(t *testing.T, name string) float64 {
	t.Helper()
	spec := presets[name].spec
	spec.Name = name
	st := NewStream(spec, testCacheLines, 16, 11)
	var ev Event
	recent := map[memtypes.RegionID]int{}
	var order []memtypes.RegionID
	hits, total := 0, 30000
	for i := 0; i < total; i++ {
		st.Next(&ev)
		r := ev.Line.Region()
		if _, ok := recent[r]; ok {
			hits++
		} else {
			order = append(order, r)
			recent[r] = i
			if len(order) > 64 {
				delete(recent, order[0])
				order = order[1:]
			}
		}
	}
	return float64(hits) / float64(total)
}

func TestSpatialWorkloadsHaveRegionLocality(t *testing.T) {
	// The paper's Figure 7 relies on these being gang-friendly: their
	// regions recur within GWS's 64-entry table reach.
	for _, name := range []string{"libquantum", "nekbone", "sphinx3", "leslie3d", "lbm"} {
		if c := rltHitFraction(t, name); c < 0.85 {
			t.Errorf("%s RLT-hit proxy = %.2f, want > 0.85", name, c)
		}
	}
}

func TestSparseWorkloadsLackRegionLocality(t *testing.T) {
	// ...and these being gang-hostile (GWS falls back to PWS).
	for _, name := range []string{"mcf", "pr_twitter", "cc_twitter"} {
		if c := rltHitFraction(t, name); c > 0.6 {
			t.Errorf("%s RLT-hit proxy = %.2f, want < 0.6", name, c)
		}
	}
}

func TestMPKIOrderingMatchesTable4(t *testing.T) {
	// Relative MPKI ordering from the paper's Table IV.
	greater := [][2]string{
		{"mcf", "soplex"},
		{"soplex", "gcc"},
		{"libquantum", "zeusmp"},
		{"omnetpp", "xalancbmk"},
		{"milc", "sphinx3"},
	}
	for _, pair := range greater {
		a := presets[pair[0]].spec.MPKI
		b := presets[pair[1]].spec.MPKI
		if a <= b {
			t.Errorf("MPKI(%s)=%v not above MPKI(%s)=%v", pair[0], a, pair[1], b)
		}
	}
}

func TestFootprintClasses(t *testing.T) {
	// Workloads the paper lists with >2x-cache footprints must have a
	// component far beyond capacity; cache-resident ones must not.
	big := []string{"mcf", "milc", "pr_twitter"}
	for _, name := range big {
		max := 0.0
		for _, c := range presets[name].spec.Components {
			if c.SizeRatio > max {
				max = c.SizeRatio
			}
		}
		if max < 1.5 {
			t.Errorf("%s largest component ratio = %.1f, want > 1.5 (huge footprint)", name, max)
		}
	}
	small := []string{"sphinx3", "nekbone"}
	for _, name := range small {
		for _, c := range presets[name].spec.Components {
			if c.SizeRatio > 0.5 {
				t.Errorf("%s has component ratio %.2f; should be cache-resident", name, c.SizeRatio)
			}
		}
	}
}

func TestGraphWorkloadsAreDependenceHeavy(t *testing.T) {
	for _, name := range []string{"mcf", "pr_twitter", "bc_twitter", "astar"} {
		if d := presets[name].spec.DepFrac; d < 0.6 {
			t.Errorf("%s dependence fraction = %.2f, want >= 0.6 (pointer chasing)", name, d)
		}
	}
	for _, name := range []string{"libquantum", "milc", "lbm"} {
		if d := presets[name].spec.DepFrac; d > 0.3 {
			t.Errorf("%s dependence fraction = %.2f, want <= 0.3 (streaming)", name, d)
		}
	}
}

func TestCoreSuiteMembersAreRateOrMix(t *testing.T) {
	for _, name := range CoreSuite() {
		w := MustGet(name, 4)
		if w.Suite == "" {
			t.Errorf("%s has no suite", name)
		}
		if w.Streams != nil {
			t.Errorf("%s unexpectedly carries prebuilt streams", name)
		}
	}
}

func TestMixesDeterministic(t *testing.T) {
	a := Mix(3, 16)
	b := Mix(3, 16)
	for i := range a.Specs {
		if a.Specs[i].Name != b.Specs[i].Name {
			t.Fatal("mix construction not deterministic")
		}
	}
}
