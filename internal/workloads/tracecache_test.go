package workloads

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"accord/internal/ckpt"
)

// diffSpecs returns every stream identity the differential tests cover:
// all rate-mode presets plus a sample of mixes (mixes reuse preset specs,
// but per-core seeds and footprint splits differ).
func diffSpecs(t *testing.T) []Spec {
	t.Helper()
	var out []Spec
	for _, name := range Names() {
		wl := MustGet(name, 4)
		out = append(out, wl.Specs[0])
	}
	for _, name := range []string{"mix1", "mix4", "mix7"} {
		wl := MustGet(name, 4)
		out = append(out, wl.Specs...)
	}
	return out
}

// TestCursorMatchesGenerator is the core differential property: for every
// preset (and a sample of mixes), a replay cursor and a fresh generator
// produce identical event sequences, across multiple chunk boundaries and
// from a second cursor replaying the now-warm recording.
func TestCursorMatchesGenerator(t *testing.T) {
	const n = 2*chunkEvents + 777 // cross two chunk boundaries
	tc := NewTraceCache(0)
	for i, spec := range diffSpecs(t) {
		spec := spec
		t.Run(fmt.Sprintf("%02d-%s", i, spec.Name), func(t *testing.T) {
			seed := int64(i + 1)
			gen := NewStream(spec, 1<<16, 4, seed)
			rec := tc.Stream(spec, 1<<16, 4, seed)  // records
			play := tc.Stream(spec, 1<<16, 4, seed) // replays behind it
			var want, g1, g2 Event
			for j := 0; j < n; j++ {
				gen.Next(&want)
				rec.Next(&g1)
				if want != g1 {
					t.Fatalf("event %d: recording cursor %+v != generator %+v", j, g1, want)
				}
				play.Next(&g2)
				if want != g2 {
					t.Fatalf("event %d: replay cursor %+v != generator %+v", j, g2, want)
				}
			}
		})
	}
}

// TestCursorWindowMatchesNext pins the batch replay path: consuming a
// cursor through Window/Consume — in chunks of every awkward size, while
// a recording is still growing and on full replay — yields exactly the
// event sequence Next does, with flags encoding Write/Dep per the
// exported bits.
func TestCursorWindowMatchesNext(t *testing.T) {
	const n = chunkEvents + 999 // cross a chunk boundary
	tc := NewTraceCache(0)
	spec := MustGet("milc", 1).Specs[0]
	for round, label := range []string{"recording", "replaying"} {
		batch := tc.Stream(spec, 1<<16, 1, 7)
		ref := NewStream(spec, 1<<16, 1, 7)
		var want Event
		consumed, take := 0, 1
		for consumed < n {
			gaps, lines, flags := batch.Window()
			if len(gaps) == 0 || len(gaps) != len(lines) || len(gaps) != len(flags) {
				t.Fatalf("%s: malformed window: %d/%d/%d", label, len(gaps), len(lines), len(flags))
			}
			k := min(take, len(gaps))
			for i := 0; i < k; i++ {
				ref.Next(&want)
				if gaps[i] != want.Gap || lines[i] != want.Line {
					t.Fatalf("%s: event %d: window (gap %d, line %#x) != generator (gap %d, line %#x)",
						label, consumed+i, gaps[i], uint64(lines[i]), want.Gap, uint64(want.Line))
				}
				if got := flags[i]&FlagWrite != 0; got != want.Write {
					t.Fatalf("%s: event %d: write flag %v != %v", label, consumed+i, got, want.Write)
				}
				if got := flags[i]&FlagDep != 0; got != want.Dep {
					t.Fatalf("%s: event %d: dep flag %v != %v", label, consumed+i, got, want.Dep)
				}
			}
			batch.Consume(k)
			consumed += k
			take = take*3 + 1
			if take > 5000 {
				take = 1
			}
		}
		if batch.Pos() != int64(consumed) {
			t.Fatalf("%s: Pos() = %d after consuming %d", label, batch.Pos(), consumed)
		}
		// Window must not consume: interleaving Next afterwards continues
		// exactly where Consume left off.
		var got Event
		ref.Next(&want)
		batch.Next(&got)
		if want != got {
			t.Fatalf("%s: Next after Window/Consume diverged: %+v != %+v", label, got, want)
		}
		_ = round
	}
}

// TestCursorSnapshotMatchesGenerator locks the checkpoint-interchange
// contract: at any position — mid-chunk, at a chunk boundary, at the
// recording frontier, and beyond it — a cursor snapshot is byte-for-byte
// the snapshot a generator that consumed the same number of events would
// write.
func TestCursorSnapshotMatchesGenerator(t *testing.T) {
	spec := MustGet("mcf", 4).Specs[0]
	positions := []int64{0, 1, 100, chunkEvents - 1, chunkEvents, chunkEvents + 1, 2*chunkEvents + 37}
	for _, pos := range positions {
		tc := NewTraceCache(0)
		gen := NewStream(spec, 1<<16, 4, 9)
		cur := tc.Stream(spec, 1<<16, 4, 9)
		var ev Event
		for i := int64(0); i < pos; i++ {
			gen.Next(&ev)
		}
		for i := int64(0); i < pos; i++ {
			cur.Next(&ev)
		}
		eg, ec := ckpt.NewEncoder(0), ckpt.NewEncoder(0)
		gen.(Checkpointer).Snapshot(eg)
		cur.Snapshot(ec)
		if !bytes.Equal(eg.Finish(), ec.Finish()) {
			t.Fatalf("pos %d: cursor snapshot differs from generator snapshot", pos)
		}
	}
}

// TestCursorSnapshotBeyondFrontier snapshots a cursor whose restored
// position is past everything recorded so far: the trace must extend
// itself and still emit generator-identical bytes.
func TestCursorSnapshotBeyondFrontier(t *testing.T) {
	spec := MustGet("soplex", 4).Specs[0]
	const pos = chunkEvents + 123

	gen := NewStream(spec, 1<<16, 4, 5)
	var ev Event
	for i := 0; i < pos; i++ {
		gen.Next(&ev)
	}
	eg := ckpt.NewEncoder(0)
	gen.(Checkpointer).Snapshot(eg)
	want := eg.Finish()

	// A fresh cache: nothing recorded. Restore a cursor straight to pos.
	tc := NewTraceCache(0)
	cur := tc.Stream(spec, 1<<16, 4, 5)
	if err := cur.Restore(ckpt.NewDecoder(want)); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if cur.Pos() != pos {
		t.Fatalf("restored position %d, want %d", cur.Pos(), pos)
	}
	ec := ckpt.NewEncoder(0)
	cur.Snapshot(ec)
	if !bytes.Equal(want, ec.Finish()) {
		t.Fatal("snapshot beyond the recorded frontier differs from generator snapshot")
	}
	// And replay from there must continue the generator's stream.
	var a, b Event
	for i := 0; i < 1000; i++ {
		gen.Next(&a)
		cur.Next(&b)
		if a != b {
			t.Fatalf("event %d after restore diverged: %+v != %+v", i, b, a)
		}
	}
}

// TestCursorRoundTripMidStream checks snapshot/restore mid-stream: a
// cursor restored from another cursor's snapshot continues the exact
// sequence, as does a generator restored from the same bytes.
func TestCursorRoundTripMidStream(t *testing.T) {
	spec := MustGet("omnetpp", 4).Specs[0]
	tc := NewTraceCache(0)
	cur := tc.Stream(spec, 1<<16, 4, 3)
	var ev Event
	for i := 0; i < chunkEvents+555; i++ {
		cur.Next(&ev)
	}
	e := ckpt.NewEncoder(0)
	cur.Snapshot(e)
	blob := e.Finish()

	want := drawEvents(cur, 2000)

	// Restore into a fresh cursor on the same cache.
	cur2 := tc.Stream(spec, 1<<16, 4, 3)
	d, err := ckpt.NewDecoderChecked(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := cur2.Restore(d); err != nil {
		t.Fatalf("cursor Restore: %v", err)
	}
	got := drawEvents(cur2, 2000)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("event %d diverged after cursor->cursor restore", i)
		}
	}

	// Restore the same bytes into a bare generator.
	gen := NewStream(spec, 1<<16, 4, 77)
	d2, err := ckpt.NewDecoderChecked(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.(Checkpointer).Restore(d2); err != nil {
		t.Fatalf("generator Restore of cursor snapshot: %v", err)
	}
	got = drawEvents(gen, 2000)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("event %d diverged after cursor->generator restore", i)
		}
	}
}

// TestCursorRestoreRejectsBadInput mirrors the generator's adversarial
// decoding guarantees for cursors.
func TestCursorRestoreRejectsBadInput(t *testing.T) {
	spec := MustGet("gcc", 4).Specs[0]
	tc := NewTraceCache(0)
	cur := tc.Stream(spec, 1<<16, 4, 3)
	drawEvents(cur, 100)
	e := ckpt.NewEncoder(0)
	cur.Snapshot(e)
	payload := e.Finish()
	payload = payload[:len(payload)-4]

	fresh := func() *Cursor { return tc.Stream(spec, 1<<16, 4, 3) }
	bad := append([]byte{payload[0] + 1}, payload[1:]...)
	if err := fresh().Restore(ckpt.NewDecoder(bad)); err == nil {
		t.Error("version-bumped snapshot accepted")
	}
	for n := 0; n < len(payload); n += 1 + n/8 {
		if err := fresh().Restore(ckpt.NewDecoder(payload[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

// TestConcurrentLazyExtension races many cursors over one shared trace
// from different goroutines, each replaying a different distance, and
// checks every observed prefix against a reference generator. Run under
// -race this exercises the extension protocol's synchronization.
func TestConcurrentLazyExtension(t *testing.T) {
	spec := MustGet("libquantum", 4).Specs[0]
	const maxN = 3*chunkEvents + 311

	ref := drawEvents(NewStream(spec, 1<<16, 4, 11), maxN)

	tc := NewTraceCache(0)
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		n := maxN - g*chunkEvents/2 // staggered distances
		cur := tc.Stream(spec, 1<<16, 4, 11)
		wg.Add(1)
		go func(g, n int, cur *Cursor) {
			defer wg.Done()
			var ev Event
			for i := 0; i < n; i++ {
				cur.Next(&ev)
				if ev != ref[i] {
					errs <- fmt.Errorf("goroutine %d event %d: %+v != %+v", g, i, ev, ref[i])
					return
				}
			}
		}(g, n, cur)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	traces, bytes, hits, misses, _ := tc.Stats()
	if traces != 1 || misses != 1 || hits != goroutines-1 {
		t.Errorf("stats: traces=%d bytes=%d hits=%d misses=%d, want one shared recording", traces, bytes, hits, misses)
	}
}

// TestTraceCacheEviction forces the byte budget and checks that cold
// recordings are dropped, that in-flight cursors on an evicted trace keep
// replaying correctly, and that resident bytes stay bounded.
func TestTraceCacheEviction(t *testing.T) {
	specs := diffSpecs(t)[:6]
	// One chunk costs ~220 KiB; budget for roughly two recordings.
	tc := NewTraceCache(500 << 10)

	first := tc.Stream(specs[0], 1<<16, 4, 1)
	drawEvents(first, 100)

	for _, spec := range specs[1:] {
		cur := tc.Stream(spec, 1<<16, 4, 1)
		drawEvents(cur, chunkEvents+1) // two chunks each
	}
	traces, used, _, misses, evicted := tc.Stats()
	if evicted == 0 {
		t.Fatal("no evictions despite exceeding the budget")
	}
	if used > 800<<10 {
		t.Fatalf("resident bytes %d far exceed budget", used)
	}
	if traces >= int(misses) {
		t.Fatalf("traces=%d, misses=%d: eviction did not shrink the map", traces, misses)
	}

	// The first trace was evicted (coldest); its cursor must still match
	// the reference stream via its orphaned recording.
	ref := NewStream(specs[0], 1<<16, 4, 1)
	var a, b Event
	for i := 0; i < 100; i++ {
		ref.Next(&a)
	}
	for i := 0; i < 2000; i++ {
		ref.Next(&a)
		first.Next(&b)
		if a != b {
			t.Fatalf("event %d on evicted trace diverged", i)
		}
	}

	// Re-requesting the evicted stream re-records from scratch.
	again := tc.Stream(specs[0], 1<<16, 4, 1)
	fresh := NewStream(specs[0], 1<<16, 4, 1)
	for i := 0; i < 500; i++ {
		fresh.Next(&a)
		again.Next(&b)
		if a != b {
			t.Fatalf("event %d on re-recorded trace diverged", i)
		}
	}
}

// TestReplayZeroAllocs enforces the replay fast path's allocation
// contract over a pre-recorded region, including refills within it.
func TestReplayZeroAllocs(t *testing.T) {
	spec := MustGet("soplex", 4).Specs[0]
	tc := NewTraceCache(0)
	warm := tc.Stream(spec, 1<<16, 4, 1)
	const recorded = 2 * chunkEvents
	drawEvents(warm, recorded)

	cur := tc.Stream(spec, 1<<16, 4, 1)
	var ev Event
	const perRun = recorded / 4
	runs := 0
	allocs := testing.AllocsPerRun(2, func() {
		if runs++; runs*perRun > recorded {
			t.Fatal("test bug: replay ran past the recorded region")
		}
		for i := 0; i < perRun; i++ {
			cur.Next(&ev)
		}
	})
	if allocs != 0 {
		t.Fatalf("replay fast path allocated %.1f times per %d events, want 0", allocs, perRun)
	}
}

// TestSourceMatchesSimSeeds checks that TraceCache.Source derives the
// same per-core seeds sim.New does, via StreamSeed.
func TestSourceMatchesSimSeeds(t *testing.T) {
	wl := MustGet("mix2", 4)
	tc := NewTraceCache(0)
	src := tc.Source(wl.Specs, 1<<16, 7)
	for core := 0; core < 4; core++ {
		want := drawEvents(NewStream(wl.Specs[core], 1<<16, 4, StreamSeed(7, core)), 1500)
		got := drawEvents(src(core), 1500)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("core %d event %d diverged", core, i)
			}
		}
	}
}
