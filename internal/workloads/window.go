package workloads

import (
	"accord/internal/ckpt"
	"accord/internal/memtypes"
	"accord/internal/xrand"
)

// genWindowEvents is the windowed generator's buffer depth. Big enough
// that the batch consumers (cpu.StepRun, cpu.StepFunctionalBatch)
// amortize their per-window setup over a long run of events, small
// enough that snapshot reconciliation replays a trivial number of
// events (3.3 KB of buffer per core).
const genWindowEvents = 256

// windowedGenerator wraps a generator with an event buffer so generated
// streams expose the same batch window the trace-cache Cursor does
// (Window/Consume over parallel gap/line/flag slices). Generation cost
// is unchanged — fill runs the generator's own Next — but consumers
// lose the per-event interface dispatch, and the cpu batch loops get a
// run of events to scan instead of singletons.
//
// Buffering makes the wrapped generator run ahead of what the consumer
// has seen, which would break checkpointing: a snapshot must encode the
// stream state at the CONSUMED position, not the generated one. fill
// therefore saves the generator's complete logical state (RNG value,
// component cursors, event count — Rand is a value type, so a struct
// copy is a deep copy) before generating each buffer, and Snapshot
// replays that saved state forward by the consumed prefix into a
// scratch generator. The replayed scratch is byte-for-byte the
// generator that produced exactly the consumed events, so the encoding
// stays interchangeable with unwrapped generators and trace-cache
// cursors at the same position.
type windowedGenerator struct {
	g          *generator
	wpos, wlen int

	// Pre-buffer logical state for snapshot reconciliation, valid while
	// wlen > 0: the generator's state before the current buffer's events
	// were generated.
	preRng   xrand.Rand
	preComps []componentState
	preCount int64

	gaps  [genWindowEvents]int32
	lines [genWindowEvents]memtypes.LineAddr
	flags [genWindowEvents]uint8
}

func newWindowedGenerator(g *generator) *windowedGenerator {
	return &windowedGenerator{g: g, preComps: make([]componentState, len(g.comps))}
}

// fill records the generator's logical state, then generates the next
// buffer of events through the generator's own Next so the RNG draw
// sequence is identical to unbuffered consumption.
func (w *windowedGenerator) fill() {
	w.preRng = *w.g.rng
	copy(w.preComps, w.g.comps)
	w.preCount = w.g.count
	var ev Event
	for i := range w.gaps {
		w.g.Next(&ev)
		w.gaps[i] = ev.Gap
		w.lines[i] = ev.Line
		var f uint8
		if ev.Write {
			f = FlagWrite
		}
		if ev.Dep {
			f |= FlagDep
		}
		w.flags[i] = f
	}
	w.wpos, w.wlen = 0, genWindowEvents
}

// Next implements Stream, serving from the buffer.
func (w *windowedGenerator) Next(ev *Event) {
	if w.wpos == w.wlen {
		w.fill()
	}
	i := w.wpos
	ev.Gap = w.gaps[i]
	ev.Line = w.lines[i]
	f := w.flags[i]
	ev.Write = f&FlagWrite != 0
	ev.Dep = f&FlagDep != 0
	w.wpos = i + 1
}

// Window exposes the unconsumed remainder of the current buffer,
// refilling when empty; the slices are invalidated by the next Next,
// Consume, or Restore. Same contract as Cursor.Window.
func (w *windowedGenerator) Window() (gaps []int32, lines []memtypes.LineAddr, flags []uint8) {
	if w.wpos == w.wlen {
		w.fill()
	}
	return w.gaps[w.wpos:w.wlen], w.lines[w.wpos:w.wlen], w.flags[w.wpos:w.wlen]
}

// Consume advances past the first n events of the last Window.
func (w *windowedGenerator) Consume(n int) { w.wpos += n }

// Snapshot implements Checkpointer, encoding the generator state at the
// consumed position. With the buffer drained (or never filled) the live
// generator is that state; otherwise the saved pre-buffer state is
// replayed forward by the consumed prefix in a scratch generator.
func (w *windowedGenerator) Snapshot(e *ckpt.Encoder) {
	if w.wpos == w.wlen {
		w.g.Snapshot(e)
		return
	}
	rng := w.preRng
	scratch := *w.g // immutable/derived fields (spec, cum, meanGap) alias safely
	scratch.rng = &rng
	scratch.comps = append([]componentState(nil), w.preComps...)
	scratch.count = w.preCount
	var ev Event
	for i := 0; i < w.wpos; i++ {
		scratch.Next(&ev)
	}
	scratch.Snapshot(e)
}

// Restore implements Checkpointer; the buffer is discarded since its
// events belong to the abandoned timeline.
func (w *windowedGenerator) Restore(d *ckpt.Decoder) error {
	if err := w.g.Restore(d); err != nil {
		return err
	}
	w.wpos, w.wlen = 0, 0
	return nil
}
