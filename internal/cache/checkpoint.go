package cache

import "accord/internal/ckpt"

// Per-component version bytes; bump on any encoding change.
const (
	sramCacheVersion = 1
	hierarchyVersion = 1
)

// Snapshot serializes the cache's line array, LRU clock, and statistics.
func (c *Cache) Snapshot(e *ckpt.Encoder) {
	e.U8(sramCacheVersion)
	e.U64(c.clock)
	for i := range c.lines {
		l := &c.lines[i]
		e.U64(l.tag)
		e.U64(l.used)
		var flags uint8
		if l.valid {
			flags |= 1
		}
		if l.dirty {
			flags |= 2
		}
		if l.dcp.Present {
			flags |= 4
		}
		e.U8(flags)
		e.U8(l.dcp.Way)
	}
	e.U64(c.stats.Hits)
	e.U64(c.stats.Misses)
	e.U64(c.stats.Writebacks)
	e.U64(c.stats.Fills)
}

// Restore replaces the cache's state with a snapshot.
func (c *Cache) Restore(d *ckpt.Decoder) error {
	if v := d.U8(); d.Err() == nil && v != sramCacheVersion {
		d.Failf("cache: snapshot version %d, want %d", v, sramCacheVersion)
	}
	c.clock = d.U64()
	for i := range c.lines {
		tag := d.U64()
		used := d.U64()
		flags := d.U8()
		way := d.U8()
		if d.Err() != nil {
			return d.Err()
		}
		if flags > 7 {
			d.Failf("cache: line[%d] flags %#x invalid", i, flags)
			return d.Err()
		}
		c.lines[i] = line{
			tag:   tag,
			used:  used,
			dcp:   DCP{Present: flags&4 != 0, Way: way},
			valid: flags&1 != 0,
			dirty: flags&2 != 0,
		}
	}
	c.stats.Hits = d.U64()
	c.stats.Misses = d.U64()
	c.stats.Writebacks = d.U64()
	c.stats.Fills = d.U64()
	return d.Err()
}

// Snapshot serializes the hierarchy's private levels. The shared L3 is
// excluded: it belongs to every hierarchy at once, so the composing
// system snapshots it exactly once.
func (h *Hierarchy) Snapshot(e *ckpt.Encoder) {
	e.U8(hierarchyVersion)
	h.l1.Snapshot(e)
	h.l2.Snapshot(e)
}

// Restore replaces the private L1/L2 state with a snapshot.
func (h *Hierarchy) Restore(d *ckpt.Decoder) error {
	if v := d.U8(); d.Err() == nil && v != hierarchyVersion {
		d.Failf("cache: hierarchy snapshot version %d, want %d", v, hierarchyVersion)
	}
	if err := d.Err(); err != nil {
		return err
	}
	if err := h.l1.Restore(d); err != nil {
		return err
	}
	return h.l2.Restore(d)
}
