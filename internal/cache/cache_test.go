package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"accord/internal/memtypes"
)

func smallCfg() Config {
	return Config{Name: "t", SizeBytes: 4 * 64 * 4, Ways: 4, HitLatency: 1} // 4 sets, 4 ways
}

func TestConfigValidate(t *testing.T) {
	if err := smallCfg().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "tiny", SizeBytes: 32, Ways: 1},
		{Name: "zeroways", SizeBytes: 4096, Ways: 0},
		{Name: "nondiv", SizeBytes: 4096 + 64, Ways: 2},
		{Name: "npot", SizeBytes: 3 * 64 * 2, Ways: 2}, // 3 sets
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q passed validation", c.Name)
		}
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New did not panic on invalid config")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 0, Ways: 1})
}

func TestMissThenHit(t *testing.T) {
	c := New(smallCfg())
	l := memtypes.LineAddr(0x123)
	if c.Lookup(l, false) {
		t.Fatal("hit in empty cache")
	}
	c.Fill(l, false, DCP{})
	if !c.Lookup(l, false) {
		t.Fatal("miss after fill")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Fills != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUVictim(t *testing.T) {
	c := New(smallCfg()) // 4 sets, 4 ways
	// Five lines in set 0: lines 0,4,8,12,16 (set = line & 3 with 4 sets).
	for i := 0; i < 4; i++ {
		c.Fill(memtypes.LineAddr(i*4), false, DCP{})
	}
	// Touch line 0 so that line 4 is LRU.
	c.Lookup(0, false)
	ev, evicted := c.Fill(memtypes.LineAddr(16), false, DCP{})
	if !evicted {
		t.Fatal("no eviction from a full set")
	}
	if ev.Line != 4 {
		t.Errorf("evicted line %#x, want 0x4 (LRU)", uint64(ev.Line))
	}
	if c.Contains(4) {
		t.Error("victim still present")
	}
	if !c.Contains(0) || !c.Contains(16) {
		t.Error("expected lines missing")
	}
}

func TestDirtyEviction(t *testing.T) {
	c := New(smallCfg())
	c.Fill(0, false, DCP{})
	c.Lookup(0, true) // dirty it
	for i := 1; i <= 4; i++ {
		c.Fill(memtypes.LineAddr(i*4), false, DCP{})
	}
	// Line 0 must have been evicted dirty at some point.
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestEvictionAddressRoundTrip(t *testing.T) {
	c := New(smallCfg())
	l := memtypes.LineAddr(0xABCD)
	c.Fill(l, true, DCP{})
	set := uint64(l) & 3
	// Fill the same set with 4 more lines to force l out.
	var got memtypes.LineAddr
	found := false
	for i := uint64(1); i <= 4; i++ {
		other := memtypes.LineAddr(set | i<<20)
		if ev, evicted := c.Fill(other, false, DCP{}); evicted && ev.Dirty {
			got, found = ev.Line, true
		}
	}
	if !found || got != l {
		t.Errorf("dirty eviction line = %#x (found=%v), want %#x", uint64(got), found, uint64(l))
	}
}

func TestDCPStateRoundTrip(t *testing.T) {
	c := New(smallCfg())
	l := memtypes.LineAddr(7)
	if c.SetDCP(l, DCP{Present: true, Way: 1}) {
		t.Error("SetDCP succeeded on absent line")
	}
	c.Fill(l, false, DCP{Present: true, Way: 3})
	dcp, ok := c.GetDCP(l)
	if !ok || !dcp.Present || dcp.Way != 3 {
		t.Errorf("GetDCP = %+v, %v", dcp, ok)
	}
	if !c.SetDCP(l, DCP{Present: false}) {
		t.Error("SetDCP failed on resident line")
	}
	dcp, _ = c.GetDCP(l)
	if dcp.Present {
		t.Error("DCP update not applied")
	}
	if _, ok := c.GetDCP(memtypes.LineAddr(9999)); ok {
		t.Error("GetDCP found absent line")
	}
}

func TestDCPTravelsWithEviction(t *testing.T) {
	c := New(Config{Name: "dm", SizeBytes: 64 * 4, Ways: 1}) // 4 sets, direct-mapped
	c.Fill(0, true, DCP{Present: true, Way: 2})
	ev, evicted := c.Fill(4, false, DCP{})
	if !evicted || !ev.DCP.Present || ev.DCP.Way != 2 {
		t.Errorf("eviction DCP = %+v (evicted=%v), want way 2", ev.DCP, evicted)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(smallCfg())
	c.Fill(5, false, DCP{})
	c.Lookup(5, true)
	dirty, present := c.Invalidate(5)
	if !present || !dirty {
		t.Errorf("Invalidate = dirty %v present %v", dirty, present)
	}
	if c.Contains(5) {
		t.Error("line still present after invalidate")
	}
	if _, present := c.Invalidate(5); present {
		t.Error("second invalidate found the line")
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := New(smallCfg())
	c.Fill(0, false, DCP{})
	before := c.Stats()
	c.Contains(0)
	c.Contains(999)
	if c.Stats() != before {
		t.Error("Contains changed stats")
	}
}

func TestResetStats(t *testing.T) {
	c := New(smallCfg())
	c.Fill(1, false, DCP{})
	c.Lookup(1, false)
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Error("stats not zeroed")
	}
	if !c.Contains(1) {
		t.Error("ResetStats dropped contents")
	}
}

func TestRandomOpsKeepInvariants(t *testing.T) {
	c := New(smallCfg())
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		l := memtypes.LineAddr(r.Intn(64))
		switch r.Intn(4) {
		case 0:
			c.Lookup(l, r.Intn(2) == 0)
		case 1:
			if !c.Contains(l) {
				c.Fill(l, r.Intn(2) == 0, DCP{})
			}
		case 2:
			c.Invalidate(l)
		case 3:
			c.SetDCP(l, DCP{Present: true, Way: uint8(r.Intn(8))})
		}
		if i%1000 == 0 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFillThenPresent(t *testing.T) {
	c := New(Config{Name: "q", SizeBytes: 64 * 64 * 8, Ways: 8})
	f := func(raw uint32) bool {
		l := memtypes.LineAddr(raw)
		if !c.Contains(l) {
			c.Fill(l, false, DCP{})
		}
		return c.Contains(l) && c.CheckInvariants() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOccupancyOfSet(t *testing.T) {
	c := New(smallCfg())
	if c.OccupancyOfSet(0) != 0 {
		t.Error("fresh set not empty")
	}
	c.Fill(0, false, DCP{})
	c.Fill(4, false, DCP{})
	if got := c.OccupancyOfSet(0); got != 2 {
		t.Errorf("occupancy = %d, want 2", got)
	}
	if got := c.OccupancyOfSet(1); got != 0 {
		t.Errorf("other set occupancy = %d, want 0", got)
	}
}
