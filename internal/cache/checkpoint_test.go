package cache

import (
	"testing"

	"accord/internal/ckpt"
	"accord/internal/memtypes"
	"accord/internal/xrand"
)

func testCache() *Cache {
	return New(Config{Name: "l2t", SizeBytes: 64 * memtypes.LineSize, Ways: 4, HitLatency: 3})
}

// churn drives a cache through a deterministic mixed access pattern.
func churn(c *Cache, n int, seed int64) {
	rng := xrand.New(seed)
	for i := 0; i < n; i++ {
		l := memtypes.LineAddr(rng.Intn(256))
		if c.Lookup(l, i%3 == 0) {
			continue
		}
		c.Fill(l, i%5 == 0, DCP{Present: i%2 == 0, Way: uint8(i % 4)})
	}
}

// TestCacheRoundTrip restores a churned cache into a fresh one and
// requires identical subsequent behavior, stats, and DCP state.
func TestCacheRoundTrip(t *testing.T) {
	c := testCache()
	churn(c, 10_000, 9)
	e := ckpt.NewEncoder(0)
	c.Snapshot(e)
	blob := e.Finish()

	fresh := testCache()
	d, err := ckpt.NewDecoderChecked(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(d); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if err := fresh.CheckInvariants(); err != nil {
		t.Fatalf("restored cache violates invariants: %v", err)
	}
	if fresh.Stats() != c.Stats() {
		t.Errorf("stats diverged: %+v != %+v", fresh.Stats(), c.Stats())
	}
	for l := memtypes.LineAddr(0); l < 256; l++ {
		if c.Contains(l) != fresh.Contains(l) {
			t.Fatalf("line %d presence diverged", l)
		}
		wd, wok := c.GetDCP(l)
		gd, gok := fresh.GetDCP(l)
		if wok != gok || wd != gd {
			t.Fatalf("line %d DCP diverged", l)
		}
	}
	// Continued identical churn must keep the two in lockstep (LRU clock
	// and timestamps restored exactly).
	churn(c, 5000, 31)
	churn(fresh, 5000, 31)
	if fresh.Stats() != c.Stats() {
		t.Errorf("post-restore churn diverged: %+v != %+v", fresh.Stats(), c.Stats())
	}
}

// TestCacheRestoreRejectsBadInput covers version bumps, flag bytes out of
// range, and truncations.
func TestCacheRestoreRejectsBadInput(t *testing.T) {
	c := testCache()
	churn(c, 1000, 2)
	e := ckpt.NewEncoder(0)
	c.Snapshot(e)
	blob := e.Finish()
	payload := blob[:len(blob)-4]

	bad := append([]byte{payload[0] + 1}, payload[1:]...)
	if err := testCache().Restore(ckpt.NewDecoder(bad)); err == nil {
		t.Error("version-bumped snapshot accepted")
	}
	for n := 0; n < len(payload); n += 1 + n/8 {
		if err := testCache().Restore(ckpt.NewDecoder(payload[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

// TestHierarchyRoundTrip exercises the composed L1+L2 codec.
func TestHierarchyRoundTrip(t *testing.T) {
	cfg := DefaultHierarchy(1 << 20)
	hiers, _ := NewSharedHierarchies(cfg, 2)
	h := hiers[0]
	rng := xrand.New(4)
	for i := 0; i < 20_000; i++ {
		h.Access(memtypes.LineAddr(rng.Intn(4096)), i%4 == 0)
	}
	e := ckpt.NewEncoder(0)
	h.Snapshot(e)
	blob := e.Finish()

	fresh, _ := NewSharedHierarchies(cfg, 2)
	d, err := ckpt.NewDecoderChecked(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh[0].Restore(d); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after hierarchy restore", d.Remaining())
	}

	payload := blob[:len(blob)-4]
	for n := 0; n < len(payload); n += 1 + n/8 {
		f2, _ := NewSharedHierarchies(cfg, 2)
		if err := f2[0].Restore(ckpt.NewDecoder(payload[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}
