package cache

import (
	"math/rand"
	"testing"

	"accord/internal/memtypes"
)

func tinyHierarchy(n int) ([]*Hierarchy, *Cache) {
	cfg := HierarchyConfig{
		L1: Config{Name: "l1", SizeBytes: 2 * 64 * 2, Ways: 2, HitLatency: 4},
		L2: Config{Name: "l2", SizeBytes: 4 * 64 * 2, Ways: 2, HitLatency: 12},
		L3: Config{Name: "l3", SizeBytes: 8 * 64 * 4, Ways: 4, HitLatency: 35},
	}
	return NewSharedHierarchies(cfg, n)
}

func TestDefaultHierarchyScaling(t *testing.T) {
	h := DefaultHierarchy(1)
	if h.L3.SizeBytes != 8<<20 || h.L3.Ways != 16 {
		t.Errorf("L3 = %d bytes %d ways, want 8MB 16-way", h.L3.SizeBytes, h.L3.Ways)
	}
	for _, cfg := range []Config{h.L1, h.L2, h.L3} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("default %s invalid: %v", cfg.Name, err)
		}
	}
	hs := DefaultHierarchy(256)
	if hs.L3.SizeBytes != 32<<10 {
		t.Errorf("scaled L3 = %d, want 32KB", hs.L3.SizeBytes)
	}
	for _, cfg := range []Config{hs.L1, hs.L2, hs.L3} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("scaled %s invalid: %v", cfg.Name, err)
		}
	}
	// Extreme scale still yields valid (clamped) configs.
	he := DefaultHierarchy(1 << 20)
	for _, cfg := range []Config{he.L1, he.L2, he.L3} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("clamped %s invalid: %v", cfg.Name, err)
		}
	}
	if h0 := DefaultHierarchy(0); h0.L3 != h.L3 {
		t.Error("scale 0 not treated as 1")
	}
}

func TestHierarchyMissPath(t *testing.T) {
	hs, _ := tinyHierarchy(1)
	h := hs[0]
	l := memtypes.LineAddr(0x40)

	out := h.Access(l, false)
	if out.Level != 4 {
		t.Fatalf("first access level = %d, want 4 (full miss)", out.Level)
	}
	if out.Latency != 4+12+35 {
		t.Errorf("miss path latency = %d, want 51", out.Latency)
	}
	h.FillFromBelow(l, false, DCP{Present: true, Way: 1})

	out = h.Access(l, false)
	if out.Level != 1 || out.Latency != 4 {
		t.Errorf("second access = level %d latency %d, want L1 hit", out.Level, out.Latency)
	}
}

func TestHierarchyL3Hit(t *testing.T) {
	hs, l3 := tinyHierarchy(2)
	a, b := hs[0], hs[1]
	l := memtypes.LineAddr(0x99)
	a.Access(l, false)
	a.FillFromBelow(l, false, DCP{})
	if !l3.Contains(l) {
		t.Fatal("shared L3 missing filled line")
	}
	// The other core hits in the shared L3, not in its private levels.
	out := b.Access(l, false)
	if out.Level != 3 {
		t.Errorf("cross-core access level = %d, want 3", out.Level)
	}
}

func TestDirtyL3EvictionCarriesDCP(t *testing.T) {
	hs, l3 := tinyHierarchy(1)
	h := hs[0]
	l := memtypes.LineAddr(0x7)
	h.Access(l, true)
	h.FillFromBelow(l, true, DCP{Present: true, Way: 1})
	// Mark dirty in L3 directly (write stores propagate lazily in this
	// model; force the state we want to test).
	l3.Lookup(l, true)

	// Evict l from L3 by filling its set with distinct lines.
	sets := l3.NumSets()
	var wbs []Writeback
	for i := uint64(1); i <= 8; i++ {
		other := memtypes.LineAddr(uint64(l)&(sets-1) | i<<40)
		if ev, evicted := l3.Fill(other, false, DCP{}); evicted && ev.Dirty {
			wbs = append(wbs, Writeback{Line: ev.Line, DCP: ev.DCP})
		}
	}
	found := false
	for _, wb := range wbs {
		if wb.Line == l {
			found = true
			if !wb.DCP.Present || wb.DCP.Way != 1 {
				t.Errorf("writeback DCP = %+v, want present way 1", wb.DCP)
			}
		}
	}
	if !found {
		t.Fatal("dirty line never evicted from L3")
	}
}

func TestWritebackGeneratedByTraffic(t *testing.T) {
	hs, _ := tinyHierarchy(1)
	h := hs[0]
	r := rand.New(rand.NewSource(42))
	sawWB := false
	for i := 0; i < 5000; i++ {
		l := memtypes.LineAddr(r.Intn(256))
		out := h.Access(l, r.Intn(2) == 0)
		if out.Level == 4 {
			wbs := h.FillFromBelow(l, false, DCP{})
			if len(wbs) > 0 {
				sawWB = true
			}
		}
		if len(out.Writebacks) > 0 {
			sawWB = true
		}
	}
	if !sawWB {
		t.Error("random write traffic produced no L3 writebacks")
	}
}

func TestHierarchyFiltersTraffic(t *testing.T) {
	// Repeated accesses to a small working set must be absorbed above L3.
	hs, l3 := tinyHierarchy(1)
	h := hs[0]
	for pass := 0; pass < 10; pass++ {
		for i := 0; i < 2; i++ {
			l := memtypes.LineAddr(i)
			out := h.Access(l, false)
			if out.Level == 4 {
				h.FillFromBelow(l, false, DCP{})
			}
		}
	}
	s := l3.Stats()
	if s.Misses != 2 {
		t.Errorf("L3 misses = %d, want 2 (compulsory only)", s.Misses)
	}
}

func TestAccessDoesNotAllocate(t *testing.T) {
	// Outcome.Writebacks reuses a per-hierarchy scratch buffer; once it
	// has grown to the traffic's watermark, the access path must be
	// allocation-free (the experiment scheduler multiplies this cost by
	// every simulation in flight).
	hs, _ := tinyHierarchy(1)
	h := hs[0]
	r := rand.New(rand.NewSource(7))
	step := func() {
		l := memtypes.LineAddr(r.Intn(512))
		out := h.Access(l, r.Intn(2) == 0)
		if out.Level == 4 {
			h.FillFromBelow(l, false, DCP{Present: true, Way: 0})
		}
	}
	for i := 0; i < 4096; i++ { // grow the scratch to its watermark
		step()
	}
	if allocs := testing.AllocsPerRun(4096, step); allocs > 0 {
		t.Errorf("hierarchy access allocates %.2f objects per access, want 0", allocs)
	}
}

func TestWritebacksValidUntilNextCall(t *testing.T) {
	// The documented contract: writebacks must be consumed before the
	// next Access/FillFromBelow, which may overwrite the shared buffer.
	hs, l3 := tinyHierarchy(1)
	h := hs[0]
	// Dirty a line in L3 and evict it through fills.
	dirty := memtypes.LineAddr(0x11)
	h.Access(dirty, true)
	h.FillFromBelow(dirty, true, DCP{Present: true, Way: 1})
	l3.Lookup(dirty, true)
	var got []Writeback
	for i := uint64(1); i <= 16 && len(got) == 0; i++ {
		l := memtypes.LineAddr(uint64(dirty)&(l3.NumSets()-1) | i<<40)
		h.Access(l, false)
		wbs := h.FillFromBelow(l, false, DCP{})
		// Consume immediately (copy) — the slice is only valid here.
		got = append(got, wbs...)
	}
	found := false
	for _, wb := range got {
		if wb.Line == dirty {
			found = true
			if !wb.DCP.Present || wb.DCP.Way != 1 {
				t.Errorf("writeback DCP = %+v, want present way 1", wb.DCP)
			}
		}
	}
	if !found {
		t.Fatal("dirty L3 line never surfaced as a writeback")
	}
}
