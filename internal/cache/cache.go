// Package cache implements the on-chip SRAM cache substrate: set-
// associative write-back caches with true-LRU replacement, used for the
// L1/L2/L3 levels of Table III, plus the DRAM-cache-presence (DCP) state
// the paper keeps in the L3 to avoid writeback probes (Section II-B-3).
package cache

import (
	"fmt"
	"math"

	"accord/internal/memtypes"
	"accord/internal/metrics"
)

// Config describes one SRAM cache level.
type Config struct {
	Name       string
	SizeBytes  int64
	Ways       int
	HitLatency int64 // cycles added to an access serviced at this level
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes < memtypes.LineSize:
		return fmt.Errorf("cache %s: size %d smaller than a line", c.Name, c.SizeBytes)
	case c.Ways <= 0:
		return fmt.Errorf("cache %s: ways = %d, must be positive", c.Name, c.Ways)
	case c.SizeBytes%(memtypes.LineSize*int64(c.Ways)) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by ways*linesize", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (memtypes.LineSize * int64(c.Ways))
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: %d sets, must be a power of two", c.Name, sets)
	}
	return nil
}

// DCP is the DRAM-cache-presence state attached to an L3 line: whether the
// line is resident in the DRAM cache and, per the paper's extension, which
// way it occupies (so writebacks need no probe).
type DCP struct {
	Present bool
	Way     uint8
}

// Eviction describes a line displaced by a fill.
type Eviction struct {
	Line  memtypes.LineAddr
	Dirty bool
	DCP   DCP
}

// line is the hot per-way metadata; field order keeps it at 24 bytes
// (two ways per cache line of the host) with the tag — the field every
// probe reads — first.
type line struct {
	tag   uint64
	used  uint64 // LRU timestamp
	dcp   DCP
	valid bool
	dirty bool
}

// Stats counts the externally visible events of one cache.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Writebacks uint64
	Fills      uint64
}

// Cache is a set-associative write-back SRAM cache. The zero value is not
// usable; construct with New.
type Cache struct {
	cfg      Config
	numSets  uint64
	setMask  uint64 // numSets - 1
	setShift uint   // log2(numSets), precomputed off the access path
	ways     int
	lines    []line // sets*ways, row-major by set
	clock    uint64 // LRU timestamp source
	stats    Stats

	invScratch []uint64 // CheckInvariants scratch, reused across sets
}

// New builds a cache from cfg, panicking on invalid configuration (always
// a programming error here).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := uint64(cfg.SizeBytes / (memtypes.LineSize * int64(cfg.Ways)))
	return &Cache{
		cfg:      cfg,
		numSets:  numSets,
		setMask:  numSets - 1,
		setShift: log2(numSets),
		ways:     cfg.Ways,
		lines:    make([]line, numSets*uint64(cfg.Ways)),
	}
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() uint64 { return c.numSets }

// Stats returns cumulative statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes statistics, keeping contents (for warmup).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// SetStats replaces the statistics wholesale; interval sampling uses it
// to impose committed per-interval aggregates on the final cache.
func (c *Cache) SetStats(s Stats) { c.stats = s }

// Add accumulates o into s field by field.
func (s *Stats) Add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Writebacks += o.Writebacks
	s.Fills += o.Fills
}

// RegisterMetrics publishes the cache's statistics into r under prefix
// (e.g. "l3") as views over the live counters.
func (c *Cache) RegisterMetrics(r *metrics.Registry, prefix string) {
	s := &c.stats
	r.CounterFunc(prefix+".hits", "accesses that hit", func() uint64 { return s.Hits })
	r.CounterFunc(prefix+".misses", "accesses that missed", func() uint64 { return s.Misses })
	r.CounterFunc(prefix+".writebacks", "dirty victims evicted", func() uint64 { return s.Writebacks })
	r.CounterFunc(prefix+".fills", "lines installed from below", func() uint64 { return s.Fills })
	r.GaugeFunc(prefix+".hit_rate_pct", "hit rate, percent (absent before any access)", func() float64 {
		total := s.Hits + s.Misses
		if total == 0 {
			return math.NaN()
		}
		return 100 * float64(s.Hits) / float64(total)
	})
}

func (c *Cache) index(l memtypes.LineAddr) (set uint64, tag uint64) {
	return uint64(l) & c.setMask, uint64(l) >> c.setShift
}

func log2(x uint64) uint {
	var n uint
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

func (c *Cache) set(set uint64) []line {
	base := set * uint64(c.ways)
	return c.lines[base : base+uint64(c.ways)]
}

// Lookup probes for l without changing contents; it updates LRU and the
// dirty bit on a hit. It returns whether the line was present.
func (c *Cache) Lookup(l memtypes.LineAddr, write bool) bool {
	set, tag := c.index(l)
	ways := c.set(set)
	c.clock++
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].used = c.clock
			if write {
				ways[i].dirty = true
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Contains reports presence without perturbing LRU, dirty bits, or stats.
func (c *Cache) Contains(l memtypes.LineAddr) bool {
	set, tag := c.index(l)
	for _, w := range c.set(set) {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Fill installs l (after a miss), evicting the LRU way if the set is full.
// The returned eviction is meaningful only when evicted is true; the
// caller is responsible for writing back dirty victims.
func (c *Cache) Fill(l memtypes.LineAddr, dirty bool, dcp DCP) (ev Eviction, evicted bool) {
	set, tag := c.index(l)
	ways := c.set(set)
	c.clock++
	c.stats.Fills++

	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			goto install
		}
		if ways[i].used < ways[victim].used {
			victim = i
		}
	}
	{
		v := &ways[victim]
		ev = Eviction{
			Line:  c.lineAddr(set, v.tag),
			Dirty: v.dirty,
			DCP:   v.dcp,
		}
		evicted = true
		if v.dirty {
			c.stats.Writebacks++
		}
	}
install:
	ways[victim] = line{tag: tag, valid: true, dirty: dirty, used: c.clock, dcp: dcp}
	return ev, evicted
}

// SetDCP updates the DCP state of a resident line; it is a no-op when the
// line is absent. Returns whether the line was found.
func (c *Cache) SetDCP(l memtypes.LineAddr, dcp DCP) bool {
	set, tag := c.index(l)
	ways := c.set(set)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].dcp = dcp
			return true
		}
	}
	return false
}

// GetDCP returns the DCP state of a resident line.
func (c *Cache) GetDCP(l memtypes.LineAddr) (DCP, bool) {
	set, tag := c.index(l)
	for _, w := range c.set(set) {
		if w.valid && w.tag == tag {
			return w.dcp, true
		}
	}
	return DCP{}, false
}

// Invalidate removes l if present, returning whether it was dirty.
func (c *Cache) Invalidate(l memtypes.LineAddr) (wasDirty, wasPresent bool) {
	set, tag := c.index(l)
	ways := c.set(set)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			wasDirty = ways[i].dirty
			ways[i] = line{}
			return wasDirty, true
		}
	}
	return false, false
}

// OccupancyOfSet returns the number of valid lines in the set holding l;
// a test/debug helper.
func (c *Cache) OccupancyOfSet(l memtypes.LineAddr) int {
	set, _ := c.index(l)
	n := 0
	for _, w := range c.set(set) {
		if w.valid {
			n++
		}
	}
	return n
}

func (c *Cache) lineAddr(set, tag uint64) memtypes.LineAddr {
	return memtypes.LineAddr(tag<<c.setShift | set)
}

// CheckInvariants validates internal consistency (no duplicate tags within
// a set); tests call this after random operation sequences. It reuses a
// scratch slice instead of allocating a map per set so invariant-checking
// fuzz loops stay off the allocator.
func (c *Cache) CheckInvariants() error {
	if cap(c.invScratch) < c.ways {
		c.invScratch = make([]uint64, 0, c.ways)
	}
	for s := uint64(0); s < c.numSets; s++ {
		seen := c.invScratch[:0]
		for _, w := range c.set(s) {
			if !w.valid {
				continue
			}
			for _, t := range seen {
				if t == w.tag {
					return fmt.Errorf("cache %s: duplicate tag %#x in set %d", c.cfg.Name, w.tag, s)
				}
			}
			seen = append(seen, w.tag)
		}
	}
	return nil
}
