package cache

import "accord/internal/memtypes"

// HierarchyConfig configures the three on-chip levels of Table III.
type HierarchyConfig struct {
	L1, L2, L3 Config
}

// DefaultHierarchy returns per-core L1/L2 plus the shared-L3 parameters of
// Table III, scaled down by scale (the same factor applied to the DRAM
// cache). The L3 is 8 MB 16-way at scale 1.
func DefaultHierarchy(scale int64) HierarchyConfig {
	if scale < 1 {
		scale = 1
	}
	clamp := func(size int64, ways int) Config {
		min := int64(memtypes.LineSize) * int64(ways)
		if size < min {
			size = min
		}
		return Config{SizeBytes: size, Ways: ways}
	}
	l1 := clamp(32<<10, 8)
	l1.Name, l1.HitLatency = "l1", 4
	l2 := clamp(256<<10/scale, 8)
	l2.Name, l2.HitLatency = "l2", 12
	l3 := clamp(8<<20/scale, 16)
	l3.Name, l3.HitLatency = "l3", 35
	return HierarchyConfig{L1: l1, L2: l2, L3: l3}
}

// Writeback is a dirty line leaving the L3 toward the DRAM cache, carrying
// its DCP way hint.
type Writeback struct {
	Line memtypes.LineAddr
	DCP  DCP
}

// Outcome describes how the hierarchy serviced one access.
type Outcome struct {
	// Level is the level that serviced the access: 1, 2, or 3; 4 means the
	// access missed the whole SRAM hierarchy and needs the DRAM cache.
	Level int
	// Latency is the SRAM lookup latency accumulated on the path.
	Latency int64
	// Writebacks are dirty L3 victims that must be written below. The
	// slice aliases a per-hierarchy scratch buffer: it is valid only
	// until the next Access or FillFromBelow on the same Hierarchy.
	Writebacks []Writeback
}

// Hierarchy wires private L1/L2 with a shared L3. In the 16-core system
// each core owns a Hierarchy view; constructing per-core L1/L2 around one
// shared L3 is the caller's job (see NewSharedHierarchies).
type Hierarchy struct {
	l1, l2 *Cache
	l3     *Cache // shared
	// scratch backs Outcome.Writebacks so the per-access hot path stays
	// allocation-free; each Access/FillFromBelow overwrites it.
	scratch []Writeback
}

// NewSharedHierarchies builds n per-core hierarchies sharing one L3 and
// returns them along with the shared L3 (for stats and DCP updates).
func NewSharedHierarchies(cfg HierarchyConfig, n int) ([]*Hierarchy, *Cache) {
	l3 := New(cfg.L3)
	hs := make([]*Hierarchy, n)
	for i := range hs {
		hs[i] = &Hierarchy{l1: New(cfg.L1), l2: New(cfg.L2), l3: l3}
	}
	return hs, l3
}

// L3 returns the shared last-level SRAM cache.
func (h *Hierarchy) L3() *Cache { return h.l3 }

// Access runs one load or store through L1→L2→L3. When Outcome.Level is 4
// the caller must consult the DRAM cache and then call FillFromBelow.
// Outcome.Writebacks must be consumed before the next call on h.
func (h *Hierarchy) Access(l memtypes.LineAddr, write bool) Outcome {
	out := Outcome{Latency: h.l1.cfg.HitLatency, Writebacks: h.scratch[:0]}
	switch {
	case h.l1.Lookup(l, write):
		out.Level = 1
	case h.l2.Lookup(l, false):
		out.Latency += h.l2.cfg.HitLatency
		out.Level = 2
		h.fillUpper(l, write, &out)
	case h.l3.Lookup(l, false):
		out.Latency += h.l2.cfg.HitLatency + h.l3.cfg.HitLatency
		out.Level = 3
		h.fillUpper(l, write, &out)
	default:
		out.Latency += h.l2.cfg.HitLatency + h.l3.cfg.HitLatency
		out.Level = 4
	}
	h.scratch = out.Writebacks
	return out
}

// FillFromBelow installs a line returned by the DRAM cache (or memory)
// into L3, L2, and L1. dcp carries whether/where the line now resides in
// the DRAM cache, enabling probe-free writebacks later. The returned
// slice aliases the hierarchy's scratch buffer and must be consumed
// before the next call on h.
func (h *Hierarchy) FillFromBelow(l memtypes.LineAddr, write bool, dcp DCP) []Writeback {
	out := Outcome{Writebacks: h.scratch[:0]}
	if ev, evicted := h.l3.Fill(l, false, dcp); evicted && ev.Dirty {
		out.Writebacks = append(out.Writebacks, Writeback{Line: ev.Line, DCP: ev.DCP})
	}
	h.fillUpper(l, write, &out)
	h.scratch = out.Writebacks
	return out.Writebacks
}

// fillUpper pulls a line now available in a lower level into L2 and L1,
// propagating dirty victims downward (and L3 dirty victims outward).
func (h *Hierarchy) fillUpper(l memtypes.LineAddr, write bool, out *Outcome) {
	if ev, evicted := h.l2.Fill(l, false, DCP{}); evicted && ev.Dirty {
		h.sinkIntoL3(ev.Line, out)
	}
	if ev, evicted := h.l1.Fill(l, write, DCP{}); evicted && ev.Dirty {
		// Dirty L1 victim lands in L2 (present in the common case; install
		// otherwise).
		if !h.l2.Lookup(ev.Line, true) {
			if ev2, e2 := h.l2.Fill(ev.Line, true, DCP{}); e2 && ev2.Dirty {
				h.sinkIntoL3(ev2.Line, out)
			}
		}
	}
}

// sinkIntoL3 writes a dirty victim into the L3, turning any displaced
// dirty L3 line into an external writeback.
func (h *Hierarchy) sinkIntoL3(l memtypes.LineAddr, out *Outcome) {
	if h.l3.Lookup(l, true) {
		return
	}
	if ev, evicted := h.l3.Fill(l, true, DCP{}); evicted && ev.Dirty {
		out.Writebacks = append(out.Writebacks, Writeback{Line: ev.Line, DCP: ev.DCP})
	}
}
