package cache

import (
	"math/rand"
	"testing"

	"accord/internal/memtypes"
)

// BenchmarkCacheLookup measures the SRAM-hierarchy probe path: lookups
// over a pre-filled 8-way L3-like cache with a working set ~2x its
// capacity, so hits and misses interleave. It must report 0 allocs/op —
// in full-hierarchy mode every workload event walks this path up to
// three times.
func BenchmarkCacheLookup(b *testing.B) {
	c := New(Config{Name: "l3", SizeBytes: 1 << 20, Ways: 8})
	r := rand.New(rand.NewSource(1))
	capacityLines := uint64(1<<20) / memtypes.LineSize
	addrs := make([]memtypes.LineAddr, 8192)
	for i := range addrs {
		addrs[i] = memtypes.LineAddr(r.Uint64() % (2 * capacityLines))
	}
	for _, l := range addrs {
		c.Fill(l, false, DCP{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(addrs[i&(len(addrs)-1)], i&7 == 0)
	}
}
