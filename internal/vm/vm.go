// Package vm models the virtual memory system: per-core address spaces
// with demand-allocated page tables over a shared physical frame pool.
// The paper's methodology (Section III-A) performs virtual-to-physical
// translation before the DRAM cache, which determines how workload access
// patterns land on cache sets; random frame allocation reproduces the
// realistic set-conflict behaviour the paper's workloads exhibit.
package vm

import (
	"accord/internal/xrand"
	"fmt"

	"accord/internal/memtypes"
)

// AllocPolicy selects how physical frames are assigned to newly touched
// virtual pages.
type AllocPolicy int

const (
	// AllocRandom assigns a uniformly random free frame (default; models a
	// long-running OS with a fragmented free list).
	AllocRandom AllocPolicy = iota
	// AllocSequential assigns frames in increasing order (useful for
	// deterministic tests and controlled conflict studies).
	AllocSequential
)

// String implements fmt.Stringer.
func (p AllocPolicy) String() string {
	switch p {
	case AllocRandom:
		return "random"
	case AllocSequential:
		return "sequential"
	default:
		return fmt.Sprintf("AllocPolicy(%d)", int(p))
	}
}

// System is the machine-wide VM state: one frame allocator shared by all
// address spaces. It is not safe for concurrent use.
type System struct {
	numFrames uint64
	policy    AllocPolicy
	rng       *xrand.Rand

	used      []bool
	usedCount uint64
	nextSeq   uint64

	spaces []*Space
}

// Space is one core's (or process's) page table: a demand-grown
// two-level radix structure (see radix.go) fronted by a small MRU cache
// of recently used leaves.
type Space struct {
	sys    *System
	mru    [mruWays]*ptLeaf
	dir    *ptDir
	mapped int
}

// NewSystem creates a VM system managing numFrames physical frames. seed
// makes random allocation reproducible.
func NewSystem(numFrames uint64, policy AllocPolicy, seed int64) *System {
	if numFrames == 0 {
		panic("vm: zero physical frames")
	}
	return &System{
		numFrames: numFrames,
		policy:    policy,
		rng:       xrand.New(seed),
		used:      make([]bool, numFrames),
	}
}

// NumFrames returns the physical frame count.
func (s *System) NumFrames() uint64 { return s.numFrames }

// AllocatedFrames returns the number of frames currently mapped.
func (s *System) AllocatedFrames() uint64 { return s.usedCount }

// NewSpace creates an address space backed by this system.
func (s *System) NewSpace() *Space {
	sp := &Space{sys: s, dir: newPTDir()}
	s.spaces = append(s.spaces, sp)
	return sp
}

// allocFrame picks a free frame per policy. When memory is exhausted it
// wraps around and reuses frames deterministically (the simulator's
// workloads are sized to avoid this; wrapping keeps long fuzz runs alive).
func (s *System) allocFrame() memtypes.PageNum {
	if s.usedCount >= s.numFrames {
		// Out of physical memory: fall back to round-robin reuse.
		f := memtypes.PageNum(s.nextSeq % s.numFrames)
		s.nextSeq++
		return f
	}
	switch s.policy {
	case AllocSequential:
		for s.used[s.nextSeq%s.numFrames] {
			s.nextSeq++
		}
		f := s.nextSeq % s.numFrames
		s.used[f] = true
		s.usedCount++
		s.nextSeq++
		return memtypes.PageNum(f)
	default:
		for {
			f := uint64(s.rng.Int63n(int64(s.numFrames)))
			if !s.used[f] {
				s.used[f] = true
				s.usedCount++
				return memtypes.PageNum(f)
			}
		}
	}
}

// TranslateLine translates a virtual line address to a physical line
// address, allocating a frame on first touch of the page.
func (sp *Space) TranslateLine(vl memtypes.LineAddr) memtypes.LineAddr {
	frame := sp.translatePage(vl.Page())
	return frame.Line(vl.PageOffset())
}

// Translate translates a virtual byte address, allocating on demand.
func (sp *Space) Translate(va memtypes.Addr) memtypes.Addr {
	pl := sp.TranslateLine(va.Line())
	return pl.Addr() | (va & (memtypes.LineSize - 1))
}

// MappedPages returns the number of pages this space has touched.
func (sp *Space) MappedPages() int { return sp.mapped }

// FootprintBytes returns the physical memory this space occupies.
func (sp *Space) FootprintBytes() int64 {
	return int64(sp.mapped) * memtypes.PageSize
}
