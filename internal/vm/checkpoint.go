package vm

import "accord/internal/ckpt"

// vmVersion tags the System encoding; bump on any layout change.
const vmVersion = 1

// Snapshot serializes the allocator (frame bitmap, cursors, RNG) and
// every address space's page table. Leaves are written in directory
// probe-index order; the order is a reconstruction detail — translation
// depends only on the hi → leaf mapping — so restore re-inserts them into
// a fresh directory.
func (s *System) Snapshot(e *ckpt.Encoder) {
	e.U8(vmVersion)
	e.U64(s.numFrames)
	e.U8(uint8(s.policy))
	e.U64(s.usedCount)
	e.U64(s.nextSeq)
	s.rng.Snapshot(e)
	e.Bools(s.used)
	e.U32(uint32(len(s.spaces)))
	for _, sp := range s.spaces {
		e.U32(uint32(sp.mapped))
		e.U32(uint32(sp.dir.used))
		for _, l := range sp.dir.leaves {
			if l == nil {
				continue
			}
			e.U64(l.hi)
			for _, f := range l.frames {
				e.U64(f)
			}
		}
	}
}

// Restore replaces the VM system's state with a snapshot. On error the
// system is left in an unspecified state and must be discarded.
func (s *System) Restore(d *ckpt.Decoder) error {
	if v := d.U8(); d.Err() == nil && v != vmVersion {
		d.Failf("vm: snapshot version %d, want %d", v, vmVersion)
	}
	if nf := d.U64(); d.Err() == nil && nf != s.numFrames {
		d.Failf("vm: snapshot has %d frames, system has %d", nf, s.numFrames)
	}
	if p := d.U8(); d.Err() == nil && AllocPolicy(p) != s.policy {
		d.Failf("vm: snapshot policy %d, system policy %d", p, s.policy)
	}
	usedCount := d.U64()
	nextSeq := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if err := s.rng.Restore(d); err != nil {
		return err
	}
	used := make([]bool, len(s.used))
	d.Bools(used)
	if d.Err() == nil {
		var pop uint64
		for _, u := range used {
			if u {
				pop++
			}
		}
		if pop != usedCount {
			d.Failf("vm: frame bitmap population %d != usedCount %d", pop, usedCount)
		}
	}
	if n := d.U32(); d.Err() == nil && int(n) != len(s.spaces) {
		d.Failf("vm: snapshot has %d spaces, system has %d", n, len(s.spaces))
	}
	if err := d.Err(); err != nil {
		return err
	}
	for si, sp := range s.spaces {
		mapped := d.U32()
		nLeaves := d.Len(1 << 24) // 2^24 leaves = 2^33 pages; far beyond any run
		if err := d.Err(); err != nil {
			return err
		}
		dir := newPTDir()
		for i := 0; i < nLeaves; i++ {
			l := &ptLeaf{hi: d.U64()}
			for j := range l.frames {
				f := d.U64()
				if d.Err() == nil && f != 0 && f-1 >= s.numFrames {
					d.Failf("vm: space %d leaf %#x page %d maps frame %d beyond %d frames",
						si, l.hi, j, f-1, s.numFrames)
				}
				l.frames[j] = f
			}
			if err := d.Err(); err != nil {
				return err
			}
			if dir.find(l.hi) != nil {
				d.Failf("vm: space %d has duplicate leaf %#x", si, l.hi)
				return d.Err()
			}
			dir.insert(l)
		}
		sp.dir = dir
		sp.mru = [mruWays]*ptLeaf{}
		sp.mapped = int(mapped)
	}
	s.usedCount = usedCount
	s.nextSeq = nextSeq
	copy(s.used, used)
	return nil
}
