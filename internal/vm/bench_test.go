package vm

import (
	"testing"

	"accord/internal/memtypes"
)

// BenchmarkTranslateLine measures the per-event translation fast path:
// pages are pre-touched so every iteration exercises the radix walk (MRU
// cache plus leaf load) without frame allocation. It must report
// 0 allocs/op — translation sits on the hot path of every simulated
// memory event.
func BenchmarkTranslateLine(b *testing.B) {
	const pages = 1 << 14 // 16 K pages across 32 leaves
	sys := NewSystem(pages*2, AllocRandom, 1)
	sp := sys.NewSpace()
	lines := make([]memtypes.LineAddr, pages)
	for i := range lines {
		// Two interleaved arenas, mimicking the workload generators'
		// disjoint component bases, so the MRU cache sees realistic churn.
		arena := uint64(i%2+1) << 36 / memtypes.LineSize
		vl := memtypes.LineAddr(arena + uint64(i)*memtypes.LinesPerPage)
		lines[i] = vl
		sp.TranslateLine(vl) // pre-touch: allocate the frame and leaf
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink memtypes.LineAddr
	for i := 0; i < b.N; i++ {
		sink = sp.TranslateLine(lines[i&(pages-1)])
	}
	_ = sink
}
