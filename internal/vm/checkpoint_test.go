package vm

import (
	"testing"

	"accord/internal/ckpt"
	"accord/internal/memtypes"
)

// build allocates ~pages mappings across two spaces of a fresh system.
func build(seed int64, pages int) (*System, []*Space) {
	s := NewSystem(1<<14, AllocRandom, seed)
	sps := []*Space{s.NewSpace(), s.NewSpace()}
	for i := 0; i < pages; i++ {
		sp := sps[i%2]
		sp.TranslateLine(memtypes.LineAddr(uint64(i) * 64 / 2))
	}
	return s, sps
}

// TestSystemRoundTrip restores a populated radix table + allocator into a
// fresh system and requires identical existing translations AND identical
// future allocations (the allocator RNG stream must continue in place).
func TestSystemRoundTrip(t *testing.T) {
	s, sps := build(6, 8000)
	e := ckpt.NewEncoder(0)
	s.Snapshot(e)
	blob := e.Finish()

	fresh, fsps := build(99, 0) // different seed, no mappings
	d, err := ckpt.NewDecoderChecked(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(d); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after restore", d.Remaining())
	}
	if fresh.AllocatedFrames() != s.AllocatedFrames() {
		t.Fatalf("allocated frames %d != %d", fresh.AllocatedFrames(), s.AllocatedFrames())
	}
	for i := 0; i < 8000; i += 7 {
		vl := memtypes.LineAddr(uint64(i) * 64 / 2)
		if sps[i%2].TranslateLine(vl) != fsps[i%2].TranslateLine(vl) {
			t.Fatalf("existing translation %d diverged", i)
		}
	}
	// New mappings draw from the restored RNG: they must match too.
	for i := 0; i < 2000; i++ {
		vl := memtypes.LineAddr(1<<40 + uint64(i)*64)
		if sps[0].TranslateLine(vl) != fsps[0].TranslateLine(vl) {
			t.Fatalf("new translation %d diverged", i)
		}
	}
}

// TestSystemRestoreRejectsBadInput covers version bumps, space-count and
// frame-count mismatches, and truncations.
func TestSystemRestoreRejectsBadInput(t *testing.T) {
	s, _ := build(3, 1000)
	e := ckpt.NewEncoder(0)
	s.Snapshot(e)
	blob := e.Finish()
	payload := blob[:len(blob)-4]

	freshSys := func() *System {
		f, _ := build(3, 0)
		return f
	}
	bad := append([]byte{payload[0] + 1}, payload[1:]...)
	if err := freshSys().Restore(ckpt.NewDecoder(bad)); err == nil {
		t.Error("version-bumped snapshot accepted")
	}
	// One-space system must reject a two-space snapshot.
	one := NewSystem(1<<14, AllocRandom, 3)
	one.NewSpace()
	if err := one.Restore(ckpt.NewDecoder(payload)); err == nil {
		t.Error("space-count mismatch accepted")
	}
	// Different frame count must be rejected.
	small := NewSystem(1<<10, AllocRandom, 3)
	small.NewSpace()
	small.NewSpace()
	if err := small.Restore(ckpt.NewDecoder(payload)); err == nil {
		t.Error("frame-count mismatch accepted")
	}
	for n := 0; n < len(payload); n += 1 + n/8 {
		if err := freshSys().Restore(ckpt.NewDecoder(payload[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}
