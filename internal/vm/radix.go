package vm

import "accord/internal/memtypes"

// The page table is a demand-grown two-level radix structure instead of a
// Go map: workload generators place each component in a disjoint virtual
// arena ((i+1)<<36 byte bases), so virtual page numbers cluster in a
// handful of dense ranges. Level 2 ("leaf") is a dense array covering
// leafPages consecutive pages; level 1 is a small open-addressed directory
// from the high VPN bits to a leaf. A tiny per-space MRU cache of
// recently used leaves removes the directory probe from nearly every
// translation, leaving an add, a mask, and one indexed load on the hot
// path.
//
// Frame values are stored +1 so the zero value means "unmapped"; frame 0
// stays representable. First-touch allocation order is exactly the map
// version's (one allocFrame call per newly touched page, in access
// order), so the system RNG draw sequence — and therefore every simulated
// result — is bit-identical.
const (
	leafBits  = 9 // pages per leaf: 512 (2 MB of VA, a 4 KB leaf node)
	leafPages = 1 << leafBits
	leafMask  = leafPages - 1

	// mruWays is the size of the per-space leaf MRU cache. Two entries
	// cover the common "stream + random arena" interleave of the workload
	// generators.
	mruWays = 2
)

// ptLeaf is one level-2 node: frame+1 per page, 0 = unmapped.
type ptLeaf struct {
	hi     uint64 // VPN >> leafBits
	frames [leafPages]uint64
}

// ptDir is the level-1 directory: an open-addressed linear-probe table
// from hi to a leaf. It only ever grows (pages are never unmapped), so
// deletion is unnecessary and probe chains stay short under the 50% max
// load factor.
type ptDir struct {
	leaves []*ptLeaf // probe table, nil = empty
	mask   uint64
	used   int
}

func newPTDir() *ptDir {
	return &ptDir{leaves: make([]*ptLeaf, 8), mask: 7}
}

// hashHi spreads the high VPN bits with a Fibonacci multiplier; arena
// bases differ only in bits far above leafBits, which a masked identity
// hash would collapse.
func hashHi(hi uint64) uint64 {
	return hi * 0x9e3779b97f4a7c15
}

// find returns the leaf covering hi, or nil.
func (d *ptDir) find(hi uint64) *ptLeaf {
	i := hashHi(hi) & d.mask
	for {
		l := d.leaves[i]
		if l == nil {
			return nil
		}
		if l.hi == hi {
			return l
		}
		i = (i + 1) & d.mask
	}
}

// insert adds a leaf for hi (which must not be present), growing the
// probe table when it passes half full.
func (d *ptDir) insert(l *ptLeaf) {
	if 2*(d.used+1) > len(d.leaves) {
		d.grow()
	}
	i := hashHi(l.hi) & d.mask
	for d.leaves[i] != nil {
		i = (i + 1) & d.mask
	}
	d.leaves[i] = l
	d.used++
}

func (d *ptDir) grow() {
	old := d.leaves
	d.leaves = make([]*ptLeaf, 2*len(old))
	d.mask = uint64(len(d.leaves) - 1)
	for _, l := range old {
		if l == nil {
			continue
		}
		i := hashHi(l.hi) & d.mask
		for d.leaves[i] != nil {
			i = (i + 1) & d.mask
		}
		d.leaves[i] = l
	}
}

// leafSlow returns the leaf covering hi when the way-0 MRU check missed,
// consulting the remaining MRU ways and then the directory (creating the
// leaf on demand), and promotes the result to MRU way 0. Kept out of the
// inlined fast path on purpose.
//
//go:noinline
func (sp *Space) leafSlow(hi uint64) *ptLeaf {
	for w := 1; w < mruWays; w++ {
		if l := sp.mru[w]; l != nil && l.hi == hi {
			copy(sp.mru[1:w+1], sp.mru[:w])
			sp.mru[0] = l
			return l
		}
	}
	l := sp.dir.find(hi)
	if l == nil {
		l = &ptLeaf{hi: hi}
		sp.dir.insert(l)
	}
	copy(sp.mru[1:], sp.mru[:mruWays-1])
	sp.mru[0] = l
	return l
}

// translatePage maps a virtual page to its frame, allocating on first
// touch. This is the per-event hot path: an MRU way-0 hit costs one
// compare plus one indexed load, with no call.
func (sp *Space) translatePage(vp memtypes.PageNum) memtypes.PageNum {
	hi := uint64(vp) >> leafBits
	leaf := sp.mru[0]
	if leaf == nil || leaf.hi != hi {
		leaf = sp.leafSlow(hi)
	}
	slot := &leaf.frames[uint64(vp)&leafMask]
	if f := *slot; f != 0 {
		return memtypes.PageNum(f - 1)
	}
	frame := sp.sys.allocFrame()
	*slot = uint64(frame) + 1
	sp.mapped++
	return frame
}
