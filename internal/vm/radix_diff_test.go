package vm

import (
	"math/rand"
	"testing"

	"accord/internal/memtypes"
)

// TestRadixMatchesMapReference drives the radix page table and the
// original map-based page table (surviving here as the reference model)
// with the same randomized trace and demands identical translations,
// allocation order, and footprint accounting. Frame allocation flows
// through the shared System RNG, so any divergence in first-touch order
// between the two structures would surface as mismatched frames.
func TestRadixMatchesMapReference(t *testing.T) {
	for _, seed := range []int64{1, 2, 42} {
		sys := NewSystem(1<<16, AllocRandom, seed)
		sp := sys.NewSpace()
		ref := make(map[memtypes.PageNum]memtypes.PageNum)
		r := rand.New(rand.NewSource(seed * 7))

		// Arena bases mirror the workload generators: sparse high bits,
		// dense page runs beneath them — the layout the radix directory
		// plus dense leaves is shaped for.
		bases := []uint64{1 << 36 / memtypes.LineSize, 2 << 36 / memtypes.LineSize, 3 << 36 / memtypes.LineSize}

		for op := 0; op < 200_000; op++ {
			base := bases[r.Intn(len(bases))]
			var off uint64
			if r.Intn(4) == 0 {
				off = uint64(r.Intn(1 << 20)) // wide: new leaves
			} else {
				off = uint64(r.Intn(1 << 12)) // narrow: MRU-cached leaves
			}
			vl := memtypes.LineAddr(base + off*memtypes.LinesPerPage + uint64(r.Intn(memtypes.LinesPerPage)))

			got := sp.TranslateLine(vl)
			frame := got.Page()
			if want, seen := ref[vl.Page()]; seen {
				if frame != want {
					t.Fatalf("seed %d op %d: page %#x translated to frame %#x, previously %#x",
						seed, op, uint64(vl.Page()), uint64(frame), uint64(want))
				}
			} else {
				ref[vl.Page()] = frame
			}
			if got.PageOffset() != vl.PageOffset() {
				t.Fatalf("seed %d op %d: line offset not preserved", seed, op)
			}
		}
		if sp.MappedPages() != len(ref) {
			t.Fatalf("seed %d: MappedPages = %d, reference holds %d", seed, sp.MappedPages(), len(ref))
		}
		// Injectivity: two virtual pages never share a frame within a space.
		inv := make(map[memtypes.PageNum]memtypes.PageNum, len(ref))
		for vp, f := range ref {
			if prev, dup := inv[f]; dup {
				t.Fatalf("seed %d: frame %#x mapped by pages %#x and %#x", seed, uint64(f), uint64(prev), uint64(vp))
			}
			inv[f] = vp
		}
	}
}

// TestRadixAllocationOrderMatchesMap verifies the bit-identity argument
// directly: a radix-backed space and a pure-map simulation of the old
// implementation, fed the same access sequence against systems seeded
// identically, draw the same frames in the same order.
func TestRadixAllocationOrderMatchesMap(t *testing.T) {
	const seed = 9
	sysA := NewSystem(1<<12, AllocRandom, seed)
	spA := sysA.NewSpace()

	// The reference reimplements the old map-based Space inline: one map,
	// one allocFrame call per first touch, in access order.
	sysB := NewSystem(1<<12, AllocRandom, seed)
	refTable := make(map[memtypes.PageNum]memtypes.PageNum)
	refTranslate := func(vp memtypes.PageNum) memtypes.PageNum {
		if f, ok := refTable[vp]; ok {
			return f
		}
		f := sysB.allocFrame()
		refTable[vp] = f
		return f
	}

	r := rand.New(rand.NewSource(seed))
	for op := 0; op < 100_000; op++ {
		vp := memtypes.PageNum(uint64(r.Intn(1<<14)) + uint64(r.Intn(3)+1)<<24)
		got := spA.translatePage(vp)
		want := refTranslate(vp)
		if got != want {
			t.Fatalf("op %d: page %#x -> frame %#x, map reference -> %#x",
				op, uint64(vp), uint64(got), uint64(want))
		}
	}
	if sysA.AllocatedFrames() != sysB.AllocatedFrames() {
		t.Fatalf("allocated frames diverged: %d vs %d", sysA.AllocatedFrames(), sysB.AllocatedFrames())
	}
}
