package vm

import (
	"testing"
	"testing/quick"

	"accord/internal/memtypes"
)

func TestPolicyString(t *testing.T) {
	if AllocRandom.String() != "random" || AllocSequential.String() != "sequential" {
		t.Error("policy strings wrong")
	}
	if AllocPolicy(7).String() == "" {
		t.Error("unknown policy produced empty string")
	}
}

func TestNewSystemPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero frames")
		}
	}()
	NewSystem(0, AllocRandom, 1)
}

func TestTranslationStable(t *testing.T) {
	sys := NewSystem(1024, AllocRandom, 7)
	sp := sys.NewSpace()
	va := memtypes.Addr(0x12345)
	p1 := sp.Translate(va)
	p2 := sp.Translate(va)
	if p1 != p2 {
		t.Errorf("translation unstable: %#x vs %#x", p1, p2)
	}
	// Line offset within page preserved.
	if p1&(memtypes.PageSize-1) != va&(memtypes.PageSize-1) {
		t.Errorf("page offset not preserved: va %#x -> pa %#x", va, p1)
	}
}

func TestDistinctPagesDistinctFrames(t *testing.T) {
	sys := NewSystem(4096, AllocRandom, 3)
	sp := sys.NewSpace()
	frames := map[memtypes.PageNum]memtypes.PageNum{}
	for p := uint64(0); p < 1000; p++ {
		pl := sp.TranslateLine(memtypes.PageNum(p).Line(0))
		f := pl.Page()
		if prev, ok := frames[f]; ok {
			t.Fatalf("frame %d assigned to pages %d and %d", f, prev, p)
		}
		frames[f] = memtypes.PageNum(p)
	}
	if sys.AllocatedFrames() != 1000 {
		t.Errorf("allocated = %d, want 1000", sys.AllocatedFrames())
	}
}

func TestSpacesAreIsolated(t *testing.T) {
	sys := NewSystem(4096, AllocRandom, 9)
	a, b := sys.NewSpace(), sys.NewSpace()
	va := memtypes.Addr(0x5000)
	if a.Translate(va) == b.Translate(va) {
		t.Error("two spaces mapped the same VA to the same frame")
	}
}

func TestSequentialAllocation(t *testing.T) {
	sys := NewSystem(64, AllocSequential, 0)
	sp := sys.NewSpace()
	for p := uint64(0); p < 4; p++ {
		pl := sp.TranslateLine(memtypes.PageNum(p).Line(0))
		if got := uint64(pl.Page()); got != p {
			t.Errorf("page %d -> frame %d, want %d", p, got, p)
		}
	}
}

func TestExhaustionWrapsInsteadOfPanicking(t *testing.T) {
	sys := NewSystem(4, AllocSequential, 0)
	sp := sys.NewSpace()
	for p := uint64(0); p < 16; p++ {
		sp.TranslateLine(memtypes.PageNum(p).Line(0))
	}
	if sys.AllocatedFrames() != 4 {
		t.Errorf("allocated = %d, want 4 (all)", sys.AllocatedFrames())
	}
	if sp.MappedPages() != 16 {
		t.Errorf("mapped pages = %d, want 16", sp.MappedPages())
	}
}

func TestFootprint(t *testing.T) {
	sys := NewSystem(1024, AllocRandom, 1)
	sp := sys.NewSpace()
	for p := uint64(0); p < 10; p++ {
		sp.TranslateLine(memtypes.PageNum(p).Line(3))
	}
	if sp.FootprintBytes() != 10*memtypes.PageSize {
		t.Errorf("footprint = %d", sp.FootprintBytes())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	build := func() []memtypes.LineAddr {
		sys := NewSystem(2048, AllocRandom, 42)
		sp := sys.NewSpace()
		var out []memtypes.LineAddr
		for p := uint64(0); p < 100; p++ {
			out = append(out, sp.TranslateLine(memtypes.PageNum(p).Line(0)))
		}
		return out
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at page %d: %#x vs %#x", i, a[i], b[i])
		}
	}
}

func TestQuickOffsetPreserved(t *testing.T) {
	sys := NewSystem(1<<16, AllocRandom, 5)
	sp := sys.NewSpace()
	f := func(raw uint32) bool {
		vl := memtypes.LineAddr(raw)
		pl := sp.TranslateLine(vl)
		return pl.PageOffset() == vl.PageOffset()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickInjectiveWithinSpace(t *testing.T) {
	sys := NewSystem(1<<16, AllocRandom, 6)
	sp := sys.NewSpace()
	seen := map[memtypes.LineAddr]memtypes.LineAddr{}
	f := func(raw uint16) bool {
		vl := memtypes.LineAddr(raw)
		pl := sp.TranslateLine(vl)
		if prev, ok := seen[pl]; ok && prev != vl {
			return false
		}
		seen[pl] = vl
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
