// Package energy models off-chip memory-system power, energy, and
// energy-delay product (Figure 15): dynamic energy from per-operation
// costs of the stacked-DRAM cache and the non-volatile memory, plus
// background power integrated over the run.
package energy

import (
	"fmt"

	"accord/internal/dram"
)

// Breakdown is the energy of one run, in joules.
type Breakdown struct {
	CacheDynamic    float64 // HBM activates + column ops
	CacheBackground float64
	MemDynamic      float64 // NVM reads/writes (writes dominate for PCM)
	MemBackground   float64
	Seconds         float64 // run length
}

// Total returns total energy in joules.
func (b Breakdown) Total() float64 {
	return b.CacheDynamic + b.CacheBackground + b.MemDynamic + b.MemBackground
}

// Power returns average power in watts.
func (b Breakdown) Power() float64 {
	if b.Seconds <= 0 {
		return 0
	}
	return b.Total() / b.Seconds
}

// EDP returns the energy-delay product in joule-seconds.
func (b Breakdown) EDP() float64 { return b.Total() * b.Seconds }

// deviceDynamic integrates a device's per-operation energies (nanojoules)
// over its operation counts.
func deviceDynamic(cfg dram.Config, s dram.Stats) float64 {
	nj := float64(s.Activates)*cfg.EActivateNJ +
		float64(s.Reads)*cfg.EReadUnitNJ +
		float64(s.Writes)*cfg.EWriteUnitNJ
	return nj * 1e-9
}

// Compute derives the energy breakdown of a run from the two devices'
// operation counts, the run length in CPU cycles, and the CPU clock.
func Compute(hbmCfg dram.Config, hbm dram.Stats, pcmCfg dram.Config, pcm dram.Stats, cycles int64, cpuGHz float64) Breakdown {
	if cpuGHz <= 0 {
		panic(fmt.Sprintf("energy: cpuGHz = %v, must be positive", cpuGHz))
	}
	sec := float64(cycles) / (cpuGHz * 1e9)
	return Breakdown{
		CacheDynamic:    deviceDynamic(hbmCfg, hbm),
		CacheBackground: hbmCfg.BackgroundW * sec,
		MemDynamic:      deviceDynamic(pcmCfg, pcm),
		MemBackground:   pcmCfg.BackgroundW * sec,
		Seconds:         sec,
	}
}

// Relative is Figure 15's normalized view of a design against a baseline.
type Relative struct {
	Speedup float64 // baseline delay / target delay
	Power   float64 // target power / baseline power
	Energy  float64 // target energy / baseline energy
	EDP     float64 // target EDP / baseline EDP
}

// Compare normalizes target against baseline.
func Compare(target, baseline Breakdown) Relative {
	r := Relative{}
	if target.Seconds > 0 {
		r.Speedup = baseline.Seconds / target.Seconds
	}
	if p := baseline.Power(); p > 0 {
		r.Power = target.Power() / p
	}
	if e := baseline.Total(); e > 0 {
		r.Energy = target.Total() / e
	}
	if e := baseline.EDP(); e > 0 {
		r.EDP = target.EDP() / e
	}
	return r
}
