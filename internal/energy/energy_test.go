package energy

import (
	"math"
	"testing"

	"accord/internal/dram"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 || math.Abs(a-b) < 1e-6*math.Abs(b) }

func TestComputeBasics(t *testing.T) {
	hbm := dram.HBM()
	pcm := dram.PCM()
	hstats := dram.Stats{Activates: 1000, Reads: 5000, Writes: 2000}
	pstats := dram.Stats{Activates: 100, Reads: 500, Writes: 200}
	cycles := int64(3e9) // 1 second at 3 GHz
	b := Compute(hbm, hstats, pcm, pstats, cycles, 3.0)

	if !approx(b.Seconds, 1.0) {
		t.Errorf("seconds = %v, want 1", b.Seconds)
	}
	wantCache := (1000*hbm.EActivateNJ + 5000*hbm.EReadUnitNJ + 2000*hbm.EWriteUnitNJ) * 1e-9
	if !approx(b.CacheDynamic, wantCache) {
		t.Errorf("cache dynamic = %v, want %v", b.CacheDynamic, wantCache)
	}
	if !approx(b.CacheBackground, hbm.BackgroundW) {
		t.Errorf("cache background = %v, want %v", b.CacheBackground, hbm.BackgroundW)
	}
	if !approx(b.MemBackground, pcm.BackgroundW) {
		t.Errorf("mem background = %v", b.MemBackground)
	}
	if b.Total() <= 0 || b.Power() <= 0 || b.EDP() <= 0 {
		t.Error("non-positive totals")
	}
	if !approx(b.Power(), b.Total()) { // 1 second
		t.Errorf("power = %v, want %v at 1s", b.Power(), b.Total())
	}
}

func TestPCMWritesExpensive(t *testing.T) {
	pcm := dram.PCM()
	reads := deviceDynamic(pcm, dram.Stats{Reads: 1000})
	writes := deviceDynamic(pcm, dram.Stats{Writes: 1000})
	if writes < 3*reads {
		t.Errorf("PCM write energy (%v) should be several times read energy (%v)", writes, reads)
	}
}

func TestZeroDurationPower(t *testing.T) {
	var b Breakdown
	if b.Power() != 0 {
		t.Error("zero-duration power not 0")
	}
}

func TestComputePanicsOnBadClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Compute(dram.HBM(), dram.Stats{}, dram.PCM(), dram.Stats{}, 1, 0)
}

func TestCompare(t *testing.T) {
	base := Breakdown{CacheDynamic: 1, MemDynamic: 1, Seconds: 2}
	fast := Breakdown{CacheDynamic: 1, MemDynamic: 0.5, Seconds: 1}
	r := Compare(fast, base)
	if !approx(r.Speedup, 2) {
		t.Errorf("speedup = %v, want 2", r.Speedup)
	}
	if !approx(r.Energy, 0.75) {
		t.Errorf("energy = %v, want 0.75", r.Energy)
	}
	// Power: fast 1.5/1 vs base 2/2=1 -> 1.5.
	if !approx(r.Power, 1.5) {
		t.Errorf("power = %v, want 1.5", r.Power)
	}
	// EDP: 1.5*1 vs 2*2 -> 0.375.
	if !approx(r.EDP, 0.375) {
		t.Errorf("EDP = %v, want 0.375", r.EDP)
	}
}

func TestCompareAgainstEmptyBaseline(t *testing.T) {
	r := Compare(Breakdown{Seconds: 1, CacheDynamic: 1}, Breakdown{})
	if r.Speedup != 0 || r.Power != 0 || r.Energy != 0 || r.EDP != 0 {
		t.Errorf("comparison against empty baseline = %+v, want zeros", r)
	}
}
