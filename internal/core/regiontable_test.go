package core

import (
	"testing"

	"accord/internal/memtypes"
)

func TestRegionTableBasic(t *testing.T) {
	rt := newRegionTable(4)
	if _, ok := rt.lookup(1); ok {
		t.Fatal("hit in empty table")
	}
	rt.insert(1, 1)
	way, ok := rt.lookup(1)
	if !ok || way != 1 {
		t.Fatalf("lookup = %d,%v want 1,true", way, ok)
	}
	// Update in place.
	rt.insert(1, 0)
	if way, _ := rt.lookup(1); way != 0 {
		t.Errorf("update not applied, way = %d", way)
	}
	if rt.len() != 1 {
		t.Errorf("len = %d, want 1", rt.len())
	}
}

func TestRegionTableLRUEviction(t *testing.T) {
	rt := newRegionTable(3)
	rt.insert(1, 0)
	rt.insert(2, 1)
	rt.insert(3, 0)
	// Touch 1 so 2 becomes LRU.
	rt.lookup(1)
	rt.insert(4, 1)
	if _, ok := rt.lookup(2); ok {
		t.Error("LRU entry 2 not evicted")
	}
	for _, r := range []memtypes.RegionID{1, 3, 4} {
		if _, ok := rt.lookup(r); !ok {
			t.Errorf("entry %d missing", r)
		}
	}
	if rt.len() != 3 {
		t.Errorf("len = %d, want 3", rt.len())
	}
}

func TestRegionTableRefreshOnInsert(t *testing.T) {
	rt := newRegionTable(2)
	rt.insert(1, 0)
	rt.insert(2, 0)
	rt.insert(1, 1) // refresh 1; 2 is now LRU
	rt.insert(3, 0)
	if _, ok := rt.lookup(2); ok {
		t.Error("entry 2 should have been evicted")
	}
	if _, ok := rt.lookup(1); !ok {
		t.Error("refreshed entry 1 evicted")
	}
}

func TestRegionTableCapacityOne(t *testing.T) {
	rt := newRegionTable(1)
	rt.insert(1, 0)
	rt.insert(2, 1)
	if _, ok := rt.lookup(1); ok {
		t.Error("capacity-1 table retained old entry")
	}
	if w, ok := rt.lookup(2); !ok || w != 1 {
		t.Error("capacity-1 table lost newest entry")
	}
}

func TestRegionTableZeroCapacityClamped(t *testing.T) {
	rt := newRegionTable(0)
	rt.insert(1, 0)
	if _, ok := rt.lookup(1); !ok {
		t.Error("clamped table unusable")
	}
}

func TestRegionTableStorage(t *testing.T) {
	// Paper Section VI-C: 64 entries x 20 bits = 160 bytes per table.
	rt := newRegionTable(64)
	if got := rt.storageBytes(); got != 160 {
		t.Errorf("storage = %d bytes, want 160", got)
	}
}

func TestRegionTableChurn(t *testing.T) {
	rt := newRegionTable(8)
	for i := 0; i < 10000; i++ {
		rt.insert(memtypes.RegionID(i%32), i%2)
		if rt.len() > 8 {
			t.Fatalf("table overflowed: %d entries", rt.len())
		}
	}
	// The most recent 8 distinct regions must be present.
	for i := 9999; i > 9999-8; i-- {
		if _, ok := rt.lookup(memtypes.RegionID(i % 32)); !ok {
			t.Errorf("recent region %d missing", i%32)
		}
	}
}
