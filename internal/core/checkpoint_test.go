package core

import (
	"testing"

	"accord/internal/ckpt"
	"accord/internal/memtypes"
	"accord/internal/xrand"
)

// exercise drives a policy through a deterministic access pattern and
// returns a trace of its decisions.
func exercise(p Policy, n int, seed int64) []int {
	rng := xrand.New(seed)
	var out []int
	buf := make([]int, 0, 8)
	for i := 0; i < n; i++ {
		set := uint64(rng.Intn(64))
		tag := uint64(rng.Uint64() % 1024)
		region := memtypes.RegionID(rng.Intn(128))
		switch i % 3 {
		case 0:
			w := p.PredictWay(set, tag, region)
			p.ObserveAccess(set, tag, region, w, i%2 == 0)
			out = append(out, w)
		case 1:
			w := p.InstallWay(set, tag, region)
			p.ObserveInstall(set, tag, region, w)
			out = append(out, w)
		default:
			out = append(out, len(p.CandidateWays(tag, buf[:0])))
		}
	}
	return out
}

// policies returns one instance of every checkpointable policy.
func policies(seed int64) map[string]Policy {
	geom := Geometry{Sets: 64, Ways: 4}
	return map[string]Policy{
		"rand":       NewRand(geom, seed),
		"mru":        NewMRU(geom, seed),
		"partialtag": NewPartialTag(geom, 4, seed),
		"accord":     NewACCORD(DefaultACCORD(geom, seed)),
	}
}

// TestPolicyRoundTrip snapshots a warmed policy, restores it into a
// fresh instance built from a DIFFERENT seed, and requires the
// continuation traces to match exactly — the restore must overwrite
// every decision-relevant bit.
func TestPolicyRoundTrip(t *testing.T) {
	for name, p := range policies(1) {
		t.Run(name, func(t *testing.T) {
			exercise(p, 5000, 11)
			e := ckpt.NewEncoder(0)
			p.(Checkpointable).Snapshot(e)
			blob := e.Finish()

			fresh := policies(99)[name]
			d, err := ckpt.NewDecoderChecked(blob)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.(Checkpointable).Restore(d); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if d.Remaining() != 0 {
				t.Fatalf("%d bytes left after restore", d.Remaining())
			}
			want := exercise(p, 2000, 23)
			got := exercise(fresh, 2000, 23)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("decision %d diverged: %d != %d", i, want[i], got[i])
				}
			}
			if name == "accord" {
				a, b := p.(*ACCORD), fresh.(*ACCORD)
				ah1, am1, al1, an1 := a.TableStats()
				bh1, bm1, bl1, bn1 := b.TableStats()
				if ah1 != bh1 || am1 != bm1 || al1 != bl1 || an1 != bn1 {
					t.Error("RIT/RLT diagnostic counters diverged after restore")
				}
			}
		})
	}
}

// TestPolicyRestoreRejectsBadInput feeds version bumps and truncations
// to every policy Restore; all must error, none may panic.
func TestPolicyRestoreRejectsBadInput(t *testing.T) {
	for name, p := range policies(1) {
		t.Run(name, func(t *testing.T) {
			exercise(p, 1000, 5)
			e := ckpt.NewEncoder(0)
			p.(Checkpointable).Snapshot(e)
			payload := e.Finish()
			payload = payload[:len(payload)-4]

			bad := append([]byte{payload[0] ^ 0x7F}, payload[1:]...)
			if err := policies(1)[name].(Checkpointable).Restore(ckpt.NewDecoder(bad)); err == nil {
				t.Error("version-bumped snapshot accepted")
			}
			for n := 0; n < len(payload); n += 1 + n/16 {
				if err := policies(1)[name].(Checkpointable).Restore(ckpt.NewDecoder(payload[:n])); err == nil {
					t.Errorf("truncation to %d bytes accepted", n)
				}
			}
		})
	}
}

// TestRegionTableLogicalRoundTrip pins the logical LRU codec: recency
// order and contents survive, including subsequent eviction order.
func TestRegionTableLogicalRoundTrip(t *testing.T) {
	a := NewACCORD(DefaultACCORD(Geometry{Sets: 64, Ways: 2}, 3))
	// Fill the RIT past capacity so the LRU chain is nontrivial.
	for i := 0; i < 200; i++ {
		a.rit.insert(memtypes.RegionID(i%90), i%2)
	}
	e := ckpt.NewEncoder(0)
	a.rit.snapshot(e)
	blob := e.Finish()
	d := ckpt.NewDecoder(blob[:len(blob)-4])

	restored := newRegionTable(a.rit.cap)
	if err := restored.restore(d, 2); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if restored.len() != a.rit.len() {
		t.Fatalf("len %d != %d", restored.len(), a.rit.len())
	}
	// Same contents and recency: evict everything from both by inserting
	// fresh regions and comparing which old entries survive each step.
	for i := 0; i < a.rit.cap; i++ {
		wa, wb := a.rit.tail, restored.tail
		if a.rit.slots[wa].region != restored.slots[wb].region ||
			a.rit.slots[wa].way != restored.slots[wb].way {
			t.Fatalf("LRU entry %d diverged: (%d,%d) != (%d,%d)", i,
				a.rit.slots[wa].region, a.rit.slots[wa].way,
				restored.slots[wb].region, restored.slots[wb].way)
		}
		a.rit.insert(memtypes.RegionID(1000+i), 0)
		restored.insert(memtypes.RegionID(1000+i), 0)
	}
}

// TestRegionTableRestoreRejectsDuplicates guards the duplicate-region
// validation.
func TestRegionTableRestoreRejectsDuplicates(t *testing.T) {
	e := ckpt.NewEncoder(0)
	e.U8(regionTabVersion)
	e.U32(4) // cap
	e.U32(2) // count
	e.U64(7)
	e.U8(0)
	e.U64(7) // duplicate region
	e.U8(1)
	blob := e.Finish()
	if err := newRegionTable(4).restore(ckpt.NewDecoder(blob[:len(blob)-4]), 2); err == nil {
		t.Error("duplicate region accepted")
	}
}
