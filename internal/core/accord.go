package core

import (
	"accord/internal/xrand"
	"fmt"
	"math"
	"strings"

	"accord/internal/memtypes"
	"accord/internal/metrics"
)

// ACCORDConfig selects which of the paper's way-steering mechanisms an
// ACCORD policy instance applies.
type ACCORDConfig struct {
	Geom Geometry

	// UsePWS enables Probabilistic Way-Steering (Section IV-B): installs
	// are steered to the tag-derived preferred way with probability PIP,
	// and lookups statically predict the preferred way.
	UsePWS bool
	// PIP is the Preferred-way Install Probability. 0.5 is the unbiased
	// 2-way baseline, 1.0 degenerates to direct-mapped; the paper settles
	// on 0.85.
	PIP float64

	// UseGWS enables Ganged Way-Steering (Section IV-C): installs follow
	// the way chosen for an earlier line of the same 4 KB region (RIT) and
	// predictions follow the last way seen for the region (RLT).
	UseGWS bool
	// RITEntries and RLTEntries size the two region tables; the paper uses
	// 64 entries each (320 bytes total).
	RITEntries, RLTEntries int

	// UseSWS enables Skewed Way-Steering (Section V-A): a line may reside
	// only in its preferred way or a small number of tag-hashed alternate
	// ways, cutting miss confirmation to k+1 probes in an N-way cache.
	UseSWS bool
	// SWSAlternates is the number of alternate locations k in SWS(N,k+1).
	// The paper evaluates one alternate (SWS(N,2)) and sketches the
	// multi-alternate extension ("SWS can be extended to support multiple
	// Alternate locations for flexibility, albeit at higher cost of
	// miss-confirmation"); zero selects the paper's single alternate.
	SWSAlternates int

	Seed int64
}

// DefaultACCORD returns the paper's full configuration for a geometry:
// PWS with PIP=85%, GWS with 64-entry tables, and SWS when the cache has
// more than two ways.
func DefaultACCORD(geom Geometry, seed int64) ACCORDConfig {
	return ACCORDConfig{
		Geom:       geom,
		UsePWS:     true,
		PIP:        0.85,
		UseGWS:     true,
		RITEntries: 64,
		RLTEntries: 64,
		UseSWS:     geom.Ways > 2,
		Seed:       seed,
	}
}

// Validate reports configuration errors.
func (c ACCORDConfig) Validate() error {
	switch {
	case c.Geom.Ways < 1:
		return fmt.Errorf("accord: ways = %d, must be >= 1", c.Geom.Ways)
	case c.Geom.Ways&(c.Geom.Ways-1) != 0:
		return fmt.Errorf("accord: ways = %d, must be a power of two", c.Geom.Ways)
	case c.Geom.Sets == 0 || c.Geom.Sets&(c.Geom.Sets-1) != 0:
		return fmt.Errorf("accord: sets = %d, must be a nonzero power of two", c.Geom.Sets)
	case c.UsePWS && (c.PIP < 0 || c.PIP > 1):
		return fmt.Errorf("accord: PIP = %v, must be in [0,1]", c.PIP)
	case c.UseGWS && (c.RITEntries <= 0 || c.RLTEntries <= 0):
		return fmt.Errorf("accord: GWS table sizes %d/%d must be positive", c.RITEntries, c.RLTEntries)
	case c.UseSWS && c.Geom.Ways < 4:
		return fmt.Errorf("accord: SWS needs >= 4 ways, got %d", c.Geom.Ways)
	case c.UseSWS && c.SWSAlternates < 0:
		return fmt.Errorf("accord: SWSAlternates = %d, must be >= 0", c.SWSAlternates)
	case c.UseSWS && c.SWSAlternates >= c.Geom.Ways:
		return fmt.Errorf("accord: SWSAlternates = %d leaves no restriction in a %d-way cache",
			c.SWSAlternates, c.Geom.Ways)
	}
	return nil
}

// alternates returns the configured alternate count (default 1).
func (c ACCORDConfig) alternates() int {
	if c.SWSAlternates <= 0 {
		return 1
	}
	return c.SWSAlternates
}

// ACCORD implements the coordinated way-install/way-prediction policy.
type ACCORD struct {
	cfg     ACCORDConfig
	ways    int
	wayMask uint64
	wayBits uint
	rng     *xrand.Rand

	rit, rlt    *regionTable // nil unless UseGWS
	candScratch []int        // scratch for validCandidate

	// Diagnostics.
	ritHits, ritMisses uint64
	rltHits, rltMisses uint64
}

// NewACCORD builds the policy; it panics on invalid configuration (a
// programming error in this codebase).
func NewACCORD(cfg ACCORDConfig) *ACCORD {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	a := &ACCORD{
		cfg:     cfg,
		ways:    cfg.Geom.Ways,
		wayMask: uint64(cfg.Geom.Ways - 1),
		wayBits: bitsFor(cfg.Geom.Ways),
		rng:     xrand.New(cfg.Seed),
	}
	a.candScratch = make([]int, 0, cfg.Geom.Ways)
	if cfg.UseGWS {
		a.rit = newRegionTable(cfg.RITEntries)
		a.rlt = newRegionTable(cfg.RLTEntries)
	}
	return a
}

// Name implements Policy.
func (a *ACCORD) Name() string {
	var parts []string
	if a.cfg.UsePWS {
		parts = append(parts, fmt.Sprintf("pws(%.0f%%)", a.cfg.PIP*100))
	}
	if a.cfg.UseGWS {
		parts = append(parts, "gws")
	}
	if len(parts) == 0 {
		parts = append(parts, "unbiased")
	}
	name := strings.Join(parts, "+")
	if a.cfg.UseSWS {
		name = fmt.Sprintf("%s+sws(%d,%d)", name, a.ways, a.cfg.alternates()+1)
	}
	return name
}

// StorageBytes implements Policy: PWS and SWS are stateless; only the GWS
// region tables cost SRAM (Table IX: 320 bytes).
func (a *ACCORD) StorageBytes() int64 {
	if !a.cfg.UseGWS {
		return 0
	}
	return a.rit.storageBytes() + a.rlt.storageBytes()
}

// PreferredWay returns the way the tag steers to: the low way-bits of the
// tag (Figure 5a; even tags to way 0, odd to way 1 in a 2-way cache).
func (a *ACCORD) PreferredWay(tag uint64) int {
	return int(tag & a.wayMask)
}

// AlternateWay returns the first SWS alternate location (Section V-A):
// scan way-bit-wide groups of the tag from the third LSB group upward and
// take the first group that differs from the preferred way; if every
// group matches, invert the preferred way.
func (a *ACCORD) AlternateWay(tag uint64) int {
	return a.alternateWays(tag, make([]int, 0, 1), 1)[0]
}

// alternateWays appends k distinct alternates (all different from the
// preferred way) to buf, extending the paper's hash: successive tag
// groups supply candidates; if the tag runs out of distinct groups the
// remaining alternates rotate away from the preferred way.
func (a *ACCORD) alternateWays(tag uint64, buf []int, k int) []int {
	pref := int(tag & a.wayMask)
	used := 1 << uint(pref)
	target := len(buf) + k
	for shift := a.wayBits; shift < 64 && len(buf) < target; shift += a.wayBits {
		cand := int((tag >> shift) & a.wayMask)
		if used&(1<<uint(cand)) == 0 {
			buf = append(buf, cand)
			used |= 1 << uint(cand)
		}
	}
	// Degenerate tags (all groups equal): fill deterministically, starting
	// from the inverted preferred way as in the paper's 1-alternate case.
	next := int(^uint64(pref) & a.wayMask)
	for len(buf) < target {
		if used&(1<<uint(next)) == 0 {
			buf = append(buf, next)
			used |= 1 << uint(next)
		}
		next = (next + 1) % a.ways
	}
	return buf
}

// CandidateWays implements Policy.
func (a *ACCORD) CandidateWays(tag uint64, buf []int) []int {
	if a.cfg.UseSWS {
		buf = append(buf[:0], a.PreferredWay(tag))
		return a.alternateWays(tag, buf, a.cfg.alternates())
	}
	return allWays(a.ways, buf)
}

// validCandidate reports whether way is one of the allowed locations for
// tag; with SWS disabled every way is allowed.
func (a *ACCORD) validCandidate(tag uint64, way int) bool {
	if !a.cfg.UseSWS {
		return way >= 0 && way < a.ways
	}
	for _, w := range a.CandidateWays(tag, a.candScratch[:0]) {
		if w == way {
			return true
		}
	}
	return false
}

// PredictWay implements Policy. GWS predicts the last way seen for the
// region when the RLT hits; otherwise PWS predicts the preferred way; with
// both disabled the prediction is random (the unbiased baseline).
func (a *ACCORD) PredictWay(set, tag uint64, region memtypes.RegionID) int {
	if a.cfg.UseGWS {
		if way, ok := a.rlt.lookup(region); ok {
			a.rltHits++
			if a.validCandidate(tag, way) {
				return way
			}
		} else {
			a.rltMisses++
		}
	}
	if a.cfg.UsePWS {
		return a.PreferredWay(tag)
	}
	return a.rng.Intn(a.ways)
}

// InstallWay implements Policy. GWS follows the region's recent install
// way when the RIT hits; otherwise PWS steers to the preferred way with
// probability PIP (alternate/other ways with the remainder); with both
// disabled the install is unbiased random over the candidates.
func (a *ACCORD) InstallWay(set, tag uint64, region memtypes.RegionID) int {
	if a.cfg.UseGWS {
		if way, ok := a.rit.lookup(region); ok {
			a.ritHits++
			if a.validCandidate(tag, way) {
				return way
			}
		} else {
			a.ritMisses++
		}
	}
	if a.cfg.UsePWS {
		return a.pwsInstall(tag)
	}
	return a.randomCandidate(tag)
}

// pwsInstall steers to the preferred way with probability PIP, else
// uniformly to one of the other allowed ways.
func (a *ACCORD) pwsInstall(tag uint64) int {
	pref := a.PreferredWay(tag)
	if a.ways == 1 || a.rng.Float64() < a.cfg.PIP {
		return pref
	}
	if a.cfg.UseSWS {
		alts := a.alternateWays(tag, a.candScratch[:0], a.cfg.alternates())
		return alts[a.rng.Intn(len(alts))]
	}
	// Uniform over the ways other than the preferred one.
	w := a.rng.Intn(a.ways - 1)
	if w >= pref {
		w++
	}
	return w
}

func (a *ACCORD) randomCandidate(tag uint64) int {
	if a.cfg.UseSWS {
		cands := a.CandidateWays(tag, a.candScratch[:0])
		return cands[a.rng.Intn(len(cands))]
	}
	return a.rng.Intn(a.ways)
}

// ObserveAccess implements Policy: a hit refreshes the region's last-seen
// way in the RLT.
func (a *ACCORD) ObserveAccess(set, tag uint64, region memtypes.RegionID, way int, hit bool) {
	if a.cfg.UseGWS && hit {
		a.rlt.insert(region, way)
	}
}

// ObserveInstall implements Policy: the install way becomes both the
// region's recent install way (RIT) and its last-seen way (RLT).
func (a *ACCORD) ObserveInstall(set, tag uint64, region memtypes.RegionID, way int) {
	if a.cfg.UseGWS {
		a.rit.insert(region, way)
		a.rlt.insert(region, way)
	}
}

// FilterMiss implements Policy; ACCORD keeps no per-line residency
// metadata so it can never rule a line out.
func (a *ACCORD) FilterMiss(set, tag uint64) bool { return false }

// TableStats reports RIT/RLT hit counters for diagnostics.
func (a *ACCORD) TableStats() (ritHits, ritMisses, rltHits, rltMisses uint64) {
	return a.ritHits, a.ritMisses, a.rltHits, a.rltMisses
}

// RegisterMetrics publishes the policy's ganged-way-steering table
// behavior into r under prefix (e.g. "policy"): the RIT decides where
// installs gang, the RLT predicts the way of spatially nearby lines, and
// their hit rates are exactly what Figure 7's GWS argument depends on.
func (a *ACCORD) RegisterMetrics(r *metrics.Registry, prefix string) {
	r.CounterFunc(prefix+".rit_hits", "install steers that found their region in the RIT", func() uint64 { return a.ritHits })
	r.CounterFunc(prefix+".rit_misses", "install steers whose region was absent from the RIT", func() uint64 { return a.ritMisses })
	r.CounterFunc(prefix+".rlt_hits", "way predictions that found their region in the RLT", func() uint64 { return a.rltHits })
	r.CounterFunc(prefix+".rlt_misses", "way predictions whose region was absent from the RLT", func() uint64 { return a.rltMisses })
	r.GaugeFunc(prefix+".rlt_hit_rate_pct", "RLT hit rate, percent (absent before any prediction)", func() float64 {
		total := a.rltHits + a.rltMisses
		if total == 0 {
			return math.NaN()
		}
		return 100 * float64(a.rltHits) / float64(total)
	})
	r.GaugeFunc(prefix+".storage_bytes", "SRAM metadata cost of the policy", func() float64 {
		return float64(a.StorageBytes())
	})
}
