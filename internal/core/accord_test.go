package core

import (
	"math"
	"testing"
	"testing/quick"

	"accord/internal/memtypes"
)

func geom2() Geometry { return Geometry{Sets: 1024, Ways: 2} }
func geom4() Geometry { return Geometry{Sets: 1024, Ways: 4} }
func geom8() Geometry { return Geometry{Sets: 1024, Ways: 8} }

func pwsOnly(g Geometry, pip float64) *ACCORD {
	return NewACCORD(ACCORDConfig{Geom: g, UsePWS: true, PIP: pip, Seed: 1})
}

func gwsOnly(g Geometry) *ACCORD {
	return NewACCORD(ACCORDConfig{Geom: g, UseGWS: true, RITEntries: 64, RLTEntries: 64, Seed: 1})
}

func TestACCORDConfigValidate(t *testing.T) {
	good := DefaultACCORD(geom2(), 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []ACCORDConfig{
		{Geom: Geometry{Sets: 1024, Ways: 0}},
		{Geom: Geometry{Sets: 1024, Ways: 3}},
		{Geom: Geometry{Sets: 1000, Ways: 2}},
		{Geom: Geometry{Sets: 0, Ways: 2}},
		{Geom: geom2(), UsePWS: true, PIP: 1.5},
		{Geom: geom2(), UsePWS: true, PIP: -0.1},
		{Geom: geom2(), UseGWS: true, RITEntries: 0, RLTEntries: 64},
		{Geom: geom2(), UseSWS: true}, // SWS needs >= 4 ways
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d passed validation", i)
		}
	}
}

func TestDefaultACCORDEnablesSWSOnlyAbove2Ways(t *testing.T) {
	if DefaultACCORD(geom2(), 1).UseSWS {
		t.Error("2-way default enabled SWS")
	}
	if !DefaultACCORD(geom8(), 1).UseSWS {
		t.Error("8-way default did not enable SWS")
	}
}

func TestPreferredWayParity(t *testing.T) {
	a := pwsOnly(geom2(), 0.85)
	// Figure 5(a): even tags prefer way 0, odd tags way 1.
	if a.PreferredWay(0x10) != 0 || a.PreferredWay(0x11) != 1 {
		t.Error("2-way preferred way is not tag parity")
	}
	a4 := pwsOnly(geom4(), 0.85)
	for tag := uint64(0); tag < 8; tag++ {
		if got := a4.PreferredWay(tag); got != int(tag&3) {
			t.Errorf("4-way preferred(%d) = %d, want %d", tag, got, tag&3)
		}
	}
}

func TestAlternateWayNeverPreferred(t *testing.T) {
	for _, g := range []Geometry{geom4(), geom8()} {
		a := NewACCORD(ACCORDConfig{Geom: g, UseSWS: true, Seed: 1})
		f := func(tag uint64) bool {
			alt := a.AlternateWay(tag)
			return alt != a.PreferredWay(tag) && alt >= 0 && alt < g.Ways
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%d-way: %v", g.Ways, err)
		}
	}
}

func TestAlternateWayFirstDifferingGroup(t *testing.T) {
	a := NewACCORD(ACCORDConfig{Geom: geom4(), UseSWS: true, Seed: 1})
	// tag = 0b..._01_11: preferred = 3 (bits 0-1), first group above = 01 -> 1.
	if got := a.AlternateWay(0b0111); got != 1 {
		t.Errorf("alternate(0b0111) = %d, want 1", got)
	}
	// All groups identical: 0b1111... every group = 3 -> invert -> 0.
	allOnes := ^uint64(0)
	if got := a.AlternateWay(allOnes); got != 0 {
		t.Errorf("alternate(all-ones) = %d, want 0 (inverted preferred)", got)
	}
	if got := a.AlternateWay(0); got != 3 {
		t.Errorf("alternate(0) = %d, want 3 (inverted preferred)", got)
	}
}

func TestCandidateWays(t *testing.T) {
	buf := make([]int, 0, 8)
	a2 := pwsOnly(geom2(), 0.85)
	c := a2.CandidateWays(7, buf)
	if len(c) != 2 || c[0] != 0 || c[1] != 1 {
		t.Errorf("2-way candidates = %v", c)
	}
	sws := NewACCORD(ACCORDConfig{Geom: geom8(), UseSWS: true, Seed: 1})
	c = sws.CandidateWays(0x1234, buf)
	if len(c) != 2 {
		t.Fatalf("SWS candidates = %v, want exactly 2", c)
	}
	if c[0] != sws.PreferredWay(0x1234) || c[1] != sws.AlternateWay(0x1234) {
		t.Errorf("SWS candidates = %v, want [pref alt]", c)
	}
	full := NewACCORD(DefaultACCORDWithoutSWS(geom8(), 1))
	if got := full.CandidateWays(0x1234, buf); len(got) != 8 {
		t.Errorf("non-SWS 8-way candidates = %v, want 8 ways", got)
	}
}

// DefaultACCORDWithoutSWS is a test helper mirroring DefaultACCORD with
// SWS forced off.
func DefaultACCORDWithoutSWS(g Geometry, seed int64) ACCORDConfig {
	cfg := DefaultACCORD(g, seed)
	cfg.UseSWS = false
	return cfg
}

func TestPWSInstallDistribution(t *testing.T) {
	const n = 100000
	for _, pip := range []float64{0.5, 0.7, 0.85, 1.0} {
		a := pwsOnly(geom2(), pip)
		pref := 0
		for i := 0; i < n; i++ {
			// Even tag: preferred way 0.
			if a.InstallWay(uint64(i)&1023, 2, memtypes.RegionID(i)) == 0 {
				pref++
			}
		}
		got := float64(pref) / n
		if math.Abs(got-pip) > 0.01 {
			t.Errorf("PIP %.2f: measured preferred-install rate %.3f", pip, got)
		}
	}
}

func TestPWSPredictsPreferred(t *testing.T) {
	a := pwsOnly(geom2(), 0.85)
	for tag := uint64(0); tag < 16; tag++ {
		if got := a.PredictWay(0, tag, 0); got != int(tag&1) {
			t.Errorf("predict(tag=%d) = %d, want %d", tag, got, tag&1)
		}
	}
}

func TestPWSInstallSpreadOverNonPreferred(t *testing.T) {
	a := pwsOnly(geom8(), 0.0) // never the preferred way
	counts := make([]int, 8)
	for i := 0; i < 80000; i++ {
		counts[a.InstallWay(0, 0, 0)]++ // preferred way = 0
	}
	if counts[0] != 0 {
		t.Fatalf("PIP=0 still installed into preferred way %d times", counts[0])
	}
	for w := 1; w < 8; w++ {
		frac := float64(counts[w]) / 80000
		if math.Abs(frac-1.0/7) > 0.02 {
			t.Errorf("way %d fraction = %.3f, want ~%.3f", w, frac, 1.0/7)
		}
	}
}

func TestGWSGangedInstall(t *testing.T) {
	a := gwsOnly(geom2())
	region := memtypes.RegionID(5)
	first := a.InstallWay(0, 0, region)
	a.ObserveInstall(0, 0, region, first)
	// Subsequent installs from the same region follow the first.
	for set := uint64(1); set < 20; set++ {
		if got := a.InstallWay(set, 0, region); got != first {
			t.Fatalf("set %d installed to way %d, want ganged way %d", set, got, first)
		}
		a.ObserveInstall(set, 0, region, first)
	}
}

func TestGWSPredictionFollowsLastSeen(t *testing.T) {
	a := gwsOnly(geom2())
	region := memtypes.RegionID(9)
	a.ObserveAccess(3, 1, region, 1, true)
	if got := a.PredictWay(4, 1, region); got != 1 {
		t.Errorf("predict = %d, want last-seen way 1", got)
	}
	// New hit in the other way retrains the RLT.
	a.ObserveAccess(5, 1, region, 0, true)
	if got := a.PredictWay(6, 1, region); got != 0 {
		t.Errorf("predict after retrain = %d, want 0", got)
	}
}

func TestGWSMissDoesNotTrainRLT(t *testing.T) {
	a := gwsOnly(geom2())
	region := memtypes.RegionID(11)
	a.ObserveAccess(0, 0, region, 0, false) // a miss
	_, _, rltHits, _ := a.TableStats()
	a.PredictWay(0, 0, region)
	if _, _, h, _ := a.TableStats(); h != rltHits {
		t.Error("RLT hit recorded for a region trained only by a miss")
	}
}

func TestACCORDCombinedFallsBackToPWS(t *testing.T) {
	cfg := DefaultACCORD(geom2(), 3)
	a := NewACCORD(cfg)
	// Region never seen: prediction = PWS preferred way.
	if got := a.PredictWay(0, 3, memtypes.RegionID(1234)); got != 1 {
		t.Errorf("fallback prediction = %d, want preferred 1", got)
	}
}

func TestSWSInstallStaysInCandidates(t *testing.T) {
	a := NewACCORD(DefaultACCORD(geom8(), 7))
	f := func(tagRaw uint32, regRaw uint16) bool {
		tag := uint64(tagRaw)
		region := memtypes.RegionID(regRaw)
		w := a.InstallWay(0, tag, region)
		a.ObserveInstall(0, tag, region, w)
		return w == a.PreferredWay(tag) || w == a.AlternateWay(tag)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestSWSPredictionStaysInCandidates(t *testing.T) {
	a := NewACCORD(DefaultACCORD(geom8(), 7))
	f := func(tagRaw uint32, regRaw uint16) bool {
		tag := uint64(tagRaw)
		region := memtypes.RegionID(regRaw)
		w := a.PredictWay(0, tag, region)
		return w == a.PreferredWay(tag) || w == a.AlternateWay(tag)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestACCORDStorage(t *testing.T) {
	// Table IX: PWS 0 B, GWS 320 B, SWS 0 B, total 320 B — independent of
	// cache size.
	full := Geometry{Sets: 32 << 20, Ways: 2} // 4 GB, 2-way
	pws := pwsOnly(full, 0.85)
	if pws.StorageBytes() != 0 {
		t.Errorf("PWS storage = %d, want 0", pws.StorageBytes())
	}
	acc := NewACCORD(DefaultACCORD(full, 1))
	if acc.StorageBytes() != 320 {
		t.Errorf("ACCORD storage = %d bytes, want 320", acc.StorageBytes())
	}
	sws := NewACCORD(DefaultACCORD(Geometry{Sets: 8 << 20, Ways: 8}, 1))
	if sws.StorageBytes() != 320 {
		t.Errorf("ACCORD SWS(8,2) storage = %d bytes, want 320", sws.StorageBytes())
	}
}

func TestACCORDName(t *testing.T) {
	if got := NewACCORD(DefaultACCORD(geom2(), 1)).Name(); got != "pws(85%)+gws" {
		t.Errorf("name = %q", got)
	}
	if got := NewACCORD(DefaultACCORD(geom8(), 1)).Name(); got != "pws(85%)+gws+sws(8,2)" {
		t.Errorf("name = %q", got)
	}
	if got := gwsOnly(geom2()).Name(); got != "gws" {
		t.Errorf("name = %q", got)
	}
	unb := NewACCORD(ACCORDConfig{Geom: geom2(), Seed: 1})
	if got := unb.Name(); got != "unbiased" {
		t.Errorf("name = %q", got)
	}
}

func TestACCORDFilterMissAlwaysFalse(t *testing.T) {
	a := NewACCORD(DefaultACCORD(geom2(), 1))
	if a.FilterMiss(0, 0) {
		t.Error("ACCORD claimed certain miss")
	}
}

func TestUnbiasedInstallUniform(t *testing.T) {
	a := NewACCORD(ACCORDConfig{Geom: geom2(), Seed: 2})
	zero := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if a.InstallWay(0, 0, memtypes.RegionID(i)) == 0 {
			zero++
		}
	}
	if frac := float64(zero) / n; math.Abs(frac-0.5) > 0.01 {
		t.Errorf("unbiased install way-0 fraction = %.3f, want ~0.5", frac)
	}
}

func TestSWSMultiAlternate(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		a := NewACCORD(ACCORDConfig{Geom: geom8(), UseSWS: true, SWSAlternates: k, Seed: 1})
		buf := make([]int, 0, 8)
		for tag := uint64(0); tag < 4096; tag += 37 {
			cands := a.CandidateWays(tag, buf)
			if len(cands) != k+1 {
				t.Fatalf("k=%d: %d candidates, want %d", k, len(cands), k+1)
			}
			seen := map[int]bool{}
			for _, w := range cands {
				if w < 0 || w >= 8 {
					t.Fatalf("k=%d tag=%d: way %d out of range", k, tag, w)
				}
				if seen[w] {
					t.Fatalf("k=%d tag=%d: duplicate way %d in %v", k, tag, w, cands)
				}
				seen[w] = true
			}
			if cands[0] != a.PreferredWay(tag) {
				t.Fatalf("k=%d: first candidate %d is not the preferred way", k, cands[0])
			}
		}
	}
}

func TestSWSMultiAlternateExtendsSingle(t *testing.T) {
	// SWS(N,2)'s alternate must be the first alternate of SWS(N,k).
	one := NewACCORD(ACCORDConfig{Geom: geom8(), UseSWS: true, Seed: 1})
	three := NewACCORD(ACCORDConfig{Geom: geom8(), UseSWS: true, SWSAlternates: 3, Seed: 1})
	buf := make([]int, 0, 8)
	for tag := uint64(0); tag < 1000; tag++ {
		if one.AlternateWay(tag) != three.CandidateWays(tag, buf)[1] {
			t.Fatalf("tag %d: first alternate differs between k=1 and k=3", tag)
		}
	}
}

func TestSWSMultiAlternateDegenerateTags(t *testing.T) {
	// An all-ones tag has identical groups everywhere; the alternates must
	// still be distinct.
	a := NewACCORD(ACCORDConfig{Geom: geom8(), UseSWS: true, SWSAlternates: 5, Seed: 1})
	cands := a.CandidateWays(^uint64(0), make([]int, 0, 8))
	seen := map[int]bool{}
	for _, w := range cands {
		if seen[w] {
			t.Fatalf("duplicate way %d in %v", w, cands)
		}
		seen[w] = true
	}
	if len(cands) != 6 {
		t.Fatalf("%d candidates, want 6", len(cands))
	}
}

func TestSWSAlternatesValidation(t *testing.T) {
	bad := []ACCORDConfig{
		{Geom: geom8(), UseSWS: true, SWSAlternates: -1},
		{Geom: geom8(), UseSWS: true, SWSAlternates: 8},
		{Geom: geom4(), UseSWS: true, SWSAlternates: 4},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad SWSAlternates config %d accepted", i)
		}
	}
}

func TestSWSMultiAlternateName(t *testing.T) {
	a := NewACCORD(ACCORDConfig{Geom: geom8(), UseSWS: true, SWSAlternates: 3, UsePWS: true, PIP: 0.85, Seed: 1})
	if got := a.Name(); got != "pws(85%)+sws(8,4)" {
		t.Errorf("name = %q, want pws(85%%)+sws(8,4)", got)
	}
}

func TestSWSMultiAlternateInstallStaysInCandidates(t *testing.T) {
	cfg := DefaultACCORD(geom8(), 7)
	cfg.SWSAlternates = 3
	a := NewACCORD(cfg)
	buf := make([]int, 0, 8)
	for i := 0; i < 5000; i++ {
		tag := uint64(i * 2654435761)
		region := memtypes.RegionID(i % 100)
		w := a.InstallWay(0, tag, region)
		a.ObserveInstall(0, tag, region, w)
		ok := false
		for _, c := range a.CandidateWays(tag, buf) {
			if c == w {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("install way %d outside candidates for tag %#x", w, tag)
		}
	}
}
