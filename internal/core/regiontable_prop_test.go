package core

import (
	"math/rand"
	"testing"

	"accord/internal/memtypes"
)

// refLRU is an obviously-correct reference model for the region table:
// a slice ordered most-recent-first.
type refLRU struct {
	cap     int
	entries []struct {
		region memtypes.RegionID
		way    int
	}
}

func (r *refLRU) lookup(region memtypes.RegionID) (int, bool) {
	for i, e := range r.entries {
		if e.region == region {
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
			r.entries = append([]struct {
				region memtypes.RegionID
				way    int
			}{e}, r.entries...)
			return e.way, true
		}
	}
	return 0, false
}

func (r *refLRU) insert(region memtypes.RegionID, way int) {
	for i, e := range r.entries {
		if e.region == region {
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
			break
		}
	}
	r.entries = append([]struct {
		region memtypes.RegionID
		way    int
	}{{region, way}}, r.entries...)
	if len(r.entries) > r.cap {
		r.entries = r.entries[:r.cap]
	}
}

// TestRegionTableMatchesReferenceModel drives the intrusive-LRU
// implementation and the reference model with the same random operation
// sequence and demands identical observable behaviour.
func TestRegionTableMatchesReferenceModel(t *testing.T) {
	for _, capacity := range []int{1, 2, 7, 64} {
		rt := newRegionTable(capacity)
		ref := &refLRU{cap: capacity}
		r := rand.New(rand.NewSource(int64(capacity)))
		for op := 0; op < 50000; op++ {
			region := memtypes.RegionID(r.Intn(3 * capacity))
			if r.Intn(2) == 0 {
				rt.insert(region, r.Intn(8))
				// Mirror with the same way value by re-seeding: use the
				// way from the table for comparison below instead.
				way, _ := rt.lookup(region)
				ref.insert(region, way)
				// lookup refreshed recency in both models identically.
				ref.lookup(region)
			} else {
				gw, gok := rt.lookup(region)
				ww, wok := ref.lookup(region)
				if gok != wok || (gok && gw != ww) {
					t.Fatalf("cap %d op %d: lookup(%d) = (%d,%v), ref (%d,%v)",
						capacity, op, region, gw, gok, ww, wok)
				}
			}
			if rt.len() != len(ref.entries) {
				t.Fatalf("cap %d op %d: len %d, ref %d", capacity, op, rt.len(), len(ref.entries))
			}
		}
	}
}
