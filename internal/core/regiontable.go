package core

import "accord/internal/memtypes"

// regionTable is the small fully-associative LRU table used by ganged
// way-steering: the Recent Install Table (RIT) and the Recent Lookup
// Table (RLT) are both instances. Entries map a 4 KB RegionID to a way.
// Capacity is tiny (64 entries in the paper), so an intrusive
// doubly-linked LRU over a fixed slot array keeps it allocation-free, and
// the region -> slot index is an open-addressed linear-probe array (kept
// at most quarter full) rather than a Go map — the table sits on the
// per-event path of every GWS lookup and install, where linear probing
// over an int32 array is roughly an order of magnitude cheaper than a
// map access.
type regionTable struct {
	cap   int
	slots []rtSlot
	probe []int32 // open-addressed index: slot+1, 0 = empty
	mask  uint64
	head  int // MRU slot, -1 when empty
	tail  int // LRU slot, -1 when empty
	used  int

	// memo is the slot of the most recent lookup/insert hit, -1 = none.
	// Consecutive events cluster in the same 4 KB region, so this skips
	// the probe walk for most hits. It is self-validating (the slot's
	// region is re-checked, so eviction/reuse simply misses) and derived
	// (snapshots serialize logical content only; restore rebuilds with a
	// cold memo).
	memo int32
}

type rtSlot struct {
	region     memtypes.RegionID
	way        uint8
	prev, next int32
}

// newRegionTable creates a table of the given capacity.
func newRegionTable(capacity int) *regionTable {
	if capacity <= 0 {
		capacity = 1
	}
	// Probe table at most 1/4 full: 4x capacity rounded up to a power of
	// two. Short probe chains matter more than the few hundred bytes.
	pn := 4
	for pn < 4*capacity {
		pn *= 2
	}
	return &regionTable{
		cap:   capacity,
		slots: make([]rtSlot, capacity),
		probe: make([]int32, pn),
		mask:  uint64(pn - 1),
		head:  -1,
		tail:  -1,
		memo:  -1,
	}
}

// entryBits is the storage cost of one entry: 1 valid bit + 19-bit region
// tag (paper Section IV-C-2); the way bit(s) are counted separately by the
// caller but the paper folds them into the 20-bit figure, which we follow.
const entryBits = 20

// storageBytes returns the SRAM cost of the table.
func (t *regionTable) storageBytes() int64 {
	return int64(t.cap) * entryBits / 8
}

// hashRegion spreads region bits with a Fibonacci multiplier; consecutive
// regions would otherwise cluster in one probe run.
func hashRegion(r memtypes.RegionID) uint64 {
	return uint64(r) * 0x9e3779b97f4a7c15
}

// findSlot returns the slot holding region, or -1. The probe table is
// never full, so the scan always terminates at an empty cell.
func (t *regionTable) findSlot(region memtypes.RegionID) int {
	i := hashRegion(region) & t.mask
	for {
		e := t.probe[i]
		if e == 0 {
			return -1
		}
		if s := int(e - 1); t.slots[s].region == region {
			return s
		}
		i = (i + 1) & t.mask
	}
}

// indexInsert records region -> slot; region must not be present.
func (t *regionTable) indexInsert(region memtypes.RegionID, slot int) {
	i := hashRegion(region) & t.mask
	for t.probe[i] != 0 {
		i = (i + 1) & t.mask
	}
	t.probe[i] = int32(slot + 1)
}

// indexDelete removes region from the probe array using backward-shift
// deletion, which keeps every remaining entry reachable without
// tombstones.
func (t *regionTable) indexDelete(region memtypes.RegionID) {
	i := hashRegion(region) & t.mask
	for {
		e := t.probe[i]
		if e == 0 {
			return // absent; nothing to delete
		}
		if t.slots[e-1].region == region {
			break
		}
		i = (i + 1) & t.mask
	}
	j := i
	for {
		t.probe[i] = 0
		for {
			j = (j + 1) & t.mask
			e := t.probe[j]
			if e == 0 {
				return
			}
			k := hashRegion(t.slots[e-1].region) & t.mask
			// The entry at j may move into the hole at i only if its home
			// position k does not lie in the cyclic interval (i, j].
			if i <= j {
				if i < k && k <= j {
					continue
				}
			} else if i < k || k <= j {
				continue
			}
			break
		}
		t.probe[i] = t.probe[j]
		i = j
	}
}

// lookup returns the way recorded for region, refreshing its recency.
func (t *regionTable) lookup(region memtypes.RegionID) (way int, ok bool) {
	if m := t.memo; m >= 0 && t.slots[m].region == region {
		t.moveToFront(int(m))
		return int(t.slots[m].way), true
	}
	slot := t.findSlot(region)
	if slot < 0 {
		return 0, false
	}
	t.memo = int32(slot)
	t.moveToFront(slot)
	return int(t.slots[slot].way), true
}

// insert records region -> way, evicting the LRU entry when full. An
// existing entry is updated and refreshed.
func (t *regionTable) insert(region memtypes.RegionID, way int) {
	if m := t.memo; m >= 0 && t.slots[m].region == region {
		t.slots[m].way = uint8(way)
		t.moveToFront(int(m))
		return
	}
	if slot := t.findSlot(region); slot >= 0 {
		t.memo = int32(slot)
		t.slots[slot].way = uint8(way)
		t.moveToFront(slot)
		return
	}
	var slot int
	if t.used < t.cap {
		slot = t.used
		t.used++
	} else {
		slot = t.tail
		t.unlink(slot)
		t.indexDelete(t.slots[slot].region)
	}
	t.slots[slot] = rtSlot{region: region, way: uint8(way), prev: -1, next: -1}
	t.pushFront(slot)
	t.indexInsert(region, slot)
	t.memo = int32(slot)
}

// len returns the number of live entries.
func (t *regionTable) len() int { return t.used }

func (t *regionTable) moveToFront(slot int) {
	if t.head == slot {
		return
	}
	t.unlink(slot)
	t.pushFront(slot)
}

func (t *regionTable) unlink(slot int) {
	s := &t.slots[slot]
	if s.prev >= 0 {
		t.slots[s.prev].next = s.next
	} else if t.head == slot {
		t.head = int(s.next)
	}
	if s.next >= 0 {
		t.slots[s.next].prev = s.prev
	} else if t.tail == slot {
		t.tail = int(s.prev)
	}
	s.prev, s.next = -1, -1
}

func (t *regionTable) pushFront(slot int) {
	s := &t.slots[slot]
	s.prev = -1
	s.next = int32(t.head)
	if t.head >= 0 {
		t.slots[t.head].prev = int32(slot)
	}
	t.head = slot
	if t.tail < 0 {
		t.tail = slot
	}
}
