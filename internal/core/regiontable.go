package core

import "accord/internal/memtypes"

// regionTable is the small fully-associative LRU table used by ganged
// way-steering: the Recent Install Table (RIT) and the Recent Lookup
// Table (RLT) are both instances. Entries map a 4 KB RegionID to a way.
// Capacity is tiny (64 entries in the paper), so an intrusive
// doubly-linked LRU over a fixed slot array keeps it allocation-free.
type regionTable struct {
	cap   int
	index map[memtypes.RegionID]int // region -> slot
	slots []rtSlot
	head  int // MRU slot, -1 when empty
	tail  int // LRU slot, -1 when empty
	used  int
}

type rtSlot struct {
	region     memtypes.RegionID
	way        uint8
	prev, next int
}

// newRegionTable creates a table of the given capacity.
func newRegionTable(capacity int) *regionTable {
	if capacity <= 0 {
		capacity = 1
	}
	return &regionTable{
		cap:   capacity,
		index: make(map[memtypes.RegionID]int, capacity),
		slots: make([]rtSlot, capacity),
		head:  -1,
		tail:  -1,
	}
}

// entryBits is the storage cost of one entry: 1 valid bit + 19-bit region
// tag (paper Section IV-C-2); the way bit(s) are counted separately by the
// caller but the paper folds them into the 20-bit figure, which we follow.
const entryBits = 20

// storageBytes returns the SRAM cost of the table.
func (t *regionTable) storageBytes() int64 {
	return int64(t.cap) * entryBits / 8
}

// lookup returns the way recorded for region, refreshing its recency.
func (t *regionTable) lookup(region memtypes.RegionID) (way int, ok bool) {
	slot, ok := t.index[region]
	if !ok {
		return 0, false
	}
	t.moveToFront(slot)
	return int(t.slots[slot].way), true
}

// insert records region -> way, evicting the LRU entry when full. An
// existing entry is updated and refreshed.
func (t *regionTable) insert(region memtypes.RegionID, way int) {
	if slot, ok := t.index[region]; ok {
		t.slots[slot].way = uint8(way)
		t.moveToFront(slot)
		return
	}
	var slot int
	if t.used < t.cap {
		slot = t.used
		t.used++
	} else {
		slot = t.tail
		t.unlink(slot)
		delete(t.index, t.slots[slot].region)
	}
	t.slots[slot] = rtSlot{region: region, way: uint8(way), prev: -1, next: -1}
	t.pushFront(slot)
	t.index[region] = slot
}

// len returns the number of live entries.
func (t *regionTable) len() int { return t.used }

func (t *regionTable) moveToFront(slot int) {
	if t.head == slot {
		return
	}
	t.unlink(slot)
	t.pushFront(slot)
}

func (t *regionTable) unlink(slot int) {
	s := &t.slots[slot]
	if s.prev >= 0 {
		t.slots[s.prev].next = s.next
	} else if t.head == slot {
		t.head = s.next
	}
	if s.next >= 0 {
		t.slots[s.next].prev = s.prev
	} else if t.tail == slot {
		t.tail = s.prev
	}
	s.prev, s.next = -1, -1
}

func (t *regionTable) pushFront(slot int) {
	s := &t.slots[slot]
	s.prev = -1
	s.next = t.head
	if t.head >= 0 {
		t.slots[t.head].prev = slot
	}
	t.head = slot
	if t.tail < 0 {
		t.tail = slot
	}
}
