package core

import (
	"math"
	"testing"

	"accord/internal/memtypes"
)

func TestGeometryLines(t *testing.T) {
	g := Geometry{Sets: 128, Ways: 4}
	if g.Lines() != 512 {
		t.Errorf("Lines = %d, want 512", g.Lines())
	}
}

func TestRandPolicy(t *testing.T) {
	p := NewRand(geom4(), 1)
	if p.Name() != "rand" || p.StorageBytes() != 0 {
		t.Error("rand policy metadata wrong")
	}
	if p.FilterMiss(0, 0) {
		t.Error("rand policy filtered a miss")
	}
	if got := p.CandidateWays(0, nil); len(got) != 4 {
		t.Errorf("candidates = %v", got)
	}
	// Random prediction accuracy over 4 ways is ~25% (Table II).
	hits, n := 0, 100000
	for i := 0; i < n; i++ {
		if p.PredictWay(0, 0, 0) == i%4 {
			hits++
		}
	}
	if frac := float64(hits) / float64(n); math.Abs(frac-0.25) > 0.01 {
		t.Errorf("rand prediction accuracy vs rotating way = %.3f, want ~0.25", frac)
	}
	// Install spreads over all ways.
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[p.InstallWay(0, 0, 0)] = true
	}
	if len(seen) != 4 {
		t.Errorf("installs covered %d ways, want 4", len(seen))
	}
	p.ObserveAccess(0, 0, 0, 0, true) // must not panic
	p.ObserveInstall(0, 0, 0, 0)
}

func TestMRUPolicyPredictsLastTouch(t *testing.T) {
	p := NewMRU(geom4(), 1)
	if p.Name() != "mru" {
		t.Error("name wrong")
	}
	p.ObserveInstall(7, 0, 0, 2)
	if got := p.PredictWay(7, 0, 0); got != 2 {
		t.Errorf("predict after install = %d, want 2", got)
	}
	p.ObserveAccess(7, 0, 0, 3, true)
	if got := p.PredictWay(7, 0, 0); got != 3 {
		t.Errorf("predict after hit = %d, want 3", got)
	}
	p.ObserveAccess(7, 0, 0, 1, false) // misses do not train
	if got := p.PredictWay(7, 0, 0); got != 3 {
		t.Errorf("predict after miss = %d, want 3", got)
	}
	// Other sets are independent.
	if got := p.PredictWay(8, 0, 0); got != 0 {
		t.Errorf("untouched set predicts %d, want 0", got)
	}
	if p.FilterMiss(0, 0) {
		t.Error("MRU filtered a miss")
	}
}

func TestMRUStorageTable2(t *testing.T) {
	// Table II: 4 MB overhead for the 4 GB cache. At 2 ways: 32 Mi sets
	// x 1 bit = 4 MiB.
	p := NewMRU(Geometry{Sets: 32 << 20, Ways: 2}, 1)
	if got := p.StorageBytes(); got != 4<<20 {
		t.Errorf("MRU storage = %d, want %d", got, 4<<20)
	}
	// 8-way: 3 bits per set, 4 Mi sets at 2 GB... verify formula directly:
	p8 := NewMRU(Geometry{Sets: 1024, Ways: 8}, 1)
	if got := p8.StorageBytes(); got != 1024*3/8 {
		t.Errorf("8-way MRU storage = %d, want %d", got, 1024*3/8)
	}
}

func TestPartialTagPredicts(t *testing.T) {
	p := NewPartialTag(geom4(), 4, 1)
	if p.Name() != "partialtag" {
		t.Error("name wrong")
	}
	p.ObserveInstall(3, 0xAB, 0, 2)
	if got := p.PredictWay(3, 0xAB, 0); got != 2 {
		t.Errorf("predict = %d, want 2", got)
	}
	// A different tag with the same low 4 bits false-matches.
	if got := p.PredictWay(3, 0x1B, 0); got != 2 {
		t.Errorf("false-match predict = %d, want 2", got)
	}
	// A tag with different low bits does not match anything: guaranteed miss.
	if !p.FilterMiss(3, 0xAC) {
		t.Error("FilterMiss false for a set with no partial match")
	}
	if p.FilterMiss(3, 0xAB) {
		t.Error("FilterMiss true for a resident partial tag")
	}
	// Empty sets are guaranteed misses.
	if !p.FilterMiss(9, 0xAB) {
		t.Error("FilterMiss false for an empty set")
	}
}

func TestPartialTagNoFalseNegatives(t *testing.T) {
	p := NewPartialTag(geom8(), 4, 1)
	// Install lines in every way; the resident way must always be found by
	// scanning from the prediction onward (the cache does this); here we
	// just require that FilterMiss never fires for a resident tag.
	for w := 0; w < 8; w++ {
		tag := uint64(w*16 + w) // distinct partials
		p.ObserveInstall(1, tag, 0, w)
		if p.FilterMiss(1, tag) {
			t.Errorf("FilterMiss fired for resident tag %#x", tag)
		}
	}
}

func TestPartialTagOverwriteOnReplace(t *testing.T) {
	p := NewPartialTag(geom2(), 4, 1)
	p.ObserveInstall(0, 0x5, 0, 1)
	p.ObserveInstall(0, 0x6, 0, 1) // replaces way 1
	if !p.FilterMiss(0, 0x5) {
		t.Error("stale partial tag survived replacement")
	}
	if p.FilterMiss(0, 0x6) {
		t.Error("new partial tag not installed")
	}
}

func TestPartialTagStorageTable2(t *testing.T) {
	// Table II: 32 MB for 4 bits x 64M lines.
	p := NewPartialTag(Geometry{Sets: 32 << 20, Ways: 2}, 4, 1)
	if got := p.StorageBytes(); got != 32<<20 {
		t.Errorf("partial-tag storage = %d, want %d", got, 32<<20)
	}
}

func TestPartialTagWidthClamped(t *testing.T) {
	p := NewPartialTag(geom2(), 0, 1)
	if p.bits != 4 {
		t.Errorf("bits = %d, want clamped to 4", p.bits)
	}
	p = NewPartialTag(geom2(), 99, 1)
	if p.bits != 4 {
		t.Errorf("bits = %d, want clamped to 4", p.bits)
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]uint{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 16: 4}
	for n, want := range cases {
		if got := bitsFor(n); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

var _ = []Policy{(*RandPolicy)(nil), (*MRUPolicy)(nil), (*PartialTagPolicy)(nil), (*ACCORD)(nil)}

func TestPoliciesHonorRegionArgument(t *testing.T) {
	// Policies that ignore regions must still accept any region value.
	for _, p := range []Policy{NewRand(geom2(), 1), NewMRU(geom2(), 1), NewPartialTag(geom2(), 4, 1)} {
		p.PredictWay(0, 0, memtypes.RegionID(1<<40))
		p.InstallWay(0, 0, memtypes.RegionID(1<<40))
	}
}
