package core

import (
	"math/rand"
	"testing"

	"accord/internal/memtypes"
)

// BenchmarkRegionTable measures the GWS steering-table hot path: a
// lookup/insert mix over a working set ~2x the table's capacity, so both
// the probe-hit and the evict-and-reinsert paths are exercised. It must
// report 0 allocs/op — the RIT and RLT are consulted on every DRAM-cache
// access.
func BenchmarkRegionTable(b *testing.B) {
	const capacity = 64
	t := newRegionTable(capacity)
	r := rand.New(rand.NewSource(1))
	regions := make([]memtypes.RegionID, 4096)
	for i := range regions {
		regions[i] = memtypes.RegionID(r.Intn(2 * capacity))
	}
	for i := 0; i < capacity; i++ {
		t.insert(memtypes.RegionID(i), i&1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		region := regions[i&(len(regions)-1)]
		if _, ok := t.lookup(region); !ok {
			t.insert(region, i&1)
		}
	}
}
