// Package core implements the paper's primary contribution: ACCORD,
// coordinated way-install and way-prediction for set-associative DRAM
// caches, through the Probabilistic (PWS), Ganged (GWS), and Skewed (SWS)
// way-steering policies — plus the conventional way predictors it is
// compared against (random, MRU, and partial-tag).
//
// A Policy couples the two decisions the paper coordinates:
//
//   - install: which way an incoming line is steered to, and
//   - prediction: which way a lookup probes first.
//
// The DRAM cache (internal/dramcache) drives a Policy through the
// interface below and keeps it informed of lookup and install outcomes.
package core

import (
	"accord/internal/xrand"

	"accord/internal/memtypes"
)

// Geometry describes the cache shape a policy operates on.
type Geometry struct {
	Sets uint64 // number of sets (power of two)
	Ways int    // associativity
}

// Lines returns the total line capacity.
func (g Geometry) Lines() uint64 { return g.Sets * uint64(g.Ways) }

// Policy couples way-install and way-prediction decisions. Implementations
// are deterministic given their seed and the call sequence.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string

	// StorageBytes is the SRAM cost of the policy's metadata for the
	// geometry it was built with (Tables II, IX, X).
	StorageBytes() int64

	// CandidateWays appends to buf the ways the line with this tag is
	// allowed to occupy, in miss-confirmation probe order. Most policies
	// allow every way; SWS restricts lines to two locations.
	CandidateWays(tag uint64, buf []int) []int

	// PredictWay returns the way a lookup should probe first.
	PredictWay(set, tag uint64, region memtypes.RegionID) int

	// InstallWay chooses the way to install an incoming line into.
	InstallWay(set, tag uint64, region memtypes.RegionID) int

	// ObserveAccess informs the policy of a resolved lookup: way is the
	// way the line was found in (valid only when hit is true).
	ObserveAccess(set, tag uint64, region memtypes.RegionID, way int, hit bool)

	// ObserveInstall informs the policy that the line was installed at way.
	ObserveInstall(set, tag uint64, region memtypes.RegionID, way int)

	// FilterMiss reports that the line is certainly absent, letting the
	// cache skip miss confirmation. Only metadata that sees every resident
	// line (the partial-tag predictor) can ever return true.
	FilterMiss(set, tag uint64) bool
}

// allWays fills buf with 0..ways-1.
func allWays(ways int, buf []int) []int {
	buf = buf[:0]
	for w := 0; w < ways; w++ {
		buf = append(buf, w)
	}
	return buf
}

// RandPolicy is the no-information baseline: predict a random way, install
// into a random way (the DRAM cache's update-free random replacement).
type RandPolicy struct {
	geom Geometry
	rng  *xrand.Rand
}

// NewRand builds the random policy.
func NewRand(geom Geometry, seed int64) *RandPolicy {
	return &RandPolicy{geom: geom, rng: xrand.New(seed)}
}

// Name implements Policy.
func (p *RandPolicy) Name() string { return "rand" }

// StorageBytes implements Policy; the random policy is stateless.
func (p *RandPolicy) StorageBytes() int64 { return 0 }

// CandidateWays implements Policy.
func (p *RandPolicy) CandidateWays(tag uint64, buf []int) []int {
	return allWays(p.geom.Ways, buf)
}

// PredictWay implements Policy.
func (p *RandPolicy) PredictWay(set, tag uint64, region memtypes.RegionID) int {
	return p.rng.Intn(p.geom.Ways)
}

// InstallWay implements Policy.
func (p *RandPolicy) InstallWay(set, tag uint64, region memtypes.RegionID) int {
	return p.rng.Intn(p.geom.Ways)
}

// ObserveAccess implements Policy.
func (p *RandPolicy) ObserveAccess(set, tag uint64, region memtypes.RegionID, way int, hit bool) {
}

// ObserveInstall implements Policy.
func (p *RandPolicy) ObserveInstall(set, tag uint64, region memtypes.RegionID, way int) {}

// FilterMiss implements Policy.
func (p *RandPolicy) FilterMiss(set, tag uint64) bool { return false }

// MRUPolicy predicts the most-recently-used way of each set (PSA-cache
// style, paper Section II-D). Install remains unbiased random. Its per-set
// storage is what makes it impractical at DRAM-cache scale: 4 MB for a
// 4 GB 2-way cache.
type MRUPolicy struct {
	geom Geometry
	rng  *xrand.Rand
	mru  []uint8
}

// NewMRU builds the MRU predictor.
func NewMRU(geom Geometry, seed int64) *MRUPolicy {
	return &MRUPolicy{
		geom: geom,
		rng:  xrand.New(seed),
		mru:  make([]uint8, geom.Sets),
	}
}

// Name implements Policy.
func (p *MRUPolicy) Name() string { return "mru" }

// StorageBytes implements Policy: ceil(log2(ways)) bits per set.
func (p *MRUPolicy) StorageBytes() int64 {
	bitsPerSet := int64(bitsFor(p.geom.Ways))
	return (int64(p.geom.Sets)*bitsPerSet + 7) / 8
}

// CandidateWays implements Policy.
func (p *MRUPolicy) CandidateWays(tag uint64, buf []int) []int {
	return allWays(p.geom.Ways, buf)
}

// PredictWay implements Policy.
func (p *MRUPolicy) PredictWay(set, tag uint64, region memtypes.RegionID) int {
	return int(p.mru[set])
}

// InstallWay implements Policy.
func (p *MRUPolicy) InstallWay(set, tag uint64, region memtypes.RegionID) int {
	return p.rng.Intn(p.geom.Ways)
}

// ObserveAccess implements Policy.
func (p *MRUPolicy) ObserveAccess(set, tag uint64, region memtypes.RegionID, way int, hit bool) {
	if hit {
		p.mru[set] = uint8(way)
	}
}

// ObserveInstall implements Policy.
func (p *MRUPolicy) ObserveInstall(set, tag uint64, region memtypes.RegionID, way int) {
	p.mru[set] = uint8(way)
}

// FilterMiss implements Policy.
func (p *MRUPolicy) FilterMiss(set, tag uint64) bool { return false }

// PartialTagPolicy keeps a small partial tag per line (paper Section II-D)
// and predicts the first way whose partial tag matches. It never misses a
// resident line (no false negatives), so a set with no partial match is a
// guaranteed miss — but false positives grow with associativity, which is
// exactly why its accuracy drops from 97.3% (2-way) to 81.2% (8-way) in
// Table II. Storage is prohibitive: bits-per-line x 64M lines = 32 MB for
// a 4 GB cache.
type PartialTagPolicy struct {
	geom Geometry
	rng  *xrand.Rand
	bits uint
	tags []uint8 // sets*ways partial tags
	live []bool  // whether the slot has been installed
}

// NewPartialTag builds a partial-tag predictor with the given tag width
// (the paper uses 4 bits).
func NewPartialTag(geom Geometry, bits uint, seed int64) *PartialTagPolicy {
	if bits == 0 || bits > 8 {
		bits = 4
	}
	n := geom.Lines()
	return &PartialTagPolicy{
		geom: geom,
		rng:  xrand.New(seed),
		bits: bits,
		tags: make([]uint8, n),
		live: make([]bool, n),
	}
}

// Name implements Policy.
func (p *PartialTagPolicy) Name() string { return "partialtag" }

// StorageBytes implements Policy.
func (p *PartialTagPolicy) StorageBytes() int64 {
	return (int64(p.geom.Lines())*int64(p.bits) + 7) / 8
}

func (p *PartialTagPolicy) partial(tag uint64) uint8 {
	return uint8(tag & ((1 << p.bits) - 1))
}

func (p *PartialTagPolicy) slot(set uint64, way int) int {
	return int(set)*p.geom.Ways + way
}

// CandidateWays implements Policy.
func (p *PartialTagPolicy) CandidateWays(tag uint64, buf []int) []int {
	return allWays(p.geom.Ways, buf)
}

// PredictWay implements Policy: the first way whose partial tag matches;
// way 0 when nothing matches (the lookup is then a guaranteed miss).
func (p *PartialTagPolicy) PredictWay(set, tag uint64, region memtypes.RegionID) int {
	pt := p.partial(tag)
	for w := 0; w < p.geom.Ways; w++ {
		s := p.slot(set, w)
		if p.live[s] && p.tags[s] == pt {
			return w
		}
	}
	return 0
}

// InstallWay implements Policy.
func (p *PartialTagPolicy) InstallWay(set, tag uint64, region memtypes.RegionID) int {
	return p.rng.Intn(p.geom.Ways)
}

// ObserveAccess implements Policy.
func (p *PartialTagPolicy) ObserveAccess(set, tag uint64, region memtypes.RegionID, way int, hit bool) {
}

// ObserveInstall implements Policy.
func (p *PartialTagPolicy) ObserveInstall(set, tag uint64, region memtypes.RegionID, way int) {
	s := p.slot(set, way)
	p.tags[s] = p.partial(tag)
	p.live[s] = true
}

// FilterMiss implements Policy.
func (p *PartialTagPolicy) FilterMiss(set, tag uint64) bool {
	pt := p.partial(tag)
	for w := 0; w < p.geom.Ways; w++ {
		s := p.slot(set, w)
		if p.live[s] && p.tags[s] == pt {
			return false
		}
	}
	return true
}

// bitsFor returns ceil(log2(n)) with a minimum of 1.
func bitsFor(n int) uint {
	bits := uint(1)
	for (1 << bits) < n {
		bits++
	}
	return bits
}
