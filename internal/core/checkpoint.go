package core

import (
	"accord/internal/ckpt"
	"accord/internal/memtypes"
)

// Checkpointable is the optional snapshot interface a Policy may
// implement. It is separate from Policy so custom policies (and the
// public alias in the facade package) keep compiling; the simulator
// type-asserts and refuses to checkpoint a policy that lacks it.
type Checkpointable interface {
	Snapshot(e *ckpt.Encoder)
	Restore(d *ckpt.Decoder) error
}

// Per-component version bytes; bump on any encoding change.
const (
	randPolicyVersion = 1
	mruPolicyVersion  = 1
	ptagVersion       = 1
	accordVersion     = 1
	regionTabVersion  = 1
)

// Snapshot implements Checkpointable.
func (p *RandPolicy) Snapshot(e *ckpt.Encoder) {
	e.U8(randPolicyVersion)
	p.rng.Snapshot(e)
}

// Restore implements Checkpointable.
func (p *RandPolicy) Restore(d *ckpt.Decoder) error {
	if v := d.U8(); d.Err() == nil && v != randPolicyVersion {
		d.Failf("core: rand policy snapshot version %d, want %d", v, randPolicyVersion)
	}
	if err := d.Err(); err != nil {
		return err
	}
	return p.rng.Restore(d)
}

// Snapshot implements Checkpointable.
func (p *MRUPolicy) Snapshot(e *ckpt.Encoder) {
	e.U8(mruPolicyVersion)
	p.rng.Snapshot(e)
	e.Raw(p.mru)
}

// Restore implements Checkpointable.
func (p *MRUPolicy) Restore(d *ckpt.Decoder) error {
	if v := d.U8(); d.Err() == nil && v != mruPolicyVersion {
		d.Failf("core: mru policy snapshot version %d, want %d", v, mruPolicyVersion)
	}
	if err := d.Err(); err != nil {
		return err
	}
	if err := p.rng.Restore(d); err != nil {
		return err
	}
	mru := d.Raw(len(p.mru))
	if err := d.Err(); err != nil {
		return err
	}
	for i, w := range mru {
		if int(w) >= p.geom.Ways {
			d.Failf("core: mru[%d] = %d exceeds %d ways", i, w, p.geom.Ways)
			return d.Err()
		}
	}
	copy(p.mru, mru)
	return nil
}

// Snapshot implements Checkpointable.
func (p *PartialTagPolicy) Snapshot(e *ckpt.Encoder) {
	e.U8(ptagVersion)
	p.rng.Snapshot(e)
	e.Raw(p.tags)
	e.Bools(p.live)
}

// Restore implements Checkpointable.
func (p *PartialTagPolicy) Restore(d *ckpt.Decoder) error {
	if v := d.U8(); d.Err() == nil && v != ptagVersion {
		d.Failf("core: partial-tag snapshot version %d, want %d", v, ptagVersion)
	}
	if err := d.Err(); err != nil {
		return err
	}
	if err := p.rng.Restore(d); err != nil {
		return err
	}
	tags := d.Raw(len(p.tags))
	live := make([]bool, len(p.live))
	d.Bools(live)
	if err := d.Err(); err != nil {
		return err
	}
	mask := uint8((1 << p.bits) - 1)
	for i, tg := range tags {
		if tg&^mask != 0 {
			d.Failf("core: partial tag[%d] = %#x exceeds %d bits", i, tg, p.bits)
			return d.Err()
		}
	}
	copy(p.tags, tags)
	copy(p.live, live)
	return nil
}

// Snapshot implements Checkpointable. The diagnostic RIT/RLT counters are
// included because they are metrics-exported and never reset at the
// warmup/measure boundary: a restored run must report the same cumulative
// values a cold run would.
func (a *ACCORD) Snapshot(e *ckpt.Encoder) {
	e.U8(accordVersion)
	a.rng.Snapshot(e)
	e.Bool(a.cfg.UseGWS)
	if a.cfg.UseGWS {
		a.rit.snapshot(e)
		a.rlt.snapshot(e)
	}
	e.U64(a.ritHits)
	e.U64(a.ritMisses)
	e.U64(a.rltHits)
	e.U64(a.rltMisses)
}

// Restore implements Checkpointable.
func (a *ACCORD) Restore(d *ckpt.Decoder) error {
	if v := d.U8(); d.Err() == nil && v != accordVersion {
		d.Failf("core: accord snapshot version %d, want %d", v, accordVersion)
	}
	if err := d.Err(); err != nil {
		return err
	}
	if err := a.rng.Restore(d); err != nil {
		return err
	}
	gws := d.Bool()
	if d.Err() == nil && gws != a.cfg.UseGWS {
		d.Failf("core: accord snapshot GWS=%v, policy has GWS=%v", gws, a.cfg.UseGWS)
	}
	if err := d.Err(); err != nil {
		return err
	}
	if a.cfg.UseGWS {
		if err := a.rit.restore(d, a.ways); err != nil {
			return err
		}
		if err := a.rlt.restore(d, a.ways); err != nil {
			return err
		}
	}
	a.ritHits = d.U64()
	a.ritMisses = d.U64()
	a.rltHits = d.U64()
	a.rltMisses = d.U64()
	return d.Err()
}

// snapshot writes the table's logical content: (region, way) pairs from
// LRU to MRU. Physical slot numbering and probe-array layout are
// reconstruction details — lookups and evictions depend only on the
// region→way mapping and the recency order, so serializing the logical
// order keeps the encoding independent of the arrival history that
// produced the layout.
func (t *regionTable) snapshot(e *ckpt.Encoder) {
	e.U8(regionTabVersion)
	e.U32(uint32(t.cap))
	e.U32(uint32(t.used))
	for slot := t.tail; slot >= 0; slot = int(t.slots[slot].prev) {
		e.U64(uint64(t.slots[slot].region))
		e.U8(t.slots[slot].way)
	}
}

// restore rebuilds the table by re-inserting the pairs LRU-first, which
// reproduces the exact recency order.
func (t *regionTable) restore(d *ckpt.Decoder, ways int) error {
	if v := d.U8(); d.Err() == nil && v != regionTabVersion {
		d.Failf("core: region table snapshot version %d, want %d", v, regionTabVersion)
	}
	if c := d.U32(); d.Err() == nil && int(c) != t.cap {
		d.Failf("core: region table capacity %d, want %d", c, t.cap)
	}
	n := d.Len(t.cap)
	if err := d.Err(); err != nil {
		return err
	}
	fresh := newRegionTable(t.cap)
	for i := 0; i < n; i++ {
		region := d.U64()
		way := d.U8()
		if d.Err() == nil && int(way) >= ways {
			d.Failf("core: region table way %d exceeds %d ways", way, ways)
		}
		if err := d.Err(); err != nil {
			return err
		}
		if fresh.findSlot(memtypes.RegionID(region)) >= 0 {
			d.Failf("core: region table has duplicate region %#x", region)
			return d.Err()
		}
		fresh.insert(memtypes.RegionID(region), int(way))
	}
	*t = *fresh
	return nil
}
