// Package ckpt provides the warm-state checkpoint substrate: a compact
// binary codec every stateful component serializes itself through, and a
// content-addressed on-disk store keyed by configuration digests.
//
// The codec is deliberately dumb — fixed-width little-endian fields, no
// reflection, no per-field tags — because the checkpoint contract is
// bit-identity, not schema evolution: a snapshot is only ever restored
// into a system constructed from the exact same configuration (enforced
// by the key digest and an embedded fingerprint), so both sides always
// agree on the field sequence. Versioning happens at whole-component
// granularity: each component writes a version byte and refuses to
// restore any other version, and the sim-level schema constant
// invalidates every stored checkpoint when any encoding changes.
//
// The Decoder is sticky-error and bounds-checked: feeding it truncated,
// corrupted, or adversarial bytes produces a descriptive error, never a
// panic or an allocation proportional to attacker-controlled lengths.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Encoder appends fixed-width binary fields to a growing buffer. The
// zero value is not usable; construct with NewEncoder.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given capacity hint.
func NewEncoder(capHint int) *Encoder {
	if capHint < 64 {
		capHint = 64
	}
	return &Encoder{buf: make([]byte, 0, capHint)}
}

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a bool as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends an int64 (two's complement, little-endian).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Raw appends bytes verbatim, with no length prefix; the decoder must
// know the exact count.
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// String appends a uint32 length prefix followed by the bytes.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Bools appends a bit-packed bool slice (no length prefix; the decoder
// must know the count). Large boolean state (the VM frame bitmap) costs
// one bit per entry instead of one byte.
func (e *Encoder) Bools(v []bool) {
	var acc uint8
	var n uint
	for _, b := range v {
		if b {
			acc |= 1 << n
		}
		if n++; n == 8 {
			e.buf = append(e.buf, acc)
			acc, n = 0, 0
		}
	}
	if n > 0 {
		e.buf = append(e.buf, acc)
	}
}

// Finish appends a CRC-32C of everything encoded so far and returns the
// complete blob. The encoder must not be used afterwards.
func (e *Encoder) Finish() []byte {
	crc := crc32.Checksum(e.buf, crcTable)
	return binary.LittleEndian.AppendUint32(e.buf, crc)
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Decoder reads fields written by an Encoder. Errors are sticky: after
// the first failure every read returns a zero value and Err reports the
// original cause, so component Restore methods can decode a whole block
// and check once. It never panics on malformed input.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps raw bytes (no checksum verification).
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// NewDecoderChecked verifies and strips the trailing CRC-32C appended by
// Encoder.Finish, returning a decoder over the payload.
func NewDecoderChecked(b []byte) (*Decoder, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("ckpt: blob of %d bytes is too short for a checksum", len(b))
	}
	payload, tail := b[:len(b)-4], b[len(b)-4:]
	want := binary.LittleEndian.Uint32(tail)
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("ckpt: checksum mismatch (%#08x != %#08x): corrupt or truncated blob", got, want)
	}
	return &Decoder{buf: payload}, nil
}

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Failf records an error if none is set; later reads return zero values.
func (d *Decoder) Failf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int {
	if d.err != nil {
		return 0
	}
	return len(d.buf) - d.off
}

// need consumes n bytes, or sets the sticky error.
func (d *Decoder) need(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf)-d.off < n {
		d.Failf("ckpt: truncated input: need %d bytes at offset %d, have %d", n, d.off, len(d.buf)-d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.need(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a byte and requires it to be exactly 0 or 1.
func (d *Decoder) Bool() bool {
	v := d.U8()
	if v > 1 {
		d.Failf("ckpt: invalid bool byte %#x at offset %d", v, d.off-1)
		return false
	}
	return v == 1
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.need(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.need(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Raw consumes exactly n bytes; the returned slice aliases the input.
func (d *Decoder) Raw(n int) []byte { return d.need(n) }

// String reads a length-prefixed string, bounded by the remaining input
// so a corrupt length can never drive a huge allocation.
func (d *Decoder) String() string {
	n := int(d.U32())
	if d.err != nil {
		return ""
	}
	if n > len(d.buf)-d.off {
		d.Failf("ckpt: string length %d exceeds %d remaining bytes", n, len(d.buf)-d.off)
		return ""
	}
	return string(d.need(n))
}

// Len reads a uint32 count and requires it to be at most max, guarding
// every slice restore against corrupt or adversarial sizes.
func (d *Decoder) Len(max int) int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if int64(n) > int64(max) {
		d.Failf("ckpt: count %d exceeds maximum %d", n, max)
		return 0
	}
	return int(n)
}

// Bools reads len(dst) bit-packed bools into dst.
func (d *Decoder) Bools(dst []bool) {
	nbytes := (len(dst) + 7) / 8
	b := d.need(nbytes)
	if b == nil {
		return
	}
	for i := range dst {
		dst[i] = b[i>>3]&(1<<(uint(i)&7)) != 0
	}
}
