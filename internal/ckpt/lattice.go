package ckpt

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// Spine checkpoint lattice: a family of content-addressed entries in a
// Store, one per interval boundary of a sampled run, plus a small index
// blob chaining them together. The lattice is keyed by a caller-supplied
// fingerprint covering everything that determines boundary state
// (configuration, workload, interval geometry); each entry additionally
// keys on its interval number and absolute instruction offset, so a
// geometry change moves every key and a stale lattice can only miss,
// never restore the wrong state.
//
// Integrity is layered: every entry and the index are CRC-framed
// (Encoder.Finish), every entry echoes the fingerprint/interval/offset
// it was saved under, and the index records each entry's payload length
// and SHA-256 digest — the chain Probe verifies when the index is
// available. Any failure anywhere degrades to a miss; nothing here
// panics on adversarial bytes.

const (
	// latticeEntryMagic opens every lattice entry blob; latticeIndexMagic
	// opens the per-lattice index blob.
	latticeEntryMagic = "ACRDLATB"
	latticeIndexMagic = "ACRDLATI"

	// LatticeSchema is the lattice framing version. Bump it when the entry
	// or index encoding changes; it participates in validation (and the
	// caller's fingerprint should include its own schema marker, so keys
	// move too).
	LatticeSchema = 1

	// maxLatticeIndexEntries bounds index decoding against corrupt counts.
	maxLatticeIndexEntries = 1 << 20
)

// latticeIndexEntry is one chained record: which entry exists and what
// its payload must hash to.
type latticeIndexEntry struct {
	Interval int
	Offset   int64
	Length   int
	Digest   [sha256.Size]byte
}

// Lattice is a view of one fingerprint's checkpoint family inside a
// Store. Safe for concurrent use; the index is read-modify-written under
// a lock in-process, and cross-process writers are last-writer-wins on
// identical content (entries are content-addressed and deterministic).
type Lattice struct {
	store *Store
	fp    string

	mu    sync.Mutex
	index map[int]latticeIndexEntry // nil until first use
}

// NewLattice returns a lattice over store for the given fingerprint.
func NewLattice(store *Store, fingerprint string) *Lattice {
	return &Lattice{store: store, fp: fingerprint}
}

// LatticeEntryKey digests (fingerprint, interval, offset) into the store
// key of one boundary entry.
func LatticeEntryKey(fingerprint string, interval int, offset int64) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|interval=%d|offset=%d", fingerprint, interval, offset)))
	return hex.EncodeToString(sum[:])
}

// latticeIndexKey digests the fingerprint into the index blob's key.
func latticeIndexKey(fingerprint string) string {
	sum := sha256.Sum256([]byte(fingerprint + "|lattice-index"))
	return hex.EncodeToString(sum[:])
}

// Save persists one boundary payload and merges it into the index. A
// failed entry write is returned without touching the index; a failed
// index write still leaves the entry loadable (Probe falls back to
// direct entry validation when the index is absent or stale).
func (l *Lattice) Save(interval int, offset int64, payload []byte) error {
	if err := l.SaveEntry(interval, offset, payload); err != nil {
		return err
	}
	return l.FlushIndex()
}

// SaveEntry persists one boundary payload and merges it into the
// in-memory index without rewriting the index blob — the batch form for
// writers saving many boundaries in one run. Entries saved this way are
// immediately probeable (entry validation does not need the index);
// call FlushIndex once after the batch to persist the digest chain. A
// crash before the flush loses only the chain, never the entries.
func (l *Lattice) SaveEntry(interval int, offset int64, payload []byte) error {
	e := NewEncoder(len(payload) + 128)
	e.Raw([]byte(latticeEntryMagic))
	e.U32(LatticeSchema)
	e.String(l.fp)
	e.U32(uint32(interval))
	e.I64(offset)
	e.U32(uint32(len(payload)))
	e.Raw(payload)
	if err := l.store.Save(LatticeEntryKey(l.fp, interval, offset), e.Finish()); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.loadIndexLocked()
	l.index[interval] = latticeIndexEntry{
		Interval: interval,
		Offset:   offset,
		Length:   len(payload),
		Digest:   sha256.Sum256(payload),
	}
	return nil
}

// FlushIndex writes the current in-memory index blob, persisting the
// digest chain for entries saved with SaveEntry.
func (l *Lattice) FlushIndex() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.loadIndexLocked()
	return l.saveIndexLocked()
}

// Load fetches and validates the entry for (interval, offset): CRC frame,
// magic, schema, fingerprint, and the echoed interval/offset/length. A
// missing entry reports (nil, false, nil); any validation failure is an
// error the caller should treat as a miss.
func (l *Lattice) Load(interval int, offset int64) ([]byte, bool, error) {
	blob, ok, err := l.store.Load(LatticeEntryKey(l.fp, interval, offset))
	if err != nil || !ok {
		return nil, false, err
	}
	d, err := NewDecoderChecked(blob)
	if err != nil {
		return nil, false, err
	}
	if m := d.Raw(len(latticeEntryMagic)); d.Err() == nil && string(m) != latticeEntryMagic {
		d.Failf("ckpt: bad lattice entry magic %q", m)
	}
	if v := d.U32(); d.Err() == nil && v != LatticeSchema {
		d.Failf("ckpt: lattice entry schema %d, want %d", v, LatticeSchema)
	}
	if fp := d.String(); d.Err() == nil && fp != l.fp {
		d.Failf("ckpt: lattice entry fingerprint mismatch")
	}
	if iv := d.U32(); d.Err() == nil && int(iv) != interval {
		d.Failf("ckpt: lattice entry interval %d, want %d", iv, interval)
	}
	if off := d.I64(); d.Err() == nil && off != offset {
		d.Failf("ckpt: lattice entry offset %d, want %d", off, offset)
	}
	n := d.Len(d.Remaining())
	if d.Err() == nil && n != d.Remaining() {
		d.Failf("ckpt: lattice payload length %d does not match %d remaining bytes", n, d.Remaining())
	}
	payload := d.Raw(n)
	if err := d.Err(); err != nil {
		return nil, false, err
	}
	return payload, true, nil
}

// Probe is the forgiving lookup the sampler uses: the entry is loaded
// and validated, and when the index knows this interval the payload is
// additionally checked against the chained length and digest. Every
// failure mode — missing entry, truncation, CRC damage, index
// disagreement — reports a plain miss.
func (l *Lattice) Probe(interval int, offset int64) ([]byte, bool) {
	payload, ok, err := l.Load(interval, offset)
	if err != nil || !ok {
		return nil, false
	}
	l.mu.Lock()
	l.loadIndexLocked()
	ie, known := l.index[interval]
	l.mu.Unlock()
	if known {
		if ie.Offset != offset || ie.Length != len(payload) || sha256.Sum256(payload) != ie.Digest {
			return nil, false
		}
	}
	return payload, true
}

// Intervals returns the sorted interval numbers the index records.
func (l *Lattice) Intervals() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.loadIndexLocked()
	out := make([]int, 0, len(l.index))
	for k := range l.index {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// loadIndexLocked populates l.index from the store on first use. An
// absent, corrupt, or mismatched index yields an empty map: entries stay
// reachable through their own validation, just without the digest chain.
func (l *Lattice) loadIndexLocked() {
	if l.index != nil {
		return
	}
	l.index = make(map[int]latticeIndexEntry)
	blob, ok, err := l.store.Load(latticeIndexKey(l.fp))
	if err != nil || !ok {
		return
	}
	d, err := NewDecoderChecked(blob)
	if err != nil {
		return
	}
	if string(d.Raw(len(latticeIndexMagic))) != latticeIndexMagic {
		return
	}
	if d.U32() != LatticeSchema {
		return
	}
	if d.String() != l.fp {
		return
	}
	n := d.Len(maxLatticeIndexEntries)
	entries := make(map[int]latticeIndexEntry, n)
	for i := 0; i < n; i++ {
		var ie latticeIndexEntry
		ie.Interval = int(d.U32())
		ie.Offset = d.I64()
		ie.Length = int(d.U64())
		copy(ie.Digest[:], d.Raw(sha256.Size))
		entries[ie.Interval] = ie
	}
	if d.Err() != nil || d.Remaining() != 0 {
		return
	}
	l.index = entries
}

// saveIndexLocked writes the index sorted by interval, so identical
// lattices serialize to identical bytes.
func (l *Lattice) saveIndexLocked() error {
	keys := make([]int, 0, len(l.index))
	for k := range l.index {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	e := NewEncoder(64 + len(keys)*(4+8+8+sha256.Size))
	e.Raw([]byte(latticeIndexMagic))
	e.U32(LatticeSchema)
	e.String(l.fp)
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		ie := l.index[k]
		e.U32(uint32(ie.Interval))
		e.I64(ie.Offset)
		e.U64(uint64(ie.Length))
		e.Raw(ie.Digest[:])
	}
	return l.store.Save(latticeIndexKey(l.fp), e.Finish())
}
