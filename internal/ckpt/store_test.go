package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "0123456789abcdef"
	if _, ok, err := s.Load(key); ok || err != nil {
		t.Fatalf("Load on empty store: ok=%v err=%v", ok, err)
	}
	blob := []byte("warm state bytes")
	if err := s.Save(key, blob); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Load(key)
	if err != nil || !ok {
		t.Fatalf("Load: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, blob) {
		t.Errorf("Load = %q, want %q", got, blob)
	}
}

func TestStoreRejectsBadMagic(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "deadbeef.ckpt"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Load("deadbeef"); err == nil || ok {
		t.Errorf("bad-magic file accepted: ok=%v err=%v", ok, err)
	}
}

func TestStoreRejectsBadKeys(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../escape", "a/b", `a\b`, "dotted.key"} {
		if err := s.Save(key, nil); err == nil {
			t.Errorf("Save(%q) accepted", key)
		}
		if _, _, err := s.Load(key); err == nil {
			t.Errorf("Load(%q) accepted", key)
		}
	}
}

func TestStoreConcurrentSameKey(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte{0x5A}, 1<<16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := s.Save("cafef00d", blob); err != nil {
					t.Errorf("Save: %v", err)
					return
				}
				got, ok, err := s.Load("cafef00d")
				if err != nil || !ok || !bytes.Equal(got, blob) {
					t.Errorf("Load mid-write: ok=%v err=%v len=%d", ok, err, len(got))
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestOpenEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("Open(\"\") accepted")
	}
}
