package ckpt

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// storeMagic prefixes every file in a checkpoint store so stray files in
// the directory are rejected before any decoding is attempted.
const storeMagic = "ACKPTST1"

// Store is a content-addressed checkpoint directory: each blob is saved
// under <dir>/<key>.ckpt where the key is a hex digest the caller derives
// from everything that affects the blob (config fields, schema version).
// Saves are atomic (temp file + rename), so a store shared by concurrent
// writers — the experiment session at any Parallelism, or parallel CI
// jobs on a shared cache — never exposes a torn file; last writer wins,
// and with content-addressed keys every writer writes identical bytes.
type Store struct {
	dir string
}

// Open creates the directory if needed and returns a store over it.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("ckpt: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: create store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its file, rejecting keys that could escape the
// directory or collide with temp files.
func (s *Store) path(key string) (string, error) {
	if key == "" || strings.ContainsAny(key, "/\\.") {
		return "", fmt.Errorf("ckpt: invalid store key %q", key)
	}
	return filepath.Join(s.dir, key+".ckpt"), nil
}

// Load returns the blob stored under key. A missing entry reports
// (nil, false, nil); any other failure — unreadable file, bad magic —
// is an error the caller should treat as a cold-run fallback.
func (s *Store) Load(key string) ([]byte, bool, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, false, err
	}
	b, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("ckpt: read %s: %w", p, err)
	}
	if len(b) < len(storeMagic) || string(b[:len(storeMagic)]) != storeMagic {
		return nil, false, fmt.Errorf("ckpt: %s is not a checkpoint file (bad magic)", p)
	}
	return b[len(storeMagic):], true, nil
}

// Save atomically writes blob under key. Concurrent saves of the same
// key are safe: each writes a unique temp file and renames it over the
// destination.
func (s *Store) Save(key string, blob []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, "tmp-*.ckpt-partial")
	if err != nil {
		return fmt.Errorf("ckpt: create temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write([]byte(storeMagic)); err == nil {
		_, err = tmp.Write(blob)
	}
	if err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: write %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: close temp: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return fmt.Errorf("ckpt: publish %s: %w", p, err)
	}
	return nil
}
