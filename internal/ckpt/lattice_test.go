package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func testLattice(t *testing.T, fp string) (*Lattice, *Store) {
	t.Helper()
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return NewLattice(store, fp), store
}

func latticePayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*7 + 3)
	}
	return p
}

func TestLatticeRoundTrip(t *testing.T) {
	lat, _ := testLattice(t, "fp-round-trip")
	payloads := map[int][]byte{
		0: latticePayload(1),
		3: latticePayload(257),
		7: latticePayload(4096),
	}
	offset := func(k int) int64 { return int64(1000 + k*500) }
	for k, p := range payloads {
		if err := lat.Save(k, offset(k), p); err != nil {
			t.Fatalf("save interval %d: %v", k, err)
		}
	}
	for k, p := range payloads {
		got, ok := lat.Probe(k, offset(k))
		if !ok {
			t.Fatalf("probe interval %d: miss", k)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("probe interval %d: payload mismatch", k)
		}
	}
	if got, want := lat.Intervals(), []int{0, 3, 7}; len(got) != len(want) {
		t.Fatalf("intervals = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("intervals = %v, want %v", got, want)
			}
		}
	}
}

func TestLatticeMissing(t *testing.T) {
	lat, _ := testLattice(t, "fp-missing")
	if _, ok := lat.Probe(0, 0); ok {
		t.Fatal("probe of empty lattice hit")
	}
	if _, ok, err := lat.Load(5, 500); ok || err != nil {
		t.Fatalf("load of missing entry = (%v, %v), want (false, nil)", ok, err)
	}
}

// A fresh Lattice over the same store and fingerprint must see entries a
// previous instance wrote — that is the cross-run memoization contract.
func TestLatticeReopen(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	p := latticePayload(1024)
	if err := NewLattice(store, "fp-reopen").Save(2, 2048, p); err != nil {
		t.Fatalf("save: %v", err)
	}
	lat := NewLattice(store, "fp-reopen")
	got, ok := lat.Probe(2, 2048)
	if !ok || !bytes.Equal(got, p) {
		t.Fatalf("reopened probe = (%d bytes, %v), want hit with %d bytes", len(got), ok, len(p))
	}
	if iv := lat.Intervals(); len(iv) != 1 || iv[0] != 2 {
		t.Fatalf("reopened intervals = %v, want [2]", iv)
	}
}

// Keys must separate fingerprints, intervals, and offsets: probing under
// any other coordinate is a miss, never a wrong payload. This is the
// stale-lattice guarantee — changing interval geometry changes the
// offsets (and the fingerprint), so old entries become unreachable.
func TestLatticeKeySeparation(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	lat := NewLattice(store, "fp-a")
	if err := lat.Save(1, 100, latticePayload(64)); err != nil {
		t.Fatalf("save: %v", err)
	}
	if _, ok := lat.Probe(2, 100); ok {
		t.Fatal("probe with wrong interval hit")
	}
	if _, ok := lat.Probe(1, 200); ok {
		t.Fatal("probe with wrong offset hit")
	}
	if _, ok := NewLattice(store, "fp-b").Probe(1, 100); ok {
		t.Fatal("probe with wrong fingerprint hit")
	}
}

// entryFile locates the on-disk file behind one lattice entry.
func entryFile(t *testing.T, store *Store, fp string, interval int, offset int64) string {
	t.Helper()
	p := filepath.Join(store.Dir(), LatticeEntryKey(fp, interval, offset)+".ckpt")
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("entry file: %v", err)
	}
	return p
}

// Truncating the stored entry at every possible length must produce a
// miss — no panic, no partial payload.
func TestLatticeEntryTruncationSweep(t *testing.T) {
	const fp = "fp-truncate"
	lat, store := testLattice(t, fp)
	if err := lat.Save(0, 64, latticePayload(96)); err != nil {
		t.Fatalf("save: %v", err)
	}
	path := entryFile(t, store, fp, 0, 64)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read entry: %v", err)
	}
	for n := 0; n < len(full); n++ {
		if err := os.WriteFile(path, full[:n], 0o644); err != nil {
			t.Fatalf("truncate to %d: %v", n, err)
		}
		// A fresh lattice so the cached index cannot mask the damage.
		if _, ok := NewLattice(store, fp).Probe(0, 64); ok {
			t.Fatalf("probe hit on entry truncated to %d bytes", n)
		}
	}
}

// Flipping any single bit of the stored entry must produce a miss: the
// wrapper CRC (or, for the trailing checksum bytes themselves, the CRC
// comparison) catches every one-bit change.
func TestLatticeEntryCorruptionSweep(t *testing.T) {
	const fp = "fp-corrupt"
	lat, store := testLattice(t, fp)
	if err := lat.Save(0, 64, latticePayload(48)); err != nil {
		t.Fatalf("save: %v", err)
	}
	path := entryFile(t, store, fp, 0, 64)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read entry: %v", err)
	}
	for i := 0; i < len(full); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x10
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatalf("corrupt byte %d: %v", i, err)
		}
		if _, ok := NewLattice(store, fp).Probe(0, 64); ok {
			t.Fatalf("probe hit with byte %d corrupted", i)
		}
	}
}

// mutateEntry rewrites one entry file through a callback that edits the
// store payload (after the store magic) and re-frames it with a valid
// CRC, simulating structural damage that a checksum alone cannot catch.
func mutateEntry(t *testing.T, store *Store, fp string, interval int, offset int64, edit func([]byte) []byte) {
	t.Helper()
	path := entryFile(t, store, fp, interval, offset)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read entry: %v", err)
	}
	body := full[len(storeMagic):]
	d, err := NewDecoderChecked(body)
	if err != nil {
		t.Fatalf("reframe: %v", err)
	}
	inner := edit(append([]byte(nil), d.Raw(d.Remaining())...))
	e := NewEncoder(len(inner))
	e.Raw(inner)
	if err := os.WriteFile(path, append([]byte(storeMagic), e.Finish()...), 0o644); err != nil {
		t.Fatalf("rewrite entry: %v", err)
	}
}

func TestLatticeEntryStructuralMismatch(t *testing.T) {
	const fp = "fp-structural"
	cases := []struct {
		name string
		edit func([]byte) []byte
	}{
		{"schema bump", func(b []byte) []byte {
			// Schema u32 sits right after the 8-byte magic.
			b[len(latticeEntryMagic)]++
			return b
		}},
		{"magic swap", func(b []byte) []byte {
			copy(b, "ACRDXXXX")
			return b
		}},
		{"payload length overflow", func(b []byte) []byte {
			// The payload-length u32 precedes the payload: magic + schema +
			// fp string (4 + len) + interval u32 + offset i64 + length u32.
			pos := len(latticeEntryMagic) + 4 + 4 + len(fp) + 4 + 8
			b[pos]++
			return b
		}},
		{"payload truncated under length", func(b []byte) []byte {
			return b[:len(b)-1]
		}},
		{"fingerprint swap", func(b []byte) []byte {
			// The fingerprint string body starts after magic+schema+len.
			b[len(latticeEntryMagic)+4+4] ^= 0xFF
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lat, store := testLattice(t, fp)
			if err := lat.Save(0, 64, latticePayload(32)); err != nil {
				t.Fatalf("save: %v", err)
			}
			mutateEntry(t, store, fp, 0, 64, tc.edit)
			if _, ok := NewLattice(store, fp).Probe(0, 64); ok {
				t.Fatal("probe hit on structurally damaged entry")
			}
		})
	}
}

// Damage to the index must never block valid entries (they validate on
// their own) and must never let a forged index payload through.
func TestLatticeIndexCorruption(t *testing.T) {
	const fp = "fp-index"
	lat, store := testLattice(t, fp)
	payload := latticePayload(80)
	if err := lat.Save(0, 64, payload); err != nil {
		t.Fatalf("save: %v", err)
	}
	idxPath := filepath.Join(store.Dir(), latticeIndexKey(fp)+".ckpt")
	full, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatalf("read index: %v", err)
	}

	t.Run("corrupt index still probes entries", func(t *testing.T) {
		mut := append([]byte(nil), full...)
		mut[len(mut)/2] ^= 0xFF
		if err := os.WriteFile(idxPath, mut, 0o644); err != nil {
			t.Fatalf("corrupt index: %v", err)
		}
		got, ok := NewLattice(store, fp).Probe(0, 64)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatal("entry probe failed under corrupt index")
		}
		if iv := NewLattice(store, fp).Intervals(); len(iv) != 0 {
			t.Fatalf("corrupt index reported intervals %v", iv)
		}
	})

	t.Run("missing index still probes entries", func(t *testing.T) {
		if err := os.Remove(idxPath); err != nil {
			t.Fatalf("remove index: %v", err)
		}
		got, ok := NewLattice(store, fp).Probe(0, 64)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatal("entry probe failed with index removed")
		}
	})

	t.Run("truncated index sweep", func(t *testing.T) {
		for n := 0; n < len(full); n += 7 {
			if err := os.WriteFile(idxPath, full[:n], 0o644); err != nil {
				t.Fatalf("truncate index to %d: %v", n, err)
			}
			if _, ok := NewLattice(store, fp).Probe(0, 64); !ok {
				t.Fatalf("entry probe failed under index truncated to %d", n)
			}
		}
		if err := os.WriteFile(idxPath, full, 0o644); err != nil {
			t.Fatalf("restore index: %v", err)
		}
	})
}

// When the index and an entry disagree — entry replaced by a validly
// framed blob saved under a different digest — the digest chain turns
// the probe into a miss.
func TestLatticeIndexDigestMismatch(t *testing.T) {
	const fp = "fp-digest"
	lat, store := testLattice(t, fp)
	if err := lat.Save(0, 64, latticePayload(40)); err != nil {
		t.Fatalf("save: %v", err)
	}
	// Re-frame the entry with a different payload of the same coordinates
	// (valid CRC, valid header) without updating the index.
	mutateEntry(t, store, fp, 0, 64, func(b []byte) []byte {
		e := NewEncoder(64)
		e.Raw([]byte(latticeEntryMagic))
		e.U32(LatticeSchema)
		e.String(fp)
		e.U32(0)
		e.I64(64)
		other := latticePayload(40)
		other[0] ^= 0xFF
		e.U32(uint32(len(other)))
		e.Raw(other)
		// mutateEntry re-frames with Finish, so hand back the unframed body.
		return e.buf
	})
	if _, ok := NewLattice(store, fp).Probe(0, 64); ok {
		t.Fatal("probe hit on entry whose digest disagrees with the index")
	}
}

// BenchmarkLatticeProbe measures the warm-run fast path: one validated
// lattice lookup (store read, CRC frame, header echo, index digest
// chain) at a spine-snapshot-sized payload. This is the per-boundary
// cost a fully-warm resumed run pays instead of the functional
// fast-forward it memoizes.
func BenchmarkLatticeProbe(b *testing.B) {
	store, err := Open(b.TempDir())
	if err != nil {
		b.Fatalf("open store: %v", err)
	}
	const fp = "fp-bench"
	const intervals = 8
	payload := latticePayload(128 << 10)
	lat := NewLattice(store, fp)
	for k := 0; k < intervals; k++ {
		if err := lat.Save(k, int64(k*1000), payload); err != nil {
			b.Fatalf("save: %v", err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % intervals
		if _, ok := lat.Probe(k, int64(k*1000)); !ok {
			b.Fatal("probe missed a populated boundary")
		}
	}
}
