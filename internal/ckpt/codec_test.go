package ckpt

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	e.U8(0xAB)
	e.Bool(true)
	e.Bool(false)
	e.U32(0xDEADBEEF)
	e.U64(0x0123456789ABCDEF)
	e.I64(-42)
	e.Raw([]byte{1, 2, 3})
	e.String("hello, checkpoint")
	bits := []bool{true, false, false, true, true, true, false, true, false, true}
	e.Bools(bits)
	blob := e.Finish()

	d, err := NewDecoderChecked(blob)
	if err != nil {
		t.Fatalf("NewDecoderChecked: %v", err)
	}
	if got := d.U8(); got != 0xAB {
		t.Errorf("U8 = %#x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := d.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 0x0123456789ABCDEF {
		t.Errorf("U64 = %#x", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Raw(3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Raw = %v", got)
	}
	if got := d.String(); got != "hello, checkpoint" {
		t.Errorf("String = %q", got)
	}
	back := make([]bool, len(bits))
	d.Bools(back)
	for i := range bits {
		if back[i] != bits[i] {
			t.Errorf("Bools[%d] = %v, want %v", i, back[i], bits[i])
		}
	}
	if d.Err() != nil {
		t.Fatalf("decode err: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", d.Remaining())
	}
}

func TestDecoderTruncation(t *testing.T) {
	e := NewEncoder(0)
	e.U64(1)
	e.String("abc")
	blob := e.Finish()
	// Every proper prefix must fail loudly at some layer and never panic.
	for n := 0; n < len(blob); n++ {
		if _, err := NewDecoderChecked(blob[:n]); err != nil {
			continue // checksum layer caught it
		}
		d := NewDecoder(blob[:n])
		_ = d.U64()
		_ = d.String()
		if n < len(blob)-4 && d.Err() == nil {
			t.Errorf("truncation to %d bytes went undetected", n)
		}
	}
}

func TestDecoderCorruption(t *testing.T) {
	e := NewEncoder(0)
	for i := 0; i < 32; i++ {
		e.U64(uint64(i) * 0x9E3779B97F4A7C15)
	}
	blob := e.Finish()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		c := append([]byte(nil), blob...)
		c[rng.Intn(len(c))] ^= byte(1 + rng.Intn(255))
		if _, err := NewDecoderChecked(c); err == nil {
			t.Fatalf("trial %d: single-byte corruption not detected by checksum", trial)
		}
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1})
	d.U64() // fails: truncated
	first := d.Err()
	if first == nil {
		t.Fatal("expected truncation error")
	}
	// Later reads return zero values and keep the original error.
	if d.U32() != 0 || d.U8() != 0 || d.I64() != 0 || d.String() != "" || d.Raw(5) != nil {
		t.Error("reads after error should return zero values")
	}
	if d.Err() != first {
		t.Errorf("error was replaced: %v", d.Err())
	}
}

func TestDecoderBoolStrict(t *testing.T) {
	d := NewDecoder([]byte{2})
	d.Bool()
	if d.Err() == nil || !strings.Contains(d.Err().Error(), "invalid bool") {
		t.Errorf("want invalid-bool error, got %v", d.Err())
	}
}

func TestDecoderLenBound(t *testing.T) {
	e := NewEncoder(0)
	e.U32(1 << 30)
	d := NewDecoder(e.buf)
	if n := d.Len(1024); n != 0 || d.Err() == nil {
		t.Errorf("Len(1024) on huge count: n=%d err=%v", n, d.Err())
	}
}

func TestStringLenBound(t *testing.T) {
	e := NewEncoder(0)
	e.U32(1 << 31) // claims a 2 GiB string with no bytes behind it
	d := NewDecoder(e.buf)
	if s := d.String(); s != "" || d.Err() == nil {
		t.Errorf("oversized string length accepted: %q err=%v", s, d.Err())
	}
}

func TestCheckedTooShort(t *testing.T) {
	for n := 0; n < 4; n++ {
		if _, err := NewDecoderChecked(make([]byte, n)); err == nil {
			t.Errorf("%d-byte blob accepted", n)
		}
	}
}

func TestBoolsRoundTripWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 1000} {
		v := make([]bool, n)
		for i := range v {
			v[i] = rng.Intn(2) == 1
		}
		e := NewEncoder(0)
		e.Bools(v)
		d := NewDecoder(e.buf)
		back := make([]bool, n)
		d.Bools(back)
		if d.Err() != nil {
			t.Fatalf("n=%d: %v", n, d.Err())
		}
		for i := range v {
			if back[i] != v[i] {
				t.Fatalf("n=%d: bit %d differs", n, i)
			}
		}
		if d.Remaining() != 0 {
			t.Fatalf("n=%d: %d bytes left over", n, d.Remaining())
		}
	}
}
