package xrand

import (
	"testing"

	"accord/internal/ckpt"
)

func TestSnapshotRestoreStream(t *testing.T) {
	r := New(42)
	for i := 0; i < 1000; i++ {
		r.Uint64()
	}
	e := ckpt.NewEncoder(0)
	r.Snapshot(e)
	blob := e.Finish()

	want := make([]uint64, 64)
	for i := range want {
		want[i] = r.Uint64()
	}

	fresh := New(7) // different seed: restore must fully overwrite
	d, err := ckpt.NewDecoderChecked(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(d); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i, w := range want {
		if got := fresh.Uint64(); got != w {
			t.Fatalf("draw %d: restored stream %#x != original %#x", i, got, w)
		}
	}
}

func TestRestoreRejectsBadInput(t *testing.T) {
	r := New(1)
	e := ckpt.NewEncoder(0)
	r.Snapshot(e)
	blob := e.Finish()
	payload := blob[:len(blob)-4]

	// Version mismatch.
	bad := append([]byte{payload[0] + 1}, payload[1:]...)
	if err := New(1).Restore(ckpt.NewDecoder(bad)); err == nil {
		t.Error("version-bumped snapshot accepted")
	}

	// Out-of-range cursors.
	c := append([]byte(nil), payload...)
	c[1], c[2] = 0xFF, 0xFF // tap >= rngLen
	if err := New(1).Restore(ckpt.NewDecoder(c)); err == nil {
		t.Error("out-of-range cursor accepted")
	}

	// Truncations never panic and always error.
	for n := 0; n < len(payload); n += 97 {
		if err := New(1).Restore(ckpt.NewDecoder(payload[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}
