// Package xrand is a devirtualized reimplementation of math/rand's
// default generator (the Mitchell & Reeds additive lagged-Fibonacci
// source) that emits the exact same value stream.
//
// The simulator's reproducibility contract pins every result to the
// math/rand draw sequence for a given seed, so the generator cannot be
// swapped for a faster algorithm. What CAN go is the dispatch overhead:
// math/rand routes every draw through a rand.Source interface call,
// which blocks inlining on the hottest calls in the simulator (the
// workload generators draw four-plus values per simulated event).
// xrand.Rand is a concrete struct, so Uint64/Int63/Float64 inline into
// their call sites.
//
// Bit-identity is guaranteed by construction rather than by porting the
// seeding routine: New seeds a real math/rand source and reads 607
// consecutive outputs. Because the lagged-Fibonacci update writes each
// output back into its state vector, those 607 outputs ARE the
// generator's complete state, placed at known offsets. From there the
// update rule (x[feed] += x[tap], both cursors stepping backward) is a
// handful of lines. TestMatchesMathRand locks the equivalence across
// every method the simulator uses.
package xrand

import (
	"math"
	"math/rand"
	"sync"
)

const (
	rngLen = 607
	rngTap = 273
)

// Rand generates the same value stream as
// rand.New(rand.NewSource(seed)) for the methods implemented here.
type Rand struct {
	tap  int32
	feed int32
	vec  [rngLen]int64
}

// seedCache memoizes recovered post-Seed state vectors. Simulation
// sessions construct many generators from a handful of seeds (every
// design point reuses the session seed), and the stdlib seeding pass
// plus state recovery costs tens of microseconds — enough to dominate
// the analytic (non-simulating) experiments. The cache makes repeat
// seeds a 4.8 KB copy.
var seedCache sync.Map // int64 -> *[rngLen]int64

// New returns a generator whose stream is identical to
// rand.New(rand.NewSource(seed)).
func New(seed int64) *Rand {
	r := &Rand{tap: 0, feed: rngLen - rngTap}
	if v, ok := seedCache.Load(seed); ok {
		r.vec = *v.(*[rngLen]int64)
		return r
	}
	src := rand.NewSource(seed).(rand.Source64)
	// Recover the post-Seed state vector S from the first rngLen outputs.
	// The k-th draw (1-based) computes o_k = S[feed_k] + vec[tap_k] and
	// stores it at feed_k = (rngLen-rngTap-k) mod rngLen, with
	// tap_k = (rngLen-k) mod rngLen. Working through which slot holds
	// what at each step: for k > rngTap the tap slot was overwritten at
	// draw k-rngTap, so S[feed_k] = o_k - o_{k-rngTap}; for k <= rngTap
	// the tap slot still holds its seed value (recovered by the first
	// pass), so S[feed_k] = o_k - S[tap_k]. int64 addition wraps, so
	// subtraction inverts it exactly.
	var o [rngLen + 1]int64
	for k := 1; k <= rngLen; k++ {
		o[k] = int64(src.Uint64())
	}
	const feed0 = rngLen - rngTap
	for k := rngTap + 1; k <= rngLen; k++ {
		r.vec[(feed0-k+2*rngLen)%rngLen] = o[k] - o[k-rngTap]
	}
	for k := 1; k <= rngTap; k++ {
		r.vec[feed0-k] = o[k] - r.vec[rngLen-k]
	}
	vec := r.vec
	seedCache.Store(seed, &vec)
	return r
}

// Uint64 returns the next raw 64-bit value.
func (r *Rand) Uint64() uint64 {
	tap, feed := r.tap-1, r.feed-1
	if tap < 0 {
		tap += rngLen
	}
	if feed < 0 {
		feed += rngLen
	}
	x := r.vec[feed] + r.vec[tap]
	r.vec[feed] = x
	r.tap, r.feed = tap, feed
	return uint64(x)
}

// Int63 returns a non-negative 63-bit integer.
func (r *Rand) Int63() int64 { return int64(r.Uint64() &^ (1 << 63)) }

// Uint32 matches rand.Rand.Uint32.
func (r *Rand) Uint32() uint32 { return uint32(r.Int63() >> 31) }

// Int31 matches rand.Rand.Int31.
func (r *Rand) Int31() int32 { return int32(r.Int63() >> 32) }

// Float64 matches rand.Rand.Float64, including the Go 1 stream quirk of
// dividing a 63-bit draw by 2^63 and re-drawing on a result of 1.0.
func (r *Rand) Float64() float64 {
	for {
		f := float64(r.Int63()) / (1 << 63)
		if f != 1 {
			return f
		}
	}
}

// Int63n matches rand.Rand.Int63n.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("invalid argument to Int63n")
	}
	if n&(n-1) == 0 {
		return r.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return v % n
}

// Int31n matches rand.Rand.Int31n.
func (r *Rand) Int31n(n int32) int32 {
	if n <= 0 {
		panic("invalid argument to Int31n")
	}
	if n&(n-1) == 0 {
		return r.Int31() & (n - 1)
	}
	max := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	v := r.Int31()
	for v > max {
		v = r.Int31()
	}
	return v % n
}

// Intn matches rand.Rand.Intn.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("invalid argument to Intn")
	}
	if n <= 1<<31-1 {
		return int(r.Int31n(int32(n)))
	}
	return int(r.Int63n(int64(n)))
}

// ExpFloat64 matches rand.Rand.ExpFloat64: Marsaglia & Tsang's ziggurat
// with the stdlib's exact tables (see exptables.go).
func (r *Rand) ExpFloat64() float64 {
	const re = 7.69711747013104972
	for {
		j := r.Uint32()
		i := j & 0xFF
		x := float64(j) * float64(we[i])
		if j < ke[i] {
			return x
		}
		if i == 0 {
			return re - math.Log(r.Float64())
		}
		if fe[i]+float32(r.Float64())*(fe[i-1]-fe[i]) < float32(math.Exp(-x)) {
			return x
		}
	}
}
