package xrand

import "accord/internal/ckpt"

// rngVersion tags the Rand encoding; bump on any layout change.
const rngVersion = 1

// Snapshot serializes the generator's complete state: the two cursors
// and the 607-word lagged-Fibonacci vector. A restored generator emits
// the exact continuation of the snapshotted stream.
func (r *Rand) Snapshot(e *ckpt.Encoder) {
	e.U8(rngVersion)
	e.U32(uint32(r.tap))
	e.U32(uint32(r.feed))
	for _, v := range r.vec {
		e.I64(v)
	}
}

// Restore replaces the generator's state with a snapshot.
func (r *Rand) Restore(d *ckpt.Decoder) error {
	if v := d.U8(); d.Err() == nil && v != rngVersion {
		d.Failf("xrand: snapshot version %d, want %d", v, rngVersion)
	}
	tap, feed := d.U32(), d.U32()
	if d.Err() == nil && (tap >= rngLen || feed >= rngLen) {
		d.Failf("xrand: cursor out of range (tap=%d feed=%d)", tap, feed)
	}
	var vec [rngLen]int64
	for i := range vec {
		vec[i] = d.I64()
	}
	if err := d.Err(); err != nil {
		return err
	}
	r.tap, r.feed = int32(tap), int32(feed)
	r.vec = vec
	return nil
}
