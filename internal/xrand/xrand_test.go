package xrand

import (
	"math/rand"
	"testing"
)

// TestMatchesMathRand is the package's reason to exist: for a spread of
// seeds, a mixed-method draw sequence must be value-identical to
// math/rand. Every method the simulator calls is exercised, in an order
// chosen by a third RNG so method interleavings vary between seeds.
func TestMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{0, 1, 2, 42, -7, 12345, 1 << 40} {
		got := New(seed)
		want := rand.New(rand.NewSource(seed))
		pick := rand.New(rand.NewSource(seed ^ 0x5eed))
		for op := 0; op < 500_000; op++ {
			switch pick.Intn(8) {
			case 0:
				if g, w := got.Uint64(), want.Uint64(); g != w {
					t.Fatalf("seed %d op %d: Uint64 %d != %d", seed, op, g, w)
				}
			case 1:
				if g, w := got.Int63(), want.Int63(); g != w {
					t.Fatalf("seed %d op %d: Int63 %d != %d", seed, op, g, w)
				}
			case 2:
				if g, w := got.Float64(), want.Float64(); g != w {
					t.Fatalf("seed %d op %d: Float64 %v != %v", seed, op, g, w)
				}
			case 3:
				if g, w := got.ExpFloat64(), want.ExpFloat64(); g != w {
					t.Fatalf("seed %d op %d: ExpFloat64 %v != %v", seed, op, g, w)
				}
			case 4:
				n := pick.Int63n(1<<40) + 1
				if g, w := got.Int63n(n), want.Int63n(n); g != w {
					t.Fatalf("seed %d op %d: Int63n(%d) %d != %d", seed, op, n, g, w)
				}
			case 5:
				n := pick.Intn(1<<20) + 1
				if g, w := got.Intn(n), want.Intn(n); g != w {
					t.Fatalf("seed %d op %d: Intn(%d) %d != %d", seed, op, n, g, w)
				}
			case 6:
				if g, w := got.Uint32(), want.Uint32(); g != w {
					t.Fatalf("seed %d op %d: Uint32 %d != %d", seed, op, g, w)
				}
			case 7:
				if g, w := got.Int31(), want.Int31(); g != w {
					t.Fatalf("seed %d op %d: Int31 %d != %d", seed, op, g, w)
				}
			}
		}
	}
}

// TestPanicsMatch pins the argument-validation behaviour to stdlib's.
func TestPanicsMatch(t *testing.T) {
	r := New(1)
	for _, fn := range []func(){
		func() { r.Intn(0) },
		func() { r.Int63n(-1) },
		func() { r.Int31n(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on non-positive bound")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkXrandFloat64(b *testing.B) {
	r := New(1)
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Float64()
	}
	_ = sink
}

func BenchmarkMathRandFloat64(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Float64()
	}
	_ = sink
}
