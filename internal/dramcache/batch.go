package dramcache

import "accord/internal/memtypes"

// This file implements Interface.FunctionalBatch for every bundled
// organization. Each implementation is the same trivial loop over the
// backend's own functional ops — but on a concrete receiver, so the calls
// devirtualize and the per-event costs of the generic path (two interface
// dispatches, an Event struct round-trip, a window bounds check) are paid
// once per batch instead of once per event. The sampling spine
// (sim.advanceFunctional via cpu.StepFunctionalBatch) hands whole
// trace-cache windows here; dctest proves batch-vs-single-step
// snapshot-byte equivalence for all registered backends.

// FunctionalWrite is the flags bit selecting WritebackFunctional; it
// matches workloads.FlagWrite so trace-cache flag bytes pass through
// without re-encoding.
const FunctionalWrite uint8 = 1 << 0

// FunctionalBatch implements Interface for the set-associative cache.
func (c *Cache) FunctionalBatch(lines []memtypes.LineAddr, flags []uint8) {
	for i, line := range lines {
		if flags[i]&FunctionalWrite != 0 {
			c.WritebackFunctional(line)
		} else {
			c.AccessReadFunctional(line)
		}
	}
}

// FunctionalBatch implements Interface for the column-associative cache.
func (c *CACache) FunctionalBatch(lines []memtypes.LineAddr, flags []uint8) {
	for i, line := range lines {
		if flags[i]&FunctionalWrite != 0 {
			c.WritebackFunctional(line)
		} else {
			c.AccessReadFunctional(line)
		}
	}
}

// FunctionalBatch implements Interface for Banshee.
func (c *Banshee) FunctionalBatch(lines []memtypes.LineAddr, flags []uint8) {
	for i, line := range lines {
		if flags[i]&FunctionalWrite != 0 {
			c.WritebackFunctional(line)
		} else {
			c.AccessReadFunctional(line)
		}
	}
}

// FunctionalBatch implements Interface for Gemini.
func (c *Gemini) FunctionalBatch(lines []memtypes.LineAddr, flags []uint8) {
	for i, line := range lines {
		if flags[i]&FunctionalWrite != 0 {
			c.WritebackFunctional(line)
		} else {
			c.AccessReadFunctional(line)
		}
	}
}

// FunctionalBatch implements Interface for TDRAM.
func (c *TDRAM) FunctionalBatch(lines []memtypes.LineAddr, flags []uint8) {
	for i, line := range lines {
		if flags[i]&FunctionalWrite != 0 {
			c.WritebackFunctional(line)
		} else {
			c.AccessReadFunctional(line)
		}
	}
}
