// Package dramcache models the gigascale DRAM cache (L4) of the paper: an
// alloy-style, tags-with-data organization in stacked DRAM, direct-mapped
// or set-associative with all ways of a set co-located in one row buffer
// (Figure 2), in front of a slow non-volatile main memory.
//
// Every probe of a way streams a 72-byte tag+data unit from the stacked
// DRAM device, so associativity costs real bandwidth; the lookup policies
// of Section II-C (parallel, serial, way-predicted, plus the idealized and
// perfect-prediction oracles) decide how many probes each access pays.
// Way prediction and way install are delegated to a core.Policy — the
// coordination that ACCORD contributes.
package dramcache

import (
	"fmt"
	"math"
	"math/bits"

	"accord/internal/ckpt"
	"accord/internal/core"
	"accord/internal/dram"
	"accord/internal/memtypes"
	"accord/internal/metrics"
)

// Lookup selects how the cache locates a line among its ways
// (Section II-C and Figure 3).
type Lookup int

const (
	// LookupPredicted probes the policy-predicted way first and the
	// remaining candidate ways only if it misses. This is the design
	// ACCORD targets; with one way it degenerates to direct-mapped.
	LookupPredicted Lookup = iota
	// LookupParallel streams all candidate ways on every access.
	LookupParallel
	// LookupSerial probes ways one at a time, stopping on a tag match.
	LookupSerial
	// LookupPerfect is the perfect-way-prediction oracle: hits probe
	// exactly the resident way; misses still pay full confirmation.
	LookupPerfect
	// LookupIdealized is the Figure 1(c) oracle: every access costs one
	// probe regardless of hit or miss (bandwidth and latency of 1-way).
	LookupIdealized
)

// String implements fmt.Stringer.
func (l Lookup) String() string {
	switch l {
	case LookupPredicted:
		return "predicted"
	case LookupParallel:
		return "parallel"
	case LookupSerial:
		return "serial"
	case LookupPerfect:
		return "perfect"
	case LookupIdealized:
		return "idealized"
	default:
		return fmt.Sprintf("Lookup(%d)", int(l))
	}
}

// Config describes a DRAM cache instance.
type Config struct {
	CapacityBytes int64
	Ways          int
	Lookup        Lookup
	// LRUReplacement switches the install-victim choice from the policy's
	// steering to true LRU. Because tags (and replacement state) live in
	// the DRAM array, every hit then pays an extra state-update write —
	// the bandwidth tax of footnote 2.
	LRUReplacement bool
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.Ways < 1:
		return fmt.Errorf("dramcache: ways = %d, must be >= 1", c.Ways)
	case c.CapacityBytes < int64(c.Ways)*memtypes.LineSize:
		return fmt.Errorf("dramcache: capacity %d below one set", c.CapacityBytes)
	case c.CapacityBytes%(int64(c.Ways)*memtypes.LineSize) != 0:
		return fmt.Errorf("dramcache: capacity %d not divisible by set size", c.CapacityBytes)
	}
	sets := c.CapacityBytes / (int64(c.Ways) * memtypes.LineSize)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("dramcache: %d sets, must be a power of two", sets)
	}
	return nil
}

// ReadResult reports one demand read.
type ReadResult struct {
	Done int64 // cycle the requested data is available
	Hit  bool
	// Way is the way the line resides in after the access (the hit way, or
	// the install way on a miss); it feeds the L3's DCP state.
	Way uint8
	// FirstProbeHit is true when the access was serviced by the first
	// probe (the fast path every lookup design optimizes for).
	FirstProbeHit bool
}

// Stats counts the cache's externally meaningful events.
type Stats struct {
	Reads    uint64
	ReadHits uint64

	Writebacks    uint64
	WritebackHits uint64

	// Way-prediction accounting over demand-read hits.
	Predictions uint64
	Correct     uint64

	// DRAM-cache device traffic by cause, in 72-byte probe/write units.
	ProbeReads      uint64 // lookup + miss-confirmation reads
	InstallWrites   uint64 // line fills (demand and writeback installs)
	WritebackWrites uint64 // writeback updates of resident lines
	VictimReads     uint64 // reads needed only to evict an unprobed victim
	ReplStateOps    uint64 // LRU replacement-state update writes

	// Main-memory traffic in 64-byte lines.
	NVMReads  uint64
	NVMWrites uint64

	// FilteredMisses counts misses confirmed with zero probes thanks to
	// policy metadata (partial tags).
	FilteredMisses uint64

	HitLatency, MissLatency LatencySum
}

// Add accumulates o into s field by field; Stats is a plain sum type,
// so per-interval deltas from sampled measured windows compose by
// addition (used by sim's sampled-run stat committer).
func (s *Stats) Add(o Stats) {
	s.Reads += o.Reads
	s.ReadHits += o.ReadHits
	s.Writebacks += o.Writebacks
	s.WritebackHits += o.WritebackHits
	s.Predictions += o.Predictions
	s.Correct += o.Correct
	s.ProbeReads += o.ProbeReads
	s.InstallWrites += o.InstallWrites
	s.WritebackWrites += o.WritebackWrites
	s.VictimReads += o.VictimReads
	s.ReplStateOps += o.ReplStateOps
	s.NVMReads += o.NVMReads
	s.NVMWrites += o.NVMWrites
	s.FilteredMisses += o.FilteredMisses
	s.HitLatency.Add(o.HitLatency)
	s.MissLatency.Add(o.MissLatency)
}

// Add accumulates another latency population into l.
func (l *LatencySum) Add(o LatencySum) {
	l.Count += o.Count
	l.Sum += o.Sum
	for i := range l.Buckets {
		l.Buckets[i] += o.Buckets[i]
	}
}

// LatencySum accumulates a latency population with coarse power-of-two
// buckets for percentile estimation.
type LatencySum struct {
	Count   uint64
	Sum     int64
	Buckets [24]uint64 // bucket i holds latencies in [2^i, 2^(i+1))
}

func (l *LatencySum) add(cycles int64) {
	l.Count++
	l.Sum += cycles
	// floor(log2(cycles)) via bits.Len64, clamped to the last bucket —
	// same bucket the shift loop this replaces produced for every input
	// (cycles <= 1, including non-positive, lands in bucket 0).
	b := 0
	if cycles > 1 {
		b = bits.Len64(uint64(cycles)) - 1
		if b > len(l.Buckets)-1 {
			b = len(l.Buckets) - 1
		}
	}
	l.Buckets[b]++
}

// Percentile returns an upper bound on the q-quantile latency (q in
// [0,1]) from the bucket histogram.
func (l LatencySum) Percentile(q float64) int64 {
	if l.Count == 0 {
		return 0
	}
	want := uint64(q * float64(l.Count))
	var cum uint64
	for i, n := range l.Buckets {
		cum += n
		if cum > want {
			return 1 << uint(i+1)
		}
	}
	return 1 << uint(len(l.Buckets))
}

// Mean returns the average latency in cycles.
func (l LatencySum) Mean() float64 {
	if l.Count == 0 {
		return 0
	}
	return float64(l.Sum) / float64(l.Count)
}

// HitRate returns demand-read hit rate in [0,1].
func (s *Stats) HitRate() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadHits) / float64(s.Reads)
}

// PredictionAccuracy returns the fraction of predicted hits that probed
// the right way first.
func (s *Stats) PredictionAccuracy() float64 {
	if s.Predictions == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Predictions)
}

// ProbesPerRead returns average probe reads per demand read (Table I).
func (s *Stats) ProbesPerRead() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ProbeReads) / float64(s.Reads)
}

// latencyBounds are the exported bucket upper bounds of LatencySum's
// power-of-two histogram: bucket i covers [2^i, 2^(i+1)), so its upper
// bound is 2^(i+1); the final bucket is overflow.
var latencyBounds = metrics.PowerOfTwoBounds(len(LatencySum{}.Buckets) - 1)

// histValue exports the latency population in the registry's histogram
// form.
func (l *LatencySum) histValue() metrics.HistogramValue {
	return metrics.HistogramValue{
		Count:   l.Count,
		Sum:     float64(l.Sum),
		Buckets: append([]uint64(nil), l.Buckets[:]...),
	}
}

// Register publishes every cache statistic into r under prefix (e.g.
// "l4"). The registrations are views: the simulation hot path keeps
// bumping the plain struct fields, and the registry reads them at
// snapshot time, so the plain-text tables (rendered from the same
// fields) and the JSON/CSV export can never disagree.
func (s *Stats) Register(r *metrics.Registry, prefix string) {
	c := func(name, help string, fn func() uint64) { r.CounterFunc(prefix+"."+name, help, fn) }
	c("reads", "demand reads reaching the DRAM cache", func() uint64 { return s.Reads })
	c("read_hits", "demand reads that hit", func() uint64 { return s.ReadHits })
	c("writebacks", "dirty L3 evictions received", func() uint64 { return s.Writebacks })
	c("writeback_hits", "writebacks that found the line resident", func() uint64 { return s.WritebackHits })
	c("predictions", "way predictions made on demand-read hits", func() uint64 { return s.Predictions })
	c("predictions_correct", "way predictions whose first probe hit", func() uint64 { return s.Correct })
	c("probe_reads", "72 B tag+data probe reads (lookup + miss confirmation)", func() uint64 { return s.ProbeReads })
	c("install_writes", "72 B line-install writes", func() uint64 { return s.InstallWrites })
	c("writeback_writes", "72 B resident-line writeback updates", func() uint64 { return s.WritebackWrites })
	c("victim_reads", "72 B reads needed only to evict an unprobed victim", func() uint64 { return s.VictimReads })
	c("repl_state_ops", "LRU replacement-state update writes", func() uint64 { return s.ReplStateOps })
	c("nvm_reads", "64 B line fills from main memory", func() uint64 { return s.NVMReads })
	c("nvm_writes", "64 B dirty-victim writes to main memory", func() uint64 { return s.NVMWrites })
	c("filtered_misses", "misses confirmed with zero probes via policy metadata", func() uint64 { return s.FilteredMisses })

	r.GaugeFunc(prefix+".hit_rate_pct", "demand-read hit rate, percent (absent before any read)",
		func() float64 { return pctOrNaN(s.ReadHits, s.Reads) })
	r.GaugeFunc(prefix+".prediction_accuracy_pct", "way-prediction accuracy, percent (absent before any predicted hit)",
		func() float64 { return pctOrNaN(s.Correct, s.Predictions) })
	r.GaugeFunc(prefix+".probes_per_read", "average probe reads per demand read (absent before any read)",
		func() float64 { return ratioOrNaN(s.ProbeReads, s.Reads) })

	r.HistogramFunc(prefix+".hit_latency", "demand-hit latency, cycles (power-of-two buckets)",
		latencyBounds, func() metrics.HistogramValue { return s.HitLatency.histValue() })
	r.HistogramFunc(prefix+".miss_latency", "demand-miss latency, cycles (power-of-two buckets)",
		latencyBounds, func() metrics.HistogramValue { return s.MissLatency.histValue() })
}

// pctOrNaN and ratioOrNaN keep the gauge views' "undefined" semantics in
// one place: a zero denominator exports as an absent value, never as 0.
func pctOrNaN(num, den uint64) float64 { return 100 * ratioOrNaN(num, den) }

func ratioOrNaN(num, den uint64) float64 {
	if den == 0 {
		return math.NaN()
	}
	return float64(num) / float64(den)
}

// Interface is the complete L4-organization contract: everything the rest
// of the system needs from a DRAM-cache backend. All five bundled
// organizations (nway, ca, banshee, gemini, tdram) implement it, and the
// conformance suite in dctest exercises every obligation; new backends
// register through Register and must pass the same suite.
type Interface interface {
	Name() string
	AccessRead(at int64, line memtypes.LineAddr) ReadResult
	Writeback(at int64, line memtypes.LineAddr) int64
	// AccessReadFunctional and WritebackFunctional are the state-only
	// counterparts of AccessRead/Writeback used by functional
	// fast-forwarding: same tag/dirty/replacement/policy mutations, no
	// device traffic, no Stats, no timestamps (see functional.go). A
	// functional op sequence must leave Snapshot-identical state to the
	// same detailed sequence (stats reset at the comparison point).
	AccessReadFunctional(line memtypes.LineAddr) (way uint8, hit bool)
	WritebackFunctional(line memtypes.LineAddr)
	// FunctionalBatch applies a run of functional operations in one call:
	// lines[i] is a WritebackFunctional when flags[i]&FunctionalWrite is
	// set, an AccessReadFunctional otherwise (other flag bits are
	// ignored, so trace-cache flag bytes pass through unmasked). The
	// state left behind must be byte-identical to the per-event calls in
	// the same order; the point of the method is that each backend runs a
	// concrete-receiver loop with no per-event interface dispatch, which
	// is what the sampling spine's throughput rides on (see batch.go and
	// DESIGN.md §12). len(flags) must be >= len(lines).
	FunctionalBatch(lines []memtypes.LineAddr, flags []uint8)
	Contains(line memtypes.LineAddr) (way int, ok bool)
	Stats() *Stats
	ResetStats()
	StorageBytes() int64
	// Snapshot and Restore serialize the backend's complete state (tags,
	// replacement/frequency metadata, stats, any attached policy) with a
	// leading version byte. Restore must reject malformed input with an
	// error — truncation, version skew, structural mismatch — and never
	// panic; on error the instance is unspecified and must be discarded.
	Snapshot(e *ckpt.Encoder) error
	Restore(d *ckpt.Decoder) error
	// CheckInvariants validates internal consistency (no duplicate
	// residents, metadata within bounds); tests call it after random
	// operation sequences and after restores.
	CheckInvariants() error
	// RegisterMetrics publishes the backend's statistics (and any
	// sub-component metrics, e.g. an attached policy's) into r under
	// prefix.
	RegisterMetrics(r *metrics.Registry, prefix string)
}

// Cache is the set-associative DRAM cache model.
type Cache struct {
	cfg    Config
	dev    *dram.Device // stacked DRAM holding tags-with-data
	nvm    *dram.Device // main memory behind the cache
	policy core.Policy

	sets     uint64
	setMask  uint64
	setShift uint
	ways     int

	// meta fuses the per-way tag, valid, and dirty state that findWay
	// scans on every access into one 16-byte record, so a whole 2-way set
	// fits in half a host cache line instead of spanning three arrays.
	meta  []wayMeta
	lru   []uint64 // replacement stamps, used only with LRUReplacement
	clock uint64

	devMap dram.Mapper // set -> device row (sets per DRAM row precomputed)
	nvmMap dram.Mapper // line -> NVM row

	stats   Stats
	candBuf []int
	probes  []int
}

// New builds the cache. The policy's geometry must match the configured
// sets/ways; mismatches panic, as do invalid configurations.
func New(cfg Config, policy core.Policy, dev, nvm *dram.Device) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := uint64(cfg.CapacityBytes / (int64(cfg.Ways) * memtypes.LineSize))
	n := sets * uint64(cfg.Ways)
	setBytes := cfg.Ways * memtypes.TagUnitSize
	upr := dev.Config().RowBytes / setBytes
	if upr < 1 {
		upr = 1
	}
	nvmUPR := nvm.Config().RowBytes / memtypes.LineSize
	if nvmUPR < 1 {
		nvmUPR = 1
	}
	c := &Cache{
		cfg:      cfg,
		dev:      dev,
		nvm:      nvm,
		policy:   policy,
		sets:     sets,
		setMask:  sets - 1,
		setShift: log2(sets),
		ways:     cfg.Ways,
		meta:     make([]wayMeta, n),
		devMap:   dev.Config().NewMapper(upr),
		nvmMap:   nvm.Config().NewMapper(nvmUPR),
		candBuf:  make([]int, 0, cfg.Ways),
		probes:   make([]int, 0, cfg.Ways),
	}
	if cfg.LRUReplacement {
		c.lru = make([]uint64, n)
	}
	return c
}

func log2(x uint64) uint {
	var n uint
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

// Name identifies the configuration in reports.
func (c *Cache) Name() string {
	repl := "rand"
	if c.cfg.LRUReplacement {
		repl = "lru"
	}
	return fmt.Sprintf("%dway-%s-%s-%s", c.ways, c.cfg.Lookup, c.policy.Name(), repl)
}

// Stats returns the mutable statistics block.
func (c *Cache) Stats() *Stats { return &c.stats }

// ResetStats zeroes statistics (cache contents persist), for warmup.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// StorageBytes reports the SRAM metadata cost of the attached policy.
func (c *Cache) StorageBytes() int64 { return c.policy.StorageBytes() }

// policyMetricSource is the optional interface a policy implements to
// publish its own metrics (today: ACCORD's region-table diagnostics).
type policyMetricSource interface {
	RegisterMetrics(*metrics.Registry, string)
}

// RegisterMetrics implements Interface: the cache's own statistics under
// prefix, plus the attached policy's metrics under "policy" when it has
// any (the prefix the exported metric names have always used).
func (c *Cache) RegisterMetrics(r *metrics.Registry, prefix string) {
	c.stats.Register(r, prefix)
	if src, ok := c.policy.(policyMetricSource); ok {
		src.RegisterMetrics(r, "policy")
	}
}

// NumSets returns the set count.
func (c *Cache) NumSets() uint64 { return c.sets }

// Policy returns the attached way policy.
func (c *Cache) Policy() core.Policy { return c.policy }

// wayMeta is the per-way tag store the simulator keeps in host memory
// (the modeled machine keeps it in the DRAM array itself).
type wayMeta struct {
	tag   uint64
	valid bool
	dirty bool
}

func (c *Cache) index(line memtypes.LineAddr) (set, tag uint64) {
	return uint64(line) & c.setMask, uint64(line) >> c.setShift
}

func (c *Cache) slot(set uint64, way int) int { return int(set)*c.ways + way }

func (c *Cache) lineOf(set, tag uint64) memtypes.LineAddr {
	return memtypes.LineAddr(tag<<c.setShift | set)
}

// findWay returns the way holding (set, tag), or -1. The tag compare
// runs first — it almost always decides — so the valid check (needed
// because a zero-value or invalidated entry's stale tag could alias a
// real one) is off the common path.
func (c *Cache) findWay(set, tag uint64) int {
	base := int(set) * c.ways
	ways := c.meta[base : base+c.ways]
	for w := range ways {
		if ways[w].tag == tag && ways[w].valid {
			return w
		}
	}
	return -1
}

// Contains implements Interface (the simulator's idealized DCP source).
func (c *Cache) Contains(line memtypes.LineAddr) (way int, ok bool) {
	set, tag := c.index(line)
	w := c.findWay(set, tag)
	return w, w >= 0
}

// loc maps a set to its device row (all ways co-located, Figure 2b).
func (c *Cache) loc(set uint64) dram.Loc {
	return c.devMap.Map(set)
}

func (c *Cache) nvmLoc(line memtypes.LineAddr) dram.Loc {
	return c.nvmMap.Map(uint64(line))
}

// probeRead streams one 72-byte tag+data unit from the set's row; callers
// compute the set's Loc once per access and reuse it across probes.
func (c *Cache) probeRead(at int64, loc dram.Loc) int64 {
	c.stats.ProbeReads++
	return c.dev.Access(at, loc, memtypes.Read, memtypes.TagUnitSize).DataAt
}

// AccessRead services a demand read that missed the SRAM hierarchy.
func (c *Cache) AccessRead(at int64, line memtypes.LineAddr) ReadResult {
	set, tag := c.index(line)
	region := line.Region()
	loc := c.devMap.Map(set) // one mapping per access, shared by every probe
	actual := c.findWay(set, tag)
	hit := actual >= 0
	c.stats.Reads++

	var done int64
	var firstProbe int // the way probed first, -1 when no probe happened
	confirmedAt := at  // when every candidate way has been checked
	missKnownAt := at  // when the fill to memory can be launched

	// On a miss, the fill is launched when the first probe returns without
	// a tag match (alloy-style memory access prediction); the remaining
	// confirmation probes overlap the long-latency memory read, so miss
	// confirmation costs bandwidth, not serial latency — the property the
	// paper's Section V argument relies on (see DESIGN.md).
	switch c.cfg.Lookup {
	case LookupIdealized:
		// Oracle: one probe no matter what, and the oracle's probe is
		// assumed to cover the victim (1-way install cost, Figure 1c).
		done = c.probeRead(at, loc)
		confirmedAt = done
		missKnownAt = done
		if actual >= 0 {
			firstProbe = actual // never counted as a prediction
		} else {
			firstProbe = 0
		}

	case LookupParallel:
		cands := c.policy.CandidateWays(tag, c.candBuf)
		firstProbe = cands[0]
		done, confirmedAt = c.probeBurst(at, loc, cands, actual)
		missKnownAt = confirmedAt

	case LookupSerial:
		cands := c.policy.CandidateWays(tag, c.candBuf)
		firstProbe = cands[0]
		var first int64
		done, confirmedAt, first = c.probeSerial(at, loc, cands, actual)
		missKnownAt = first

	case LookupPerfect:
		if hit {
			done = c.probeRead(at, loc)
			confirmedAt = done
			missKnownAt = done
			firstProbe = actual
		} else {
			// Even a perfect predictor cannot know the line is absent:
			// the first probe reveals the miss, the remaining probes
			// confirm it in the background (Table I: N transfers).
			cands := c.policy.CandidateWays(tag, c.candBuf)
			firstProbe = cands[0]
			first := c.probeRead(at, loc)
			missKnownAt = first
			if len(cands) > 1 {
				_, confirmedAt = c.probeBurst(first, loc, cands[1:], actual)
			} else {
				confirmedAt = first
			}
			done = confirmedAt
		}

	default: // LookupPredicted
		pred := c.policy.PredictWay(set, tag, region)
		firstProbe = pred
		if hit {
			c.stats.Predictions++
			if pred == actual {
				c.stats.Correct++
			}
		}
		if !hit && c.policy.FilterMiss(set, tag) {
			// Metadata proves absence: no probes at all, and the fill
			// launches immediately.
			c.stats.FilteredMisses++
			confirmedAt = at
			missKnownAt = at
			done = at
			firstProbe = -1
		} else {
			first := c.probeRead(at, loc)
			missKnownAt = first
			if pred == actual {
				done, confirmedAt = first, first
			} else {
				// Mispredict (or miss): burst the remaining candidates.
				rest := c.remainingCandidates(tag, pred)
				done, confirmedAt = c.probeBurst(first, loc, rest, actual)
				if !hit || len(rest) == 0 {
					done = confirmedAt
				}
			}
		}
	}

	c.policy.ObserveAccess(set, tag, region, actual, hit)

	if hit {
		c.stats.ReadHits++
		c.stats.HitLatency.add(done - at)
		if c.cfg.LRUReplacement {
			// Replacement-state update is a write to the line's tag+data
			// unit in DRAM (footnote 2's bandwidth tax).
			c.lru[c.slot(set, actual)] = c.bump()
			c.stats.ReplStateOps++
			c.dev.Access(done, loc, memtypes.Write, memtypes.TagUnitSize)
		}
		return ReadResult{
			Done:          done,
			Hit:           true,
			Way:           uint8(actual),
			FirstProbeHit: firstProbe == actual,
		}
	}

	// Miss: fetch from NVM once the miss is confirmed, then install. The
	// lookup already streamed every candidate way except when the miss was
	// filtered by metadata, so the victim's data is normally on hand.
	//
	// The install (and any victim eviction) is issued at the confirmation
	// time rather than at NVM-data arrival: the fill's bandwidth is
	// consumed at the right rate, but the resource-reservation model must
	// not reserve buses hundreds of cycles in the future, which would
	// penalize unrelated earlier accesses (see DESIGN.md).
	victimProbed := firstProbe >= 0
	c.stats.NVMReads++
	nvmDone := c.nvm.Access(missKnownAt, c.nvmLoc(line), memtypes.Read, memtypes.LineSize).DataAt
	way := c.install(missKnownAt, loc, set, tag, region, false, victimProbed)
	if nvmDone < confirmedAt {
		// Data cannot be released before every way has been ruled out (a
		// later way could hold a newer dirty copy).
		nvmDone = confirmedAt
	}
	c.stats.MissLatency.add(nvmDone - at)
	return ReadResult{Done: nvmDone, Hit: false, Way: uint8(way)}
}

// remainingCandidates returns the candidate ways excluding the one already
// probed.
func (c *Cache) remainingCandidates(tag uint64, probed int) []int {
	cands := c.policy.CandidateWays(tag, c.candBuf)
	c.probes = c.probes[:0]
	for _, w := range cands {
		if w != probed {
			c.probes = append(c.probes, w)
		}
	}
	return c.probes
}

// probeBurst issues probes for all ways at once; it returns the cycle the
// target way's data arrives (max when there is no target) and the cycle
// the full burst completes (miss confirmation).
func (c *Cache) probeBurst(at int64, loc dram.Loc, ways []int, target int) (dataAt, allDone int64) {
	dataAt, allDone = at, at
	for _, w := range ways {
		t := c.probeRead(at, loc)
		if t > allDone {
			allDone = t
		}
		if w == target {
			dataAt = t
		}
	}
	if target < 0 {
		dataAt = allDone
	}
	return dataAt, allDone
}

// probeSerial issues dependent probes way by way, stopping at the target;
// firstDone is the completion of the first probe (when a fill can launch).
func (c *Cache) probeSerial(at int64, loc dram.Loc, ways []int, target int) (dataAt, allDone, firstDone int64) {
	t := at
	firstDone = at
	for i, w := range ways {
		t = c.probeRead(t, loc)
		if i == 0 {
			firstDone = t
		}
		if w == target {
			return t, t, firstDone
		}
	}
	return t, t, firstDone
}

func (c *Cache) bump() uint64 {
	c.clock++
	return c.clock
}

// install places (set, tag) into the cache at the steered (or LRU) way,
// writing the 72-byte unit and writing any dirty victim back to NVM.
// victimProbed says whether the lookup already streamed the victim's data;
// when it did not, the victim unit must be read before being overwritten.
// It returns the chosen way.
func (c *Cache) install(at int64, loc dram.Loc, set, tag uint64, region memtypes.RegionID, dirty, victimProbed bool) int {
	var way int
	if c.cfg.LRUReplacement {
		way = c.lruVictim(set, tag)
	} else {
		way = c.policy.InstallWay(set, tag, region)
	}
	s := c.slot(set, way)
	if !victimProbed {
		// Whether the slot even holds valid data is only discoverable by
		// reading its tag+data unit from the DRAM array.
		c.stats.VictimReads++
		at = c.dev.Access(at, loc, memtypes.Read, memtypes.TagUnitSize).DataAt
	}
	m := &c.meta[s]
	if m.valid && m.dirty {
		victim := c.lineOf(set, m.tag)
		c.stats.NVMWrites++
		c.nvm.Access(at, c.nvmLoc(victim), memtypes.Write, memtypes.LineSize)
	}
	*m = wayMeta{tag: tag, valid: true, dirty: dirty}
	if c.cfg.LRUReplacement {
		c.lru[s] = c.bump()
	}
	c.stats.InstallWrites++
	c.dev.Access(at, loc, memtypes.Write, memtypes.TagUnitSize)
	c.policy.ObserveInstall(set, tag, region, way)
	return way
}

// lruVictim picks the least-recently-stamped candidate way.
func (c *Cache) lruVictim(set, tag uint64) int {
	cands := c.policy.CandidateWays(tag, c.candBuf)
	best := cands[0]
	for _, w := range cands[1:] {
		if c.lru[c.slot(set, w)] < c.lru[c.slot(set, best)] {
			best = w
		}
	}
	return best
}

// Writeback handles a dirty L3 eviction. With the paper's DCP+way
// extension the L3 already knows whether and where the line resides, so a
// resident line is updated with a single write and no probe; an absent
// line is installed (one victim-read plus one write).
func (c *Cache) Writeback(at int64, line memtypes.LineAddr) int64 {
	set, tag := c.index(line)
	region := line.Region()
	loc := c.devMap.Map(set)
	c.stats.Writebacks++
	if way := c.findWay(set, tag); way >= 0 {
		c.stats.WritebackHits++
		c.meta[c.slot(set, way)].dirty = true
		c.stats.WritebackWrites++
		res := c.dev.Access(at, loc, memtypes.Write, memtypes.TagUnitSize)
		if c.cfg.LRUReplacement {
			c.lru[c.slot(set, way)] = c.bump()
		}
		return res.DataAt
	}
	// Absent: write-allocate. The victim unit must be read before it is
	// overwritten (its tag and dirty state live in DRAM), which install
	// accounts for via victimProbed=false.
	c.install(at, loc, set, tag, region, true, false)
	return at
}

// CheckInvariants validates that no set holds duplicate tags and that
// SWS-restricted lines are in allowed ways; tests call it after random
// operation sequences.
func (c *Cache) CheckInvariants() error {
	buf := make([]int, 0, c.ways)
	seen := make([]uint64, 0, c.ways) // reused across sets; no per-set map
	for set := uint64(0); set < c.sets; set++ {
		seen = seen[:0]
		for w := 0; w < c.ways; w++ {
			m := &c.meta[c.slot(set, w)]
			if !m.valid {
				continue
			}
			for _, t := range seen {
				if t == m.tag {
					return fmt.Errorf("dramcache: duplicate tag %#x in set %d", m.tag, set)
				}
			}
			seen = append(seen, m.tag)
			ok := false
			for _, cw := range c.policy.CandidateWays(m.tag, buf) {
				if cw == w {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("dramcache: tag %#x in non-candidate way %d of set %d", m.tag, w, set)
			}
		}
	}
	return nil
}
