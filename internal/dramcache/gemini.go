package dramcache

import (
	"fmt"

	"accord/internal/ckpt"
	"accord/internal/dram"
	"accord/internal/memtypes"
	"accord/internal/metrics"
)

// Gemini models the hybrid set/way mapping design of the Gemini DRAM
// cache (PAPERS.md): a 4-way set-associative tags-with-data cache whose
// way placement is itself address-mapped. Each line has a home way
// derived from its tag bits; installs prefer the home way (falling back
// to the first free way in a fixed XOR probe order), so on a lookup the
// home way is overwhelmingly likely to hold the line and is probed first
// — way prediction by construction, with zero SRAM and no training.
// Mispredicted hits burst the remaining ways of the set (all co-located
// in one row, so the extra probes are row hits); misses confirm the same
// way, overlapping the NVM fill exactly like the nway organization.
//
// Unlike the CA-cache, a slow hit triggers no swap: the hybrid mapping is
// static, so there is no "fast slot" to promote into and no swap
// bandwidth tax — the property that distinguishes the design.
type Gemini struct {
	dev *dram.Device
	nvm *dram.Device

	sets     uint64
	setMask  uint64
	setShift uint

	meta []wayMeta // sets * geminiWays

	devMap dram.Mapper // set -> device row
	nvmMap dram.Mapper // line -> NVM row

	stats Stats
}

// geminiWays is the fixed associativity; the XOR probe order below needs
// a power of two.
const geminiWays = 4

// NewGemini builds the hybrid-mapped cache.
func NewGemini(capacityBytes int64, dev, nvm *dram.Device) (*Gemini, error) {
	cfg := Config{CapacityBytes: capacityBytes, Ways: geminiWays}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := uint64(capacityBytes / (geminiWays * memtypes.LineSize))
	setBytes := geminiWays * memtypes.TagUnitSize
	upr := dev.Config().RowBytes / setBytes
	if upr < 1 {
		upr = 1
	}
	nvmUPR := nvm.Config().RowBytes / memtypes.LineSize
	if nvmUPR < 1 {
		nvmUPR = 1
	}
	return &Gemini{
		dev:      dev,
		nvm:      nvm,
		sets:     sets,
		setMask:  sets - 1,
		setShift: log2(sets),
		meta:     make([]wayMeta, sets*geminiWays),
		devMap:   dev.Config().NewMapper(upr),
		nvmMap:   nvm.Config().NewMapper(nvmUPR),
	}, nil
}

// Name implements Interface.
func (c *Gemini) Name() string { return "gemini" }

// Stats implements Interface.
func (c *Gemini) Stats() *Stats { return &c.stats }

// ResetStats implements Interface.
func (c *Gemini) ResetStats() { c.stats = Stats{} }

// StorageBytes implements Interface: the mapping is pure address
// arithmetic, so the design needs no SRAM metadata at all.
func (c *Gemini) StorageBytes() int64 { return 0 }

// RegisterMetrics implements Interface.
func (c *Gemini) RegisterMetrics(r *metrics.Registry, prefix string) {
	c.stats.Register(r, prefix)
}

func (c *Gemini) index(line memtypes.LineAddr) (set, tag uint64) {
	return uint64(line) & c.setMask, uint64(line) >> c.setShift
}

// homeWay is the hybrid mapping: the way a line's address steers it to.
func (c *Gemini) homeWay(tag uint64) int { return int(tag & (geminiWays - 1)) }

// probeOrder writes the fixed XOR probe sequence starting at the home way
// into buf (home, home^1, home^2, home^3): deterministic, and every way
// of the set appears exactly once.
func (c *Gemini) probeOrder(tag uint64, buf *[geminiWays]int) {
	home := c.homeWay(tag)
	for i := 0; i < geminiWays; i++ {
		buf[i] = home ^ i
	}
}

func (c *Gemini) slot(set uint64, way int) int { return int(set)*geminiWays + way }

func (c *Gemini) lineOf(set, tag uint64) memtypes.LineAddr {
	return memtypes.LineAddr(tag<<c.setShift | set)
}

func (c *Gemini) findWay(set, tag uint64) int {
	base := int(set) * geminiWays
	ways := c.meta[base : base+geminiWays]
	for w := range ways {
		if ways[w].valid && ways[w].tag == tag {
			return w
		}
	}
	return -1
}

// Contains implements Interface.
func (c *Gemini) Contains(line memtypes.LineAddr) (way int, ok bool) {
	set, tag := c.index(line)
	w := c.findWay(set, tag)
	return w, w >= 0
}

func (c *Gemini) loc(set uint64) dram.Loc { return c.devMap.Map(set) }

func (c *Gemini) nvmLoc(line memtypes.LineAddr) dram.Loc {
	return c.nvmMap.Map(uint64(line))
}

func (c *Gemini) probeRead(at int64, loc dram.Loc) int64 {
	c.stats.ProbeReads++
	return c.dev.Access(at, loc, memtypes.Read, memtypes.TagUnitSize).DataAt
}

// AccessRead implements Interface.
func (c *Gemini) AccessRead(at int64, line memtypes.LineAddr) ReadResult {
	set, tag := c.index(line)
	loc := c.devMap.Map(set)
	actual := c.findWay(set, tag)
	hit := actual >= 0
	c.stats.Reads++

	var order [geminiWays]int
	c.probeOrder(tag, &order)
	home := order[0]

	// The home-way probe is the implicit prediction.
	first := c.probeRead(at, loc)
	if hit {
		c.stats.Predictions++
		if actual == home {
			c.stats.Correct++
			c.stats.ReadHits++
			c.stats.HitLatency.add(first - at)
			return ReadResult{Done: first, Hit: true, Way: uint8(actual), FirstProbeHit: true}
		}
		// Mispredicted hit: burst the remaining ways; the line's data
		// arrives with its own probe.
		done := first
		for _, w := range order[1:] {
			t := c.probeRead(first, loc)
			if w == actual {
				done = t
			}
		}
		c.stats.ReadHits++
		c.stats.HitLatency.add(done - at)
		return ReadResult{Done: done, Hit: true, Way: uint8(actual), FirstProbeHit: false}
	}

	// Miss: the fill launches after the first probe; the remaining probes
	// confirm the miss in the background (they also stream every potential
	// victim, so the install needs no extra victim read).
	confirmedAt := first
	for range order[1:] {
		if t := c.probeRead(first, loc); t > confirmedAt {
			confirmedAt = t
		}
	}
	c.stats.NVMReads++
	nvmDone := c.nvm.Access(first, c.nvmLoc(line), memtypes.Read, memtypes.LineSize).DataAt
	way := c.install(first, loc, set, tag, false, true)
	if nvmDone < confirmedAt {
		nvmDone = confirmedAt
	}
	c.stats.MissLatency.add(nvmDone - at)
	return ReadResult{Done: nvmDone, Hit: false, Way: uint8(way)}
}

// installWayFor picks the install way: the first free way in probe order,
// else the home way (static placement — evicting the home occupant keeps
// the mapping self-correcting).
func (c *Gemini) installWayFor(set, tag uint64) int {
	var order [geminiWays]int
	c.probeOrder(tag, &order)
	for _, w := range order {
		if !c.meta[c.slot(set, w)].valid {
			return w
		}
	}
	return order[0]
}

// install places (set, tag), evicting any dirty victim to NVM.
func (c *Gemini) install(at int64, loc dram.Loc, set, tag uint64, dirty, victimProbed bool) int {
	way := c.installWayFor(set, tag)
	s := c.slot(set, way)
	if !victimProbed {
		c.stats.VictimReads++
		at = c.dev.Access(at, loc, memtypes.Read, memtypes.TagUnitSize).DataAt
	}
	m := &c.meta[s]
	if m.valid && m.dirty {
		victim := c.lineOf(set, m.tag)
		c.stats.NVMWrites++
		c.nvm.Access(at, c.nvmLoc(victim), memtypes.Write, memtypes.LineSize)
	}
	*m = wayMeta{tag: tag, valid: true, dirty: dirty}
	c.stats.InstallWrites++
	c.dev.Access(at, loc, memtypes.Write, memtypes.TagUnitSize)
	return way
}

// Writeback implements Interface (DCP+way bits make resident updates
// probe-free, exactly as in the nway organization).
func (c *Gemini) Writeback(at int64, line memtypes.LineAddr) int64 {
	set, tag := c.index(line)
	loc := c.devMap.Map(set)
	c.stats.Writebacks++
	if way := c.findWay(set, tag); way >= 0 {
		c.stats.WritebackHits++
		c.meta[c.slot(set, way)].dirty = true
		c.stats.WritebackWrites++
		return c.dev.Access(at, loc, memtypes.Write, memtypes.TagUnitSize).DataAt
	}
	c.install(at, loc, set, tag, true, false)
	return at
}

// AccessReadFunctional implements the state-only read path.
func (c *Gemini) AccessReadFunctional(line memtypes.LineAddr) (way uint8, hit bool) {
	set, tag := c.index(line)
	if actual := c.findWay(set, tag); actual >= 0 {
		return uint8(actual), true
	}
	return uint8(c.installFunctional(set, tag, false)), false
}

// installFunctional is install without device traffic.
func (c *Gemini) installFunctional(set, tag uint64, dirty bool) int {
	way := c.installWayFor(set, tag)
	c.meta[c.slot(set, way)] = wayMeta{tag: tag, valid: true, dirty: dirty}
	return way
}

// WritebackFunctional implements the state-only writeback path.
func (c *Gemini) WritebackFunctional(line memtypes.LineAddr) {
	set, tag := c.index(line)
	if way := c.findWay(set, tag); way >= 0 {
		c.meta[c.slot(set, way)].dirty = true
		return
	}
	c.installFunctional(set, tag, true)
}

// CheckInvariants implements Interface.
func (c *Gemini) CheckInvariants() error {
	for set := uint64(0); set < c.sets; set++ {
		base := int(set) * geminiWays
		for w := 0; w < geminiWays; w++ {
			m := &c.meta[base+w]
			if !m.valid {
				continue
			}
			for w2 := w + 1; w2 < geminiWays; w2++ {
				if m2 := &c.meta[base+w2]; m2.valid && m2.tag == m.tag {
					return fmt.Errorf("gemini: duplicate tag %#x in set %d", m.tag, set)
				}
			}
		}
	}
	return nil
}

// geminiVersion is the snapshot encoding version.
const geminiVersion = 1

// Snapshot implements Interface.
func (c *Gemini) Snapshot(e *ckpt.Encoder) error {
	e.U8(geminiVersion)
	e.U64(c.sets)
	for _, m := range c.meta {
		e.U64(m.tag)
		var flags uint8
		if m.valid {
			flags |= 1
		}
		if m.dirty {
			flags |= 2
		}
		e.U8(flags)
	}
	snapshotStats(e, &c.stats)
	return nil
}

// Restore implements Interface.
func (c *Gemini) Restore(d *ckpt.Decoder) error {
	if v := d.U8(); d.Err() == nil && v != geminiVersion {
		d.Failf("gemini: snapshot version %d, want %d", v, geminiVersion)
	}
	if sets := d.U64(); d.Err() == nil && sets != c.sets {
		d.Failf("gemini: snapshot has %d sets, cache has %d", sets, c.sets)
	}
	if err := d.Err(); err != nil {
		return err
	}
	for i := range c.meta {
		tag := d.U64()
		flags := d.U8()
		if d.Err() != nil {
			return d.Err()
		}
		if flags > 3 {
			d.Failf("gemini: meta[%d] flags %#x invalid", i, flags)
			return d.Err()
		}
		c.meta[i] = wayMeta{tag: tag, valid: flags&1 != 0, dirty: flags&2 != 0}
	}
	restoreStats(d, &c.stats)
	return d.Err()
}

var _ Interface = (*Gemini)(nil)

func init() {
	Register(Backend{
		Name: "gemini",
		New: func(cfg BackendConfig, deps Deps) (Interface, error) {
			g, err := NewGemini(cfg.CapacityBytes, deps.Dev, deps.NVM)
			if err != nil {
				return nil, err
			}
			return g, nil
		},
	})
}
