package dramcache

import (
	"fmt"
	"sort"

	"accord/internal/core"
	"accord/internal/dram"
	"accord/internal/memtypes"
)

// BackendConfig carries the organization-independent parameters every L4
// backend is built from. Fields a backend has no use for are ignored:
// Ways and Policy only matter to organizations with policy-steered ways,
// page-granularity designs derive their own geometry from CapacityBytes.
type BackendConfig struct {
	CapacityBytes  int64
	Ways           int
	Lookup         Lookup
	LRUReplacement bool
	// Policy is the way-steering/prediction policy for backends that
	// declare UsesPolicy; others must be built with Policy == nil.
	Policy core.Policy
	// Seed feeds any backend-private randomized structure. The bundled
	// backends are deterministic without it, but the field keeps the
	// contract wide enough for randomized designs.
	Seed int64
}

// Geometry returns the line-granularity set/way shape the config implies.
func (c BackendConfig) Geometry() core.Geometry {
	return core.Geometry{
		Sets: uint64(c.CapacityBytes / (int64(c.Ways) * memtypes.LineSize)),
		Ways: c.Ways,
	}
}

// Deps are the shared-system resources an L4 backend plugs into: the
// stacked-DRAM device it lives in, the NVM main memory behind it, and the
// machine's physical-frame count (the page-table/TLB cooperation surface
// page-granularity organizations like Banshee size themselves against).
type Deps struct {
	Dev    *dram.Device
	NVM    *dram.Device
	Frames uint64
}

// Backend describes one registered L4 organization.
type Backend struct {
	// Name keys the registry and is the value of sim.Config.Backend.
	Name string
	// UsesPolicy declares that New requires BackendConfig.Policy; the sim
	// layer builds a policy (and includes it in checkpoint fingerprints)
	// only for backends that ask.
	UsesPolicy bool
	// New builds an instance. Errors are configuration errors (bad
	// capacity/ways for the organization's geometry, missing policy).
	New func(cfg BackendConfig, deps Deps) (Interface, error)
}

var backends = map[string]Backend{}

// Register adds a backend to the registry; duplicate names panic
// (registration happens in package init, so a duplicate is a programming
// error, not an input error).
func Register(b Backend) {
	if b.Name == "" || b.New == nil {
		panic("dramcache: Register needs a name and a constructor")
	}
	if _, dup := backends[b.Name]; dup {
		panic(fmt.Sprintf("dramcache: backend %q registered twice", b.Name))
	}
	backends[b.Name] = b
}

// GetBackend looks a backend up by name.
func GetBackend(name string) (Backend, bool) {
	b, ok := backends[name]
	return b, ok
}

// HasBackend reports whether name is registered.
func HasBackend(name string) bool {
	_, ok := backends[name]
	return ok
}

// BackendNames returns the registered names, sorted for stable CLI help
// and table-driven test order.
func BackendNames() []string {
	names := make([]string, 0, len(backends))
	for n := range backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewBackend builds a named backend, returning a descriptive error for
// unknown names or configurations the organization rejects.
func NewBackend(name string, cfg BackendConfig, deps Deps) (Interface, error) {
	b, ok := backends[name]
	if !ok {
		return nil, fmt.Errorf("dramcache: unknown backend %q (have %v)", name, BackendNames())
	}
	return b.New(cfg, deps)
}

func init() {
	Register(Backend{
		Name:       "nway",
		UsesPolicy: true,
		New: func(cfg BackendConfig, deps Deps) (Interface, error) {
			if cfg.Policy == nil {
				return nil, fmt.Errorf("dramcache: backend %q requires a policy", "nway")
			}
			c := Config{
				CapacityBytes:  cfg.CapacityBytes,
				Ways:           cfg.Ways,
				Lookup:         cfg.Lookup,
				LRUReplacement: cfg.LRUReplacement,
			}
			if err := c.Validate(); err != nil {
				return nil, err
			}
			return New(c, cfg.Policy, deps.Dev, deps.NVM), nil
		},
	})
	Register(Backend{
		Name: "ca",
		New: func(cfg BackendConfig, deps Deps) (Interface, error) {
			c := Config{CapacityBytes: cfg.CapacityBytes, Ways: 1}
			if err := c.Validate(); err != nil {
				return nil, err
			}
			if cfg.CapacityBytes/memtypes.LineSize < 2 {
				return nil, fmt.Errorf("dramcache: CA cache needs >= 2 slots")
			}
			return NewCA(cfg.CapacityBytes, deps.Dev, deps.NVM), nil
		},
	})
}
