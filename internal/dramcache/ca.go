package dramcache

import (
	"fmt"

	"accord/internal/dram"
	"accord/internal/memtypes"
	"accord/internal/metrics"
)

// CACache is the Column-Associative (hash-rehash) baseline of Section VII:
// a direct-mapped DRAM cache in which every line has a primary index and a
// rehash index (the primary with its top set bit flipped). A hit at the
// primary index costs one access; a hit at the rehash index costs a second
// access plus a swap of the two units, so the line is fast next time.
// The swap traffic is what makes the CA-cache lose to ACCORD (Figure 14)
// despite a similar one-access hit probability.
type CACache struct {
	dev *dram.Device
	nvm *dram.Device

	sets    uint64 // direct-mapped slot count
	flipBit uint64 // XOR mask flipping the top index bit

	lines []memtypes.LineAddr // resident line per slot
	valid []bool
	dirty []bool

	unitsPerRow    int
	nvmUnitsPerRow int
	mapper         dram.Mapper // precomputed MapUnit for the cache device
	nvmMapper      dram.Mapper // precomputed MapUnit for the backing NVM

	stats Stats
}

// NewCA builds a column-associative cache of the given capacity.
func NewCA(capacityBytes int64, dev, nvm *dram.Device) *CACache {
	cfg := Config{CapacityBytes: capacityBytes, Ways: 1}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := uint64(capacityBytes / memtypes.LineSize)
	if sets < 2 {
		panic(fmt.Sprintf("dramcache: CA cache needs >= 2 slots, got %d", sets))
	}
	upr := dev.Config().RowBytes / memtypes.TagUnitSize
	if upr < 1 {
		upr = 1
	}
	nvmUPR := nvm.Config().RowBytes / memtypes.LineSize
	if nvmUPR < 1 {
		nvmUPR = 1
	}
	return &CACache{
		dev:            dev,
		nvm:            nvm,
		sets:           sets,
		flipBit:        sets >> 1,
		lines:          make([]memtypes.LineAddr, sets),
		valid:          make([]bool, sets),
		dirty:          make([]bool, sets),
		unitsPerRow:    upr,
		nvmUnitsPerRow: nvmUPR,
		mapper:         dev.Config().NewMapper(upr),
		nvmMapper:      nvm.Config().NewMapper(nvmUPR),
	}
}

// Name implements Interface.
func (c *CACache) Name() string { return "ca-cache" }

// Stats implements Interface.
func (c *CACache) Stats() *Stats { return &c.stats }

// ResetStats implements Interface.
func (c *CACache) ResetStats() { c.stats = Stats{} }

// StorageBytes implements Interface: the CA-cache needs no SRAM metadata.
func (c *CACache) StorageBytes() int64 { return 0 }

// RegisterMetrics implements Interface.
func (c *CACache) RegisterMetrics(r *metrics.Registry, prefix string) {
	c.stats.Register(r, prefix)
}

func (c *CACache) primary(line memtypes.LineAddr) uint64 { return uint64(line) & (c.sets - 1) }
func (c *CACache) rehash(idx uint64) uint64              { return idx ^ c.flipBit }

func (c *CACache) loc(idx uint64) dram.Loc {
	return c.mapper.Map(idx)
}

func (c *CACache) nvmLoc(line memtypes.LineAddr) dram.Loc {
	return c.nvmMapper.Map(uint64(line))
}

func (c *CACache) probe(at int64, idx uint64) int64 {
	c.stats.ProbeReads++
	return c.dev.Access(at, c.loc(idx), memtypes.Read, memtypes.TagUnitSize).DataAt
}

func (c *CACache) write(at int64, idx uint64) int64 {
	return c.dev.Access(at, c.loc(idx), memtypes.Write, memtypes.TagUnitSize).DataAt
}

// Contains implements Interface.
func (c *CACache) Contains(line memtypes.LineAddr) (way int, ok bool) {
	i1 := c.primary(line)
	if c.valid[i1] && c.lines[i1] == line {
		return 0, true
	}
	i2 := c.rehash(i1)
	if c.valid[i2] && c.lines[i2] == line {
		return 1, true
	}
	return 0, false
}

// AccessRead implements Interface.
func (c *CACache) AccessRead(at int64, line memtypes.LineAddr) ReadResult {
	c.stats.Reads++
	i1 := c.primary(line)
	i2 := c.rehash(i1)

	t1 := c.probe(at, i1)
	if c.valid[i1] && c.lines[i1] == line {
		// Fast hit; the "prediction" (primary index first) was right.
		c.stats.ReadHits++
		c.stats.Predictions++
		c.stats.Correct++
		c.stats.HitLatency.add(t1 - at)
		return ReadResult{Done: t1, Hit: true, Way: 0, FirstProbeHit: true}
	}

	t2 := c.probe(t1, i2)
	if c.valid[i2] && c.lines[i2] == line {
		// Slow hit: swap the two units so the next access is fast. Both
		// units were just read; the swap costs two writes.
		c.stats.ReadHits++
		c.stats.Predictions++
		c.stats.HitLatency.add(t2 - at)
		c.swap(t2, i1, i2)
		return ReadResult{Done: t2, Hit: true, Way: 0, FirstProbeHit: false}
	}

	// Miss, confirmed after both probes. Fetch, install at the primary
	// index, and push the primary's previous occupant to the rehash slot.
	// As in Cache.AccessRead, the install's bandwidth is consumed at
	// confirmation time to keep the reservation model well-ordered.
	c.stats.NVMReads++
	nvmDone := c.nvm.Access(t2, c.nvmLoc(line), memtypes.Read, memtypes.LineSize).DataAt
	c.installAt(t2, line, i1, i2, false)
	c.stats.MissLatency.add(nvmDone - at)
	return ReadResult{Done: nvmDone, Hit: false, Way: 0}
}

// swap exchanges the occupants of i1 and i2 (two 72-byte writes).
func (c *CACache) swap(at int64, i1, i2 uint64) {
	c.lines[i1], c.lines[i2] = c.lines[i2], c.lines[i1]
	c.valid[i1], c.valid[i2] = c.valid[i2], c.valid[i1]
	c.dirty[i1], c.dirty[i2] = c.dirty[i2], c.dirty[i1]
	c.stats.InstallWrites += 2
	c.write(at, i1)
	c.write(at, i2)
}

// installAt writes line into its primary slot, demoting the previous
// occupant into the rehash slot and evicting the rehash slot's occupant.
func (c *CACache) installAt(at int64, line memtypes.LineAddr, i1, i2 uint64, dirty bool) {
	// Evict the rehash slot's occupant (it has nowhere else to go).
	if c.valid[i2] && c.dirty[i2] {
		c.stats.NVMWrites++
		c.nvm.Access(at, c.nvmLoc(c.lines[i2]), memtypes.Write, memtypes.LineSize)
	}
	// Demote the primary occupant, unless the slot was free.
	if c.valid[i1] {
		c.lines[i2], c.valid[i2], c.dirty[i2] = c.lines[i1], true, c.dirty[i1]
		c.stats.InstallWrites++
		c.write(at, i2)
	} else {
		c.valid[i2] = false
	}
	c.lines[i1], c.valid[i1], c.dirty[i1] = line, true, dirty
	c.stats.InstallWrites++
	c.write(at, i1)
}

// Writeback implements Interface. The DCP bit tells the L3 whether the
// line is resident; with a CA-cache the slot must still be located, but
// the DCP-way extension (one bit: primary or rehash) removes the probe.
func (c *CACache) Writeback(at int64, line memtypes.LineAddr) int64 {
	c.stats.Writebacks++
	i1 := c.primary(line)
	i2 := c.rehash(i1)
	for _, idx := range []uint64{i1, i2} {
		if c.valid[idx] && c.lines[idx] == line {
			c.stats.WritebackHits++
			c.dirty[idx] = true
			c.stats.WritebackWrites++
			return c.write(at, idx)
		}
	}
	// Absent: read the primary slot (victim data), then install.
	c.stats.VictimReads++
	rd := c.dev.Access(at, c.loc(i1), memtypes.Read, memtypes.TagUnitSize).DataAt
	c.installAt(rd, line, i1, i2, true)
	return rd
}

// CheckInvariants verifies that no line is resident in both of its slots.
func (c *CACache) CheckInvariants() error {
	for idx := uint64(0); idx < c.sets; idx++ {
		if !c.valid[idx] {
			continue
		}
		line := c.lines[idx]
		i1 := c.primary(line)
		i2 := c.rehash(i1)
		if idx != i1 && idx != i2 {
			return fmt.Errorf("ca-cache: line %#x resident at foreign slot %d", uint64(line), idx)
		}
		other := i1
		if idx == i1 {
			other = i2
		}
		if c.valid[other] && c.lines[other] == line {
			return fmt.Errorf("ca-cache: line %#x duplicated in slots %d and %d", uint64(line), idx, other)
		}
	}
	return nil
}

var _ Interface = (*CACache)(nil)
var _ Interface = (*Cache)(nil)
