package dramcache

import (
	"fmt"
	"math/bits"

	"accord/internal/ckpt"
	"accord/internal/dram"
	"accord/internal/memtypes"
	"accord/internal/metrics"
)

// Banshee models the page-granularity DRAM cache of Breslow et al.
// (Banshee, MICRO 2017; PAPERS.md): the cache is managed in 4 KB pages
// whose locations are tracked through the page tables and TLBs rather
// than in-DRAM tags, so a hit needs no tag probe at all — the translation
// already names the cached frame, and the device streams a plain 64-byte
// line. Associativity is page-set-associative (bansheePageWays ways per
// page set), and replacement is frequency-based (FBR): every page set
// keeps frequency counters for its resident pages and for a small table
// of candidate (not-yet-cached) pages, and a miss replaces the coldest
// resident page only when the missing page's counter has climbed past it
// by a margin — otherwise the miss bypasses the cache entirely and is
// served from NVM without an install. That selective-install property is
// Banshee's bandwidth story, and it is the reason the nway-specific
// accounting identity "installs == misses" does not hold here.
//
// Resident pages fill lazily, line by line: mapping a page claims a frame
// but moves no data; each first touch of a line fills just that line.
// A per-line presence bitmap (LinesPerPage = 64 fits one uint64) plays
// the role of Banshee's per-page line bitvector.
type Banshee struct {
	dev *dram.Device
	nvm *dram.Device

	pageSets uint64 // page-set count (power of two)
	setMask  uint64
	setShift uint
	ways     int

	meta []bansheePage // pageSets * ways resident-page slots
	cand []bansheeCand // pageSets * bansheeCandWays candidate counters

	devMap dram.Mapper // cache line unit -> device row
	nvmMap dram.Mapper // line -> NVM row

	stats Stats
}

// bansheePage is one resident page slot.
type bansheePage struct {
	tag     uint64 // page number >> setShift
	freq    uint32
	valid   bool
	present uint64 // per-line fill bitmap
	dirty   uint64 // per-line dirty bitmap (subset of present)
}

// bansheeCand is one candidate-table entry: a page that has missed here
// recently, with the access count deciding when it earns residency.
type bansheeCand struct {
	tag  uint64
	freq uint32
	live bool
}

const (
	// bansheePageWays is the page-set associativity (Banshee's sampled-FBR
	// evaluation uses 4-way page sets).
	bansheePageWays = 4
	// bansheeCandWays is the candidate-counter table size per page set.
	bansheeCandWays = 4
	// bansheeThreshold is the frequency margin a candidate must hold over
	// the coldest resident page before it replaces it; the margin
	// amortizes the page-remap cost over enough reuse to pay for it.
	bansheeThreshold = 2
	// bansheeFreqCap triggers aging: when any counter in a set reaches it,
	// every counter in the set (resident and candidate) is halved.
	bansheeFreqCap = 1 << 16
)

// NewBanshee builds a page-granularity cache of the given capacity.
// frames is the machine's physical frame count (the page-table layer the
// design stores its mapping in); it bounds nothing directly but is
// validated so a misconfigured system fails loudly.
func NewBanshee(capacityBytes int64, dev, nvm *dram.Device, frames uint64) (*Banshee, error) {
	pages := capacityBytes / memtypes.PageSize
	switch {
	case capacityBytes%memtypes.PageSize != 0:
		return nil, fmt.Errorf("dramcache: banshee capacity %d not page-aligned", capacityBytes)
	case pages < bansheePageWays:
		return nil, fmt.Errorf("dramcache: banshee capacity %d below one page set", capacityBytes)
	case pages%bansheePageWays != 0:
		return nil, fmt.Errorf("dramcache: banshee capacity %d not divisible by page-set size", capacityBytes)
	case frames == 0:
		return nil, fmt.Errorf("dramcache: banshee needs a nonzero frame count")
	}
	sets := uint64(pages / bansheePageWays)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("dramcache: banshee %d page sets, must be a power of two", sets)
	}
	upr := dev.Config().RowBytes / memtypes.LineSize
	if upr < 1 {
		upr = 1
	}
	nvmUPR := nvm.Config().RowBytes / memtypes.LineSize
	if nvmUPR < 1 {
		nvmUPR = 1
	}
	return &Banshee{
		dev:      dev,
		nvm:      nvm,
		pageSets: sets,
		setMask:  sets - 1,
		setShift: log2(sets),
		ways:     bansheePageWays,
		meta:     make([]bansheePage, sets*bansheePageWays),
		cand:     make([]bansheeCand, sets*bansheeCandWays),
		devMap:   dev.Config().NewMapper(upr),
		nvmMap:   nvm.Config().NewMapper(nvmUPR),
	}, nil
}

// Name implements Interface.
func (c *Banshee) Name() string { return "banshee" }

// Stats implements Interface.
func (c *Banshee) Stats() *Stats { return &c.stats }

// ResetStats implements Interface.
func (c *Banshee) ResetStats() { c.stats = Stats{} }

// StorageBytes implements Interface: the page mappings and per-page
// counters live in page-table entries (and their TLB copies), so the only
// dedicated SRAM is the candidate-counter table: tag plus counter, 8
// bytes per entry.
func (c *Banshee) StorageBytes() int64 {
	return int64(c.pageSets) * bansheeCandWays * 8
}

// RegisterMetrics implements Interface.
func (c *Banshee) RegisterMetrics(r *metrics.Registry, prefix string) {
	c.stats.Register(r, prefix)
}

func (c *Banshee) index(line memtypes.LineAddr) (set, tag, off uint64) {
	page := uint64(line.Page())
	return page & c.setMask, page >> c.setShift, line.PageOffset()
}

func (c *Banshee) slot(set uint64, way int) int { return int(set)*c.ways + way }

// lineOf reconstructs the line address of a resident page's line.
func (c *Banshee) lineOf(set, tag, off uint64) memtypes.LineAddr {
	page := memtypes.PageNum(tag<<c.setShift | set)
	return page.Line(off)
}

// loc maps a resident line (slot, page offset) to its device row. Data is
// stored as plain 64-byte lines — no in-DRAM tags is the point of the
// design.
func (c *Banshee) loc(set uint64, way int, off uint64) dram.Loc {
	unit := uint64(c.slot(set, way))*memtypes.LinesPerPage + off
	return c.devMap.Map(unit)
}

func (c *Banshee) nvmLoc(line memtypes.LineAddr) dram.Loc {
	return c.nvmMap.Map(uint64(line))
}

// findPage returns the way holding (set, tag), or -1.
func (c *Banshee) findPage(set, tag uint64) int {
	base := int(set) * c.ways
	ways := c.meta[base : base+c.ways]
	for w := range ways {
		if ways[w].valid && ways[w].tag == tag {
			return w
		}
	}
	return -1
}

// Contains implements Interface: resident means the page is mapped AND
// the specific line has been filled.
func (c *Banshee) Contains(line memtypes.LineAddr) (way int, ok bool) {
	set, tag, off := c.index(line)
	w := c.findPage(set, tag)
	if w < 0 || c.meta[c.slot(set, w)].present&(1<<off) == 0 {
		return 0, false
	}
	return w, true
}

// ageSet halves every counter in the set when any counter saturates,
// keeping the frequency ordering while letting stale heat decay.
func (c *Banshee) ageSet(set uint64) {
	base := int(set) * c.ways
	for w := 0; w < c.ways; w++ {
		c.meta[base+w].freq >>= 1
	}
	cbase := int(set) * bansheeCandWays
	for i := 0; i < bansheeCandWays; i++ {
		c.cand[cbase+i].freq >>= 1
	}
}

// bumpResident counts one access to a resident page.
func (c *Banshee) bumpResident(set uint64, way int) {
	m := &c.meta[c.slot(set, way)]
	m.freq++
	if m.freq >= bansheeFreqCap {
		c.ageSet(set)
	}
}

// coldestResident returns the resident way with the lowest frequency
// (invalid slots count as frequency 0, ties to the lowest index).
func (c *Banshee) coldestResident(set uint64) (way int, freq uint32) {
	base := int(set) * c.ways
	way, freq = 0, bansheeFreqCap
	for w := 0; w < c.ways; w++ {
		m := &c.meta[base+w]
		f := m.freq
		if !m.valid {
			f = 0
		}
		if f < freq {
			way, freq = w, f
		}
	}
	return way, freq
}

// touchCandidate counts one access to a non-resident page and decides
// whether it has earned residency. It is pure bookkeeping — shared
// verbatim by the detailed and functional paths — and returns the victim
// way plus the candidate's counter when a remap is due. Invalid resident
// slots are claimed immediately (a cold cache should fill, not bypass).
func (c *Banshee) touchCandidate(set, tag uint64) (remap bool, victim int, inherit uint32) {
	cbase := int(set) * bansheeCandWays
	idx := -1
	for i := 0; i < bansheeCandWays; i++ {
		if e := &c.cand[cbase+i]; e.live && e.tag == tag {
			idx = i
			break
		}
	}
	if idx < 0 {
		// Replace the coldest candidate entry (empty first, ties to the
		// lowest index) — the sampling approximation of full FBR counters.
		var minFreq uint32 = bansheeFreqCap
		for i := 0; i < bansheeCandWays; i++ {
			e := &c.cand[cbase+i]
			f := e.freq
			if !e.live {
				f = 0
			}
			if f < minFreq {
				idx, minFreq = i, f
			}
		}
		c.cand[cbase+idx] = bansheeCand{tag: tag, freq: 0, live: true}
	}
	e := &c.cand[cbase+idx]
	e.freq++
	if e.freq >= bansheeFreqCap {
		c.ageSet(set)
	}
	victim, victimFreq := c.coldestResident(set)
	vm := &c.meta[c.slot(set, victim)]
	if !vm.valid || e.freq > victimFreq+bansheeThreshold {
		inherit = e.freq
		*e = bansheeCand{}
		return true, victim, inherit
	}
	return false, victim, 0
}

// evictPage writes the victim page's dirty lines back to NVM (each needs
// a device read first — the data lives only in the cache) and demotes its
// counter into the candidate table so an evicted-but-hot page can earn
// its way back.
func (c *Banshee) evictPage(at int64, set uint64, victim int) {
	m := &c.meta[c.slot(set, victim)]
	if !m.valid {
		return
	}
	for d := m.dirty; d != 0; d &= d - 1 {
		off := uint64(bits.TrailingZeros64(d))
		c.stats.VictimReads++
		rd := c.dev.Access(at, c.loc(set, victim, off), memtypes.Read, memtypes.LineSize).DataAt
		c.stats.NVMWrites++
		c.nvm.Access(rd, c.nvmLoc(c.lineOf(set, m.tag, off)), memtypes.Write, memtypes.LineSize)
	}
	c.demoteToCandidate(set, m.tag, m.freq)
	*m = bansheePage{}
}

// evictPageFunctional is evictPage without the device traffic.
func (c *Banshee) evictPageFunctional(set uint64, victim int) {
	m := &c.meta[c.slot(set, victim)]
	if !m.valid {
		return
	}
	c.demoteToCandidate(set, m.tag, m.freq)
	*m = bansheePage{}
}

// demoteToCandidate re-enters an evicted page into the candidate table if
// it is hotter than the coldest entry there.
func (c *Banshee) demoteToCandidate(set, tag uint64, freq uint32) {
	cbase := int(set) * bansheeCandWays
	idx := -1
	var minFreq uint32 = bansheeFreqCap
	for i := 0; i < bansheeCandWays; i++ {
		e := &c.cand[cbase+i]
		f := e.freq
		if !e.live {
			f = 0
		}
		if f < minFreq {
			idx, minFreq = i, f
		}
	}
	if idx >= 0 && freq > minFreq {
		c.cand[cbase+idx] = bansheeCand{tag: tag, freq: freq, live: true}
	}
}

// mapPage installs (set, tag) into the victim way with a single line
// already present. The line's data write is the only device traffic; the
// mapping update itself is a PTE write, off the memory path.
func (c *Banshee) mapPage(set, tag uint64, victim int, freq uint32, off uint64, dirtyLine bool) {
	m := &c.meta[c.slot(set, victim)]
	var dirty uint64
	if dirtyLine {
		dirty = 1 << off
	}
	*m = bansheePage{tag: tag, freq: freq, valid: true, present: 1 << off, dirty: dirty}
}

// AccessRead implements Interface. Hits pay exactly one 64-byte data
// read — the translation layer already knows the frame and the way, so
// every hit is a correct "prediction" by construction. Misses are served
// from NVM and install only when the page has earned residency.
func (c *Banshee) AccessRead(at int64, line memtypes.LineAddr) ReadResult {
	set, tag, off := c.index(line)
	c.stats.Reads++

	if w := c.findPage(set, tag); w >= 0 {
		c.bumpResident(set, w)
		m := &c.meta[c.slot(set, w)]
		if m.present&(1<<off) != 0 {
			// Mapped line: one plain data read, no tag probe.
			c.stats.ReadHits++
			c.stats.Predictions++
			c.stats.Correct++
			c.stats.ProbeReads++
			done := c.dev.Access(at, c.loc(set, w, off), memtypes.Read, memtypes.LineSize).DataAt
			c.stats.HitLatency.add(done - at)
			return ReadResult{Done: done, Hit: true, Way: uint8(w), FirstProbeHit: true}
		}
		// Page mapped, line not yet filled: lazy per-line fill.
		c.stats.NVMReads++
		done := c.nvm.Access(at, c.nvmLoc(line), memtypes.Read, memtypes.LineSize).DataAt
		m.present |= 1 << off
		c.stats.InstallWrites++
		c.dev.Access(at, c.loc(set, w, off), memtypes.Write, memtypes.LineSize)
		c.stats.MissLatency.add(done - at)
		return ReadResult{Done: done, Hit: false, Way: uint8(w)}
	}

	// Page not resident: the miss is known immediately (no probes — the
	// translation says so), and the candidate counters decide whether this
	// page finally earns a frame or the access bypasses the cache.
	remap, victim, inherit := c.touchCandidate(set, tag)
	c.stats.NVMReads++
	done := c.nvm.Access(at, c.nvmLoc(line), memtypes.Read, memtypes.LineSize).DataAt
	way := 0
	if remap {
		c.evictPage(at, set, victim)
		c.mapPage(set, tag, victim, inherit, off, false)
		c.stats.InstallWrites++
		c.dev.Access(at, c.loc(set, victim, off), memtypes.Write, memtypes.LineSize)
		way = victim
	}
	c.stats.MissLatency.add(done - at)
	return ReadResult{Done: done, Hit: false, Way: uint8(way)}
}

// Writeback implements Interface. Dirty L3 evictions of mapped lines
// update the line in place; evictions into a mapped page allocate the
// line (write-allocate, no NVM read — the L3 holds the whole line);
// evictions of unmapped pages follow the same earn-residency rule as
// reads, bypassing straight to NVM until the page is hot enough.
func (c *Banshee) Writeback(at int64, line memtypes.LineAddr) int64 {
	set, tag, off := c.index(line)
	c.stats.Writebacks++

	if w := c.findPage(set, tag); w >= 0 {
		c.bumpResident(set, w)
		m := &c.meta[c.slot(set, w)]
		if m.present&(1<<off) != 0 {
			c.stats.WritebackHits++
			m.dirty |= 1 << off
			c.stats.WritebackWrites++
			return c.dev.Access(at, c.loc(set, w, off), memtypes.Write, memtypes.LineSize).DataAt
		}
		m.present |= 1 << off
		m.dirty |= 1 << off
		c.stats.InstallWrites++
		return c.dev.Access(at, c.loc(set, w, off), memtypes.Write, memtypes.LineSize).DataAt
	}

	remap, victim, inherit := c.touchCandidate(set, tag)
	if remap {
		c.evictPage(at, set, victim)
		c.mapPage(set, tag, victim, inherit, off, true)
		c.stats.InstallWrites++
		return c.dev.Access(at, c.loc(set, victim, off), memtypes.Write, memtypes.LineSize).DataAt
	}
	c.stats.NVMWrites++
	c.nvm.Access(at, c.nvmLoc(line), memtypes.Write, memtypes.LineSize)
	return at
}

// AccessReadFunctional implements the state-only read path: identical
// frequency, candidate, mapping, and bitmap mutations, no device traffic.
func (c *Banshee) AccessReadFunctional(line memtypes.LineAddr) (way uint8, hit bool) {
	set, tag, off := c.index(line)
	if w := c.findPage(set, tag); w >= 0 {
		c.bumpResident(set, w)
		m := &c.meta[c.slot(set, w)]
		if m.present&(1<<off) != 0 {
			return uint8(w), true
		}
		m.present |= 1 << off
		return uint8(w), false
	}
	remap, victim, inherit := c.touchCandidate(set, tag)
	if remap {
		c.evictPageFunctional(set, victim)
		c.mapPage(set, tag, victim, inherit, off, false)
		return uint8(victim), false
	}
	return 0, false
}

// WritebackFunctional implements the state-only writeback path.
func (c *Banshee) WritebackFunctional(line memtypes.LineAddr) {
	set, tag, off := c.index(line)
	if w := c.findPage(set, tag); w >= 0 {
		c.bumpResident(set, w)
		m := &c.meta[c.slot(set, w)]
		m.present |= 1 << off
		m.dirty |= 1 << off
		return
	}
	remap, victim, inherit := c.touchCandidate(set, tag)
	if remap {
		c.evictPageFunctional(set, victim)
		c.mapPage(set, tag, victim, inherit, off, true)
	}
}

// CheckInvariants implements Interface.
func (c *Banshee) CheckInvariants() error {
	for set := uint64(0); set < c.pageSets; set++ {
		base := int(set) * c.ways
		for w := 0; w < c.ways; w++ {
			m := &c.meta[base+w]
			if !m.valid {
				if m.present != 0 || m.dirty != 0 || m.freq != 0 || m.tag != 0 {
					return fmt.Errorf("banshee: invalid slot (set %d way %d) holds state", set, w)
				}
				continue
			}
			if m.dirty&^m.present != 0 {
				return fmt.Errorf("banshee: dirty lines not present in set %d way %d", set, w)
			}
			if m.freq >= bansheeFreqCap {
				return fmt.Errorf("banshee: unaged counter %d in set %d way %d", m.freq, set, w)
			}
			for w2 := w + 1; w2 < c.ways; w2++ {
				if m2 := &c.meta[base+w2]; m2.valid && m2.tag == m.tag {
					return fmt.Errorf("banshee: duplicate page tag %#x in set %d", m.tag, set)
				}
			}
		}
		cbase := int(set) * bansheeCandWays
		for i := 0; i < bansheeCandWays; i++ {
			e := &c.cand[cbase+i]
			if !e.live {
				if e.tag != 0 || e.freq != 0 {
					return fmt.Errorf("banshee: dead candidate %d in set %d holds state", i, set)
				}
				continue
			}
			if e.freq >= bansheeFreqCap {
				return fmt.Errorf("banshee: unaged candidate counter %d in set %d", e.freq, set)
			}
			if w := c.findPage(set, e.tag); w >= 0 {
				return fmt.Errorf("banshee: candidate %#x in set %d is already resident", e.tag, set)
			}
		}
	}
	return nil
}

// bansheeVersion is the snapshot encoding version.
const bansheeVersion = 1

// Snapshot implements Interface.
func (c *Banshee) Snapshot(e *ckpt.Encoder) error {
	e.U8(bansheeVersion)
	e.U64(c.pageSets)
	for _, m := range c.meta {
		e.U64(m.tag)
		e.U32(m.freq)
		e.Bool(m.valid)
		e.U64(m.present)
		e.U64(m.dirty)
	}
	for _, cd := range c.cand {
		e.U64(cd.tag)
		e.U32(cd.freq)
		e.Bool(cd.live)
	}
	snapshotStats(e, &c.stats)
	return nil
}

// Restore implements Interface.
func (c *Banshee) Restore(d *ckpt.Decoder) error {
	if v := d.U8(); d.Err() == nil && v != bansheeVersion {
		d.Failf("banshee: snapshot version %d, want %d", v, bansheeVersion)
	}
	if sets := d.U64(); d.Err() == nil && sets != c.pageSets {
		d.Failf("banshee: snapshot has %d page sets, cache has %d", sets, c.pageSets)
	}
	if err := d.Err(); err != nil {
		return err
	}
	for i := range c.meta {
		m := bansheePage{
			tag:     d.U64(),
			freq:    d.U32(),
			valid:   d.Bool(),
			present: d.U64(),
			dirty:   d.U64(),
		}
		if d.Err() != nil {
			return d.Err()
		}
		if !m.valid && (m.present != 0 || m.dirty != 0 || m.freq != 0 || m.tag != 0) {
			d.Failf("banshee: meta[%d] invalid but holds state", i)
			return d.Err()
		}
		if m.dirty&^m.present != 0 {
			d.Failf("banshee: meta[%d] dirty lines not present", i)
			return d.Err()
		}
		c.meta[i] = m
	}
	for i := range c.cand {
		cd := bansheeCand{tag: d.U64(), freq: d.U32(), live: d.Bool()}
		if d.Err() != nil {
			return d.Err()
		}
		if !cd.live && (cd.tag != 0 || cd.freq != 0) {
			d.Failf("banshee: cand[%d] dead but holds state", i)
			return d.Err()
		}
		c.cand[i] = cd
	}
	restoreStats(d, &c.stats)
	return d.Err()
}

var _ Interface = (*Banshee)(nil)

func init() {
	Register(Backend{
		Name: "banshee",
		New: func(cfg BackendConfig, deps Deps) (Interface, error) {
			b, err := NewBanshee(cfg.CapacityBytes, deps.Dev, deps.NVM, deps.Frames)
			if err != nil {
				return nil, err
			}
			return b, nil
		},
	})
}
