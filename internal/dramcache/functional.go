package dramcache

import "accord/internal/memtypes"

// This file implements the functional fast-forward paths of both L4
// organizations (see DESIGN.md §9). A functional access mutates exactly
// the state a detailed access would — tags, valid/dirty bits, LRU stamps
// and clock, and the attached policy's tables, counters, and RNG — while
// touching neither DRAM device (no probes, no busy intervals, no row
// buffers) and none of the Stats fields. Because warm-state checkpoints
// zero Stats at the warmup boundary (ResetStats) and never include
// device timing, the warm state a functional run leaves behind is
// byte-identical to a detailed run of the same events; the differential
// tests in internal/sim enforce this.
//
// The policy-method call sequence is mirrored exactly, not approximately:
// policies draw from a checkpointed RNG (rand, PWS installs) and bump
// checkpointed diagnostic counters (ACCORD's RIT/RLT hits) inside
// PredictWay/InstallWay/FilterMiss, so skipping or reordering a call
// would silently fork the state. Only CandidateWays — pure for every
// policy, feeding probe schedules the functional mode has no use for —
// is elided.

// AccessReadFunctional services a demand read in functional mode. It
// returns the way the line resides in after the access (hit way, or
// install way on a miss), matching ReadResult.Way so the SRAM
// hierarchy's DCP state warms identically.
func (c *Cache) AccessReadFunctional(line memtypes.LineAddr) (way uint8, hit bool) {
	set, tag := c.index(line)
	region := line.Region()
	actual := c.findWay(set, tag)
	h := actual >= 0

	// Only the predicted lookup consults the policy before probing; the
	// other modes' probe schedules come from the pure CandidateWays.
	if c.cfg.Lookup == LookupPredicted {
		c.policy.PredictWay(set, tag, region)
		if !h {
			c.policy.FilterMiss(set, tag)
		}
	}
	c.policy.ObserveAccess(set, tag, region, actual, h)

	if h {
		if c.cfg.LRUReplacement {
			c.lru[c.slot(set, actual)] = c.bump()
		}
		return uint8(actual), true
	}
	return uint8(c.installFunctional(set, tag, region, false)), false
}

// installFunctional is install without the victim read, NVM traffic, and
// device write: the victim's metadata is simply overwritten.
func (c *Cache) installFunctional(set, tag uint64, region memtypes.RegionID, dirty bool) int {
	var way int
	if c.cfg.LRUReplacement {
		way = c.lruVictim(set, tag)
	} else {
		way = c.policy.InstallWay(set, tag, region)
	}
	s := c.slot(set, way)
	c.meta[s] = wayMeta{tag: tag, valid: true, dirty: dirty}
	if c.cfg.LRUReplacement {
		c.lru[s] = c.bump()
	}
	c.policy.ObserveInstall(set, tag, region, way)
	return way
}

// WritebackFunctional handles a dirty L3 eviction in functional mode.
func (c *Cache) WritebackFunctional(line memtypes.LineAddr) {
	set, tag := c.index(line)
	region := line.Region()
	if way := c.findWay(set, tag); way >= 0 {
		s := c.slot(set, way)
		c.meta[s].dirty = true
		if c.cfg.LRUReplacement {
			c.lru[s] = c.bump()
		}
		return
	}
	c.installFunctional(set, tag, region, true)
}

// AccessReadFunctional implements the functional read for the
// column-associative organization, including the slow-hit swap (the swap
// is cache state, not timing: skipping it would leave the line slow and
// diverge from the detailed warm state).
func (c *CACache) AccessReadFunctional(line memtypes.LineAddr) (way uint8, hit bool) {
	i1 := c.primary(line)
	i2 := c.rehash(i1)
	if c.valid[i1] && c.lines[i1] == line {
		return 0, true
	}
	if c.valid[i2] && c.lines[i2] == line {
		c.swapFunctional(i1, i2)
		return 0, true
	}
	c.installAtFunctional(line, i1, i2, false)
	return 0, false
}

// swapFunctional is swap without the two device writes.
func (c *CACache) swapFunctional(i1, i2 uint64) {
	c.lines[i1], c.lines[i2] = c.lines[i2], c.lines[i1]
	c.valid[i1], c.valid[i2] = c.valid[i2], c.valid[i1]
	c.dirty[i1], c.dirty[i2] = c.dirty[i2], c.dirty[i1]
}

// installAtFunctional is installAt without the NVM eviction write and
// device writes; the occupancy shuffle is identical.
func (c *CACache) installAtFunctional(line memtypes.LineAddr, i1, i2 uint64, dirty bool) {
	if c.valid[i1] {
		c.lines[i2], c.valid[i2], c.dirty[i2] = c.lines[i1], true, c.dirty[i1]
	} else {
		c.valid[i2] = false
	}
	c.lines[i1], c.valid[i1], c.dirty[i1] = line, true, dirty
}

// WritebackFunctional implements the functional writeback for the
// column-associative organization.
func (c *CACache) WritebackFunctional(line memtypes.LineAddr) {
	i1 := c.primary(line)
	i2 := c.rehash(i1)
	if c.valid[i1] && c.lines[i1] == line {
		c.dirty[i1] = true
		return
	}
	if c.valid[i2] && c.lines[i2] == line {
		c.dirty[i2] = true
		return
	}
	c.installAtFunctional(line, i1, i2, true)
}
