package dramcache

import (
	"math/rand"
	"testing"

	"accord/internal/core"
	"accord/internal/dram"
	"accord/internal/memtypes"
)

const clk = 3.0

func devices() (*dram.Device, *dram.Device) {
	return dram.New(dram.HBM(), clk), dram.New(dram.PCM(), clk)
}

// build makes a cache with `sets` sets and `ways` ways.
func build(sets uint64, ways int, lookup Lookup, pol core.Policy) *Cache {
	dev, nvm := devices()
	cfg := Config{
		CapacityBytes: int64(sets) * int64(ways) * memtypes.LineSize,
		Ways:          ways,
		Lookup:        lookup,
	}
	return New(cfg, pol, dev, nvm)
}

func accordPolicy(sets uint64, ways int) *core.ACCORD {
	return core.NewACCORD(core.DefaultACCORD(core.Geometry{Sets: sets, Ways: ways}, 1))
}

func TestConfigValidate(t *testing.T) {
	good := Config{CapacityBytes: 64 * 64 * 2, Ways: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{CapacityBytes: 4096, Ways: 0},
		{CapacityBytes: 32, Ways: 1},
		{CapacityBytes: 64*64*2 + 64, Ways: 2},
		{CapacityBytes: 3 * 64 * 64, Ways: 1}, // non-power-of-two sets
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d passed", i)
		}
	}
}

func TestLookupString(t *testing.T) {
	names := map[Lookup]string{
		LookupPredicted: "predicted", LookupParallel: "parallel",
		LookupSerial: "serial", LookupPerfect: "perfect", LookupIdealized: "idealized",
	}
	for l, want := range names {
		if l.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(l), l.String(), want)
		}
	}
	if Lookup(99).String() == "" {
		t.Error("unknown lookup empty")
	}
}

func TestDirectMappedTable1(t *testing.T) {
	// Table I, direct-mapped row: 1 access & 1 transfer for hit and miss.
	c := build(64, 1, LookupPredicted, core.NewRand(core.Geometry{Sets: 64, Ways: 1}, 1))
	line := memtypes.LineAddr(5)

	r := c.AccessRead(0, line) // compulsory miss
	if r.Hit {
		t.Fatal("hit in empty cache")
	}
	if got := c.Stats().ProbeReads; got != 1 {
		t.Errorf("miss probes = %d, want 1", got)
	}
	r = c.AccessRead(r.Done, line)
	if !r.Hit || !r.FirstProbeHit {
		t.Fatal("expected fast hit")
	}
	if got := c.Stats().ProbeReads; got != 2 {
		t.Errorf("total probes = %d, want 2", got)
	}
	if acc := c.Stats().PredictionAccuracy(); acc != 1 {
		t.Errorf("direct-mapped prediction accuracy = %v, want 1", acc)
	}
}

func TestParallelTable1(t *testing.T) {
	// Table I, parallel N-way: N transfers on hit and on miss.
	const ways = 4
	pol := core.NewRand(core.Geometry{Sets: 64, Ways: ways}, 1)
	c := build(64, ways, LookupParallel, pol)
	line := memtypes.LineAddr(9)
	c.AccessRead(0, line)
	if got := c.Stats().ProbeReads; got != ways {
		t.Errorf("miss probes = %d, want %d", got, ways)
	}
	c.AccessRead(1000000, line)
	if got := c.Stats().ProbeReads; got != 2*ways {
		t.Errorf("hit probes total = %d, want %d", got, 2*ways)
	}
}

func TestSerialTable1(t *testing.T) {
	// Table I, serial N-way: hit costs position-of-way transfers, miss N.
	const ways = 2
	g := core.Geometry{Sets: 64, Ways: ways}
	// PIP=1 steers every install to the preferred way, so we know where
	// lines live.
	pol := core.NewACCORD(core.ACCORDConfig{Geom: g, UsePWS: true, PIP: 1.0, Seed: 1})
	c := build(64, ways, LookupSerial, pol)

	evenTag := memtypes.LineAddr(0)     // tag 0 -> way 0
	oddTag := memtypes.LineAddr(1 << 6) // tag 1 -> way 1 (set 0 with 64 sets)
	c.AccessRead(0, evenTag)            // miss: 2 probes
	c.AccessRead(0, oddTag)             // miss: 2 probes
	base := c.Stats().ProbeReads
	if base != 4 {
		t.Fatalf("two serial misses = %d probes, want 4", base)
	}
	c.AccessRead(0, evenTag) // hit in way 0: 1 probe
	if got := c.Stats().ProbeReads - base; got != 1 {
		t.Errorf("way-0 serial hit probes = %d, want 1", got)
	}
	c.AccessRead(0, oddTag) // hit in way 1: 2 probes
	if got := c.Stats().ProbeReads - base; got != 3 {
		t.Errorf("way-1 serial hit probes = %d (cumulative 1+2)", got)
	}
}

func TestPredictedTable1(t *testing.T) {
	// Table I, way-predicted: 1 transfer on a correctly predicted hit,
	// N transfers on a miss.
	const ways = 2
	g := core.Geometry{Sets: 64, Ways: ways}
	pol := core.NewACCORD(core.ACCORDConfig{Geom: g, UsePWS: true, PIP: 1.0, Seed: 1})
	c := build(64, ways, LookupPredicted, pol)
	line := memtypes.LineAddr(3) // set 3, tag 0 -> way 0
	c.AccessRead(0, line)
	if got := c.Stats().ProbeReads; got != ways {
		t.Errorf("predicted miss probes = %d, want %d", got, ways)
	}
	c.AccessRead(0, line)
	if got := c.Stats().ProbeReads; got != ways+1 {
		t.Errorf("predicted hit probes = %d, want %d", got, ways+1)
	}
	s := c.Stats()
	if s.Predictions != 1 || s.Correct != 1 {
		t.Errorf("prediction stats = %d/%d, want 1/1", s.Correct, s.Predictions)
	}
}

func TestPerfectLookup(t *testing.T) {
	const ways = 8
	pol := core.NewRand(core.Geometry{Sets: 64, Ways: ways}, 1)
	c := build(64, ways, LookupPerfect, pol)
	line := memtypes.LineAddr(11)
	c.AccessRead(0, line) // miss: full confirmation
	if got := c.Stats().ProbeReads; got != ways {
		t.Errorf("perfect-lookup miss probes = %d, want %d", got, ways)
	}
	r := c.AccessRead(0, line) // hit: exactly one probe
	if !r.Hit || !r.FirstProbeHit {
		t.Fatal("perfect lookup did not fast-hit")
	}
	if got := c.Stats().ProbeReads; got != ways+1 {
		t.Errorf("perfect-lookup hit probes = %d, want %d", got, ways+1)
	}
}

func TestIdealizedLookup(t *testing.T) {
	const ways = 8
	pol := core.NewRand(core.Geometry{Sets: 64, Ways: ways}, 1)
	c := build(64, ways, LookupIdealized, pol)
	line := memtypes.LineAddr(7)
	c.AccessRead(0, line)
	c.AccessRead(0, line)
	if got := c.Stats().ProbeReads; got != 2 {
		t.Errorf("idealized probes = %d, want 2 (one per access)", got)
	}
}

func TestMissGoesToNVMAndInstalls(t *testing.T) {
	c := build(64, 2, LookupPredicted, accordPolicy(64, 2))
	line := memtypes.LineAddr(21)
	r := c.AccessRead(0, line)
	s := c.Stats()
	if s.NVMReads != 1 || s.InstallWrites != 1 {
		t.Errorf("NVM reads %d installs %d, want 1/1", s.NVMReads, s.InstallWrites)
	}
	if w, ok := c.Contains(line); !ok || int(r.Way) != w {
		t.Errorf("installed way mismatch: result %d, Contains %d/%v", r.Way, w, ok)
	}
	// Miss latency must exceed the NVM unloaded read latency.
	nvm := dram.New(dram.PCM(), clk)
	if r.Done < nvm.UnloadedReadLatency(64) {
		t.Errorf("miss done at %d, under NVM latency %d", r.Done, nvm.UnloadedReadLatency(64))
	}
}

func TestDirtyVictimWrittenToNVM(t *testing.T) {
	// Direct-mapped, 4 sets: two lines conflict; first is dirtied by a
	// writeback, then evicted by the second.
	c := build(4, 1, LookupPredicted, core.NewRand(core.Geometry{Sets: 4, Ways: 1}, 1))
	a := memtypes.LineAddr(0)
	b := memtypes.LineAddr(4)
	c.AccessRead(0, a)
	c.Writeback(0, a) // dirty it
	if c.Stats().WritebackHits != 1 {
		t.Fatalf("writeback did not hit resident line")
	}
	c.AccessRead(0, b) // evicts dirty a
	if got := c.Stats().NVMWrites; got != 1 {
		t.Errorf("NVM writes = %d, want 1 (dirty victim)", got)
	}
	if _, ok := c.Contains(a); ok {
		t.Error("victim still resident")
	}
}

func TestWritebackAbsentInstalls(t *testing.T) {
	c := build(64, 2, LookupPredicted, accordPolicy(64, 2))
	line := memtypes.LineAddr(33)
	c.Writeback(0, line)
	s := c.Stats()
	if s.WritebackHits != 0 {
		t.Error("absent writeback counted as hit")
	}
	if s.VictimReads != 1 || s.InstallWrites != 1 {
		t.Errorf("victim reads %d installs %d, want 1/1", s.VictimReads, s.InstallWrites)
	}
	if _, ok := c.Contains(line); !ok {
		t.Error("writeback did not install")
	}
	// The installed line is dirty: evicting it must write NVM. Force
	// eviction by filling both ways of its set repeatedly.
	set := uint64(line) & 63
	for i := uint64(1); i <= 8; i++ {
		c.AccessRead(0, memtypes.LineAddr(set|i<<6))
	}
	if c.Stats().NVMWrites == 0 {
		t.Error("dirty writeback-installed line never written to NVM")
	}
}

func TestWritebackResidentNoProbe(t *testing.T) {
	c := build(64, 2, LookupPredicted, accordPolicy(64, 2))
	line := memtypes.LineAddr(40)
	c.AccessRead(0, line)
	probes := c.Stats().ProbeReads
	c.Writeback(0, line)
	s := c.Stats()
	if s.ProbeReads != probes {
		t.Error("resident writeback probed the cache (DCP should prevent this)")
	}
	if s.WritebackWrites != 1 {
		t.Errorf("writeback writes = %d, want 1", s.WritebackWrites)
	}
}

func TestLRUReplacementCostsAndVictims(t *testing.T) {
	dev, nvm := devices()
	g := core.Geometry{Sets: 4, Ways: 2}
	cfg := Config{CapacityBytes: 4 * 2 * 64, Ways: 2, Lookup: LookupPredicted, LRUReplacement: true}
	c := New(cfg, core.NewRand(g, 1), dev, nvm)

	a := memtypes.LineAddr(0)
	b := memtypes.LineAddr(4)
	x := memtypes.LineAddr(8)
	c.AccessRead(0, a)
	c.AccessRead(0, b)
	c.AccessRead(0, a) // hit: LRU update write
	if got := c.Stats().ReplStateOps; got != 1 {
		t.Errorf("replacement-state writes = %d, want 1", got)
	}
	c.AccessRead(0, x) // must evict b (LRU), not a
	if _, ok := c.Contains(a); !ok {
		t.Error("LRU evicted the MRU line")
	}
	if _, ok := c.Contains(b); ok {
		t.Error("LRU kept the LRU line")
	}
}

func TestFilteredMissSkipsProbes(t *testing.T) {
	g := core.Geometry{Sets: 64, Ways: 2}
	pol := core.NewPartialTag(g, 4, 1)
	c := build(64, 2, LookupPredicted, pol)
	line := memtypes.LineAddr(3)
	c.AccessRead(0, line) // cold miss on an empty set: filtered
	s := c.Stats()
	if s.FilteredMisses != 1 {
		t.Errorf("filtered misses = %d, want 1", s.FilteredMisses)
	}
	if s.ProbeReads != 0 {
		t.Errorf("probes on filtered miss = %d, want 0", s.ProbeReads)
	}
	// Installing over an unprobed slot requires reading it first (its tag
	// and dirty state live in the DRAM array).
	if s.VictimReads != 1 {
		t.Errorf("victim reads = %d, want 1", s.VictimReads)
	}
	// A second distinct tag in the same set with different low bits is
	// also filtered.
	c.AccessRead(0, memtypes.LineAddr(3|5<<6))
	if got := c.Stats().FilteredMisses; got != 2 {
		t.Errorf("filtered misses = %d, want 2", got)
	}
}

func TestHitLatencyOrdering(t *testing.T) {
	// A correctly predicted 2-way hit must be faster than a mispredicted
	// one on an idle system.
	g := core.Geometry{Sets: 64, Ways: 2}
	pol := core.NewACCORD(core.ACCORDConfig{Geom: g, UsePWS: true, PIP: 1.0, Seed: 1})
	c := build(64, 2, LookupPredicted, pol)

	right := memtypes.LineAddr(0) // tag 0 -> preferred way 0, predicted 0
	c.AccessRead(0, right)
	r1 := c.AccessRead(1_000_000, right)
	if !r1.FirstProbeHit {
		t.Fatal("expected correct prediction")
	}
	fast := r1.Done - 1_000_000

	// Install an odd-tag line with PIP=1 (to way 1), then mispredict it:
	// rebuild with a policy that predicts way 0 for it.
	wrongPol := core.NewMRU(g, 1) // predicts way 0 for untouched sets
	c2 := build(64, 2, LookupPredicted, wrongPol)
	// Place the line in way 1 manually via repeated installs.
	var line = memtypes.LineAddr(5)
	for {
		c2.AccessRead(0, line)
		if w, _ := c2.Contains(line); w == 1 {
			break
		}
		c2.AccessRead(0, memtypes.LineAddr(uint64(line)|1<<7)) // churn
	}
	// Reset MRU to predict way 0 by touching another way? Simpler: fresh
	// MRU policies predict way 0; line is in way 1 now, so next read
	// mispredicts unless a previous hit trained it. Force stale training:
	c2.AccessRead(2_000_000, memtypes.LineAddr(uint64(line))) // may train
	r2 := c2.AccessRead(3_000_000, line)                      // trained: fast
	slowStart := int64(4_000_000)
	// Untrain by hitting a different way in the same set.
	_ = r2
	res := c2.AccessRead(slowStart, line)
	if res.Hit && !res.FirstProbeHit {
		if res.Done-slowStart <= fast {
			t.Errorf("mispredicted hit (%d cycles) not slower than predicted (%d)", res.Done-slowStart, fast)
		}
	}
}

func TestInvariantsUnderRandomTraffic(t *testing.T) {
	for _, ways := range []int{1, 2, 4, 8} {
		pol := core.NewACCORD(core.DefaultACCORD(core.Geometry{Sets: 32, Ways: ways}, 7))
		c := build(32, ways, LookupPredicted, pol)
		r := rand.New(rand.NewSource(int64(ways)))
		for i := 0; i < 20000; i++ {
			line := memtypes.LineAddr(r.Intn(2048))
			if r.Intn(4) == 0 {
				c.Writeback(0, line)
			} else {
				c.AccessRead(0, line)
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Errorf("%d-way: %v", ways, err)
		}
	}
}

func TestSWSLinesStayInCandidates(t *testing.T) {
	pol := core.NewACCORD(core.DefaultACCORD(core.Geometry{Sets: 32, Ways: 8}, 3))
	c := build(32, 8, LookupPredicted, pol)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 30000; i++ {
		c.AccessRead(0, memtypes.LineAddr(r.Intn(4096)))
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// With SWS, miss confirmation is at most two probes: probes/read <= 2.
	if ppr := c.Stats().ProbesPerRead(); ppr > 2.0001 {
		t.Errorf("SWS probes per read = %.3f, want <= 2", ppr)
	}
}

func TestNameAndStorage(t *testing.T) {
	c := build(64, 2, LookupPredicted, accordPolicy(64, 2))
	if c.Name() == "" || c.StorageBytes() != 320 {
		t.Errorf("name %q storage %d", c.Name(), c.StorageBytes())
	}
	if c.NumSets() != 64 {
		t.Errorf("sets = %d", c.NumSets())
	}
	if c.Policy() == nil {
		t.Error("policy accessor nil")
	}
	c.Stats().Reads = 5
	c.ResetStats()
	if c.Stats().Reads != 0 {
		t.Error("ResetStats failed")
	}
}

func TestStatsHelpers(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 || s.PredictionAccuracy() != 0 || s.ProbesPerRead() != 0 {
		t.Error("empty stats not zero")
	}
	s.Reads, s.ReadHits = 10, 7
	s.Predictions, s.Correct = 7, 5
	s.ProbeReads = 15
	if s.HitRate() != 0.7 {
		t.Errorf("hit rate = %v", s.HitRate())
	}
	if s.PredictionAccuracy() != 5.0/7.0 {
		t.Errorf("accuracy = %v", s.PredictionAccuracy())
	}
	if s.ProbesPerRead() != 1.5 {
		t.Errorf("probes per read = %v", s.ProbesPerRead())
	}
	var l LatencySum
	if l.Mean() != 0 {
		t.Error("empty latency mean nonzero")
	}
	l.add(10)
	l.add(20)
	if l.Mean() != 15 {
		t.Errorf("latency mean = %v", l.Mean())
	}
}
