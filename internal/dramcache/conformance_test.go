package dramcache_test

import (
	"os"
	"testing"

	"accord/internal/dramcache"
	"accord/internal/dramcache/dctest"
)

// TestConformance runs the shared backend contract suite (see dctest)
// over every registered organization. ACCORD_BACKEND=<name> narrows the
// run to one backend — the CI matrix uses this to parallelize under
// -race.
func TestConformance(t *testing.T) {
	only := os.Getenv("ACCORD_BACKEND")
	if only != "" && !dramcache.HasBackend(only) {
		t.Fatalf("ACCORD_BACKEND=%q is not a registered backend (have %v)",
			only, dramcache.BackendNames())
	}
	ran := false
	for _, h := range dctest.Backends(1) {
		if only != "" && h.Backend != only {
			continue
		}
		ran = true
		h := h
		t.Run(h.Backend, func(t *testing.T) { dctest.RunAll(t, h) })
	}
	if !ran {
		t.Fatal("no backend matched the filter")
	}
}
