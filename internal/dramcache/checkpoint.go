package dramcache

import (
	"fmt"

	"accord/internal/ckpt"
	"accord/internal/core"
	"accord/internal/memtypes"
)

// errNoPolicyCheckpoint reports a policy that cannot be serialized.
func errNoPolicyCheckpoint(name string) error {
	return fmt.Errorf("dramcache: policy %q does not support checkpointing", name)
}

// Per-component version bytes; bump on any encoding change.
const (
	cacheVersion = 1
	caVersion    = 1
)

// snapshotStats writes every Stats field in declaration order.
func snapshotStats(e *ckpt.Encoder, s *Stats) {
	e.U64(s.Reads)
	e.U64(s.ReadHits)
	e.U64(s.Writebacks)
	e.U64(s.WritebackHits)
	e.U64(s.Predictions)
	e.U64(s.Correct)
	e.U64(s.ProbeReads)
	e.U64(s.InstallWrites)
	e.U64(s.WritebackWrites)
	e.U64(s.VictimReads)
	e.U64(s.ReplStateOps)
	e.U64(s.NVMReads)
	e.U64(s.NVMWrites)
	e.U64(s.FilteredMisses)
	snapshotLatency(e, &s.HitLatency)
	snapshotLatency(e, &s.MissLatency)
}

func restoreStats(d *ckpt.Decoder, s *Stats) {
	s.Reads = d.U64()
	s.ReadHits = d.U64()
	s.Writebacks = d.U64()
	s.WritebackHits = d.U64()
	s.Predictions = d.U64()
	s.Correct = d.U64()
	s.ProbeReads = d.U64()
	s.InstallWrites = d.U64()
	s.WritebackWrites = d.U64()
	s.VictimReads = d.U64()
	s.ReplStateOps = d.U64()
	s.NVMReads = d.U64()
	s.NVMWrites = d.U64()
	s.FilteredMisses = d.U64()
	restoreLatency(d, &s.HitLatency)
	restoreLatency(d, &s.MissLatency)
}

func snapshotLatency(e *ckpt.Encoder, l *LatencySum) {
	e.U64(l.Count)
	e.I64(l.Sum)
	for _, b := range l.Buckets {
		e.U64(b)
	}
}

func restoreLatency(d *ckpt.Decoder, l *LatencySum) {
	l.Count = d.U64()
	l.Sum = d.I64()
	for i := range l.Buckets {
		l.Buckets[i] = d.U64()
	}
}

// Snapshot serializes the set arrays, replacement state, statistics, and
// the attached policy. It returns an error when the policy does not
// implement core.Checkpointable — such configurations simply cannot be
// checkpointed, and the caller falls back to a cold run.
func (c *Cache) Snapshot(e *ckpt.Encoder) error {
	cp, ok := c.policy.(core.Checkpointable)
	if !ok {
		return errNoPolicyCheckpoint(c.policy.Name())
	}
	e.U8(cacheVersion)
	e.U64(c.clock)
	for _, m := range c.meta {
		e.U64(m.tag)
		var flags uint8
		if m.valid {
			flags |= 1
		}
		if m.dirty {
			flags |= 2
		}
		e.U8(flags)
	}
	e.Bool(c.lru != nil)
	for _, v := range c.lru {
		e.U64(v)
	}
	snapshotStats(e, &c.stats)
	cp.Snapshot(e)
	return nil
}

// Restore replaces the cache's state with a snapshot. On error the cache
// is left in an unspecified state and must be discarded.
func (c *Cache) Restore(d *ckpt.Decoder) error {
	cp, ok := c.policy.(core.Checkpointable)
	if !ok {
		return errNoPolicyCheckpoint(c.policy.Name())
	}
	if v := d.U8(); d.Err() == nil && v != cacheVersion {
		d.Failf("dramcache: snapshot version %d, want %d", v, cacheVersion)
	}
	c.clock = d.U64()
	for i := range c.meta {
		tag := d.U64()
		flags := d.U8()
		if d.Err() != nil {
			return d.Err()
		}
		if flags > 3 {
			d.Failf("dramcache: meta[%d] flags %#x invalid", i, flags)
			return d.Err()
		}
		c.meta[i] = wayMeta{tag: tag, valid: flags&1 != 0, dirty: flags&2 != 0}
	}
	hasLRU := d.Bool()
	if d.Err() == nil && hasLRU != (c.lru != nil) {
		d.Failf("dramcache: snapshot LRU=%v, cache has LRU=%v", hasLRU, c.lru != nil)
	}
	if d.Err() != nil {
		return d.Err()
	}
	for i := range c.lru {
		c.lru[i] = d.U64()
	}
	restoreStats(d, &c.stats)
	if err := d.Err(); err != nil {
		return err
	}
	return cp.Restore(d)
}

// Snapshot serializes the CA-cache's slot arrays and statistics. The
// error return is always nil; it exists so Cache and CACache satisfy one
// checkpointing interface at the sim layer.
func (c *CACache) Snapshot(e *ckpt.Encoder) error {
	e.U8(caVersion)
	for _, l := range c.lines {
		e.U64(uint64(l))
	}
	e.Bools(c.valid)
	e.Bools(c.dirty)
	snapshotStats(e, &c.stats)
	return nil
}

// Restore replaces the CA-cache's state with a snapshot.
func (c *CACache) Restore(d *ckpt.Decoder) error {
	if v := d.U8(); d.Err() == nil && v != caVersion {
		d.Failf("dramcache: CA snapshot version %d, want %d", v, caVersion)
	}
	if err := d.Err(); err != nil {
		return err
	}
	for i := range c.lines {
		c.lines[i] = memtypes.LineAddr(d.U64())
	}
	d.Bools(c.valid)
	d.Bools(c.dirty)
	restoreStats(d, &c.stats)
	return d.Err()
}
