package dramcache

import (
	"math/rand"
	"testing"

	"accord/internal/memtypes"
)

func buildCA(slots int64) *CACache {
	dev, nvm := devices()
	return NewCA(slots*memtypes.LineSize, dev, nvm)
}

func TestCAFastHit(t *testing.T) {
	c := buildCA(64)
	line := memtypes.LineAddr(5)
	c.AccessRead(0, line)
	r := c.AccessRead(0, line)
	if !r.Hit || !r.FirstProbeHit {
		t.Fatal("expected fast hit at primary index")
	}
	s := c.Stats()
	// Miss: 2 probes (both locations); fast hit: 1 probe.
	if s.ProbeReads != 3 {
		t.Errorf("probes = %d, want 3", s.ProbeReads)
	}
	if s.PredictionAccuracy() != 1 {
		t.Errorf("one-access hit fraction = %v, want 1", s.PredictionAccuracy())
	}
}

func TestCAConflictingLinesCoexist(t *testing.T) {
	// Two lines with the same primary index thrash a direct-mapped cache
	// but coexist in a CA-cache (one at the rehash slot).
	c := buildCA(64)
	a := memtypes.LineAddr(3)
	b := memtypes.LineAddr(3 + 64)
	c.AccessRead(0, a)
	c.AccessRead(0, b) // installs at primary, pushes a to rehash
	if _, ok := c.Contains(a); !ok {
		t.Fatal("conflicting line a evicted; CA-cache should rehash it")
	}
	if _, ok := c.Contains(b); !ok {
		t.Fatal("line b missing")
	}
	ra := c.AccessRead(0, a) // slow hit + swap
	if !ra.Hit {
		t.Fatal("rehash hit missed")
	}
	if ra.FirstProbeHit {
		t.Error("rehash hit reported as fast")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCASwapPromotes(t *testing.T) {
	c := buildCA(64)
	a := memtypes.LineAddr(3)
	b := memtypes.LineAddr(3 + 64)
	c.AccessRead(0, a)
	c.AccessRead(0, b)
	c.AccessRead(0, a)      // slow hit, swaps a to primary
	r := c.AccessRead(0, a) // now fast
	if !r.FirstProbeHit {
		t.Error("swap did not promote the line to its primary slot")
	}
	swapWrites := c.Stats().InstallWrites
	if swapWrites < 2 {
		t.Errorf("swap writes = %d, want >= 2", swapWrites)
	}
}

func TestCADirtyEvictionReachesNVM(t *testing.T) {
	c := buildCA(64)
	a := memtypes.LineAddr(3)
	c.AccessRead(0, a)
	c.Writeback(0, a)
	if c.Stats().WritebackHits != 1 {
		t.Fatal("resident writeback missed")
	}
	// Two more conflicting lines push a out entirely.
	c.AccessRead(0, memtypes.LineAddr(3+64))
	c.AccessRead(0, memtypes.LineAddr(3+128))
	c.AccessRead(0, memtypes.LineAddr(3+192))
	if c.Stats().NVMWrites == 0 {
		t.Error("dirty line evicted without NVM write")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCAWritebackAbsentInstalls(t *testing.T) {
	c := buildCA(64)
	line := memtypes.LineAddr(9)
	c.Writeback(0, line)
	if _, ok := c.Contains(line); !ok {
		t.Error("writeback-install missing")
	}
	if c.Stats().VictimReads != 1 {
		t.Errorf("victim reads = %d, want 1", c.Stats().VictimReads)
	}
}

func TestCAInvariantsUnderChurn(t *testing.T) {
	c := buildCA(128)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 30000; i++ {
		line := memtypes.LineAddr(r.Intn(1024))
		if r.Intn(5) == 0 {
			c.Writeback(0, line)
		} else {
			c.AccessRead(0, line)
		}
		if i%5000 == 0 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCAMetadata(t *testing.T) {
	c := buildCA(64)
	if c.Name() != "ca-cache" || c.StorageBytes() != 0 {
		t.Errorf("metadata: %q %d", c.Name(), c.StorageBytes())
	}
	c.Stats().Reads = 3
	c.ResetStats()
	if c.Stats().Reads != 0 {
		t.Error("reset failed")
	}
}

func TestCAPanicsOnTinyCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for 1-slot CA cache")
		}
	}()
	buildCA(1)
}
