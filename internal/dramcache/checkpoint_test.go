package dramcache

import (
	"testing"

	"accord/internal/ckpt"
	"accord/internal/core"
	"accord/internal/memtypes"
	"accord/internal/xrand"
)

// ckptCache builds the standard small ACCORD-policy cache used by the
// checkpoint tests; seed differentiates the policy RNG.
func ckptCache(seed int64) *Cache {
	dev, nvm := devices()
	cfg := Config{
		CapacityBytes: 256 * 2 * memtypes.LineSize,
		Ways:          2,
		Lookup:        LookupPredicted,
	}
	pol := core.NewACCORD(core.DefaultACCORD(core.Geometry{Sets: 256, Ways: 2}, seed))
	return New(cfg, pol, dev, nvm)
}

// stir drives the cache with a deterministic read/writeback mix and
// returns the completion cycles.
func stir(c *Cache, n int, seed int64) []int64 {
	rng := xrand.New(seed)
	out := make([]int64, 0, n)
	at := int64(0)
	for i := 0; i < n; i++ {
		at += int64(rng.Intn(50))
		line := memtypes.LineAddr(rng.Intn(2048))
		if i%5 == 0 {
			out = append(out, c.Writeback(at, line))
		} else {
			out = append(out, c.AccessRead(at, line).Done)
		}
	}
	return out
}

// TestCacheRoundTrip restores a churned DRAM cache (tags, LRU-free
// steering state, policy, stats — but NOT its DRAM devices, which the
// sim layer owns) into a fresh instance and checks state equivalence.
func TestCacheRoundTrip(t *testing.T) {
	c := ckptCache(1)
	stir(c, 30_000, 7)
	e := ckpt.NewEncoder(0)
	if err := c.Snapshot(e); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	blob := e.Finish()

	fresh := ckptCache(42)
	d, err := ckpt.NewDecoderChecked(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(d); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after restore", d.Remaining())
	}
	if err := fresh.CheckInvariants(); err != nil {
		t.Fatalf("restored cache violates invariants: %v", err)
	}
	if *fresh.Stats() != *c.Stats() {
		t.Error("stats diverged after restore")
	}
	for l := memtypes.LineAddr(0); l < 2048; l++ {
		ww, wok := c.Contains(l)
		gw, gok := fresh.Contains(l)
		if wok != gok || ww != gw {
			t.Fatalf("line %d residency diverged: (%d,%v) != (%d,%v)", l, ww, wok, gw, gok)
		}
	}
}

// TestCacheRestoreRejectsBadInput covers version bumps, flag bytes, and
// truncations for the set-associative cache.
func TestCacheRestoreRejectsBadInput(t *testing.T) {
	c := ckptCache(1)
	stir(c, 2000, 3)
	e := ckpt.NewEncoder(0)
	if err := c.Snapshot(e); err != nil {
		t.Fatal(err)
	}
	blob := e.Finish()
	payload := blob[:len(blob)-4]

	bad := append([]byte{payload[0] + 1}, payload[1:]...)
	if err := ckptCache(1).Restore(ckpt.NewDecoder(bad)); err == nil {
		t.Error("version-bumped snapshot accepted")
	}
	for n := 0; n < len(payload); n += 1 + n/8 {
		if err := ckptCache(1).Restore(ckpt.NewDecoder(payload[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

// TestCACacheRoundTrip exercises the column-associative codec the same
// way.
func TestCACacheRoundTrip(t *testing.T) {
	c := buildCA(512)
	rng := xrand.New(5)
	at := int64(0)
	for i := 0; i < 20_000; i++ {
		at += int64(rng.Intn(50))
		line := memtypes.LineAddr(rng.Intn(2048))
		if i%6 == 0 {
			c.Writeback(at, line)
		} else {
			c.AccessRead(at, line)
		}
	}
	e := ckpt.NewEncoder(0)
	if err := c.Snapshot(e); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	blob := e.Finish()

	fresh := buildCA(512)
	d, err := ckpt.NewDecoderChecked(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(d); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after restore", d.Remaining())
	}
	if err := fresh.CheckInvariants(); err != nil {
		t.Fatalf("restored CA-cache violates invariants: %v", err)
	}
	if *fresh.Stats() != *c.Stats() {
		t.Error("stats diverged after restore")
	}
	for l := memtypes.LineAddr(0); l < 2048; l++ {
		ww, wok := c.Contains(l)
		gw, gok := fresh.Contains(l)
		if wok != gok || ww != gw {
			t.Fatalf("line %d residency diverged", l)
		}
	}

	payload := blob[:len(blob)-4]
	for n := 0; n < len(payload); n += 1 + n/8 {
		if err := buildCA(512).Restore(ckpt.NewDecoder(payload[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}
