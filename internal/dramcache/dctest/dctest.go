// Package dctest is the reusable conformance harness for L4 backend
// implementations. Every organization registered with dramcache.Register
// must pass RunAll: functional-vs-detailed state equivalence, checkpoint
// round-trip byte-identity, stats monotonicity and universal accounting
// invariants, and adversarial codec robustness (truncation, corruption,
// version skew, structural mismatch — reject, never panic).
//
// The harness deliberately checks only contract obligations every
// organization shares. Organization-specific identities (e.g. the nway
// "installs == misses + absent writebacks" conservation law, which
// Banshee's selective-install bypass intentionally breaks) belong next
// to the backend, not here. Trace-cache interchangeability — the last
// leg of the contract — is exercised end-to-end by the golden suite in
// internal/exp, which runs every backend with the trace cache off and on
// and requires bit-identical metrics.
//
// External backends get the same coverage for free:
//
//	for _, h := range dctest.Backends(1) {
//		t.Run(h.Backend, func(t *testing.T) { dctest.RunAll(t, h) })
//	}
package dctest

import (
	"fmt"
	"testing"

	"accord/internal/ckpt"
	"accord/internal/core"
	"accord/internal/dram"
	"accord/internal/dramcache"
	"accord/internal/memtypes"
	"accord/internal/xrand"
)

// Capacities used by the harness. Both satisfy every bundled backend's
// geometry (power-of-two sets at line, 4-line-way, and page granularity)
// while staying small enough for exhaustive sweeps; they differ so
// NewMismatched produces structurally incompatible snapshots.
const (
	harnessCapacity    = 256 << 10 // 4096 lines, 64 pages
	mismatchedCapacity = 128 << 10 // 2048 lines, 32 pages
)

// harnessWays is the associativity handed to backends that use Ways.
const harnessWays = 2

// Harness builds identically configured instances of one backend on
// demand; every conformance check needs at least two.
type Harness struct {
	// Backend is the registry name under test.
	Backend string
	// New returns a freshly built, identically configured instance
	// (instances share nothing, including policies and devices).
	New func() dramcache.Interface
	// NewMismatched returns an instance with a different geometry, for
	// structural-mismatch rejection checks.
	NewMismatched func() dramcache.Interface
}

// build constructs one backend instance on fresh devices. It panics on
// construction errors: the harness geometries are fixed, so a failure is
// a bug in the backend's constructor, not an input condition.
func build(name string, capacity int64, seed int64) dramcache.Interface {
	spec, ok := dramcache.GetBackend(name)
	if !ok {
		panic(fmt.Sprintf("dctest: unknown backend %q", name))
	}
	cfg := dramcache.BackendConfig{
		CapacityBytes: capacity,
		Ways:          harnessWays,
		Lookup:        dramcache.LookupPredicted,
		Seed:          seed,
	}
	if spec.UsesPolicy {
		cfg.Policy = core.NewACCORD(core.DefaultACCORD(cfg.Geometry(), seed))
	}
	dev := dram.New(dram.HBM(), 3.0)
	nvm := dram.New(dram.PCM(), 3.0)
	c, err := spec.New(cfg, dramcache.Deps{Dev: dev, NVM: nvm, Frames: 1 << 16})
	if err != nil {
		panic(fmt.Sprintf("dctest: building backend %q: %v", name, err))
	}
	return c
}

// Backends returns one harness per registered backend, in sorted name
// order. seed differentiates policy RNG streams across suites.
func Backends(seed int64) []Harness {
	var out []Harness
	for _, name := range dramcache.BackendNames() {
		name := name
		out = append(out, Harness{
			Backend:       name,
			New:           func() dramcache.Interface { return build(name, harnessCapacity, seed) },
			NewMismatched: func() dramcache.Interface { return build(name, mismatchedCapacity, seed) },
		})
	}
	return out
}

// opStream generates the deterministic operation mix every check drives
// backends with: reads and writebacks over a footprint 4x the cache, at
// monotonically advancing timestamps.
type opStream struct {
	rng *xrand.Rand
	at  int64
}

func newOpStream(seed int64) *opStream { return &opStream{rng: xrand.New(seed)} }

// footprintLines is 4x the harness capacity, so every organization sees
// real replacement pressure.
const footprintLines = 4 * harnessCapacity / memtypes.LineSize

func (o *opStream) next() (at int64, line memtypes.LineAddr, writeback bool) {
	o.at += int64(o.rng.Intn(50))
	line = memtypes.LineAddr(o.rng.Intn(footprintLines))
	return o.at, line, o.rng.Intn(5) == 0
}

// driveDetailed applies n ops through the timed path.
func driveDetailed(c dramcache.Interface, ops *opStream, n int) {
	for i := 0; i < n; i++ {
		at, line, wb := ops.next()
		if wb {
			c.Writeback(at, line)
		} else {
			c.AccessRead(at, line)
		}
	}
}

// driveFunctional applies n ops through the state-only path. The stream
// advances identically (timestamps are drawn and discarded) so a
// functional drive consumes exactly the ops a detailed drive would.
func driveFunctional(c dramcache.Interface, ops *opStream, n int) {
	for i := 0; i < n; i++ {
		_, line, wb := ops.next()
		if wb {
			c.WritebackFunctional(line)
		} else {
			c.AccessReadFunctional(line)
		}
	}
}

// driveBatch applies n ops through FunctionalBatch, in windows of
// varying length (1..257, including singletons and sizes that straddle
// the drive's tail). Flags carry a stray non-write bit on some reads:
// the contract says backends test FunctionalWrite and ignore the rest
// (trace-cache flag bytes arrive unmasked, with the core-side Dep bit
// still set).
func driveBatch(c dramcache.Interface, ops *opStream, n int) {
	lines := make([]memtypes.LineAddr, 0, 257)
	flags := make([]uint8, 0, 257)
	w := 1
	for done := 0; done < n; {
		lines, flags = lines[:0], flags[:0]
		sz := min(w, n-done)
		for i := 0; i < sz; i++ {
			_, line, wb := ops.next()
			lines = append(lines, line)
			var f uint8
			if wb {
				f = dramcache.FunctionalWrite
			} else if i%3 == 0 {
				f = 1 << 1 // stray Dep bit; must be ignored
			}
			flags = append(flags, f)
		}
		c.FunctionalBatch(lines, flags)
		done += sz
		w = w*2 + 1
		if w > 257 {
			w = 1
		}
	}
}

// snapshot serializes an instance with the codec's CRC trailer.
func snapshot(t *testing.T, c dramcache.Interface) []byte {
	t.Helper()
	e := ckpt.NewEncoder(0)
	if err := c.Snapshot(e); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return e.Finish()
}

// restore loads a CRC-trailed blob and requires full consumption.
func restore(t *testing.T, c dramcache.Interface, blob []byte) {
	t.Helper()
	d, err := ckpt.NewDecoderChecked(blob)
	if err != nil {
		t.Fatalf("NewDecoderChecked: %v", err)
	}
	if err := c.Restore(d); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after restore", d.Remaining())
	}
}

// RunAll runs the full conformance suite against one backend.
func RunAll(t *testing.T, h Harness) {
	t.Run("functional-equivalence", func(t *testing.T) { checkFunctionalEquivalence(t, h) })
	t.Run("batch-equivalence", func(t *testing.T) { checkBatchEquivalence(t, h) })
	t.Run("checkpoint-roundtrip", func(t *testing.T) { checkCheckpointRoundTrip(t, h) })
	t.Run("stats-invariants", func(t *testing.T) { checkStatsInvariants(t, h) })
	t.Run("codec-adversarial", func(t *testing.T) { checkCodecAdversarial(t, h) })
}

// checkFunctionalEquivalence proves the contract's central promise: a
// functional op sequence leaves byte-identical state (snapshot bytes,
// stats zeroed) to the same detailed sequence, and per-op results agree
// (way and hit must match — they feed the L3's DCP state).
func checkFunctionalEquivalence(t *testing.T, h Harness) {
	det, fun := h.New(), h.New()
	detOps, funOps := newOpStream(11), newOpStream(11)
	const n = 30_000
	for i := 0; i < n; i++ {
		at, line, wb := detOps.next()
		_, fline, fwb := funOps.next()
		if line != fline || wb != fwb {
			t.Fatal("op streams diverged (harness bug)")
		}
		if wb {
			det.Writeback(at, line)
			fun.WritebackFunctional(line)
			continue
		}
		rr := det.AccessRead(at, line)
		way, hit := fun.AccessReadFunctional(line)
		if hit != rr.Hit || way != rr.Way {
			t.Fatalf("op %d line %#x: functional (way %d, hit %v) != detailed (way %d, hit %v)",
				i, uint64(line), way, hit, rr.Way, rr.Hit)
		}
	}
	for name, c := range map[string]dramcache.Interface{"detailed": det, "functional": fun} {
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%s instance violates invariants: %v", name, err)
		}
	}
	det.ResetStats()
	fun.ResetStats()
	db, fb := snapshot(t, det), snapshot(t, fun)
	if string(db) != string(fb) {
		t.Fatalf("functional warm state diverged from detailed: %d vs %d byte snapshots differ", len(fb), len(db))
	}
}

// checkBatchEquivalence proves FunctionalBatch is exactly the per-event
// functional ops in order: after the same op sequence, the batched and
// the single-stepped instance must have byte-identical snapshots and
// equal stats, regardless of how the sequence was cut into windows.
func checkBatchEquivalence(t *testing.T, h Harness) {
	single, batch := h.New(), h.New()
	singleOps, batchOps := newOpStream(53), newOpStream(53)
	const n = 30_000
	// Mirror driveBatch's flag quirk: the per-event reference must issue
	// the same reads/writebacks, and the stray Dep bit changes nothing on
	// the per-event path by construction.
	driveFunctional(single, singleOps, n)
	driveBatch(batch, batchOps, n)
	if err := batch.CheckInvariants(); err != nil {
		t.Fatalf("batched instance violates invariants: %v", err)
	}
	if *single.Stats() != *batch.Stats() {
		t.Fatalf("batched stats diverged from single-step:\n single %+v\n batch  %+v", *single.Stats(), *batch.Stats())
	}
	if string(snapshot(t, single)) != string(snapshot(t, batch)) {
		t.Fatal("batched state diverged from single-step (snapshot bytes differ)")
	}
}

// checkCheckpointRoundTrip proves snapshot/restore byte-identity and that
// a restored instance behaves identically afterwards (continued ops are
// functional: the snapshot deliberately excludes device timing, so only
// state-path behavior is comparable across instances).
func checkCheckpointRoundTrip(t *testing.T, h Harness) {
	a := h.New()
	driveDetailed(a, newOpStream(23), 20_000)
	blobA := snapshot(t, a)

	b := h.New()
	restore(t, b, blobA)
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("restored instance violates invariants: %v", err)
	}
	blobB := snapshot(t, b)
	if string(blobA) != string(blobB) {
		t.Fatal("restore -> snapshot is not byte-identical")
	}
	if *a.Stats() != *b.Stats() {
		t.Fatal("stats diverged after restore")
	}
	for l := memtypes.LineAddr(0); l < footprintLines; l++ {
		aw, aok := a.Contains(l)
		bw, bok := b.Contains(l)
		if aok != bok || aw != bw {
			t.Fatalf("line %#x residency diverged: (%d,%v) != (%d,%v)", uint64(l), aw, aok, bw, bok)
		}
	}

	// Continued behavior: both instances must walk in lockstep.
	aOps, bOps := newOpStream(29), newOpStream(29)
	driveFunctional(a, aOps, 5_000)
	driveFunctional(b, bOps, 5_000)
	if string(snapshot(t, a)) != string(snapshot(t, b)) {
		t.Fatal("instances diverged after post-restore ops")
	}
}

// counterViews enumerates every monotonic Stats counter with its name.
func counterViews(s *dramcache.Stats) []struct {
	name string
	v    uint64
} {
	return []struct {
		name string
		v    uint64
	}{
		{"reads", s.Reads},
		{"read_hits", s.ReadHits},
		{"writebacks", s.Writebacks},
		{"writeback_hits", s.WritebackHits},
		{"predictions", s.Predictions},
		{"correct", s.Correct},
		{"probe_reads", s.ProbeReads},
		{"install_writes", s.InstallWrites},
		{"writeback_writes", s.WritebackWrites},
		{"victim_reads", s.VictimReads},
		{"repl_state_ops", s.ReplStateOps},
		{"nvm_reads", s.NVMReads},
		{"nvm_writes", s.NVMWrites},
		{"filtered_misses", s.FilteredMisses},
		{"hit_latency_count", s.HitLatency.Count},
		{"miss_latency_count", s.MissLatency.Count},
	}
}

// checkStatsInvariants drives one instance and checks counter
// monotonicity plus the accounting identities every organization obeys.
func checkStatsInvariants(t *testing.T, h Harness) {
	c := h.New()
	ops := newOpStream(37)
	prev := make([]uint64, len(counterViews(c.Stats())))
	const rounds, perRound = 10, 2_000
	for r := 0; r < rounds; r++ {
		driveDetailed(c, ops, perRound)
		s := c.Stats()
		for i, cv := range counterViews(s) {
			if cv.v < prev[i] {
				t.Fatalf("round %d: counter %s went backwards: %d -> %d", r, cv.name, prev[i], cv.v)
			}
			prev[i] = cv.v
		}
		switch {
		case s.Reads != s.ReadHits+s.NVMReads:
			t.Fatalf("round %d: reads %d != hits %d + nvm reads %d", r, s.Reads, s.ReadHits, s.NVMReads)
		case s.HitLatency.Count != s.ReadHits:
			t.Fatalf("round %d: hit-latency count %d != read hits %d", r, s.HitLatency.Count, s.ReadHits)
		case s.MissLatency.Count != s.Reads-s.ReadHits:
			t.Fatalf("round %d: miss-latency count %d != misses %d", r, s.MissLatency.Count, s.Reads-s.ReadHits)
		case s.WritebackHits > s.Writebacks:
			t.Fatalf("round %d: writeback hits %d > writebacks %d", r, s.WritebackHits, s.Writebacks)
		case s.Correct > s.Predictions:
			t.Fatalf("round %d: correct %d > predictions %d", r, s.Correct, s.Predictions)
		}
	}
	if s := c.Stats(); s.Reads == 0 || s.ReadHits == 0 || s.Reads == s.ReadHits {
		t.Fatalf("degenerate drive: reads %d, hits %d (harness must produce both hits and misses)", s.Reads, s.ReadHits)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after drive: %v", err)
	}
	c.ResetStats()
	if *c.Stats() != (dramcache.Stats{}) {
		t.Fatal("ResetStats left residue")
	}
}

// checkCodecAdversarial feeds the backend's Restore malformed input; the
// contract is reject-with-error, never panic, never silently accept.
func checkCodecAdversarial(t *testing.T, h Harness) {
	c := h.New()
	driveDetailed(c, newOpStream(41), 10_000)
	blob := snapshot(t, c)
	payload := blob[:len(blob)-4] // strip the CRC trailer

	// Baseline: the unmodified blob must restore.
	restore(t, h.New(), blob)

	// Version bump.
	bad := append([]byte{payload[0] + 1}, payload[1:]...)
	if err := h.New().Restore(ckpt.NewDecoder(bad)); err == nil {
		t.Error("version-bumped snapshot accepted")
	}

	// Truncation sweep.
	for n := 0; n < len(payload); n += 1 + n/8 {
		if err := h.New().Restore(ckpt.NewDecoder(payload[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}

	// CRC corruption: a flipped byte anywhere must fail the checked
	// decoder before Restore even runs.
	for _, i := range []int{0, len(blob) / 3, len(blob) / 2, len(blob) - 1} {
		corrupt := append([]byte(nil), blob...)
		corrupt[i] ^= 0x40
		if _, err := ckpt.NewDecoderChecked(corrupt); err == nil {
			t.Errorf("CRC corruption at byte %d accepted", i)
		}
	}

	// Structural mismatch, both directions. A backend may detect the
	// mismatch itself (error) or consume a prefix and leave trailing
	// bytes — which every caller rejects (sim.Restore requires
	// Remaining() == 0) — but it must never panic or silently fit.
	small := h.NewMismatched()
	smallBlob := snapshot(t, small)
	d := ckpt.NewDecoder(payload)
	if err := small.Restore(d); err == nil && d.Remaining() == 0 {
		t.Error("large snapshot silently accepted by smaller instance")
	}
	d = ckpt.NewDecoder(smallBlob[:len(smallBlob)-4])
	if err := h.New().Restore(d); err == nil && d.Remaining() == 0 {
		t.Error("small snapshot silently accepted by larger instance")
	}
}
