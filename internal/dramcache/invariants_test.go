package dramcache

import (
	"math/rand"
	"testing"

	"accord/internal/core"
	"accord/internal/memtypes"
)

// Conservation and accounting invariants that must hold for any
// organization under any traffic.

// registryInstance builds one instance of each registered backend on a
// shared small geometry, with a policy attached where the backend wants
// one, so invariant tests iterate the registry instead of hard-coding
// organizations.
func registryInstance(t *testing.T, name string, seed int64) Interface {
	t.Helper()
	dev, nvm := devices()
	cfg := BackendConfig{
		CapacityBytes: 256 << 10,
		Ways:          2,
		Lookup:        LookupPredicted,
		Seed:          seed,
	}
	spec, ok := GetBackend(name)
	if !ok {
		t.Fatalf("backend %q vanished from the registry", name)
	}
	if spec.UsesPolicy {
		cfg.Policy = core.NewACCORD(core.DefaultACCORD(cfg.Geometry(), seed))
	}
	c, err := NewBackend(name, cfg, Deps{Dev: dev, NVM: nvm, Frames: 1 << 16})
	if err != nil {
		t.Fatalf("building backend %q: %v", name, err)
	}
	return c
}

// TestRegistryUniversalInvariants drives every registered backend with
// the same randomized traffic and checks the accounting identities all
// organizations share, plus each backend's own structural invariants.
// Organization-specific conservation laws (e.g. installs == misses,
// which Banshee's bypass breaks by design) stay in the per-organization
// tests below.
func TestRegistryUniversalInvariants(t *testing.T) {
	for _, name := range BackendNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			c := registryInstance(t, name, 3)
			r := rand.New(rand.NewSource(9))
			for i := 0; i < 30000; i++ {
				line := memtypes.LineAddr(r.Intn(16384))
				if r.Intn(5) == 0 {
					c.Writeback(0, line)
				} else {
					c.AccessRead(0, line)
				}
			}
			s := c.Stats()
			if s.Reads == 0 || s.ReadHits == 0 || s.Reads == s.ReadHits {
				t.Fatalf("degenerate traffic: reads %d, hits %d", s.Reads, s.ReadHits)
			}
			if s.Reads != s.ReadHits+s.NVMReads {
				t.Errorf("reads %d != hits %d + NVM reads %d", s.Reads, s.ReadHits, s.NVMReads)
			}
			if s.HitLatency.Count != s.ReadHits {
				t.Errorf("hit latency count %d != hits %d", s.HitLatency.Count, s.ReadHits)
			}
			if s.MissLatency.Count != s.Reads-s.ReadHits {
				t.Errorf("miss latency count %d != misses %d", s.MissLatency.Count, s.Reads-s.ReadHits)
			}
			if s.WritebackHits > s.Writebacks {
				t.Errorf("writeback hits %d > writebacks %d", s.WritebackHits, s.Writebacks)
			}
			if s.Correct > s.Predictions {
				t.Errorf("correct %d > predictions %d", s.Correct, s.Predictions)
			}
			if err := c.CheckInvariants(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestAccountingConservation(t *testing.T) {
	for _, tc := range []struct {
		name   string
		lookup Lookup
		ways   int
	}{
		{"dm", LookupPredicted, 1},
		{"2way-pred", LookupPredicted, 2},
		{"4way-parallel", LookupParallel, 4},
		{"4way-serial", LookupSerial, 4},
		{"8way-perfect", LookupPerfect, 8},
		{"8way-ideal", LookupIdealized, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pol := core.NewACCORD(core.DefaultACCORD(core.Geometry{Sets: 64, Ways: tc.ways}, 3))
			c := build(64, tc.ways, tc.lookup, pol)
			r := rand.New(rand.NewSource(9))
			for i := 0; i < 20000; i++ {
				line := memtypes.LineAddr(r.Intn(4096))
				if r.Intn(5) == 0 {
					c.Writeback(0, line)
				} else {
					c.AccessRead(0, line)
				}
			}
			s := c.Stats()
			// Every demand read either hits or goes to NVM.
			if s.Reads != s.ReadHits+s.NVMReads {
				t.Errorf("reads %d != hits %d + NVM reads %d", s.Reads, s.ReadHits, s.NVMReads)
			}
			// Every miss and every absent writeback installs exactly once.
			wantInstalls := (s.Reads - s.ReadHits) + (s.Writebacks - s.WritebackHits)
			if s.InstallWrites != wantInstalls {
				t.Errorf("installs %d, want %d", s.InstallWrites, wantInstalls)
			}
			// NVM writes can never exceed installs (only dirty victims).
			if s.NVMWrites > s.InstallWrites {
				t.Errorf("NVM writes %d exceed installs %d", s.NVMWrites, s.InstallWrites)
			}
			// Latency populations match the hit/miss counts.
			if s.HitLatency.Count != s.ReadHits {
				t.Errorf("hit latency count %d != hits %d", s.HitLatency.Count, s.ReadHits)
			}
			if s.MissLatency.Count != s.Reads-s.ReadHits {
				t.Errorf("miss latency count %d != misses %d", s.MissLatency.Count, s.Reads-s.ReadHits)
			}
			if err := c.CheckInvariants(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestCAAccountingConservation(t *testing.T) {
	c := buildCA(128)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		line := memtypes.LineAddr(r.Intn(2048))
		if r.Intn(5) == 0 {
			c.Writeback(0, line)
		} else {
			c.AccessRead(0, line)
		}
	}
	s := c.Stats()
	if s.Reads != s.ReadHits+s.NVMReads {
		t.Errorf("reads %d != hits %d + NVM reads %d", s.Reads, s.ReadHits, s.NVMReads)
	}
	if s.NVMWrites == 0 {
		t.Error("dirty traffic never reached NVM")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPredictedProbesBounded(t *testing.T) {
	// Probes per read is bounded by the candidate count for every policy.
	for _, ways := range []int{2, 4, 8} {
		pol := core.NewACCORD(core.DefaultACCORD(core.Geometry{Sets: 32, Ways: ways}, 5))
		c := build(32, ways, LookupPredicted, pol)
		r := rand.New(rand.NewSource(int64(ways)))
		for i := 0; i < 10000; i++ {
			c.AccessRead(0, memtypes.LineAddr(r.Intn(2048)))
		}
		maxProbes := float64(ways)
		if ways > 2 {
			maxProbes = 2 // SWS restricts to preferred+alternate
		}
		if ppr := c.Stats().ProbesPerRead(); ppr > maxProbes+1e-9 {
			t.Errorf("%d-way probes/read = %.3f, want <= %.0f", ways, ppr, maxProbes)
		}
	}
}

func TestLatencyPercentiles(t *testing.T) {
	var l LatencySum
	if l.Percentile(0.5) != 0 {
		t.Error("empty percentile not 0")
	}
	for i := 0; i < 100; i++ {
		l.add(100) // bucket [64,128) -> index 6
	}
	l.add(100000) // far tail
	p50 := l.Percentile(0.5)
	if p50 < 100 || p50 > 256 {
		t.Errorf("p50 = %d, want around 128", p50)
	}
	p999 := l.Percentile(0.999)
	if p999 < 65536 {
		t.Errorf("p99.9 = %d, should capture the tail", p999)
	}
	// Percentiles are monotone in q.
	if l.Percentile(0.1) > l.Percentile(0.9) {
		t.Error("percentiles not monotone")
	}
}

func TestMispredictedHitSecondProbe(t *testing.T) {
	// Force a mispredict: MRU policy predicts way 0 for a cold set, but
	// the line lives in way 1.
	g := core.Geometry{Sets: 16, Ways: 2}
	pol := core.NewMRU(g, 1)
	c := build(16, 2, LookupPredicted, pol)
	line := memtypes.LineAddr(3)
	// Install until the line lands in way 1.
	for {
		c.AccessRead(0, line)
		if w, _ := c.Contains(line); w == 1 {
			break
		}
		c.AccessRead(0, memtypes.LineAddr(uint64(line)+16*uint64(c.Stats().Reads)))
	}
	// Overwrite MRU's training by touching another set — MRU is per-set,
	// so reset its state via a fresh policy instead: rebuild deterministic.
	s := *c.Stats()
	if s.Predictions > 0 && s.Correct == s.Predictions {
		t.Skip("placement never exercised a mispredict under this seed")
	}
}

func TestWritebackToFullSetEvicts(t *testing.T) {
	pol := core.NewRand(core.Geometry{Sets: 4, Ways: 2}, 2)
	c := build(4, 2, LookupPredicted, pol)
	// Fill set 0 with reads, then write back a third conflicting line.
	c.AccessRead(0, 0)
	c.AccessRead(0, 4)
	c.Writeback(0, 8)
	if _, ok := c.Contains(8); !ok {
		t.Fatal("writeback-installed line missing")
	}
	// Random replacement picks ways without regard to validity (the
	// paper's update-free policy), so between 1 and 2 of the three
	// conflicting lines can be resident — never all three.
	occupied := 0
	for _, l := range []memtypes.LineAddr{0, 4, 8} {
		if _, ok := c.Contains(l); ok {
			occupied++
		}
	}
	if occupied < 1 || occupied > 2 {
		t.Errorf("%d of 3 conflicting lines resident in a 2-way set", occupied)
	}
}
