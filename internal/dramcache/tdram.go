package dramcache

import (
	"fmt"

	"accord/internal/ckpt"
	"accord/internal/dram"
	"accord/internal/memtypes"
	"accord/internal/metrics"
)

// TDRAM models the tag-enhanced DRAM organization of Babaie et al.
// (TDRAM, PAPERS.md): the DRAM die carries dedicated tag mats that are
// read concurrently with the data mats and compared on-die, so a hit is
// a single plain 64-byte data access — no separate tag probe, no
// oversized tags-with-data unit — and a miss is signaled early by the
// tag compare, before the data burst would complete. The on-die compare
// covers every way of the set at once, so misses need no confirmation
// probes either: the tags are authoritative.
//
// The data mats can only burst one way per access, so the device must
// still guess which way to stream. TDRAM keeps a per-set MRU hint (in
// the tag mats, zero SRAM): a correct guess is a one-access hit; a wrong
// guess pays one extra data access after the on-die compare names the
// resident way. Installs write tag and data in the same access — the
// flush-reduction property of the design.
type TDRAM struct {
	dev *dram.Device
	nvm *dram.Device

	sets     uint64
	setMask  uint64
	setShift uint
	ways     int

	meta []wayMeta
	mru  []uint8 // per-set most-recently-used way (the burst guess)
	rr   []uint8 // per-set round-robin victim cursor

	devMap dram.Mapper // set -> device row
	nvmMap dram.Mapper // line -> NVM row

	// tagEarly is how many cycles before data-burst completion the on-die
	// tag compare resolves: the access-time delta between a full line and
	// a tag-sized beat, precomputed from the device timing.
	tagEarly int64

	stats Stats
}

// tdramTagBytes sizes the early tag readout used to precompute tagEarly.
const tdramTagBytes = 8

// NewTDRAM builds a tag-enhanced cache with the given associativity.
func NewTDRAM(capacityBytes int64, ways int, dev, nvm *dram.Device) (*TDRAM, error) {
	cfg := Config{CapacityBytes: capacityBytes, Ways: ways}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ways > 256 {
		return nil, fmt.Errorf("dramcache: tdram ways %d exceed the uint8 MRU hint", ways)
	}
	sets := uint64(capacityBytes / (int64(ways) * memtypes.LineSize))
	// Sets map at line granularity: tags live in separate mats, so a row
	// holds plain 64-byte lines (the organization's density advantage over
	// tags-with-data). One set's ways stay co-located per row where they
	// fit.
	setBytes := ways * memtypes.LineSize
	upr := dev.Config().RowBytes / setBytes
	if upr < 1 {
		upr = 1
	}
	nvmUPR := nvm.Config().RowBytes / memtypes.LineSize
	if nvmUPR < 1 {
		nvmUPR = 1
	}
	early := dev.UnloadedReadLatency(memtypes.LineSize) - dev.UnloadedReadLatency(tdramTagBytes)
	if early < 0 {
		early = 0
	}
	return &TDRAM{
		dev:      dev,
		nvm:      nvm,
		sets:     sets,
		setMask:  sets - 1,
		setShift: log2(sets),
		ways:     ways,
		meta:     make([]wayMeta, sets*uint64(ways)),
		mru:      make([]uint8, sets),
		rr:       make([]uint8, sets),
		devMap:   dev.Config().NewMapper(upr),
		nvmMap:   nvm.Config().NewMapper(nvmUPR),
		tagEarly: early,
	}, nil
}

// Name implements Interface.
func (c *TDRAM) Name() string { return fmt.Sprintf("tdram-%dway", c.ways) }

// Stats implements Interface.
func (c *TDRAM) Stats() *Stats { return &c.stats }

// ResetStats implements Interface.
func (c *TDRAM) ResetStats() { c.stats = Stats{} }

// StorageBytes implements Interface: tags, MRU hints, and replacement
// state all live in the DRAM tag mats, so no SRAM is needed.
func (c *TDRAM) StorageBytes() int64 { return 0 }

// RegisterMetrics implements Interface.
func (c *TDRAM) RegisterMetrics(r *metrics.Registry, prefix string) {
	c.stats.Register(r, prefix)
}

func (c *TDRAM) index(line memtypes.LineAddr) (set, tag uint64) {
	return uint64(line) & c.setMask, uint64(line) >> c.setShift
}

func (c *TDRAM) slot(set uint64, way int) int { return int(set)*c.ways + way }

func (c *TDRAM) lineOf(set, tag uint64) memtypes.LineAddr {
	return memtypes.LineAddr(tag<<c.setShift | set)
}

func (c *TDRAM) findWay(set, tag uint64) int {
	base := int(set) * c.ways
	ways := c.meta[base : base+c.ways]
	for w := range ways {
		if ways[w].valid && ways[w].tag == tag {
			return w
		}
	}
	return -1
}

// Contains implements Interface.
func (c *TDRAM) Contains(line memtypes.LineAddr) (way int, ok bool) {
	set, tag := c.index(line)
	w := c.findWay(set, tag)
	return w, w >= 0
}

func (c *TDRAM) loc(set uint64) dram.Loc { return c.devMap.Map(set) }

func (c *TDRAM) nvmLoc(line memtypes.LineAddr) dram.Loc {
	return c.nvmMap.Map(uint64(line))
}

// victimWay picks the install victim: the first invalid way, else the
// round-robin cursor (skipping the MRU way when associativity allows, so
// the burst guess is never the line just about to be evicted).
func (c *TDRAM) victimWay(set uint64) int {
	base := int(set) * c.ways
	for w := 0; w < c.ways; w++ {
		if !c.meta[base+w].valid {
			return w
		}
	}
	w := int(c.rr[set])
	if c.ways > 1 && w == int(c.mru[set]) {
		w = (w + 1) % c.ways
	}
	c.rr[set] = uint8((w + 1) % c.ways)
	return w
}

// AccessRead implements Interface. Every access streams one 64-byte line
// (the MRU guess); the concurrent tag-mat read resolves hit/miss and the
// resident way on-die.
func (c *TDRAM) AccessRead(at int64, line memtypes.LineAddr) ReadResult {
	set, tag := c.index(line)
	loc := c.devMap.Map(set)
	actual := c.findWay(set, tag)
	hit := actual >= 0
	guess := int(c.mru[set])
	c.stats.Reads++

	c.stats.ProbeReads++
	first := c.dev.Access(at, loc, memtypes.Read, memtypes.LineSize).DataAt

	if hit {
		c.stats.Predictions++
		done := first
		fastPath := guess == actual
		if fastPath {
			c.stats.Correct++
		} else {
			// The on-die compare named the real way; one more data access.
			c.stats.ProbeReads++
			done = c.dev.Access(first, loc, memtypes.Read, memtypes.LineSize).DataAt
		}
		c.mru[set] = uint8(actual)
		c.stats.ReadHits++
		c.stats.HitLatency.add(done - at)
		return ReadResult{Done: done, Hit: true, Way: uint8(actual), FirstProbeHit: fastPath}
	}

	// Miss: known tagEarly cycles before the (useless) data burst
	// finishes — the early-miss-detection property — so the NVM fill
	// launches ahead of the access completing. No confirmation probes:
	// the tag mats covered every way.
	missKnownAt := first - c.tagEarly
	if missKnownAt < at {
		missKnownAt = at
	}
	c.stats.NVMReads++
	nvmDone := c.nvm.Access(missKnownAt, c.nvmLoc(line), memtypes.Read, memtypes.LineSize).DataAt
	way := c.installTDRAM(missKnownAt, loc, set, tag, false, guess)
	c.mru[set] = uint8(way)
	c.stats.MissLatency.add(nvmDone - at)
	return ReadResult{Done: nvmDone, Hit: false, Way: uint8(way)}
}

// installTDRAM places (set, tag) into the victim way with a single
// combined tag+data write. streamedWay is the way whose data the access
// already burst (-1 when none): a dirty victim in any other way must be
// read out before being overwritten.
func (c *TDRAM) installTDRAM(at int64, loc dram.Loc, set, tag uint64, dirty bool, streamedWay int) int {
	way := c.victimWay(set)
	s := c.slot(set, way)
	m := &c.meta[s]
	if m.valid && m.dirty {
		if way != streamedWay {
			c.stats.VictimReads++
			at = c.dev.Access(at, loc, memtypes.Read, memtypes.LineSize).DataAt
		}
		victim := c.lineOf(set, m.tag)
		c.stats.NVMWrites++
		c.nvm.Access(at, c.nvmLoc(victim), memtypes.Write, memtypes.LineSize)
	}
	*m = wayMeta{tag: tag, valid: true, dirty: dirty}
	c.stats.InstallWrites++
	c.dev.Access(at, loc, memtypes.Write, memtypes.LineSize)
	return way
}

// Writeback implements Interface. Tag and data update in one access;
// absent lines write-allocate without an NVM read (the L3 holds the
// whole line), paying a victim read only for a dirty victim.
func (c *TDRAM) Writeback(at int64, line memtypes.LineAddr) int64 {
	set, tag := c.index(line)
	loc := c.devMap.Map(set)
	c.stats.Writebacks++
	if way := c.findWay(set, tag); way >= 0 {
		c.stats.WritebackHits++
		c.meta[c.slot(set, way)].dirty = true
		c.mru[set] = uint8(way)
		c.stats.WritebackWrites++
		return c.dev.Access(at, loc, memtypes.Write, memtypes.LineSize).DataAt
	}
	way := c.installTDRAM(at, loc, set, tag, true, -1)
	c.mru[set] = uint8(way)
	return at
}

// AccessReadFunctional implements the state-only read path: identical
// MRU, round-robin, and tag mutations, no device traffic.
func (c *TDRAM) AccessReadFunctional(line memtypes.LineAddr) (way uint8, hit bool) {
	set, tag := c.index(line)
	if actual := c.findWay(set, tag); actual >= 0 {
		c.mru[set] = uint8(actual)
		return uint8(actual), true
	}
	w := c.installFunctionalTDRAM(set, tag, false)
	c.mru[set] = uint8(w)
	return uint8(w), false
}

// installFunctionalTDRAM is installTDRAM without device traffic.
func (c *TDRAM) installFunctionalTDRAM(set, tag uint64, dirty bool) int {
	way := c.victimWay(set)
	c.meta[c.slot(set, way)] = wayMeta{tag: tag, valid: true, dirty: dirty}
	return way
}

// WritebackFunctional implements the state-only writeback path.
func (c *TDRAM) WritebackFunctional(line memtypes.LineAddr) {
	set, tag := c.index(line)
	if way := c.findWay(set, tag); way >= 0 {
		c.meta[c.slot(set, way)].dirty = true
		c.mru[set] = uint8(way)
		return
	}
	way := c.installFunctionalTDRAM(set, tag, true)
	c.mru[set] = uint8(way)
}

// CheckInvariants implements Interface.
func (c *TDRAM) CheckInvariants() error {
	for set := uint64(0); set < c.sets; set++ {
		if int(c.mru[set]) >= c.ways {
			return fmt.Errorf("tdram: MRU hint %d out of range in set %d", c.mru[set], set)
		}
		if int(c.rr[set]) >= c.ways {
			return fmt.Errorf("tdram: victim cursor %d out of range in set %d", c.rr[set], set)
		}
		base := int(set) * c.ways
		for w := 0; w < c.ways; w++ {
			m := &c.meta[base+w]
			if !m.valid {
				continue
			}
			for w2 := w + 1; w2 < c.ways; w2++ {
				if m2 := &c.meta[base+w2]; m2.valid && m2.tag == m.tag {
					return fmt.Errorf("tdram: duplicate tag %#x in set %d", m.tag, set)
				}
			}
		}
	}
	return nil
}

// tdramVersion is the snapshot encoding version.
const tdramVersion = 1

// Snapshot implements Interface.
func (c *TDRAM) Snapshot(e *ckpt.Encoder) error {
	e.U8(tdramVersion)
	e.U64(c.sets)
	e.U8(uint8(c.ways))
	for _, m := range c.meta {
		e.U64(m.tag)
		var flags uint8
		if m.valid {
			flags |= 1
		}
		if m.dirty {
			flags |= 2
		}
		e.U8(flags)
	}
	e.Raw(c.mru)
	e.Raw(c.rr)
	snapshotStats(e, &c.stats)
	return nil
}

// Restore implements Interface.
func (c *TDRAM) Restore(d *ckpt.Decoder) error {
	if v := d.U8(); d.Err() == nil && v != tdramVersion {
		d.Failf("tdram: snapshot version %d, want %d", v, tdramVersion)
	}
	if sets := d.U64(); d.Err() == nil && sets != c.sets {
		d.Failf("tdram: snapshot has %d sets, cache has %d", sets, c.sets)
	}
	if ways := d.U8(); d.Err() == nil && int(ways) != c.ways {
		d.Failf("tdram: snapshot has %d ways, cache has %d", ways, c.ways)
	}
	if err := d.Err(); err != nil {
		return err
	}
	for i := range c.meta {
		tag := d.U64()
		flags := d.U8()
		if d.Err() != nil {
			return d.Err()
		}
		if flags > 3 {
			d.Failf("tdram: meta[%d] flags %#x invalid", i, flags)
			return d.Err()
		}
		c.meta[i] = wayMeta{tag: tag, valid: flags&1 != 0, dirty: flags&2 != 0}
	}
	for _, arr := range [][]uint8{c.mru, c.rr} {
		raw := d.Raw(len(arr))
		if d.Err() != nil {
			return d.Err()
		}
		for i, v := range raw {
			if int(v) >= c.ways {
				d.Failf("tdram: way hint %d out of range", v)
				return d.Err()
			}
			arr[i] = v
		}
	}
	restoreStats(d, &c.stats)
	return d.Err()
}

var _ Interface = (*TDRAM)(nil)

func init() {
	Register(Backend{
		Name: "tdram",
		New: func(cfg BackendConfig, deps Deps) (Interface, error) {
			t, err := NewTDRAM(cfg.CapacityBytes, cfg.Ways, deps.Dev, deps.NVM)
			if err != nil {
				return nil, err
			}
			return t, nil
		},
	})
}
