// Package stats provides the counters, aggregations, and plain-text table
// rendering used by the simulator and the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of xs. Non-positive entries are
// ignored; an empty (or all-ignored) input yields 0. Table-rendering
// code keeps this 0-mapping form; export paths that must distinguish
// "undefined" from a real 0 use GeomeanOK.
func Geomean(xs []float64) float64 {
	g, ok := GeomeanOK(xs)
	if !ok {
		return 0
	}
	return g
}

// GeomeanOK returns the geometric mean of the positive entries of xs and
// whether it is defined (at least one positive entry). The JSON/CSV
// metrics export uses the !ok case to emit an absent value instead of a
// silent 0.
func GeomeanOK(xs []float64) (float64, bool) {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return math.Exp(sum / float64(n)), true
}

// Amean returns the arithmetic mean of xs, or 0 for an empty input.
func Amean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Ratio returns num/den, or 0 when den is 0 (see RatioOK for the
// distinguishable form).
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Pct returns 100*num/den, or 0 when den is 0 (see PctOK for the
// distinguishable form).
func Pct(num, den float64) float64 { return 100 * Ratio(num, den) }

// RatioOK returns num/den and whether the ratio is defined (den != 0).
func RatioOK(num, den float64) (float64, bool) {
	if den == 0 {
		return 0, false
	}
	return num / den, true
}

// PctOK returns 100*num/den and whether it is defined (den != 0).
func PctOK(num, den float64) (float64, bool) {
	r, ok := RatioOK(num, den)
	return 100 * r, ok
}

// NaNIfUndefined maps an undefined (value, ok=false) pair to NaN, the
// form the metrics registry's gauges treat as "absent" when exporting.
func NaNIfUndefined(v float64, ok bool) float64 {
	if !ok {
		return math.NaN()
	}
	return v
}

// Counters is an ordered set of named uint64 counters. The zero value is
// ready to use.
type Counters struct {
	names  []string
	values map[string]uint64
}

// Add increments counter name by delta, creating it on first use.
func (c *Counters) Add(name string, delta uint64) {
	if c.values == nil {
		c.values = make(map[string]uint64)
	}
	if _, ok := c.values[name]; !ok {
		c.names = append(c.names, name)
	}
	c.values[name] += delta
}

// Inc increments counter name by 1.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the value of counter name (0 if never touched).
func (c *Counters) Get(name string) uint64 { return c.values[name] }

// Names returns the counter names in first-use order.
func (c *Counters) Names() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// Reset zeroes every counter but keeps the name ordering.
func (c *Counters) Reset() {
	for k := range c.values {
		c.values[k] = 0
	}
}

// String renders the counters one per line, in first-use order.
func (c *Counters) String() string {
	var b strings.Builder
	for _, n := range c.names {
		fmt.Fprintf(&b, "%-28s %d\n", n, c.values[n])
	}
	return b.String()
}

// Table accumulates rows of cells and renders them with aligned columns —
// the shape in which the experiment harness reproduces the paper's tables
// and figure series.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row of preformatted cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row formatting each value: strings verbatim, float64
// with %.2f, everything else with %v.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(row...)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Render produces the aligned plain-text form of the table.
func (t *Table) Render() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, len(c))
			} else if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteString("\n")
	}
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Distribution is a streaming summary of a series of observations.
type Distribution struct {
	n          uint64
	sum, sumSq float64
	min, max   float64
}

// Observe adds one observation.
func (d *Distribution) Observe(x float64) {
	if d.n == 0 || x < d.min {
		d.min = x
	}
	if d.n == 0 || x > d.max {
		d.max = x
	}
	d.n++
	d.sum += x
	d.sumSq += x * x
}

// Count returns the number of observations.
func (d *Distribution) Count() uint64 { return d.n }

// Mean returns the arithmetic mean (0 when empty).
func (d *Distribution) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Min returns the smallest observation (0 when empty).
func (d *Distribution) Min() float64 { return d.min }

// Max returns the largest observation (0 when empty).
func (d *Distribution) Max() float64 { return d.max }

// StdDev returns the population standard deviation (0 when empty).
func (d *Distribution) StdDev() float64 {
	if d.n == 0 {
		return 0
	}
	m := d.Mean()
	v := d.sumSq/float64(d.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// SortedKeys returns the keys of m in ascending order; a convenience for
// deterministic iteration when printing per-workload results.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Bar renders value as a proportional ASCII bar of at most width cells,
// scaled so that scale maps to the full width. Negative values and a
// non-positive scale yield an empty bar. Useful for rendering the paper's
// speedup figures as text.
func Bar(value, scale float64, width int) string {
	if width <= 0 || scale <= 0 || value <= 0 {
		return ""
	}
	cells := int(value / scale * float64(width))
	if cells > width {
		cells = width
	}
	return strings.Repeat("#", cells)
}

// RenderMarkdown produces the GitHub-flavored-markdown form of the table,
// used to regenerate EXPERIMENTS.md.
func (t *Table) RenderMarkdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	cols := len(t.header)
	for _, row := range t.rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	if cols == 0 {
		return b.String()
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			b.WriteString(" " + c + " |")
		}
		b.WriteString("\n")
	}
	header := t.header
	if len(header) == 0 {
		header = make([]string, cols)
	}
	writeRow(header)
	b.WriteString("|")
	for i := 0; i < cols; i++ {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
