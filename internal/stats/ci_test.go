package stats

import (
	"math"
	"testing"

	"accord/internal/xrand"
)

// TestStudentTKnownValues checks the quantile solver against textbook
// critical values (two-sided, so confidence 0.95 is the t_{0.975} column).
func TestStudentTKnownValues(t *testing.T) {
	cases := []struct {
		confidence float64
		df         int
		want       float64
	}{
		{0.95, 1, 12.7062},
		{0.95, 2, 4.3027},
		{0.95, 4, 2.7764},
		{0.95, 10, 2.2281},
		{0.95, 29, 2.0452},
		{0.90, 10, 1.8125},
		{0.99, 10, 3.1693},
		{0.95, 1000, 1.9623},
	}
	for _, c := range cases {
		got, ok := StudentT(c.confidence, c.df)
		if !ok {
			t.Fatalf("StudentT(%v, %d): not ok", c.confidence, c.df)
		}
		if math.Abs(got-c.want) > 5e-4 {
			t.Errorf("StudentT(%v, %d) = %v, want %v", c.confidence, c.df, got, c.want)
		}
	}
}

// TestStudentTLimits: at large df the t distribution converges to the
// standard normal, whose 97.5% quantile is 1.95996.
func TestStudentTLimits(t *testing.T) {
	got, ok := StudentT(0.95, 1_000_000)
	if !ok || math.Abs(got-1.95996) > 1e-3 {
		t.Errorf("StudentT(0.95, 1e6) = %v ok=%t, want ~1.95996", got, ok)
	}
}

// TestStudentTMonotonic: the critical value shrinks with more degrees of
// freedom and grows with confidence.
func TestStudentTMonotonic(t *testing.T) {
	prev := math.Inf(1)
	for _, df := range []int{1, 2, 3, 5, 10, 30, 100, 1000} {
		v, ok := StudentT(0.95, df)
		if !ok {
			t.Fatalf("df=%d: not ok", df)
		}
		if v >= prev {
			t.Errorf("StudentT(0.95, %d) = %v, not below %v", df, v, prev)
		}
		prev = v
	}
	prev = 0
	for _, conf := range []float64{0.5, 0.8, 0.9, 0.95, 0.99, 0.999} {
		v, ok := StudentT(conf, 10)
		if !ok {
			t.Fatalf("conf=%v: not ok", conf)
		}
		if v <= prev {
			t.Errorf("StudentT(%v, 10) = %v, not above %v", conf, v, prev)
		}
		prev = v
	}
}

// TestStudentTDegenerate: invalid arguments follow the undefined-not-zero
// convention (ok=false) rather than returning a fake critical value.
func TestStudentTDegenerate(t *testing.T) {
	cases := []struct {
		confidence float64
		df         int
	}{
		{0.95, 0},
		{0.95, -3},
		{0, 10},
		{1, 10},
		{-0.5, 10},
		{1.5, 10},
		{math.NaN(), 10},
	}
	for _, c := range cases {
		if _, ok := StudentT(c.confidence, c.df); ok {
			t.Errorf("StudentT(%v, %d): ok=true, want false", c.confidence, c.df)
		}
	}
}

// TestMeanCIDegenerate: n=0 and n=1 are undefined (no variance estimate),
// not silently zero — matching GeomeanOK.
func TestMeanCIDegenerate(t *testing.T) {
	if mean, half, ok := MeanCI(nil, 0.95); ok || !math.IsNaN(mean) || half != 0 {
		t.Errorf("MeanCI(nil) = (%v, %v, %t), want (NaN, 0, false)", mean, half, ok)
	}
	if mean, half, ok := MeanCI([]float64{3.5}, 0.95); ok || mean != 3.5 || half != 0 {
		t.Errorf("MeanCI(one) = (%v, %v, %t), want (3.5, 0, false)", mean, half, ok)
	}
	if _, _, ok := MeanCI([]float64{1, 2, 3}, 1.0); ok {
		t.Error("MeanCI(conf=1): ok=true, want false")
	}
}

// TestMeanCIKnown: a hand-checkable case. xs = {1,2,3,4,5}: mean 3,
// sd sqrt(2.5), stderr sqrt(0.5), t_{0.975,4}=2.7764 → half ≈ 1.9632.
func TestMeanCIKnown(t *testing.T) {
	mean, half, ok := MeanCI([]float64{1, 2, 3, 4, 5}, 0.95)
	if !ok {
		t.Fatal("not ok")
	}
	if math.Abs(mean-3) > 1e-12 {
		t.Errorf("mean = %v, want 3", mean)
	}
	if math.Abs(half-1.9632) > 5e-4 {
		t.Errorf("half = %v, want ~1.9632", half)
	}
}

// TestMeanCIZeroVariance: identical observations give a zero-width
// interval and stay ok (the variance estimate exists; it is zero).
func TestMeanCIZeroVariance(t *testing.T) {
	mean, half, ok := MeanCI([]float64{7, 7, 7, 7}, 0.95)
	if !ok || mean != 7 || half != 0 {
		t.Errorf("MeanCI(7x4) = (%v, %v, %t), want (7, 0, true)", mean, half, ok)
	}
}

// normPair draws a standard-normal pair by Box-Muller (xrand has no
// NormFloat64).
func normPair(rng *xrand.Rand) (float64, float64) {
	u1 := rng.Float64()
	for u1 == 0 {
		u1 = rng.Float64()
	}
	u2 := rng.Float64()
	r := math.Sqrt(-2 * math.Log(u1))
	return r * math.Cos(2*math.Pi*u2), r * math.Sin(2*math.Pi*u2)
}

// TestMeanCICoverage is the property test: over many small normal
// samples, the 95% interval should cover the true mean ~95% of the time.
// The binomial tolerance at 4000 trials is ±3 sigma ≈ ±0.0103.
func TestMeanCICoverage(t *testing.T) {
	const (
		trials     = 4000
		n          = 6
		confidence = 0.95
		trueMean   = 10.0
		sd         = 2.0
	)
	rng := xrand.New(12345)
	covered := 0
	xs := make([]float64, n)
	for trial := 0; trial < trials; trial++ {
		for i := 0; i < n; i += 2 {
			a, b := normPair(rng)
			xs[i] = trueMean + sd*a
			if i+1 < n {
				xs[i+1] = trueMean + sd*b
			}
		}
		mean, half, ok := MeanCI(xs, confidence)
		if !ok {
			t.Fatal("not ok")
		}
		if math.Abs(mean-trueMean) <= half {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < confidence-0.015 || rate > confidence+0.015 {
		t.Errorf("coverage = %.4f, want ~%.2f", rate, confidence)
	}
}

// TestMeanCICoverageExponential: coverage degrades gracefully on a skewed
// distribution but stays in a sane band — a guard against sign or scaling
// bugs that a symmetric test could mask.
func TestMeanCICoverageExponential(t *testing.T) {
	const (
		trials     = 4000
		n          = 10
		confidence = 0.95
	)
	rng := xrand.New(999)
	covered := 0
	xs := make([]float64, n)
	for trial := 0; trial < trials; trial++ {
		for i := range xs {
			xs[i] = rng.ExpFloat64() // true mean 1
		}
		mean, half, ok := MeanCI(xs, confidence)
		if !ok {
			t.Fatal("not ok")
		}
		if math.Abs(mean-1) <= half {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.88 || rate > 0.97 {
		t.Errorf("coverage = %.4f, want within [0.88, 0.97] for exponential n=%d", rate, n)
	}
}
