package stats

import "math"

// This file implements the Student-t confidence-interval machinery the
// interval-sampling driver (internal/sim) uses to decide when enough
// detailed windows have been measured. Everything is closed-form or
// classic numerics — no external dependencies.

// lgamma is math.Lgamma without the sign (the arguments used here are
// always positive, where Gamma > 0).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaIncReg computes the regularized incomplete beta function I_x(a, b)
// via the standard continued-fraction expansion (Lentz's method), using
// the symmetry relation to keep the fraction in its fast-converging
// region. Accurate to ~1e-12 for the a, b ≥ 1/2 arguments the t CDF
// needs.
func betaIncReg(x, a, b float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// ln of the prefactor x^a (1-x)^b / (a B(a,b)).
	lnPre := lgamma(a+b) - lgamma(a) - lgamma(b) +
		a*math.Log(x) + b*math.Log1p(-x)
	if x < (a+1)/(a+b+2) {
		return math.Exp(lnPre) * betaCF(x, a, b) / a
	}
	return 1 - math.Exp(lnPre)*betaCF(1-x, b, a)/b
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz algorithm.
func betaCF(x, a, b float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// tCDF is the CDF of Student's t distribution with df degrees of freedom,
// expressed through the regularized incomplete beta function.
func tCDF(t float64, df float64) float64 {
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	p := 0.5 * betaIncReg(x, df/2, 0.5)
	if t > 0 {
		return 1 - p
	}
	return p
}

// StudentT returns the two-sided Student-t critical value t* with df
// degrees of freedom at the given confidence level: the quantile such
// that P(|T| ≤ t*) = confidence. It follows the package's
// undefined-not-zero convention (GeomeanOK): ok is false — and the value
// meaningless — when df < 1 or confidence is outside (0, 1).
func StudentT(confidence float64, df int) (float64, bool) {
	if df < 1 || confidence <= 0 || confidence >= 1 ||
		math.IsNaN(confidence) {
		return 0, false
	}
	// Solve tCDF(t) = p for the upper-tail probability by bisection; the
	// CDF is strictly increasing so this is robust everywhere, and ~60
	// iterations give full float64 precision.
	p := 0.5 + confidence/2
	lo, hi := 0.0, 1.0
	for tCDF(hi, float64(df)) < p {
		hi *= 2
		if hi > 1e18 { // confidence ≈ 1 rounds the target past the CDF range
			return 0, false
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-12*(1+hi); i++ {
		mid := lo + (hi-lo)/2
		if tCDF(mid, float64(df)) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, true
}

// MeanCI returns the sample mean of xs and the half-width of its
// two-sided Student-t confidence interval at the given confidence level:
// mean ± half covers the true mean with the stated probability under the
// usual normality assumption. Per the undefined-not-zero convention, ok
// is false when fewer than two observations exist (a single sample has
// no variance estimate) or the confidence level is invalid; mean is
// still the sample mean whenever len(xs) ≥ 1.
func MeanCI(xs []float64, confidence float64) (mean, half float64, ok bool) {
	n := len(xs)
	if n == 0 {
		return math.NaN(), 0, false
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean = sum / float64(n)
	if n < 2 {
		return mean, 0, false
	}
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	t, tok := StudentT(confidence, n-1)
	if !tok {
		return mean, 0, false
	}
	stderr := math.Sqrt(ss / float64(n-1) / float64(n))
	return mean, t * stderr, true
}
