package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); !almostEqual(g, 4) {
		t.Errorf("Geomean(2,8) = %v, want 4", g)
	}
	if g := Geomean([]float64{1, 1, 1}); !almostEqual(g, 1) {
		t.Errorf("Geomean(1,1,1) = %v, want 1", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("Geomean(nil) = %v, want 0", g)
	}
	// Non-positive entries are skipped.
	if g := Geomean([]float64{-1, 0, 4}); !almostEqual(g, 4) {
		t.Errorf("Geomean with non-positive = %v, want 4", g)
	}
}

func TestAmean(t *testing.T) {
	if a := Amean([]float64{1, 2, 3}); !almostEqual(a, 2) {
		t.Errorf("Amean = %v, want 2", a)
	}
	if a := Amean(nil); a != 0 {
		t.Errorf("Amean(nil) = %v, want 0", a)
	}
}

func TestRatioPct(t *testing.T) {
	if r := Ratio(1, 2); !almostEqual(r, 0.5) {
		t.Errorf("Ratio = %v", r)
	}
	if r := Ratio(1, 0); r != 0 {
		t.Errorf("Ratio(_, 0) = %v, want 0", r)
	}
	if p := Pct(1, 4); !almostEqual(p, 25) {
		t.Errorf("Pct = %v, want 25", p)
	}
}

func TestGeomeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			x := math.Abs(r)
			if x == 0 || math.IsInf(x, 0) || math.IsNaN(x) || x > 1e100 {
				continue
			}
			xs = append(xs, x)
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		if len(xs) == 0 {
			return Geomean(xs) == 0
		}
		g := Geomean(xs)
		return g >= lo*(1-1e-9) && g <= hi*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCounters(t *testing.T) {
	var c Counters
	c.Inc("hits")
	c.Add("hits", 4)
	c.Add("misses", 2)
	if c.Get("hits") != 5 {
		t.Errorf("hits = %d, want 5", c.Get("hits"))
	}
	if c.Get("misses") != 2 {
		t.Errorf("misses = %d, want 2", c.Get("misses"))
	}
	if c.Get("absent") != 0 {
		t.Errorf("absent counter = %d, want 0", c.Get("absent"))
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "hits" || names[1] != "misses" {
		t.Errorf("Names() = %v, want [hits misses]", names)
	}
	if !strings.Contains(c.String(), "hits") {
		t.Error("String() missing counter name")
	}
	c.Reset()
	if c.Get("hits") != 0 || c.Get("misses") != 0 {
		t.Error("Reset did not zero counters")
	}
	if len(c.Names()) != 2 {
		t.Error("Reset dropped names")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRowf("alpha", 1.5)
	tb.AddRowf("b", 12)
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tb.NumRows())
	}
	out := tb.Render()
	for _, want := range []string{"Demo", "name", "alpha", "1.50", "12"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Errorf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableNoHeader(t *testing.T) {
	tb := NewTable("")
	tb.AddRow("x")
	out := tb.Render()
	if strings.Contains(out, "==") {
		t.Errorf("untitled table rendered a title: %q", out)
	}
	if !strings.Contains(out, "x") {
		t.Errorf("row missing: %q", out)
	}
}

func TestDistribution(t *testing.T) {
	var d Distribution
	if d.Mean() != 0 || d.StdDev() != 0 || d.Count() != 0 {
		t.Error("empty distribution not zeroed")
	}
	for _, x := range []float64{1, 2, 3, 4} {
		d.Observe(x)
	}
	if d.Count() != 4 {
		t.Errorf("Count = %d", d.Count())
	}
	if !almostEqual(d.Mean(), 2.5) {
		t.Errorf("Mean = %v", d.Mean())
	}
	if d.Min() != 1 || d.Max() != 4 {
		t.Errorf("Min/Max = %v/%v", d.Min(), d.Max())
	}
	want := math.Sqrt(1.25)
	if math.Abs(d.StdDev()-want) > 1e-9 {
		t.Errorf("StdDev = %v, want %v", d.StdDev(), want)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"c": 1, "a": 2, "b": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}

func TestBar(t *testing.T) {
	if b := Bar(1, 2, 10); b != "#####" {
		t.Errorf("Bar(1,2,10) = %q, want 5 cells", b)
	}
	if b := Bar(3, 2, 10); b != "##########" {
		t.Errorf("over-scale bar = %q, want clamped to width", b)
	}
	if Bar(-1, 2, 10) != "" || Bar(1, 0, 10) != "" || Bar(1, 2, 0) != "" {
		t.Error("degenerate bars not empty")
	}
	if b := Bar(0.05, 2, 10); b != "" {
		t.Errorf("tiny value bar = %q, want empty", b)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tb := NewTable("MD", "a", "b")
	tb.AddRow("1", "2")
	out := tb.RenderMarkdown()
	for _, want := range []string{"**MD**", "| a | b |", "|---|---|", "| 1 | 2 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	// Ragged rows pad to the widest row.
	tb2 := NewTable("", "x")
	tb2.AddRow("1", "2", "3")
	out2 := tb2.RenderMarkdown()
	if !strings.Contains(out2, "| 1 | 2 | 3 |") {
		t.Errorf("ragged row mishandled:\n%s", out2)
	}
	if (NewTable("")).RenderMarkdown() != "" {
		t.Error("empty table produced markdown")
	}
}

// TestUndefinedForms pins both behaviors of the aggregate helpers: the
// legacy table path keeps mapping undefined inputs to 0, while the *OK
// forms report them distinguishably for the JSON/CSV export path.
func TestUndefinedForms(t *testing.T) {
	// Legacy 0-mapping (tables must keep rendering "0.00", not "NaN").
	if Geomean(nil) != 0 || Geomean([]float64{-1, 0}) != 0 {
		t.Error("Geomean no longer maps undefined inputs to 0")
	}
	if Pct(5, 0) != 0 || Ratio(5, 0) != 0 {
		t.Error("Pct/Ratio no longer map zero denominators to 0")
	}

	// Distinguishable forms.
	if _, ok := GeomeanOK(nil); ok {
		t.Error("GeomeanOK(nil) claims to be defined")
	}
	if _, ok := GeomeanOK([]float64{-2, 0}); ok {
		t.Error("GeomeanOK with no positive entries claims to be defined")
	}
	if g, ok := GeomeanOK([]float64{2, 8}); !ok || g != 4 {
		t.Errorf("GeomeanOK([2 8]) = %v,%v, want 4,true", g, ok)
	}
	if _, ok := RatioOK(5, 0); ok {
		t.Error("RatioOK(5,0) claims to be defined")
	}
	if r, ok := RatioOK(0, 4); !ok || r != 0 {
		t.Errorf("RatioOK(0,4) = %v,%v, want 0,true — a real 0 stays defined", r, ok)
	}
	if p, ok := PctOK(1, 4); !ok || p != 25 {
		t.Errorf("PctOK(1,4) = %v,%v, want 25,true", p, ok)
	}
	if _, ok := PctOK(1, 0); ok {
		t.Error("PctOK(1,0) claims to be defined")
	}

	// The bridge into the metrics export: undefined becomes NaN.
	if !math.IsNaN(NaNIfUndefined(PctOK(1, 0))) {
		t.Error("NaNIfUndefined did not map undefined to NaN")
	}
	if NaNIfUndefined(PctOK(1, 4)) != 25 {
		t.Error("NaNIfUndefined perturbed a defined value")
	}
}
