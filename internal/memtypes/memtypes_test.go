package memtypes

import (
	"testing"
	"testing/quick"
)

func TestConstants(t *testing.T) {
	if LineSize != 64 {
		t.Errorf("LineSize = %d, want 64", LineSize)
	}
	if PageSize != 4096 {
		t.Errorf("PageSize = %d, want 4096", PageSize)
	}
	if RegionSize != 4096 {
		t.Errorf("RegionSize = %d, want 4096", RegionSize)
	}
	if LinesPerPage != 64 {
		t.Errorf("LinesPerPage = %d, want 64", LinesPerPage)
	}
	if TagUnitSize != 72 {
		t.Errorf("TagUnitSize = %d, want 72", TagUnitSize)
	}
}

func TestAddrLineRoundTrip(t *testing.T) {
	for _, a := range []Addr{0, 63, 64, 65, 4095, 4096, 1 << 40} {
		l := a.Line()
		if got := l.Addr(); got != a&^(LineSize-1) {
			t.Errorf("Addr(%#x).Line().Addr() = %#x, want %#x", a, got, a&^(LineSize-1))
		}
	}
}

func TestLinePage(t *testing.T) {
	a := Addr(3*PageSize + 5*LineSize)
	if got := a.Page(); got != 3 {
		t.Errorf("Page = %d, want 3", got)
	}
	if got := a.Line().Page(); got != 3 {
		t.Errorf("Line().Page() = %d, want 3", got)
	}
	if got := a.Line().PageOffset(); got != 5 {
		t.Errorf("PageOffset = %d, want 5", got)
	}
}

func TestPageLine(t *testing.T) {
	p := PageNum(7)
	l := p.Line(9)
	if l.Page() != p {
		t.Errorf("page of constructed line = %d, want %d", l.Page(), p)
	}
	if l.PageOffset() != 9 {
		t.Errorf("offset of constructed line = %d, want 9", l.PageOffset())
	}
	// Offset wraps within the page.
	if p.Line(LinesPerPage+1) != p.Line(1) {
		t.Error("Line offset did not wrap within page")
	}
}

func TestRegionMatchesPage(t *testing.T) {
	// With RegionShift == PageShift, lines in the same page share a region.
	p := PageNum(42)
	r := p.Line(0).Region()
	for i := uint64(1); i < LinesPerPage; i++ {
		if p.Line(i).Region() != r {
			t.Fatalf("line %d of page 42 has region %d, want %d", i, p.Line(i).Region(), r)
		}
	}
	if p.Line(0).Region() == PageNum(43).Line(0).Region() {
		t.Error("adjacent pages share a region")
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Errorf("Kind strings = %q, %q", Read, Write)
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind produced empty string")
	}
}

func TestRequestString(t *testing.T) {
	r := Request{Line: 0x10, Kind: Write, Core: 3}
	if r.String() == "" {
		t.Error("empty request string")
	}
}

func TestQuickLineRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw &^ (LineSize - 1)) // line-aligned address
		return a.Line().Addr() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPageLineConsistency(t *testing.T) {
	f := func(rawPage uint64, off uint64) bool {
		p := PageNum(rawPage & ((1 << 40) - 1))
		l := p.Line(off)
		return l.Page() == p && l.PageOffset() == off&(LinesPerPage-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
