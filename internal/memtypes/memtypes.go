// Package memtypes defines the shared address arithmetic and request types
// used throughout the memory-system model: byte addresses, 64-byte line
// addresses, 4 KB pages, and the 4 KB regions that ganged way-steering
// tracks.
package memtypes

import "fmt"

// Fundamental granularities of the modeled system. The paper's DRAM cache
// (Intel KNL-style, alloy-style) uses 64-byte lines; ganged way-steering
// operates on 4 KB regions, which coincide with the virtual-memory page
// size.
const (
	LineShift = 6
	LineSize  = 1 << LineShift // 64 B cache line

	PageShift = 12
	PageSize  = 1 << PageShift // 4 KB page

	RegionShift = 12
	RegionSize  = 1 << RegionShift // 4 KB GWS region

	LinesPerPage   = PageSize / LineSize
	LinesPerRegion = RegionSize / LineSize

	// TagUnitSize is the size of the tags-with-data unit streamed on every
	// DRAM-cache access: 64 B data + 8 B of tag+ECC (paper Figure 2).
	TagUnitSize = 72
)

// Addr is a byte address (virtual or physical depending on context).
type Addr uint64

// LineAddr is a 64-byte-line address: Addr >> LineShift.
type LineAddr uint64

// PageNum is a 4 KB page (or frame) number: Addr >> PageShift.
type PageNum uint64

// RegionID identifies a 4 KB spatially contiguous region of the physical
// address space; GWS coordinates install decisions within a region.
type RegionID uint64

// Line returns the line address containing a.
func (a Addr) Line() LineAddr { return LineAddr(a >> LineShift) }

// Page returns the page number containing a.
func (a Addr) Page() PageNum { return PageNum(a >> PageShift) }

// Addr returns the byte address of the first byte of the line.
func (l LineAddr) Addr() Addr { return Addr(l) << LineShift }

// Page returns the page containing the line.
func (l LineAddr) Page() PageNum { return PageNum(l >> (PageShift - LineShift)) }

// Region returns the GWS region containing the line.
func (l LineAddr) Region() RegionID { return RegionID(l >> (RegionShift - LineShift)) }

// PageOffset returns the index of the line within its page.
func (l LineAddr) PageOffset() uint64 { return uint64(l) & (LinesPerPage - 1) }

// Line returns the line address of the i-th line in the page.
func (p PageNum) Line(i uint64) LineAddr {
	return LineAddr(uint64(p)<<(PageShift-LineShift) | (i & (LinesPerPage - 1)))
}

// Addr returns the byte address of the start of the page.
func (p PageNum) Addr() Addr { return Addr(p) << PageShift }

// Kind distinguishes reads from writes.
type Kind uint8

const (
	// Read is a demand read (load) access.
	Read Kind = iota
	// Write is a store or a writeback access.
	Write
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Request is a memory request presented to a cache level or memory device.
type Request struct {
	Line LineAddr
	Kind Kind
	Core int
}

// String implements fmt.Stringer.
func (r Request) String() string {
	return fmt.Sprintf("{core %d %s line %#x}", r.Core, r.Kind, uint64(r.Line))
}
