package accord

import (
	"testing"

	"accord/internal/ckpt"
	"accord/internal/sim"
	"accord/internal/workloads"
)

// ckptBenchConfig is the checkpoint benchmark scale: a long warmup over a
// 1 MB-class cache so the warm-vs-cold pair below measures the speedup
// the store exists to deliver, and the snapshot/restore pair sees a
// fully-populated state.
func ckptBenchConfig() sim.Config {
	cfg := sim.ACCORD(2)
	cfg.Scale = 65536
	cfg.Cores = 4
	cfg.WarmupInstr = 400_000
	cfg.MeasureInstr = 100_000
	cfg.Seed = 1
	return cfg
}

const ckptBenchWorkload = "libquantum"

// BenchmarkCkptSnapshot measures serializing a warmed system; bytes/op is
// the checkpoint size.
func BenchmarkCkptSnapshot(b *testing.B) {
	cfg := ckptBenchConfig()
	s := sim.New(cfg, workloads.MustGet(ckptBenchWorkload, cfg.Cores))
	s.RunWarmup()
	blob, err := s.Snapshot(ckptBenchWorkload)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Snapshot(ckptBenchWorkload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCkptRestore measures deserializing into a freshly built
// system (construction excluded from the timing).
func BenchmarkCkptRestore(b *testing.B) {
	cfg := ckptBenchConfig()
	wl := workloads.MustGet(ckptBenchWorkload, cfg.Cores)
	s := sim.New(cfg, wl)
	s.RunWarmup()
	blob, err := s.Snapshot(ckptBenchWorkload)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fresh := sim.New(cfg, workloads.MustGet(ckptBenchWorkload, cfg.Cores))
		b.StartTimer()
		if err := fresh.Restore(blob, ckptBenchWorkload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCkptColdRun and BenchmarkCkptWarmRun are the end-to-end pair
// behind the headline claim: the warm run restores the warmup/measure
// boundary from a populated store instead of simulating 4x its measured
// instructions again.
func BenchmarkCkptColdRun(b *testing.B) {
	cfg := ckptBenchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wl := workloads.MustGet(ckptBenchWorkload, cfg.Cores)
		sim.New(cfg, wl).Run(ckptBenchWorkload)
	}
}

func BenchmarkCkptWarmRun(b *testing.B) {
	cfg := ckptBenchConfig()
	store, err := ckpt.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	// Populate the store once; every timed iteration must then restore.
	if _, restored := sim.RunWithStore(cfg, workloads.MustGet(ckptBenchWorkload, cfg.Cores), store, ckptBenchWorkload); restored {
		b.Fatal("first run unexpectedly found a checkpoint")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wl := workloads.MustGet(ckptBenchWorkload, cfg.Cores)
		if _, restored := sim.RunWithStore(cfg, wl, store, ckptBenchWorkload); !restored {
			b.Fatal("warm run fell back to a cold simulation")
		}
	}
}
